package swim

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestServeFacade drives the façade end to end: generate, upload via
// the handler, fetch the cached report, and cross-check Fingerprint
// against the Trace method.
func TestServeFacade(t *testing.T) {
	h, err := NewServeHandler(ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	tr, err := Generate(GenerateOptions{Workload: "CC-e", Seed: 1, Duration: 25 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/traces/cc-e", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	for i, want := range []string{"MISS", "HIT"} {
		resp, err := http.Get(ts.URL + "/v1/traces/cc-e/report")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != want {
			t.Errorf("report %d: status=%d X-Cache=%q want %q", i, resp.StatusCode, resp.Header.Get("X-Cache"), want)
		}
	}
}

// TestServeFacadeDurable drives the DataDir option end to end: upload
// through one handler, build a second handler over the same directory,
// and read the trace back without re-uploading.
func TestServeFacadeDurable(t *testing.T) {
	dir := t.TempDir()
	tr, err := Generate(GenerateOptions{Workload: "CC-e", Seed: 2, Duration: 25 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}

	h1, err := NewServeHandler(ServeOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(h1)
	resp, err := http.Post(ts1.URL+"/v1/traces/durable", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	ts1.Close()

	h2, err := NewServeHandler(ServeOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(h2)
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/v1/traces/durable/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("report after reopen: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Analysis"); got != "recovered-partial" {
		t.Errorf("reopened report X-Analysis = %q, want recovered-partial", got)
	}
}

func TestFingerprintFacade(t *testing.T) {
	tr, err := Generate(GenerateOptions{Workload: "CC-a", Seed: 2, Duration: 25 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	viaMethod, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	viaSource, err := Fingerprint(trace.NewSliceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if viaMethod != viaSource || len(viaMethod) != 64 {
		t.Errorf("fingerprints disagree: %s vs %s", viaMethod, viaSource)
	}
}
