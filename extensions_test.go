package swim

import (
	"testing"
	"time"
)

func TestReplayTieredFacade(t *testing.T) {
	tr, err := Generate(GenerateOptions{Workload: "CC-b", Seed: 8, Duration: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayTiered(tr, TieredReplayOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SmallJobs+res.LargeJobs != tr.Len() {
		t.Error("tiered replay lost jobs")
	}
	if res.MeanSmallLatency() <= 0 || res.P99SmallLatency() < res.MeanSmallLatency()/100 {
		t.Errorf("small-job latencies malformed: mean=%v p99=%v",
			res.MeanSmallLatency(), res.P99SmallLatency())
	}
}

func TestRunSuiteFacade(t *testing.T) {
	res, err := RunSuite(SuiteConfig{
		Workloads:    []string{"CC-e"},
		SourceWindow: 48 * time.Hour,
		StreamLength: 12 * time.Hour,
		TargetNodes:  20,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 1 || res.Scores[0].Jobs == 0 {
		t.Fatalf("suite result: %+v", res)
	}
}

func TestCompareErasFacade(t *testing.T) {
	fb09, err := Generate(GenerateOptions{Workload: "FB-2009", Seed: 4, Duration: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	fb10, err := Generate(GenerateOptions{Workload: "FB-2010", Seed: 4, Duration: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	d, err := CompareEras(fb09, fb10)
	if err != nil {
		t.Fatal(err)
	}
	// §4.1: inputs grew by orders of magnitude, outputs shrank, and the
	// job rate quadrupled.
	if d.InputMedianShift <= 0 {
		t.Errorf("input shift = %v, want positive", d.InputMedianShift)
	}
	if d.OutputMedianShift >= 0 {
		t.Errorf("output shift = %v, want negative", d.OutputMedianShift)
	}
	if !d.Significant(0.2) {
		t.Error("FB evolution should be significant")
	}
}

func TestCompareCachePoliciesWithOptimal(t *testing.T) {
	tr, err := Generate(GenerateOptions{Workload: "CC-e", Seed: 6, Duration: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	results, err := CompareCachePoliciesWithOptimal(tr, 50*GB, GB)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d, want 5", len(results))
	}
	var optimal, lru float64
	for _, r := range results {
		switch r.Policy {
		case "Clairvoyant":
			optimal = r.HitRate
		case "LRU":
			lru = r.HitRate
		}
	}
	if optimal <= 0 {
		t.Error("clairvoyant achieved no hits")
	}
	if lru > optimal+0.02 {
		t.Errorf("LRU %v exceeds clairvoyant %v", lru, optimal)
	}
}

func TestNewSimulatedFSAndTiering(t *testing.T) {
	tr, err := Generate(GenerateOptions{Workload: "CC-d", Seed: 6, Duration: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewSimulatedFS(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fs.FileCount() == 0 {
		t.Fatal("empty simulated FS")
	}
	reports := EvaluateTiering(fs, 500*GB, GB)
	if len(reports) != 2 {
		t.Fatalf("tiering reports = %d, want 2", len(reports))
	}
	for _, r := range reports {
		if r.AccessCoverage < 0 || r.AccessCoverage > 1 {
			t.Errorf("%s coverage %v out of range", r.Policy, r.AccessCoverage)
		}
	}
	// Pathless trace cannot populate.
	fb09, err := Generate(GenerateOptions{Workload: "FB-2009", Seed: 1, Duration: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimulatedFS(fb09, 1); err == nil {
		t.Error("pathless trace should fail to populate")
	}
}

func TestDailyRegularityFacade(t *testing.T) {
	// FB-2010 has the strongest diurnal; its regularity should exceed the
	// near-random CC-a.
	fb10, err := Generate(GenerateOptions{Workload: "FB-2010", Seed: 9, Duration: 7 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cca, err := Generate(GenerateOptions{Workload: "CC-a", Seed: 9, Duration: 7 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rFB, err := DailyRegularity(fb10)
	if err != nil {
		t.Fatal(err)
	}
	rCC, err := DailyRegularity(cca)
	if err != nil {
		t.Fatal(err)
	}
	if rFB <= rCC {
		t.Errorf("FB-2010 daily regularity %v should exceed CC-a %v", rFB, rCC)
	}
}
