package main

import (
	"bytes"
	"flag"
	"path/filepath"
	"strings"
	"testing"
	"time"

	swim "repro"
)

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-h"}, &out, &errb); err != flag.ErrHelp {
		t.Errorf("-h should return flag.ErrHelp, got %v", err)
	}
	if err := run([]string{}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-in or -workload") {
		t.Errorf("missing input should error, got %v", err)
	}
	if err := run([]string{"-workload", "nope"}, &out, &errb); err == nil {
		t.Error("unknown workload should error")
	}
	if err := run([]string{"-workload", "CC-a", "-duration", "24h", "-scheduler", "lifo"}, &out, &errb); err == nil {
		t.Error("unknown scheduler should error")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errb); err == nil {
		t.Error("missing input file should error")
	}
}

// TestRunReplayGenerated: generate-and-replay reports latencies and
// occupancy on stdout.
func TestRunReplayGenerated(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "CC-a", "-duration", "25h", "-scheduler", "fair"}, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	got := out.String()
	for _, want := range []string{"replayed ", "latency: median=", "makespan:", "occupancy"} {
		if !strings.Contains(got, want) {
			t.Errorf("stdout missing %q:\n%s", want, got)
		}
	}
}

// TestRunReplayFromFile: the -in path round-trips through a trace file
// written by the façade.
func TestRunReplayFromFile(t *testing.T) {
	tr, err := swim.Generate(swim.GenerateOptions{Workload: "CC-a", Seed: 2, Duration: 25 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cc-a.jsonl")
	if err := swim.SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-in", path, "-nodes", "20"}, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "replayed ") {
		t.Errorf("stdout: %s", out.String())
	}
}
