// Command swimreplay replays a workload trace on the discrete-event
// MapReduce cluster simulator and reports job latencies and slot
// occupancy — the SWIM replay step, with the live Hadoop cluster replaced
// by the simulator substrate.
//
//	swimreplay -workload CC-e -duration 48h -scheduler fair
//	swimreplay -in cc-b.jsonl -nodes 30 -stragglers 0.05
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	swim "repro"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "swimreplay: %v\n", err)
		os.Exit(2)
	}
}

// run is the testable body: parses args, loads or generates the trace,
// replays it, and reports to stdout; errors go to the caller instead of
// os.Exit.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swimreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in         = fs.String("in", "", "trace file to replay (.jsonl or .csv)")
		workload   = fs.String("workload", "", "generate this workload instead of reading a file: "+strings.Join(swim.Workloads(), ", "))
		seed       = fs.Int64("seed", 1, "generator / straggler seed")
		duration   = fs.Duration("duration", 0, "generated duration when -workload is used")
		nodes      = fs.Int("nodes", 0, "cluster nodes (0 = the trace's machine count)")
		scheduler  = fs.String("scheduler", "fifo", "scheduling discipline: fifo or fair")
		stragglers = fs.Float64("stragglers", 0, "per-task straggler probability")
		factor     = fs.Float64("straggler-factor", 5, "straggler slowdown factor")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *swim.Trace
	var err error
	switch {
	case *in != "":
		tr, err = swim.LoadTrace(*in, swim.Meta{Name: *in})
	case *workload != "":
		tr, err = swim.Generate(swim.GenerateOptions{Workload: *workload, Seed: *seed, Duration: *duration})
	default:
		fs.Usage()
		return fmt.Errorf("need -in or -workload")
	}
	if err != nil {
		return err
	}

	var sched swim.SchedulerKind
	switch *scheduler {
	case "fifo":
		sched = swim.SchedulerFIFO
	case "fair":
		sched = swim.SchedulerFair
	default:
		return fmt.Errorf("unknown scheduler %q (use fifo or fair)", *scheduler)
	}

	start := time.Now()
	res, err := swim.Replay(tr, swim.ReplayOptions{
		Nodes:           *nodes,
		Scheduler:       sched,
		StragglerProb:   *stragglers,
		StragglerFactor: *factor,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "replayed %d jobs under %s in %v\n", res.Completed, res.Scheduler,
		time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stdout, "latency: median=%.0fs mean=%.0fs p99=%.0fs\n",
		res.MedianLatency(), res.MeanLatency(), res.P99Latency())
	fmt.Fprintf(stdout, "makespan: %.1fh, cluster capacity %d slots\n",
		res.MakespanSec/3600, res.TotalSlots)
	n := len(res.HourlyOccupancy)
	if n > 7*24 {
		n = 7 * 24
	}
	fmt.Fprintf(stdout, "occupancy (first %dh): %s\n", n, report.Sparkline(res.HourlyOccupancy[:n]))
	return nil
}
