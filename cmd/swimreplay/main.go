// Command swimreplay replays a workload trace on the discrete-event
// MapReduce cluster simulator and reports job latencies and slot
// occupancy — the SWIM replay step, with the live Hadoop cluster replaced
// by the simulator substrate.
//
//	swimreplay -workload CC-e -duration 48h -scheduler fair
//	swimreplay -in cc-b.jsonl -nodes 30 -stragglers 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	swim "repro"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swimreplay: ")

	var (
		in         = flag.String("in", "", "trace file to replay (.jsonl or .csv)")
		workload   = flag.String("workload", "", "generate this workload instead of reading a file: "+strings.Join(swim.Workloads(), ", "))
		seed       = flag.Int64("seed", 1, "generator / straggler seed")
		duration   = flag.Duration("duration", 0, "generated duration when -workload is used")
		nodes      = flag.Int("nodes", 0, "cluster nodes (0 = the trace's machine count)")
		scheduler  = flag.String("scheduler", "fifo", "scheduling discipline: fifo or fair")
		stragglers = flag.Float64("stragglers", 0, "per-task straggler probability")
		factor     = flag.Float64("straggler-factor", 5, "straggler slowdown factor")
	)
	flag.Parse()

	var tr *swim.Trace
	var err error
	switch {
	case *in != "":
		tr, err = swim.LoadTrace(*in, swim.Meta{Name: *in})
	case *workload != "":
		tr, err = swim.Generate(swim.GenerateOptions{Workload: *workload, Seed: *seed, Duration: *duration})
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	var sched swim.SchedulerKind
	switch *scheduler {
	case "fifo":
		sched = swim.SchedulerFIFO
	case "fair":
		sched = swim.SchedulerFair
	default:
		log.Fatalf("unknown scheduler %q (use fifo or fair)", *scheduler)
	}

	start := time.Now()
	res, err := swim.Replay(tr, swim.ReplayOptions{
		Nodes:           *nodes,
		Scheduler:       sched,
		StragglerProb:   *stragglers,
		StragglerFactor: *factor,
		Seed:            *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed %d jobs under %s in %v\n", res.Completed, res.Scheduler,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("latency: median=%.0fs mean=%.0fs p99=%.0fs\n",
		res.MedianLatency(), res.MeanLatency(), res.P99Latency())
	fmt.Printf("makespan: %.1fh, cluster capacity %d slots\n",
		res.MakespanSec/3600, res.TotalSlots)
	n := len(res.HourlyOccupancy)
	if n > 7*24 {
		n = 7 * 24
	}
	fmt.Printf("occupancy (first %dh): %s\n", n, report.Sparkline(res.HourlyOccupancy[:n]))
}
