package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	swim "repro"
)

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-in or -workload") {
		t.Errorf("no input should error, got %v", err)
	}
	if err := run([]string{"-stream"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-stream requires -in") {
		t.Errorf("-stream without -in should error, got %v", err)
	}
	if err := run([]string{"-in", "x.jsonl", "-sketch"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-sketch requires -stream") {
		t.Errorf("-sketch without -stream should error, got %v", err)
	}
	if err := run([]string{"-in", "x.jsonl", "-shards", "4"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-shards requires -stream") {
		t.Errorf("-shards without -stream should error, got %v", err)
	}
	if err := run([]string{"-in", "x.jsonl", "-stream", "-shards", "-2"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-shards must be") {
		t.Errorf("negative -shards should error, got %v", err)
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errb); err == nil {
		t.Error("missing file should error")
	}
}

// TestRunEndToEnd: generate a tiny trace with swimgen's library path,
// then analyze it materialized, streamed, and sketched; all three must
// succeed and agree on the headline sections they share.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cc-b.jsonl")
	if _, err := swim.GenerateTo(path, swim.GenerateOptions{Workload: "CC-b", Seed: 2, Duration: 26 * 3600 * 1e9}); err != nil {
		t.Fatal(err)
	}

	var mat, str, sk, errb bytes.Buffer
	if err := run([]string{"-in", path, "-skip-clustering"}, &mat, &errb); err != nil {
		t.Fatalf("materialized: %v (stderr: %s)", err, errb.String())
	}
	if err := run([]string{"-in", path, "-stream"}, &str, &errb); err != nil {
		t.Fatalf("streamed: %v (stderr: %s)", err, errb.String())
	}
	if err := run([]string{"-in", path, "-stream", "-sketch"}, &sk, &errb); err != nil {
		t.Fatalf("sketched: %v (stderr: %s)", err, errb.String())
	}
	// Shard-parallel analysis renders byte-identically to the
	// sequential stream — the merge contract, observed at the CLI.
	var sh4, sh0 bytes.Buffer
	if err := run([]string{"-in", path, "-stream", "-shards", "4"}, &sh4, &errb); err != nil {
		t.Fatalf("shards=4: %v (stderr: %s)", err, errb.String())
	}
	if !bytes.Equal(sh4.Bytes(), str.Bytes()) {
		t.Error("-shards 4 output differs from sequential -stream output")
	}
	if err := run([]string{"-in", path, "-stream", "-shards", "0"}, &sh0, &errb); err != nil {
		t.Fatalf("shards=0: %v (stderr: %s)", err, errb.String())
	}
	if !bytes.Equal(sh0.Bytes(), str.Bytes()) {
		t.Error("-shards 0 output differs from sequential -stream output")
	}
	for name, buf := range map[string]*bytes.Buffer{"materialized": &mat, "streamed": &str, "sketched": &sk} {
		s := buf.String()
		for _, want := range []string{"==== Workload", "-- Figure 1", "-- Figure 7", "-- Figure 8"} {
			if !strings.Contains(s, want) {
				t.Errorf("%s output missing %q", name, want)
			}
		}
	}
	// Streaming skips the materialization-only analyses.
	if strings.Contains(str.String(), "-- Table 2") {
		t.Error("streamed output should not contain Table 2")
	}
	// The shared header line (jobs, bytes moved) must agree exactly.
	matHead := strings.SplitN(mat.String(), "\n", 3)
	strHead := strings.SplitN(str.String(), "\n", 3)
	if matHead[1] != strHead[1] {
		t.Errorf("summary lines differ:\n%s\n%s", matHead[1], strHead[1])
	}
}

func TestRunGenerateAndAnalyze(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "CC-a", "-duration", "25h", "-skip-clustering"}, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "==== Workload CC-a") {
		t.Errorf("missing workload header: %.80q", out.String())
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	csvDir := filepath.Join(dir, "figs")
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "CC-a", "-duration", "25h", "-skip-clustering", "-csv-dir", csvDir}, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "exported per-figure CSVs") {
		t.Error("missing export confirmation")
	}
}

func TestRunStreamRejectsCSV(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-in", "t.csv", "-stream"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), ".jsonl") {
		t.Errorf("streaming a CSV should error clearly, got %v", err)
	}
}
