// Command swimanalyze runs the study's full analysis methodology over a
// workload trace and prints every applicable figure and table.
//
// Analyze a trace file produced by swimgen:
//
//	swimanalyze -in cc-b.jsonl
//
// Stream a paper-length trace without loading it into memory (skips the
// analyses that need the whole trace at once — Table 2 k-means and the
// path-based Figures 2–6):
//
//	swimanalyze -in fb-2009.jsonl -stream
//
// Or trade memory for wall-clock: analyze the stream in parallel shards
// merged deterministically (byte-identical report at any shard count):
//
//	swimanalyze -in fb-2009.jsonl -stream -shards 0   # one shard per CPU
//
// Or generate-and-analyze in one step:
//
//	swimanalyze -workload FB-2009 -duration 336h -seed 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	swim "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "swimanalyze: %v\n", err)
		os.Exit(2)
	}
}

// run is the testable body: parses args, loads or generates a trace,
// analyzes, and renders to stdout; errors go to the caller instead of
// os.Exit.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swimanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "trace file to analyze (.jsonl or .csv)")
		workload = fs.String("workload", "", "generate this workload instead of reading a file: "+strings.Join(swim.Workloads(), ", "))
		seed     = fs.Int64("seed", 1, "generator seed when -workload is used")
		duration = fs.Duration("duration", 0, "generated duration when -workload is used")
		topNames = fs.Int("top-names", 8, "number of job-name first words to list (Figure 10)")
		noTable2 = fs.Bool("skip-clustering", false, "skip the Table 2 k-means analysis")
		stream   = fs.Bool("stream", false, "single-pass streaming analysis of -in (.jsonl only: CSV carries no trace-length metadata); memory independent of trace length; skips Table 2 and the path-based Figures 2-6")
		sketch   = fs.Bool("sketch", false, "with -stream: use fixed-memory quantile sketches for Figure 1 (<2% relative quantile error) so memory is independent of job count too")
		shards   = fs.Int("shards", 1, "with -stream: analyze the trace in this many parallel shards merged deterministically (0 = one per CPU); the report is byte-identical at any shard count, but the jobs are held in memory while the shards run")
		csvDir   = fs.String("csv-dir", "", "also export per-figure CSV data files into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stream && *in == "" {
		return fmt.Errorf("-stream requires -in (streaming reads from a trace file)")
	}
	if *stream && strings.HasSuffix(*in, ".csv") {
		return fmt.Errorf("-stream needs a .jsonl trace: CSV files carry no trace-length metadata, which the hourly binning requires (analyze the CSV without -stream instead)")
	}
	if *sketch && !*stream {
		return fmt.Errorf("-sketch requires -stream")
	}
	if *shards != 1 && !*stream {
		return fmt.Errorf("-shards requires -stream (the materialized analysis is not sharded)")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (0 = one per CPU)")
	}

	opts := swim.AnalyzeOptions{
		TopNames:        *topNames,
		SkipClustering:  *noTable2,
		SketchDataSizes: *sketch,
		Shards:          *shards,
	}
	var rep *swim.Report
	var err error
	switch {
	case *stream && *shards != 1:
		// Scatter/gather: same report bytes as the sequential stream,
		// wall-clock divided across shards.
		var src swim.TraceSource
		if src, err = swim.OpenTrace(*in, swim.Meta{Name: *in}); err == nil {
			rep, err = swim.AnalyzeSourceParallel(src, opts)
			src.Close()
		}
	case *stream:
		rep, err = swim.AnalyzeFrom(*in, swim.Meta{Name: *in}, opts)
	case *in != "":
		var tr *swim.Trace
		if tr, err = swim.LoadTrace(*in, swim.Meta{Name: *in}); err == nil {
			rep, err = swim.Analyze(tr, opts)
		}
	case *workload != "":
		var tr *swim.Trace
		if tr, err = swim.Generate(swim.GenerateOptions{Workload: *workload, Seed: *seed, Duration: *duration}); err == nil {
			rep, err = swim.Analyze(tr, opts)
		}
	default:
		fs.Usage()
		return fmt.Errorf("need -in or -workload")
	}
	if err != nil {
		return err
	}
	if err := rep.Render(stdout); err != nil {
		return err
	}
	if *csvDir != "" {
		if err := rep.ExportCSV(*csvDir); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "exported per-figure CSVs to %s\n", *csvDir)
	}
	return nil
}
