// Command swimanalyze runs the study's full analysis methodology over a
// workload trace and prints every applicable figure and table.
//
// Analyze a trace file produced by swimgen:
//
//	swimanalyze -in cc-b.jsonl
//
// Or generate-and-analyze in one step:
//
//	swimanalyze -workload FB-2009 -duration 336h -seed 1
package main

import (
	"flag"
	"log"
	"os"
	"strings"

	swim "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swimanalyze: ")

	var (
		in       = flag.String("in", "", "trace file to analyze (.jsonl or .csv)")
		workload = flag.String("workload", "", "generate this workload instead of reading a file: "+strings.Join(swim.Workloads(), ", "))
		seed     = flag.Int64("seed", 1, "generator seed when -workload is used")
		duration = flag.Duration("duration", 0, "generated duration when -workload is used")
		topNames = flag.Int("top-names", 8, "number of job-name first words to list (Figure 10)")
		noTable2 = flag.Bool("skip-clustering", false, "skip the Table 2 k-means analysis")
		csvDir   = flag.String("csv-dir", "", "also export per-figure CSV data files into this directory")
	)
	flag.Parse()

	var tr *swim.Trace
	var err error
	switch {
	case *in != "":
		tr, err = swim.LoadTrace(*in, swim.Meta{Name: *in})
	case *workload != "":
		tr, err = swim.Generate(swim.GenerateOptions{Workload: *workload, Seed: *seed, Duration: *duration})
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	rep, err := swim.Analyze(tr, swim.AnalyzeOptions{
		TopNames:       *topNames,
		SkipClustering: *noTable2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *csvDir != "" {
		if err := rep.ExportCSV(*csvDir); err != nil {
			log.Fatal(err)
		}
		log.Printf("exported per-figure CSVs to %s", *csvDir)
	}
}
