package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	swim "repro"
	"repro/internal/obs"
	"repro/internal/trace"
)

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errb, nil, nil); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-h"}, &out, &errb, nil, nil); err != flag.ErrHelp {
		t.Errorf("-h should return flag.ErrHelp, got %v", err)
	}
	if err := run([]string{"-preload", "nope", "-addr", "127.0.0.1:0"}, &out, &errb, nil, nil); err == nil {
		t.Error("unknown preload workload should error")
	}
	if err := run([]string{"-addr", "not-an-addr:xx:yy"}, &out, &errb, nil, nil); err == nil {
		t.Error("bad listen address should error")
	}
	if err := run([]string{"-peers", "n0=http://127.0.0.1:1", "-addr", "127.0.0.1:0"}, &out, &errb, nil, nil); err == nil {
		t.Error("-peers without -node-id should error")
	}
	if err := run([]string{"-peers", "bogus", "-node-id", "n0", "-addr", "127.0.0.1:0"}, &out, &errb, nil, nil); err == nil {
		t.Error("malformed -peers should error")
	}
}

// TestRunServesAndShutsDown boots the real binary path on a random
// port with a preloaded trace, exercises the API over TCP, and shuts
// down cleanly via the stop channel.
func TestRunServesAndShutsDown(t *testing.T) {
	var out, errb bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		runErr = run([]string{
			"-addr", "127.0.0.1:0",
			"-preload", "CC-a",
			"-preload-duration", "25h",
			"-quiet",
		}, &out, &errb, ready, stop)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not come up (stdout: %s, stderr: %s)", out.String(), errb.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	// The preloaded trace serves a report, and the repeat is a hit.
	for i, want := range []string{"MISS", "HIT"} {
		resp, err = http.Get(base + "/v1/traces/CC-a/report")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report %d: %d %.200s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Cache"); got != want {
			t.Errorf("report %d: X-Cache=%q want %q", i, got, want)
		}
		if i == 0 {
			var rep struct {
				Summary struct {
					Jobs int `json:"jobs"`
				} `json:"summary"`
			}
			if err := json.Unmarshal(body, &rep); err != nil || rep.Summary.Jobs == 0 {
				t.Errorf("report body: %v %.200s", err, body)
			}
		}
	}

	close(stop)
	wg.Wait()
	if runErr != nil {
		t.Errorf("run returned %v (stderr: %s)", runErr, errb.String())
	}
}

// startSwimd boots run() on a random port and returns the base URL, the
// stop channel, and a wait func returning run's error and stdout.
func startSwimd(t *testing.T, args ...string) (base string, stop chan struct{}, wait func() (error, string)) {
	t.Helper()
	var out, errb bytes.Buffer
	ready := make(chan string, 1)
	stop = make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		runErr = run(append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...), &out, &errb, ready, stop)
	}()
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not come up (stdout: %s, stderr: %s)", out.String(), errb.String())
	}
	return base, stop, func() (error, string) {
		wg.Wait()
		return runErr, out.String()
	}
}

// reservePorts grabs n distinct loopback addresses by binding and
// releasing listeners. The cluster flags need every member's address
// before any member starts, so the ports are reserved up front; the
// window between release and swimd's own bind is unobservably small
// for a test that owns the machine.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestClusterEndToEnd boots a real 3-node swimd cluster over TCP:
// a sharded ingest through one node, scatter/gather reports through
// another — byte-identical to a single-node swimd serving the same
// upload — and a node killed mid-service with the survivors still
// answering in full from the replicas.
func TestClusterEndToEnd(t *testing.T) {
	tr, err := swim.Generate(swim.GenerateOptions{Workload: "FB-2009", Seed: 3, Duration: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var payload bytes.Buffer
	if err := trace.WriteJSONL(&payload, tr); err != nil {
		t.Fatal(err)
	}

	// The reference answer: one ordinary swimd serving the same bytes.
	soloBase, soloStop, soloWait := startSwimd(t)
	defer func() { close(soloStop); soloWait() }()
	resp, err := http.Post(soloBase+"/v1/traces/e2e", "application/jsonl", bytes.NewReader(payload.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("solo ingest: %d", resp.StatusCode)
	}
	resp, err = http.Get(soloBase + "/v1/traces/e2e/report")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	addrs := reservePorts(t, 3)
	peers := make([]string, 3)
	for i, a := range addrs {
		peers[i] = fmt.Sprintf("n%d=http://%s", i, a)
	}
	peersFlag := strings.Join(peers, ",")
	bases := make([]string, 3)
	stops := make([]chan struct{}, 3)
	waits := make([]func() (error, string), 3)
	for i := range addrs {
		bases[i], stops[i], waits[i] = startSwimd(t,
			"-addr", addrs[i],
			"-node-id", fmt.Sprintf("n%d", i),
			"-peers", peersFlag,
			"-replication", "2",
			// Peers park pre-dialed spare connections; don't spend the full
			// default grace on them at each node's shutdown.
			"-drain-timeout", "250ms",
		)
	}
	alive := []int{0, 1}
	defer func() {
		for _, i := range alive {
			close(stops[i])
			waits[i]()
		}
	}()

	resp, err = http.Post(bases[0]+"/v1/traces/e2e", "application/jsonl", bytes.NewReader(payload.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("cluster ingest: %d %.200s", resp.StatusCode, body)
	}
	var info struct {
		Cluster bool `json:"cluster"`
		Shards  int  `json:"shards"`
	}
	if err := json.Unmarshal(body, &info); err != nil || !info.Cluster || info.Shards != 3 {
		t.Fatalf("cluster ingest info: %v %.200s", err, body)
	}

	// A report through a node that did not coordinate the ingest is the
	// single-node answer, byte for byte.
	resp, err = http.Get(bases[1] + "/v1/traces/e2e/report")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster report: %d %.200s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster report differs from single-node (%d vs %d bytes)", len(got), len(want))
	}

	// Kill node 2 and query again: with replication 2 every shard still
	// has a live owner, so the answer stays complete and identical.
	close(stops[2])
	if err, _ := waits[2](); err != nil {
		t.Fatalf("node 2 shutdown: %v", err)
	}
	resp, err = http.Get(bases[0] + "/v1/traces/e2e/report?top=9")
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := io.ReadAll(resp.Body)
	degradedHdr := resp.Header.Get("X-Analysis")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill report: %d %.200s", resp.StatusCode, got2)
	}
	if degradedHdr == "degraded" {
		t.Fatalf("post-kill report degraded despite replication=2")
	}
	var rep struct {
		Summary struct {
			Jobs int `json:"jobs"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(got2, &rep); err != nil || rep.Summary.Jobs != tr.Len() {
		t.Fatalf("post-kill report jobs=%d want %d (err=%v)", rep.Summary.Jobs, tr.Len(), err)
	}
}

// TestGracefulShutdownDrainsUploadAndPersists is the shutdown contract
// over the durable store: a JSONL upload still streaming when the stop
// signal arrives is drained to completion, its manifest committed, and
// a restarted swimd over the same data dir serves the trace — cold,
// from the persisted partial — with no re-upload.
func TestGracefulShutdownDrainsUploadAndPersists(t *testing.T) {
	dir := t.TempDir()
	tr, err := swim.Generate(swim.GenerateOptions{Workload: "CC-a", Seed: 1, Duration: 25 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := trace.WriteJSONL(&body, tr); err != nil {
		t.Fatal(err)
	}
	payload := body.Bytes()

	base, stop, wait := startSwimd(t, "-data", dir)

	// Stream the upload through a pipe so we control its pacing: the
	// first half is consumed by the server (pipe writes block until
	// read), then the stop signal fires mid-upload, then the rest goes
	// through. Shutdown must wait for the 201, not cut the request.
	pr, pw := io.Pipe()
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/traces/survivor", "application/jsonl", pr)
		if err != nil {
			done <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{status: resp.StatusCode}
	}()
	half := len(payload) / 2
	if _, err := pw.Write(payload[:half]); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if _, err := pw.Write(payload[half:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	res := <-done
	if res.err != nil || res.status != http.StatusCreated {
		t.Fatalf("in-flight upload not drained: status=%d err=%v", res.status, res.err)
	}
	runErr, stdout := wait()
	if runErr != nil {
		t.Fatalf("run returned %v", runErr)
	}
	if !strings.Contains(stdout, "durable state flushed") {
		t.Errorf("shutdown did not report the durable flush; stdout: %s", stdout)
	}

	// Restart over the same dir: the trace is recovered and a cold
	// report is served from the persisted aggregate without rescanning.
	base2, stop2, wait2 := startSwimd(t, "-data", dir)
	defer func() {
		close(stop2)
		wait2()
	}()
	resp, err := http.Get(base2 + "/v1/traces/survivor/report")
	if err != nil {
		t.Fatal(err)
	}
	bodyBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report after restart: %d %.200s", resp.StatusCode, bodyBytes)
	}
	if got := resp.Header.Get("X-Analysis"); got != "recovered-partial" {
		t.Errorf("restarted report X-Analysis = %q, want recovered-partial", got)
	}
	var rep struct {
		Summary struct {
			Jobs int `json:"jobs"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(bodyBytes, &rep); err != nil || rep.Summary.Jobs != tr.Len() {
		t.Errorf("restarted report jobs=%d want %d (err=%v)", rep.Summary.Jobs, tr.Len(), err)
	}
}

// TestMetricsEndToEnd boots the real binary path over TCP and verifies
// the observability surface a scraper sees: a parseable /metrics
// payload carrying request, storage, and runtime series, and an
// X-Request-Id on every response.
func TestMetricsEndToEnd(t *testing.T) {
	base, stop, wait := startSwimd(t, "-preload", "CC-a", "-preload-duration", "25h")

	resp, err := http.Get(base + "/v1/traces/CC-a/report")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("report response missing X-Request-Id")
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d %s", resp.StatusCode, payload)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type %q", ct)
	}
	exp, err := obs.ParsePrometheus(string(payload))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	for _, name := range []string{
		"swim_http_requests_total",
		"swim_http_request_duration_seconds_bucket",
		"swim_store_traces",
		"swim_store_jobs",
		"swim_storage_trace_segments",
		"swim_build_info",
		"swim_uptime_seconds",
		"go_goroutines",
	} {
		if len(exp.Find(name)) == 0 {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if v, ok := exp.Value("swim_http_requests_total", "endpoint", "GET /v1/traces/{name}/report", "code", "200"); !ok || v != 1 {
		t.Errorf("report series %v, %v", v, ok)
	}
	if v, ok := exp.Value("swim_store_traces"); !ok || v != 1 {
		t.Errorf("swim_store_traces %v, %v", v, ok)
	}

	// The debug ring is reachable over TCP too and holds the report.
	var dbg struct {
		Count int `json:"count"`
	}
	resp, err = http.Get(base + "/v1/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&dbg)
	resp.Body.Close()
	if err != nil || dbg.Count == 0 {
		t.Errorf("debug ring: err=%v count=%d", err, dbg.Count)
	}

	close(stop)
	if err, _ := wait(); err != nil {
		t.Errorf("run returned %v", err)
	}
}
