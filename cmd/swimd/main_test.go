package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errb, nil, nil); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-h"}, &out, &errb, nil, nil); err != flag.ErrHelp {
		t.Errorf("-h should return flag.ErrHelp, got %v", err)
	}
	if err := run([]string{"-preload", "nope", "-addr", "127.0.0.1:0"}, &out, &errb, nil, nil); err == nil {
		t.Error("unknown preload workload should error")
	}
	if err := run([]string{"-addr", "not-an-addr:xx:yy"}, &out, &errb, nil, nil); err == nil {
		t.Error("bad listen address should error")
	}
}

// TestRunServesAndShutsDown boots the real binary path on a random
// port with a preloaded trace, exercises the API over TCP, and shuts
// down cleanly via the stop channel.
func TestRunServesAndShutsDown(t *testing.T) {
	var out, errb bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		runErr = run([]string{
			"-addr", "127.0.0.1:0",
			"-preload", "CC-a",
			"-preload-duration", "25h",
			"-quiet",
		}, &out, &errb, ready, stop)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not come up (stdout: %s, stderr: %s)", out.String(), errb.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	// The preloaded trace serves a report, and the repeat is a hit.
	for i, want := range []string{"MISS", "HIT"} {
		resp, err = http.Get(base + "/v1/traces/CC-a/report")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report %d: %d %.200s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Cache"); got != want {
			t.Errorf("report %d: X-Cache=%q want %q", i, got, want)
		}
		if i == 0 {
			var rep struct {
				Summary struct {
					Jobs int `json:"jobs"`
				} `json:"summary"`
			}
			if err := json.Unmarshal(body, &rep); err != nil || rep.Summary.Jobs == 0 {
				t.Errorf("report body: %v %.200s", err, body)
			}
		}
	}

	close(stop)
	wg.Wait()
	if runErr != nil {
		t.Errorf("run returned %v (stderr: %s)", runErr, errb.String())
	}
}
