// Command swimd serves the study's workload analytics as a long-running
// HTTP/JSON service: named traces live in a concurrent in-memory store
// (uploaded as JSONL streams, appended in live batches, or generated on
// demand from the calibrated profiles) and every report, synthesis, and
// replay result is memoized in a fingerprint-keyed, single-flight
// cache, so concurrent identical requests compute once and repeats are
// served in microseconds.
//
//	swimd -addr :8080 -preload FB-2009,CC-b -preload-duration 168h
//
//	curl localhost:8080/healthz
//	curl -X POST --data-binary @cc-b.jsonl localhost:8080/v1/traces/mine
//	curl -X POST --data-binary @batch.jsonl localhost:8080/v1/traces/mine/append
//	curl localhost:8080/v1/traces/mine/report | jq .summary
//	curl 'localhost:8080/v1/traces/mine/report?window=6h' | jq .summary
//	curl localhost:8080/v1/stats | jq .cache
//
// See README.md ("Serving the analytics: swimd") for the endpoint tour.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	swim "repro"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, nil); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "swimd: %v\n", err)
		os.Exit(2)
	}
}

// run is the testable body: it parses args, preloads, listens, and
// serves until stop is closed or a termination signal arrives. The
// bound address is sent on ready (if non-nil) once the listener is up.
func run(args []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("swimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		maxTraces    = fs.Int("max-traces", 0, "trace store capacity in traces (0 = default 64)")
		maxJobs      = fs.Int("max-total-jobs", 0, "trace store capacity in total jobs (0 = default 2M)")
		cacheSize    = fs.Int("cache-entries", 0, "result cache capacity (0 = default 256)")
		preload      = fs.String("preload", "", "comma-separated workloads to generate and store at startup: "+strings.Join(swim.Workloads(), ", "))
		preloadDur   = fs.Duration("preload-duration", 48*time.Hour, "duration of preloaded traces")
		seed         = fs.Int64("seed", 1, "preload generation seed")
		partials     = fs.Bool("partials", true, "keep a frozen partial aggregate per stored trace, built at ingest, so a first cold report merges precomputed sections instead of re-reading jobs (~24 B/job of extra heap; disable to trade cold-report latency for memory)")
		dataDir      = fs.String("data", "", "durable storage directory: traces persist as checksummed segment files with partial-aggregate snapshots, survive restarts (verified at startup), and spill to disk instead of being rejected when they exceed the in-memory job budget")
		segCodec     = fs.String("segment-codec", "", "on-disk segment format for newly stored traces: colseg (compact columnar binary, the default) or jsonl (canonical JSONL, the legacy format); existing segments always read back with the codec they were written with")
		compactEvery = fs.Duration("compact", 0, "background compaction sweep interval: fragmented traces (many small segments or underfilled columnar blocks, the shape long append sessions leave) are rewritten into packed generations with identical fingerprints; 0 disables, needs -data")
		compactSegs  = fs.Int("compact-min-segments", 0, "compact a trace once its generation holds at least this many segment files (0 = default 8)")
		compactFill  = fs.Float64("compact-min-fill", 0, "compact a trace whose columnar blocks average below this fraction of full (0 = default 0.5)")
		quiet        = fs.Bool("quiet", false, "disable server logging")
		slowReq      = fs.Duration("slow-request", 0, "latency at which a request is logged as slow and counted in swim_http_slow_requests_total (0 = default 500ms, negative disables)")
		pprofOn      = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: the profile endpoints expose process internals)")
		debugReqs    = fs.Int("debug-requests", 0, "recent-request ring size served by /v1/debug/requests (0 = default 256)")
		nodeID       = fs.String("node-id", "", "this node's identity in -peers (cluster mode)")
		peersList    = fs.String("peers", "", "cluster membership as id=url,id=url,... including this node; empty runs single-node")
		replicas     = fs.Int("replication", 0, "replica owners per trace shard (0 = default 2, clamped to the cluster size)")
		cshards      = fs.Int("cluster-shards", 0, "shard count for newly ingested cluster traces (0 = one per member)")
		peerTO       = fs.Duration("peer-timeout", 0, "one peer request attempt's timeout (0 = default 10s)")
		drainTO      = fs.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight requests before force-closing connections")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(stderr, nil))
	}
	if *peersList != "" && *nodeID == "" {
		return fmt.Errorf("-peers requires -node-id")
	}
	if *compactEvery > 0 && *dataDir == "" {
		return fmt.Errorf("-compact requires -data (compaction rewrites on-disk segments)")
	}
	srv, err := server.New(server.Config{
		MaxTraces:            *maxTraces,
		MaxTotalJobs:         *maxJobs,
		CacheEntries:         *cacheSize,
		DisablePartials:      !*partials,
		DataDir:              *dataDir,
		SegmentCodec:         *segCodec,
		CompactInterval:      *compactEvery,
		CompactMinSegments:   *compactSegs,
		CompactMinFill:       *compactFill,
		Logger:               logger,
		SlowRequestThreshold: *slowReq,
		EnablePprof:          *pprofOn,
		DebugRequests:        *debugReqs,
		Peers:                *peersList,
		NodeID:               *nodeID,
		Replication:          *replicas,
		ClusterShards:        *cshards,
		PeerTimeout:          *peerTO,
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		recovered := srv.Recovered()
		fmt.Fprintf(stdout, "swimd: durable store %s: recovered %d trace(s)\n", *dataDir, len(recovered))
		for _, info := range recovered {
			fmt.Fprintf(stdout, "  %s: %d jobs, fingerprint %.12s…\n", info.Name, info.Jobs, info.Fingerprint)
		}
	}

	if *preload != "" {
		for _, name := range strings.Split(*preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			start := time.Now()
			tr, err := swim.Generate(swim.GenerateOptions{Workload: name, Seed: *seed, Duration: *preloadDur})
			if err != nil {
				return fmt.Errorf("preloading %s: %w", name, err)
			}
			info, err := srv.Store().Put(name, tr)
			if err != nil {
				return fmt.Errorf("preloading %s: %w", name, err)
			}
			fmt.Fprintf(stdout, "preloaded %s: %d jobs over %v, fingerprint %.12s… (%v)\n",
				name, info.Jobs, *preloadDur, info.Fingerprint, time.Since(start).Round(time.Millisecond))
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "swimd: serving on %s\n", ln.Addr())
	if *peersList != "" {
		fmt.Fprintf(stdout, "swimd: cluster node %s of %s\n", *nodeID, *peersList)
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// Slow-client protection for a long-running service: bound how long
	// headers may trickle in and how long idle keep-alives are held.
	// No whole-request ReadTimeout — large trace uploads are legitimate
	// long requests.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	case <-ctx.Done():
	case <-stopOrNever(stop):
	}
	fmt.Fprintln(stdout, "swimd: shutting down")
	// Shutdown drains in-flight requests first — an upload mid-stream
	// finishes decoding and commits its manifest — then the durable
	// store is closed so nothing can start a write after the drain.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), *drainTO)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		// The grace period is for in-flight requests; what's left now is
		// stragglers — e.g. a peer's HTTP transport dialed a spare
		// connection and never sent a request on it, which Shutdown will
		// not reap while young. Force-close them rather than abandon the
		// shutdown: the durable store below must still be closed cleanly.
		fmt.Fprintln(stdout, "swimd: drain timed out, closing remaining connections")
		hs.Close()
	}
	<-done // Serve has returned http.ErrServerClosed
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "swimd: durable state flushed, bye")
	return nil
}

// stopOrNever turns a possibly-nil channel into one that never fires
// when nil, so the select above stays simple.
func stopOrNever(stop <-chan struct{}) <-chan struct{} {
	if stop != nil {
		return stop
	}
	return make(chan struct{})
}
