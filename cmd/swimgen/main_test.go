package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	swim "repro"
)

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-out") {
		t.Errorf("missing -out should error, got %v", err)
	}
	if err := run([]string{"-duration", "24h", "-out", filepath.Join(t.TempDir(), "x.txt")}, &out, &errb); err == nil {
		t.Error("unknown extension should error")
	}
	if err := run([]string{"-workload", "nope", "-out", "x.jsonl"}, &out, &errb); err == nil {
		t.Error("unknown workload should error")
	}
}

// TestRunGenerateStreamedAndMaterialized: both paths write the identical
// file and report the same summary line (modulo timing).
func TestRunGenerateStreamedAndMaterialized(t *testing.T) {
	dir := t.TempDir()
	mat := filepath.Join(dir, "mat.jsonl")
	str := filepath.Join(dir, "str.jsonl")
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "CC-b", "-duration", "25h", "-seed", "3", "-out", mat}, &out, &errb); err != nil {
		t.Fatalf("materialized: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "wrote "+mat) {
		t.Errorf("stdout missing report: %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-workload", "CC-b", "-duration", "25h", "-seed", "3", "-stream", "-out", str}, &out, &errb); err != nil {
		t.Fatalf("streamed: %v (stderr: %s)", err, errb.String())
	}
	a, err := os.ReadFile(mat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(str)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("-stream output differs from materialized output")
	}
	// The file round-trips through the façade loader.
	tr, err := swim.LoadTrace(str, swim.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 || tr.Meta.Name != "CC-b" {
		t.Errorf("loaded %d jobs, meta %+v", tr.Len(), tr.Meta)
	}
}

func TestRunGenerateCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "CC-a", "-duration", "24h", "-stream", "-out", path}, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("id,name,submit_unix_ms")) {
		t.Errorf("csv header missing: %.60q", data)
	}
}
