// Command swimgen generates a calibrated synthetic workload trace for one
// of the paper's seven workloads and writes it to a file.
//
// Usage:
//
//	swimgen -workload CC-b -duration 168h -seed 1 -out cc-b.jsonl
//
// The output format is chosen by extension: .jsonl (lossless, native) or
// .csv (flat job table). With -stream the trace is written as it is
// generated — memory stays bounded regardless of trace length, so full
// Table-1 durations (six months of FB-2009) are practical; the output
// bytes are identical either way.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	swim "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "swimgen: %v\n", err)
		os.Exit(2)
	}
}

// run is the testable body: parses args, generates, writes, and reports
// to stdout; errors go to the caller instead of os.Exit.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swimgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "CC-b", "workload to synthesize: "+strings.Join(swim.Workloads(), ", "))
		seed     = fs.Int64("seed", 1, "generator seed (deterministic output at any -parallelism)")
		duration = fs.Duration("duration", 0, "trace duration (0 = the workload's full Table-1 length)")
		scale    = fs.Float64("scale", 1.0, "arrival-rate scale factor")
		par      = fs.Int("parallelism", 0, "generation workers (0 = all cores); output is identical at any setting")
		stream   = fs.Bool("stream", false, "stream jobs to disk during generation (bounded memory; identical output)")
		out      = fs.String("out", "", "output file (.jsonl or .csv); required")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("missing required -out")
	}
	opts := swim.GenerateOptions{
		Workload:    *workload,
		Seed:        *seed,
		Duration:    *duration,
		RateScale:   *scale,
		Parallelism: *par,
	}
	start := time.Now()
	var sum swim.Summary
	if *stream {
		var err error
		sum, err = swim.GenerateTo(*out, opts)
		if err != nil {
			return err
		}
	} else {
		tr, err := swim.Generate(opts)
		if err != nil {
			return err
		}
		if err := swim.SaveTrace(*out, tr); err != nil {
			return err
		}
		sum = tr.Summarize()
	}
	fmt.Fprintf(stdout, "wrote %s: %d jobs, %s moved, %s span, generated in %v\n",
		*out, sum.Jobs, sum.BytesMoved, sum.Length, time.Since(start).Round(time.Millisecond))
	return nil
}
