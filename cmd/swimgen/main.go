// Command swimgen generates a calibrated synthetic workload trace for one
// of the paper's seven workloads and writes it to a file.
//
// Usage:
//
//	swimgen -workload CC-b -duration 168h -seed 1 -out cc-b.jsonl
//
// The output format is chosen by extension: .jsonl (lossless, native) or
// .csv (flat job table).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	swim "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swimgen: ")

	var (
		workload = flag.String("workload", "CC-b", "workload to synthesize: "+strings.Join(swim.Workloads(), ", "))
		seed     = flag.Int64("seed", 1, "generator seed (deterministic output at any -parallelism)")
		duration = flag.Duration("duration", 0, "trace duration (0 = the workload's full Table-1 length)")
		scale    = flag.Float64("scale", 1.0, "arrival-rate scale factor")
		par      = flag.Int("parallelism", 0, "generation workers (0 = all cores); output is identical at any setting")
		out      = flag.String("out", "", "output file (.jsonl or .csv); required")
	)
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	tr, err := swim.Generate(swim.GenerateOptions{
		Workload:    *workload,
		Seed:        *seed,
		Duration:    *duration,
		RateScale:   *scale,
		Parallelism: *par,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := swim.SaveTrace(*out, tr); err != nil {
		log.Fatal(err)
	}
	sum := tr.Summarize()
	fmt.Printf("wrote %s: %d jobs, %s moved, %s span, generated in %v\n",
		*out, sum.Jobs, sum.BytesMoved, sum.Length, time.Since(start).Round(time.Millisecond))
}
