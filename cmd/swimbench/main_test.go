package main

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-h"}, &out, &errb); err != flag.ErrHelp {
		t.Errorf("-h should return flag.ErrHelp, got %v", err)
	}
	if err := run([]string{"-only", "fig99"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "unknown section") {
		t.Errorf("unknown section should error, got %v", err)
	}
}

// TestRunSelectedSections: a short window with a section subset renders
// the chosen sections (and only those) against all seven workloads.
func TestRunSelectedSections(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-window", "25h", "-only", "table1,fig1,fig8"}, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"== Table 1:", "== Figure 1:", "== Figure 8:",
		"FB-2009", "CC-e", "done in",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stdout missing %q", want)
		}
	}
	for _, absent := range []string{"== Table 2:", "== Figure 2:", "== Consolidation"} {
		if strings.Contains(got, absent) {
			t.Errorf("stdout contains unselected section %q", absent)
		}
	}
}

// TestRunScaleDownSection exercises an ablation section end to end on a
// short window.
func TestRunScaleDownSection(t *testing.T) {
	if testing.Short() {
		t.Skip("generation-heavy, not -short")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-window", "49h", "-only", "scaledown"}, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "fidelity:") {
		t.Errorf("stdout missing fidelity: %s", out.String())
	}
}
