// Command swimbench regenerates every table and figure of the paper's
// evaluation from calibrated synthetic traces and prints paper-reported
// versus measured values side by side. Its output is the source of
// EXPERIMENTS.md.
//
//	swimbench                 # default: two-week windows, FB rate-scaled
//	swimbench -quick          # smaller windows for a fast smoke run
//	swimbench -seed 7         # different random universe
//	swimbench -only table1,fig8  # just the named sections
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	swim "repro"
	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/units"
)

// paperRow carries Table 1's published values for comparison.
type paperRow struct {
	jobs  int
	bytes units.Bytes
	p2m   float64 // Fig 8 peak-to-median where the paper gives one (0 = unreported)
}

var paperTable1 = map[string]paperRow{
	"CC-a":    {5759, 80 * units.TB, 0},
	"CC-b":    {22974, 600 * units.TB, 0},
	"CC-c":    {21030, 18 * units.PB, 0},
	"CC-d":    {13283, 8 * units.PB, 0},
	"CC-e":    {10790, 590 * units.TB, 0},
	"FB-2009": {1129193, units.Bytes(9.4e15), 31},
	"FB-2010": {1169184, units.Bytes(1.5e18), 9},
}

// sectionNames lists the runnable sections in print order.
var sectionNames = []string{
	"table1", "fig1", "fig2", "fig34", "fig5", "fig6", "fig7", "fig8",
	"fig9", "fig10", "table2", "scaledown", "cache", "scheduler",
	"drift", "tiered", "suite", "consolidation", "parallel",
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "swimbench: %v\n", err)
		os.Exit(2)
	}
}

// run is the testable body: parses args, generates and analyzes the
// requested workloads, and prints the selected sections to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swimbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick  = fs.Bool("quick", false, "short windows (2 days) for a fast smoke run")
		seed   = fs.Int64("seed", 1, "generation seed")
		par    = fs.Int("parallelism", 0, "trace-generation workers (0 = all cores); traces are identical at any setting")
		shards = fs.Int("shards", 0, "analysis shards for the parallel section (0 = one per CPU); reports are byte-identical at any setting")
		window = fs.Duration("window", 0, "generation window (0 = 14 days, or 2 days with -quick)")
		only   = fs.String("only", "", "comma-separated sections to run (default all): "+strings.Join(sectionNames, ", "))
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	dur := 14 * 24 * time.Hour
	if *quick {
		dur = 2 * 24 * time.Hour
	}
	if *window > 0 {
		dur = *window
	}

	selected := map[string]bool{}
	if *only == "" {
		for _, name := range sectionNames {
			selected[name] = true
		}
	} else {
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			found := false
			for _, known := range sectionNames {
				if name == known {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("unknown section %q (sections: %s)", name, strings.Join(sectionNames, ", "))
			}
			selected[name] = true
		}
	}

	start := time.Now()
	fmt.Fprintf(stdout, "swimbench: regenerating the paper's evaluation (window=%v, seed=%d)\n", dur, *seed)
	fmt.Fprintln(stdout, "NOTE: measured values come from calibrated synthetic traces over a")
	fmt.Fprintln(stdout, "window of the full trace; job/byte counts are compared per-hour.")
	fmt.Fprintln(stdout)

	// The figure/table sections read per-workload reports; the ablation
	// sections consume only the traces. Analyze lazily so e.g.
	// `-only scheduler` skips the whole analysis pipeline, and skip the
	// Table-2 clustering (by far the slowest analysis) unless table2 is
	// selected.
	needReports := false
	for name := range selected {
		if name == "table1" || name == "table2" || strings.HasPrefix(name, "fig") {
			needReports = true
			break
		}
	}
	reports := map[string]*swim.Report{}
	traces := map[string]*swim.Trace{}
	for _, name := range swim.Workloads() {
		tr, err := swim.Generate(swim.GenerateOptions{Workload: name, Seed: *seed, Duration: dur, Parallelism: *par})
		if err != nil {
			return err
		}
		traces[name] = tr
		if needReports {
			rep, err := swim.Analyze(tr, swim.AnalyzeOptions{SkipClustering: !selected["table2"]})
			if err != nil {
				return err
			}
			reports[name] = rep
		}
	}

	sections := map[string]func(io.Writer) error{
		"table1":        func(w io.Writer) error { return table1(w, reports) },
		"fig1":          func(w io.Writer) error { return figure1(w, reports) },
		"fig2":          func(w io.Writer) error { return figure2(w, reports) },
		"fig34":         func(w io.Writer) error { return figures34(w, reports) },
		"fig5":          func(w io.Writer) error { return figure5(w, reports) },
		"fig6":          func(w io.Writer) error { return figure6(w, reports) },
		"fig7":          func(w io.Writer) error { return figure7(w, reports, traces) },
		"fig8":          func(w io.Writer) error { return figure8(w, reports) },
		"fig9":          func(w io.Writer) error { return figure9(w, reports) },
		"fig10":         func(w io.Writer) error { return figure10(w, reports) },
		"table2":        func(w io.Writer) error { return table2(w, reports) },
		"scaledown":     func(w io.Writer) error { return swimScaleDown(w, traces, *seed) },
		"cache":         func(w io.Writer) error { return cacheAblation(w, traces) },
		"scheduler":     func(w io.Writer) error { return schedulerAblation(w, traces, *seed) },
		"drift":         func(w io.Writer) error { return eraDrift(w, traces) },
		"tiered":        func(w io.Writer) error { return tieredAblation(w, traces, *seed) },
		"suite":         func(w io.Writer) error { return workloadSuite(w, *quick, *seed) },
		"consolidation": func(w io.Writer) error { return consolidation(w, traces) },
		"parallel":      func(w io.Writer) error { return parallelAnalysis(w, traces, *shards) },
	}
	for _, name := range sectionNames {
		if !selected[name] {
			continue
		}
		if err := sections[name](stdout); err != nil {
			return fmt.Errorf("section %s: %w", name, err)
		}
	}

	fmt.Fprintf(stdout, "done in %v\n", time.Since(start).Round(time.Second))
	return nil
}

// table1 compares per-hour job and byte rates with Table 1's full-trace
// numbers (the generated window is shorter than the full collection).
func table1(w io.Writer, reports map[string]*swim.Report) error {
	fmt.Fprintln(w, "== Table 1: trace summaries (rates per hour; paper values scaled) ==")
	tb := report.NewTable("Workload", "Jobs/hr (paper)", "Jobs/hr (meas)", "Bytes/hr (paper)", "Bytes/hr (meas)")
	for _, name := range swim.Workloads() {
		rep := reports[name]
		p, err := swim.WorkloadProfile(name)
		if err != nil {
			return err
		}
		paper := paperTable1[name]
		hours := p.TraceLength.Hours()
		measHours := rep.Summary.Length.Hours()
		tb.AddRow(name,
			fmt.Sprintf("%.1f", float64(paper.jobs)/hours),
			fmt.Sprintf("%.1f", float64(rep.Summary.Jobs)/measHours),
			units.Bytes(float64(paper.bytes)/hours).String(),
			units.Bytes(float64(rep.Summary.BytesMoved)/measHours).String(),
		)
	}
	return render(w, tb)
}

func figure1(w io.Writer, reports map[string]*swim.Report) error {
	fmt.Fprintln(w, "== Figure 1: per-job data size medians ==")
	tb := report.NewTable("Workload", "median input", "median shuffle", "median output")
	var all []*analysis.DataSizes
	for _, name := range swim.Workloads() {
		ds := reports[name].DataSizes
		all = append(all, ds)
		tb.AddRow(name,
			units.Bytes(ds.Input.Median()).String(),
			units.Bytes(ds.Shuffle.Median()).String(),
			units.Bytes(ds.Output.Median()).String())
	}
	if err := render(w, tb); err != nil {
		return err
	}
	in, sh, out := analysis.MedianSpanAcrossWorkloads(all)
	fmt.Fprintf(w, "median spans: input %.1f / shuffle %.1f / output %.1f orders of magnitude\n", in, sh, out)
	fmt.Fprintln(w, "paper:        input 6 / shuffle 8 / output 4")
	fmt.Fprintln(w)
	return nil
}

func figure2(w io.Writer, reports map[string]*swim.Report) error {
	fmt.Fprintln(w, "== Figure 2: file access frequency Zipf fits (paper: slope 5/6 = 0.833, straight lines) ==")
	tb := report.NewTable("Workload", "alpha (input)", "R2", "alpha (output)", "R2", "files")
	for _, name := range swim.Workloads() {
		rep := reports[name]
		if rep.InputAccess == nil {
			tb.AddRow(name, "no path data", "", "", "", "")
			continue
		}
		outA, outR := "n/a", ""
		if rep.OutputAccess != nil {
			outA = fmt.Sprintf("%.3f", rep.OutputAccess.Fit.Alpha)
			outR = fmt.Sprintf("%.3f", rep.OutputAccess.Fit.R2)
		}
		tb.AddRow(name,
			fmt.Sprintf("%.3f", rep.InputAccess.Fit.Alpha),
			fmt.Sprintf("%.3f", rep.InputAccess.Fit.R2),
			outA, outR,
			fmt.Sprintf("%d", rep.InputAccess.DistinctFiles))
	}
	return render(w, tb)
}

func figures34(w io.Writer, reports map[string]*swim.Report) error {
	fmt.Fprintln(w, "== Figures 3-4: access patterns vs file size (paper: 80-1 .. 80-8 rules; 90% of jobs < a few GB) ==")
	tb := report.NewTable("Workload", "80-N input", "80-N output", "p90 accessed input size")
	for _, name := range swim.Workloads() {
		rep := reports[name]
		if rep.InputSizeAccess == nil {
			tb.AddRow(name, "no path data", "", "")
			continue
		}
		outRule := "n/a"
		if rep.OutputSizeAccess != nil {
			outRule = fmt.Sprintf("80-%.1f", rep.OutputSizeAccess.EightyRule())
		}
		tb.AddRow(name,
			fmt.Sprintf("80-%.1f", rep.InputSizeAccess.EightyRule()),
			outRule,
			units.Bytes(rep.InputSizeAccess.JobsCDF.Quantile(0.9)).String())
	}
	return render(w, tb)
}

func figure5(w io.Writer, reports map[string]*swim.Report) error {
	fmt.Fprintln(w, "== Figure 5: re-access intervals (paper: 75% within 6 hours) ==")
	tb := report.NewTable("Workload", "within 1min", "within 1hr", "within 6hr")
	for _, name := range swim.Workloads() {
		rep := reports[name]
		if rep.Intervals == nil {
			tb.AddRow(name, "no path data", "", "")
			continue
		}
		iv := rep.Intervals
		tb.AddRow(name,
			report.Percent(iv.FractionWithin(time.Minute)),
			report.Percent(iv.FractionWithin(time.Hour)),
			report.Percent(iv.FractionWithin(6*time.Hour)))
	}
	return render(w, tb)
}

func figure6(w io.Writer, reports map[string]*swim.Report) error {
	fmt.Fprintln(w, "== Figure 6: jobs reading pre-existing data (paper: up to 78% for CC-c/d/e) ==")
	tb := report.NewTable("Workload", "re-access input", "re-access output", "total")
	for _, name := range swim.Workloads() {
		rep := reports[name]
		if rep.Reaccess == nil {
			tb.AddRow(name, "no path data", "", "")
			continue
		}
		rf := rep.Reaccess
		out := report.Percent(rf.OutputReaccess)
		if !rf.OutputObservable {
			out = "unobservable"
		}
		tb.AddRow(name,
			report.Percent(rf.InputReaccess), out,
			report.Percent(rf.InputReaccess+rf.OutputReaccess))
	}
	return render(w, tb)
}

func figure7(w io.Writer, reports map[string]*swim.Report, traces map[string]*swim.Trace) error {
	fmt.Fprintln(w, "== Figure 7: weekly behavior (hourly sparklines, first week) ==")
	for _, name := range swim.Workloads() {
		rep := reports[name]
		week := rep.Series
		if w7, err := rep.Series.Week(0); err == nil {
			week = w7
		}
		fmt.Fprintf(w, "%-8s jobs  %s\n", name, report.Sparkline(week.Jobs))
		fmt.Fprintf(w, "%-8s I/O   %s\n", "", report.Sparkline(week.Bytes))
		fmt.Fprintf(w, "%-8s task  %s\n", "", report.Sparkline(week.TaskSeconds))
	}
	// Utilization column via replay of a small workload (full FB replays
	// are left to swimreplay).
	tr := traces["CC-e"]
	res, err := swim.Replay(tr, swim.ReplayOptions{Scheduler: swim.SchedulerFair})
	if err != nil {
		return err
	}
	n := len(res.HourlyOccupancy)
	if n > 7*24 {
		n = 7 * 24
	}
	fmt.Fprintf(w, "%-8s util  %s (CC-e replayed, %d slots)\n", "", report.Sparkline(res.HourlyOccupancy[:n]), res.TotalSlots)
	fmt.Fprintln(w)
	return nil
}

func figure8(w io.Writer, reports map[string]*swim.Report) error {
	fmt.Fprintln(w, "== Figure 8: burstiness (paper: peak-to-median 9:1 .. 260:1; FB 31:1 -> 9:1) ==")
	tb := report.NewTable("Workload", "peak:median (meas)", "paper")
	for _, name := range swim.Workloads() {
		rep := reports[name]
		paperVal := "9:1 .. 260:1 range"
		if p := paperTable1[name].p2m; p > 0 {
			paperVal = report.Ratio(p)
		}
		tb.AddRow(name, report.Ratio(rep.PeakToMedian), paperVal)
	}
	// The two sine references of the figure.
	for _, offset := range []float64{2, 20} {
		b, err := stats.Burstiness(stats.SineSeries(14*24, offset))
		if err != nil {
			return err
		}
		tb.AddRow(fmt.Sprintf("sine + %.0f", offset), fmt.Sprintf("%.2f:1", b.PeakToMedian), "reference")
	}
	return render(w, tb)
}

func figure9(w io.Writer, reports map[string]*swim.Report) error {
	fmt.Fprintln(w, "== Figure 9: hourly correlations (paper avgs: jobs-bytes 0.21, jobs-task 0.14, bytes-task 0.62) ==")
	tb := report.NewTable("Workload", "jobs-bytes", "jobs-task-s", "bytes-task-s")
	var sums [3]float64
	for _, name := range swim.Workloads() {
		c := reports[name].Correlations
		tb.AddRow(name,
			fmt.Sprintf("%.2f", c.JobsBytes),
			fmt.Sprintf("%.2f", c.JobsTaskSeconds),
			fmt.Sprintf("%.2f", c.BytesTaskSeconds))
		sums[0] += c.JobsBytes
		sums[1] += c.JobsTaskSeconds
		sums[2] += c.BytesTaskSeconds
	}
	n := float64(len(swim.Workloads()))
	tb.AddRow("average",
		fmt.Sprintf("%.2f", sums[0]/n),
		fmt.Sprintf("%.2f", sums[1]/n),
		fmt.Sprintf("%.2f", sums[2]/n))
	return render(w, tb)
}

func figure10(w io.Writer, reports map[string]*swim.Report) error {
	fmt.Fprintln(w, "== Figure 10: job name first words (FB-2009 paper: ad 44%, insert 12% of jobs) ==")
	for _, name := range swim.Workloads() {
		na := reports[name].Names
		if na == nil {
			fmt.Fprintf(w, "%s: trace carries no job names\n", name)
			continue
		}
		fmt.Fprintf(w, "%s (top words by job count):\n", name)
		tb := report.NewTable("word", "% jobs", "% bytes", "% task-time")
		for i, g := range na.Groups {
			if i >= 5 && g.Word != "[others]" {
				continue
			}
			tb.AddRow(g.Word, report.Percent(g.JobsFraction),
				report.Percent(g.BytesFraction), report.Percent(g.TaskTimeFraction))
		}
		if err := render(w, tb); err != nil {
			return err
		}
	}
	return nil
}

func table2(w io.Writer, reports map[string]*swim.Report) error {
	fmt.Fprintln(w, "== Table 2: job types recovered by k-means (paper: small jobs > 90% everywhere) ==")
	for _, name := range swim.Workloads() {
		jc := reports[name].Clusters
		fmt.Fprintf(w, "%s (k=%d, small-job fraction %s):\n", name, jc.K, report.Percent(jc.SmallJobFraction))
		tb := report.NewTable("# Jobs", "Input", "Shuffle", "Output", "Duration", "Map t-s", "Reduce t-s", "Label")
		for _, jt := range jc.Types {
			tb.AddRow(fmt.Sprintf("%d", jt.Count),
				jt.Input.String(), jt.Shuffle.String(), jt.Output.String(),
				units.FormatDuration(jt.Duration),
				fmt.Sprintf("%.0f", float64(jt.MapTime)),
				fmt.Sprintf("%.0f", float64(jt.Reduce)),
				jt.Label)
		}
		if err := render(w, tb); err != nil {
			return err
		}
	}
	return nil
}

func swimScaleDown(w io.Writer, traces map[string]*swim.Trace, seed int64) error {
	fmt.Fprintln(w, "== SWIM scale-down (§7): FB-2009 window -> 1/10 cluster, fidelity ==")
	src := traces["FB-2009"]
	syn, fid, err := swim.ScaleDownFidelity(src, swim.SynthesizeOptions{
		TargetLength:   24 * time.Hour,
		SourceMachines: 600,
		TargetMachines: 60,
		Seed:           seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "source: %d jobs over %v; synthetic: %d jobs over %v\n",
		src.Len(), src.Meta.Length, syn.Len(), syn.Meta.Length)
	fmt.Fprintf(w, "fidelity: %v (target: worst excess <= 0, i.e. within sampling noise)\n\n", fid)
	return nil
}

func cacheAblation(w io.Writer, traces map[string]*swim.Trace) error {
	fmt.Fprintln(w, "== Cache policy ablation (§4 implications), CC-e input stream ==")
	tr := traces["CC-e"]
	results, err := swim.CompareCachePolicies(tr, 200*swim.GB, swim.GB)
	if err != nil {
		return err
	}
	tb := report.NewTable("Policy", "hit rate", "byte hit rate", "peak bytes")
	for _, r := range results {
		tb.AddRow(r.Policy, report.Percent(r.HitRate), report.Percent(r.ByteHitRate), r.PeakUsed.String())
	}
	return render(w, tb)
}

func schedulerAblation(w io.Writer, traces map[string]*swim.Trace, seed int64) error {
	fmt.Fprintln(w, "== Scheduler ablation (§6.2 small jobs vs big jobs), CC-b replay ==")
	tr := traces["CC-b"]
	tb := report.NewTable("Scheduler", "median latency", "mean latency", "p99 latency")
	for _, sched := range []swim.SchedulerKind{swim.SchedulerFIFO, swim.SchedulerFair} {
		res, err := swim.Replay(tr, swim.ReplayOptions{Scheduler: sched, Seed: seed})
		if err != nil {
			return err
		}
		tb.AddRow(res.Scheduler.String(),
			fmt.Sprintf("%.0fs", res.MedianLatency()),
			fmt.Sprintf("%.0fs", res.MeanLatency()),
			fmt.Sprintf("%.0fs", res.P99Latency()))
	}
	return render(w, tb)
}

// eraDrift reproduces the §4.1/§6.2 Facebook-evolution comparison: from
// 2009 to 2010 per-job inputs grew by orders of magnitude, outputs shrank,
// and job rate quadrupled.
func eraDrift(w io.Writer, traces map[string]*swim.Trace) error {
	fmt.Fprintln(w, "== Workload drift FB-2009 -> FB-2010 (paper: inputs grew, outputs shrank, job types changed) ==")
	d, err := swim.CompareEras(traces["FB-2009"], traces["FB-2010"])
	if err != nil {
		return err
	}
	tb := report.NewTable("dimension", "median shift (orders of magnitude)", "KS distance")
	tb.AddRow("input", fmt.Sprintf("%+.2f", d.InputMedianShift), fmt.Sprintf("%.2f", d.InputKS))
	tb.AddRow("shuffle", fmt.Sprintf("%+.2f", d.ShuffleMedianShift), fmt.Sprintf("%.2f", d.ShuffleKS))
	tb.AddRow("output", fmt.Sprintf("%+.2f", d.OutputMedianShift), fmt.Sprintf("%.2f", d.OutputKS))
	if err := render(w, tb); err != nil {
		return err
	}
	fmt.Fprintf(w, "job rate ratio: %.1fx (paper: 258 -> 1083 jobs/hr = 4.2x); drift significant: %v\n\n",
		d.JobRateRatio, d.Significant(0.2))
	return nil
}

// tieredAblation evaluates the §6.2 two-tier recommendation against a
// shared cluster on CC-b.
func tieredAblation(w io.Writer, traces map[string]*swim.Trace, seed int64) error {
	fmt.Fprintln(w, "== Two-tier cluster ablation (§6.2 performance/capacity split), CC-b at 40 nodes ==")
	tr := traces["CC-b"]
	shared, err := swim.Replay(tr, swim.ReplayOptions{Nodes: 40, Scheduler: swim.SchedulerFIFO, Seed: seed})
	if err != nil {
		return err
	}
	tiered, err := swim.ReplayTiered(tr, swim.TieredReplayOptions{
		Nodes: 40, PerformanceShare: 0.25, Seed: seed,
	})
	if err != nil {
		return err
	}
	tb := report.NewTable("configuration", "median lat", "p99 lat")
	tb.AddRow("shared FIFO (all jobs)",
		fmt.Sprintf("%.0fs", shared.MedianLatency()),
		fmt.Sprintf("%.0fs", shared.P99Latency()))
	tb.AddRow("tiered, small jobs (25% perf tier)",
		fmt.Sprintf("%.0fs", tiered.Performance.MedianLatency()),
		fmt.Sprintf("%.0fs", tiered.P99SmallLatency()))
	tb.AddRow("tiered, large jobs (75% cap tier)",
		fmt.Sprintf("%.0fs", tiered.Capacity.MedianLatency()),
		fmt.Sprintf("%.0fs", tiered.Capacity.P99Latency()))
	return render(w, tb)
}

// workloadSuite runs the §7 benchmark-suite concept across diverse
// workloads on one 50-node target cluster.
func workloadSuite(w io.Writer, quick bool, seed int64) error {
	fmt.Fprintln(w, "== Workload suite (§7: a benchmark must be a suite, scored on multiple metrics) ==")
	workloads := []string{"CC-b", "CC-c", "CC-e", "FB-2009"}
	window := 7 * 24 * time.Hour
	if quick {
		window = 48 * time.Hour
	}
	res, err := swim.RunSuite(swim.SuiteConfig{
		Workloads:    workloads,
		SourceWindow: window,
		StreamLength: 24 * time.Hour,
		TargetNodes:  50,
		Scheduler:    swim.SchedulerFair,
		Seed:         seed,
	})
	if err != nil {
		return err
	}
	tb := report.NewTable("workload", "jobs", "small p50", "small p99", "large p99", "mean util", "bytes/hr")
	for _, s := range res.Scores {
		tb.AddRow(s.Workload,
			fmt.Sprintf("%d", s.Jobs),
			fmt.Sprintf("%.0fs", s.SmallP50),
			fmt.Sprintf("%.0fs", s.SmallP99),
			fmt.Sprintf("%.0fs", s.LargeP99),
			report.Percent(s.MeanUtilization),
			s.BytesPerHour.String())
	}
	return render(w, tb)
}

// consolidation demonstrates the §5.2 multiplexing effect: merging the
// bursty CC workloads onto one logical cluster smooths the aggregate.
func consolidation(w io.Writer, traces map[string]*swim.Trace) error {
	fmt.Fprintln(w, "== Consolidation (§5.2: multiplexing decreases burstiness) ==")
	names := []string{"CC-a", "CC-b", "CC-d", "CC-e"}
	tb := report.NewTable("workload", "peak:median")
	var parts []*swim.Trace
	for _, name := range names {
		tr := traces[name]
		p2m, err := swim.PeakToMedian(tr)
		if err != nil {
			return err
		}
		tb.AddRow(name, report.Ratio(p2m))
		parts = append(parts, tr)
	}
	merged, err := swim.Consolidate("all-CC", parts...)
	if err != nil {
		return err
	}
	p2m, err := swim.PeakToMedian(merged)
	if err != nil {
		return err
	}
	tb.AddRow("consolidated", report.Ratio(p2m))
	return render(w, tb)
}

// parallelAnalysis measures the shard-parallel streaming analysis
// against the sequential pass on the largest generated trace, verifying
// the merge contract (identical report bytes) while timing the
// scatter/gather speedup.
func parallelAnalysis(w io.Writer, traces map[string]*swim.Trace, shards int) error {
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(w, "== Parallel analysis (mergeable section builders, K=%d shards) ==\n", shards)
	tr := traces["FB-2009"]
	start := time.Now()
	seq, err := swim.AnalyzeTraceParallel(tr, swim.AnalyzeOptions{Shards: 1})
	if err != nil {
		return err
	}
	seqDur := time.Since(start)
	start = time.Now()
	par, err := swim.AnalyzeTraceParallel(tr, swim.AnalyzeOptions{Shards: shards})
	if err != nil {
		return err
	}
	parDur := time.Since(start)
	var a, b bytes.Buffer
	if err := seq.WriteJSON(&a); err != nil {
		return err
	}
	if err := par.WriteJSON(&b); err != nil {
		return err
	}
	agree := "IDENTICAL"
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		agree = "DIVERGED (merge contract violated!)"
	}
	tb := report.NewTable("mode", "wall-clock", "report bytes")
	tb.AddRow("sequential (K=1)", seqDur.Round(time.Millisecond).String(), fmt.Sprintf("%d", a.Len()))
	tb.AddRow(fmt.Sprintf("parallel (K=%d)", shards), parDur.Round(time.Millisecond).String(), fmt.Sprintf("%d", b.Len()))
	if err := render(w, tb); err != nil {
		return err
	}
	fmt.Fprintf(w, "agreement: %s; speedup %.2fx on %d CPUs (%d jobs)\n\n",
		agree, float64(seqDur)/float64(parDur), runtime.GOMAXPROCS(0), tr.Len())
	return nil
}

func render(w io.Writer, tb *report.Table) error {
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
