package swim

import (
	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/stats"
	"repro/internal/suite"
	"repro/internal/trace"
)

// This file exposes the extension features built on top of the paper's
// explicit recommendations: the §6.2 two-tier cluster, the §7 workload
// suite benchmark, the §6.2/§4.1 workload-drift comparison, the
// clairvoyant caching upper bound, and DFS pre-population (SWIM's first
// replay step).

// Re-exported extension types.
type (
	// TieredReplayOptions configures the §6.2 performance/capacity split.
	TieredReplayOptions = cluster.TieredConfig
	// TieredReplayResult is the two-tier replay outcome.
	TieredReplayResult = cluster.TieredResult
	// SuiteConfig configures the §7 workload-suite benchmark.
	SuiteConfig = suite.Config
	// SuiteResult is the per-workload scorecard of a suite run.
	SuiteResult = suite.Result
	// SuiteScore is one workload's multi-metric score.
	SuiteScore = suite.Score
	// Drift quantifies workload evolution between two eras of the same
	// deployment (FB-2009 → FB-2010).
	Drift = analysis.Drift
	// FS is the simulated distributed filesystem.
	FS = hdfs.FS
	// TieringReport scores a storage-tier assignment.
	TieringReport = hdfs.TieringReport
)

// ReplayTiered replays a trace on the two-tier cluster of §6.2: small jobs
// on a fair-scheduled performance partition, large jobs on a FIFO capacity
// partition. The trace must contain both classes.
func ReplayTiered(t *Trace, opts TieredReplayOptions) (*TieredReplayResult, error) {
	if opts.Nodes == 0 {
		opts.Nodes = t.Meta.Machines
	}
	if opts.PerformanceShare == 0 {
		opts.PerformanceShare = 0.25
	}
	return cluster.RunTiered(t, opts)
}

// RunSuite executes the §7 workload-suite benchmark: each selected
// workload is generated, scaled down to the target cluster with measured
// fidelity, and replayed as a steady stream, producing per-workload
// latency/utilization/throughput scores.
func RunSuite(cfg SuiteConfig) (*SuiteResult, error) {
	return suite.Run(cfg)
}

// CompareEras measures how a deployment's workload drifted between two
// trace collections (per-dimension median shifts and K-S distances, job
// rate ratio) — the §6.2 / §4.1 Facebook-evolution analysis.
func CompareEras(from, to *Trace) (*Drift, error) {
	return analysis.CompareEras(from, to)
}

// CompareCachePoliciesWithOptimal extends CompareCachePolicies with the
// clairvoyant (Belady-style) upper bound, so each policy's hit rate can be
// stated as a fraction of what any policy could achieve on the trace.
func CompareCachePoliciesWithOptimal(t *Trace, capacity, threshold Bytes) ([]CacheResult, error) {
	return cache.Compare(t, []cache.Policy{
		cache.NewLRU(capacity),
		cache.NewLFU(capacity),
		cache.NewFIFO(capacity),
		cache.NewSizeThresholdLRU(capacity, threshold),
		cache.NewClairvoyant(t, capacity),
	})
}

// NewSimulatedFS creates a simulated DFS sized like the trace's cluster
// and populates it from the trace's file activity, returning the
// filesystem ready for tiering studies.
func NewSimulatedFS(t *Trace, seed int64) (*FS, error) {
	nodes := t.Meta.Machines
	if nodes <= 0 {
		nodes = 10
	}
	fs, err := hdfs.New(hdfs.Config{Datanodes: nodes, Seed: seed})
	if err != nil {
		return nil, err
	}
	if _, err := hdfs.PopulateFromTrace(fs, t); err != nil {
		return nil, err
	}
	return fs, nil
}

// EvaluateTiering scores frequency-based and size-threshold storage
// tiering (§4.2's implications) on a populated filesystem with the given
// fast-tier budget and small-file threshold.
func EvaluateTiering(fs *FS, fastCapacity, threshold Bytes) []TieringReport {
	return []TieringReport{
		hdfs.EvaluateTiering(fs, hdfs.FrequencyTiering{}, fastCapacity),
		hdfs.EvaluateTiering(fs, hdfs.SizeThresholdTiering{Threshold: threshold}, fastCapacity),
	}
}

// DailyRegularity reports the day-over-day autocorrelation (r at lag 24h)
// of the trace's hourly job submissions: near 1 for the predictable
// diurnal load the original MapReduce use case assumed, near 0 for the
// bursty workloads the paper documents.
func DailyRegularity(t *Trace) (float64, error) {
	ts, err := analysis.BinHourly(t)
	if err != nil {
		return 0, err
	}
	return stats.DailyRegularity(ts.Jobs)
}

// LocalityReplayResult extends a replay with map-task placement quality.
type LocalityReplayResult = cluster.LocalityResult

// ReplayWithLocality replays the trace with locality-aware map placement
// against a DFS populated from the same trace (see NewSimulatedFS): map
// tasks prefer nodes holding replicas of their input blocks, and the
// result reports the achieved locality rate. The §4 popularity skew makes
// this interesting: hot files concentrate readers on three replica
// holders, so locality degrades exactly on the most-accessed data.
func ReplayWithLocality(t *Trace, fs *FS, opts ReplayOptions) (*LocalityReplayResult, error) {
	nodes := opts.Nodes
	if nodes == 0 {
		nodes = t.Meta.Machines
	}
	return cluster.RunWithLocality(t, fs, cluster.Config{
		Nodes:              nodes,
		MapSlotsPerNode:    opts.MapSlotsPerNode,
		ReduceSlotsPerNode: opts.ReduceSlotsPerNode,
		Scheduler:          opts.Scheduler,
		StragglerProb:      opts.StragglerProb,
		StragglerFactor:    opts.StragglerFactor,
		Seed:               opts.Seed,
	})
}

// Consolidate merges several workloads onto one logical cluster (summed
// machines, aligned starts, disjoint file namespaces). Section 5.2
// attributes Facebook's 31:1 → 9:1 burstiness drop to multiplexing many
// organizations' workloads; consolidating traces lets that effect be
// measured directly (see PeakToMedian of the merged trace's Report).
func Consolidate(name string, traces ...*Trace) (*Trace, error) {
	return trace.Merge(name, traces...)
}

// PeakToMedian computes the Figure 8 headline burstiness number for a
// trace without running the full analysis.
func PeakToMedian(t *Trace) (float64, error) {
	ts, err := analysis.BinHourly(t)
	if err != nil {
		return 0, err
	}
	b, err := ts.BurstinessOf()
	if err != nil {
		return 0, err
	}
	return b.PeakToMedian, nil
}
