package swim

import (
	"log/slog"
	"net/http"

	"repro/internal/server"
	"repro/internal/trace"
)

// The serving façade: the same analytics the batch CLIs produce, exposed
// as a long-running HTTP/JSON service with a hybrid memory/disk trace
// store and a fingerprint-keyed, single-flight result cache (see
// internal/server, internal/storage, and the swimd command).

// ServeOptions sizes the swimd service.
type ServeOptions struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// MaxTraces / MaxTotalJobs bound the in-memory trace store (defaults
	// 64 traces, 2M total jobs). Without DataDir, ingests beyond them
	// are rejected, not silently evicted; with DataDir, the job bound
	// sizes only the hot tier and overflow spills to disk.
	MaxTraces    int
	MaxTotalJobs int
	// CacheEntries bounds the result cache (default 256).
	CacheEntries int
	// DisablePartials turns off ingest-time partial aggregation: stored
	// traces then carry no precomputed report aggregate (saving
	// ~24 B/job of heap) and cold reports scan the stored jobs,
	// shard-parallel when the request sets shards=K.
	DisablePartials bool
	// DataDir enables durable storage rooted at the given directory:
	// traces persist as checksummed segment files with their aggregates
	// snapshotted alongside, survive restarts, and are analyzed
	// out-of-core when larger than the in-memory budget.
	DataDir string
	// SegmentCodec selects the on-disk segment format for newly stored
	// traces: "colseg" (compact columnar binary, the default) or "jsonl"
	// (canonical JSONL, the pre-v6 format). Stored segments always read
	// back with the codec they were written with.
	SegmentCodec string
	// Logger receives structured server logs (slow or failing requests,
	// recovery, compaction); nil disables logging.
	Logger *slog.Logger
	// Peers enables cluster mode: the full membership as "id=url,..."
	// including this node. Ingested traces are then sharded across the
	// members by consistent hashing and reports scatter/gather, merging
	// shard partials into answers byte-identical to single-node analysis.
	// Empty keeps the service single-node.
	Peers string
	// NodeID is this process's identity in Peers (required with Peers).
	NodeID string
	// Replication is how many owners hold each trace shard (default 2,
	// clamped to the cluster size).
	Replication int
	// ClusterShards is the shard count for newly ingested cluster traces
	// (default: one per member).
	ClusterShards int
}

// NewServeHandler builds the swimd HTTP handler without binding a
// socket — the form tests and embedders want. See internal/server for
// the endpoint inventory. It errors only when DataDir is set and the
// durable store cannot be opened or recovered.
func NewServeHandler(opts ServeOptions) (http.Handler, error) {
	srv, err := server.New(server.Config{
		MaxTraces:       opts.MaxTraces,
		MaxTotalJobs:    opts.MaxTotalJobs,
		CacheEntries:    opts.CacheEntries,
		DisablePartials: opts.DisablePartials,
		DataDir:         opts.DataDir,
		SegmentCodec:    opts.SegmentCodec,
		Logger:          opts.Logger,
		Peers:           opts.Peers,
		NodeID:          opts.NodeID,
		Replication:     opts.Replication,
		ClusterShards:   opts.ClusterShards,
	})
	if err != nil {
		return nil, err
	}
	return srv.Handler(), nil
}

// Serve runs the workload-analytics service until the listener fails;
// it is the programmatic equivalent of the swimd command (which adds
// flags, preloading, and graceful shutdown).
func Serve(opts ServeOptions) error {
	addr := opts.Addr
	if addr == "" {
		addr = ":8080"
	}
	h, err := NewServeHandler(opts)
	if err != nil {
		return err
	}
	return http.ListenAndServe(addr, h)
}

// Fingerprint drains a job stream and returns the trace's stable
// content fingerprint: a hash over the canonical JSONL encoding, so it
// is independent of how the trace happens to be represented on disk.
// For an in-memory Trace, call its Fingerprint method. The swimd result
// cache keys on this value.
func Fingerprint(src Source) (string, error) {
	return trace.Fingerprint(src)
}
