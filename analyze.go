package swim

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// Re-exported analysis result types.
type (
	// DataSizes holds the per-job input/shuffle/output CDFs (Figure 1).
	DataSizes = analysis.DataSizes
	// AccessFrequency is the Zipf rank-frequency analysis (Figure 2).
	AccessFrequency = analysis.AccessFrequency
	// SizeAccess relates jobs and stored bytes to file size (Figures 3-4).
	SizeAccess = analysis.SizeAccess
	// ReaccessIntervals holds temporal-locality CDFs (Figure 5).
	ReaccessIntervals = analysis.ReaccessIntervals
	// ReaccessFractions counts jobs re-reading pre-existing data (Figure 6).
	ReaccessFractions = analysis.ReaccessFractions
	// TimeSeries is the hourly-binned workload view (Figures 7-9).
	TimeSeries = analysis.TimeSeries
	// Correlations holds the pairwise hourly correlations (Figure 9).
	Correlations = analysis.Correlations
	// NameAnalysis is the job-name first-word breakdown (Figure 10).
	NameAnalysis = analysis.NameAnalysis
	// JobClusters is the recovered job-type table (Table 2).
	JobClusters = analysis.JobClusters
	// ClusterConfig tunes the Table-2 clustering.
	ClusterConfig = analysis.ClusterConfig

	// Report bundles every analysis of the paper that applies to one
	// trace; see core.Report for field semantics.
	Report = core.Report
	// AnalyzeOptions tunes Analyze.
	AnalyzeOptions = core.AnalyzeOptions

	// Study is a cross-industry comparison over several workloads.
	Study = core.Study
	// StudyConfig controls RunStudy.
	StudyConfig = core.StudyConfig
	// CrossWorkload aggregates study-level findings (median spans,
	// correlation averages, burstiness extremes, small-job fractions).
	CrossWorkload = core.CrossWorkload
)

// Analyze runs the full measurement methodology of the paper over a trace
// and returns every figure and table that the trace's fields permit.
// Fields of the Report are nil when the trace lacks the required data
// (paths, names), mirroring the per-workload gaps in the original study.
func Analyze(t *Trace, opts AnalyzeOptions) (*Report, error) {
	return core.Analyze(t, opts)
}

// AnalyzeSource runs the streaming analysis over a job stream: the
// Table-1 summary, Figure 1 data sizes, the Figures 7–9 hourly series,
// and the Figure 10 name breakdown. By default it is a single
// sequential pass in memory independent of trace length; with
// opts.Shards > 1 the stream is analyzed shard-parallel — the jobs are
// split into contiguous ordered shards, analyzed on a worker pool, and
// the mergeable per-section aggregates are combined in shard order,
// producing bytes identical to the sequential report at any shard count
// (see core.AnalyzeSource for the exact contract and the
// Materialize/SketchDataSizes options).
func AnalyzeSource(src Source, opts AnalyzeOptions) (*Report, error) {
	return core.AnalyzeSource(src, opts)
}

// AnalyzeSourceParallel is the explicit scatter/gather entry point:
// opts.Shards contiguous shards (0 = one per CPU) analyzed concurrently
// and merged deterministically. Same report bytes as AnalyzeSource; the
// cost is holding the job set in memory while the shards run.
func AnalyzeSourceParallel(src Source, opts AnalyzeOptions) (*Report, error) {
	return core.AnalyzeSourceParallel(src, opts)
}

// AnalyzeTraceParallel runs the shard-parallel streaming analysis over
// an in-memory trace without copying jobs.
func AnalyzeTraceParallel(t *Trace, opts AnalyzeOptions) (*Report, error) {
	return core.AnalyzeTraceParallel(t, opts)
}

// AnalyzeFrom streams a trace file through AnalyzeSource without loading
// it into memory — the companion to GenerateTo for paper-length traces.
// CSV files need meta supplied; it is ignored for JSONL. With
// opts.Materialize the trace is collected and fully analyzed instead;
// with opts.Shards > 1 the file's jobs are collected and analyzed
// shard-parallel (same bytes, more memory, less wall-clock).
func AnalyzeFrom(path string, meta Meta, opts AnalyzeOptions) (*Report, error) {
	src, err := OpenTrace(path, meta)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	return core.AnalyzeSource(src, opts)
}

// RunStudy generates and analyzes every requested workload, reproducing
// the paper's cross-industry comparison; Aggregate() on the result yields
// the summary-section numbers (median spans, correlation averages,
// burstiness range, small-job dominance).
func RunStudy(cfg StudyConfig) (*Study, error) {
	return core.RunStudy(cfg)
}
