package swim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func genFB(t testing.TB, dur time.Duration) *Trace {
	t.Helper()
	tr, err := Generate(GenerateOptions{Workload: "FB-2009", Seed: 42, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWorkloads(t *testing.T) {
	ws := Workloads()
	if len(ws) != 7 {
		t.Fatalf("Workloads() = %v", ws)
	}
	for _, name := range ws {
		p, err := WorkloadProfile(name)
		if err != nil || p.Name != name {
			t.Errorf("WorkloadProfile(%s): %v, %v", name, p, err)
		}
	}
	if _, err := WorkloadProfile("bogus"); err == nil {
		t.Error("bogus workload should error")
	}
}

func TestGenerateFacade(t *testing.T) {
	tr := genFB(t, 48*time.Hour)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(GenerateOptions{}); err == nil {
		t.Error("missing workload should error")
	}
	// Custom profile path.
	p, _ := WorkloadProfile("CC-a")
	tr2, err := Generate(GenerateOptions{Profile: p, Duration: 24 * time.Hour})
	if err != nil || tr2.Len() == 0 {
		t.Errorf("custom profile generate: %v", err)
	}
}

func TestSaveLoadTrace(t *testing.T) {
	dir := t.TempDir()
	tr := genFB(t, 24*time.Hour)

	jsonl := filepath.Join(dir, "t.jsonl")
	if err := SaveTrace(jsonl, tr); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrace(jsonl, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.Meta.Name != tr.Meta.Name {
		t.Error("jsonl round trip mismatch")
	}

	csvPath := filepath.Join(dir, "t.csv")
	if err := SaveTrace(csvPath, tr); err != nil {
		t.Fatal(err)
	}
	back2, err := LoadTrace(csvPath, tr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Len() != tr.Len() {
		t.Error("csv round trip mismatch")
	}

	if err := SaveTrace(filepath.Join(dir, "t.xml"), tr); err == nil {
		t.Error("unknown extension should error")
	}
	if _, err := LoadTrace(filepath.Join(dir, "t.xml"), Meta{}); err == nil {
		t.Error("unknown extension should error")
	}
	if _, err := LoadTrace(filepath.Join(dir, "missing.jsonl"), Meta{}); err == nil {
		t.Error("missing file should error")
	}
	// Save into an unwritable location.
	if err := SaveTrace(filepath.Join(dir, "nodir", "t.jsonl"), tr); err == nil {
		t.Error("bad path should error")
	}
	_ = os.Remove(jsonl)
}

func TestAnalyzeFullReport(t *testing.T) {
	tr, err := Generate(GenerateOptions{Workload: "CC-c", Seed: 7, Duration: 7 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(tr, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataSizes == nil || rep.Series == nil || rep.Correlations == nil {
		t.Fatal("universal analyses missing")
	}
	// CC-c has paths and names: everything should populate.
	if rep.InputAccess == nil || rep.InputSizeAccess == nil || rep.Intervals == nil ||
		rep.Reaccess == nil || rep.Names == nil || rep.Clusters == nil ||
		rep.OutputAccess == nil || rep.OutputSizeAccess == nil {
		t.Errorf("CC-c report incomplete: %+v", rep)
	}
	if rep.PeakToMedian <= 1 {
		t.Errorf("peak-to-median = %v, want > 1", rep.PeakToMedian)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 5", "Figure 6",
		"Figure 7", "Figure 8", "Figure 9", "Figure 10", "Table 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
}

func TestAnalyzeRespectsFieldGaps(t *testing.T) {
	// FB-2009: no paths -> no Figures 2-6; has names -> Figure 10 present.
	tr := genFB(t, 72*time.Hour)
	rep, err := Analyze(tr, AnalyzeOptions{SkipClustering: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InputAccess != nil || rep.Intervals != nil || rep.Reaccess != nil {
		t.Error("FB-2009 should have no path-based analyses")
	}
	if rep.Names == nil {
		t.Error("FB-2009 should have name analysis")
	}
	if rep.Clusters != nil {
		t.Error("SkipClustering should skip Table 2")
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Figure 2") {
		t.Error("report should omit inapplicable sections")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(&Trace{}, AnalyzeOptions{}); err == nil {
		t.Error("empty trace should error")
	}
}

func TestSynthesizeAndFidelity(t *testing.T) {
	src := genFB(t, 7*24*time.Hour)
	syn, fid, err := ScaleDownFidelity(src, SynthesizeOptions{
		TargetLength:   24 * time.Hour,
		SourceMachines: 600,
		TargetMachines: 60,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Len() == 0 {
		t.Fatal("empty synthetic trace")
	}
	if fid.WorstExcess() > 0.03 {
		t.Errorf("scale-down fidelity excess = %v (%v), want within sampling noise", fid.WorstExcess(), fid)
	}
}

func TestReplayFacade(t *testing.T) {
	tr, err := Generate(GenerateOptions{Workload: "CC-e", Seed: 5, Duration: 12 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(tr, ReplayOptions{Scheduler: SchedulerFair})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != tr.Len() {
		t.Errorf("completed %d of %d", res.Completed, tr.Len())
	}
	if len(res.HourlyOccupancy) == 0 {
		t.Error("no occupancy series")
	}
}

func TestCompareCachePoliciesFacade(t *testing.T) {
	tr, err := Generate(GenerateOptions{Workload: "CC-d", Seed: 5, Duration: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	results, err := CompareCachePolicies(tr, 100*GB, GB)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4 policies", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Policy] = true
	}
	for _, want := range []string{"LRU", "LFU", "FIFO", "SizeThreshold+LRU"} {
		if !names[want] {
			t.Errorf("missing policy %s", want)
		}
	}
}
