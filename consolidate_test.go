package swim

import (
	"testing"
	"time"
)

// TestMultiplexingReducesBurstiness checks the §5.2 mechanism directly:
// consolidating several independent bursty workloads onto one cluster
// should yield a less bursty aggregate than the burstiest of its parts —
// the effect the paper credits for Facebook's 31:1 → 9:1 drop.
func TestMultiplexingReducesBurstiness(t *testing.T) {
	var parts []*Trace
	var worst float64
	for i, name := range []string{"CC-a", "CC-b", "CC-d", "CC-e"} {
		tr, err := Generate(GenerateOptions{
			Workload: name,
			Seed:     int64(100 + i),
			Duration: 7 * 24 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		p2m, err := PeakToMedian(tr)
		if err != nil {
			t.Fatal(err)
		}
		if p2m > worst {
			worst = p2m
		}
		parts = append(parts, tr)
	}
	merged, err := Consolidate("multiplexed", parts...)
	if err != nil {
		t.Fatal(err)
	}
	mergedP2M, err := PeakToMedian(merged)
	if err != nil {
		t.Fatal(err)
	}
	if mergedP2M >= worst {
		t.Errorf("merged peak:median %.0f should be below the burstiest part %.0f", mergedP2M, worst)
	}
	// The aggregate should be substantially smoother, not marginally.
	if mergedP2M > worst/2 {
		t.Errorf("merged %.0f vs worst part %.0f: expected at least 2x smoothing", mergedP2M, worst)
	}
	if merged.Len() != parts[0].Len()+parts[1].Len()+parts[2].Len()+parts[3].Len() {
		t.Error("consolidation lost jobs")
	}
}

// TestConsolidatedTraceAnalyzable: the merged trace flows through the full
// analysis pipeline like any other workload.
func TestConsolidatedTraceAnalyzable(t *testing.T) {
	a, err := Generate(GenerateOptions{Workload: "CC-b", Seed: 1, Duration: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenerateOptions{Workload: "CC-e", Seed: 2, Duration: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Consolidate("both", a, b)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(m, AnalyzeOptions{SkipClustering: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Jobs != a.Len()+b.Len() {
		t.Error("merged summary wrong")
	}
	if rep.InputAccess == nil {
		t.Error("merged trace should retain path analyses")
	}
	// Disjoint namespaces: distinct files add up (within rounding of the
	// two independent populations).
	if rep.InputAccess.DistinctFiles < 100 {
		t.Errorf("suspiciously few distinct files: %d", rep.InputAccess.DistinctFiles)
	}
}
