package swim

// One benchmark per table and figure of the paper's evaluation, plus the
// design-choice ablations called out in DESIGN.md. Each benchmark measures
// the cost of regenerating the experiment from a calibrated synthetic
// trace and reports the experiment's headline shape metric via
// b.ReportMetric, so `go test -bench=. -benchmem` both times the pipeline
// and re-derives the paper's numbers. cmd/swimbench prints the full
// tables; EXPERIMENTS.md records paper-vs-measured.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/stats"
	"repro/internal/synth"
)

// benchWindow keeps benchmark traces small enough to iterate but long
// enough for weekly structure (Figures 7-9 need >= 1 week).
const benchWindow = 7 * 24 * time.Hour

var (
	benchTraces   = map[string]*Trace{}
	benchTracesMu sync.Mutex
)

// benchTrace memoizes generation so each benchmark times its analysis, not
// repeated trace synthesis.
func benchTrace(b *testing.B, workload string) *Trace {
	b.Helper()
	benchTracesMu.Lock()
	defer benchTracesMu.Unlock()
	if tr, ok := benchTraces[workload]; ok {
		return tr
	}
	tr, err := Generate(GenerateOptions{Workload: workload, Seed: 1, Duration: benchWindow})
	if err != nil {
		b.Fatal(err)
	}
	benchTraces[workload] = tr
	return tr
}

// BenchmarkTable1_TraceSummary regenerates Table 1: per-workload job and
// byte totals from generated traces.
func BenchmarkTable1_TraceSummary(b *testing.B) {
	traces := make([]*Trace, 0, len(Workloads()))
	for _, name := range Workloads() {
		traces = append(traces, benchTrace(b, name))
	}
	b.ResetTimer()
	var jobs int
	for i := 0; i < b.N; i++ {
		jobs = 0
		for _, tr := range traces {
			s := tr.Summarize()
			jobs += s.Jobs
		}
	}
	b.ReportMetric(float64(jobs), "jobs")
}

// BenchmarkTable2_KMeansJobTypes regenerates Table 2 for CC-a: k-means job
// types with elbow k-selection. Reports the recovered small-job fraction
// (paper: > 0.90 for every workload).
func BenchmarkTable2_KMeansJobTypes(b *testing.B) {
	tr := benchTrace(b, "CC-a")
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		jc, err := analysis.ClusterJobs(tr, analysis.ClusterConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		frac = jc.SmallJobFraction
	}
	b.ReportMetric(frac, "small-job-frac")
}

// BenchmarkFigure1_DataSizeCDFs regenerates Figure 1: per-job input,
// shuffle, output size CDFs for all workloads. Reports the cross-workload
// median-input span in orders of magnitude (paper: 6).
func BenchmarkFigure1_DataSizeCDFs(b *testing.B) {
	traces := make([]*Trace, 0, len(Workloads()))
	for _, name := range Workloads() {
		traces = append(traces, benchTrace(b, name))
	}
	b.ResetTimer()
	var span float64
	for i := 0; i < b.N; i++ {
		all := make([]*analysis.DataSizes, 0, len(traces))
		for _, tr := range traces {
			ds, err := analysis.DataSizeCDFs(tr)
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, ds)
		}
		span, _, _ = analysis.MedianSpanAcrossWorkloads(all)
	}
	b.ReportMetric(span, "input-median-span")
}

// BenchmarkFigure2_AccessFrequencyZipf regenerates Figure 2 on FB-2010
// (the largest path-bearing workload). Reports the fitted Zipf exponent
// (paper: 5/6 ≈ 0.833).
func BenchmarkFigure2_AccessFrequencyZipf(b *testing.B) {
	tr := benchTrace(b, "FB-2010")
	b.ResetTimer()
	var alpha float64
	for i := 0; i < b.N; i++ {
		af, err := analysis.InputAccessFrequency(tr)
		if err != nil {
			b.Fatal(err)
		}
		alpha = af.Fit.Alpha
	}
	b.ReportMetric(alpha, "zipf-alpha")
}

// BenchmarkFigure3_InputFileSizeAccess regenerates Figure 3 on CC-d.
// Reports the 80-N rule (paper: N between 1 and 8).
func BenchmarkFigure3_InputFileSizeAccess(b *testing.B) {
	tr := benchTrace(b, "CC-d")
	b.ResetTimer()
	var rule float64
	for i := 0; i < b.N; i++ {
		sa, err := analysis.InputSizeAccess(tr)
		if err != nil {
			b.Fatal(err)
		}
		rule = sa.EightyRule()
	}
	b.ReportMetric(rule, "eighty-N")
}

// BenchmarkFigure4_OutputFileSizeAccess regenerates Figure 4 on CC-b.
func BenchmarkFigure4_OutputFileSizeAccess(b *testing.B) {
	tr := benchTrace(b, "CC-b")
	b.ResetTimer()
	var rule float64
	for i := 0; i < b.N; i++ {
		sa, err := analysis.OutputSizeAccess(tr)
		if err != nil {
			b.Fatal(err)
		}
		rule = sa.EightyRule()
	}
	b.ReportMetric(rule, "eighty-N")
}

// BenchmarkFigure5_ReaccessIntervals regenerates Figure 5 on CC-e.
// Reports the fraction of re-accesses within 6 hours (paper: ~0.75).
func BenchmarkFigure5_ReaccessIntervals(b *testing.B) {
	tr := benchTrace(b, "CC-e")
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		iv, err := analysis.Intervals(tr)
		if err != nil {
			b.Fatal(err)
		}
		frac = iv.FractionWithin(6 * time.Hour)
	}
	b.ReportMetric(frac, "within-6h")
}

// BenchmarkFigure6_ReaccessFractions regenerates Figure 6 on CC-c.
// Reports total re-access fraction (paper: up to ~0.78).
func BenchmarkFigure6_ReaccessFractions(b *testing.B) {
	tr := benchTrace(b, "CC-c")
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		rf, err := analysis.Reaccess(tr)
		if err != nil {
			b.Fatal(err)
		}
		frac = rf.InputReaccess + rf.OutputReaccess
	}
	b.ReportMetric(frac, "reaccess-frac")
}

// BenchmarkFigure7_WeeklyTimeSeries regenerates Figure 7's hourly series
// (submits, I/O, task-time) plus the utilization column via cluster
// replay for CC-e.
func BenchmarkFigure7_WeeklyTimeSeries(b *testing.B) {
	tr := benchTrace(b, "CC-e")
	b.ResetTimer()
	var util float64
	for i := 0; i < b.N; i++ {
		ts, err := analysis.BinHourly(tr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ts.Week(0); err != nil {
			b.Fatal(err)
		}
		res, err := Replay(tr, ReplayOptions{Scheduler: SchedulerFair, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		util = res.HourlyOccupancy[0]
	}
	b.ReportMetric(util, "hour0-slots")
}

// BenchmarkFigure8_Burstiness regenerates Figure 8 across all workloads
// plus the sine references. Reports FB-2009's peak-to-median (paper: 31).
func BenchmarkFigure8_Burstiness(b *testing.B) {
	traces := make([]*Trace, 0, len(Workloads()))
	for _, name := range Workloads() {
		traces = append(traces, benchTrace(b, name))
	}
	fbIdx := 5 // FB-2009 position in Workloads() order
	b.ResetTimer()
	var fb float64
	for i := 0; i < b.N; i++ {
		for k, tr := range traces {
			ts, err := analysis.BinHourly(tr)
			if err != nil {
				b.Fatal(err)
			}
			curve, err := ts.BurstinessOf()
			if err != nil {
				b.Fatal(err)
			}
			if k == fbIdx {
				fb = curve.PeakToMedian
			}
		}
		for _, offset := range []float64{2, 20} {
			if _, err := stats.Burstiness(stats.SineSeries(7*24, offset)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(fb, "fb09-peak-to-median")
}

// BenchmarkFigure9_TimeSeriesCorrelation regenerates Figure 9 across all
// workloads. Reports the average bytes↔task-time correlation (paper: 0.62,
// the strongest pair).
func BenchmarkFigure9_TimeSeriesCorrelation(b *testing.B) {
	traces := make([]*Trace, 0, len(Workloads()))
	for _, name := range Workloads() {
		traces = append(traces, benchTrace(b, name))
	}
	b.ResetTimer()
	var avg float64
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, tr := range traces {
			ts, err := analysis.BinHourly(tr)
			if err != nil {
				b.Fatal(err)
			}
			c, err := ts.Correlate()
			if err != nil {
				b.Fatal(err)
			}
			sum += c.BytesTaskSeconds
		}
		avg = sum / float64(len(traces))
	}
	b.ReportMetric(avg, "bytes-task-corr")
}

// BenchmarkFigure10_JobNameAnalysis regenerates Figure 10 on FB-2009.
// Reports the top word's job share (paper: "ad" at 0.44).
func BenchmarkFigure10_JobNameAnalysis(b *testing.B) {
	tr := benchTrace(b, "FB-2009")
	b.ResetTimer()
	var top float64
	for i := 0; i < b.N; i++ {
		na, err := analysis.JobNames(tr, 8)
		if err != nil {
			b.Fatal(err)
		}
		top = na.Groups[0].JobsFraction
	}
	b.ReportMetric(top, "top-word-frac")
}

// BenchmarkSWIM_ScaleDownFidelity regenerates the §7 SWIM experiment:
// sample FB-2009 down to one day at 1/10 cluster scale and score fidelity.
// Reports the worst K-S excess over the sampling-noise floor (target <= 0).
func BenchmarkSWIM_ScaleDownFidelity(b *testing.B) {
	src := benchTrace(b, "FB-2009")
	b.ResetTimer()
	var excess float64
	for i := 0; i < b.N; i++ {
		syn, err := synth.Synthesize(src, synth.Config{
			TargetLength:   24 * time.Hour,
			SourceMachines: 600,
			TargetMachines: 60,
			Seed:           int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		fid, err := synth.Compare(src, syn)
		if err != nil {
			b.Fatal(err)
		}
		excess = fid.WorstExcess()
	}
	b.ReportMetric(excess, "worst-ks-excess")
}

// BenchmarkCachePolicies is the §4 ablation: LRU vs LFU vs FIFO vs
// size-threshold admission on CC-e's input stream. Reports the
// size-threshold policy's hit rate.
func BenchmarkCachePolicies(b *testing.B) {
	tr := benchTrace(b, "CC-e")
	b.ResetTimer()
	var hit float64
	for i := 0; i < b.N; i++ {
		results, err := cache.Compare(tr, []cache.Policy{
			cache.NewLRU(100 * GB),
			cache.NewLFU(100 * GB),
			cache.NewFIFO(100 * GB),
			cache.NewSizeThresholdLRU(100*GB, GB),
		})
		if err != nil {
			b.Fatal(err)
		}
		hit = results[3].HitRate
	}
	b.ReportMetric(hit, "sizethresh-hit-rate")
}

// BenchmarkReplaySchedulers is the §6 ablation: FIFO vs fair scheduling of
// the CC-b mix on the simulated cluster. Reports the fair-scheduler p99
// latency advantage (FIFO p99 / fair p99).
func BenchmarkReplaySchedulers(b *testing.B) {
	tr := benchTrace(b, "CC-b")
	b.ResetTimer()
	var advantage float64
	for i := 0; i < b.N; i++ {
		fifo, err := Replay(tr, ReplayOptions{Nodes: 75, Scheduler: SchedulerFIFO, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		fair, err := Replay(tr, ReplayOptions{Nodes: 75, Scheduler: SchedulerFair, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if p := fair.P99Latency(); p > 0 {
			advantage = fifo.P99Latency() / p
		}
	}
	b.ReportMetric(advantage, "fifo/fair-p99")
}

// BenchmarkTieredCluster is the §6.2 extension ablation: the two-tier
// performance/capacity cluster vs a shared FIFO cluster on CC-b. Reports
// how many times faster the small-job p99 is under tiering.
func BenchmarkTieredCluster(b *testing.B) {
	tr := benchTrace(b, "CC-b")
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		shared, err := Replay(tr, ReplayOptions{Nodes: 40, Scheduler: SchedulerFIFO, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		tiered, err := ReplayTiered(tr, TieredReplayOptions{Nodes: 40, PerformanceShare: 0.25, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if p := tiered.P99SmallLatency(); p > 0 {
			speedup = shared.P99Latency() / p
		}
	}
	b.ReportMetric(speedup, "small-p99-speedup")
}

// BenchmarkEraDrift is the §4.1/§6.2 extension: FB-2009 vs FB-2010 drift.
// Reports the input median shift in orders of magnitude (paper: "several").
func BenchmarkEraDrift(b *testing.B) {
	fb09 := benchTrace(b, "FB-2009")
	fb10 := benchTrace(b, "FB-2010")
	b.ResetTimer()
	var shift float64
	for i := 0; i < b.N; i++ {
		d, err := CompareEras(fb09, fb10)
		if err != nil {
			b.Fatal(err)
		}
		shift = d.InputMedianShift
	}
	b.ReportMetric(shift, "input-shift-orders")
}

// BenchmarkWorkloadSuite is the §7 extension: the multi-workload benchmark
// suite on a 50-node target. Reports mean utilization of the first
// workload's stream.
func BenchmarkWorkloadSuite(b *testing.B) {
	b.ResetTimer()
	var util float64
	for i := 0; i < b.N; i++ {
		res, err := RunSuite(SuiteConfig{
			Workloads:    []string{"CC-e"},
			SourceWindow: 48 * time.Hour,
			StreamLength: 12 * time.Hour,
			TargetNodes:  50,
			Seed:         1,
		})
		if err != nil {
			b.Fatal(err)
		}
		util = res.Scores[0].MeanUtilization
	}
	b.ReportMetric(util, "mean-util")
}

// BenchmarkCacheOptimalityGap measures real policies against the
// clairvoyant upper bound on CC-e. Reports LRU hit rate as a fraction of
// optimal.
func BenchmarkCacheOptimalityGap(b *testing.B) {
	tr := benchTrace(b, "CC-e")
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		results, err := CompareCachePoliciesWithOptimal(tr, 100*GB, GB)
		if err != nil {
			b.Fatal(err)
		}
		var lru, opt float64
		for _, r := range results {
			switch r.Policy {
			case "LRU":
				lru = r.HitRate
			case "Clairvoyant":
				opt = r.HitRate
			}
		}
		if opt > 0 {
			frac = lru / opt
		}
	}
	b.ReportMetric(frac, "lru/optimal")
}

// BenchmarkLocalityReplay measures the locality-aware replay of CC-e on a
// populated simulated DFS. Reports the achieved map-task locality rate.
func BenchmarkLocalityReplay(b *testing.B) {
	tr := benchTrace(b, "CC-e")
	p, err := WorkloadProfile("CC-e")
	if err != nil {
		b.Fatal(err)
	}
	fs, err := NewSimulatedFS(tr, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := ReplayWithLocality(tr, fs, ReplayOptions{
			Nodes: p.Machines, Scheduler: SchedulerFair, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = res.LocalityRate()
	}
	b.ReportMetric(rate, "locality-rate")
}

// BenchmarkConsolidation measures the §5.2 multiplexing experiment.
// Reports the smoothing factor: worst individual peak-to-median over the
// consolidated trace's.
func BenchmarkConsolidation(b *testing.B) {
	var parts []*Trace
	var worst float64
	for _, name := range []string{"CC-a", "CC-b", "CC-d", "CC-e"} {
		tr := benchTrace(b, name)
		p2m, err := PeakToMedian(tr)
		if err != nil {
			b.Fatal(err)
		}
		if p2m > worst {
			worst = p2m
		}
		parts = append(parts, tr)
	}
	b.ResetTimer()
	var smoothing float64
	for i := 0; i < b.N; i++ {
		merged, err := Consolidate("all-CC", parts...)
		if err != nil {
			b.Fatal(err)
		}
		p2m, err := PeakToMedian(merged)
		if err != nil {
			b.Fatal(err)
		}
		smoothing = worst / p2m
	}
	b.ReportMetric(smoothing, "smoothing-factor")
}

// BenchmarkGenerate measures raw trace synthesis throughput (jobs/op is
// implicit in the window; this is the substrate every experiment pays).
// The P=1 vs P=GOMAXPROCS variants quantify the sharded generator's
// speedup on a multi-week FB-2009 trace — the same seed produces the
// identical trace in every variant, so they time the same work.
func BenchmarkGenerate(b *testing.B) {
	const window = 3 * 7 * 24 * time.Hour
	pars := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pars = append(pars, n)
	}
	for _, par := range pars {
		b.Run(fmt.Sprintf("P=%d", par), func(b *testing.B) {
			var jobs int
			for i := 0; i < b.N; i++ {
				tr, err := Generate(GenerateOptions{
					Workload:    "FB-2009",
					Seed:        1,
					Duration:    window,
					Parallelism: par,
				})
				if err != nil {
					b.Fatal(err)
				}
				if tr.Len() == 0 {
					b.Fatal("empty trace")
				}
				jobs = tr.Len()
			}
			b.ReportMetric(float64(jobs), "jobs")
		})
	}
}

// BenchmarkAnalyzeFull measures the full per-workload analysis suite
// (everything cmd/swimanalyze does) on a week of CC-c.
func BenchmarkAnalyzeFull(b *testing.B) {
	tr := benchTrace(b, "CC-c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(tr, AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
