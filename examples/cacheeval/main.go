// Cache policy evaluation: the §4 implications of the study made runnable.
//
// The paper establishes three facts about HDFS data access — Zipf-skewed
// file popularity (Fig 2), most accesses hitting small files that hold a
// tiny share of stored bytes (Figs 3-4), and strong temporal locality
// (Fig 5) — and derives concrete cache-design advice: frequency-aware
// caching wins, size-threshold admission keeps cache capacity decoupled
// from data growth, and LRU-family eviction fits the re-access intervals.
//
// This example replays a generated CC-e trace through LRU, LFU, FIFO,
// size-threshold LRU, and TTL caches at several capacities, and also
// evaluates the two storage-tiering assignments from internal/hdfs.
//
//	go run ./examples/cacheeval
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	swim "repro"
	"repro/internal/cache"
	"repro/internal/hdfs"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)

	tr, err := swim.Generate(swim.GenerateOptions{
		Workload: "CC-e",
		Seed:     7,
		Duration: 7 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CC-e, one week: %d jobs, %s moved\n\n", tr.Len(), tr.Summarize().BytesMoved)

	// --- Whole-file cache policies across capacities ---
	for _, capacity := range []swim.Bytes{10 * swim.GB, 100 * swim.GB, swim.TB} {
		ttl, err := cache.NewTTL(capacity, 6*time.Hour) // Fig 5: 75% of re-accesses < 6h
		if err != nil {
			log.Fatal(err)
		}
		policies := []cache.Policy{
			cache.NewLRU(capacity),
			cache.NewLFU(capacity),
			cache.NewFIFO(capacity),
			cache.NewSizeThresholdLRU(capacity, swim.GB),
			ttl,
		}
		results, err := cache.Compare(tr, policies)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cache capacity %v:\n", capacity)
		tb := report.NewTable("policy", "hit rate", "byte hit rate", "peak used")
		for _, r := range results {
			tb.AddRow(r.Policy, report.Percent(r.HitRate), report.Percent(r.ByteHitRate), r.PeakUsed.String())
		}
		if err := tb.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// --- Storage tiering (the paper's "tiered storage architecture
	// should be explored") ---
	// Build the namespace by replaying the trace into the simulated DFS,
	// then score frequency-based vs size-threshold promotion.
	fs, err := hdfs.New(hdfs.Config{Datanodes: 100, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.InputPath != "" {
			if _, ok := fs.Stat(j.InputPath); !ok {
				if _, err := fs.Create(j.InputPath, j.InputBytes, j.SubmitTime); err != nil {
					log.Fatal(err)
				}
			}
			if _, err := fs.Open(j.InputPath, j.SubmitTime); err != nil {
				log.Fatal(err)
			}
		}
		if j.OutputPath != "" {
			if _, err := fs.Create(j.OutputPath, j.OutputBytes, j.FinishTime()); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("simulated DFS: %d files, %s logical, %s raw (3x replication), imbalance %.2f\n\n",
		fs.FileCount(), fs.TotalStored(), fs.RawStored(), fs.NodeImbalance())

	budget := 200 * swim.GB
	tb := report.NewTable("tiering policy", "fast-tier bytes", "% of stored", "access coverage", "files")
	for _, pol := range []hdfs.TieringPolicy{
		hdfs.FrequencyTiering{},
		hdfs.SizeThresholdTiering{Threshold: swim.GB},
	} {
		repT := hdfs.EvaluateTiering(fs, pol, budget)
		tb.AddRow(repT.Policy, repT.FastBytes.String(),
			report.Percent(repT.FastBytesFraction),
			report.Percent(repT.AccessCoverage),
			fmt.Sprintf("%d", repT.FilesPromoted))
	}
	fmt.Printf("storage tiering with a %v fast tier:\n", budget)
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreading: a small fast tier captures the dominant share of accesses —")
	fmt.Println("the cache-viability conclusion of §4.2-4.3.")
}
