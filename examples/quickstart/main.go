// Quickstart: generate a calibrated workload, run the paper's analysis
// suite over it, and print the resulting figures and tables.
//
//	go run ./examples/quickstart
//
// This walks the three core steps of the library: Generate (synthesize a
// trace statistically faithful to one of the study's seven production
// workloads), Analyze (reproduce the paper's measurements), and Render.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	swim "repro"
)

func main() {
	log.SetFlags(0)

	// 1. Pick a workload. CC-b is a Cloudera e-commerce customer: 300
	//    nodes, ~107 jobs/hour, dominated by tiny interactive jobs with a
	//    handful of multi-terabyte pipelines mixed in.
	p, err := swim.WorkloadProfile("CC-b")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d machines, %d jobs over %v in the original trace\n",
		p.Name, p.Machines, p.TotalJobs, p.TraceLength)

	// 2. Generate one week of trace. Everything is deterministic in the
	//    seed: rerunning this program reproduces the same jobs. Generation
	//    is sharded across all cores by default (Parallelism 0); the
	//    output is byte-identical at any worker count, which the single-
	//    worker regeneration below demonstrates.
	tr, err := swim.Generate(swim.GenerateOptions{
		Workload: "CC-b",
		Seed:     2026,
		Duration: 7 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := tr.Summarize()
	fmt.Printf("generated %d jobs moving %s\n", sum.Jobs, sum.BytesMoved)

	serial, err := swim.Generate(swim.GenerateOptions{
		Workload:    "CC-b",
		Seed:        2026,
		Duration:    7 * 24 * time.Hour,
		Parallelism: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if serial.Len() != tr.Len() {
		log.Fatalf("parallel and serial generation disagree: %d vs %d jobs", tr.Len(), serial.Len())
	}
	for i, j := range serial.Jobs {
		k := tr.Jobs[i]
		if !j.SubmitTime.Equal(k.SubmitTime) || j.InputBytes != k.InputBytes ||
			j.Name != k.Name || j.InputPath != k.InputPath || j.OutputPath != k.OutputPath {
			log.Fatalf("parallel and serial generation disagree at job %d", i)
		}
	}
	fmt.Printf("regenerated on one worker: %d identical jobs — same trace, same seed\n\n", serial.Len())

	// 3. Run the full analysis methodology of the paper and print every
	//    figure/table that applies to this workload.
	rep, err := swim.Analyze(tr, swim.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
