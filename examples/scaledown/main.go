// Scale-down: the SWIM workflow of §7 end to end.
//
// The paper's "stopgap tool" (SWIM) answers the benchmark-scaling problem:
// production workloads are too big to replay verbatim, so sample a shorter
// window, scale data and compute proportionally to cluster size, and
// verify that the distributions that matter survive. This example takes a
// two-week FB-2009 trace, synthesizes a one-day workload for a cluster one
// tenth the size, scores fidelity with Kolmogorov-Smirnov distances, and
// replays the result on the simulated cluster.
//
//	go run ./examples/scaledown
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	swim "repro"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)

	src, err := swim.Generate(swim.GenerateOptions{
		Workload: "FB-2009",
		Seed:     3,
		Duration: 14 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source: FB-2009, %d jobs over %v on %d machines\n",
		src.Len(), src.Meta.Length, src.Meta.Machines)

	// Synthesize: 1 day, 60 machines (1/10 of the 600-node original).
	syn, fid, err := swim.ScaleDownFidelity(src, swim.SynthesizeOptions{
		TargetLength:   24 * time.Hour,
		SourceMachines: 600,
		TargetMachines: 60,
		Seed:           3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic: %d jobs over %v for %d machines\n\n",
		syn.Len(), syn.Meta.Length, syn.Meta.Machines)

	fmt.Println("fidelity (K-S distance per dimension, after dividing out the 10x scale):")
	tb := report.NewTable("dimension", "KS", "noise floor", "verdict")
	dims := []struct {
		name string
		ks   float64
		nf   float64
	}{
		{"input bytes", fid.Input.KS, fid.Input.NoiseFloor()},
		{"shuffle bytes", fid.Shuffle.KS, fid.Shuffle.NoiseFloor()},
		{"output bytes", fid.Output.KS, fid.Output.NoiseFloor()},
		{"task-time", fid.TaskTime.KS, fid.TaskTime.NoiseFloor()},
	}
	for _, d := range dims {
		verdict := "within sampling noise"
		if d.ks > d.nf {
			verdict = "distorted"
		}
		tb.AddRow(d.name, fmt.Sprintf("%.3f", d.ks), fmt.Sprintf("%.3f", d.nf), verdict)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("burstiness drift (peak-to-median relative error): %.2f\n\n", fid.PeakToMedianRel)

	// Replay the scaled workload on a simulated 60-node cluster.
	res, err := swim.Replay(syn, swim.ReplayOptions{
		Nodes:     60,
		Scheduler: swim.SchedulerFair,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed on 60 nodes (fair): %d jobs, median latency %.0fs, p99 %.0fs\n",
		res.Completed, res.MedianLatency(), res.P99Latency())
	n := len(res.HourlyOccupancy)
	if n > 24 {
		n = 24
	}
	fmt.Printf("slot occupancy: %s (%d slots)\n", report.Sparkline(res.HourlyOccupancy[:n]), res.TotalSlots)

	// Persist the synthetic workload for external tools.
	out := "fb2009-scaled.jsonl"
	if err := swim.SaveTrace(out, syn); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
	// Clean up the demo artifact.
	if err := os.Remove(out); err != nil {
		log.Fatal(err)
	}
}
