// Benchmark suite: the §7 proposal made runnable.
//
// The paper concludes that no single workload is representative enough to
// anchor a TPC-style big-data benchmark; a benchmark must be a *suite* of
// workload classes, replayed as steady processing streams, and scored on
// several metrics at once. This example builds such a suite from four
// contrasting workload classes, scales each to a common 50-node target
// cluster (with measured scale-down fidelity), replays them under FIFO and
// fair scheduling, and prints the scorecards side by side.
//
// It also demonstrates consolidation (§5.2): merging the CC workloads
// onto one cluster and measuring how multiplexing smooths burstiness —
// the mechanism behind Facebook's 31:1 → 9:1 drop.
//
//	go run ./examples/benchmarksuite
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	swim "repro"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)

	workloads := []string{"CC-b", "CC-c", "CC-e", "FB-2009"}
	base := swim.SuiteConfig{
		Workloads:    workloads,
		SourceWindow: 4 * 24 * time.Hour,
		StreamLength: 24 * time.Hour,
		TargetNodes:  50,
		Seed:         17,
	}

	for _, sched := range []swim.SchedulerKind{swim.SchedulerFIFO, swim.SchedulerFair} {
		cfg := base
		cfg.Scheduler = sched
		res, err := swim.RunSuite(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("suite under %s scheduling (50-node target):\n", sched)
		tb := report.NewTable("workload", "jobs", "small p50", "small p99", "large p99", "util", "bytes/hr", "fidelity ok")
		for _, s := range res.Scores {
			tb.AddRow(s.Workload,
				fmt.Sprintf("%d", s.Jobs),
				fmt.Sprintf("%.0fs", s.SmallP50),
				fmt.Sprintf("%.0fs", s.SmallP99),
				fmt.Sprintf("%.0fs", s.LargeP99),
				report.Percent(s.MeanUtilization),
				s.BytesPerHour.String(),
				fmt.Sprintf("%v", s.Fidelity.WorstExcess() <= 0.05),
			)
		}
		if err := tb.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	fmt.Println("reading: per-workload scores differ by orders of magnitude — the")
	fmt.Println("paper's case that a representative benchmark needs a workload suite.")
	fmt.Println()

	// --- Consolidation: multiplexing smooths burstiness (§5.2) ---
	var parts []*swim.Trace
	tbl := report.NewTable("workload", "peak:median")
	for i, name := range []string{"CC-a", "CC-b", "CC-d", "CC-e"} {
		tr, err := swim.Generate(swim.GenerateOptions{
			Workload: name, Seed: int64(40 + i), Duration: 7 * 24 * time.Hour,
		})
		if err != nil {
			log.Fatal(err)
		}
		p2m, err := swim.PeakToMedian(tr)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(name, report.Ratio(p2m))
		parts = append(parts, tr)
	}
	merged, err := swim.Consolidate("all-CC", parts...)
	if err != nil {
		log.Fatal(err)
	}
	p2m, err := swim.PeakToMedian(merged)
	if err != nil {
		log.Fatal(err)
	}
	tbl.AddRow("consolidated", report.Ratio(p2m))
	fmt.Println("burstiness before and after consolidation:")
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmultiplexing many organizations' workloads smooths the aggregate —")
	fmt.Println("the effect §5.2 credits for Facebook's 31:1 → 9:1 drop.")
}
