// Provisioning what-if: burstiness-aware capacity planning (§5).
//
// The paper shows cluster load is bursty and unpredictable, with hourly
// peak-to-median ratios between 9:1 and 260:1, and argues that "maximum
// jobs per second is the wrong performance metric" — provisioning must
// consider the multi-dimensional load. This example replays one workload
// on simulated clusters of several sizes and two schedulers, showing how
// job latency degrades as the cluster shrinks and how fair scheduling
// protects the dominant population of small, interactive jobs from
// head-of-line blocking behind large batch jobs (§6.2).
//
//	go run ./examples/provisioning
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	swim "repro"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)

	const workload = "CC-b"
	tr, err := swim.Generate(swim.GenerateOptions{
		Workload: workload,
		Seed:     11,
		Duration: 3 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := swim.WorkloadProfile(workload)
	if err != nil {
		log.Fatal(err)
	}

	// Burstiness headline: what peak-to-median load must the cluster absorb?
	rep, err := swim.Analyze(tr, swim.AnalyzeOptions{SkipClustering: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s over %v: %d jobs, hourly task-time peak-to-median %s\n\n",
		workload, tr.Meta.Length, tr.Len(), report.Ratio(rep.PeakToMedian))

	// Sweep cluster sizes at and below the production scale (300 nodes).
	tb := report.NewTable("nodes", "scheduler", "median lat", "mean lat", "p99 lat", "peak util")
	for _, nodes := range []int{p.Machines, p.Machines / 2, p.Machines / 4} {
		for _, sched := range []swim.SchedulerKind{swim.SchedulerFIFO, swim.SchedulerFair} {
			res, err := swim.Replay(tr, swim.ReplayOptions{
				Nodes:     nodes,
				Scheduler: sched,
				Seed:      1,
			})
			if err != nil {
				log.Fatal(err)
			}
			peak := 0.0
			for _, o := range res.HourlyOccupancy {
				if o > peak {
					peak = o
				}
			}
			tb.AddRow(
				fmt.Sprintf("%d", nodes),
				sched.String(),
				fmt.Sprintf("%.0fs", res.MedianLatency()),
				fmt.Sprintf("%.0fs", res.MeanLatency()),
				fmt.Sprintf("%.0fs", res.P99Latency()),
				report.Percent(peak/float64(res.TotalSlots)),
			)
		}
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreading: median latency (the small interactive jobs) survives moderate")
	fmt.Println("shrinkage under fair scheduling, while p99 (the big batch jobs) absorbs")
	fmt.Println("the loss — the two-tier performance/capacity split §6.2 recommends.")

	// Straggler sensitivity: §6.2 notes small jobs have so few tasks that
	// stragglers are hard to detect yet hurt single-wave jobs badly.
	fmt.Println()
	tb2 := report.NewTable("straggler rate", "median lat", "p99 lat")
	for _, prob := range []float64{0, 0.02, 0.10} {
		res, err := swim.Replay(tr, swim.ReplayOptions{
			Nodes:           p.Machines,
			Scheduler:       swim.SchedulerFair,
			StragglerProb:   prob,
			StragglerFactor: 8,
			Seed:            1,
		})
		if err != nil {
			log.Fatal(err)
		}
		tb2.AddRow(report.Percent(prob),
			fmt.Sprintf("%.0fs", res.MedianLatency()),
			fmt.Sprintf("%.0fs", res.P99Latency()))
	}
	fmt.Println("straggler injection (8x slowdown) under fair scheduling:")
	if err := tb2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
