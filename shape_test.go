package swim

// Shape tests: the paper's §8 summary claims, asserted end-to-end against
// generated traces for all seven workloads. These are the acceptance tests
// of the reproduction — if a calibration or analysis change breaks a
// headline finding, these fail. (EXPERIMENTS.md records the precise
// numbers; here we assert the qualitative shape with tolerant bounds.)

import (
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
)

// shapeWindow trades runtime against statistical stability.
const shapeWindow = 7 * 24 * time.Hour

var (
	shapeReports   map[string]*Report
	shapeTraces    map[string]*Trace
	shapeSetupOnce sync.Once
	shapeSetupErr  error
)

func shapeSetup(t *testing.T) (map[string]*Trace, map[string]*Report) {
	t.Helper()
	shapeSetupOnce.Do(func() {
		shapeTraces = make(map[string]*Trace)
		shapeReports = make(map[string]*Report)
		for _, name := range Workloads() {
			tr, err := Generate(GenerateOptions{Workload: name, Seed: 12061, Duration: shapeWindow})
			if err != nil {
				shapeSetupErr = err
				return
			}
			rep, err := Analyze(tr, AnalyzeOptions{})
			if err != nil {
				shapeSetupErr = err
				return
			}
			shapeTraces[name] = tr
			shapeReports[name] = rep
		}
	})
	if shapeSetupErr != nil {
		t.Fatal(shapeSetupErr)
	}
	return shapeTraces, shapeReports
}

// §8.3: "The small jobs form over 90% of all jobs for all workloads."
func TestShapeSmallJobsDominateEverywhere(t *testing.T) {
	_, reports := shapeSetup(t)
	for name, rep := range reports {
		if rep.Clusters == nil {
			t.Fatalf("%s: no clustering", name)
		}
		if f := rep.Clusters.SmallJobFraction; f < 0.88 {
			t.Errorf("%s: small-job fraction %.3f < 0.88 (paper: >0.90)", name, f)
		}
	}
}

// §4.1 / Figure 1: medians differ by ~6 orders of magnitude across
// workloads for inputs.
func TestShapeMedianSpans(t *testing.T) {
	_, reports := shapeSetup(t)
	var all []*analysis.DataSizes
	for _, name := range Workloads() {
		all = append(all, reports[name].DataSizes)
	}
	in, _, out := analysis.MedianSpanAcrossWorkloads(all)
	if in < 5 {
		t.Errorf("input median span = %.1f orders, want >= 5 (paper: 6)", in)
	}
	if out < 2 {
		t.Errorf("output median span = %.1f orders, want >= 2 (paper: 4)", out)
	}
}

// §4.2 / Figure 2: Zipf-like access frequencies, "same shape" across
// workloads, approximately straight in log-log.
func TestShapeZipfEverywhere(t *testing.T) {
	_, reports := shapeSetup(t)
	for _, name := range []string{"CC-b", "CC-c", "CC-d", "CC-e", "FB-2010"} {
		af := reports[name].InputAccess
		if af == nil {
			t.Fatalf("%s: missing access analysis", name)
		}
		if af.Fit.R2 < 0.85 {
			t.Errorf("%s: log-log R2 = %.3f, want straightish (>0.85)", name, af.Fit.R2)
		}
		if af.Fit.Alpha < 0.35 || af.Fit.Alpha > 1.2 {
			t.Errorf("%s: alpha = %.3f, want in the 5/6 neighborhood", name, af.Fit.Alpha)
		}
	}
	// Pathless workloads must not fabricate the analysis.
	for _, name := range []string{"CC-a", "FB-2009"} {
		if reports[name].InputAccess != nil {
			t.Errorf("%s: access analysis should be absent (no paths)", name)
		}
	}
}

// §8.1: "Skew in data accesses frequencies range between an 80-1 and an
// 80-8 rule" — 80% of accesses hit a small percent of stored bytes.
func TestShapeEightyRules(t *testing.T) {
	_, reports := shapeSetup(t)
	for _, name := range []string{"CC-b", "CC-c", "CC-d", "CC-e", "FB-2010"} {
		sa := reports[name].InputSizeAccess
		if sa == nil {
			t.Fatalf("%s: missing size-access analysis", name)
		}
		if n := sa.EightyRule(); n > 15 {
			t.Errorf("%s: 80-%.1f rule, want single digits (paper: 1-8)", name, n)
		}
	}
}

// §8.1: "80% of data re-accesses occur on the range of minutes to hours".
func TestShapeTemporalLocality(t *testing.T) {
	_, reports := shapeSetup(t)
	for _, name := range []string{"CC-b", "CC-c", "CC-e", "FB-2010"} {
		iv := reports[name].Intervals
		if iv == nil {
			t.Fatalf("%s: missing intervals", name)
		}
		day := iv.FractionWithin(24 * time.Hour)
		if day < 0.6 {
			t.Errorf("%s: re-accesses within a day = %.2f, want majority", name, day)
		}
	}
}

// Figure 6: re-access fractions approach ~75% for CC-c/d/e, lower
// elsewhere.
func TestShapeReaccessOrdering(t *testing.T) {
	_, reports := shapeSetup(t)
	total := func(name string) float64 {
		rf := reports[name].Reaccess
		if rf == nil {
			t.Fatalf("%s: missing reaccess", name)
		}
		return rf.InputReaccess + rf.OutputReaccess
	}
	for _, heavy := range []string{"CC-c", "CC-d", "CC-e"} {
		if v := total(heavy); v < 0.6 || v > 0.85 {
			t.Errorf("%s: re-access total %.2f, want ~0.75 (paper: up to 0.78)", heavy, v)
		}
	}
	if v := total("CC-b"); v > 0.45 {
		t.Errorf("CC-b re-access %.2f should be distinctly lower", v)
	}
}

// §8.2: "Peak-to-median ratio in cluster load range from 9:1 to 260:1",
// with FB-2010 the least bursty.
func TestShapeBurstinessRange(t *testing.T) {
	_, reports := shapeSetup(t)
	fb10 := reports["FB-2010"].PeakToMedian
	if fb10 < 2 || fb10 > 30 {
		t.Errorf("FB-2010 peak:median = %.0f, want near the paper's 9:1", fb10)
	}
	for _, name := range Workloads() {
		p2m := reports[name].PeakToMedian
		if p2m < fb10-0.5 {
			t.Errorf("%s peak:median %.0f below FB-2010's %.0f; FB-2010 should be least bursty",
				name, p2m, fb10)
		}
		// Tiny workloads like CC-a legitimately pair a ~450 task-s/hr
		// median with single million-task-second pipeline jobs, so their
		// one-week-window ratio runs to the low thousands; the cap only
		// catches degenerate blowups.
		if p2m > 3000 {
			t.Errorf("%s peak:median %.0f implausibly high", name, p2m)
		}
		// Physical plausibility: task-seconds accrue on real slots, so the
		// peak hour must stay near the cluster's slot capacity. The
		// generator is an open-loop sampler — it does not simulate the
		// queue backpressure that keeps a real log strictly under capacity
		// — so overlapping heavy jobs are allowed a bounded excursion
		// above the hard per-hour limit.
		p, err := WorkloadProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		var peak float64
		for _, v := range reports[name].Series.TaskSecondsSpread {
			if v > peak {
				peak = v
			}
		}
		capacity := float64(p.Machines*p.SlotsPerMachine) * 3600
		if peak > 2.5*capacity {
			t.Errorf("%s peak hour carries %.3g task-s, over 2.5x the cluster's %.3g slot-s capacity",
				name, peak, capacity)
		}
	}
}

// §5.3 / Figure 9: bytes↔task-time is by far the strongest correlation for
// every workload.
func TestShapeDataCentricCorrelation(t *testing.T) {
	_, reports := shapeSetup(t)
	var sumBT, sumJB, sumJT float64
	for name, rep := range reports {
		c := rep.Correlations
		if c == nil {
			t.Fatalf("%s: missing correlations", name)
		}
		// Per workload: bytes-task must at least not be dominated. (A
		// single rare compute-heavy/byte-light job can depress one
		// workload's hourly correlation in a one-week window, so the
		// strong-correlation claim is asserted on the average below.)
		if c.BytesTaskSeconds <= c.JobsBytes-0.1 || c.BytesTaskSeconds <= c.JobsTaskSeconds-0.1 {
			t.Errorf("%s: bytes-task %.2f should dominate jobs-bytes %.2f and jobs-task %.2f",
				name, c.BytesTaskSeconds, c.JobsBytes, c.JobsTaskSeconds)
		}
		sumBT += c.BytesTaskSeconds
		sumJB += c.JobsBytes
		sumJT += c.JobsTaskSeconds
	}
	n := float64(len(reports))
	avgBT, avgJB, avgJT := sumBT/n, sumJB/n, sumJT/n
	if avgBT < 0.4 {
		t.Errorf("average bytes-task corr %.2f, want strong (paper: 0.62)", avgBT)
	}
	if avgBT <= avgJB || avgBT <= avgJT {
		t.Errorf("average bytes-task %.2f must dominate %.2f / %.2f (paper: 0.62 vs 0.21/0.14)",
			avgBT, avgJB, avgJT)
	}
}

// §6.1 / Figure 10: a handful of first words dominates job counts; the
// mixes exist exactly for the workloads whose traces carry names.
func TestShapeNameConcentration(t *testing.T) {
	_, reports := shapeSetup(t)
	for _, name := range []string{"CC-a", "CC-b", "CC-c", "CC-d", "CC-e", "FB-2009"} {
		na := reports[name].Names
		if na == nil {
			t.Fatalf("%s: missing names", name)
		}
		if frac := na.TopKJobsFraction(5); frac < 0.6 {
			t.Errorf("%s: top-5 words cover %.2f of jobs, want dominant majority", name, frac)
		}
	}
	if reports["FB-2010"].Names != nil {
		t.Error("FB-2010 should carry no names")
	}
}

// End-to-end determinism: the full pipeline is reproducible bit-for-bit.
func TestShapePipelineDeterminism(t *testing.T) {
	a, err := Generate(GenerateOptions{Workload: "CC-e", Seed: 99, Duration: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenerateOptions{Workload: "CC-e", Seed: 99, Duration: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Analyze(a, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Analyze(b, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.PeakToMedian != rb.PeakToMedian ||
		ra.Summary.BytesMoved != rb.Summary.BytesMoved ||
		ra.Correlations.BytesTaskSeconds != rb.Correlations.BytesTaskSeconds {
		t.Error("pipeline is not deterministic for a fixed seed")
	}
}
