// Package swim is a Go reimplementation of the measurement and synthesis
// pipeline behind "Interactive Analytical Processing in Big Data Systems:
// A Cross-Industry Study of MapReduce Workloads" (Chen, Alspaugh, Katz —
// VLDB 2012) and of the paper's companion tool SWIM, the Statistical
// Workload Injector for MapReduce.
//
// The package is a façade over the implementation in internal/…:
//
//   - calibrated statistical profiles of the paper's seven workloads
//     (five Cloudera customers CC-a..CC-e, plus FB-2009 and FB-2010) and a
//     deterministic generator that synthesizes traces from them
//     (Workloads, WorkloadProfile, Generate);
//   - the full analysis suite reproducing every figure and table of the
//     study from any trace (Analyze, Report);
//   - the SWIM synthesizer: sample + scale a trace down while preserving
//     its distributions, with measured fidelity (Synthesize, ScaleDown,
//     Fidelity);
//   - a discrete-event MapReduce cluster simulator for replay
//     (Replay, ReplayOptions);
//   - cache and storage-tiering policy evaluation driven by the trace's
//     file access stream (CompareCachePolicies).
//
// Everything is deterministic given explicit seeds. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package swim

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/units"
)

// Re-exported core types. These aliases make the public API self-contained
// while the implementation lives in internal packages.
type (
	// Trace is a workload: metadata plus jobs ordered by submit time.
	Trace = trace.Trace
	// Job is one MapReduce job summary record (the Hadoop history-log
	// schema of §3).
	Job = trace.Job
	// Meta is per-trace metadata (workload name, machines, start, length).
	Meta = trace.Meta
	// Summary is a Table-1 row (jobs, bytes moved).
	Summary = trace.Summary
	// Profile is a calibrated workload profile (Tables 1-2, Figures 2, 6,
	// 8-10 encoded as generator parameters).
	Profile = profile.Profile
	// Bytes is a byte count; TaskSeconds is slot-seconds of task time.
	Bytes = units.Bytes
	// TaskSeconds is the map/reduce task-time unit of Table 2.
	TaskSeconds = units.TaskSeconds
	// Fidelity scores synthesis quality (K-S distances, burstiness drift).
	Fidelity = synth.Fidelity
	// ReplayResult aggregates a simulated replay run.
	ReplayResult = cluster.Result
	// CacheResult reports one cache policy's hit rates over a trace.
	CacheResult = cache.Result
	// Source yields the jobs of a trace one at a time, in submit order —
	// the streaming read side (see OpenTrace, AnalyzeFrom).
	Source = trace.Source
	// Sink receives the jobs of a trace one at a time — the streaming
	// write side (see GenerateTo).
	Sink = trace.Sink
)

// Byte size constants re-exported for convenience.
const (
	KB = units.KB
	MB = units.MB
	GB = units.GB
	TB = units.TB
	PB = units.PB
	EB = units.EB
)

// Workloads lists the seven calibrated workload names in Table 1 order:
// CC-a, CC-b, CC-c, CC-d, CC-e, FB-2009, FB-2010.
func Workloads() []string { return profile.Names() }

// WorkloadProfile returns the calibrated profile for a workload name.
func WorkloadProfile(name string) (*Profile, error) { return profile.ByName(name) }

// GenerateOptions controls synthetic trace generation.
type GenerateOptions struct {
	// Workload is one of Workloads(). Required unless Profile is set.
	Workload string
	// Profile overrides Workload with a custom profile.
	Profile *Profile
	// Seed fixes all randomness (default 1).
	Seed int64
	// Duration truncates the trace (zero: the profile's full Table-1
	// length — note FB-2009 is six months; prefer a few weeks for
	// interactive use).
	Duration time.Duration
	// RateScale scales the arrival rate (zero: 1.0).
	RateScale float64
	// Parallelism is the number of workers generating trace windows
	// concurrently (zero: runtime.GOMAXPROCS(0)). The output is
	// byte-identical at every setting — randomness derives from
	// (Seed, window index), never from goroutine schedule — so this is
	// purely a wall-clock knob.
	Parallelism int
}

// config resolves the options into a generator configuration.
func (o GenerateOptions) config() (gen.Config, error) {
	p := o.Profile
	if p == nil {
		if o.Workload == "" {
			return gen.Config{}, fmt.Errorf("swim: GenerateOptions needs Workload or Profile")
		}
		var err error
		p, err = profile.ByName(o.Workload)
		if err != nil {
			return gen.Config{}, err
		}
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	return gen.Config{
		Profile:     p,
		Seed:        seed,
		Duration:    o.Duration,
		RateScale:   o.RateScale,
		Parallelism: o.Parallelism,
	}, nil
}

// Generate synthesizes a workload trace from a calibrated profile. The
// generated trace reproduces the published statistics of the original
// proprietary trace (see DESIGN.md for the substitution argument).
func Generate(opts GenerateOptions) (*Trace, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	return gen.Generate(cfg)
}

// GenerateTo synthesizes a workload trace and streams it straight to a
// file (.jsonl or .csv by extension) without materializing it: memory is
// bounded by the generator's window prefetch, not by trace length, so a
// full six-month FB-2009 trace generates in tens of megabytes of heap.
// The written bytes are identical to Generate + SaveTrace. Returns the
// Table-1 summary of the written trace.
func GenerateTo(path string, opts GenerateOptions) (Summary, error) {
	cfg, err := opts.config()
	if err != nil {
		return Summary{}, err
	}
	ext := filepath.Ext(path)
	if ext != ".jsonl" && ext != ".csv" {
		return Summary{}, fmt.Errorf("swim: unknown trace extension %q (use .jsonl or .csv)", ext)
	}
	f, err := os.Create(path)
	if err != nil {
		return Summary{}, fmt.Errorf("swim: %w", err)
	}
	defer f.Close()
	var sink interface {
		Sink
		Close() error
	}
	if ext == ".jsonl" {
		sink = trace.NewJSONLWriter(f)
	} else {
		sink = trace.NewCSVWriter(f)
	}
	sum, err := gen.GenerateTo(cfg, sink)
	if err == nil {
		err = sink.Close()
	}
	if err != nil {
		return Summary{}, err
	}
	return sum, f.Close()
}

// SaveTrace writes a trace to path; format by extension: .jsonl (native,
// lossless) or .csv (flat job table).
func SaveTrace(path string, t *Trace) error {
	ext := filepath.Ext(path)
	if ext != ".jsonl" && ext != ".csv" {
		return fmt.Errorf("swim: unknown trace extension %q (use .jsonl or .csv)", ext)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("swim: %w", err)
	}
	defer f.Close()
	if ext == ".jsonl" {
		err = trace.WriteJSONL(f, t)
	} else {
		err = trace.WriteCSV(f, t)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// LoadTrace reads a trace written by SaveTrace. CSV files carry no
// metadata; meta must be supplied for them and is ignored for JSONL.
func LoadTrace(path string, meta Meta) (*Trace, error) {
	src, err := OpenTrace(path, meta)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	return trace.Collect(src)
}

// TraceSource is a streaming trace reader backed by a file; Close when
// done.
type TraceSource interface {
	Source
	Close() error
}

// fileSource pairs a Source with the file backing it.
type fileSource struct {
	Source
	f *os.File
}

func (s *fileSource) Close() error { return s.f.Close() }

// OpenTrace opens a trace file for streaming reads: jobs are decoded one
// at a time as Next is called, so arbitrarily long traces can be
// processed in constant memory. CSV files carry no metadata; meta must be
// supplied for them and is ignored for JSONL.
func OpenTrace(path string, meta Meta) (TraceSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("swim: %w", err)
	}
	var src Source
	switch filepath.Ext(path) {
	case ".jsonl":
		src, err = trace.NewJSONLReader(f)
	case ".csv":
		src, err = trace.NewCSVReader(f, meta)
	default:
		err = fmt.Errorf("swim: unknown trace extension %q", filepath.Ext(path))
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileSource{Source: src, f: f}, nil
}

// SynthesizeOptions controls SWIM workload synthesis (§7).
type SynthesizeOptions struct {
	// TargetLength of the synthetic workload. Required.
	TargetLength time.Duration
	// WindowLength is the sampling granule (default 1 hour).
	WindowLength time.Duration
	// SourceMachines/TargetMachines scale data and compute proportionally
	// to cluster size; zero keeps the original scale.
	SourceMachines int
	TargetMachines int
	// Seed fixes sampling.
	Seed int64
}

// Synthesize produces a SWIM-style synthetic workload from a source trace:
// window-sampled to TargetLength and scaled to the target cluster size.
func Synthesize(src *Trace, opts SynthesizeOptions) (*Trace, error) {
	return synth.Synthesize(src, synth.Config{
		TargetLength:   opts.TargetLength,
		WindowLength:   opts.WindowLength,
		SourceMachines: opts.SourceMachines,
		TargetMachines: opts.TargetMachines,
		Seed:           opts.Seed,
	})
}

// ScaleDownFidelity synthesizes and scores in one step, returning the
// synthetic trace and its fidelity against the source.
func ScaleDownFidelity(src *Trace, opts SynthesizeOptions) (*Trace, Fidelity, error) {
	syn, err := Synthesize(src, opts)
	if err != nil {
		return nil, Fidelity{}, err
	}
	fid, err := synth.Compare(src, syn)
	if err != nil {
		return nil, Fidelity{}, err
	}
	return syn, fid, nil
}

// SchedulerKind selects the replay scheduling discipline.
type SchedulerKind = cluster.SchedulerKind

// Scheduler disciplines for Replay.
const (
	// SchedulerFIFO runs jobs strictly in arrival order.
	SchedulerFIFO = cluster.FIFO
	// SchedulerFair round-robins slots across runnable jobs.
	SchedulerFair = cluster.Fair
)

// ReplayOptions sizes the simulated cluster for Replay.
type ReplayOptions struct {
	// Nodes in the simulated cluster (default: the trace's Meta.Machines).
	Nodes int
	// MapSlotsPerNode / ReduceSlotsPerNode (defaults 6 / 4).
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// Scheduler discipline (default FIFO).
	Scheduler SchedulerKind
	// Straggler injection: per-task probability and slowdown factor.
	StragglerProb   float64
	StragglerFactor float64
	// Seed fixes straggler draws.
	Seed int64
}

// Replay runs the trace through the discrete-event cluster simulator and
// returns per-job latencies and the hourly slot-occupancy series (the
// utilization column of Figure 7).
func Replay(t *Trace, opts ReplayOptions) (*ReplayResult, error) {
	nodes := opts.Nodes
	if nodes == 0 {
		nodes = t.Meta.Machines
	}
	return cluster.Run(t, cluster.Config{
		Nodes:              nodes,
		MapSlotsPerNode:    opts.MapSlotsPerNode,
		ReduceSlotsPerNode: opts.ReduceSlotsPerNode,
		Scheduler:          opts.Scheduler,
		StragglerProb:      opts.StragglerProb,
		StragglerFactor:    opts.StragglerFactor,
		Seed:               opts.Seed,
	})
}

// CompareCachePolicies replays the trace's input accesses through the §4
// policy suite — LRU, LFU, FIFO, and the paper-recommended size-threshold
// LRU — each with the given byte capacity. Threshold is the admission cut
// for the size-threshold policy (e.g. 1 GB, per Figure 3's "90% of jobs
// access files of less than a few GBs").
func CompareCachePolicies(t *Trace, capacity, threshold Bytes) ([]CacheResult, error) {
	return cache.Compare(t, []cache.Policy{
		cache.NewLRU(capacity),
		cache.NewLFU(capacity),
		cache.NewFIFO(capacity),
		cache.NewSizeThresholdLRU(capacity, threshold),
	})
}
