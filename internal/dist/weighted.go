package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// WeightedChoice draws indices i with probability proportional to
// weights[i] in O(1) per draw via Vose's alias method. The generator
// uses it for the Figure 10 job-name mixtures, replacing a linear scan
// over the weight vector on every job.
//
// The table is immutable after construction and safe for concurrent
// draws from independent sources.
type WeightedChoice struct {
	prob  []float64 // prob[i]: chance column i keeps its own index
	alias []int     // alias[i]: index drawn when the coin flip loses
}

// NewWeightedChoice builds the alias table in O(n). Weights must be
// non-negative and finite with a positive sum; individual zero weights
// are fine (those indices are simply never drawn).
func NewWeightedChoice(weights []float64) (*WeightedChoice, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("dist: WeightedChoice needs at least one weight")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: WeightedChoice weight[%d] = %v", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("dist: WeightedChoice weights sum to zero")
	}

	// Vose's method: scale weights to mean 1, then pair each underfull
	// column with an overfull donor.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	wc := &WeightedChoice{prob: make([]float64, n), alias: make([]int, n)}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		wc.prob[s] = scaled[s]
		wc.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Round-off leftovers are all exactly probability 1.
	for _, i := range large {
		wc.prob[i] = 1
		wc.alias[i] = i
	}
	for _, i := range small {
		wc.prob[i] = 1
		wc.alias[i] = i
	}
	return wc, nil
}

// Len returns the number of indices.
func (w *WeightedChoice) Len() int { return len(w.prob) }

// Sample draws one index: a fair column pick plus one biased coin.
func (w *WeightedChoice) Sample(rng *rand.Rand) int {
	i := rng.IntN(len(w.prob))
	if rng.Float64() < w.prob[i] {
		return i
	}
	return w.alias[i]
}
