// Package dist provides the random-variate samplers the trace generator
// is built on: bounded and unbounded Zipf ranks (file popularity, Figure
// 2 of the study), Pareto (burst multipliers, Figure 8), Poisson (hourly
// arrival counts, §5), lognormal (within-cluster size and time spread,
// Table 2), and an alias-method weighted choice (job-name mixtures,
// Figure 10).
//
// Every sampler draws exclusively from the *rand.Rand passed at call
// time and keeps no mutable state of its own, so a constructed sampler
// is safe for concurrent use from many goroutines as long as each
// goroutine brings its own source. That contract is what lets
// internal/gen shard trace generation across workers while staying
// bit-reproducible: randomness is a pure function of the caller's
// (seed-derived) source, never of scheduling.
//
// See DESIGN.md for why each algorithm was chosen.
package dist

import "math/rand/v2"

// Sampler is the common face of the continuous distributions in this
// package: one draw per call from the supplied source.
type Sampler interface {
	Sample(rng *rand.Rand) float64
}
