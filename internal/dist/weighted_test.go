package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNewWeightedChoiceErrors(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{1, -0.5},
		{math.NaN(), 1},
		{math.Inf(1), 1},
		{0, 0, 0},
	}
	for i, ws := range cases {
		if _, err := NewWeightedChoice(ws); err == nil {
			t.Errorf("case %d (%v): expected error", i, ws)
		}
	}
}

func TestWeightedChoiceSingle(t *testing.T) {
	wc, err := NewWeightedChoice([]float64{3.7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 100; i++ {
		if wc.Sample(rng) != 0 {
			t.Fatal("single-weight table must always return 0")
		}
	}
	if wc.Len() != 1 {
		t.Errorf("Len = %d", wc.Len())
	}
}

func TestWeightedChoiceZeroWeightNeverDrawn(t *testing.T) {
	wc, err := NewWeightedChoice([]float64{0.5, 0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 50000; i++ {
		if wc.Sample(rng) == 1 {
			t.Fatal("index with zero weight was drawn")
		}
	}
}

// TestWeightedChoiceDistribution is a chi-squared goodness-of-fit check:
// the alias table must reproduce the weight vector, including weights
// that do not sum to 1 (the table normalizes internally).
func TestWeightedChoiceDistribution(t *testing.T) {
	weights := []float64{5, 3, 1.5, 0.4, 0.1}
	wc, err := NewWeightedChoice(weights)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	rng := rand.New(rand.NewPCG(8, 15))
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[wc.Sample(rng)]++
	}
	var chi2 float64
	for i, w := range weights {
		exp := n * w / total
		d := float64(counts[i]) - exp
		chi2 += d * d / exp
	}
	// df = 4; critical value at p = 0.001 is 18.47.
	if chi2 > 18.47 {
		t.Errorf("chi-squared = %v over df=4, want < 18.47 (counts %v)", chi2, counts)
	}
}
