package dist

import (
	"math"
	"math/rand/v2"
)

// ptrsCutoff is where Poisson switches from Knuth's product-of-uniforms
// method, whose cost grows linearly in lambda, to the PTRS transformed
// rejection sampler, whose cost is O(1). PTRS is valid for lambda >= 10;
// 30 keeps Knuth (exact, branch-free, cheap at small rates) for the
// common per-hour arrival rates and reserves PTRS for burst hours and
// rate-scaled runs.
const ptrsCutoff = 30

// Poisson draws a Poisson(lambda) count using the given source.
// Non-positive lambda yields 0. The generator calls this once per
// (hour, cluster) pair to produce arrival counts (§5).
func Poisson(rng *rand.Rand, lambda float64) int {
	switch {
	case lambda <= 0 || math.IsNaN(lambda):
		return 0
	case lambda < ptrsCutoff:
		return poissonKnuth(rng, lambda)
	default:
		return poissonPTRS(rng, lambda)
	}
}

// poissonKnuth multiplies uniforms until the product drops below
// exp(-lambda); the number of factors minus one is Poisson(lambda).
func poissonKnuth(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS is Hörmann's PTRS algorithm (transformed rejection with
// squeeze; W. Hörmann, "The transformed rejection method for generating
// Poisson random variables", Insurance: Mathematics and Economics 12,
// 1993). Expected uniforms per draw is < 2.5 for all lambda >= 10,
// independent of lambda.
func poissonPTRS(rng *rand.Rand, lambda float64) int {
	logLambda := math.Log(lambda)
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-lg {
			return int(k)
		}
	}
}
