package dist

import (
	"math/rand/v2"
	"testing"
)

// TestSamplersDeterministic: every sampler in the package is a pure
// function of its source — two sources seeded identically must yield
// identical draw sequences. This is the contract the sharded generator
// builds its cross-parallelism reproducibility on.
func TestSamplersDeterministic(t *testing.T) {
	src := func() *rand.Rand { return rand.New(rand.NewPCG(101, 202)) }
	const draws = 2000

	t.Run("BoundedZipf", func(t *testing.T) {
		z, err := NewBoundedZipf(333, 5.0/6.0)
		if err != nil {
			t.Fatal(err)
		}
		a, b := src(), src()
		for i := 0; i < draws; i++ {
			if x, y := z.SampleRank(a), z.SampleRank(b); x != y {
				t.Fatalf("draw %d: %d vs %d", i, x, y)
			}
		}
	})
	t.Run("ApproxZipfRank", func(t *testing.T) {
		a, b := src(), src()
		for i := 0; i < draws; i++ {
			if x, y := ApproxZipfRank(a, 777, 1.05), ApproxZipfRank(b, 777, 1.05); x != y {
				t.Fatalf("draw %d: %d vs %d", i, x, y)
			}
		}
	})
	t.Run("Pareto", func(t *testing.T) {
		p := Pareto{Xm: 1.5, Alpha: 1.8}
		a, b := src(), src()
		for i := 0; i < draws; i++ {
			if x, y := p.Sample(a), p.Sample(b); x != y {
				t.Fatalf("draw %d: %v vs %v", i, x, y)
			}
		}
	})
	t.Run("Poisson", func(t *testing.T) {
		a, b := src(), src()
		for _, lambda := range []float64{3, 300} {
			for i := 0; i < draws; i++ {
				if x, y := Poisson(a, lambda), Poisson(b, lambda); x != y {
					t.Fatalf("lambda %v draw %d: %d vs %d", lambda, i, x, y)
				}
			}
		}
	})
	t.Run("WeightedChoice", func(t *testing.T) {
		wc, err := NewWeightedChoice([]float64{0.4, 0.3, 0.2, 0.1})
		if err != nil {
			t.Fatal(err)
		}
		a, b := src(), src()
		for i := 0; i < draws; i++ {
			if x, y := wc.Sample(a), wc.Sample(b); x != y {
				t.Fatalf("draw %d: %d vs %d", i, x, y)
			}
		}
	})
	t.Run("LogNormal", func(t *testing.T) {
		ln := MeanOneLogNormal(0.8)
		a, b := src(), src()
		for i := 0; i < draws; i++ {
			if x, y := ln.Sample(a), ln.Sample(b); x != y {
				t.Fatalf("draw %d: %v vs %v", i, x, y)
			}
		}
	})
}
