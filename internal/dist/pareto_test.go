package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestParetoSupport(t *testing.T) {
	p := Pareto{Xm: 1.5, Alpha: 2.5}
	rng := rand.New(rand.NewPCG(3, 9))
	for i := 0; i < 10000; i++ {
		x := p.Sample(rng)
		if x < p.Xm {
			t.Fatalf("sample %v below scale %v", x, p.Xm)
		}
		if math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("non-finite sample %v", x)
		}
	}
}

// TestParetoTailIndexRecovered checks the maximum-likelihood (Hill)
// estimate of the tail index against the configured shape: with all
// samples above Xm, alphaHat = n / Σ ln(xᵢ/Xm).
func TestParetoTailIndexRecovered(t *testing.T) {
	for _, alpha := range []float64{1.2, 2.0, 3.5} {
		p := Pareto{Xm: 2.0, Alpha: alpha}
		rng := rand.New(rand.NewPCG(17, uint64(alpha*100)))
		const n = 200000
		var sumLog float64
		for i := 0; i < n; i++ {
			sumLog += math.Log(p.Sample(rng) / p.Xm)
		}
		alphaHat := float64(n) / sumLog
		if math.Abs(alphaHat-alpha)/alpha > 0.02 {
			t.Errorf("alpha = %v: MLE recovered %v, want within 2%%", alpha, alphaHat)
		}
	}
}

func TestParetoMean(t *testing.T) {
	if m := (Pareto{Xm: 1, Alpha: 0.9}).Mean(); !math.IsInf(m, 1) {
		t.Errorf("alpha <= 1 mean = %v, want +Inf", m)
	}
	p := Pareto{Xm: 1.5, Alpha: 3}
	want := p.Mean() // 3·1.5/2 = 2.25
	rng := rand.New(rand.NewPCG(23, 5))
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		sum += p.Sample(rng)
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("empirical mean %v, analytic %v", got, want)
	}
}
