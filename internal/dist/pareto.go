package dist

import (
	"math"
	"math/rand/v2"
)

// Pareto is a type-I Pareto distribution with scale Xm (the minimum
// value) and shape Alpha: P(X > x) = (Xm/x)^Alpha for x >= Xm. The
// generator uses it for the burst multipliers behind Figure 8's
// 9:1–260:1 peak-to-median ratios; the heavy tail is the point, so the
// sampler is exact inverse-CDF rather than a clipped approximation.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample draws one variate in [Xm, ∞). The uniform is taken as 1-u with
// u ∈ [0, 1) so the argument to Pow is in (0, 1] and the result is
// always finite.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	return p.Xm * math.Pow(1-rng.Float64(), -1/p.Alpha)
}

// Mean returns the distribution mean, or +Inf when Alpha <= 1 (the tail
// is too heavy for a first moment).
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}
