package dist

import (
	"math"
	"math/rand/v2"
)

// LogNormal is a lognormal distribution parameterized by the mean Mu and
// standard deviation Sigma of the underlying normal (natural-log space).
// Table 2's within-cluster size and time spread and §5's hourly rate
// noise are both lognormal in the generator.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// Sample draws exp(Mu + Sigma·Z).
func (ln LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(ln.Mu + ln.Sigma*rng.NormFloat64())
}

// Median is exp(Mu).
func (ln LogNormal) Median() float64 { return math.Exp(ln.Mu) }

// Mean is exp(Mu + Sigma²/2).
func (ln LogNormal) Mean() float64 { return math.Exp(ln.Mu + ln.Sigma*ln.Sigma/2) }

// MeanOneLogNormal returns the lognormal with the given log-space sigma
// whose mean is exactly 1 (Mu = -Sigma²/2). The arrival process
// multiplies hourly rates by such noise so that modulation reshapes the
// rate series without inflating the long-run job count.
func MeanOneLogNormal(sigma float64) LogNormal {
	return LogNormal{Mu: -sigma * sigma / 2, Sigma: sigma}
}
