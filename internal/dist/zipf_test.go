package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNewBoundedZipfErrors(t *testing.T) {
	cases := []struct {
		n     int
		alpha float64
	}{
		{0, 0.8},
		{-5, 0.8},
		{10, 0},
		{10, -1},
		{10, math.NaN()},
		{10, math.Inf(1)},
	}
	for _, c := range cases {
		if _, err := NewBoundedZipf(c.n, c.alpha); err == nil {
			t.Errorf("NewBoundedZipf(%d, %v): expected error", c.n, c.alpha)
		}
	}
}

func TestBoundedZipfAccessors(t *testing.T) {
	z, err := NewBoundedZipf(100, 5.0/6.0)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 100 || z.Alpha() != 5.0/6.0 {
		t.Errorf("accessors: N=%d Alpha=%v", z.N(), z.Alpha())
	}
}

func TestBoundedZipfProbNormalized(t *testing.T) {
	z, err := NewBoundedZipf(64, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for k := 1; k <= 64; k++ {
		p := z.Prob(k)
		if p <= 0 {
			t.Fatalf("Prob(%d) = %v, want > 0", k, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
	if z.Prob(0) != 0 || z.Prob(65) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
	// Monotone decreasing mass.
	for k := 2; k <= 64; k++ {
		if z.Prob(k) > z.Prob(k-1) {
			t.Fatalf("Prob(%d) > Prob(%d)", k, k-1)
		}
	}
}

func TestBoundedZipfBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for _, n := range []int{1, 2, 17, 500} {
		z, err := NewBoundedZipf(n, 5.0/6.0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if k := z.SampleRank(rng); k < 1 || k > n {
				t.Fatalf("SampleRank(n=%d) = %d out of bounds", n, k)
			}
		}
	}
}

// TestBoundedZipfExponentRecovered is the Figure 2 property: empirical
// frequency vs rank on log-log axes must be a straight line whose slope
// recovers the configured exponent.
func TestBoundedZipfExponentRecovered(t *testing.T) {
	const (
		n       = 400
		alpha   = 5.0 / 6.0
		samples = 400000
	)
	z, err := NewBoundedZipf(n, alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 13))
	counts := make([]int, n+1)
	for i := 0; i < samples; i++ {
		counts[z.SampleRank(rng)]++
	}
	// Regress log(freq) on log(rank) over the well-populated head.
	var xs, ys []float64
	for k := 1; k <= 100; k++ {
		if counts[k] == 0 {
			continue
		}
		xs = append(xs, math.Log(float64(k)))
		ys = append(ys, math.Log(float64(counts[k])))
	}
	slope, r2 := linFit(xs, ys)
	if math.Abs(-slope-alpha) > 0.06 {
		t.Errorf("recovered exponent %v, want %v ± 0.06", -slope, alpha)
	}
	if r2 < 0.98 {
		t.Errorf("log-log fit R² = %v, want a straight line (> 0.98)", r2)
	}
}

func TestApproxZipfRankBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 1))
	for _, alpha := range []float64{0.5, 5.0 / 6.0, 1.0, 1.1} {
		for _, n := range []int{1, 2, 10, 1000} {
			for i := 0; i < 500; i++ {
				k := ApproxZipfRank(rng, n, alpha)
				if k < 1 || k > n {
					t.Fatalf("ApproxZipfRank(n=%d, alpha=%v) = %d out of bounds", n, alpha, k)
				}
			}
		}
	}
}

func TestApproxZipfRankSkew(t *testing.T) {
	rng := rand.New(rand.NewPCG(56, 1))
	n := 1000
	counts := make([]int, n+1)
	for i := 0; i < 100000; i++ {
		counts[ApproxZipfRank(rng, n, 5.0/6.0)]++
	}
	if counts[1] < counts[n/2] {
		t.Error("rank 1 should be more popular than middle ranks")
	}
	// P(k <= 10) ≈ (10/1000)^(1/6) ≈ 0.46 for the continuous analogue.
	head := 0
	for k := 1; k <= 10; k++ {
		head += counts[k]
	}
	frac := float64(head) / 100000
	if frac < 0.3 || frac > 0.6 {
		t.Errorf("head mass = %v, want ~0.46", frac)
	}
}

// linFit returns the least-squares slope and R² of y on x.
func linFit(xs, ys []float64) (slope, r2 float64) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	slope = sxy / sxx
	r := sxy / math.Sqrt(sxx*syy)
	return slope, r * r
}
