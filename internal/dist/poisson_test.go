package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestPoissonDegenerate(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, lambda := range []float64{0, -3, math.NaN()} {
		for i := 0; i < 100; i++ {
			if k := Poisson(rng, lambda); k != 0 {
				t.Fatalf("Poisson(%v) = %d, want 0", lambda, k)
			}
		}
	}
}

// TestPoissonMeanVariance checks the defining property E[X] = Var[X] =
// lambda on both sides of the Knuth/PTRS cutoff.
func TestPoissonMeanVariance(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 12, 29.9, 30.1, 80, 500, 4000} {
		rng := rand.New(rand.NewPCG(29, math.Float64bits(lambda)))
		const n = 200000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			k := Poisson(rng, lambda)
			if k < 0 {
				t.Fatalf("negative count %d at lambda %v", k, lambda)
			}
			x := float64(k)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		// Standard error of the mean is sqrt(lambda/n); allow 5 sigma.
		tol := 5 * math.Sqrt(lambda/n)
		if math.Abs(mean-lambda) > tol {
			t.Errorf("lambda %v: mean %v (tolerance %v)", lambda, mean, tol)
		}
		if math.Abs(variance-lambda)/lambda > 0.05 {
			t.Errorf("lambda %v: variance %v, want within 5%%", lambda, variance)
		}
	}
}

// TestPoissonTailMass: large deviations must be rare but possible —
// P(X >= lambda + 4·sqrt(lambda)) is a fraction of a percent.
func TestPoissonTailMass(t *testing.T) {
	const lambda = 100.0
	rng := rand.New(rand.NewPCG(31, 7))
	const n = 100000
	over := 0
	cut := lambda + 4*math.Sqrt(lambda)
	for i := 0; i < n; i++ {
		if float64(Poisson(rng, lambda)) >= cut {
			over++
		}
	}
	frac := float64(over) / n
	if frac > 0.003 {
		t.Errorf("P(X >= mean+4sd) = %v, want < 0.003", frac)
	}
}
