package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestLogNormalMoments(t *testing.T) {
	ln := LogNormal{Mu: 0.4, Sigma: 0.7}
	if got, want := ln.Median(), math.Exp(0.4); math.Abs(got-want) > 1e-12 {
		t.Errorf("Median = %v, want %v", got, want)
	}
	if got, want := ln.Mean(), math.Exp(0.4+0.49/2); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}

	rng := rand.New(rand.NewPCG(41, 3))
	const n = 400000
	var sum float64
	samples := make([]float64, n)
	for i := range samples {
		x := ln.Sample(rng)
		if x <= 0 {
			t.Fatal("lognormal sample must be positive")
		}
		samples[i] = x
		sum += x
	}
	if mean := sum / n; math.Abs(mean-ln.Mean())/ln.Mean() > 0.02 {
		t.Errorf("empirical mean %v, analytic %v", mean, ln.Mean())
	}
	// Median check: about half the samples below exp(Mu).
	below := 0
	for _, x := range samples {
		if x < ln.Median() {
			below++
		}
	}
	if frac := float64(below) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestMeanOneLogNormal(t *testing.T) {
	for _, sigma := range []float64{0.2, 0.8, 1.5} {
		ln := MeanOneLogNormal(sigma)
		if math.Abs(ln.Mean()-1) > 1e-12 {
			t.Errorf("sigma %v: analytic mean %v, want 1", sigma, ln.Mean())
		}
		rng := rand.New(rand.NewPCG(43, math.Float64bits(sigma)))
		const n = 500000
		var sum float64
		for i := 0; i < n; i++ {
			sum += ln.Sample(rng)
		}
		// Heavy right tail at sigma 1.5: generous empirical tolerance.
		if mean := sum / n; math.Abs(mean-1) > 0.05 {
			t.Errorf("sigma %v: empirical mean %v, want ~1", sigma, mean)
		}
	}
}
