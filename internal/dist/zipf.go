package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// BoundedZipf samples ranks in [1, N] with P(rank = k) ∝ k^-Alpha. The
// study measures file access popularity following exactly this law with
// Alpha ≈ 5/6 across all seven workloads (Figure 2), an exponent shallow
// enough that no rank's mass dominates and naive rejection samplers
// (math/rand's Zipf requires Alpha > 1) do not apply.
//
// Construction precomputes the normalized CDF once in O(N); each draw
// inverts it by binary search in O(log N) with no rejection loop. The
// table is immutable after construction, so one BoundedZipf may be
// shared by any number of goroutines drawing from their own sources.
type BoundedZipf struct {
	n     int
	alpha float64
	cdf   []float64 // cdf[k-1] = P(rank <= k), cdf[n-1] == 1
}

// NewBoundedZipf builds the inverse-CDF table for ranks 1..n with
// exponent alpha > 0.
func NewBoundedZipf(n int, alpha float64) (*BoundedZipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: BoundedZipf needs n >= 1, got %d", n)
	}
	if !(alpha > 0) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("dist: BoundedZipf needs finite alpha > 0, got %v", alpha)
	}
	cdf := make([]float64, n)
	var sum float64
	for k := 1; k <= n; k++ {
		sum += math.Pow(float64(k), -alpha)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against round-off at the top
	return &BoundedZipf{n: n, alpha: alpha, cdf: cdf}, nil
}

// N returns the rank bound.
func (z *BoundedZipf) N() int { return z.n }

// Alpha returns the exponent.
func (z *BoundedZipf) Alpha() float64 { return z.alpha }

// SampleRank draws a rank in [1, N].
func (z *BoundedZipf) SampleRank(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// Prob returns P(rank = k); 0 outside [1, N]. Exposed for calibration
// checks and tests.
func (z *BoundedZipf) Prob(k int) float64 {
	if k < 1 || k > z.n {
		return 0
	}
	if k == 1 {
		return z.cdf[0]
	}
	return z.cdf[k-1] - z.cdf[k-2]
}

// ApproxZipfRank samples a rank in [1, n] with P(k) ∝ k^-alpha using the
// closed-form inverse CDF of the continuous analogue — no table, O(1)
// per draw. Use it where n changes between draws (the generator's
// recency buckets grow as the trace is produced) so a per-n table would
// be rebuilt constantly; use BoundedZipf when n is fixed and exactness
// matters.
//
// For alpha < 1 the continuous CDF is (k/n)^(1-alpha), inverted
// directly. For alpha >= 1 (the recency exponents profiles use are
// 1.0–1.1) it falls back to the alpha == 1 analogue CDF
// ln(k+1)/ln(n+1) with a short rejection loop for the discretization
// edge, defaulting to rank 1 — the mode — if the loop fails.
func ApproxZipfRank(rng *rand.Rand, n int, alpha float64) int {
	if n <= 1 {
		return 1
	}
	if alpha < 1 {
		u := rng.Float64()
		k := int(math.Ceil(float64(n) * math.Pow(u, 1/(1-alpha))))
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		return k
	}
	for i := 0; i < 8; i++ {
		u := rng.Float64()
		k := int(math.Exp(u * math.Log(float64(n)+1)))
		if k >= 1 && k <= n {
			return k
		}
	}
	return 1
}
