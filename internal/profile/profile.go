// Package profile encodes the seven workloads of the study — five Cloudera
// customer traces (CC-a..CC-e) and two Facebook traces (FB-2009, FB-2010) —
// as statistical profiles calibrated to every number the paper publishes:
//
//   - Table 1: machines, trace length, job count, bytes moved;
//   - Table 2: the k-means job-type clusters (population, six-dimensional
//     centroid, label) for each workload;
//   - Figure 2: Zipf file-popularity exponent ≈ 5/6 across all workloads;
//   - Figure 6: fractions of jobs re-accessing pre-existing inputs/outputs;
//   - Figure 8: burstiness levels (peak-to-median ratios 9:1 … 260:1);
//   - Figure 10: job-name first-word mixes per workload and framework.
//
// The raw traces are proprietary; these profiles plus internal/gen are the
// documented substitution (see DESIGN.md): a deterministic generator that
// reproduces the published statistics so that the analysis pipeline can be
// exercised end to end and the figures regenerated in shape.
package profile

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// Framework tags the programming framework a job name belongs to, the
// categorization Figure 10 colors by.
type Framework string

// Framework values observed in the study.
const (
	FrameworkHive   Framework = "Hive"
	FrameworkPig    Framework = "Pig"
	FrameworkOozie  Framework = "Oozie"
	FrameworkNative Framework = "Native" // hand-written MapReduce and other tools
)

// JobCluster is one Table-2 row: a job type discovered by k-means, with its
// population and six-dimensional centroid.
type JobCluster struct {
	// Count is the cluster population in the paper's trace.
	Count int
	// Centroid dimensions.
	Input    units.Bytes
	Shuffle  units.Bytes
	Output   units.Bytes
	Duration time.Duration
	MapTime  units.TaskSeconds
	Reduce   units.TaskSeconds
	// Label is the paper's human-assigned description ("Small jobs",
	// "Map only transform, 3 days", ...).
	Label string
}

// MapOnly reports whether the cluster describes map-only jobs.
func (c JobCluster) MapOnly() bool { return c.Reduce == 0 && c.Shuffle == 0 }

// TotalBytes is the centroid's input+shuffle+output.
func (c JobCluster) TotalBytes() units.Bytes { return c.Input + c.Shuffle + c.Output }

// NameEntry is one first-word bucket of Figure 10 for a workload.
type NameEntry struct {
	// Word is the lower-cased first word of the job name ("insert",
	// "piglatin", "ad", ...).
	Word string
	// Framework that generates such names.
	Framework Framework
	// Weight is the approximate share of jobs carrying the word.
	Weight float64
	// LargeBias multiplies Weight when the job belongs to a non-"small"
	// cluster. Data-centric words (insert, from, etl) dominate the
	// bytes-weighted and task-time-weighted panels of Figure 10 because
	// they attach to big jobs; this knob reproduces that skew.
	LargeBias float64
}

// Profile is a complete calibrated workload description.
type Profile struct {
	// Name is the paper's workload identifier, e.g. "FB-2009".
	Name string
	// Machines is the cluster size (Table 1). For CC-a the paper reports
	// "<100" and for CC-d "400-500"; we use 80 and 450.
	Machines int
	// SlotsPerMachine sizes the simulated cluster for replay; Hadoop
	// clusters of the era ran roughly one task slot per core with 8-16
	// slots per node.
	SlotsPerMachine int
	// TraceStart anchors generated timestamps (paper gives only years).
	TraceStart time.Time
	// TraceLength is the collection duration (Table 1).
	TraceLength time.Duration
	// TotalJobs and BytesMoved are the Table 1 report for reference and
	// calibration checks.
	TotalJobs  int
	BytesMoved units.Bytes

	// Clusters is the Table 2 job-type mixture.
	Clusters []JobCluster

	// Names is the Figure 10 first-word mixture; empty for FB-2010, whose
	// trace had no names.
	Names []NameEntry

	// Field availability (§3, §4.2): which optional fields the original
	// trace carried.
	HasNames       bool
	HasInputPaths  bool
	HasOutputPaths bool

	// SizeSigma is the lognormal jitter (in natural-log space) applied to
	// byte dimensions around cluster centroids. Chosen per workload so
	// that generated aggregate bytes approach Table 1 bytes moved (the
	// centroid-population products alone under-count, since k-means
	// centers sit below heavy-tailed cluster means).
	SizeSigma float64
	// TimeSigma is the lognormal jitter for duration and task-times.
	TimeSigma float64

	// Arrival-process shape (§5): hourly rate = base · diurnal · noise ·
	// occasional spike.
	DiurnalAmplitude float64 // 0..1, share of rate that swings daily
	NoiseSigma       float64 // lognormal sigma of hourly rate noise
	SpikeProb        float64 // probability an hour is a burst hour
	SpikeAlpha       float64 // Pareto shape of the burst multiplier (smaller = heavier)

	// File-access behaviour (§4).
	ZipfAlpha        float64 // popularity exponent; the paper measures ≈5/6
	ReuseInputProb   float64 // P(job input re-reads a pre-existing input), Fig 6
	ReuseOutputProb  float64 // P(job input re-reads a pre-existing output), Fig 6
	FileRecencyAlpha float64 // Zipf exponent over recency ranks (temporal locality, Fig 5)
}

// JobRatePerHour is the mean arrival rate implied by Table 1.
func (p *Profile) JobRatePerHour() float64 {
	h := p.TraceLength.Hours()
	if h <= 0 {
		return 0
	}
	return float64(p.TotalJobs) / h
}

// ClusterWeights returns the job-count mixture weights of the clusters.
func (p *Profile) ClusterWeights() []float64 {
	w := make([]float64, len(p.Clusters))
	for i, c := range p.Clusters {
		w[i] = float64(c.Count)
	}
	return w
}

// SmallJobFraction is the share of jobs in the first cluster, which for
// every workload in Table 2 is the "Small jobs" type; the paper reports
// >90% for all workloads.
func (p *Profile) SmallJobFraction() float64 {
	if len(p.Clusters) == 0 || p.TotalJobs == 0 {
		return 0
	}
	return float64(p.Clusters[0].Count) / float64(p.TotalJobs)
}

// CentroidBytes sums population × centroid total bytes over clusters: the
// deterministic floor of generated traffic before lognormal spread.
func (p *Profile) CentroidBytes() units.Bytes {
	var total float64
	for _, c := range p.Clusters {
		total += float64(c.Count) * float64(c.TotalBytes())
	}
	return units.Bytes(total)
}

// Validate checks internal consistency of the calibration data.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("profile: missing name")
	}
	if p.Machines <= 0 || p.SlotsPerMachine <= 0 {
		return fmt.Errorf("profile %s: non-positive cluster size", p.Name)
	}
	if p.TraceLength <= 0 {
		return fmt.Errorf("profile %s: non-positive trace length", p.Name)
	}
	if len(p.Clusters) == 0 {
		return fmt.Errorf("profile %s: no job clusters", p.Name)
	}
	sum := 0
	for i, c := range p.Clusters {
		if c.Count <= 0 {
			return fmt.Errorf("profile %s: cluster %d has non-positive count", p.Name, i)
		}
		if c.Input < 0 || c.Shuffle < 0 || c.Output < 0 || c.MapTime < 0 || c.Reduce < 0 || c.Duration <= 0 {
			return fmt.Errorf("profile %s: cluster %d has negative centroid dimension", p.Name, i)
		}
		if c.Label == "" {
			return fmt.Errorf("profile %s: cluster %d unlabeled", p.Name, i)
		}
		sum += c.Count
	}
	if sum != p.TotalJobs {
		return fmt.Errorf("profile %s: cluster populations sum to %d, Table 1 says %d", p.Name, sum, p.TotalJobs)
	}
	if p.HasNames != (len(p.Names) > 0) {
		return fmt.Errorf("profile %s: HasNames inconsistent with name table", p.Name)
	}
	var nameW float64
	for _, n := range p.Names {
		if n.Weight < 0 || n.Word == "" {
			return fmt.Errorf("profile %s: bad name entry %+v", p.Name, n)
		}
		nameW += n.Weight
	}
	if p.HasNames && (nameW < 0.99 || nameW > 1.01) {
		return fmt.Errorf("profile %s: name weights sum to %v, want ~1", p.Name, nameW)
	}
	if p.ZipfAlpha <= 0 || p.FileRecencyAlpha < 0 {
		return fmt.Errorf("profile %s: bad popularity exponents", p.Name)
	}
	if p.ReuseInputProb < 0 || p.ReuseOutputProb < 0 || p.ReuseInputProb+p.ReuseOutputProb > 0.95 {
		return fmt.Errorf("profile %s: bad reuse probabilities", p.Name)
	}
	if p.SizeSigma < 0 || p.TimeSigma < 0 || p.NoiseSigma < 0 {
		return fmt.Errorf("profile %s: negative sigma", p.Name)
	}
	if p.DiurnalAmplitude < 0 || p.DiurnalAmplitude > 1 {
		return fmt.Errorf("profile %s: diurnal amplitude out of [0,1]", p.Name)
	}
	return nil
}
