package profile

import (
	"testing"
	"time"

	"repro/internal/units"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestTable1JobCounts(t *testing.T) {
	// Cluster populations must sum exactly to Table 1 job counts.
	want := map[string]int{
		"CC-a": 5759, "CC-b": 22974, "CC-c": 21030, "CC-d": 13283,
		"CC-e": 10790, "FB-2009": 1129193, "FB-2010": 1169184,
	}
	total := 0
	for _, p := range All() {
		if w, ok := want[p.Name]; !ok || p.TotalJobs != w {
			t.Errorf("%s: TotalJobs = %d, want %d", p.Name, p.TotalJobs, w)
		}
		sum := 0
		for _, c := range p.Clusters {
			sum += c.Count
		}
		if sum != p.TotalJobs {
			t.Errorf("%s: cluster sum %d != TotalJobs %d", p.Name, sum, p.TotalJobs)
		}
		total += p.TotalJobs
	}
	if total != 2372213 { // Table 1 total
		t.Errorf("grand total jobs = %d, want 2372213", total)
	}
}

func TestTable1BytesMoved(t *testing.T) {
	want := map[string]units.Bytes{
		"CC-a": 80 * units.TB, "CC-b": 600 * units.TB, "CC-c": 18 * units.PB,
		"CC-d": 8 * units.PB, "CC-e": 590 * units.TB,
		"FB-2009": units.Bytes(9.4e15), "FB-2010": units.Bytes(1.5e18),
	}
	for _, p := range All() {
		if p.BytesMoved != want[p.Name] {
			t.Errorf("%s: BytesMoved = %v, want %v", p.Name, p.BytesMoved, want[p.Name])
		}
	}
}

func TestSmallJobsDominate(t *testing.T) {
	// §6.2: "jobs touching <10GB of total data make up >92% of all jobs";
	// the first cluster of every workload is the small-jobs type and forms
	// over 90% of jobs.
	for _, p := range All() {
		if p.Clusters[0].Label != "Small jobs" {
			t.Errorf("%s: first cluster is %q, want Small jobs", p.Name, p.Clusters[0].Label)
		}
		if f := p.SmallJobFraction(); f < 0.90 {
			t.Errorf("%s: small job fraction %v < 0.90", p.Name, f)
		}
	}
}

func TestMapOnlyClustersExist(t *testing.T) {
	// §6.2: "map-only jobs appear in all but two workloads". In Table 2,
	// CC-c and CC-d are the two without map-only clusters.
	noMapOnly := map[string]bool{"CC-c": true, "CC-d": true}
	for _, p := range All() {
		found := false
		for _, c := range p.Clusters {
			if c.MapOnly() && c.Label != "Small jobs" {
				found = true
			}
		}
		if noMapOnly[p.Name] && found {
			t.Errorf("%s: unexpectedly has a non-small map-only cluster", p.Name)
		}
		if !noMapOnly[p.Name] && !found {
			// Small-jobs clusters of CC-a, CC-b, CC-e, FB-2009 are map-only
			// too; check for any map-only cluster at all.
			anyMapOnly := false
			for _, c := range p.Clusters {
				if c.MapOnly() {
					anyMapOnly = true
				}
			}
			if !anyMapOnly {
				t.Errorf("%s: expected a map-only cluster", p.Name)
			}
		}
	}
}

func TestJobRatePerHour(t *testing.T) {
	// Sanity: implied rates match Figure 7's submission-rate axes.
	rates := map[string][2]float64{ // [min, max] plausible range
		"CC-a":    {5, 12},
		"CC-b":    {80, 130},
		"CC-c":    {20, 40},
		"CC-d":    {5, 12},
		"CC-e":    {35, 65},
		"FB-2009": {200, 320},
		"FB-2010": {900, 1300},
	}
	for _, p := range All() {
		r := p.JobRatePerHour()
		bounds := rates[p.Name]
		if r < bounds[0] || r > bounds[1] {
			t.Errorf("%s: rate %.1f jobs/hr outside [%v, %v]", p.Name, r, bounds[0], bounds[1])
		}
	}
}

func TestFieldAvailabilityMatchesPaper(t *testing.T) {
	// §4.2: FB-2009 and CC-a lack paths; FB-2010 has input paths only.
	// Fig 10: FB-2010 lacks names.
	cases := map[string][3]bool{ // name -> {HasNames, HasInputPaths, HasOutputPaths}
		"CC-a":    {true, false, false},
		"CC-b":    {true, true, true},
		"CC-c":    {true, true, true},
		"CC-d":    {true, true, true},
		"CC-e":    {true, true, true},
		"FB-2009": {true, false, false},
		"FB-2010": {false, true, false},
	}
	for _, p := range All() {
		want := cases[p.Name]
		if p.HasNames != want[0] || p.HasInputPaths != want[1] || p.HasOutputPaths != want[2] {
			t.Errorf("%s: field availability = (%v,%v,%v), want (%v,%v,%v)", p.Name,
				p.HasNames, p.HasInputPaths, p.HasOutputPaths, want[0], want[1], want[2])
		}
	}
}

func TestZipfAlphaIsFiveSixths(t *testing.T) {
	for _, p := range All() {
		if p.ZipfAlpha < 0.83 || p.ZipfAlpha > 0.84 {
			t.Errorf("%s: ZipfAlpha = %v, want 5/6", p.Name, p.ZipfAlpha)
		}
	}
}

func TestCentroidBytesBelowTable1(t *testing.T) {
	// Centroid-population products under-count Table 1 bytes (k-means
	// centers sit below heavy-tailed means); SizeSigma compensates. Check
	// the ordering holds so the calibration direction is right.
	for _, p := range All() {
		cb := p.CentroidBytes()
		if cb <= 0 {
			t.Errorf("%s: non-positive centroid bytes", p.Name)
		}
		if cb > p.BytesMoved {
			t.Errorf("%s: centroid bytes %v exceed Table 1 %v", p.Name, cb, p.BytesMoved)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("FB-2009")
	if err != nil || p.Name != "FB-2009" {
		t.Errorf("ByName(FB-2009) = %v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestNamesOrder(t *testing.T) {
	want := []string{"CC-a", "CC-b", "CC-c", "CC-d", "CC-e", "FB-2009", "FB-2010"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Profile { p, _ := ByName("CC-b"); return p }
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"no name", func(p *Profile) { p.Name = "" }},
		{"zero machines", func(p *Profile) { p.Machines = 0 }},
		{"zero slots", func(p *Profile) { p.SlotsPerMachine = 0 }},
		{"zero length", func(p *Profile) { p.TraceLength = 0 }},
		{"no clusters", func(p *Profile) { p.Clusters = nil }},
		{"bad cluster count", func(p *Profile) { p.Clusters[0].Count = 0 }},
		{"bad centroid", func(p *Profile) { p.Clusters[0].Input = -1 }},
		{"zero duration cluster", func(p *Profile) { p.Clusters[0].Duration = 0 }},
		{"unlabeled", func(p *Profile) { p.Clusters[0].Label = "" }},
		{"population mismatch", func(p *Profile) { p.TotalJobs++ }},
		{"names flag mismatch", func(p *Profile) { p.HasNames = false }},
		{"name weights", func(p *Profile) { p.Names[0].Weight += 0.5 }},
		{"bad zipf", func(p *Profile) { p.ZipfAlpha = 0 }},
		{"bad reuse", func(p *Profile) { p.ReuseInputProb = 0.9; p.ReuseOutputProb = 0.4 }},
		{"negative sigma", func(p *Profile) { p.SizeSigma = -1 }},
		{"bad diurnal", func(p *Profile) { p.DiurnalAmplitude = 1.5 }},
	}
	for _, c := range cases {
		p := fresh()
		c.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: corruption not caught", c.name)
		}
	}
}

func TestTraceLengths(t *testing.T) {
	want := map[string]time.Duration{
		"CC-a":    30 * 24 * time.Hour,
		"CC-b":    9 * 24 * time.Hour,
		"CC-c":    30 * 24 * time.Hour,
		"CC-d":    66 * 24 * time.Hour,
		"CC-e":    9 * 24 * time.Hour,
		"FB-2009": 182 * 24 * time.Hour,
		"FB-2010": 45 * 24 * time.Hour,
	}
	for _, p := range All() {
		if p.TraceLength != want[p.Name] {
			t.Errorf("%s: length %v, want %v", p.Name, p.TraceLength, want[p.Name])
		}
	}
}
