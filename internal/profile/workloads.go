package profile

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/units"
)

// This file transcribes the paper's published calibration data. Table 1
// gives per-workload machines / length / jobs / bytes; Table 2 gives the
// k-means job-type clusters (population, centroid, label). Name mixtures
// approximate Figure 10's per-workload first-word breakdowns. Arrival and
// file-access parameters are set so the generated traces land in the
// ranges §4–§5 report (Zipf slope ≈ 5/6, re-access fractions up to ~78%,
// peak-to-median task-time ratios between ~9:1 and ~260:1).

const (
	minute = time.Minute
	hour   = time.Hour
	day    = 24 * time.Hour
)

func ts(v float64) units.TaskSeconds { return units.TaskSeconds(v) }

// ccA is the "CC-a" workload: <100 machines, 1 month, 5759 jobs, 80 TB.
func ccA() *Profile {
	return &Profile{
		Name:            "CC-a",
		Machines:        80,
		SlotsPerMachine: 8,
		TraceStart:      time.Date(2011, 4, 1, 0, 0, 0, 0, time.UTC),
		TraceLength:     30 * day,
		TotalJobs:       5759,
		BytesMoved:      80 * units.TB,
		Clusters: []JobCluster{
			{Count: 5525, Input: 51 * units.MB, Shuffle: 0, Output: units.Bytes(3.9e6), Duration: 39 * time.Second, MapTime: ts(33), Reduce: 0, Label: "Small jobs"},
			{Count: 194, Input: 14 * units.GB, Shuffle: 12 * units.GB, Output: 10 * units.GB, Duration: 35 * minute, MapTime: ts(65100), Reduce: ts(15410), Label: "Transform"},
			{Count: 31, Input: units.Bytes(1.2e12), Shuffle: 0, Output: 27 * units.GB, Duration: 2*hour + 30*minute, MapTime: ts(437615), Reduce: 0, Label: "Map only, huge"},
			{Count: 9, Input: 273 * units.GB, Shuffle: 185 * units.GB, Output: 21 * units.MB, Duration: 4*hour + 30*minute, MapTime: ts(191351), Reduce: ts(831181), Label: "Transform and aggregate"},
		},
		Names: []NameEntry{
			{Word: "oozie", Framework: FrameworkOozie, Weight: 0.29, LargeBias: 1},
			{Word: "insert", Framework: FrameworkHive, Weight: 0.25, LargeBias: 6},
			{Word: "select", Framework: FrameworkHive, Weight: 0.22, LargeBias: 0.3},
			{Word: "twitch", Framework: FrameworkNative, Weight: 0.08, LargeBias: 1},
			{Word: "metrodataextractor", Framework: FrameworkNative, Weight: 0.05, LargeBias: 8},
			{Word: "snapshot", Framework: FrameworkNative, Weight: 0.05, LargeBias: 2},
			{Word: "hourly", Framework: FrameworkNative, Weight: 0.04, LargeBias: 1},
			{Word: "importjob", Framework: FrameworkNative, Weight: 0.02, LargeBias: 4},
		},
		HasNames:       true,
		HasInputPaths:  false, // §4.2: CC-a has no path names
		HasOutputPaths: false,
		SizeSigma:      1.0,
		TimeSigma:      0.8,
		// Tiny cluster, few jobs/hour: extremely bursty (top of the 9:1 ..
		// 260:1 range comes from the small CC deployments).
		DiurnalAmplitude: 0.25,
		NoiseSigma:       0.8,
		SpikeProb:        0.01,
		SpikeAlpha:       1.1,
		ZipfAlpha:        5.0 / 6.0,
		ReuseInputProb:   0.20,
		ReuseOutputProb:  0.10,
		FileRecencyAlpha: 0.9,
	}
}

// ccB is "CC-b": 300 machines, 9 days, 22974 jobs, 600 TB.
func ccB() *Profile {
	return &Profile{
		Name:            "CC-b",
		Machines:        300,
		SlotsPerMachine: 8,
		TraceStart:      time.Date(2011, 5, 3, 0, 0, 0, 0, time.UTC),
		TraceLength:     9 * day,
		TotalJobs:       22974,
		BytesMoved:      600 * units.TB,
		Clusters: []JobCluster{
			{Count: 21210, Input: units.Bytes(4.6e3), Shuffle: 0, Output: units.Bytes(4.7e3), Duration: 23 * time.Second, MapTime: ts(11), Reduce: 0, Label: "Small jobs"},
			{Count: 1565, Input: 41 * units.GB, Shuffle: 10 * units.GB, Output: units.Bytes(2.1e9), Duration: 4 * minute, MapTime: ts(15837), Reduce: ts(12392), Label: "Transform, small"},
			{Count: 165, Input: 123 * units.GB, Shuffle: 43 * units.GB, Output: 13 * units.GB, Duration: 6 * minute, MapTime: ts(36265), Reduce: ts(31389), Label: "Transform, medium"},
			{Count: 31, Input: units.Bytes(4.7e12), Shuffle: 374 * units.MB, Output: 24 * units.MB, Duration: 9 * minute, MapTime: ts(876786), Reduce: ts(705), Label: "Aggregate and transform"},
			{Count: 3, Input: 600 * units.GB, Shuffle: units.Bytes(1.6e9), Output: 550 * units.MB, Duration: 6*hour + 45*minute, MapTime: ts(3092977), Reduce: ts(230976), Label: "Aggregate"},
		},
		Names: []NameEntry{
			{Word: "piglatin", Framework: FrameworkPig, Weight: 0.38, LargeBias: 2},
			{Word: "insert", Framework: FrameworkHive, Weight: 0.24, LargeBias: 5},
			{Word: "select", Framework: FrameworkHive, Weight: 0.14, LargeBias: 0.3},
			{Word: "flow", Framework: FrameworkOozie, Weight: 0.10, LargeBias: 1},
			{Word: "tr", Framework: FrameworkNative, Weight: 0.06, LargeBias: 6},
			{Word: "distcp", Framework: FrameworkNative, Weight: 0.03, LargeBias: 8},
			{Word: "bmdailyjob", Framework: FrameworkNative, Weight: 0.03, LargeBias: 3},
			{Word: "stage", Framework: FrameworkNative, Weight: 0.02, LargeBias: 2},
		},
		HasNames:         true,
		HasInputPaths:    true,
		HasOutputPaths:   true,
		SizeSigma:        1.25,
		TimeSigma:        0.9,
		DiurnalAmplitude: 0.35,
		NoiseSigma:       0.8,
		SpikeProb:        0.015,
		SpikeAlpha:       1.3,
		ZipfAlpha:        5.0 / 6.0,
		ReuseInputProb:   0.15,
		ReuseOutputProb:  0.10,
		FileRecencyAlpha: 0.9,
	}
}

// ccC is "CC-c": 700 machines, 1 month, 21030 jobs, 18 PB.
func ccC() *Profile {
	return &Profile{
		Name:            "CC-c",
		Machines:        700,
		SlotsPerMachine: 10,
		TraceStart:      time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC),
		TraceLength:     30 * day,
		TotalJobs:       21030,
		BytesMoved:      18 * units.PB,
		Clusters: []JobCluster{
			{Count: 19975, Input: units.Bytes(5.7e9), Shuffle: 3 * units.GB, Output: 200 * units.MB, Duration: 4 * minute, MapTime: ts(10933), Reduce: ts(6586), Label: "Small jobs"},
			{Count: 477, Input: 1 * units.TB, Shuffle: units.Bytes(4.2e12), Output: 920 * units.GB, Duration: 47 * minute, MapTime: ts(1927432), Reduce: ts(462070), Label: "Transform, light reduce"},
			{Count: 246, Input: 887 * units.GB, Shuffle: 57 * units.GB, Output: 22 * units.MB, Duration: 4*hour + 14*minute, MapTime: ts(569391), Reduce: ts(158930), Label: "Aggregate"},
			{Count: 197, Input: units.Bytes(1.1e12), Shuffle: units.Bytes(3.7e12), Output: units.Bytes(3.7e12), Duration: 53 * minute, MapTime: ts(1895403), Reduce: ts(886347), Label: "Transform, heavy reduce"},
			{Count: 105, Input: 32 * units.GB, Shuffle: 37 * units.GB, Output: units.Bytes(2.4e9), Duration: 2*hour + 11*minute, MapTime: ts(14865972), Reduce: ts(369846), Label: "Aggregate, large"},
			{Count: 23, Input: units.Bytes(3.7e12), Shuffle: 562 * units.GB, Output: 37 * units.GB, Duration: 17 * hour, MapTime: ts(9779062), Reduce: ts(14989871), Label: "Long jobs"},
			{Count: 7, Input: 220 * units.TB, Shuffle: 18 * units.GB, Output: units.Bytes(2.8e9), Duration: 5*hour + 15*minute, MapTime: ts(66839710), Reduce: ts(758957), Label: "Aggregate, huge"},
		},
		Names: []NameEntry{
			{Word: "select", Framework: FrameworkHive, Weight: 0.42, LargeBias: 0.4},
			{Word: "insert", Framework: FrameworkHive, Weight: 0.18, LargeBias: 5},
			{Word: "oozie", Framework: FrameworkOozie, Weight: 0.12, LargeBias: 1},
			{Word: "edwsequence", Framework: FrameworkNative, Weight: 0.10, LargeBias: 2},
			{Word: "etl", Framework: FrameworkNative, Weight: 0.07, LargeBias: 6},
			{Word: "columnset", Framework: FrameworkNative, Weight: 0.05, LargeBias: 4},
			{Word: "semi", Framework: FrameworkNative, Weight: 0.03, LargeBias: 2},
			{Word: "parallel", Framework: FrameworkNative, Weight: 0.03, LargeBias: 3},
		},
		HasNames:         true,
		HasInputPaths:    true,
		HasOutputPaths:   true,
		SizeSigma:        1.35,
		TimeSigma:        1.0,
		DiurnalAmplitude: 0.3,
		NoiseSigma:       0.7,
		SpikeProb:        0.01,
		SpikeAlpha:       1.4,
		ZipfAlpha:        5.0 / 6.0,
		ReuseInputProb:   0.45,
		ReuseOutputProb:  0.30,
		FileRecencyAlpha: 1.0,
	}
}

// ccD is "CC-d": 400-500 machines (450), 2+ months, 13283 jobs, 8 PB.
func ccD() *Profile {
	return &Profile{
		Name:            "CC-d",
		Machines:        450,
		SlotsPerMachine: 10,
		TraceStart:      time.Date(2011, 7, 1, 0, 0, 0, 0, time.UTC),
		TraceLength:     66 * day,
		TotalJobs:       13283,
		BytesMoved:      8 * units.PB,
		Clusters: []JobCluster{
			{Count: 12736, Input: units.Bytes(3.1e9), Shuffle: 753 * units.MB, Output: 231 * units.MB, Duration: 67 * time.Second, MapTime: ts(7376), Reduce: ts(5085), Label: "Small jobs"},
			{Count: 214, Input: 633 * units.GB, Shuffle: units.Bytes(2.9e12), Output: 332 * units.GB, Duration: 11 * minute, MapTime: ts(544433), Reduce: ts(352692), Label: "Expand and aggregate"},
			{Count: 162, Input: units.Bytes(5.3e9), Shuffle: units.Bytes(6.1e12), Output: 33 * units.GB, Duration: 23 * minute, MapTime: ts(2011911), Reduce: ts(910673), Label: "Transform and aggregate"},
			{Count: 128, Input: 1 * units.TB, Shuffle: units.Bytes(6.2e12), Output: units.Bytes(6.7e12), Duration: 20 * minute, MapTime: ts(847286), Reduce: ts(900395), Label: "Expand and transform"},
			{Count: 43, Input: 17 * units.GB, Shuffle: 4 * units.GB, Output: units.Bytes(1.7e9), Duration: 36 * minute, MapTime: ts(6259747), Reduce: ts(7067), Label: "Aggregate"},
		},
		Names: []NameEntry{
			{Word: "insert", Framework: FrameworkHive, Weight: 0.30, LargeBias: 4},
			{Word: "piglatin", Framework: FrameworkPig, Weight: 0.22, LargeBias: 2},
			{Word: "select", Framework: FrameworkHive, Weight: 0.16, LargeBias: 0.3},
			{Word: "sywr", Framework: FrameworkNative, Weight: 0.09, LargeBias: 1},
			{Word: "edw", Framework: FrameworkNative, Weight: 0.08, LargeBias: 5},
			{Word: "tr", Framework: FrameworkNative, Weight: 0.06, LargeBias: 4},
			{Word: "snapshot", Framework: FrameworkNative, Weight: 0.05, LargeBias: 2},
			{Word: "iteminquiry", Framework: FrameworkNative, Weight: 0.04, LargeBias: 0.5},
		},
		HasNames:         true,
		HasInputPaths:    true,
		HasOutputPaths:   true,
		SizeSigma:        1.25,
		TimeSigma:        0.9,
		DiurnalAmplitude: 0.3,
		NoiseSigma:       0.9,
		SpikeProb:        0.015,
		SpikeAlpha:       1.2,
		ZipfAlpha:        5.0 / 6.0,
		ReuseInputProb:   0.40,
		ReuseOutputProb:  0.35,
		FileRecencyAlpha: 1.0,
	}
}

// ccE is "CC-e": 100 machines, 9 days, 10790 jobs, 590 TB.
func ccE() *Profile {
	return &Profile{
		Name:            "CC-e",
		Machines:        100,
		SlotsPerMachine: 8,
		TraceStart:      time.Date(2011, 8, 2, 0, 0, 0, 0, time.UTC),
		TraceLength:     9 * day,
		TotalJobs:       10790,
		BytesMoved:      590 * units.TB,
		Clusters: []JobCluster{
			{Count: 10243, Input: units.Bytes(8.1e6), Shuffle: 0, Output: 970 * units.KB, Duration: 18 * time.Second, MapTime: ts(15), Reduce: 0, Label: "Small jobs"},
			{Count: 452, Input: 166 * units.GB, Shuffle: 180 * units.GB, Output: 118 * units.GB, Duration: 31 * minute, MapTime: ts(35606), Reduce: ts(38194), Label: "Transform, large"},
			{Count: 68, Input: 543 * units.GB, Shuffle: 502 * units.GB, Output: 166 * units.GB, Duration: 2 * hour, MapTime: ts(115077), Reduce: ts(108745), Label: "Transform, very large"},
			{Count: 20, Input: 3 * units.TB, Shuffle: 0, Output: 200, Duration: 5 * minute, MapTime: ts(137077), Reduce: 0, Label: "Map only summary"},
			{Count: 7, Input: units.Bytes(6.7e12), Shuffle: units.Bytes(2.3e9), Output: units.Bytes(6.7e12), Duration: 3*hour + 47*minute, MapTime: ts(335807), Reduce: 0, Label: "Map only transform"},
		},
		Names: []NameEntry{
			{Word: "select", Framework: FrameworkHive, Weight: 0.36, LargeBias: 0.4},
			{Word: "insert", Framework: FrameworkHive, Weight: 0.21, LargeBias: 5},
			{Word: "piglatin", Framework: FrameworkPig, Weight: 0.15, LargeBias: 2},
			{Word: "edw", Framework: FrameworkNative, Weight: 0.08, LargeBias: 4},
			{Word: "search", Framework: FrameworkNative, Weight: 0.07, LargeBias: 0.5},
			{Word: "item", Framework: FrameworkNative, Weight: 0.05, LargeBias: 0.5},
			{Word: "esb", Framework: FrameworkNative, Weight: 0.04, LargeBias: 1},
			{Word: "si", Framework: FrameworkNative, Weight: 0.04, LargeBias: 2},
		},
		HasNames:         true,
		HasInputPaths:    true,
		HasOutputPaths:   true,
		SizeSigma:        0.85,
		TimeSigma:        0.8,
		DiurnalAmplitude: 0.45, // CC-e's utilization shows a visible diurnal (Fig 7)
		NoiseSigma:       0.75,
		SpikeProb:        0.02,
		SpikeAlpha:       1.3,
		ZipfAlpha:        5.0 / 6.0,
		ReuseInputProb:   0.50,
		ReuseOutputProb:  0.25,
		FileRecencyAlpha: 1.1,
	}
}

// fb2009 is "FB-2009": 600 machines, 6 months, 1129193 jobs, 9.4 PB.
func fb2009() *Profile {
	return &Profile{
		Name:            "FB-2009",
		Machines:        600,
		SlotsPerMachine: 8,
		TraceStart:      time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC),
		TraceLength:     182 * day,
		TotalJobs:       1129193,
		BytesMoved:      units.Bytes(9.4e15),
		Clusters: []JobCluster{
			{Count: 1081918, Input: 21 * units.KB, Shuffle: 0, Output: 871 * units.KB, Duration: 32 * time.Second, MapTime: ts(20), Reduce: 0, Label: "Small jobs"},
			{Count: 37038, Input: 381 * units.KB, Shuffle: 0, Output: units.Bytes(1.9e9), Duration: 21 * minute, MapTime: ts(6079), Reduce: 0, Label: "Load data, fast"},
			{Count: 2070, Input: 10 * units.KB, Shuffle: 0, Output: units.Bytes(4.2e9), Duration: 1*hour + 50*minute, MapTime: ts(26321), Reduce: 0, Label: "Load data, slow"},
			{Count: 602, Input: 405 * units.KB, Shuffle: 0, Output: 447 * units.GB, Duration: 1*hour + 10*minute, MapTime: ts(66657), Reduce: 0, Label: "Load data, large"},
			{Count: 180, Input: 446 * units.KB, Shuffle: 0, Output: units.Bytes(1.1e12), Duration: 5*hour + 5*minute, MapTime: ts(125662), Reduce: 0, Label: "Load data, huge"},
			{Count: 6035, Input: 230 * units.GB, Shuffle: units.Bytes(8.8e9), Output: 491 * units.MB, Duration: 15 * minute, MapTime: ts(104338), Reduce: ts(66760), Label: "Aggregate, fast"},
			{Count: 379, Input: units.Bytes(1.9e12), Shuffle: 502 * units.MB, Output: units.Bytes(2.6e9), Duration: 30 * minute, MapTime: ts(348942), Reduce: ts(76736), Label: "Aggregate and expand"},
			{Count: 159, Input: 418 * units.GB, Shuffle: units.Bytes(2.5e12), Output: 45 * units.GB, Duration: 1*hour + 25*minute, MapTime: ts(1076089), Reduce: ts(974395), Label: "Expand and aggregate"},
			{Count: 793, Input: 255 * units.GB, Shuffle: 788 * units.GB, Output: units.Bytes(1.6e9), Duration: 35 * minute, MapTime: ts(384562), Reduce: ts(338050), Label: "Data transform"},
			{Count: 19, Input: units.Bytes(7.6e12), Shuffle: 51 * units.GB, Output: 104 * units.KB, Duration: 55 * minute, MapTime: ts(4843452), Reduce: ts(853911), Label: "Data summary"},
		},
		Names: []NameEntry{
			// Fig 10: 44% of FB-2009 jobs begin with "ad", 12% with
			// "insert"; "from" carries 27% of I/O and 34% of task-time.
			{Word: "ad", Framework: FrameworkNative, Weight: 0.44, LargeBias: 0.1},
			{Word: "insert", Framework: FrameworkHive, Weight: 0.12, LargeBias: 4},
			{Word: "from", Framework: FrameworkHive, Weight: 0.10, LargeBias: 5},
			{Word: "select", Framework: FrameworkHive, Weight: 0.15, LargeBias: 0.2},
			{Word: "queryresult", Framework: FrameworkNative, Weight: 0.07, LargeBias: 0.5},
			{Word: "ajax", Framework: FrameworkNative, Weight: 0.05, LargeBias: 0.3},
			{Word: "etl", Framework: FrameworkNative, Weight: 0.04, LargeBias: 5},
			{Word: "piglatin", Framework: FrameworkPig, Weight: 0.03, LargeBias: 2},
		},
		HasNames:         true,
		HasInputPaths:    false, // §4.2: FB-2009 has no path names
		HasOutputPaths:   false,
		SizeSigma:        1.3,
		TimeSigma:        1.0,
		DiurnalAmplitude: 0.35,
		NoiseSigma:       0.85,
		SpikeProb:        0.012,
		SpikeAlpha:       1.25,
		ZipfAlpha:        5.0 / 6.0,
		ReuseInputProb:   0.25,
		ReuseOutputProb:  0.15,
		FileRecencyAlpha: 1.0,
	}
}

// fb2010 is "FB-2010": 3000 machines, 45 days, 1169184 jobs, 1.5 EB.
func fb2010() *Profile {
	return &Profile{
		Name:            "FB-2010",
		Machines:        3000,
		SlotsPerMachine: 12,
		TraceStart:      time.Date(2010, 10, 4, 0, 0, 0, 0, time.UTC),
		TraceLength:     45 * day,
		TotalJobs:       1169184,
		BytesMoved:      units.Bytes(1.5e18),
		Clusters: []JobCluster{
			{Count: 1145663, Input: units.Bytes(6.9e6), Shuffle: 600, Output: 60 * units.KB, Duration: 1 * minute, MapTime: ts(48), Reduce: ts(34), Label: "Small jobs"},
			{Count: 7911, Input: 50 * units.GB, Shuffle: 0, Output: 61 * units.GB, Duration: 8 * hour, MapTime: ts(60664), Reduce: 0, Label: "Map only transform, 8 hrs"},
			{Count: 779, Input: units.Bytes(3.6e12), Shuffle: 0, Output: units.Bytes(4.4e12), Duration: 45 * minute, MapTime: ts(3081710), Reduce: 0, Label: "Map only transform, 45 min"},
			{Count: 670, Input: units.Bytes(2.1e12), Shuffle: 0, Output: units.Bytes(2.7e9), Duration: 1*hour + 20*minute, MapTime: ts(9457592), Reduce: 0, Label: "Map only aggregate"},
			{Count: 104, Input: 35 * units.GB, Shuffle: 0, Output: units.Bytes(3.5e9), Duration: 72 * hour, MapTime: ts(198436), Reduce: 0, Label: "Map only transform, 3 days"},
			{Count: 11491, Input: units.Bytes(1.5e12), Shuffle: 30 * units.GB, Output: units.Bytes(2.2e9), Duration: 30 * minute, MapTime: ts(1112765), Reduce: ts(387191), Label: "Aggregate"},
			{Count: 1876, Input: 711 * units.GB, Shuffle: units.Bytes(2.6e12), Output: 860 * units.GB, Duration: 2 * hour, MapTime: ts(1618792), Reduce: ts(2056439), Label: "Transform, 2 hrs"},
			{Count: 454, Input: 9 * units.TB, Shuffle: units.Bytes(1.5e12), Output: units.Bytes(1.2e12), Duration: 1 * hour, MapTime: ts(1795682), Reduce: ts(818344), Label: "Aggregate and transform"},
			{Count: 169, Input: units.Bytes(2.7e12), Shuffle: 12 * units.TB, Output: 260 * units.GB, Duration: 2*hour + 7*minute, MapTime: ts(2862726), Reduce: ts(3091678), Label: "Expand and aggregate"},
			{Count: 67, Input: 630 * units.GB, Shuffle: units.Bytes(1.2e12), Output: 140 * units.GB, Duration: 18 * hour, MapTime: ts(1545220), Reduce: ts(18144174), Label: "Transform, 18 hrs"},
		},
		Names:          nil, // Fig 10 caption: the FB-2010 trace has no job names
		HasNames:       false,
		HasInputPaths:  true, // §4.2: input paths only
		HasOutputPaths: false,
		SizeSigma:      1.4,
		TimeSigma:      1.0,
		// The 2010 workload multiplexes many organizations: the paper
		// reports peak-to-median fell from 31:1 to 9:1 — least bursty of
		// the seven, with a visible diurnal in job submissions.
		DiurnalAmplitude: 0.5,
		NoiseSigma:       0.75,
		SpikeProb:        0.012,
		SpikeAlpha:       1.5,
		ZipfAlpha:        5.0 / 6.0,
		ReuseInputProb:   0.30,
		ReuseOutputProb:  0.0, // output paths absent, so no measurable output reuse
		FileRecencyAlpha: 1.0,
	}
}

// All returns the seven calibrated profiles in the paper's Table 1 order.
func All() []*Profile {
	return []*Profile{ccA(), ccB(), ccC(), ccD(), ccE(), fb2009(), fb2010()}
}

// Names lists the profile names in Table 1 order.
func Names() []string {
	ps := All()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// ByName returns the profile with the given name (case-sensitive, e.g.
// "FB-2009"), or an error listing valid names.
func ByName(name string) (*Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	valid := Names()
	sort.Strings(valid)
	return nil, fmt.Errorf("profile: unknown workload %q (valid: %v)", name, valid)
}
