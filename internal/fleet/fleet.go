// Package fleet is the peer-to-peer cluster layer that turns swimd into
// a sharded analytics service. It owns the three mechanics every
// distributed handler needs and nothing else:
//
//   - placement: a consistent-hash ring over the member node IDs
//     assigns each trace shard to an ordered list of owner nodes
//     (replication factor R), so every member computes identical
//     placement with no coordination;
//   - transport: one HTTP client per peer with request timeouts,
//     bounded retries with exponential backoff, and latency/failure
//     accounting;
//   - liveness: passive marking (any transport failure downs a peer,
//     any success revives it) plus an optional background prober, so
//     degraded peers are skipped first and /healthz can report the
//     cluster's health.
//
// The serving layer (internal/server) builds the actual protocol on
// top: shard ingest fan-out, scatter/gather report merging over binary
// partial snapshots, and the cluster-aware result cache. fleet stays
// ignorant of traces and partials on purpose — it moves bytes between
// named nodes and says who should own what.
package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Peer names one cluster member: a stable node ID and its base URL.
type Peer struct {
	ID  string
	URL string
}

// ParsePeers parses the swimd -peers flag syntax: a comma-separated
// list of id=url entries, e.g.
//
//	a=http://10.0.0.1:8080,b=http://10.0.0.2:8080,c=http://10.0.0.3:8080
//
// Every member lists the full cluster including itself, in any order;
// placement depends only on the set of IDs, so members agree as long as
// their lists name the same nodes.
func ParsePeers(s string) ([]Peer, error) {
	var peers []Peer
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("fleet: bad peer %q (want id=url)", part)
		}
		if strings.ContainsAny(id, "/ \t") {
			return nil, fmt.Errorf("fleet: bad peer id %q (no slashes or spaces)", id)
		}
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			return nil, fmt.Errorf("fleet: peer %s URL %q is not http(s)", id, url)
		}
		if seen[id] {
			return nil, fmt.Errorf("fleet: duplicate peer id %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("fleet: empty peer list")
	}
	return peers, nil
}

// Config assembles a Fleet.
type Config struct {
	// NodeID is this process's identity; it must appear in Peers.
	NodeID string
	// Peers is the full membership including self.
	Peers []Peer
	// Replication is how many owners each shard is placed on (clamped
	// to the cluster size; zero: DefaultReplication).
	Replication int
	// Shards is the default shard count for newly ingested cluster
	// traces (zero: one per member).
	Shards int
	// Timeout bounds one peer request attempt (zero: DefaultTimeout).
	Timeout time.Duration
	// Retries is the attempt budget per request (zero:
	// DefaultRetries; 1 = no retry).
	Retries int
	// Backoff is the first retry delay; it doubles per attempt (zero:
	// DefaultBackoff).
	Backoff time.Duration
	// ProbeInterval spaces the background liveness probes (zero:
	// DefaultProbeInterval; negative: probing disabled — liveness then
	// comes from passive marking only, which tests rely on).
	ProbeInterval time.Duration
}

// Defaults for the Config knobs.
const (
	DefaultReplication   = 2
	DefaultTimeout       = 10 * time.Second
	DefaultRetries       = 3
	DefaultBackoff       = 50 * time.Millisecond
	DefaultProbeInterval = 5 * time.Second
)

// Fleet is one node's view of the cluster: membership, placement, and
// a transport per remote peer. All methods are safe for concurrent use.
type Fleet struct {
	self        string
	peers       []Peer // sorted by ID for deterministic listings
	ring        *ring
	clients     map[string]*Client // remote peers only
	replication int
	shards      int

	monitor *monitor
	counters
}

// New validates the membership and assembles the node's fleet handle.
// Call Start to begin background probing and Close to stop it.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("fleet: empty peer list")
	}
	peers := append([]Peer(nil), cfg.Peers...)
	sort.Slice(peers, func(i, k int) bool { return peers[i].ID < peers[k].ID })
	ids := make([]string, len(peers))
	selfOK := false
	for i, p := range peers {
		ids[i] = p.ID
		if p.ID == cfg.NodeID {
			selfOK = true
		}
	}
	if !selfOK {
		return nil, fmt.Errorf("fleet: node id %q is not in the peer list %v", cfg.NodeID, ids)
	}
	replication := cfg.Replication
	if replication <= 0 {
		replication = DefaultReplication
	}
	if replication > len(peers) {
		replication = len(peers)
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = len(peers)
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	retries := cfg.Retries
	if retries <= 0 {
		retries = DefaultRetries
	}
	backoff := cfg.Backoff
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	f := &Fleet{
		self:        cfg.NodeID,
		peers:       peers,
		ring:        newRing(ids),
		clients:     make(map[string]*Client),
		replication: replication,
		shards:      shards,
	}
	for _, p := range peers {
		if p.ID == cfg.NodeID {
			continue
		}
		f.clients[p.ID] = newClient(p.ID, p.URL, timeout, retries, backoff)
	}
	interval := cfg.ProbeInterval
	if interval == 0 {
		interval = DefaultProbeInterval
	}
	if interval > 0 {
		f.monitor = newMonitor(f.clients, interval)
	}
	return f, nil
}

// Start launches the background liveness prober (a no-op when probing
// is disabled or already started).
func (f *Fleet) Start() {
	if f.monitor != nil {
		f.monitor.start()
	}
}

// Close stops the background prober. The fleet remains usable for
// requests (Close is about goroutine hygiene at shutdown).
func (f *Fleet) Close() {
	if f.monitor != nil {
		f.monitor.stop()
	}
}

// Self returns this node's ID.
func (f *Fleet) Self() string { return f.self }

// Members returns the full membership including self, sorted by ID.
func (f *Fleet) Members() []Peer { return append([]Peer(nil), f.peers...) }

// IsSelf reports whether id names this node.
func (f *Fleet) IsSelf(id string) bool { return id == f.self }

// Size returns the cluster membership count (including self).
func (f *Fleet) Size() int { return len(f.peers) }

// Replication returns the effective replication factor.
func (f *Fleet) Replication() int { return f.replication }

// Shards returns the default shard count for new cluster traces.
func (f *Fleet) Shards() int { return f.shards }

// Owners returns the n distinct nodes that own key, in ring order. The
// first owner is the key's home node. n is clamped to the cluster size.
func (f *Fleet) Owners(key string, n int) []string {
	return f.ring.owners(key, n)
}

// Home returns the key's first ring owner — the node that serializes
// writes for it.
func (f *Fleet) Home(key string) string { return f.ring.owners(key, 1)[0] }

// Client returns the transport for a remote peer, or nil for self and
// unknown IDs.
func (f *Fleet) Client(id string) *Client { return f.clients[id] }

// Alive reports the peer's last-known liveness. Self is always alive;
// unknown IDs are dead.
func (f *Fleet) Alive(id string) bool {
	if id == f.self {
		return true
	}
	c, ok := f.clients[id]
	return ok && c.Alive()
}

// Down lists the remote peers currently marked unreachable, sorted.
func (f *Fleet) Down() []string {
	var down []string
	for id, c := range f.clients {
		if !c.Alive() {
			down = append(down, id)
		}
	}
	sort.Strings(down)
	return down
}

// SortByLiveness orders node IDs so live ones come first, preserving
// the relative order within each class — the owner-preference order for
// shard fetches: replicas marked down are still tried, but last.
func (f *Fleet) SortByLiveness(ids []string) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if f.Alive(id) {
			out = append(out, id)
		}
	}
	for _, id := range ids {
		if !f.Alive(id) {
			out = append(out, id)
		}
	}
	return out
}

// PeerStats is one peer's transport and liveness counters.
type PeerStats struct {
	ID   string `json:"id"`
	URL  string `json:"url"`
	Self bool   `json:"self,omitempty"`
	// Alive is the last-known reachability (self is always alive).
	Alive bool `json:"alive"`
	// Requests / Retries / Failures count transport attempts to this
	// peer; LatencyMS is an exponentially weighted moving average over
	// successful requests.
	Requests  uint64  `json:"requests,omitempty"`
	Retries   uint64  `json:"retries,omitempty"`
	Failures  uint64  `json:"failures,omitempty"`
	LatencyMS float64 `json:"latency_ms,omitempty"`
}

// Stats is the fleet's cluster section of /v1/stats.
type Stats struct {
	NodeID      string      `json:"node_id"`
	Size        int         `json:"size"`
	Replication int         `json:"replication"`
	Shards      int         `json:"default_shards"`
	Peers       []PeerStats `json:"peers"`
	// Scatters counts scatter/gather reports coordinated by this node;
	// ShardFetches/ShardFailures count remote shard-partial requests;
	// Merges counts shard partials merged into coordinated reports;
	// Degraded counts reports served with missing shards;
	// RemoteCacheHits counts warm results served from a peer's cache;
	// MetaBroadcasts counts cluster-metadata pushes to peers.
	Scatters        uint64 `json:"scatters"`
	ShardFetches    uint64 `json:"shard_fetches"`
	ShardFailures   uint64 `json:"shard_failures"`
	Merges          uint64 `json:"merges"`
	Degraded        uint64 `json:"degraded"`
	RemoteCacheHits uint64 `json:"remote_cache_hits"`
	MetaBroadcasts  uint64 `json:"meta_broadcasts"`
}

// counters are the fleet-wide protocol counters, bumped by the serving
// layer as it coordinates cluster work.
type counters struct {
	scatters        atomic.Uint64
	shardFetches    atomic.Uint64
	shardFailures   atomic.Uint64
	merges          atomic.Uint64
	degraded        atomic.Uint64
	remoteCacheHits atomic.Uint64
	metaBroadcasts  atomic.Uint64
}

// AddScatter counts one coordinated scatter/gather report.
func (f *Fleet) AddScatter() { f.scatters.Add(1) }

// AddShardFetch counts one remote shard-partial request attempt chain.
func (f *Fleet) AddShardFetch() { f.shardFetches.Add(1) }

// AddShardFailure counts one shard-partial request that exhausted every
// replica.
func (f *Fleet) AddShardFailure() { f.shardFailures.Add(1) }

// AddMerges counts n shard partials merged into a coordinated report.
func (f *Fleet) AddMerges(n int) { f.merges.Add(uint64(n)) }

// AddDegraded counts one report served with missing shards.
func (f *Fleet) AddDegraded() { f.degraded.Add(1) }

// AddRemoteCacheHit counts one warm result served from a peer's cache.
func (f *Fleet) AddRemoteCacheHit() { f.remoteCacheHits.Add(1) }

// AddMetaBroadcast counts one cluster-metadata push to the peers.
func (f *Fleet) AddMetaBroadcast() { f.metaBroadcasts.Add(1) }

// Stats snapshots the fleet counters.
func (f *Fleet) Stats() Stats {
	st := Stats{
		NodeID:          f.self,
		Size:            len(f.peers),
		Replication:     f.replication,
		Shards:          f.shards,
		Scatters:        f.scatters.Load(),
		ShardFetches:    f.shardFetches.Load(),
		ShardFailures:   f.shardFailures.Load(),
		Merges:          f.merges.Load(),
		Degraded:        f.degraded.Load(),
		RemoteCacheHits: f.remoteCacheHits.Load(),
		MetaBroadcasts:  f.metaBroadcasts.Load(),
	}
	for _, p := range f.peers {
		ps := PeerStats{ID: p.ID, URL: p.URL}
		if p.ID == f.self {
			ps.Self, ps.Alive = true, true
		} else {
			c := f.clients[p.ID]
			ps.Alive = c.Alive()
			ps.Requests, ps.Retries, ps.Failures = c.counts()
			ps.LatencyMS = c.latencyMS()
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}
