package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Consistent-hash placement. Every member hashes the same node IDs onto
// the same 64-bit ring (truncated SHA-256 is stable across processes
// and architectures, unlike Go's randomized map/maphash seeds, and
// mixes well even on short keys), so any node can compute any key's
// owners locally and all nodes agree. Virtual
// nodes smooth the load: with vnodesPerNode points per member the
// largest/smallest ownership arc ratio stays close to 1 even for
// three-node clusters.
//
// Replica placement walks the ring clockwise from the key's point and
// collects the first n distinct node IDs — the standard
// Chord/Dynamo-style successor list, which keeps placement stable under
// membership change: adding a node moves only the arcs it claims.

// vnodesPerNode is the virtual-node count per member. 128 points keeps
// the per-node ownership spread within a few percent at the cluster
// sizes swimd targets while the sorted ring stays tiny (a 64-node
// cluster is 8192 points, one binary search per placement).
const vnodesPerNode = 128

// ring is an immutable consistent-hash ring over node IDs.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

// hash64 hashes a key to its ring position.
func hash64(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring for the given member IDs.
func newRing(ids []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(ids)*vnodesPerNode)}
	for _, id := range ids {
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", id, v)),
				id:   id,
			})
		}
	}
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].hash != r.points[k].hash {
			return r.points[i].hash < r.points[k].hash
		}
		// Ties (vanishingly rare) break by ID so every member still
		// sorts identically.
		return r.points[i].id < r.points[k].id
	})
	return r
}

// owners returns the first n distinct node IDs clockwise from key's
// ring position. n is clamped to the member count; the result order is
// the replica preference order (owners[0] is the home node).
func (r *ring) owners(key string, n int) []string {
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []string
	seen := make(map[string]bool)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}
