package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Client is the transport to one remote peer: a dedicated http.Client
// with a per-attempt timeout, a bounded retry loop with exponential
// backoff, and liveness/latency accounting. Request bodies are byte
// slices (cluster messages are small — shard batches, binary partial
// snapshots) so retries can resend without caller cooperation.
type Client struct {
	id      string
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration

	alive    atomic.Bool
	requests atomic.Uint64
	retried  atomic.Uint64
	failures atomic.Uint64
	// latEWMA holds math.Float64bits of the smoothed success latency in
	// milliseconds (0 = no sample yet).
	latEWMA atomic.Uint64
}

// Response is one peer call's outcome. Body is fully read and the
// connection returned to the pool before Do returns.
type Response struct {
	Status int
	Header http.Header
	Body   []byte
}

func newClient(id, base string, timeout time.Duration, retries int, backoff time.Duration) *Client {
	c := &Client{
		id:   id,
		base: base,
		hc: &http.Client{
			Timeout: timeout,
			// Each peer gets its own transport so one slow peer cannot
			// exhaust a shared connection pool.
			Transport: &http.Transport{MaxIdleConnsPerHost: 8, IdleConnTimeout: 30 * time.Second},
		},
		retries: retries,
		backoff: backoff,
	}
	c.alive.Store(true)
	return c
}

// ID returns the peer's node ID.
func (c *Client) ID() string { return c.id }

// URL returns the peer's base URL.
func (c *Client) URL() string { return c.base }

// Alive returns the last-known reachability.
func (c *Client) Alive() bool { return c.alive.Load() }

// MarkDown / MarkUp set liveness out of band (the prober uses these;
// Do maintains them passively).
func (c *Client) MarkDown() { c.alive.Store(false) }
func (c *Client) MarkUp()   { c.alive.Store(true) }

// retryStatus reports whether a status code is worth another attempt:
// upstream transient failures, not deterministic 4xx/5xx outcomes.
func retryStatus(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Do sends one request to the peer, retrying transport errors and
// transient statuses up to the attempt budget with doubling backoff.
// Any response with a non-transient status counts as transport success
// (the peer is up; the answer is the answer). A nil error always
// carries a complete Response.
func (c *Client) Do(ctx context.Context, method, path string, query url.Values, contentType string, body []byte) (*Response, error) {
	var hdr http.Header
	if contentType != "" {
		hdr = http.Header{"Content-Type": []string{contentType}}
	}
	return c.DoHeaders(ctx, method, path, query, hdr, body)
}

// DoHeaders is Do with arbitrary extra request headers (nil for none),
// for protocol markers like forwarding-loop guards.
func (c *Client) DoHeaders(ctx context.Context, method, path string, query url.Values, hdr http.Header, body []byte) (*Response, error) {
	c.requests.Add(1)
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var lastErr error
	delay := c.backoff
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			c.retried.Add(1)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				c.failures.Add(1)
				c.alive.Store(false)
				return nil, ctx.Err()
			}
			delay *= 2
		}
		req, err := http.NewRequestWithContext(ctx, method, u, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("fleet: building %s %s: %w", method, u, err)
		}
		for k, vs := range hdr {
			req.Header[k] = vs
		}
		// Propagate the originating request's trace ID so one report's
		// scatter/gather and append relays share an X-Request-Id across
		// the cluster.
		if id := obs.RequestIDFromContext(ctx); id != "" && req.Header.Get("X-Request-Id") == "" {
			req.Header.Set("X-Request-Id", id)
		}
		start := time.Now()
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("reading response: %w", err)
			continue
		}
		if retryStatus(resp.StatusCode) && attempt < c.retries-1 {
			lastErr = fmt.Errorf("peer %s: transient status %d", c.id, resp.StatusCode)
			continue
		}
		c.alive.Store(true)
		c.observeLatency(time.Since(start))
		return &Response{Status: resp.StatusCode, Header: resp.Header, Body: payload}, nil
	}
	c.failures.Add(1)
	c.alive.Store(false)
	return nil, fmt.Errorf("fleet: peer %s unreachable after %d attempt(s): %w", c.id, c.retries, lastErr)
}

// Get is Do(GET) without a body.
func (c *Client) Get(ctx context.Context, path string, query url.Values) (*Response, error) {
	return c.Do(ctx, http.MethodGet, path, query, "", nil)
}

// observeLatency folds one success into the EWMA (alpha 0.2).
func (c *Client) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	for {
		old := c.latEWMA.Load()
		cur := math.Float64frombits(old)
		next := ms
		if old != 0 {
			next = 0.8*cur + 0.2*ms
		}
		if c.latEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// latencyMS returns the smoothed success latency (0 = no sample yet),
// rounded to two decimals for stable stats payloads.
func (c *Client) latencyMS() float64 {
	v := math.Float64frombits(c.latEWMA.Load())
	return math.Round(v*100) / 100
}

// counts snapshots the request/retry/failure counters.
func (c *Client) counts() (requests, retries, failures uint64) {
	return c.requests.Load(), c.retried.Load(), c.failures.Load()
}
