package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:8080, b=http://h2:8080 ,c=http://h3:8080/")
	if err != nil {
		t.Fatal(err)
	}
	want := []Peer{
		{ID: "a", URL: "http://h1:8080"},
		{ID: "b", URL: "http://h2:8080"},
		{ID: "c", URL: "http://h3:8080"},
	}
	if !reflect.DeepEqual(peers, want) {
		t.Fatalf("got %v, want %v", peers, want)
	}
	for _, bad := range []string{
		"", "a", "a=", "=http://x", "a=ftp://x", "a=http://x,a=http://y", "a/b=http://x",
	} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q): expected error", bad)
		}
	}
}

func TestNewRejectsUnknownSelf(t *testing.T) {
	_, err := New(Config{NodeID: "zz", Peers: []Peer{{ID: "a", URL: "http://x"}}, ProbeInterval: -1})
	if err == nil {
		t.Fatal("expected error for a node id missing from the peer list")
	}
}

func threeNodeFleet(t *testing.T, self string) *Fleet {
	t.Helper()
	f, err := New(Config{
		NodeID: self,
		Peers: []Peer{
			{ID: "a", URL: "http://h1"},
			{ID: "b", URL: "http://h2"},
			{ID: "c", URL: "http://h3"},
		},
		Replication:   2,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestOwnersAgreeAcrossMembers: placement must be a pure function of
// the membership, so every node computes the same owner lists — the
// property that lets any node coordinate without consensus traffic.
func TestOwnersAgreeAcrossMembers(t *testing.T) {
	fa, fb := threeNodeFleet(t, "a"), threeNodeFleet(t, "b")
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("trace-%d/0", i)
		oa, ob := fa.Owners(key, 2), fb.Owners(key, 2)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("key %q: node a places %v, node b places %v", key, oa, ob)
		}
		if len(oa) != 2 || oa[0] == oa[1] {
			t.Fatalf("key %q: owners %v are not 2 distinct nodes", key, oa)
		}
	}
}

// TestOwnersBalance: virtual nodes must spread home-ownership across
// the members — no node should own a wildly disproportionate share.
func TestOwnersBalance(t *testing.T) {
	f := threeNodeFleet(t, "a")
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[f.Home(fmt.Sprintf("trace-%d", i))]++
	}
	for id, n := range counts {
		frac := float64(n) / keys
		if frac < 0.20 || frac > 0.47 {
			t.Errorf("node %s owns %.0f%% of keys (want roughly a third): %v", id, frac*100, counts)
		}
	}
}

func TestOwnersClampAndDistinct(t *testing.T) {
	f := threeNodeFleet(t, "a")
	owners := f.Owners("k", 99)
	if len(owners) != 3 {
		t.Fatalf("owners clamped to cluster size: got %v", owners)
	}
	seen := map[string]bool{}
	for _, id := range owners {
		if seen[id] {
			t.Fatalf("duplicate owner in %v", owners)
		}
		seen[id] = true
	}
}

// TestClientRetriesThenSucceeds: transient failures inside the attempt
// budget must be retried with backoff and end in success, leaving the
// peer marked alive.
func TestClientRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	c := newClient("p", ts.URL, time.Second, 3, time.Millisecond)
	resp, err := c.Do(context.Background(), http.MethodGet, "/", nil, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || string(resp.Body) != "ok" {
		t.Fatalf("got %d %q", resp.Status, resp.Body)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("expected 3 attempts, saw %d", got)
	}
	if !c.Alive() {
		t.Fatal("peer should be alive after a success")
	}
	_, retries, failures := c.counts()
	if retries != 2 || failures != 0 {
		t.Fatalf("retries=%d failures=%d, want 2/0", retries, failures)
	}
}

// TestClientExhaustsRetries: a dead peer must fail after the attempt
// budget and be marked down (the passive liveness half).
func TestClientExhaustsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // connection refused from here on
	c := newClient("p", ts.URL, time.Second, 2, time.Millisecond)
	if _, err := c.Do(context.Background(), http.MethodGet, "/", nil, "", nil); err == nil {
		t.Fatal("expected an error from a closed server")
	}
	if c.Alive() {
		t.Fatal("peer should be marked down after exhausting retries")
	}
	_, _, failures := c.counts()
	if failures != 1 {
		t.Fatalf("failures=%d, want 1", failures)
	}
}

// TestClientDoesNotRetryDeterministicStatus: a 404 is an answer, not a
// transport failure — one attempt, peer stays alive.
func TestClientDoesNotRetryDeterministicStatus(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer ts.Close()
	c := newClient("p", ts.URL, time.Second, 3, time.Millisecond)
	resp, err := c.Do(context.Background(), http.MethodGet, "/", nil, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusNotFound {
		t.Fatalf("status %d", resp.Status)
	}
	if calls.Load() != 1 {
		t.Fatalf("expected 1 attempt, saw %d", calls.Load())
	}
	if !c.Alive() {
		t.Fatal("a deterministic status must not down the peer")
	}
}

// TestMonitorRevivesPeer: the background prober must mark a recovered
// peer alive again without any request traffic.
func TestMonitorRevivesPeer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer ts.Close()
	f, err := New(Config{
		NodeID:        "a",
		Peers:         []Peer{{ID: "a", URL: "http://self"}, {ID: "b", URL: ts.URL}},
		ProbeInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Client("b").MarkDown()
	f.Start()
	defer f.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !f.Alive("b") {
		if time.Now().After(deadline) {
			t.Fatal("prober never revived the peer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if down := f.Down(); len(down) != 0 {
		t.Fatalf("Down() = %v after revival", down)
	}
}

func TestSortByLiveness(t *testing.T) {
	f := threeNodeFleet(t, "a")
	f.Client("b").MarkDown()
	got := f.SortByLiveness([]string{"b", "c", "a"})
	want := []string{"c", "a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestStatsShape(t *testing.T) {
	f := threeNodeFleet(t, "b")
	f.AddScatter()
	f.AddMerges(3)
	f.AddDegraded()
	st := f.Stats()
	if st.NodeID != "b" || st.Size != 3 || st.Replication != 2 || st.Shards != 3 {
		t.Fatalf("stats header: %+v", st)
	}
	if st.Scatters != 1 || st.Merges != 3 || st.Degraded != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if len(st.Peers) != 3 {
		t.Fatalf("peers: %+v", st.Peers)
	}
	var self int
	for _, p := range st.Peers {
		if p.Self {
			self++
			if p.ID != "b" || !p.Alive {
				t.Fatalf("self row: %+v", p)
			}
		}
	}
	if self != 1 {
		t.Fatalf("expected exactly one self row, got %d", self)
	}
}
