package fleet

import (
	"context"
	"sync"
	"time"
)

// monitor is the active half of liveness: a background goroutine that
// probes every remote peer's /healthz on an interval, reviving peers
// that recovered without waiting for request traffic to notice. The
// passive half lives in Client.Do (failures down a peer immediately, a
// success revives it), so the prober's job is only the quiet periods.
type monitor struct {
	clients  map[string]*Client
	interval time.Duration

	mu      sync.Mutex
	cancel  context.CancelFunc
	done    chan struct{}
	started bool
}

func newMonitor(clients map[string]*Client, interval time.Duration) *monitor {
	return &monitor{clients: clients, interval: interval}
}

func (m *monitor) start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started || len(m.clients) == 0 {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	m.cancel = cancel
	m.done = make(chan struct{})
	m.started = true
	go m.loop(ctx)
}

func (m *monitor) stop() {
	m.mu.Lock()
	cancel, done := m.cancel, m.done
	m.cancel, m.done, m.started = nil, nil, false
	m.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

func (m *monitor) loop(ctx context.Context) {
	defer close(m.done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			m.probeAll(ctx)
		}
	}
}

// probeAll checks every remote peer concurrently. A probe is a plain
// GET /healthz through the peer's client, so it shares the timeout and
// updates the same passive liveness state and latency EWMA as request
// traffic. Retries are wasted effort here — the next tick re-probes —
// but harmless: the budget is the client's own.
func (m *monitor) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, c := range m.clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			resp, err := c.Get(ctx, "/healthz", nil)
			if err != nil || resp.Status >= 500 {
				c.MarkDown()
			}
		}(c)
	}
	wg.Wait()
}
