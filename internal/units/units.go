// Package units provides the scalar quantities used throughout the workload
// study: byte sizes spanning bytes to exabytes, wall-clock durations, and
// task-time measured in slot-seconds. The paper reports data in these units
// (Table 1, Table 2), and every module in this repository exchanges values
// typed with them.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Bytes is a data size in bytes. Per-job input, shuffle, and output sizes,
// file sizes, and aggregate bytes-moved figures are all expressed as Bytes.
type Bytes int64

// Decimal byte-size units. The paper's axes ("1 KB MB GB TB") are decimal
// powers; we follow that convention rather than IEC binary units.
const (
	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
	PB Bytes = 1e15
	EB Bytes = 1e18
)

// String renders the size with the largest unit that keeps the mantissa in
// [1, 1000), matching the paper's "14 GB" / "1.2 TB" style.
func (b Bytes) String() string {
	neg := ""
	v := float64(b)
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= 1e18:
		return fmt.Sprintf("%s%.3g EB", neg, v/1e18)
	case v >= 1e15:
		return fmt.Sprintf("%s%.3g PB", neg, v/1e15)
	case v >= 1e12:
		return fmt.Sprintf("%s%.3g TB", neg, v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%s%.3g GB", neg, v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%s%.3g MB", neg, v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%s%.3g KB", neg, v/1e3)
	default:
		return fmt.Sprintf("%s%d B", neg, int64(v))
	}
}

// Float returns the size as a float64 byte count, convenient for statistics.
func (b Bytes) Float() float64 { return float64(b) }

// ParseBytes parses strings like "80 TB", "4.6KB", "600B", or a bare number
// of bytes. It accepts the unit suffixes B, KB, MB, GB, TB, PB, EB
// case-insensitively, with optional whitespace before the suffix.
func ParseBytes(s string) (Bytes, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty byte size")
	}
	upper := strings.ToUpper(t)
	suffixes := []struct {
		suffix string
		mult   float64
	}{
		{"EB", 1e18}, {"PB", 1e15}, {"TB", 1e12}, {"GB", 1e9},
		{"MB", 1e6}, {"KB", 1e3}, {"B", 1},
	}
	for _, sf := range suffixes {
		if strings.HasSuffix(upper, sf.suffix) {
			num := strings.TrimSpace(upper[:len(upper)-len(sf.suffix)])
			if num == "" {
				return 0, fmt.Errorf("units: missing magnitude in %q", s)
			}
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: bad byte size %q: %v", s, err)
			}
			return Bytes(math.Round(v * sf.mult)), nil
		}
	}
	v, err := strconv.ParseFloat(upper, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad byte size %q: %v", s, err)
	}
	return Bytes(math.Round(v)), nil
}

// TaskSeconds is the map/reduce "task time" unit of the paper: the sum over
// tasks of per-task wall-clock slot occupancy, in seconds. A job with 2 map
// tasks of 10 seconds each has MapTime = 20 task-seconds (Table 2 caption).
type TaskSeconds float64

// String renders task-time in the most natural unit (task-seconds up to
// task-hours), e.g. "65,100 task-s" or "1,234 task-hr".
func (ts TaskSeconds) String() string {
	v := float64(ts)
	if math.Abs(v) >= 3600*10 {
		return fmt.Sprintf("%s task-hr", groupDigits(v/3600))
	}
	return fmt.Sprintf("%s task-s", groupDigits(v))
}

// Hours converts to task-hours, the unit used on Figure 7's compute axis.
func (ts TaskSeconds) Hours() float64 { return float64(ts) / 3600 }

// Float returns the raw task-second count.
func (ts TaskSeconds) Float() float64 { return float64(ts) }

// Duration is a wall-clock duration. It aliases time.Duration but carries
// helpers for the paper's coarse display style ("2 hrs 30 min", "39 sec").
type Duration = time.Duration

// FormatDuration renders a duration in the paper's Table 2 style.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= 48*time.Hour:
		days := d / (24 * time.Hour)
		rem := d - days*24*time.Hour
		if rem < time.Hour {
			return fmt.Sprintf("%d days", days)
		}
		return fmt.Sprintf("%d days %d hrs", days, rem/time.Hour)
	case d >= time.Hour:
		h := d / time.Hour
		m := (d - h*time.Hour) / time.Minute
		if m == 0 {
			return fmt.Sprintf("%d hrs", h)
		}
		return fmt.Sprintf("%d hrs %d min", h, m)
	case d >= time.Minute:
		m := d / time.Minute
		s := (d - m*time.Minute) / time.Second
		if s == 0 {
			return fmt.Sprintf("%d min", m)
		}
		return fmt.Sprintf("%d min %d sec", m, s)
	default:
		return fmt.Sprintf("%d sec", d/time.Second)
	}
}

// groupDigits formats v with thousands separators and no decimals beyond
// what is needed, e.g. 65100 -> "65,100".
func groupDigits(v float64) string {
	s := strconv.FormatFloat(math.Round(v), 'f', 0, 64)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
