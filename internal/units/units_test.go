package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0 B"},
		{999, "999 B"},
		{1 * KB, "1 KB"},
		{4600, "4.6 KB"},
		{51 * MB, "51 MB"},
		{14 * GB, "14 GB"},
		{Bytes(1.2e12), "1.2 TB"},
		{8 * PB, "8 PB"},
		{Bytes(1.5e18), "1.5 EB"},
		{-2 * GB, "-2 GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"80 TB", 80 * TB},
		{"600TB", 600 * TB},
		{"18 PB", 18 * PB},
		{"590 TB", 590 * TB},
		{"9.4 PB", Bytes(9.4e15)},
		{"1.5 EB", Bytes(1.5e18)},
		{"4.6KB", 4600},
		{"600B", 600},
		{"  512  ", 512},
		{"0 B", 0},
		{"2.5 gb", Bytes(2.5e9)},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "   ", "GB", "12XB", "1.2.3 GB", "abc"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", in)
		}
	}
}

// Property: String() then ParseBytes() round-trips within the 3-significant-
// figure precision that String prints.
func TestBytesRoundTripQuick(t *testing.T) {
	f := func(raw int64) bool {
		b := Bytes(raw % int64(2e18))
		parsed, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		a, p := math.Abs(float64(b)), math.Abs(float64(parsed))
		if a < 1000 { // byte-exact below 1 KB
			return b == parsed
		}
		rel := math.Abs(a-p) / a
		return rel < 0.005 // 3 significant figures
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTaskSecondsString(t *testing.T) {
	cases := []struct {
		in   TaskSeconds
		want string
	}{
		{20, "20 task-s"},
		{65100, "18 task-hr"},
		{3600 * 9, "32,400 task-s"},
		{3600 * 11, "11 task-hr"},
		{66839710, "18,567 task-hr"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("TaskSeconds(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestTaskSecondsHours(t *testing.T) {
	if got := TaskSeconds(7200).Hours(); got != 2 {
		t.Errorf("Hours() = %v, want 2", got)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{39 * time.Second, "39 sec"},
		{23 * time.Second, "23 sec"},
		{35 * time.Minute, "35 min"},
		{4 * time.Minute, "4 min"},
		{67 * time.Second, "1 min 7 sec"},
		{2*time.Hour + 30*time.Minute, "2 hrs 30 min"},
		{time.Hour, "1 hrs"},
		{3 * 24 * time.Hour, "3 days"},
		{72*time.Hour + 5*time.Hour, "3 days 5 hrs"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.in); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestGroupDigits(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{65100, "65,100"},
		{66839710, "66,839,710"},
		{-4233, "-4,233"},
	}
	for _, c := range cases {
		if got := groupDigits(c.in); got != c.want {
			t.Errorf("groupDigits(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
