package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace generates the fixed workload the golden files pin: FB-2009
// at seed 1 over one day.
func goldenTrace(t testing.TB) *trace.Trace {
	t.Helper()
	p, err := profile.ByName("FB-2009")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 1, Duration: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestGoldenFB2009Day1 locks the full Analyze + Render output for FB-2009
// at seed 1 over one day. Any codec, generator, or analysis refactor that
// drifts the paper's reproduced figures fails here; run
// `go test ./internal/core -run Golden -update` after an intentional
// change.
func TestGoldenFB2009Day1(t *testing.T) {
	tr := goldenTrace(t)
	rep, err := Analyze(tr, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "fb2009_day1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendered report drifted from golden file %s\n got %d bytes, want %d; first diff at byte %d\n--- got ---\n%s",
			path, buf.Len(), len(want), firstDiff(buf.Bytes(), want), clip(buf.String(), 2000))
	}
}

// TestStreamingMatchesMaterializedGolden proves the streaming pipeline
// introduces no drift: the golden trace, saved to JSONL and re-read as a
// stream, must render the identical report (for the analyses streaming
// computes) as the materialized Analyze on the in-memory trace.
func TestStreamingMatchesMaterializedGolden(t *testing.T) {
	tr := goldenTrace(t)
	opts := AnalyzeOptions{SkipClustering: true}

	matRep, err := Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	var mat bytes.Buffer
	if err := matRep.Render(&mat); err != nil {
		t.Fatal(err)
	}

	// Round-trip through the on-disk codec, then analyze as a stream.
	var file bytes.Buffer
	if err := trace.WriteJSONL(&file, tr); err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewJSONLReader(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	streamRep, err := AnalyzeSource(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	var str bytes.Buffer
	if err := streamRep.Render(&str); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(mat.Bytes(), str.Bytes()) {
		t.Errorf("streaming and materialized reports differ (first diff at byte %d)\n--- materialized ---\n%s\n--- streaming ---\n%s",
			firstDiff(mat.Bytes(), str.Bytes()), clip(mat.String(), 1500), clip(str.String(), 1500))
	}

	// Materialize-via-stream must also reproduce the full report,
	// clustering included.
	src2, err := trace.NewJSONLReader(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fullStream, err := AnalyzeSource(src2, AnalyzeOptions{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	fullMat, err := Analyze(tr, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := fullStream.Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := fullMat.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("Materialize-mode AnalyzeSource differs from Analyze (first diff at byte %d)", firstDiff(a.Bytes(), b.Bytes()))
	}
}

// TestGoldenFingerprint pins the golden trace's content fingerprint —
// the same identity the serving layer uses for cache keys. It is a
// cheaper, earlier tripwire than the rendered report: any generator or
// codec change that alters even one byte of one job fails here first,
// and an intentional change updates both goldens together with -update.
func TestGoldenFingerprint(t *testing.T) {
	tr := goldenTrace(t)
	fp, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "fb2009_day1.fingerprint")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(fp+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if got := fp + "\n"; got != string(want) {
		t.Errorf("golden trace fingerprint drifted:\n got %s want %s", fp, bytes.TrimSpace(want))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
