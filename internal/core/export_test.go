package core

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestExportCSVFullWorkload(t *testing.T) {
	tr := genTrace(t, "CC-e", 4*24*time.Hour)
	rep, err := Analyze(tr, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := rep.ExportCSV(dir); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig1_datasizes.csv", "fig2_access_freq.csv", "fig3_input_sizes.csv",
		"fig4_output_sizes.csv", "fig5_intervals.csv", "fig7_timeseries.csv",
		"fig8_burstiness.csv", "fig10_names.csv", "table2_jobtypes.csv",
	}
	for _, name := range want {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			t.Errorf("missing export %s: %v", name, err)
			continue
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Errorf("%s: invalid CSV: %v", name, err)
			continue
		}
		if len(rows) < 2 {
			t.Errorf("%s: only %d rows (header + data expected)", name, len(rows))
		}
		// Every row matches the header width (csv.ReadAll enforces it).
	}
}

func TestExportCSVSkipsAbsentAnalyses(t *testing.T) {
	tr := genTrace(t, "FB-2009", 24*time.Hour) // no paths
	rep, err := Analyze(tr, AnalyzeOptions{SkipClustering: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := rep.ExportCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"fig2_access_freq.csv", "fig5_intervals.csv", "table2_jobtypes.csv"} {
		if _, err := os.Stat(filepath.Join(dir, absent)); err == nil {
			t.Errorf("%s should not be exported for FB-2009", absent)
		}
	}
	for _, present := range []string{"fig1_datasizes.csv", "fig7_timeseries.csv", "fig10_names.csv"} {
		if _, err := os.Stat(filepath.Join(dir, present)); err != nil {
			t.Errorf("%s should be exported: %v", present, err)
		}
	}
}

func TestExportCSVBadDir(t *testing.T) {
	tr := genTrace(t, "CC-a", 24*time.Hour)
	rep, err := Analyze(tr, AnalyzeOptions{SkipClustering: true})
	if err != nil {
		t.Fatal(err)
	}
	// A file where the directory should be.
	blocked := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := rep.ExportCSV(filepath.Join(blocked, "sub")); err == nil {
		t.Error("export into non-directory should error")
	}
}
