package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/trace"
)

// TestReportJSONRoundTrip: the wire form of a full materialized report
// carries every section the report has, marshals to valid JSON, and the
// headline numbers survive a decode.
func TestReportJSONRoundTrip(t *testing.T) {
	tr := goldenTrace(t)
	rep, err := Analyze(tr, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got ReportJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("wire form does not round-trip: %v", err)
	}
	if got.Summary.Name != rep.Summary.Name || got.Summary.Jobs != rep.Summary.Jobs {
		t.Errorf("summary drifted: %+v vs %+v", got.Summary, rep.Summary)
	}
	if got.Summary.BytesMoved != int64(rep.Summary.BytesMoved) {
		t.Errorf("bytes moved %d != %d", got.Summary.BytesMoved, rep.Summary.BytesMoved)
	}
	if got.DataSizes == nil || got.DataSizes.Input == nil {
		t.Fatal("data sizes section missing")
	}
	if got.DataSizes.Input.Median != rep.DataSizes.Input.Median() {
		t.Errorf("input median %g != %g", got.DataSizes.Input.Median, rep.DataSizes.Input.Median())
	}
	if len(got.DataSizes.Input.Points) == 0 {
		t.Error("input CDF points missing")
	}
	if got.Series == nil || len(got.Series.Jobs) != len(rep.Series.Jobs) {
		t.Error("hourly series missing or truncated")
	}
	if got.PeakToMedian != rep.PeakToMedian {
		t.Errorf("peak-to-median %g != %g", got.PeakToMedian, rep.PeakToMedian)
	}
	if got.Correlations == nil || got.Correlations.BytesTaskSeconds != rep.Correlations.BytesTaskSeconds {
		t.Error("correlations drifted")
	}
	if got.Names == nil || len(got.Names.Groups) == 0 {
		t.Error("job names section missing")
	}
	if got.Clusters == nil || got.Clusters.K != rep.Clusters.K {
		t.Error("clusters section drifted")
	}
	// FB-2009 traces carry no paths: the path sections must be omitted,
	// not emitted as empty objects.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"input_access", "reaccess_intervals", "input_size_access"} {
		if _, ok := raw[key]; ok {
			t.Errorf("%s should be omitted for a pathless trace", key)
		}
	}
}

// TestReportJSONStreaming: the streaming report (sketch mode) exports
// without the materialized-only sections and with the same summary.
func TestReportJSONStreaming(t *testing.T) {
	tr := goldenTrace(t)
	src := trace.NewSliceSource(tr)
	rep, err := AnalyzeSource(src, AnalyzeOptions{SketchDataSizes: true})
	if err != nil {
		t.Fatal(err)
	}
	j := rep.JSON()
	if j.Clusters != nil {
		t.Error("streaming report should not carry clusters")
	}
	if j.DataSizes == nil || j.DataSizes.Shuffle.Count != rep.Summary.Jobs {
		t.Error("sketch distributions missing or wrong count")
	}
	if j.Summary.Jobs != tr.Len() {
		t.Errorf("jobs %d != %d", j.Summary.Jobs, tr.Len())
	}
}
