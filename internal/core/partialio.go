package core

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/binenc"
	"repro/internal/trace"
	"repro/internal/units"
)

// Durable snapshots of Partial aggregates. The storage engine persists
// one next to every stored trace so a restarted service finalizes cold
// reports from disk instead of rescanning jobs. The format is versioned
// and self-identifying; decoding restores the aggregate exactly —
// Report() on the decoded partial is byte-identical to Report() on the
// original, and the decoded partial remains a valid Merge partner.
//
// Layout: magic, uvarint version, then the version-1 body (trace
// metadata at nanosecond precision, mode flag, job count, and the four
// section builders in their packages' binary encodings). Integrity is
// the storage layer's job — the manifest records a CRC per snapshot
// file — but decode still validates structure and rejects trailing
// bytes, so a mangled snapshot fails loudly instead of serving skewed
// analytics.

// partialMagic identifies a Partial snapshot file.
var partialMagic = []byte("swim-partial\n")

// PartialSnapshotVersion is the current snapshot format version.
const PartialSnapshotVersion = 1

// MarshalBinary encodes the partial as a versioned snapshot.
func (p *Partial) MarshalBinary() ([]byte, error) {
	b := append([]byte(nil), partialMagic...)
	b = binenc.AppendUvarint(b, PartialSnapshotVersion)
	b = binenc.AppendString(b, p.meta.Name)
	b = binenc.AppendUvarint(b, uint64(p.meta.Machines))
	b = binenc.AppendVarint(b, p.meta.Start.UnixNano())
	b = binenc.AppendVarint(b, int64(p.meta.Length))
	b = binenc.AppendBool(b, p.sketch)
	b = binenc.AppendUvarint(b, uint64(p.n))
	sum := p.sum.Summary()
	b = binenc.AppendUvarint(b, uint64(sum.Jobs))
	b = binenc.AppendVarint(b, int64(sum.BytesMoved))
	b = p.ds.AppendBinary(b)
	b = p.ts.AppendBinary(b)
	b = p.nb.AppendBinary(b)
	return b, nil
}

// UnmarshalPartial decodes a snapshot written by MarshalBinary. It
// rejects unknown magic, unsupported versions, structural corruption,
// and trailing bytes.
func UnmarshalPartial(data []byte) (*Partial, error) {
	if !bytes.HasPrefix(data, partialMagic) {
		return nil, fmt.Errorf("core: not a partial snapshot (bad magic)")
	}
	r := binenc.NewReader(data[len(partialMagic):])
	version := r.Uvarint()
	if r.Err() == nil && version != PartialSnapshotVersion {
		return nil, fmt.Errorf("core: partial snapshot version %d is not supported (want %d)", version, PartialSnapshotVersion)
	}
	meta := trace.Meta{
		Name:     r.String(),
		Machines: int(r.Uvarint()),
		Start:    time.Unix(0, r.Varint()).UTC(),
		Length:   time.Duration(r.Varint()),
	}
	p := &Partial{
		meta:   meta,
		sketch: r.Bool(),
		n:      int(r.Uvarint()),
	}
	p.sum = trace.RestoreSummaryAccumulator(trace.Summary{
		Name:       meta.Name,
		Machines:   meta.Machines,
		Length:     meta.Length,
		Jobs:       int(r.Uvarint()),
		BytesMoved: units.Bytes(r.Varint()),
	})
	p.ds = analysis.ReadDataSizeBuilder(r)
	p.ts = analysis.ReadTimeSeriesBuilder(r)
	nb, err := analysis.ReadNamesBuilder(r)
	if err != nil {
		return nil, err
	}
	p.nb = nb
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding partial snapshot: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("core: partial snapshot carries %d trailing bytes", r.Remaining())
	}
	if p.ds.Sketch() != p.sketch {
		return nil, fmt.Errorf("core: partial snapshot mode disagrees with its data-size builder")
	}
	return p, nil
}

// Clone returns an independent deep copy of the partial: mutating the
// original (further Observe calls) never changes the clone, and the
// clone's Report bytes are identical to the original's at the moment of
// the copy. The live-ingest path uses this to publish a frozen snapshot
// per committed batch while keeping one private mutable accumulator.
// Implemented as a snapshot round trip, which the persistence suite
// pins as byte-exact.
func (p *Partial) Clone() (*Partial, error) {
	b, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return UnmarshalPartial(b)
}
