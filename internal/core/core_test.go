package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
)

func genTrace(t *testing.T, name string, dur time.Duration) *trace.Trace {
	t.Helper()
	p, err := profile.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 5, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAnalyzeCompleteWorkload(t *testing.T) {
	tr := genTrace(t, "CC-e", 7*24*time.Hour)
	rep, err := Analyze(tr, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataSizes == nil || rep.Series == nil || rep.Clusters == nil {
		t.Fatal("mandatory analyses missing")
	}
	if rep.InputAccess == nil || rep.OutputAccess == nil || rep.Reaccess == nil {
		t.Error("CC-e carries paths; access analyses should be present")
	}
	if rep.Names == nil {
		t.Error("CC-e carries names")
	}
	if rep.PeakToMedian <= 1 {
		t.Errorf("peak-to-median = %v", rep.PeakToMedian)
	}
	if rep.Summary.Jobs != tr.Len() {
		t.Errorf("summary jobs = %d, want %d", rep.Summary.Jobs, tr.Len())
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	if _, err := Analyze(trace.New(trace.Meta{Name: "x"}), AnalyzeOptions{}); err == nil {
		t.Error("empty trace should error")
	}
}

func TestReportRenderSections(t *testing.T) {
	tr := genTrace(t, "CC-b", 7*24*time.Hour)
	rep, err := Analyze(tr, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Workload CC-b", "Figure 1", "Figure 2", "Figure 3", "Figure 4",
		"Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9",
		"Figure 10", "Table 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunStudySubset(t *testing.T) {
	st, err := RunStudy(StudyConfig{
		Window:    3 * 24 * time.Hour,
		Seed:      1,
		Workloads: []string{"CC-a", "CC-e"},
		Analyze:   AnalyzeOptions{SkipClustering: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Traces) != 2 || len(st.Reports) != 2 {
		t.Fatalf("study size: %d traces, %d reports", len(st.Traces), len(st.Reports))
	}
	for _, name := range []string{"CC-a", "CC-e"} {
		if st.Traces[name] == nil || st.Reports[name] == nil {
			t.Fatalf("missing %s", name)
		}
	}
}

func TestRunStudyUnknownWorkload(t *testing.T) {
	if _, err := RunStudy(StudyConfig{Workloads: []string{"nope"}}); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestStudyAggregate(t *testing.T) {
	st, err := RunStudy(StudyConfig{
		Window: 7 * 24 * time.Hour,
		Seed:   2,
		// A fast but diverse subset: tiny-job CC-b vs GB-job CC-c plus a
		// Facebook workload.
		Workloads: []string{"CC-b", "CC-c", "CC-e"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cw, err := st.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	// CC-b (KB medians) vs CC-c (GB medians): spans must be wide.
	if cw.InputSpan < 4 {
		t.Errorf("input span = %v, want >= 4 orders", cw.InputSpan)
	}
	// Figure 9 structure.
	if cw.AvgBytesTask <= cw.AvgJobsBytes || cw.AvgBytesTask <= cw.AvgJobsTask {
		t.Errorf("bytes-task corr %v should dominate %v / %v",
			cw.AvgBytesTask, cw.AvgJobsBytes, cw.AvgJobsTask)
	}
	// Burstiness range is ordered and positive.
	if cw.MinPeakToMedian <= 1 || cw.MaxPeakToMedian < cw.MinPeakToMedian {
		t.Errorf("burstiness range [%v, %v] malformed", cw.MinPeakToMedian, cw.MaxPeakToMedian)
	}
	// Small jobs dominate in each clustered workload (paper: >90%).
	for name, f := range cw.SmallJobFractions {
		if f < 0.85 {
			t.Errorf("%s small-job fraction %v < 0.85", name, f)
		}
	}
	if len(cw.SmallJobFractions) != 3 {
		t.Errorf("expected 3 small-job fractions, got %d", len(cw.SmallJobFractions))
	}
}

func TestAggregateEmptyStudy(t *testing.T) {
	st := &Study{}
	if _, err := st.Aggregate(); err == nil {
		t.Error("empty study should error")
	}
	st2 := &Study{Workloads: []string{"CC-a"}, Reports: map[string]*Report{"CC-a": nil}}
	st2.Reports = map[string]*Report{"x": {}}
	st2.Workloads = []string{"missing"}
	if _, err := st2.Aggregate(); err == nil {
		t.Error("missing report should error")
	}
}
