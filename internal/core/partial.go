package core

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/trace"
)

// Partial is the mergeable partial aggregate behind every streamed
// report: the Table-1 summary accumulator, the Figure 1 data-size
// builder, the Figures 7–9 hourly series builder, and the Figure 10
// name builder, bundled under one Observe/Merge/Report lifecycle.
//
// The merge contract: Observe-ing a job stream in shards and Merge-ing
// the shard partials — in any grouping — produces a Report() whose
// JSON() bytes are identical to observing the whole stream in one
// sequential partial. Counts and byte totals accumulate in integers,
// fractional task-time in exact sums (stats.ExactSum), and histogram
// bins in integers, so there is no floating-point order dependence to
// break that guarantee. The shard-parallel analysis path and the
// serving layer's ingest-time aggregation are both built on it.
//
// A partial that will be shared (the store's frozen per-trace
// aggregates) must be treated as immutable once built: Report is
// read-only and safe to call concurrently, Observe and merging INTO the
// partial are not.
type Partial struct {
	meta   trace.Meta
	sketch bool
	n      int
	sum    *trace.SummaryAccumulator
	ds     *analysis.DataSizeBuilder
	ts     *analysis.TimeSeriesBuilder
	nb     *analysis.NamesBuilder
}

// NewPartial starts an empty partial aggregate for a trace with the
// given metadata. The metadata must carry a positive length (hourly
// binning needs the horizon up front); sketch selects fixed-memory
// quantile sketches for Figure 1, as AnalyzeOptions.SketchDataSizes
// does.
func NewPartial(meta trace.Meta, sketch bool) (*Partial, error) {
	if meta.Length <= 0 {
		return nil, errNeedsLength()
	}
	tsb, err := analysis.NewTimeSeriesBuilder(meta.Name, meta.Start, meta.Length)
	if err != nil {
		return nil, err
	}
	return &Partial{
		meta:   meta,
		sketch: sketch,
		sum:    trace.NewSummaryAccumulator(meta),
		ds:     analysis.NewDataSizeBuilder(meta.Name, sketch),
		ts:     tsb,
		nb:     analysis.NewNamesBuilder(meta.Name),
	}, nil
}

// Observe folds one job into every section builder.
func (p *Partial) Observe(j *trace.Job) {
	p.n++
	p.sum.Observe(j)
	p.ds.Observe(j)
	p.ts.Observe(j)
	p.nb.Observe(j)
}

// Jobs returns the number of jobs observed (including merged-in ones).
func (p *Partial) Jobs() int { return p.n }

// Meta returns the trace metadata the partial was built for.
func (p *Partial) Meta() trace.Meta { return p.meta }

// Sketch reports whether Figure 1 accumulates in sketch mode.
func (p *Partial) Sketch() bool { return p.sketch }

// Merge folds another partial into this one. Both must describe the
// same trace metadata and Figure 1 mode; section builders enforce their
// own agreement contracts. The argument is not modified, but may share
// memory with the receiver afterwards — treat merged-from partials as
// frozen.
func (p *Partial) Merge(o *Partial) error {
	if p.sketch != o.sketch {
		return fmt.Errorf("core: cannot merge exact and sketch partial aggregates")
	}
	if err := p.sum.Merge(o.sum); err != nil {
		return err
	}
	if err := p.ds.Merge(o.ds); err != nil {
		return err
	}
	if err := p.ts.Merge(o.ts); err != nil {
		return err
	}
	if err := p.nb.Merge(o.nb); err != nil {
		return err
	}
	p.n += o.n
	return nil
}

// Report finalizes the aggregate into the streamed-analysis report:
// Table 1, Figure 1, Figures 7–9 with burstiness and correlations, and
// Figure 10 (topNames words; 0 means the default 8). Finalization is
// read-only — a frozen partial can serve concurrent Report calls — and
// repeatable. The returned report shares the partial's distribution
// state in sketch mode; callers must not mutate it.
func (p *Partial) Report(topNames int) (*Report, error) {
	if p.n == 0 {
		return nil, fmt.Errorf("core: cannot analyze an empty trace")
	}
	if topNames == 0 {
		topNames = 8
	}
	rep := &Report{Summary: p.sum.Summary()}
	ds, err := p.ds.Result()
	if err != nil {
		return nil, err
	}
	rep.DataSizes = ds
	series := p.ts.Series()
	rep.Series = series
	if b, err := series.BurstinessOf(); err == nil {
		rep.PeakToMedian = b.PeakToMedian
	}
	if c, err := series.Correlate(); err == nil {
		rep.Correlations = c
	}
	if na, err := p.nb.Result(topNames); err == nil {
		rep.Names = na
	}
	return rep, nil
}

// BuildPartial drains a job stream into a fresh partial aggregate.
func BuildPartial(src trace.Source, sketch bool) (*Partial, error) {
	p, err := NewPartial(src.Meta(), sketch)
	if err != nil {
		return nil, err
	}
	for {
		j, err := src.Next()
		if err == io.EOF {
			return p, nil
		}
		if err != nil {
			return nil, err
		}
		p.Observe(j)
	}
}
