package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
)

// generateToFile streams a generated FB-2009 variant to a JSONL file and
// returns the job count.
func generateToFile(tb testing.TB, path string, duration time.Duration, rateScale float64) int {
	tb.Helper()
	p, err := profile.ByName("FB-2009")
	if err != nil {
		tb.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	sink := trace.NewJSONLWriter(f)
	sum, err := gen.GenerateTo(gen.Config{Profile: p, Seed: 1, Duration: duration, RateScale: rateScale}, sink)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	return sum.Jobs
}

// meteredSource samples the live heap (after a forced GC) every interval
// jobs, recording the maximum observed.
type meteredSource struct {
	trace.Source
	interval int
	n        int
	maxLive  uint64
}

func (m *meteredSource) Next() (*trace.Job, error) {
	j, err := m.Source.Next()
	if err == nil {
		m.n++
		if m.n%m.interval == 0 {
			if live := liveHeap(); live > m.maxLive {
				m.maxLive = live
			}
		}
	}
	return j, err
}

func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestStreamAnalyzeBoundedHeap is the tentpole's memory proof:
// generate → save → stream-analyze a multi-month FB-2009 trace, and show
// that the live heap during streaming analysis does not scale with the
// number of jobs — an 8× heavier trace (same two-month length, 8× the
// arrival rate) must analyze within the same memory envelope.
func TestStreamAnalyzeBoundedHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-month generation in -short mode")
	}
	dir := t.TempDir()
	const duration = 61 * 24 * time.Hour // two months
	analyzeMaxLive := func(rateScale float64) (jobs int, growth int64) {
		path := filepath.Join(dir, fmt.Sprintf("fb2009_%v.jsonl", rateScale))
		jobs = generateToFile(t, path, duration, rateScale)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		src, err := trace.NewJSONLReader(f)
		if err != nil {
			t.Fatal(err)
		}
		base := liveHeap()
		m := &meteredSource{Source: src, interval: 4096, maxLive: base}
		rep, err := AnalyzeSource(m, AnalyzeOptions{SketchDataSizes: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Summary.Jobs != jobs {
			t.Fatalf("streamed %d jobs, generated %d", rep.Summary.Jobs, jobs)
		}
		if rep.Series == nil || rep.DataSizes == nil || rep.Names == nil {
			t.Fatal("streaming report missing sections")
		}
		return jobs, int64(m.maxLive) - int64(base)
	}

	smallJobs, smallGrowth := analyzeMaxLive(0.03)
	bigJobs, bigGrowth := analyzeMaxLive(0.24)
	t.Logf("streaming analyze: %d jobs -> +%d KiB live, %d jobs -> +%d KiB live",
		smallJobs, smallGrowth/1024, bigJobs, bigGrowth/1024)
	if bigJobs < 6*smallJobs {
		t.Fatalf("rate scaling did not scale jobs: %d vs %d", smallJobs, bigJobs)
	}
	// The 8× trace may not need more than the small trace plus slack for
	// GC timing noise. 8 MiB of slack is far below the ~40 MiB the big
	// trace's jobs would occupy if anything retained them.
	const slack = 8 << 20
	if bigGrowth > smallGrowth+slack {
		t.Errorf("live heap grew with job count: +%d KiB at %d jobs vs +%d KiB at %d jobs",
			bigGrowth/1024, bigJobs, smallGrowth/1024, smallJobs)
	}
}

// BenchmarkStreamAnalyze measures the end-to-end streaming analysis
// against loading + materialized analysis of the same file. CI publishes
// these numbers for trend tracking.
func BenchmarkStreamAnalyze(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "fb2009_2w.jsonl")
	generateToFile(b, path, 14*24*time.Hour, 1)
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("stream", func(b *testing.B) {
		b.SetBytes(st.Size())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			src, err := trace.NewJSONLReader(f)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := AnalyzeSource(src, AnalyzeOptions{SketchDataSizes: true}); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
	b.Run("materialized", func(b *testing.B) {
		b.SetBytes(st.Size())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			src, err := trace.NewJSONLReader(f)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := trace.Collect(src)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Analyze(tr, AnalyzeOptions{SkipClustering: true}); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
}

// TestAnalyzeSourceErrors covers the streaming-mode error paths.
func TestAnalyzeSourceErrors(t *testing.T) {
	// Empty stream.
	empty := trace.NewSliceSource(trace.New(trace.Meta{Name: "e", Length: 3 * time.Hour}))
	if _, err := AnalyzeSource(empty, AnalyzeOptions{}); err == nil {
		t.Error("empty stream should error")
	}
	// Missing length metadata.
	tr := trace.New(trace.Meta{Name: "nolen"})
	if _, err := AnalyzeSource(trace.NewSliceSource(tr), AnalyzeOptions{}); err == nil {
		t.Error("zero-length metadata should error in streaming mode")
	}
	// Source error mid-stream propagates.
	if _, err := AnalyzeSource(&errSource{}, AnalyzeOptions{}); err == nil || err.Error() != "stream broke" {
		t.Errorf("err = %v, want stream broke", err)
	}
}

type errSource struct{ n int }

func (e *errSource) Meta() trace.Meta {
	return trace.Meta{Name: "err", Length: 3 * time.Hour, Start: time.Unix(0, 0).UTC()}
}

func (e *errSource) Next() (*trace.Job, error) {
	e.n++
	if e.n > 2 {
		return nil, fmt.Errorf("stream broke")
	}
	return &trace.Job{ID: int64(e.n), SubmitTime: time.Unix(int64(e.n), 0).UTC()}, nil
}
