// Package core implements the paper's primary contribution: the
// cross-industry workload characterization. It orchestrates the full
// per-workload analysis (every figure and table that a trace's fields
// permit) and the cross-workload study that compares all seven
// deployments, from which the paper draws its headline findings — the
// interactive/semi-streaming workload class, the diversity that defeats
// any single "typical" workload, and the benchmark-design implications of
// §7.
package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/units"
)

// Report bundles every analysis of the paper that applies to one trace.
// Fields are nil when the trace lacks the required fields (paths, names),
// mirroring the per-workload gaps in the original study (§3, §4.2).
type Report struct {
	// Summary is the trace's Table-1 row.
	Summary trace.Summary
	// DataSizes: Figure 1.
	DataSizes *analysis.DataSizes
	// InputAccess / OutputAccess: Figure 2 (nil without paths).
	InputAccess  *analysis.AccessFrequency
	OutputAccess *analysis.AccessFrequency
	// InputSizeAccess / OutputSizeAccess: Figures 3 and 4.
	InputSizeAccess  *analysis.SizeAccess
	OutputSizeAccess *analysis.SizeAccess
	// Intervals: Figure 5 (nil without paths or re-accesses).
	Intervals *analysis.ReaccessIntervals
	// Reaccess: Figure 6.
	Reaccess *analysis.ReaccessFractions
	// Series: the hourly view behind Figures 7-9.
	Series *analysis.TimeSeries
	// PeakToMedian is the Figure 8 headline burstiness number.
	PeakToMedian float64
	// Correlations: Figure 9.
	Correlations *analysis.Correlations
	// Names: Figure 10 (nil without job names).
	Names *analysis.NameAnalysis
	// Clusters: Table 2.
	Clusters *analysis.JobClusters
}

// AnalyzeOptions tunes Analyze.
type AnalyzeOptions struct {
	// TopNames bounds the Figure 10 word list (default 8, matching the
	// figure's per-workload word counts).
	TopNames int
	// Cluster tunes the Table-2 clustering; the zero value uses defaults.
	Cluster analysis.ClusterConfig
	// SkipClustering drops the Table 2 analysis (it is the slowest step).
	SkipClustering bool
	// Materialize applies to AnalyzeSource only: collect the streamed
	// jobs into memory and run the full materialized Analyze, so the
	// path-based analyses (Figures 2–6) and Table-2 clustering — which
	// need random access over the whole trace — are included. When
	// false, AnalyzeSource runs in a single pass with memory independent
	// of trace length (see AnalyzeSource for what that report contains).
	Materialize bool
	// SketchDataSizes applies to the streaming AnalyzeSource path only:
	// compute the Figure 1 distributions with fixed-memory quantile
	// sketches (≤ half-bin relative error, stats.DefaultBinsPerDecade)
	// instead of exact per-job value collection. With it, streaming
	// analysis memory is fully independent of job count; without it,
	// Figure 1 retains 24 bytes per job and matches the materialized
	// analysis exactly.
	SketchDataSizes bool
	// Shards selects the shard-parallel execution of the streaming
	// analysis (AnalyzeSource / AnalyzeSourceParallel): the job stream
	// is split into this many contiguous ordered shards, analyzed on a
	// bounded worker pool, and merged in shard order. The merged report
	// is byte-identical to the sequential one at any shard count; the
	// cost is holding the job set in memory while the shards run.
	// 0 or 1 keeps the sequential constant-memory pass (0 means "one
	// per CPU" where a parallel entry point is invoked explicitly).
	// Ignored by the materialized Analyze.
	Shards int
}

// Analyze runs the full measurement methodology of the paper over a trace
// and returns every figure and table that the trace's fields permit.
func Analyze(t *trace.Trace, opts AnalyzeOptions) (*Report, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("core: cannot analyze an empty trace")
	}
	if opts.TopNames == 0 {
		opts.TopNames = 8
	}
	rep := &Report{Summary: t.Summarize()}

	ds, err := analysis.DataSizeCDFs(t)
	if err != nil {
		return nil, err
	}
	rep.DataSizes = ds

	if t.HasPaths() {
		if af, err := analysis.InputAccessFrequency(t); err == nil {
			rep.InputAccess = af
		}
		if sa, err := analysis.InputSizeAccess(t); err == nil {
			rep.InputSizeAccess = sa
		}
		if iv, err := analysis.Intervals(t); err == nil {
			rep.Intervals = iv
		}
		if rf, err := analysis.Reaccess(t); err == nil {
			rep.Reaccess = rf
		}
	}
	if t.HasOutputPaths() {
		if af, err := analysis.OutputAccessFrequency(t); err == nil {
			rep.OutputAccess = af
		}
		if sa, err := analysis.OutputSizeAccess(t); err == nil {
			rep.OutputSizeAccess = sa
		}
	}

	series, err := analysis.BinHourly(t)
	if err != nil {
		return nil, err
	}
	rep.Series = series
	if b, err := series.BurstinessOf(); err == nil {
		rep.PeakToMedian = b.PeakToMedian
	}
	if c, err := series.Correlate(); err == nil {
		rep.Correlations = c
	}

	if t.HasNames() {
		if na, err := analysis.JobNames(t, opts.TopNames); err == nil {
			rep.Names = na
		}
	}

	if !opts.SkipClustering {
		jc, err := analysis.ClusterJobs(t, opts.Cluster)
		if err != nil {
			return nil, err
		}
		rep.Clusters = jc
	}
	return rep, nil
}

// Render writes the full report as readable text: one section per figure
// or table that applies to the workload.
func (r *Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "==== Workload %s ====\n", r.Summary.Name)
	fmt.Fprintf(w, "machines=%d length=%s jobs=%d bytes-moved=%s\n\n",
		r.Summary.Machines, r.Summary.Length, r.Summary.Jobs, r.Summary.BytesMoved)

	if r.DataSizes != nil {
		fmt.Fprintln(w, "-- Figure 1: per-job data sizes --")
		fb := func(v float64) string { return units.Bytes(v).String() }
		if err := report.CDFChart(w, r.DataSizes.Input, "input", fb); err != nil {
			return err
		}
		if err := report.CDFChart(w, r.DataSizes.Shuffle, "shuffle", fb); err != nil {
			return err
		}
		if err := report.CDFChart(w, r.DataSizes.Output, "output", fb); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if r.InputAccess != nil {
		fmt.Fprintln(w, "-- Figure 2: input file access frequency vs rank --")
		fmt.Fprintf(w, "zipf alpha=%.3f (paper: 5/6=0.833) r2=%.3f files=%d\n",
			r.InputAccess.Fit.Alpha, r.InputAccess.Fit.R2, r.InputAccess.DistinctFiles)
		if err := report.LogLogChart(w, r.InputAccess.Frequencies, "input accesses"); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if r.InputSizeAccess != nil {
		fmt.Fprintln(w, "-- Figure 3: access patterns vs input file size --")
		fmt.Fprintf(w, "80%% of accesses hit files holding %s of stored bytes (80-N rule)\n",
			report.Percent(r.InputSizeAccess.EightyRule()/100))
		fmt.Fprintln(w)
	}
	if r.OutputSizeAccess != nil {
		fmt.Fprintln(w, "-- Figure 4: access patterns vs output file size --")
		fmt.Fprintf(w, "80%% of accesses hit files holding %s of stored bytes\n",
			report.Percent(r.OutputSizeAccess.EightyRule()/100))
		fmt.Fprintln(w)
	}
	if r.Intervals != nil {
		fmt.Fprintln(w, "-- Figure 5: data re-access intervals --")
		fmt.Fprintf(w, "re-accesses within 6h: %s (paper: ~75%%)\n",
			report.Percent(r.Intervals.FractionWithin(6*time.Hour)))
		fmt.Fprintln(w)
	}
	if r.Reaccess != nil {
		fmt.Fprintln(w, "-- Figure 6: jobs reading pre-existing data --")
		fmt.Fprintf(w, "input re-access=%s output re-access=%s\n",
			report.Percent(r.Reaccess.InputReaccess), report.Percent(r.Reaccess.OutputReaccess))
		fmt.Fprintln(w)
	}
	if r.Series != nil {
		fmt.Fprintln(w, "-- Figure 7: weekly behavior (first week, hourly) --")
		week := r.Series
		if w7, err := r.Series.Week(0); err == nil {
			week = w7
		}
		fmt.Fprintf(w, "jobs/hr  %s\n", report.Sparkline(week.Jobs))
		fmt.Fprintf(w, "bytes/hr %s\n", report.Sparkline(week.Bytes))
		fmt.Fprintf(w, "task-s/h %s\n", report.Sparkline(week.TaskSeconds))
		fmt.Fprintln(w)
		fmt.Fprintln(w, "-- Figure 8: burstiness --")
		fmt.Fprintf(w, "peak-to-median task-time: %s (paper range: 9:1 .. 260:1)\n",
			report.Ratio(r.PeakToMedian))
		fmt.Fprintln(w)
	}
	if r.Correlations != nil {
		fmt.Fprintln(w, "-- Figure 9: hourly dimension correlations --")
		fmt.Fprintf(w, "jobs-bytes=%.2f jobs-tasktime=%.2f bytes-tasktime=%.2f\n",
			r.Correlations.JobsBytes, r.Correlations.JobsTaskSeconds, r.Correlations.BytesTaskSeconds)
		fmt.Fprintln(w)
	}
	if r.Names != nil {
		fmt.Fprintln(w, "-- Figure 10: job name first words --")
		tb := report.NewTable("word", "% jobs", "% bytes", "% task-time")
		for _, g := range r.Names.Groups {
			tb.AddRow(g.Word, report.Percent(g.JobsFraction),
				report.Percent(g.BytesFraction), report.Percent(g.TaskTimeFraction))
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if r.Clusters != nil {
		fmt.Fprintln(w, "-- Table 2: job types (k-means) --")
		tb := report.NewTable("# Jobs", "Input", "Shuffle", "Output", "Duration", "Map time", "Reduce time", "Label")
		for _, jt := range r.Clusters.Types {
			tb.AddRow(
				fmt.Sprintf("%d", jt.Count),
				jt.Input.String(), jt.Shuffle.String(), jt.Output.String(),
				units.FormatDuration(jt.Duration),
				fmt.Sprintf("%.0f", float64(jt.MapTime)),
				fmt.Sprintf("%.0f", float64(jt.Reduce)),
				jt.Label,
			)
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "small-job fraction: %s (paper: >90%% in all workloads)\n\n",
			report.Percent(r.Clusters.SmallJobFraction))
	}
	return nil
}
