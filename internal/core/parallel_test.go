package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
)

// reportBytes marshals a report's wire form — the representation the
// byte-identity contract is stated over.
func reportBytes(t testing.TB, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep.JSON())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelAnalyzeByteIdentical is the acceptance gate for the
// shard-parallel path: AnalyzeSourceParallel at every shard count must
// produce Report.JSON() bytes identical to the sequential AnalyzeSource
// on the FB-2009 seed-1 day-1 golden trace, in both exact and sketch
// Figure 1 modes. CI also runs this test under -race to exercise the
// worker pool.
func TestParallelAnalyzeByteIdentical(t *testing.T) {
	tr := goldenTrace(t)
	for _, sketch := range []bool{false, true} {
		seq, err := AnalyzeSource(trace.NewSliceSource(tr), AnalyzeOptions{SketchDataSizes: sketch})
		if err != nil {
			t.Fatal(err)
		}
		want := reportBytes(t, seq)
		shardCounts := []int{1, 2, 3, 5, 8, 16, 61, runtime.GOMAXPROCS(0)}
		for _, k := range shardCounts {
			opts := AnalyzeOptions{Shards: k, SketchDataSizes: sketch}
			par, err := AnalyzeSourceParallel(trace.NewSliceSource(tr), opts)
			if err != nil {
				t.Fatalf("sketch=%v K=%d: %v", sketch, k, err)
			}
			if got := reportBytes(t, par); !bytes.Equal(got, want) {
				t.Errorf("sketch=%v K=%d: parallel report differs from sequential (first diff at byte %d of %d)",
					sketch, k, firstDiff(got, want), len(want))
			}
			// The trace-snapshot entry point must agree too.
			parT, err := AnalyzeTraceParallel(tr, opts)
			if err != nil {
				t.Fatalf("sketch=%v K=%d (trace): %v", sketch, k, err)
			}
			if got := reportBytes(t, parT); !bytes.Equal(got, want) {
				t.Errorf("sketch=%v K=%d: AnalyzeTraceParallel differs from sequential", sketch, k)
			}
		}
	}
}

// TestAnalyzeSourceRoutesShards: the plain AnalyzeSource entry point
// honors opts.Shards, so the façade and CLIs need no second code path.
func TestAnalyzeSourceRoutesShards(t *testing.T) {
	tr := goldenTrace(t)
	seq, err := AnalyzeSource(trace.NewSliceSource(tr), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := AnalyzeSource(trace.NewSliceSource(tr), AnalyzeOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, seq), reportBytes(t, par)) {
		t.Error("AnalyzeSource with Shards=4 differs from sequential")
	}
}

// TestBuildTracePartialMatchesSequential: the ingest-time aggregate the
// serving layer precomputes is the same object the parallel path
// merges, at any build parallelism.
func TestBuildTracePartialMatchesSequential(t *testing.T) {
	tr := goldenTrace(t)
	seqP, err := BuildPartial(trace.NewSliceSource(tr), false)
	if err != nil {
		t.Fatal(err)
	}
	seqRep, err := seqP.Report(0)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, seqRep)
	for _, k := range []int{1, 3, 8} {
		p, err := BuildTracePartial(tr, k, false)
		if err != nil {
			t.Fatal(err)
		}
		if p.Jobs() != tr.Len() {
			t.Fatalf("k=%d: partial observed %d jobs, want %d", k, p.Jobs(), tr.Len())
		}
		rep, err := p.Report(0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reportBytes(t, rep), want) {
			t.Errorf("k=%d: partial-built report differs from sequential", k)
		}
		// Finalization is repeatable on a frozen partial.
		rep2, err := p.Report(0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reportBytes(t, rep2), want) {
			t.Errorf("k=%d: second finalization differs from the first", k)
		}
	}
}

// TestPartialMergeModeMismatch: exact and sketch partials refuse to
// merge rather than silently mixing Figure 1 representations.
func TestPartialMergeModeMismatch(t *testing.T) {
	meta := trace.Meta{Name: "m", Start: time.Unix(0, 0).UTC(), Length: 4 * time.Hour}
	a, err := NewPartial(meta, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPartial(meta, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("merging exact with sketch partial did not error")
	}
}

// benchTrace generates the two-week CC-b trace the serving benchmarks
// also use (~11k jobs) — a realistic interactive-analytics target.
func benchTrace(tb testing.TB) *trace.Trace {
	tb.Helper()
	p, err := profile.ByName("CC-b")
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 1, Duration: 14 * 24 * time.Hour})
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

// BenchmarkParallelAnalyze records the shard-parallel speedup: the same
// streaming analysis at K=1 (sequential) versus fixed shard counts and
// K=NumCPU. The K=1 vs K=NumCPU ratio is the headline number appended
// to BENCH_ANALYZE.json by the CI trend step; on a single-core runner
// K=NumCPU degenerates to K=1 and the ratio is 1 by construction.
func BenchmarkParallelAnalyze(b *testing.B) {
	tr := benchTrace(b)
	ks := []int{1, 2, 4}
	ncpu := runtime.GOMAXPROCS(0)
	seen := map[int]bool{1: true, 2: true, 4: true}
	if !seen[ncpu] {
		ks = append(ks, ncpu)
	}
	for _, k := range ks {
		name := fmt.Sprintf("K=%d", k)
		if k == ncpu {
			name = fmt.Sprintf("K=NumCPU(%d)", k)
		}
		b.Run(name, func(b *testing.B) {
			opts := AnalyzeOptions{Shards: k}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzeTraceParallel(tr, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
