package core

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Study runs the cross-industry comparison: generate (or accept) one trace
// per workload, analyze each, and compute the cross-workload aggregates
// the paper's summary section reports.
type Study struct {
	// Workloads in Table 1 order.
	Workloads []string
	// Traces and Reports keyed by workload name.
	Traces  map[string]*trace.Trace
	Reports map[string]*Report
}

// StudyConfig controls a study run.
type StudyConfig struct {
	// Window is the generated trace length per workload (default 14 days).
	Window time.Duration
	// Seed drives generation.
	Seed int64
	// Workloads restricts the set (default: all seven).
	Workloads []string
	// Analyze options applied per workload.
	Analyze AnalyzeOptions
}

// RunStudy generates and analyzes every requested workload.
func RunStudy(cfg StudyConfig) (*Study, error) {
	if cfg.Window == 0 {
		cfg.Window = 14 * 24 * time.Hour
	}
	names := cfg.Workloads
	if len(names) == 0 {
		names = profile.Names()
	}
	st := &Study{
		Workloads: names,
		Traces:    make(map[string]*trace.Trace, len(names)),
		Reports:   make(map[string]*Report, len(names)),
	}
	for _, name := range names {
		p, err := profile.ByName(name)
		if err != nil {
			return nil, err
		}
		tr, err := gen.Generate(gen.Config{Profile: p, Seed: cfg.Seed, Duration: cfg.Window})
		if err != nil {
			return nil, fmt.Errorf("core: generating %s: %w", name, err)
		}
		rep, err := Analyze(tr, cfg.Analyze)
		if err != nil {
			return nil, fmt.Errorf("core: analyzing %s: %w", name, err)
		}
		st.Traces[name] = tr
		st.Reports[name] = rep
	}
	return st, nil
}

// CrossWorkload aggregates the study-level findings.
type CrossWorkload struct {
	// MedianSpans: orders of magnitude separating per-workload medians of
	// input/shuffle/output sizes (Figure 1's headline: 6 / 8 / 4).
	InputSpan, ShuffleSpan, OutputSpan float64
	// Correlation averages across workloads (Figure 9: 0.21 / 0.14 / 0.62).
	AvgJobsBytes, AvgJobsTask, AvgBytesTask float64
	// Burstiness extremes (Figure 8: 9:1 .. 260:1).
	MinPeakToMedian, MaxPeakToMedian float64
	// SmallJobFractions per workload (Table 2: >90% everywhere).
	SmallJobFractions map[string]float64
}

// Aggregate computes the cross-workload findings from a completed study.
func (st *Study) Aggregate() (*CrossWorkload, error) {
	if len(st.Reports) == 0 {
		return nil, fmt.Errorf("core: empty study")
	}
	cw := &CrossWorkload{SmallJobFractions: map[string]float64{}}
	var all []*analysis.DataSizes
	n := 0.0
	first := true
	for _, name := range st.Workloads {
		rep := st.Reports[name]
		if rep == nil {
			return nil, fmt.Errorf("core: missing report for %s", name)
		}
		all = append(all, rep.DataSizes)
		if rep.Correlations != nil {
			cw.AvgJobsBytes += rep.Correlations.JobsBytes
			cw.AvgJobsTask += rep.Correlations.JobsTaskSeconds
			cw.AvgBytesTask += rep.Correlations.BytesTaskSeconds
			n++
		}
		if rep.PeakToMedian > 0 {
			if first || rep.PeakToMedian < cw.MinPeakToMedian {
				cw.MinPeakToMedian = rep.PeakToMedian
			}
			if rep.PeakToMedian > cw.MaxPeakToMedian {
				cw.MaxPeakToMedian = rep.PeakToMedian
			}
			first = false
		}
		if rep.Clusters != nil {
			cw.SmallJobFractions[name] = rep.Clusters.SmallJobFraction
		}
	}
	cw.InputSpan, cw.ShuffleSpan, cw.OutputSpan = analysis.MedianSpanAcrossWorkloads(all)
	if n > 0 {
		cw.AvgJobsBytes /= n
		cw.AvgJobsTask /= n
		cw.AvgBytesTask /= n
	}
	return cw, nil
}
