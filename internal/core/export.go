package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/stats"
)

// ExportCSV writes the report's figure data as CSV files into dir (created
// if missing), one file per figure, so the paper's plots can be recreated
// with any plotting tool:
//
//	fig1_datasizes.csv    per-job size CDFs (dimension, bytes, fraction)
//	fig2_access_freq.csv  rank, frequency (input and output)
//	fig3_input_sizes.csv  file size vs jobs-fraction and bytes-fraction
//	fig4_output_sizes.csv same for outputs
//	fig5_intervals.csv    re-access interval CDFs
//	fig7_timeseries.csv   hourly jobs/bytes/task-seconds series
//	fig8_burstiness.csv   percentile, ratio-to-median
//	fig10_names.csv       word, jobs/bytes/task-time fractions
//	table2_jobtypes.csv   recovered job-type clusters
//
// Files for analyses absent from the report are skipped.
func (r *Report) ExportCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: creating export dir: %w", err)
	}
	if r.DataSizes != nil {
		tb := report.NewTable("dimension", "bytes", "fraction_of_jobs")
		addCDF := func(name string, c stats.Distribution) {
			for _, p := range c.LogPoints(10) {
				tb.AddRow(name, formatF(p.X), formatF(p.Y))
			}
		}
		addCDF("input", r.DataSizes.Input)
		addCDF("shuffle", r.DataSizes.Shuffle)
		addCDF("output", r.DataSizes.Output)
		if err := writeCSV(dir, "fig1_datasizes.csv", tb); err != nil {
			return err
		}
	}
	if r.InputAccess != nil {
		tb := report.NewTable("kind", "rank", "frequency")
		for i, f := range r.InputAccess.Frequencies {
			tb.AddRow("input", strconv.Itoa(i+1), strconv.FormatUint(f, 10))
		}
		if r.OutputAccess != nil {
			for i, f := range r.OutputAccess.Frequencies {
				tb.AddRow("output", strconv.Itoa(i+1), strconv.FormatUint(f, 10))
			}
		}
		if err := writeCSV(dir, "fig2_access_freq.csv", tb); err != nil {
			return err
		}
	}
	if r.InputSizeAccess != nil {
		if err := writeSizeAccess(dir, "fig3_input_sizes.csv", r.InputSizeAccess); err != nil {
			return err
		}
	}
	if r.OutputSizeAccess != nil {
		if err := writeSizeAccess(dir, "fig4_output_sizes.csv", r.OutputSizeAccess); err != nil {
			return err
		}
	}
	if r.Intervals != nil {
		tb := report.NewTable("kind", "interval_seconds", "fraction")
		for _, p := range r.Intervals.InputInput.LogPoints(10) {
			tb.AddRow("input-input", formatF(p.X), formatF(p.Y))
		}
		if r.Intervals.OutputInput != nil {
			for _, p := range r.Intervals.OutputInput.LogPoints(10) {
				tb.AddRow("output-input", formatF(p.X), formatF(p.Y))
			}
		}
		if err := writeCSV(dir, "fig5_intervals.csv", tb); err != nil {
			return err
		}
	}
	if r.Series != nil {
		tb := report.NewTable("hour", "jobs", "bytes", "task_seconds", "task_seconds_spread")
		for h := range r.Series.Jobs {
			tb.AddRow(strconv.Itoa(h),
				formatF(r.Series.Jobs[h]),
				formatF(r.Series.Bytes[h]),
				formatF(r.Series.TaskSeconds[h]),
				formatF(r.Series.TaskSecondsSpread[h]))
		}
		if err := writeCSV(dir, "fig7_timeseries.csv", tb); err != nil {
			return err
		}
		if curve, err := r.Series.BurstinessOf(); err == nil {
			tb := report.NewTable("percentile", "ratio_to_median")
			for i := range curve.Percentiles {
				tb.AddRow(formatF(curve.Percentiles[i]), formatF(curve.Ratios[i]))
			}
			if err := writeCSV(dir, "fig8_burstiness.csv", tb); err != nil {
				return err
			}
		}
	}
	if r.Names != nil {
		tb := report.NewTable("word", "jobs_fraction", "bytes_fraction", "task_time_fraction")
		for _, g := range r.Names.Groups {
			tb.AddRow(g.Word, formatF(g.JobsFraction), formatF(g.BytesFraction), formatF(g.TaskTimeFraction))
		}
		if err := writeCSV(dir, "fig10_names.csv", tb); err != nil {
			return err
		}
	}
	if r.Clusters != nil {
		tb := report.NewTable("count", "input_bytes", "shuffle_bytes", "output_bytes",
			"duration_seconds", "map_task_seconds", "reduce_task_seconds", "label")
		for _, jt := range r.Clusters.Types {
			tb.AddRow(
				strconv.Itoa(jt.Count),
				strconv.FormatInt(int64(jt.Input), 10),
				strconv.FormatInt(int64(jt.Shuffle), 10),
				strconv.FormatInt(int64(jt.Output), 10),
				formatF(jt.Duration.Seconds()),
				formatF(float64(jt.MapTime)),
				formatF(float64(jt.Reduce)),
				jt.Label)
		}
		if err := writeCSV(dir, "table2_jobtypes.csv", tb); err != nil {
			return err
		}
	}
	return nil
}

func writeSizeAccess(dir, name string, sa *analysis.SizeAccess) error {
	tb := report.NewTable("curve", "file_size_bytes", "fraction")
	for _, p := range sa.JobsCDF.LogPoints(10) {
		tb.AddRow("jobs", formatF(p.X), formatF(p.Y))
	}
	for _, p := range sa.BytesCDF {
		tb.AddRow("stored_bytes", formatF(p.X), formatF(p.Y))
	}
	return writeCSV(dir, name, tb)
}

func writeCSV(dir, name string, tb *report.Table) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	if err := tb.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func formatF(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}
