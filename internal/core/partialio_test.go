package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
)

func snapshotTrace(t testing.TB) *trace.Trace {
	t.Helper()
	p, err := profile.ByName("FB-2009")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 1, Duration: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// partialReportBytes finalizes a partial and marshals the wire form — the
// exact bytes swimd serves, which is what restart round-trips must
// preserve.
func partialReportBytes(t testing.TB, p *Partial) []byte {
	t.Helper()
	rep, err := p.Report(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep.JSON())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPartialSnapshotRoundTrip: encode → decode preserves the report
// bytes exactly, in both exact and sketch modes, and the decoded
// partial still merges with live shards.
func TestPartialSnapshotRoundTrip(t *testing.T) {
	tr := snapshotTrace(t)
	for _, sketch := range []bool{false, true} {
		p, err := BuildTracePartial(tr, 1, sketch)
		if err != nil {
			t.Fatal(err)
		}
		want := partialReportBytes(t, p)

		snap, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalPartial(snap)
		if err != nil {
			t.Fatalf("sketch=%v: %v", sketch, err)
		}
		if got.Jobs() != p.Jobs() || got.Sketch() != sketch || got.Meta() != p.Meta() {
			t.Fatalf("sketch=%v: identity drifted: jobs %d/%d meta %+v vs %+v",
				sketch, got.Jobs(), p.Jobs(), got.Meta(), p.Meta())
		}
		if !bytes.Equal(partialReportBytes(t, got), want) {
			t.Errorf("sketch=%v: decoded snapshot renders different report bytes", sketch)
		}

		// The decoded partial is a valid merge partner: merging the
		// decoded halves of a split trace matches the whole.
		k := 3
		shards, err := trace.SplitTrace(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := BuildShardsPartial(tr.Meta, shards[:1], sketch)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range shards[1:] {
			sp, err := BuildPartial(s, sketch)
			if err != nil {
				t.Fatal(err)
			}
			enc, err := sp.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := UnmarshalPartial(enc)
			if err != nil {
				t.Fatal(err)
			}
			if err := merged.Merge(dec); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(partialReportBytes(t, merged), want) {
			t.Errorf("sketch=%v: merge of decoded shard snapshots drifted from sequential report", sketch)
		}
	}
}

// TestPartialSnapshotRejectsCorruption: bad magic, wrong version,
// truncation, and trailing garbage all fail loudly.
func TestPartialSnapshotRejectsCorruption(t *testing.T) {
	tr := snapshotTrace(t)
	p, err := BuildTracePartial(tr, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := UnmarshalPartial([]byte("not a snapshot")); err == nil {
		t.Error("bad magic accepted")
	}

	future := append([]byte(nil), snap...)
	future[len(partialMagic)] = 0x7f // version byte
	if _, err := UnmarshalPartial(future); err == nil {
		t.Error("future version accepted")
	}

	if _, err := UnmarshalPartial(snap[:len(snap)/2]); err == nil {
		t.Error("truncated snapshot accepted")
	}

	trailing := append(append([]byte(nil), snap...), 0xde, 0xad)
	if _, err := UnmarshalPartial(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
}
