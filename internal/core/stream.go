package core

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/trace"
)

// AnalyzeSource runs the measurement methodology over a streamed trace in
// a single pass. It computes every analysis that does not need random
// access over the whole job set:
//
//   - the Table-1 summary,
//   - Figure 1 data-size distributions (exact by default; fixed-memory
//     sketches with opts.SketchDataSizes),
//   - the Figures 7–9 hourly series with burstiness and correlations,
//   - the Figure 10 job-name breakdown.
//
// Memory is O(trace hours + name vocabulary), independent of job count
// (plus 24 B/job for exact Figure 1 unless opts.SketchDataSizes). The
// analyses that genuinely need the whole trace in memory — Table-2
// k-means and the path-based Figures 2–6 — are left nil; set
// opts.Materialize to collect the stream and run the full Analyze
// instead.
//
// Because the per-analysis builders are the same code the materialized
// Analyze runs, a streaming report's sections are identical to the
// corresponding sections of Analyze on the collected trace.
func AnalyzeSource(src trace.Source, opts AnalyzeOptions) (*Report, error) {
	if opts.Materialize {
		t, err := trace.Collect(src)
		if err != nil {
			return nil, err
		}
		return Analyze(t, opts)
	}
	if opts.TopNames == 0 {
		opts.TopNames = 8
	}
	meta := src.Meta()
	if meta.Length <= 0 {
		return nil, fmt.Errorf("core: streaming analysis needs metadata with a positive trace length (set Materialize for span-derived traces)")
	}
	sum := trace.NewSummaryAccumulator(meta)
	dsb := analysis.NewDataSizeBuilder(meta.Name, opts.SketchDataSizes)
	tsb, err := analysis.NewTimeSeriesBuilder(meta.Name, meta.Start, meta.Length)
	if err != nil {
		return nil, err
	}
	nb := analysis.NewNamesBuilder(meta.Name)
	n := 0
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		n++
		sum.Observe(j)
		dsb.Observe(j)
		tsb.Observe(j)
		nb.Observe(j)
	}
	if n == 0 {
		return nil, fmt.Errorf("core: cannot analyze an empty trace")
	}
	rep := &Report{Summary: sum.Summary()}
	ds, err := dsb.Result()
	if err != nil {
		return nil, err
	}
	rep.DataSizes = ds
	series := tsb.Series()
	rep.Series = series
	if b, err := series.BurstinessOf(); err == nil {
		rep.PeakToMedian = b.PeakToMedian
	}
	if c, err := series.Correlate(); err == nil {
		rep.Correlations = c
	}
	if na, err := nb.Result(opts.TopNames); err == nil {
		rep.Names = na
	}
	return rep, nil
}
