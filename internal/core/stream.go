package core

import (
	"fmt"
	"io"

	"repro/internal/trace"
)

func errNeedsLength() error {
	return fmt.Errorf("core: streaming analysis needs metadata with a positive trace length (set Materialize for span-derived traces)")
}

// AnalyzeSource runs the measurement methodology over a streamed trace.
// It computes every analysis that does not need random access over the
// whole job set:
//
//   - the Table-1 summary,
//   - Figure 1 data-size distributions (exact by default; fixed-memory
//     sketches with opts.SketchDataSizes),
//   - the Figures 7–9 hourly series with burstiness and correlations,
//   - the Figure 10 job-name breakdown.
//
// By default the stream is analyzed in a single sequential pass: memory
// is O(trace hours + name vocabulary), independent of job count (plus
// 24 B/job for exact Figure 1 unless opts.SketchDataSizes). With
// opts.Shards > 1 the stream is instead analyzed shard-parallel (see
// AnalyzeSourceParallel) — same report bytes, wall-clock divided across
// CPUs, at the cost of holding the job set in memory. The analyses that
// genuinely need the whole trace in memory — Table-2 k-means and the
// path-based Figures 2–6 — are left nil; set opts.Materialize to
// collect the stream and run the full Analyze instead.
//
// Because the per-analysis builders are the same mergeable aggregates
// the materialized Analyze and the parallel path run, a streaming
// report's sections are identical to the corresponding sections of
// Analyze on the collected trace.
func AnalyzeSource(src trace.Source, opts AnalyzeOptions) (*Report, error) {
	if opts.Materialize {
		t, err := trace.Collect(src)
		if err != nil {
			return nil, err
		}
		return Analyze(t, opts)
	}
	if opts.Shards > 1 {
		return AnalyzeSourceParallel(src, opts)
	}
	return analyzeStream(src, opts)
}

// analyzeStream is the sequential one-pass body: one Partial aggregate
// observes every job, then finalizes.
func analyzeStream(src trace.Source, opts AnalyzeOptions) (*Report, error) {
	meta := src.Meta()
	if meta.Length <= 0 {
		return nil, errNeedsLength()
	}
	p, err := NewPartial(meta, opts.SketchDataSizes)
	if err != nil {
		return nil, err
	}
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		p.Observe(j)
	}
	return p.Report(opts.TopNames)
}
