package core

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/stats"
)

// JSON export of a Report. The in-memory Report is built for Go callers
// — distributions are behind the stats.Distribution interface, durations
// are time.Duration — so it does not json.Marshal usefully. ReportJSON
// is the wire form the serving layer returns: every section the report
// carries, flattened to plain numbers and point lists, with absent
// sections omitted (mirroring the nil-section convention of Report).
// Distributions are exported as summary quantiles plus the same
// log-spaced CDF points ExportCSV writes, so any client can re-plot the
// paper's figures from one response.

// PointJSON is one (x, cumulative fraction) CDF sample.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// DistributionJSON summarizes one empirical distribution.
type DistributionJSON struct {
	Count  int     `json:"count"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	// Points samples the CDF at 10 points per decade over the positive
	// support, matching the paper's log x-axes.
	Points []PointJSON `json:"points,omitempty"`
}

// SummaryJSON is the Table-1 row.
type SummaryJSON struct {
	Name       string `json:"name"`
	Machines   int    `json:"machines,omitempty"`
	LengthMS   int64  `json:"length_ms"`
	Jobs       int    `json:"jobs"`
	BytesMoved int64  `json:"bytes_moved"`
}

// DataSizesJSON is Figure 1.
type DataSizesJSON struct {
	Input   *DistributionJSON `json:"input"`
	Shuffle *DistributionJSON `json:"shuffle"`
	Output  *DistributionJSON `json:"output"`
}

// AccessFrequencyJSON is one Figure 2 panel.
type AccessFrequencyJSON struct {
	ZipfAlpha     float64  `json:"zipf_alpha"`
	ZipfR2        float64  `json:"zipf_r2"`
	DistinctFiles int      `json:"distinct_files"`
	TotalAccesses int      `json:"total_accesses"`
	Frequencies   []uint64 `json:"frequencies"`
}

// SizeAccessJSON is one Figure 3/4 panel.
type SizeAccessJSON struct {
	JobsCDF       *DistributionJSON `json:"jobs_cdf"`
	BytesCDF      []PointJSON       `json:"bytes_cdf"`
	TotalStored   int64             `json:"total_stored_bytes"`
	DistinctFiles int               `json:"distinct_files"`
	EightyRule    float64           `json:"eighty_rule"`
}

// IntervalsJSON is Figure 5.
type IntervalsJSON struct {
	InputInput  *DistributionJSON `json:"input_input"`
	OutputInput *DistributionJSON `json:"output_input,omitempty"`
	Within6h    float64           `json:"fraction_within_6h"`
}

// ReaccessJSON is Figure 6.
type ReaccessJSON struct {
	InputReaccess    float64 `json:"input_reaccess"`
	OutputReaccess   float64 `json:"output_reaccess"`
	OutputObservable bool    `json:"output_observable"`
}

// SeriesJSON is the hourly view behind Figures 7-9.
type SeriesJSON struct {
	StartUnixMS       int64     `json:"start_unix_ms"`
	Jobs              []float64 `json:"jobs"`
	Bytes             []float64 `json:"bytes"`
	TaskSeconds       []float64 `json:"task_seconds"`
	TaskSecondsSpread []float64 `json:"task_seconds_spread"`
}

// CorrelationsJSON is Figure 9.
type CorrelationsJSON struct {
	JobsBytes        float64 `json:"jobs_bytes"`
	JobsTaskSeconds  float64 `json:"jobs_task_seconds"`
	BytesTaskSeconds float64 `json:"bytes_task_seconds"`
}

// NameGroupJSON is one Figure 10 bar.
type NameGroupJSON struct {
	Word             string  `json:"word"`
	JobsFraction     float64 `json:"jobs_fraction"`
	BytesFraction    float64 `json:"bytes_fraction"`
	TaskTimeFraction float64 `json:"task_time_fraction"`
}

// NamesJSON is Figure 10.
type NamesJSON struct {
	Groups        []NameGroupJSON `json:"groups"`
	DistinctWords int             `json:"distinct_words"`
}

// JobTypeJSON is one Table 2 row.
type JobTypeJSON struct {
	Count       int     `json:"count"`
	Input       int64   `json:"input_bytes"`
	Shuffle     int64   `json:"shuffle_bytes"`
	Output      int64   `json:"output_bytes"`
	DurationSec float64 `json:"duration_seconds"`
	MapTime     float64 `json:"map_task_seconds"`
	ReduceTime  float64 `json:"reduce_task_seconds"`
	Label       string  `json:"label"`
}

// ClustersJSON is Table 2.
type ClustersJSON struct {
	Types            []JobTypeJSON `json:"types"`
	K                int           `json:"k"`
	SmallJobFraction float64       `json:"small_job_fraction"`
}

// ReportJSON is the serializable form of a full Report.
type ReportJSON struct {
	Summary          SummaryJSON          `json:"summary"`
	DataSizes        *DataSizesJSON       `json:"data_sizes,omitempty"`
	InputAccess      *AccessFrequencyJSON `json:"input_access,omitempty"`
	OutputAccess     *AccessFrequencyJSON `json:"output_access,omitempty"`
	InputSizeAccess  *SizeAccessJSON      `json:"input_size_access,omitempty"`
	OutputSizeAccess *SizeAccessJSON      `json:"output_size_access,omitempty"`
	Intervals        *IntervalsJSON       `json:"reaccess_intervals,omitempty"`
	Reaccess         *ReaccessJSON        `json:"reaccess_fractions,omitempty"`
	Series           *SeriesJSON          `json:"hourly_series,omitempty"`
	PeakToMedian     float64              `json:"peak_to_median,omitempty"`
	Correlations     *CorrelationsJSON    `json:"correlations,omitempty"`
	Names            *NamesJSON           `json:"job_names,omitempty"`
	Clusters         *ClustersJSON        `json:"job_clusters,omitempty"`
}

// distJSON flattens a Distribution; nil in, nil out.
func distJSON(d stats.Distribution) *DistributionJSON {
	if d == nil {
		return nil
	}
	out := &DistributionJSON{
		Count:  d.Len(),
		Min:    d.Min(),
		Max:    d.Max(),
		P25:    d.Quantile(0.25),
		Median: d.Median(),
		P75:    d.Quantile(0.75),
		P90:    d.Quantile(0.90),
		P99:    d.Quantile(0.99),
	}
	for _, p := range d.LogPoints(10) {
		out.Points = append(out.Points, PointJSON{X: p.X, Y: p.Y})
	}
	return out
}

func pointsJSON(ps []stats.Point) []PointJSON {
	out := make([]PointJSON, len(ps))
	for i, p := range ps {
		out[i] = PointJSON{X: p.X, Y: p.Y}
	}
	return out
}

func accessJSON(af *analysis.AccessFrequency) *AccessFrequencyJSON {
	if af == nil {
		return nil
	}
	return &AccessFrequencyJSON{
		ZipfAlpha:     af.Fit.Alpha,
		ZipfR2:        af.Fit.R2,
		DistinctFiles: af.DistinctFiles,
		TotalAccesses: af.TotalAccesses,
		Frequencies:   af.Frequencies,
	}
}

func sizeAccessJSON(sa *analysis.SizeAccess) *SizeAccessJSON {
	if sa == nil {
		return nil
	}
	return &SizeAccessJSON{
		JobsCDF:       distJSON(sa.JobsCDF),
		BytesCDF:      pointsJSON(sa.BytesCDF),
		TotalStored:   int64(sa.TotalStored),
		DistinctFiles: sa.DistinctFiles,
		EightyRule:    sa.EightyRule(),
	}
}

// JSON converts the report to its serializable wire form.
func (r *Report) JSON() *ReportJSON {
	out := &ReportJSON{
		Summary: SummaryJSON{
			Name:       r.Summary.Name,
			Machines:   r.Summary.Machines,
			LengthMS:   r.Summary.Length.Milliseconds(),
			Jobs:       r.Summary.Jobs,
			BytesMoved: int64(r.Summary.BytesMoved),
		},
		PeakToMedian: r.PeakToMedian,
	}
	if r.DataSizes != nil {
		out.DataSizes = &DataSizesJSON{
			Input:   distJSON(r.DataSizes.Input),
			Shuffle: distJSON(r.DataSizes.Shuffle),
			Output:  distJSON(r.DataSizes.Output),
		}
	}
	out.InputAccess = accessJSON(r.InputAccess)
	out.OutputAccess = accessJSON(r.OutputAccess)
	out.InputSizeAccess = sizeAccessJSON(r.InputSizeAccess)
	out.OutputSizeAccess = sizeAccessJSON(r.OutputSizeAccess)
	if iv := r.Intervals; iv != nil {
		out.Intervals = &IntervalsJSON{
			InputInput: distJSON(iv.InputInput),
			Within6h:   iv.FractionWithin(6 * time.Hour),
		}
		if iv.OutputInput != nil {
			out.Intervals.OutputInput = distJSON(iv.OutputInput)
		}
	}
	if rf := r.Reaccess; rf != nil {
		out.Reaccess = &ReaccessJSON{
			InputReaccess:    rf.InputReaccess,
			OutputReaccess:   rf.OutputReaccess,
			OutputObservable: rf.OutputObservable,
		}
	}
	if s := r.Series; s != nil {
		out.Series = &SeriesJSON{
			StartUnixMS:       s.Start.UnixMilli(),
			Jobs:              s.Jobs,
			Bytes:             s.Bytes,
			TaskSeconds:       s.TaskSeconds,
			TaskSecondsSpread: s.TaskSecondsSpread,
		}
	}
	if c := r.Correlations; c != nil {
		out.Correlations = &CorrelationsJSON{
			JobsBytes:        c.JobsBytes,
			JobsTaskSeconds:  c.JobsTaskSeconds,
			BytesTaskSeconds: c.BytesTaskSeconds,
		}
	}
	if n := r.Names; n != nil {
		nj := &NamesJSON{DistinctWords: n.DistinctWords}
		for _, g := range n.Groups {
			nj.Groups = append(nj.Groups, NameGroupJSON{
				Word:             g.Word,
				JobsFraction:     g.JobsFraction,
				BytesFraction:    g.BytesFraction,
				TaskTimeFraction: g.TaskTimeFraction,
			})
		}
		out.Names = nj
	}
	if jc := r.Clusters; jc != nil {
		cj := &ClustersJSON{K: jc.K, SmallJobFraction: jc.SmallJobFraction}
		for _, jt := range jc.Types {
			cj.Types = append(cj.Types, JobTypeJSON{
				Count:       jt.Count,
				Input:       int64(jt.Input),
				Shuffle:     int64(jt.Shuffle),
				Output:      int64(jt.Output),
				DurationSec: jt.Duration.Seconds(),
				MapTime:     float64(jt.MapTime),
				ReduceTime:  float64(jt.Reduce),
				Label:       jt.Label,
			})
		}
		out.Clusters = cj
	}
	return out
}

// WriteJSON writes the report's wire form to w, newline-terminated.
func (r *Report) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r.JSON())
}
