package core

import (
	"io"
	"runtime"
	"sync"

	"repro/internal/trace"
)

// The shard-parallel execution path: scatter a trace into K contiguous
// ordered shards, build one Partial per shard on a bounded worker pool,
// and merge the partials in deterministic shard order. Because every
// section builder is an exact mergeable aggregate (see Partial), the
// merged report's JSON() bytes are identical to the sequential
// AnalyzeSource result at any shard count — the agreement is gated by
// TestParallelAnalyzeByteIdentical on the FB-2009 golden trace, and
// BenchmarkParallelAnalyze records the K=1 vs K=NumCPU speedup.

// shardCount resolves opts.Shards: 0 means one shard per available CPU.
func shardCount(opts AnalyzeOptions) int {
	k := opts.Shards
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k < 1 {
		k = 1
	}
	return k
}

// AnalyzeSourceParallel is the scatter/gather form of AnalyzeSource: it
// drains src, splits the jobs into opts.Shards contiguous shards
// (default: one per CPU), analyzes them concurrently, and merges the
// shard partials in shard order. The report is byte-identical to the
// sequential AnalyzeSource at any shard count; the cost is holding the
// job set in memory while the shards run (like Materialize), so the
// sequential path remains the choice for paper-length traces that must
// stream in constant memory. Materialize mode collects and runs the
// full Analyze, exactly as AnalyzeSource does — the materialized-only
// analyses (Figures 2–6, Table 2) are not sharded.
func AnalyzeSourceParallel(src trace.Source, opts AnalyzeOptions) (*Report, error) {
	if opts.Materialize {
		t, err := trace.Collect(src)
		if err != nil {
			return nil, err
		}
		return Analyze(t, opts)
	}
	k := shardCount(opts)
	if k == 1 {
		return analyzeStream(src, opts)
	}
	meta := src.Meta()
	if meta.Length <= 0 {
		return nil, errNeedsLength()
	}
	shards, err := trace.Split(src, k)
	if err != nil {
		return nil, err
	}
	p, err := mergeShardPartials(meta, shards, opts.SketchDataSizes)
	if err != nil {
		return nil, err
	}
	return p.Report(opts.TopNames)
}

// AnalyzeTraceParallel runs the shard-parallel streaming analysis over
// an in-memory trace without copying jobs — the form the serving layer
// uses on stored snapshots.
func AnalyzeTraceParallel(t *trace.Trace, opts AnalyzeOptions) (*Report, error) {
	p, err := BuildTracePartial(t, shardCount(opts), opts.SketchDataSizes)
	if err != nil {
		return nil, err
	}
	return p.Report(opts.TopNames)
}

// BuildTracePartial builds the full-trace partial aggregate with k
// parallel shards (k < 1 selects one per CPU). The result is identical
// to a sequential BuildPartial over the same trace; the serving layer
// calls this at ingest time to precompute the frozen per-trace
// aggregate cold reports merge from.
func BuildTracePartial(t *trace.Trace, k int, sketch bool) (*Partial, error) {
	if k < 1 {
		k = runtime.GOMAXPROCS(0)
	}
	if k == 1 {
		return BuildPartial(trace.NewSliceSource(t), sketch)
	}
	shards, err := trace.SplitTrace(t, k)
	if err != nil {
		return nil, err
	}
	return mergeShardPartials(t.Meta, shards, sketch)
}

// BuildShardsPartial builds the merged partial aggregate of pre-split
// shard sources — the out-of-core path: the durable storage engine
// hands one Source per on-disk segment, so a trace larger than memory
// is scanned segment-at-a-time across the CPUs without ever being
// collected. Every shard must carry the full trace's metadata (the
// merge contract trace.Split establishes); the merged result is
// identical to a sequential BuildPartial over the concatenated shards.
func BuildShardsPartial(meta trace.Meta, shards []trace.Source, sketch bool) (*Partial, error) {
	if meta.Length <= 0 {
		return nil, errNeedsLength()
	}
	if len(shards) == 0 {
		return NewPartial(meta, sketch)
	}
	return mergeShardPartials(meta, shards, sketch)
}

// mergeShardPartials analyzes the shards on a worker pool bounded by
// the CPU count and merges the per-shard partials in shard order.
func mergeShardPartials(meta trace.Meta, shards []trace.Source, sketch bool) (*Partial, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(shards) {
		workers = len(shards)
	}
	parts := make([]*Partial, len(shards))
	errs := make([]error, len(shards))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				parts[i], errs[i] = BuildPartial(shards[i], sketch)
			}
		}()
	}
	for i := range shards {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// A failed shard leaves its source — and possibly siblings —
			// mid-stream; close whatever holds resources (disk shards own
			// file descriptors) before abandoning the scan. Close after
			// EOF is a no-op, so closing every shard is safe.
			for _, sh := range shards {
				if cl, ok := sh.(io.Closer); ok {
					cl.Close()
				}
			}
			return nil, err
		}
	}
	merged := parts[0]
	for _, p := range parts[1:] {
		if err := merged.Merge(p); err != nil {
			return nil, err
		}
	}
	return merged, nil
}
