package stats

import (
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function over a sample.
// It backs every "Fraction of jobs vs size" plot in the paper (Figures 1,
// 3, 4, 5, 8). The zero value is unusable; construct with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from a sample. The input slice is copied.
func NewCDF(sample []float64) *CDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of sample points.
func (c *CDF) Len() int { return len(c.sorted) }

// P returns the empirical probability P[X <= x], i.e. the fraction of the
// sample that is at most x. An empty CDF returns 0 for all x.
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// sort.SearchFloat64s finds the first index with sorted[i] >= x; we want
	// the count of values <= x, so search for the first value > x.
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (inverse CDF) for q in [0,1], clamping
// out-of-range q. An empty CDF returns 0.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	return quantileSorted(c.sorted, q)
}

// Min returns the smallest sample value (0 when empty).
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Max returns the largest sample value (0 when empty).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Points returns up to n (x, P[X<=x]) pairs evenly spaced in quantile
// space, suitable for plotting the CDF curve. For n < 2, n is treated as 2.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 {
		return nil
	}
	if n < 2 {
		n = 2
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		pts = append(pts, Point{X: c.Quantile(q), Y: q})
	}
	return pts
}

// LogPoints returns (x, P[X<=x]) pairs at m points per decade across the
// positive support of the distribution, matching the paper's log-scale
// x-axes. Samples that are zero or negative contribute to probabilities but
// never appear as x positions.
func (c *CDF) LogPoints(perDecade int) []Point {
	if len(c.sorted) == 0 || perDecade < 1 {
		return nil
	}
	// Find the positive support.
	minPos := math.Inf(1)
	for _, v := range c.sorted {
		if v > 0 {
			minPos = v
			break
		}
	}
	if math.IsInf(minPos, 1) {
		return nil
	}
	maxVal := c.sorted[len(c.sorted)-1]
	loExp := math.Floor(math.Log10(minPos))
	hiExp := math.Ceil(math.Log10(maxVal))
	var pts []Point
	for e := loExp; e <= hiExp+1e-9; e += 1.0 / float64(perDecade) {
		x := math.Pow(10, e)
		pts = append(pts, Point{X: x, Y: c.P(x)})
		if x >= maxVal {
			break
		}
	}
	return pts
}

// Point is an (x, y) pair of a plotted curve.
type Point struct {
	X, Y float64
}

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic between
// two empirical CDFs: sup_x |F1(x) - F2(x)|. The paper's §7 argues that
// benchmarks must preserve empirical distributions; we use this distance to
// quantify how faithfully the synthesizer preserves them.
func KSDistance(a, b *CDF) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 1
	}
	var d float64
	// The supremum is attained at a sample point of either distribution.
	for _, x := range a.sorted {
		if diff := math.Abs(a.P(x) - b.P(x)); diff > d {
			d = diff
		}
	}
	for _, x := range b.sorted {
		if diff := math.Abs(a.P(x) - b.P(x)); diff > d {
			d = diff
		}
	}
	return d
}
