package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, %v; want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson negative = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should error")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance should error")
	}
}

func TestPearsonIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 5000
	xs, ys := make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.05 {
		t.Errorf("independent series correlation = %v, want ~0", r)
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but nonlinear: Spearman = 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rs, err := SpearmanRank(xs, ys)
	if err != nil || !almostEqual(rs, 1, 1e-12) {
		t.Errorf("Spearman = %v, %v; want 1", rs, err)
	}
}

func TestRanksTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) || !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1 R2 1", fit)
	}
	if _, err := FitLine([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero x-variance should error")
	}
	if _, err := FitLine([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestFitLineConstantY(t *testing.T) {
	fit, err := FitLine([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("constant-y fit = %+v, want slope 0 R2 1", fit)
	}
}

func TestFitZipfExact(t *testing.T) {
	// Construct frequencies exactly following f = 1e6 * rank^-0.8.
	n := 500
	freqs := make([]uint64, n)
	for i := 0; i < n; i++ {
		freqs[i] = uint64(math.Round(1e6 * math.Pow(float64(i+1), -0.8)))
	}
	fit, err := FitZipf(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-0.8) > 0.02 {
		t.Errorf("Alpha = %v, want ~0.8", fit.Alpha)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2 = %v, want ~1", fit.R2)
	}
	if fit.Ranks != n {
		t.Errorf("Ranks = %d, want %d", fit.Ranks, n)
	}
}

func TestFitZipfFiltersZeros(t *testing.T) {
	if _, err := FitZipf([]uint64{0, 0, 5}); err == nil {
		t.Error("one positive frequency should error")
	}
	if _, err := FitZipf(nil); err == nil {
		t.Error("empty should error")
	}
	fit, err := FitZipf([]uint64{100, 0, 10, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Ranks != 3 {
		t.Errorf("Ranks = %d, want 3 (zeros dropped)", fit.Ranks)
	}
}

func TestSortDescUint64(t *testing.T) {
	f := func(raw []uint64) bool {
		a := append([]uint64(nil), raw...)
		sortDescUint64(a)
		for i := 1; i < len(a); i++ {
			if a[i] > a[i-1] {
				return false
			}
		}
		return len(a) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDFTConstant(t *testing.T) {
	series := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	spec, err := DFT(series)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(spec.Magnitude[0], 40, 1e-9) {
		t.Errorf("DC magnitude = %v, want 40", spec.Magnitude[0])
	}
	for k := 1; k < len(spec.Magnitude); k++ {
		if spec.Magnitude[k] > 1e-9 {
			t.Errorf("non-DC magnitude[%d] = %v, want 0", k, spec.Magnitude[k])
		}
	}
}

func TestDFTPureTone(t *testing.T) {
	n := 96 // 4 days hourly
	series := make([]float64, n)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / 24) // 4 cycles over n
	}
	spec, err := DFT(series)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := spec.PeakFrequency()
	if k != 4 {
		t.Errorf("peak frequency = %d, want 4", k)
	}
}

func TestDFTTooShort(t *testing.T) {
	if _, err := DFT([]float64{1, 2}); err == nil {
		t.Error("short series should error")
	}
}

func TestDiurnalStrength(t *testing.T) {
	n := 7 * 24
	diurnal := make([]float64, n)
	flat := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		diurnal[i] = 100 + 80*math.Sin(2*math.Pi*float64(i)/24) + rng.Float64()
		flat[i] = 100 + 10*rng.Float64()
	}
	ds, err := DiurnalStrength(diurnal)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := DiurnalStrength(flat)
	if err != nil {
		t.Fatal(err)
	}
	if ds < 10 {
		t.Errorf("diurnal strength of sinusoid = %v, want >> 1", ds)
	}
	if fs > ds/5 {
		t.Errorf("flat series strength %v should be far below diurnal %v", fs, ds)
	}
	if _, err := DiurnalStrength(make([]float64, 10)); err == nil {
		t.Error("short series should error")
	}
}

func TestBurstinessConstantSeries(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = 7
	}
	b, err := Burstiness(series)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(b.PeakToMedian, 1, 1e-12) {
		t.Errorf("constant series peak-to-median = %v, want 1", b.PeakToMedian)
	}
	for _, r := range b.Ratios {
		if !almostEqual(r, 1, 1e-12) {
			t.Fatalf("constant series ratio = %v, want 1", r)
		}
	}
}

func TestBurstinessBursty(t *testing.T) {
	// Mostly 1s with a few large spikes: peak-to-median high.
	series := make([]float64, 100)
	for i := range series {
		series[i] = 1
	}
	series[10], series[50] = 260, 100
	b, err := Burstiness(series)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(b.PeakToMedian, 260, 1e-9) {
		t.Errorf("peak-to-median = %v, want 260", b.PeakToMedian)
	}
	if b.RatioAt(50) != 1 {
		t.Errorf("median ratio = %v, want 1", b.RatioAt(50))
	}
}

func TestBurstinessErrors(t *testing.T) {
	if _, err := Burstiness(nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := Burstiness([]float64{0, 0, 0, 1}); err == nil {
		t.Error("zero median should error")
	}
}

func TestBurstinessSineBaselines(t *testing.T) {
	// Figure 8's reference curves: sine+2 is burstier than sine+20.
	b2, err := Burstiness(SineSeries(7*24, 2))
	if err != nil {
		t.Fatal(err)
	}
	b20, err := Burstiness(SineSeries(7*24, 20))
	if err != nil {
		t.Fatal(err)
	}
	if b2.PeakToMedian <= b20.PeakToMedian {
		t.Errorf("sine+2 peak ratio %v should exceed sine+20 %v", b2.PeakToMedian, b20.PeakToMedian)
	}
	if b20.PeakToMedian > 1.06 {
		t.Errorf("sine+20 peak-to-median = %v, want close to 1", b20.PeakToMedian)
	}
}

// Property: burstiness ratios are monotone in percentile and the ratio at
// the median percentile is 1.
func TestBurstinessMonotoneQuick(t *testing.T) {
	f := func(raw []float64) bool {
		series := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				series = append(series, math.Abs(v)+1)
			}
		}
		if len(series) < 3 {
			return true
		}
		b, err := Burstiness(series)
		if err != nil {
			return false
		}
		prev := math.Inf(-1)
		for _, r := range b.Ratios {
			if r < prev-1e-12 {
				return false
			}
			prev = r
		}
		return almostEqual(b.RatioAt(50), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(1, 0, 6) // bins: 1-10, 10-100, ..., 1e5-1e6
	for _, v := range []float64{0, 5, 50, 500, 5e5, 2e7} {
		h.Observe(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if h.ZeroCount != 1 {
		t.Errorf("ZeroCount = %d, want 1", h.ZeroCount)
	}
	// 2e7 clamps into last bin.
	if h.Counts[len(h.Counts)-1] != 2 {
		t.Errorf("last bin = %d, want 2 (5e5 and clamped 2e7)", h.Counts[len(h.Counts)-1])
	}
	pts := h.CumulativeFraction()
	if len(pts) != len(h.Counts) {
		t.Fatalf("cumulative points = %d, want %d", len(pts), len(h.Counts))
	}
	last := pts[len(pts)-1]
	if !almostEqual(last.Y, 1, 1e-12) {
		t.Errorf("final cumulative fraction = %v, want 1", last.Y)
	}
	if h.BinLeft(0) != 1 || !almostEqual(h.BinRight(0), 10, 1e-9) {
		t.Errorf("bin 0 edges = [%v, %v), want [1, 10)", h.BinLeft(0), h.BinRight(0))
	}
}

func TestLogHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad args")
		}
	}()
	NewLogHistogram(0, 0, 6)
}

func TestLogHistogramEmptyCumulative(t *testing.T) {
	h := NewLogHistogram(2, 0, 3)
	if pts := h.CumulativeFraction(); pts != nil {
		t.Error("empty histogram should have nil cumulative points")
	}
}
