package stats

import (
	"repro/internal/binenc"
)

// Binary snapshot encoding for the mergeable accumulators, used by the
// durable storage engine to persist core.Partial aggregates across
// restarts. The contract is exactness: decoding an encoded accumulator
// restores its state bit-for-bit — ExactSum keeps its non-overlapping
// expansion partials, histograms keep integer counts, sketches keep
// their exact extrema — so a report finalized from a decoded snapshot
// is byte-identical to one finalized from the live accumulator.

// AppendBinary appends the exact-sum state: the expansion partials in
// order. Restoring them verbatim restores the exact value (and the
// exact future behavior under Add/Merge).
func (s *ExactSum) AppendBinary(b []byte) []byte {
	b = binenc.AppendUvarint(b, uint64(len(s.partials)))
	for _, p := range s.partials {
		b = binenc.AppendFloat64(b, p)
	}
	return b
}

// ReadExactSum decodes an accumulator written by AppendBinary. On
// malformed input the reader's sticky error is set and the zero sum is
// returned.
func ReadExactSum(r *binenc.Reader) ExactSum {
	n := r.Count(8)
	var s ExactSum
	if n == 0 {
		return s
	}
	s.partials = make([]float64, n)
	for i := range s.partials {
		s.partials[i] = r.Float64()
	}
	return s
}

// AppendBinary appends the histogram layout and counts.
func (h *LogHistogram) AppendBinary(b []byte) []byte {
	b = binenc.AppendUvarint(b, uint64(h.BinsPerDecade))
	b = binenc.AppendFloat64(b, h.MinExp)
	b = binenc.AppendUvarint(b, h.ZeroCount)
	b = binenc.AppendUvarint(b, h.total)
	b = binenc.AppendUvarint(b, uint64(len(h.Counts)))
	for _, c := range h.Counts {
		b = binenc.AppendUvarint(b, c)
	}
	return b
}

// ReadLogHistogram decodes a histogram written by AppendBinary.
func ReadLogHistogram(r *binenc.Reader) *LogHistogram {
	h := &LogHistogram{
		BinsPerDecade: int(r.Uvarint()),
		MinExp:        r.Float64(),
		ZeroCount:     r.Uvarint(),
		total:         r.Uvarint(),
	}
	n := r.Count(1)
	h.Counts = make([]uint64, n)
	for i := range h.Counts {
		h.Counts[i] = r.Uvarint()
	}
	return h
}

// AppendBinary appends the sketch: its histogram plus the exact
// min/max/minPos trackers.
func (s *QuantileSketch) AppendBinary(b []byte) []byte {
	b = s.h.AppendBinary(b)
	b = binenc.AppendFloat64(b, s.min)
	b = binenc.AppendFloat64(b, s.max)
	return binenc.AppendFloat64(b, s.minPos)
}

// ReadQuantileSketch decodes a sketch written by AppendBinary.
func ReadQuantileSketch(r *binenc.Reader) *QuantileSketch {
	return &QuantileSketch{
		h:      ReadLogHistogram(r),
		min:    r.Float64(),
		max:    r.Float64(),
		minPos: r.Float64(),
	}
}
