package stats

import "math"

// ExactSum accumulates float64 values with no rounding error, using
// Shewchuk's non-overlapping expansion (the algorithm behind Python's
// math.fsum). The running sum is held as a list of partials whose exact
// mathematical sum equals the exact sum of everything added; Sum()
// rounds that exact value to the nearest float64 once, at the end.
//
// The property the mergeable analysis builders need is order
// independence: because the partials represent the sum exactly,
// Add-ing the same multiset of values in any order — or Add-ing them
// into separate accumulators and Merge-ing those — yields bit-identical
// Sum() results. Plain `+=` accumulation has no such guarantee, and a
// single last-bit difference between a sequential and a shard-merged
// hourly bin would break the byte-identical report contract.
//
// Inputs must be finite; trace validation rejects the NaN/Inf sources
// upstream. The zero value is an empty sum, ready to use.
type ExactSum struct {
	partials []float64
}

// Add folds one value into the exact running sum.
func (s *ExactSum) Add(x float64) {
	i := 0
	for _, y := range s.partials {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		lo := y - (hi - x)
		if lo != 0 {
			s.partials[i] = lo
			i++
		}
		x = hi
	}
	s.partials = append(s.partials[:i], x)
}

// Merge folds another accumulator's exact value into this one. The
// other accumulator is not modified; merging is associative and
// commutative, which is what lets shard-parallel analysis merge partial
// sums in any grouping and still match the sequential result exactly.
func (s *ExactSum) Merge(o *ExactSum) {
	for _, p := range o.partials {
		s.Add(p)
	}
}

// Sum returns the exact accumulated value rounded once to float64. It
// does not modify the accumulator, so a frozen ExactSum can be read
// concurrently.
func (s *ExactSum) Sum() float64 {
	ps := s.partials
	n := len(ps)
	if n == 0 {
		return 0
	}
	// The partials are non-overlapping and sorted by increasing
	// magnitude; summing from the top is exact except for one possible
	// double rounding, corrected below (the tail of CPython's fsum).
	total := ps[n-1]
	i := n - 1
	var lo float64
	for i > 0 {
		i--
		x := total
		y := ps[i]
		total = x + y
		lo = y - (total - x)
		if lo != 0 {
			break
		}
	}
	if i > 0 && ((lo < 0 && ps[i-1] < 0) || (lo > 0 && ps[i-1] > 0)) {
		y := lo * 2
		x := total + y
		if y == x-total {
			total = x
		}
	}
	return total
}
