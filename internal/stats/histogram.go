package stats

import (
	"fmt"
	"math"
)

// LogHistogram buckets strictly positive values into logarithmically spaced
// bins (a fixed number of bins per base-10 decade). The paper's data-size
// figures span 1 byte to tens of terabytes, so linear binning is useless;
// log bins match its axes. Zero and negative observations are counted
// separately in ZeroCount.
type LogHistogram struct {
	// BinsPerDecade is the resolution; 5 gives bin edges at 1, 1.58, 2.51 ...
	BinsPerDecade int
	// MinExp is the base-10 exponent of the left edge of the first bin.
	MinExp float64
	// Counts[i] is the number of observations in bin i.
	Counts []uint64
	// ZeroCount tallies observations that were <= 0 (e.g. map-only jobs
	// have zero shuffle bytes).
	ZeroCount uint64
	total     uint64
}

// NewLogHistogram creates a histogram with the given resolution covering
// [10^minExp, 10^maxExp). It panics on nonsensical arguments because these
// are programmer errors, not data errors.
func NewLogHistogram(binsPerDecade int, minExp, maxExp float64) *LogHistogram {
	if binsPerDecade < 1 {
		panic("stats: binsPerDecade must be >= 1")
	}
	if maxExp <= minExp {
		panic("stats: maxExp must exceed minExp")
	}
	n := int(math.Ceil((maxExp - minExp) * float64(binsPerDecade)))
	return &LogHistogram{
		BinsPerDecade: binsPerDecade,
		MinExp:        minExp,
		Counts:        make([]uint64, n),
	}
}

// Observe adds one observation. Values outside the configured range clamp
// to the first or last bin so totals stay consistent.
func (h *LogHistogram) Observe(v float64) {
	h.total++
	if v <= 0 {
		h.ZeroCount++
		return
	}
	idx := int(math.Floor((math.Log10(v) - h.MinExp) * float64(h.BinsPerDecade)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns the number of observations including zeros.
func (h *LogHistogram) Total() uint64 { return h.total }

// Merge folds another histogram's counts into this one. The two must
// share an identical bin layout (resolution, origin, and bin count);
// counts are integers, so merging is exact, associative, and
// commutative — merging per-shard histograms in any order yields the
// same result as observing the whole stream sequentially. The argument
// is not modified.
func (h *LogHistogram) Merge(o *LogHistogram) error {
	if h.BinsPerDecade != o.BinsPerDecade || h.MinExp != o.MinExp || len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("stats: cannot merge histograms with different layouts (%d bins/decade from 10^%g over %d bins vs %d bins/decade from 10^%g over %d bins)",
			h.BinsPerDecade, h.MinExp, len(h.Counts), o.BinsPerDecade, o.MinExp, len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.ZeroCount += o.ZeroCount
	h.total += o.total
	return nil
}

// BinLeft returns the left edge of bin i.
func (h *LogHistogram) BinLeft(i int) float64 {
	return math.Pow(10, h.MinExp+float64(i)/float64(h.BinsPerDecade))
}

// BinRight returns the right edge of bin i.
func (h *LogHistogram) BinRight(i int) float64 {
	return math.Pow(10, h.MinExp+float64(i+1)/float64(h.BinsPerDecade))
}

// CumulativeFraction returns, for each bin, the fraction of all
// observations (zeros included, attributed below the first bin) that fall
// in that bin or any earlier one. This is the piecewise CDF the paper plots.
func (h *LogHistogram) CumulativeFraction() []Point {
	if h.total == 0 {
		return nil
	}
	pts := make([]Point, len(h.Counts))
	cum := h.ZeroCount
	for i, c := range h.Counts {
		cum += c
		pts[i] = Point{X: h.BinRight(i), Y: float64(cum) / float64(h.total)}
	}
	return pts
}

// String summarizes the histogram for debugging.
func (h *LogHistogram) String() string {
	return fmt.Sprintf("LogHistogram{bins=%d, perDecade=%d, total=%d, zeros=%d}",
		len(h.Counts), h.BinsPerDecade, h.total, h.ZeroCount)
}
