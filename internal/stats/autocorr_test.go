package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestAutocorrelationLagZero(t *testing.T) {
	series := []float64{1, 3, 2, 5, 4, 6, 2, 8}
	acf, err := Autocorrelation(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(acf[0], 1, 1e-12) {
		t.Errorf("r[0] = %v, want 1", acf[0])
	}
	if len(acf) != 4 {
		t.Errorf("len = %d, want 4", len(acf))
	}
}

func TestAutocorrelationPeriodicSignal(t *testing.T) {
	n := 10 * 24
	series := make([]float64, n)
	for i := range series {
		series[i] = 100 + 50*math.Sin(2*math.Pi*float64(i)/24)
	}
	acf, err := Autocorrelation(series, 36)
	if err != nil {
		t.Fatal(err)
	}
	if acf[24] < 0.8 {
		t.Errorf("r[24] of pure diurnal = %v, want high", acf[24])
	}
	if acf[12] > -0.5 {
		t.Errorf("r[12] of pure diurnal = %v, want strongly negative (antiphase)", acf[12])
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	series := make([]float64, 2000)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	acf, err := Autocorrelation(series, 24)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 24; k++ {
		if math.Abs(acf[k]) > 0.1 {
			t.Errorf("white noise r[%d] = %v, want ~0", k, acf[k])
		}
	}
}

func TestAutocorrelationConstant(t *testing.T) {
	series := []float64{5, 5, 5, 5, 5}
	acf, err := Autocorrelation(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 || acf[1] != 0 {
		t.Errorf("constant series acf = %v", acf)
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation([]float64{1}, 1); err == nil {
		t.Error("short series should error")
	}
	if _, err := Autocorrelation([]float64{1, 2}, -1); err == nil {
		t.Error("negative lag should error")
	}
	// Lag clamping.
	acf, err := Autocorrelation([]float64{1, 2, 3}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(acf) != 3 {
		t.Errorf("clamped acf len = %d, want 3", len(acf))
	}
}

func TestDailyRegularity(t *testing.T) {
	n := 7 * 24
	regular := make([]float64, n)
	for i := range regular {
		regular[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/24)
	}
	r, err := DailyRegularity(regular)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 {
		t.Errorf("regular series r24 = %v, want ~1", r)
	}
	if _, err := DailyRegularity(make([]float64, 24)); err == nil {
		t.Error("short series should error")
	}
}
