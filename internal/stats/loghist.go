package stats

import "math"

// Distribution is the read side of an empirical distribution — the
// interface every "fraction of jobs vs size" figure renders through. Two
// implementations exist: the exact sample-holding CDF and the
// fixed-memory QuantileSketch used by the streaming analyses.
type Distribution interface {
	// Len is the number of observations.
	Len() int
	// P returns P[X <= x].
	P(x float64) float64
	// Quantile returns the q-th quantile for q in [0,1].
	Quantile(q float64) float64
	// Min and Max are the extreme observations (exact in both
	// implementations).
	Min() float64
	Max() float64
	// Median is the 0.5 quantile.
	Median() float64
	// LogPoints returns (x, P[X<=x]) pairs at perDecade points per decade
	// across the positive support, matching the paper's log x-axes.
	LogPoints(perDecade int) []Point
}

// Compile-time interface checks.
var (
	_ Distribution = (*CDF)(nil)
	_ Distribution = (*QuantileSketch)(nil)
)

// sketchDecades spans [1, 10^19) — enough for any int64 byte count.
const sketchDecades = 19

// DefaultBinsPerDecade gives relative quantile error ≤ 10^(1/128)-1 ≈
// 1.8% per half-bin, at 19·128·8 B ≈ 19 KiB per sketch.
const DefaultBinsPerDecade = 128

// QuantileSketch is a fixed-memory Distribution: a LogHistogram covering
// [1, 1e19) plus exact min/max tracking, so a streamed analysis can
// answer quantile and CDF queries with memory independent of the number
// of observations — the property the constant-memory streaming analyses
// need — at the price of bounded relative error in quantile positions
// (half a bin width; see DefaultBinsPerDecade). Values below 1
// (zero data sizes) land in the histogram's ZeroCount bucket.
type QuantileSketch struct {
	h        *LogHistogram
	min, max float64
	minPos   float64 // smallest observation ≥ 1 (0 if none)
}

// NewQuantileSketch creates an empty sketch; binsPerDecade ≤ 0 selects
// DefaultBinsPerDecade.
func NewQuantileSketch(binsPerDecade int) *QuantileSketch {
	if binsPerDecade <= 0 {
		binsPerDecade = DefaultBinsPerDecade
	}
	return &QuantileSketch{h: NewLogHistogram(binsPerDecade, 0, sketchDecades)}
}

// Observe adds one observation. NaN is clamped to the zero bucket (trace
// validation rejects negative sizes upstream).
func (s *QuantileSketch) Observe(v float64) {
	if math.IsNaN(v) {
		v = 0
	}
	if s.h.Total() == 0 || v < s.min {
		s.min = v
	}
	if s.h.Total() == 0 || v > s.max {
		s.max = v
	}
	if v >= 1 && (s.minPos == 0 || v < s.minPos) {
		s.minPos = v
	}
	if v >= 1 {
		s.h.Observe(v)
	} else {
		s.h.Observe(0) // zero bucket, keeps totals consistent
	}
}

// Merge folds another sketch into this one. Both must have been built
// with the same binsPerDecade. Histogram counts are integers and the
// min/max/minPos trackers take extrema, so merging is exact: merging
// per-shard sketches in any order answers every Distribution query
// identically to a single sketch that observed the whole stream — the
// property that lets Figure 1 compose across shards. The argument is
// not modified.
func (s *QuantileSketch) Merge(o *QuantileSketch) error {
	if o.h.Total() == 0 {
		return nil // merging an empty sketch is a no-op either way
	}
	empty := s.h.Total() == 0
	if err := s.h.Merge(o.h); err != nil {
		return err
	}
	if empty || o.min < s.min {
		s.min = o.min
	}
	if empty || o.max > s.max {
		s.max = o.max
	}
	if o.minPos != 0 && (s.minPos == 0 || o.minPos < s.minPos) {
		s.minPos = o.minPos
	}
	return nil
}

// Len returns the number of observations.
func (s *QuantileSketch) Len() int { return int(s.h.Total()) }

// Min returns the smallest observation (0 when empty).
func (s *QuantileSketch) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *QuantileSketch) Max() float64 { return s.max }

// P returns the fraction of observations at most x, interpolating
// log-uniformly inside the bin containing x.
func (s *QuantileSketch) P(x float64) float64 {
	total := s.h.Total()
	if total == 0 {
		return 0
	}
	if x < s.min {
		return 0
	}
	if x >= s.max {
		return 1
	}
	if x < 1 {
		// Sub-1 observations are all in the zero bucket; with x ≥ min
		// they count in full.
		return float64(s.h.ZeroCount) / float64(total)
	}
	pos := math.Log10(x) * float64(s.h.BinsPerDecade)
	idx := int(pos)
	if idx >= len(s.h.Counts) {
		idx = len(s.h.Counts) - 1
	}
	cum := s.h.ZeroCount
	for i := 0; i < idx; i++ {
		cum += s.h.Counts[i]
	}
	frac := pos - float64(idx)
	partial := float64(s.h.Counts[idx]) * frac
	return (float64(cum) + partial) / float64(total)
}

// Quantile returns the q-th quantile: the geometric midpoint of the bin
// holding the q-th observation, clamped to the exact [min, max] range.
func (s *QuantileSketch) Quantile(q float64) float64 {
	total := s.h.Total()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := q * float64(total)
	if rank < float64(s.h.ZeroCount) {
		return s.min
	}
	cum := float64(s.h.ZeroCount)
	for i, c := range s.h.Counts {
		cum += float64(c)
		if cum >= rank {
			mid := math.Pow(10, (float64(i)+0.5)/float64(s.h.BinsPerDecade))
			return s.clamp(mid)
		}
	}
	return s.max
}

func (s *QuantileSketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Median returns the 0.5 quantile.
func (s *QuantileSketch) Median() float64 { return s.Quantile(0.5) }

// LogPoints returns (x, P[X<=x]) pairs at perDecade points per decade
// across the support at and above 1, mirroring CDF.LogPoints.
func (s *QuantileSketch) LogPoints(perDecade int) []Point {
	if s.h.Total() == 0 || perDecade < 1 || s.minPos == 0 {
		return nil
	}
	loExp := math.Floor(math.Log10(s.minPos))
	hiExp := math.Ceil(math.Log10(s.max))
	var pts []Point
	for e := loExp; e <= hiExp+1e-9; e += 1.0 / float64(perDecade) {
		x := math.Pow(10, e)
		pts = append(pts, Point{X: x, Y: s.P(x)})
		if x >= s.max {
			break
		}
	}
	return pts
}
