package stats

import (
	"errors"
	"math"
)

// BurstinessCurve is the paper's §5.2 burstiness metric: the vector of
// nth-percentile-to-median ratios of an arrival-rate series. Plotting
// Ratio (x) against Percentile (y) yields "a cumulative distribution of
// arrival rates per time unit, normalized by the median arrival rate"
// (Figure 8). A more horizontal curve means a burstier workload; a vertical
// line at x=1 is a perfectly constant arrival rate.
type BurstinessCurve struct {
	// Percentiles[i] in [0,100] and Ratios[i] = P_i / median, parallel
	// slices sorted by percentile.
	Percentiles []float64
	Ratios      []float64
	// Median is the median of the underlying series (the normalizer).
	Median float64
	// PeakToMedian is the 100th-percentile-to-median ratio the paper
	// headline numbers use ("peak-to-median ratio ... from 9:1 to 260:1").
	PeakToMedian float64
}

// Burstiness computes the normalized percentile curve of a rate series
// (e.g. task-seconds submitted per hour). The series must have a strictly
// positive median, since ratios are undefined otherwise — workloads in the
// paper always keep the cluster at least lightly loaded each hour; callers
// with idle hours should pre-filter or aggregate into coarser bins.
func Burstiness(series []float64) (BurstinessCurve, error) {
	if len(series) == 0 {
		return BurstinessCurve{}, ErrEmpty
	}
	med, err := Median(series)
	if err != nil {
		return BurstinessCurve{}, err
	}
	if med <= 0 {
		return BurstinessCurve{}, errors.New("stats: burstiness undefined for non-positive median")
	}
	curve := BurstinessCurve{Median: med}
	for p := 0.0; p <= 100.0+1e-9; p++ {
		q, err := Quantile(series, math.Min(p/100, 1))
		if err != nil {
			return BurstinessCurve{}, err
		}
		curve.Percentiles = append(curve.Percentiles, p)
		curve.Ratios = append(curve.Ratios, q/med)
	}
	curve.PeakToMedian = curve.Ratios[len(curve.Ratios)-1]
	return curve, nil
}

// RatioAt returns the percentile-to-median ratio at percentile p (0..100),
// interpolating between the precomputed integer percentiles.
func (b BurstinessCurve) RatioAt(p float64) float64 {
	if len(b.Ratios) == 0 {
		return 0
	}
	if p <= 0 {
		return b.Ratios[0]
	}
	if p >= 100 {
		return b.Ratios[len(b.Ratios)-1]
	}
	lo := int(math.Floor(p))
	hi := int(math.Ceil(p))
	if lo == hi {
		return b.Ratios[lo]
	}
	frac := p - float64(lo)
	return b.Ratios[lo]*(1-frac) + b.Ratios[hi]*frac
}

// SineSeries generates the paper's Figure 8 reference signals: a sinusoid
// with the given offset sampled hourly for n hours, i.e.
// offset + sin(2π t/24). The paper plots "sine + 2" (min-max range equal to
// the mean) and "sine + 20" (range 10% of the mean) as burstiness baselines.
func SineSeries(n int, offset float64) []float64 {
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		out[t] = offset + math.Sin(2*math.Pi*float64(t)/24)
	}
	return out
}
