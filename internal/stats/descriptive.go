// Package stats implements the statistical machinery behind the paper's
// workload analyses: empirical CDFs and quantiles, log-scale histograms,
// Pearson correlation between hourly time series (Fig 9), least-squares
// regression in log-log space for Zipf slope fitting (Fig 2), discrete
// Fourier analysis for diurnal-pattern detection (Fig 7), the
// percentile-to-median burstiness metric the paper defines in §5.2 (Fig 8),
// and Kolmogorov–Smirnov distances used to score synthesis fidelity (§7).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Median returns the median of xs. The paper uses the median as its robust
// "average" when defining burstiness (§5.2).
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile of xs for q in [0, 1], using linear
// interpolation between order statistics (type-7 / Excel convention).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// quantileSorted computes the q-th quantile of an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// GeometricMean returns the geometric mean of strictly positive xs. Values
// that are zero or negative are an error: the analyses apply it only to
// byte counts and task-times after filtering zeros.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean of non-positive value")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// OrdersOfMagnitudeSpan reports how many base-10 orders of magnitude
// separate the smallest and largest strictly positive values of xs. The
// paper uses this to describe Figure 1 ("medians ... differ by 6, 8, and 4
// orders of magnitude"). Zero and negative entries are skipped; if fewer
// than two positive entries exist the span is zero.
func OrdersOfMagnitudeSpan(xs []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		n++
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if n < 2 || lo == hi {
		return 0
	}
	return math.Log10(hi) - math.Log10(lo)
}
