package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
	cases := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.2}, {1.5, 0.2}, {2, 0.6}, {3, 0.8}, {9.99, 0.8}, {10, 1}, {100, 1},
	}
	for _, cse := range cases {
		if got := c.P(cse.x); !almostEqual(got, cse.want, 1e-12) {
			t.Errorf("P(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if c.Min() != 1 || c.Max() != 10 {
		t.Errorf("Min/Max = %v/%v, want 1/10", c.Min(), c.Max())
	}
	if got := c.Median(); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.P(5) != 0 || c.Quantile(0.5) != 0 || c.Min() != 0 || c.Max() != 0 {
		t.Error("empty CDF should return zeros")
	}
	if pts := c.Points(10); pts != nil {
		t.Error("empty CDF Points should be nil")
	}
	if pts := c.LogPoints(5); pts != nil {
		t.Error("empty CDF LogPoints should be nil")
	}
}

func TestCDFQuantileClamps(t *testing.T) {
	c := NewCDF([]float64{5, 6, 7})
	if c.Quantile(-1) != 5 {
		t.Error("Quantile(-1) should clamp to min")
	}
	if c.Quantile(2) != 7 {
		t.Error("Quantile(2) should clamp to max")
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	c := NewCDF(in)
	in[0] = 100
	if c.Max() == 100 {
		t.Error("CDF aliased caller's slice")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points len = %d, want 5", len(pts))
	}
	if pts[0].Y != 0 || pts[len(pts)-1].Y != 1 {
		t.Error("Points should span quantiles 0..1")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatal("Points should be monotone")
		}
	}
}

func TestCDFLogPoints(t *testing.T) {
	c := NewCDF([]float64{0, 1, 10, 100, 1000})
	pts := c.LogPoints(1)
	if len(pts) == 0 {
		t.Fatal("expected log points")
	}
	// Last point must reach cumulative probability 1 at or beyond max.
	last := pts[len(pts)-1]
	if last.Y != 1 {
		t.Errorf("last log point Y = %v, want 1", last.Y)
	}
	// Monotone in both axes.
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatal("LogPoints should be monotone")
		}
	}
	// All-zero sample has no positive support.
	if pts := NewCDF([]float64{0, 0}).LogPoints(5); pts != nil {
		t.Error("LogPoints of all-zero sample should be nil")
	}
	if pts := c.LogPoints(0); pts != nil {
		t.Error("LogPoints with perDecade<1 should be nil")
	}
}

func TestKSDistanceIdentical(t *testing.T) {
	a := NewCDF([]float64{1, 2, 3, 4})
	if d := KSDistance(a, a); d != 0 {
		t.Errorf("KS(a,a) = %v, want 0", d)
	}
}

func TestKSDistanceDisjoint(t *testing.T) {
	a := NewCDF([]float64{1, 2, 3})
	b := NewCDF([]float64{10, 20, 30})
	if d := KSDistance(a, b); d != 1 {
		t.Errorf("KS disjoint = %v, want 1", d)
	}
}

func TestKSDistanceEmpty(t *testing.T) {
	a := NewCDF(nil)
	b := NewCDF([]float64{1})
	if d := KSDistance(a, b); d != 1 {
		t.Errorf("KS with empty = %v, want 1", d)
	}
}

func TestKSDistanceSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 4000)
	ys := make([]float64, 4000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	d := KSDistance(NewCDF(xs), NewCDF(ys))
	if d > 0.06 {
		t.Errorf("KS of two N(0,1) samples = %v, want small", d)
	}
}

// Properties: P is monotone nondecreasing, in [0,1]; KS is symmetric and in
// [0,1].
func TestCDFQuick(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		c := NewCDF(xs)
		p := c.P(probe)
		if p < 0 || p > 1 {
			return false
		}
		if !math.IsNaN(probe) && !math.IsInf(probe, 0) {
			if c.P(probe+1) < p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}

	g := func(a, b []float64) bool {
		ca, cb := NewCDF(clean(a)), NewCDF(clean(b))
		d1, d2 := KSDistance(ca, cb), KSDistance(cb, ca)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func clean(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out = append(out, v)
		}
	}
	return out
}
