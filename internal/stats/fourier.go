package stats

import (
	"errors"
	"math"
	"math/cmplx"
)

// Spectrum is the magnitude spectrum of a real-valued, evenly sampled time
// series. The paper notes that "some workloads exhibit daily diurnal
// patterns, revealed by Fourier analysis" (§5.1); DiurnalStrength below
// makes that check concrete.
type Spectrum struct {
	// Magnitude[k] is |X_k| for frequency k cycles per series length,
	// k = 0..N/2.
	Magnitude []float64
	// N is the original series length.
	N int
}

// DFT computes the discrete Fourier transform of a real series and returns
// its one-sided magnitude spectrum. O(n^2) — hourly series over weeks are a
// few hundred points, so a radix-agnostic direct transform is simpler and
// fast enough; no external FFT dependency is needed.
func DFT(series []float64) (Spectrum, error) {
	n := len(series)
	if n < 4 {
		return Spectrum{}, errors.New("stats: series too short for DFT")
	}
	half := n/2 + 1
	mags := make([]float64, half)
	for k := 0; k < half; k++ {
		var acc complex128
		for t, v := range series {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += complex(v, 0) * cmplx.Exp(complex(0, angle))
		}
		mags[k] = cmplx.Abs(acc)
	}
	return Spectrum{Magnitude: mags, N: n}, nil
}

// PeakFrequency returns the index k (in cycles per series) of the largest
// non-DC spectral component and its magnitude.
func (s Spectrum) PeakFrequency() (k int, magnitude float64) {
	for i := 1; i < len(s.Magnitude); i++ {
		if s.Magnitude[i] > magnitude {
			magnitude = s.Magnitude[i]
			k = i
		}
	}
	return k, magnitude
}

// DiurnalStrength quantifies how much daily periodicity an hourly series
// carries: the magnitude at the 24-hour frequency divided by the mean
// magnitude of all non-DC components. Values well above 1 indicate a
// visible diurnal pattern (e.g. job submission for FB-2010, utilization for
// CC-e in Fig 7); values near 1 indicate noise-dominated series.
func DiurnalStrength(hourly []float64) (float64, error) {
	n := len(hourly)
	if n < 48 {
		return 0, errors.New("stats: need at least 48 hourly samples for diurnal analysis")
	}
	spec, err := DFT(hourly)
	if err != nil {
		return 0, err
	}
	// k cycles over n hours has period n/k hours; daily period = 24h means
	// k = n/24 (rounded).
	k := int(math.Round(float64(n) / 24))
	if k < 1 || k >= len(spec.Magnitude) {
		return 0, errors.New("stats: series too short to resolve 24h period")
	}
	var sum float64
	count := 0
	for i := 1; i < len(spec.Magnitude); i++ {
		sum += spec.Magnitude[i]
		count++
	}
	if count == 0 || sum == 0 {
		return 0, nil
	}
	mean := sum / float64(count)
	// Search ±1 bin around the nominal diurnal frequency: trace lengths are
	// not exact multiples of 24h, which leaks energy into neighbours.
	best := spec.Magnitude[k]
	for _, kk := range []int{k - 1, k + 1} {
		if kk >= 1 && kk < len(spec.Magnitude) && spec.Magnitude[kk] > best {
			best = spec.Magnitude[kk]
		}
	}
	return best / mean, nil
}
