package stats

import "errors"

// Autocorrelation returns the sample autocorrelation function of a series
// for lags 0..maxLag: r[k] = corr(x_t, x_{t+k}). For hourly workload
// series, r[24] measures day-over-day regularity — a complementary view to
// the DFT diurnal detector: predictable load (the prior assumption the
// paper overturns) shows high r[24], while the bursty workloads here decay
// quickly toward zero.
func Autocorrelation(series []float64, maxLag int) ([]float64, error) {
	n := len(series)
	if n < 2 {
		return nil, errors.New("stats: series too short for autocorrelation")
	}
	if maxLag < 0 {
		return nil, errors.New("stats: negative lag")
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	mean, _ := Mean(series)
	var denom float64
	for _, v := range series {
		d := v - mean
		denom += d * d
	}
	out := make([]float64, maxLag+1)
	if denom == 0 {
		// Constant series: define r[0]=1, rest 0 (no structure to find).
		out[0] = 1
		return out, nil
	}
	// Unbiased-style normalization: scale each lag's sum by n/(n-k) so a
	// perfectly periodic signal scores r[period] = 1 regardless of series
	// length.
	for k := 0; k <= maxLag; k++ {
		var num float64
		for t := 0; t+k < n; t++ {
			num += (series[t] - mean) * (series[t+k] - mean)
		}
		out[k] = num / denom * float64(n) / float64(n-k)
	}
	return out, nil
}

// DailyRegularity returns r[24] of an hourly series: how strongly one
// day's profile predicts the next. Requires at least 48 samples.
func DailyRegularity(hourly []float64) (float64, error) {
	if len(hourly) < 48 {
		return 0, errors.New("stats: need at least 48 hourly samples")
	}
	acf, err := Autocorrelation(hourly, 24)
	if err != nil {
		return 0, err
	}
	return acf[24], nil
}
