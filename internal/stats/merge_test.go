package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sketchShards observes vals split into k contiguous shards, one sketch
// per shard, and merges them in shard order.
func sketchShards(t *testing.T, vals []float64, k, binsPerDecade int) *QuantileSketch {
	t.Helper()
	shards := make([]*QuantileSketch, k)
	for i := range shards {
		shards[i] = NewQuantileSketch(binsPerDecade)
	}
	for i, v := range vals {
		shards[i*k/len(vals)].Observe(v)
	}
	merged := NewQuantileSketch(binsPerDecade)
	for _, sh := range shards {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	return merged
}

// assertSketchesIdentical checks every Distribution query agrees
// bitwise between two sketches.
func assertSketchesIdentical(t *testing.T, name string, seq, merged *QuantileSketch) {
	t.Helper()
	if seq.Len() != merged.Len() {
		t.Fatalf("%s: Len %d != %d", name, merged.Len(), seq.Len())
	}
	if math.Float64bits(seq.Min()) != math.Float64bits(merged.Min()) ||
		math.Float64bits(seq.Max()) != math.Float64bits(merged.Max()) {
		t.Fatalf("%s: extremes differ: [%g,%g] vs [%g,%g]",
			name, merged.Min(), merged.Max(), seq.Min(), seq.Max())
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		if a, b := seq.Quantile(q), merged.Quantile(q); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s: Quantile(%.2f): merged %g != sequential %g", name, q, b, a)
		}
	}
	for _, x := range []float64{0.5, 1, 3, 10, 1e3, 1e6, 1e9, 1e12} {
		if a, b := seq.P(x), merged.P(x); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s: P(%g): merged %g != sequential %g", name, x, b, a)
		}
	}
	sp, mp := seq.LogPoints(10), merged.LogPoints(10)
	if len(sp) != len(mp) {
		t.Fatalf("%s: LogPoints length %d != %d", name, len(mp), len(sp))
	}
	for i := range sp {
		if sp[i] != mp[i] {
			t.Fatalf("%s: LogPoints[%d]: merged %v != sequential %v", name, i, mp[i], sp[i])
		}
	}
}

// adversarialInputs are the satellite's target regimes: sorted streams
// (contiguous shards see disjoint narrow ranges — the worst case for
// merged extremes) and duplicate-heavy streams (rank boundaries land
// inside long runs of one value).
func adversarialInputs(rng *rand.Rand) map[string][]float64 {
	sorted := make([]float64, 5000)
	for i := range sorted {
		sorted[i] = math.Pow(10, 12*float64(i)/float64(len(sorted))) // 1 .. 1e12, ascending
	}
	dups := make([]float64, 0, 6000)
	for _, v := range []float64{1, 64, 64, 1e3, 4.2e7, 9.99e11} {
		for i := 0; i < 1000; i++ {
			dups = append(dups, v)
		}
	}
	sort.Float64s(dups)
	mixed := make([]float64, 4000)
	for i := range mixed {
		mixed[i] = math.Pow(10, rng.Float64()*15)
	}
	withZeros := append([]float64{0, 0, 0, 0.25, 0.99}, sorted[:500]...)
	return map[string][]float64{
		"sorted":          sorted,
		"duplicate-heavy": dups,
		"mixed":           mixed,
		"with-zeros":      withZeros,
	}
}

// TestQuantileSketchMergeMatchesSequential: a merged sketch must answer
// every query bit-identically to one sketch that saw the whole stream —
// counts are integers and extremes are exact, so there is no "merge
// error" on top of the sketch's own quantization.
func TestQuantileSketchMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for name, vals := range adversarialInputs(rng) {
		seq := NewQuantileSketch(0)
		for _, v := range vals {
			seq.Observe(v)
		}
		for _, k := range []int{2, 3, 7, 16} {
			assertSketchesIdentical(t, name, seq, sketchShards(t, vals, k, 0))
		}
	}
}

// TestQuantileSketchMergeErrorBound: the merged sketch's quantile error
// against the exact sample stays within the sequential sketch's
// documented bound — one bin width in log space, 10^(1/BinsPerDecade)-1
// relative — on the adversarial inputs. Merging must not compound
// quantization. The reference is the pair of order statistics
// bracketing the rank (the sketch answers in order-statistic terms; the
// interpolating CDF quantile can sit between two distant observations
// at a duplicate-run boundary, which is a definition difference, not
// sketch error).
func TestQuantileSketchMergeErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bound := math.Pow(10, 1.0/float64(DefaultBinsPerDecade)) - 1
	for name, vals := range adversarialInputs(rng) {
		if name == "with-zeros" {
			continue // sub-1 values collapse into the zero bucket by design
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		merged := sketchShards(t, vals, 8, 0)
		for q := 0.05; q <= 0.99; q += 0.01 {
			rank := q * float64(len(sorted))
			i0 := int(math.Ceil(rank)) - 2
			i1 := int(math.Ceil(rank))
			if i0 < 0 {
				i0 = 0
			}
			if i1 >= len(sorted) {
				i1 = len(sorted) - 1
			}
			lo, hi := sorted[i0], sorted[i1]
			got := merged.Quantile(q)
			if got < lo/(1+bound) || got > hi*(1+bound) {
				t.Errorf("%s: Quantile(%.2f): merged %g outside [%g, %g] widened by the %.4f bound",
					name, q, got, lo, hi, bound)
			}
		}
	}
}

// TestQuantileSketchMergeLayoutMismatch: sketches of different
// resolution must refuse to merge rather than silently corrupt.
func TestQuantileSketchMergeLayoutMismatch(t *testing.T) {
	a := NewQuantileSketch(64)
	b := NewQuantileSketch(128)
	a.Observe(10)
	b.Observe(10)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different binsPerDecade did not error")
	}
}

// TestQuantileSketchMergeEmpty: empty sketches are the neutral element
// on both sides.
func TestQuantileSketchMergeEmpty(t *testing.T) {
	empty := NewQuantileSketch(0)
	full := NewQuantileSketch(0)
	for _, v := range []float64{0, 2, 300, 4.5e6} {
		full.Observe(v)
	}
	if err := full.Merge(empty); err != nil {
		t.Fatal(err)
	}
	if full.Len() != 4 || full.Min() != 0 || full.Max() != 4.5e6 {
		t.Fatalf("merging empty changed the sketch: len=%d min=%g max=%g", full.Len(), full.Min(), full.Max())
	}
	if err := empty.Merge(full); err != nil {
		t.Fatal(err)
	}
	seq := NewQuantileSketch(0)
	for _, v := range []float64{0, 2, 300, 4.5e6} {
		seq.Observe(v)
	}
	assertSketchesIdentical(t, "empty-receiver", seq, empty)
}
