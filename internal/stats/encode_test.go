package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/binenc"
)

// TestExactSumEncodeExact: the decoded accumulator carries the exact
// expansion state — same Sum(), and same future behavior when more
// values are added after the round-trip.
func TestExactSumEncodeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s ExactSum
	for i := 0; i < 2000; i++ {
		s.Add(math.Ldexp(rng.Float64()-0.5, rng.Intn(120)-60))
	}

	r := binenc.NewReader(s.AppendBinary(nil))
	got := ReadExactSum(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", r.Remaining())
	}
	if !reflect.DeepEqual(s.partials, got.partials) {
		t.Fatal("expansion partials did not round-trip verbatim")
	}
	if s.Sum() != got.Sum() {
		t.Fatalf("sum drifted: %v vs %v", s.Sum(), got.Sum())
	}
	// Future adds behave identically.
	s.Add(1e-9)
	got.Add(1e-9)
	if s.Sum() != got.Sum() {
		t.Fatalf("post-round-trip add diverged: %v vs %v", s.Sum(), got.Sum())
	}
}

func TestExactSumEncodeEmpty(t *testing.T) {
	var s ExactSum
	r := binenc.NewReader(s.AppendBinary(nil))
	got := ReadExactSum(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if got.Sum() != 0 || len(got.partials) != 0 {
		t.Fatalf("empty sum round-trip: %+v", got)
	}
}

// TestQuantileSketchEncodeExact: a decoded sketch answers every
// Distribution query identically to the original.
func TestQuantileSketchEncodeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewQuantileSketch(0)
	for i := 0; i < 5000; i++ {
		s.Observe(math.Pow(10, rng.Float64()*12))
	}
	s.Observe(0) // zero bucket

	r := binenc.NewReader(s.AppendBinary(nil))
	got := ReadQuantileSketch(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", r.Remaining())
	}
	if got.Len() != s.Len() || got.Min() != s.Min() || got.Max() != s.Max() {
		t.Fatalf("len/min/max drifted: %d/%v/%v vs %d/%v/%v",
			got.Len(), got.Min(), got.Max(), s.Len(), s.Min(), s.Max())
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		if a, b := s.Quantile(q), got.Quantile(q); a != b {
			t.Errorf("Quantile(%g): %v vs %v", q, a, b)
		}
	}
	for _, x := range []float64{0.5, 1, 100, 1e6, 1e11} {
		if a, b := s.P(x), got.P(x); a != b {
			t.Errorf("P(%g): %v vs %v", x, a, b)
		}
	}
	// And it still merges: layout survived.
	other := NewQuantileSketch(0)
	other.Observe(42)
	if err := got.Merge(other); err != nil {
		t.Fatalf("decoded sketch cannot merge: %v", err)
	}
}

func TestReadLogHistogramCorrupt(t *testing.T) {
	h := NewLogHistogram(8, 0, 4)
	h.Observe(123)
	b := h.AppendBinary(nil)
	r := binenc.NewReader(b[:len(b)-1])
	ReadLogHistogram(r)
	if r.Err() == nil {
		t.Error("truncated histogram decoded without error")
	}
}
