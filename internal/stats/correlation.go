package stats

import (
	"errors"
	"math"
)

// Pearson returns the Pearson product-moment correlation coefficient
// between two equal-length series. The paper computes exactly this between
// the hourly jobsSubmitted(t), dataSizeBytes(t) and
// computeTimeTaskSeconds(t) vectors (§5.3, Figure 9).
//
// It returns an error for mismatched lengths, fewer than two points, or a
// zero-variance series (correlation undefined).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: series length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0, errors.New("stats: need at least 2 points for correlation")
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// SpearmanRank returns the Spearman rank correlation: Pearson correlation
// of the rank-transformed series. It is robust to the heavy-tailed hourly
// byte counts in these workloads and is provided for sensitivity analysis
// alongside the paper's Pearson values.
func SpearmanRank(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: series length mismatch")
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks converts values to their (average-tie) ranks.
func ranks(xs []float64) []float64 {
	type iv struct {
		idx int
		v   float64
	}
	order := make([]iv, len(xs))
	for i, v := range xs {
		order[i] = iv{i, v}
	}
	// insertion sort by value; n is small (hourly bins over weeks).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].v < order[j-1].v; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]float64, len(xs))
	i := 0
	for i < len(order) {
		j := i
		for j+1 < len(order) && order[j+1].v == order[i].v {
			j++
		}
		// average rank for ties, 1-based ranks
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[order[k].idx] = avg
		}
		i = j + 1
	}
	return out
}
