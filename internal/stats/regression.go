package stats

import (
	"errors"
	"math"
)

// LinearFit is the result of an ordinary least-squares line fit
// y = Slope*x + Intercept, with the coefficient of determination R2.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine fits y = a*x + b by ordinary least squares.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: series length mismatch")
	}
	n := float64(len(xs))
	if n < 2 {
		return LinearFit{}, errors.New("stats: need at least 2 points for regression")
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: x has zero variance")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // constant y perfectly fit by horizontal line
	}
	return fit, nil
}

// ZipfFit describes a fitted Zipf-like rank-frequency relationship
// frequency ∝ rank^(-Alpha). Alpha is reported positive; the paper states
// the file-access distributions have log-log "slope parameters ...
// approximately 5/6 across workloads" (§4.2, Figure 2), i.e. Alpha ≈ 0.833.
type ZipfFit struct {
	// Alpha is the positive Zipf exponent (negated log-log slope).
	Alpha float64
	// R2 of the log-log linear fit; near 1 means "approximately straight
	// lines" as the paper observes.
	R2 float64
	// Ranks is the number of distinct items the fit covered.
	Ranks int
}

// FitZipf fits a Zipf exponent to a set of access frequencies (one entry
// per item, e.g. accesses per file). Frequencies are sorted into descending
// rank order internally; zero frequencies are dropped. At least two
// distinct positive frequencies are required.
func FitZipf(frequencies []uint64) (ZipfFit, error) {
	// Sort a copy descending.
	fs := make([]uint64, 0, len(frequencies))
	for _, f := range frequencies {
		if f > 0 {
			fs = append(fs, f)
		}
	}
	if len(fs) < 2 {
		return ZipfFit{}, errors.New("stats: need >= 2 positive frequencies for Zipf fit")
	}
	sortDescUint64(fs)
	logRank := make([]float64, len(fs))
	logFreq := make([]float64, len(fs))
	for i, f := range fs {
		logRank[i] = math.Log10(float64(i + 1))
		logFreq[i] = math.Log10(float64(f))
	}
	fit, err := FitLine(logRank, logFreq)
	if err != nil {
		return ZipfFit{}, err
	}
	return ZipfFit{Alpha: -fit.Slope, R2: fit.R2, Ranks: len(fs)}, nil
}

// sortDescUint64 sorts in place, descending. Hand-rolled heapsort keeps the
// package dependency-free and avoids an extra float conversion pass.
func sortDescUint64(a []uint64) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftMin(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftMin(a, 0, end)
	}
}

// siftMin maintains a min-heap so that repeated extraction yields a
// descending array.
func siftMin(a []uint64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && a[child+1] < a[child] {
			child++
		}
		if a[root] <= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}
