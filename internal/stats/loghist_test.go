package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestQuantileSketchEmpty(t *testing.T) {
	h := NewQuantileSketch(0)
	if h.Len() != 0 || h.Min() != 0 || h.Max() != 0 || h.Median() != 0 {
		t.Error("empty sketch should report zeros")
	}
	if h.P(10) != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty sketch P/Quantile should be 0")
	}
	if pts := h.LogPoints(10); pts != nil {
		t.Error("empty sketch LogPoints should be nil")
	}
}

// TestQuantileSketchQuantileAccuracy: against an exact CDF over lognormal
// data (the shape of per-job byte sizes), sketch quantiles must land
// within the documented relative error of the exact ones.
func TestQuantileSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	n := 200000
	vals := make([]float64, n)
	h := NewQuantileSketch(0)
	for i := range vals {
		v := math.Round(math.Exp(12 + 3*rng.NormFloat64())) // ~e^12 median, heavy spread
		vals[i] = v
		h.Observe(v)
	}
	c := NewCDF(vals)
	if h.Len() != c.Len() {
		t.Fatalf("Len %d != %d", h.Len(), c.Len())
	}
	if h.Min() != c.Min() || h.Max() != c.Max() {
		t.Errorf("min/max not exact: %v/%v vs %v/%v", h.Min(), h.Max(), c.Min(), c.Max())
	}
	// Bin width is 10^(1/binsPerDecade); midpoint rule gives half that,
	// plus sampling noise at the tails. Allow 2 bin widths.
	tol := math.Pow(10, 2.0/float64(DefaultBinsPerDecade)) // ≈ 3.7% relative
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		exact, approx := c.Quantile(q), h.Quantile(q)
		if approx < exact/tol || approx > exact*tol {
			t.Errorf("q=%.2f: sketch %.4g vs exact %.4g (beyond ×%.4f)", q, approx, exact, tol)
		}
	}
	// P at decade boundaries must agree closely (absolute error).
	for _, x := range []float64{1e3, 1e5, 1e7} {
		if d := math.Abs(c.P(x) - h.P(x)); d > 0.01 {
			t.Errorf("P(%g): |%.4f - %.4f| = %.4f > 0.01", x, c.P(x), h.P(x), d)
		}
	}
}

func TestQuantileSketchUnderflowAndClamp(t *testing.T) {
	h := NewQuantileSketch(64)
	for i := 0; i < 90; i++ {
		h.Observe(0) // zero data sizes (map-only shuffle bytes)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1e6)
	}
	if h.Min() != 0 || h.Max() != 1e6 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if m := h.Median(); m != 0 {
		t.Errorf("median of 90%% zeros = %v, want 0", m)
	}
	if q := h.Quantile(0.99); q != 1e6 {
		t.Errorf("q99 = %v, want clamped to max 1e6", q)
	}
	if p := h.P(0.5); math.Abs(p-0.9) > 1e-9 {
		t.Errorf("P(0.5) = %v, want 0.9", p)
	}
}

func TestQuantileSketchSingleValue(t *testing.T) {
	h := NewQuantileSketch(0)
	h.Observe(42)
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); v != 42 {
			t.Errorf("Quantile(%v) = %v, want 42 (clamped)", q, v)
		}
	}
	if p := h.P(41); p != 0 {
		t.Errorf("P(41) = %v, want 0", p)
	}
	if p := h.P(42); p != 1 {
		t.Errorf("P(42) = %v, want 1", p)
	}
	if pts := h.LogPoints(10); len(pts) == 0 {
		t.Error("LogPoints empty for single value")
	}
}
