package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestSumMeanEmpty(t *testing.T) {
	if s := Sum(nil); s != 0 {
		t.Errorf("Sum(nil) = %v, want 0", s)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Variance(nil); err == nil {
		t.Error("Variance(nil) should error")
	}
	if _, err := StdDev(nil); err == nil {
		t.Error("StdDev(nil) should error")
	}
	if _, err := Median(nil); err == nil {
		t.Error("Median(nil) should error")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("Mean = %v, %v; want 5, nil", m, err)
	}
	v, err := Variance(xs)
	if err != nil || v != 4 {
		t.Fatalf("Variance = %v, %v; want 4, nil", v, err)
	}
	sd, err := StdDev(xs)
	if err != nil || sd != 2 {
		t.Fatalf("StdDev = %v, %v; want 2, nil", sd, err)
	}
}

func TestMedianOddEven(t *testing.T) {
	m, _ := Median([]float64{3, 1, 2})
	if m != 2 {
		t.Errorf("Median odd = %v, want 2", m)
	}
	m, _ = Median([]float64{4, 1, 3, 2})
	if m != 2.5 {
		t.Errorf("Median even = %v, want 2.5", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50}, {0.1, 14},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("Quantile(-0.1) should error")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("Quantile(1.1) should error")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Error("Quantile(NaN) should error")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	want := []float64{5, 1, 4, 2, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("Quantile mutated input: %v", xs)
		}
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v, %v), want (-1, 7, nil)", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil) should error")
	}
}

func TestGeometricMean(t *testing.T) {
	g, err := GeometricMean([]float64{1, 10, 100})
	if err != nil || !almostEqual(g, 10, 1e-9) {
		t.Errorf("GeometricMean = %v, %v; want 10", g, err)
	}
	if _, err := GeometricMean([]float64{1, 0, 2}); err == nil {
		t.Error("GeometricMean with zero should error")
	}
	if _, err := GeometricMean(nil); err == nil {
		t.Error("GeometricMean(nil) should error")
	}
}

func TestOrdersOfMagnitudeSpan(t *testing.T) {
	if s := OrdersOfMagnitudeSpan([]float64{1, 1e6}); !almostEqual(s, 6, 1e-12) {
		t.Errorf("span = %v, want 6", s)
	}
	// zeros are skipped
	if s := OrdersOfMagnitudeSpan([]float64{0, 10, 1000}); !almostEqual(s, 2, 1e-12) {
		t.Errorf("span = %v, want 2", s)
	}
	if s := OrdersOfMagnitudeSpan([]float64{5}); s != 0 {
		t.Errorf("span single = %v, want 0", s)
	}
	if s := OrdersOfMagnitudeSpan(nil); s != 0 {
		t.Errorf("span nil = %v, want 0", s)
	}
}

// Property: for any sample the median lies between min and max, and
// quantiles are monotone in q.
func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v, err := Quantile(xs, math.Min(q, 1))
			if err != nil {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		lo, hi, _ := MinMax(xs)
		med, _ := Median(xs)
		return med >= lo && med <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
