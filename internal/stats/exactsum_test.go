package stats

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// bigSum computes the reference value: the exact rational sum of the
// inputs, rounded once to float64 by math/big.
func bigSum(vals []float64) float64 {
	acc := new(big.Float).SetPrec(2000)
	for _, v := range vals {
		acc.Add(acc, new(big.Float).SetPrec(2000).SetFloat64(v))
	}
	f, _ := acc.Float64()
	return f
}

// randomValues mixes magnitudes aggressively — the regime where naive
// summation loses bits.
func randomValues(rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		mag := math.Pow(10, float64(rng.Intn(24))-6)
		v := rng.Float64() * mag
		if rng.Intn(4) == 0 {
			v = -v
		}
		vals[i] = v
	}
	return vals
}

// TestExactSumMatchesBigFloat pins Sum() to the correctly rounded exact
// sum on adversarial magnitude mixes.
func TestExactSumMatchesBigFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		vals := randomValues(rng, 1+rng.Intn(300))
		var s ExactSum
		for _, v := range vals {
			s.Add(v)
		}
		want := bigSum(vals)
		if got := s.Sum(); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d: Sum()=%g, big.Float reference=%g (diff %g)",
				trial, got, want, got-want)
		}
	}
}

// TestExactSumOrderIndependent is the mergeable-builder contract: any
// permutation of the inputs, and any contiguous sharding of them merged
// in any order, produces bit-identical Sum() results.
func TestExactSumOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		vals := randomValues(rng, 2+rng.Intn(200))

		var seq ExactSum
		for _, v := range vals {
			seq.Add(v)
		}
		want := seq.Sum()

		// Random permutation.
		perm := rng.Perm(len(vals))
		var shuffled ExactSum
		for _, i := range perm {
			shuffled.Add(vals[i])
		}
		if got := shuffled.Sum(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: permuted sum %g != sequential %g", trial, got, want)
		}

		// Contiguous shards merged in shard order.
		k := 1 + rng.Intn(8)
		shards := make([]ExactSum, k)
		for i, v := range vals {
			shards[i*k/len(vals)].Add(v)
		}
		var merged ExactSum
		for i := range shards {
			merged.Merge(&shards[i])
		}
		if got := merged.Sum(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: %d-shard merged sum %g != sequential %g", trial, k, got, want)
		}
	}
}

// TestExactSumMergeDoesNotMutateSource proves Merge treats its argument
// as read-only, so frozen shard partials can be merged repeatedly.
func TestExactSumMergeDoesNotMutateSource(t *testing.T) {
	var a, b ExactSum
	for i := 0; i < 50; i++ {
		a.Add(1e16)
		a.Add(1.0 / 3.0)
		b.Add(-1e-9)
		b.Add(2.5e12)
	}
	before := b.Sum()
	a.Merge(&b)
	a.Merge(&b) // merge twice: b must be unchanged between merges
	if after := b.Sum(); math.Float64bits(after) != math.Float64bits(before) {
		t.Fatalf("Merge mutated its source: %g -> %g", before, after)
	}
}

// TestExactSumZeroValue: the zero value is an empty, usable sum.
func TestExactSumZeroValue(t *testing.T) {
	var s ExactSum
	if got := s.Sum(); got != 0 {
		t.Fatalf("empty Sum() = %g, want 0", got)
	}
	var o ExactSum
	s.Merge(&o)
	if got := s.Sum(); got != 0 {
		t.Fatalf("empty-merged Sum() = %g, want 0", got)
	}
	s.Add(1.5)
	if got := s.Sum(); got != 1.5 {
		t.Fatalf("Sum() = %g, want 1.5", got)
	}
}

// TestExactSumCancellation: classic catastrophic-cancellation cases that
// defeat naive and Kahan summation.
func TestExactSumCancellation(t *testing.T) {
	cases := []struct {
		vals []float64
		want float64
	}{
		{[]float64{1e16, 1, -1e16}, 1},
		{[]float64{1e100, 1, -1e100, 1}, 2},
		{[]float64{1, 1e-17, -1}, 1e-17},
	}
	for _, c := range cases {
		var s ExactSum
		for _, v := range c.vals {
			s.Add(v)
		}
		if got := s.Sum(); got != c.want {
			t.Errorf("Sum(%v) = %g, want %g", c.vals, got, c.want)
		}
	}
}
