package storage

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// Stage writes a whole in-memory trace as a new sealed (durable but
// uncommitted) generation: segments, snapshot, fsyncs — everything but
// the manifest rename. The serving layer runs this outside its store
// lock and serializes only the cheap Commit, so a multi-second
// write-through never blocks readers. The trace must already be
// normalized and fp must be its canonical fingerprint.
func (s *Store) Stage(name string, tr *trace.Trace, fp string, partial *core.Partial) (*Sealed, error) {
	st, err := s.NewStager(name)
	if err != nil {
		return nil, err
	}
	for _, j := range tr.Jobs {
		if err := st.Write(j); err != nil {
			st.Abort()
			return nil, err
		}
	}
	sum := tr.Summarize()
	sealed, err := st.Seal(tr.Meta, fp, tr.Len(), int64(sum.BytesMoved), partial)
	if err != nil {
		st.Abort()
		return nil, err
	}
	return sealed, nil
}

// Write is Stage plus Commit — the one-call write-through for callers
// that do not need to interleave the commit with their own locking.
func (s *Store) Write(name string, tr *trace.Trace, fp string, partial *core.Partial) (*Trace, error) {
	sealed, err := s.Stage(name, tr, fp, partial)
	if err != nil {
		return nil, err
	}
	t, err := sealed.Commit()
	if err != nil {
		sealed.Abort()
		return nil, err
	}
	return t, nil
}
