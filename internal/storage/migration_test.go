package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/colseg"
	"repro/internal/trace"
)

// The format-migration suite: a data directory written entirely in the
// legacy JSONL segment format (what every store before the columnar
// codec produced) must recover under a columnar-default store, keep
// serving byte-identical jobs, and gain columnar segments only as
// traces are re-ingested — JSONL and colseg generations coexisting in
// one root with no flag day.

// openStoreCodec opens a store with an explicit segment codec.
func openStoreCodec(t testing.TB, root string, segJobs int, codec string) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(root, Options{SegmentJobs: segJobs, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rec
}

// readbackFingerprint streams the stored trace and fingerprints it.
func readbackFingerprint(t *testing.T, st *Trace) string {
	t.Helper()
	src, err := st.Open()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := trace.Fingerprint(src)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestJSONLCodecWritesLegacyLayout: a JSONL-codec store produces
// exactly what the pre-codec store produced — plain JSONL segment
// bytes and a manifest with no codec field at all — so the migration
// test below genuinely starts from a v5-era directory.
func TestJSONLCodecWritesLegacyLayout(t *testing.T) {
	root := t.TempDir()
	s, _ := openStoreCodec(t, root, 200, CodecJSONL)
	tr := genTrace(t, "CC-b", 1, 25*time.Hour)
	writeTrace(t, s, "legacy", tr)

	enc, err := encodeName("legacy")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "traces", enc)
	seg, err := os.ReadFile(mustOneSegment(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(seg, []byte(`{"id":`)) {
		t.Errorf("JSONL-codec segment starts %q, want canonical JSONL", seg[:min(len(seg), 12)])
	}
	if bytes.HasPrefix(seg, []byte(colseg.Magic)) {
		t.Error("JSONL-codec store wrote a columnar segment")
	}
	man, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(man), `"codec"`) {
		t.Error("JSONL-codec manifest mentions a codec; legacy manifests must stay byte-compatible")
	}
}

// TestMigrationJSONLToColumnar: the full upgrade path. A legacy
// (JSONL-only) data directory is reopened by a columnar-default store:
// every trace recovers and reads back with its original fingerprint; a
// re-ingest replaces one trace's segments with columnar ones while the
// untouched trace keeps its JSONL segments; and a final reopen recovers
// the mixed-codec root intact.
func TestMigrationJSONLToColumnar(t *testing.T) {
	root := t.TempDir()
	trA := genTrace(t, "CC-b", 1, 25*time.Hour)
	trB := genTrace(t, "CC-e", 2, 25*time.Hour)
	fpA, fpB := fingerprint(t, trA), fingerprint(t, trB)

	legacy, _ := openStoreCodec(t, root, 200, CodecJSONL)
	writeTrace(t, legacy, "alpha", trA)
	writeTrace(t, legacy, "beta", trB)
	legacy.Close()

	// Upgrade: reopen with the columnar default.
	s, rec := openStore(t, root, 200)
	if len(rec.Traces) != 2 || len(rec.Dropped) != 0 {
		t.Fatalf("recovered %d traces / %d dropped from legacy root, want 2/0: %+v", len(rec.Traces), len(rec.Dropped), rec.Dropped)
	}
	byName := map[string]*Trace{}
	for _, st := range rec.Traces {
		byName[st.Name()] = st
	}
	if got := readbackFingerprint(t, byName["alpha"]); got != fpA {
		t.Fatalf("alpha reads back fingerprint %s, want %s", got, fpA)
	}
	if got := readbackFingerprint(t, byName["beta"]); got != fpB {
		t.Fatalf("beta reads back fingerprint %s, want %s", got, fpB)
	}

	// Re-ingest alpha: its new generation is columnar, same identity.
	stA := writeTrace(t, s, "alpha", trA)
	if got := readbackFingerprint(t, stA); got != fpA {
		t.Fatalf("re-ingested alpha fingerprint %s, want %s", got, fpA)
	}
	encA, err := encodeName("alpha")
	if err != nil {
		t.Fatal(err)
	}
	dirA := filepath.Join(root, "traces", encA)
	manA := readVictimManifest(t, dirA)
	for _, seg := range manA.Segments {
		if seg.Codec != CodecColumnar {
			t.Fatalf("re-ingested alpha segment %s codec %q, want %q", seg.File, seg.Codec, CodecColumnar)
		}
		b, err := os.ReadFile(filepath.Join(dirA, seg.File))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(b, []byte(colseg.Magic)) {
			t.Fatalf("re-ingested alpha segment %s lacks the columnar magic", seg.File)
		}
	}
	// Beta is untouched: still JSONL on disk, still serving.
	encB, err := encodeName("beta")
	if err != nil {
		t.Fatal(err)
	}
	manB := readVictimManifest(t, filepath.Join(root, "traces", encB))
	for _, seg := range manB.Segments {
		if seg.Codec != "" {
			t.Fatalf("untouched beta segment %s gained codec %q", seg.File, seg.Codec)
		}
	}
	s.Close()

	// The mixed-codec root recovers whole.
	s2, rec2 := openStore(t, root, 200)
	defer s2.Close()
	if len(rec2.Traces) != 2 || len(rec2.Dropped) != 0 {
		t.Fatalf("mixed-codec root recovered %d/%d, want 2/0: %+v", len(rec2.Traces), len(rec2.Dropped), rec2.Dropped)
	}
	for _, st := range rec2.Traces {
		want := fpA
		if st.Name() == "beta" {
			want = fpB
		}
		if got := readbackFingerprint(t, st); got != want {
			t.Fatalf("%s reads back fingerprint %s after mixed-codec recovery, want %s", st.Name(), got, want)
		}
	}
}
