package storage

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colseg"
	"repro/internal/core"
	"repro/internal/trace"
)

// Trace is an immutable handle to one committed trace generation. Its
// methods read the generation's files; a later re-ingest or delete of
// the same name does not invalidate an in-progress read (segments are
// unlinked, never rewritten, and an open descriptor survives unlink).
type Trace struct {
	dir string
	man *Manifest
}

// Name returns the trace's stored name.
func (t *Trace) Name() string { return t.man.Name }

// Fingerprint returns the committed content fingerprint.
func (t *Trace) Fingerprint() string { return t.man.Fingerprint }

// Meta returns the normalized trace metadata.
func (t *Trace) Meta() trace.Meta { return t.man.Meta.TraceMeta() }

// Jobs returns the committed job count.
func (t *Trace) Jobs() int { return t.man.Jobs }

// BytesMoved returns the committed Table-1 bytes-moved total.
func (t *Trace) BytesMoved() int64 { return t.man.BytesMoved }

// Segments returns the number of segment files.
func (t *Trace) Segments() int { return len(t.man.Segments) }

// SizeBytes returns the committed on-disk size of the job data.
func (t *Trace) SizeBytes() int64 {
	var n int64
	for _, seg := range t.man.Segments {
		n += seg.Size
	}
	return n
}

// Open returns a Source streaming every job in order across the
// segments — the sequential out-of-core read path. The source owns its
// file descriptors and closes them at io.EOF or on error; abandon it
// only at a stream boundary.
func (t *Trace) Open() (trace.Source, error) {
	return &chainSource{meta: t.Meta(), sources: segmentSources(t.dir, t.Meta(), t.man.Segments)}, nil
}

// Shards returns one Source per segment, each carrying the full
// trace's metadata — the scatter inputs for the out-of-core
// shard-parallel analysis (core.BuildShardsPartial): a trace larger
// than memory is scanned segment-at-a-time across the CPUs.
func (t *Trace) Shards() []trace.Source {
	return segmentSources(t.dir, t.Meta(), t.man.Segments)
}

// ScanShards is Shards for aggregate-and-discard consumers: columnar
// segments decode into one reused batch per shard, so a job a source
// yields is valid only until that source's next Next call. The
// disk-scan analysis path folds each job into a partial aggregate and
// moves on, which is exactly that shape; anything retaining *Job
// pointers (trace.Collect) must use Shards or Open. Strings inside the
// jobs are immutable and safe to retain either way. JSONL segments are
// unaffected — their decoder allocates per job regardless.
func (t *Trace) ScanShards() []trace.Source {
	out := segmentSources(t.dir, t.Meta(), t.man.Segments)
	for _, src := range out {
		src.(*segmentSource).volatile = true
	}
	return out
}

// ScanStats counts what a windowed disk scan actually touched — the
// proof that zone maps pruned, independent of timing. Block counters
// are harvested from each segment's colseg reader when its stream ends
// (EOF, error, or Close), so read them only after the scan completes.
// The counters are atomic: shard sources finish on scatter workers.
type ScanStats struct {
	Segments       int // segments in the committed generation
	SegmentsPruned int // skipped via manifest min/max without opening
	blocksRead     atomic.Int64
	blocksPruned   atomic.Int64
}

// BlocksRead returns how many colseg blocks the scan decoded.
func (st *ScanStats) BlocksRead() int64 { return st.blocksRead.Load() }

// BlocksPruned returns how many colseg blocks zone maps skipped inside
// segments that were opened.
func (st *ScanStats) BlocksPruned() int64 { return st.blocksPruned.Load() }

// WindowShards returns volatile scan sources for the jobs submitted in
// [from, to], pruned at two levels: segments whose manifest zone map
// lies wholly outside the window are skipped without opening (legacy
// manifests without zone maps never prune), and colseg blocks inside
// kept segments are skipped via their per-block zone maps. Pruning is
// conservative at second granularity — kept sources may still yield
// edge jobs outside the window, so the caller filters exactly (e.g.
// trace.NewWindowSource). The returned stats are valid once every
// source has been drained or closed.
func (t *Trace) WindowShards(from, to time.Time) ([]trace.Source, *ScanStats) {
	stats := &ScanStats{Segments: len(t.man.Segments)}
	fromSec, toSec := from.Unix(), to.Unix()
	meta := t.Meta()
	var out []trace.Source
	for _, seg := range t.man.Segments {
		if seg.pruneOutside(fromSec, toSec) {
			stats.SegmentsPruned++
			continue
		}
		out = append(out, &segmentSource{
			path:     filepath.Join(t.dir, seg.File),
			meta:     meta,
			codec:    seg.Codec,
			size:     seg.Size,
			volatile: true,
			window:   true,
			from:     from,
			to:       to,
			stats:    stats,
		})
	}
	return out, stats
}

// Collect materializes the whole trace in memory — the reload path for
// analyses that need random access. The caller owns the result.
func (t *Trace) Collect() (*trace.Trace, error) {
	src, err := t.Open()
	if err != nil {
		return nil, err
	}
	tr, err := trace.Collect(src)
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// LoadPartial reads, verifies, and decodes the persisted aggregate
// snapshot. It returns (nil, nil) when the trace committed without one,
// and an error when the snapshot exists but fails its CRC or decode —
// callers treat that as "rebuild from the jobs", never as fatal.
func (t *Trace) LoadPartial() (*core.Partial, error) {
	if t.man.Partial == nil {
		return nil, nil
	}
	path := filepath.Join(t.dir, t.man.Partial.File)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: reading partial snapshot: %w", err)
	}
	if int64(len(b)) != t.man.Partial.Size {
		return nil, fmt.Errorf("storage: partial snapshot is %d bytes, manifest says %d", len(b), t.man.Partial.Size)
	}
	if crc := crc32.Checksum(b, castagnoli); crc != t.man.Partial.CRC32C {
		return nil, fmt.Errorf("storage: partial snapshot CRC mismatch (%08x vs %08x)", crc, t.man.Partial.CRC32C)
	}
	return core.UnmarshalPartial(b)
}

// segmentSources builds one lazily-opened Source per segment, each
// decoding with the codec its manifest entry records.
func segmentSources(dir string, meta trace.Meta, segs []SegmentInfo) []trace.Source {
	out := make([]trace.Source, len(segs))
	for i, seg := range segs {
		out[i] = &segmentSource{path: filepath.Join(dir, seg.File), meta: meta, codec: seg.Codec, size: seg.Size}
	}
	return out
}

// segmentSource streams one segment file's jobs. The file opens on the
// first Next and closes at io.EOF or on the first error; a consumer
// abandoning the stream mid-segment must Close it to release the
// descriptor (and the colseg reader's pooled buffers). The decoder is
// chosen by the segment's recorded codec, so a trace directory mixing
// columnar and legacy JSONL segments reads seamlessly.
type segmentSource struct {
	path     string
	meta     trace.Meta
	codec    string
	size     int64 // committed byte count from the manifest
	volatile bool
	window   bool
	from, to time.Time
	stats    *ScanStats
	f        *os.File
	cr       *colseg.Reader
	next     func() (*trace.Job, error)
	done     bool
}

// Meta returns the full trace's metadata.
func (s *segmentSource) Meta() trace.Meta { return s.meta }

// Next yields the next job, or io.EOF at segment end.
func (s *segmentSource) Next() (*trace.Job, error) {
	if s.done {
		return nil, io.EOF
	}
	if s.f == nil {
		f, err := os.Open(s.path)
		if err != nil {
			s.done = true
			return nil, fmt.Errorf("storage: opening segment: %w", err)
		}
		s.f = f
		// A live-append trace's open segment may hold bytes past the
		// committed batch boundary (and a concurrent appender keeps
		// growing it); readers see exactly the manifest-recorded prefix.
		// Batch commits flush the codec at a self-contained boundary, so
		// the prefix always decodes cleanly.
		var rd io.Reader = f
		if s.size > 0 {
			rd = io.LimitReader(f, s.size)
		}
		switch s.codec {
		case CodecColumnar:
			var opts []colseg.Option
			if s.volatile {
				opts = append(opts, colseg.WithVolatileBatch())
			}
			if s.window {
				opts = append(opts, colseg.WithTimeRange(s.from, s.to))
			}
			s.cr = colseg.NewReader(rd, s.meta, opts...)
			s.next = s.cr.Next
		default: // "" and CodecJSONL: canonical JSONL
			s.next = trace.NewJSONLBodyReader(rd, s.meta).Next
		}
	}
	j, err := s.next()
	if err != nil {
		s.done = true
		s.finish()
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("storage: reading %s: %w", filepath.Base(s.path), err)
	}
	return j, nil
}

// finish releases the descriptor and harvests the colseg reader's
// block counters into the scan stats, exactly once per stream.
func (s *segmentSource) finish() {
	if s.cr != nil {
		if s.stats != nil {
			s.stats.blocksRead.Add(int64(s.cr.BlocksRead()))
			s.stats.blocksPruned.Add(int64(s.cr.BlocksPruned()))
		}
		s.cr = nil
	}
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// Close abandons the stream, releasing the open descriptor and the
// reader's pooled buffers. A source already drained to EOF (or failed)
// has released them; Close is then a no-op. Never an error — it exists
// for early-exit paths.
func (s *segmentSource) Close() error {
	if !s.done {
		s.done = true
		if s.cr != nil {
			s.cr.Close()
		}
		s.finish()
	}
	return nil
}

// chainSource concatenates segment sources into one ordered stream.
// It carries the manifest metadata itself so a committed trace with
// zero segments (e.g. a sealed-empty generation) still reports its
// identity instead of a zero Meta.
type chainSource struct {
	meta    trace.Meta
	sources []trace.Source
	i       int
}

// Meta returns the trace metadata.
func (c *chainSource) Meta() trace.Meta { return c.meta }

// Next yields the next job across segment boundaries.
func (c *chainSource) Next() (*trace.Job, error) {
	for c.i < len(c.sources) {
		j, err := c.sources[c.i].Next()
		if err == io.EOF {
			c.i++
			continue
		}
		return j, err
	}
	return nil, io.EOF
}

// Close abandons the chain, closing the in-progress segment and every
// unread one after it.
func (c *chainSource) Close() error {
	for ; c.i < len(c.sources); c.i++ {
		if cl, ok := c.sources[c.i].(io.Closer); ok {
			cl.Close()
		}
	}
	return nil
}

// verifyBufPool recycles the read buffer across verifySegment calls:
// recovery of a many-segment (post-append, pre-compaction) directory
// verifies every segment at startup, and one pooled 64 KiB buffer beats
// a fresh allocation per segment.
var verifyBufPool = sync.Pool{
	New: func() any { b := make([]byte, 1<<16); return &b },
}

// verifySegment streams a committed segment against its recorded size
// and CRC. A file *longer* than recorded is a live-append tail past the
// last committed batch: the committed prefix is CRC-verified and the
// tail truncated away, returning how many bytes were dropped. A short
// file or a CRC mismatch is a torn segment and fails.
func verifySegment(dir string, seg SegmentInfo) (trimmed int64, err error) {
	path := filepath.Join(dir, seg.File)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, fmt.Errorf("segment %s: %w", seg.File, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("segment %s: %w", seg.File, err)
	}
	if fi.Size() < seg.Size {
		return 0, fmt.Errorf("segment %s: %d bytes on disk, manifest says %d", seg.File, fi.Size(), seg.Size)
	}
	crc := uint32(0)
	bufp := verifyBufPool.Get().(*[]byte)
	defer verifyBufPool.Put(bufp)
	buf := *bufp
	remaining := seg.Size
	for remaining > 0 {
		step := int64(len(buf))
		if step > remaining {
			step = remaining
		}
		n, err := io.ReadFull(f, buf[:step])
		if err != nil {
			return 0, fmt.Errorf("segment %s: %w", seg.File, err)
		}
		crc = crc32.Update(crc, castagnoli, buf[:n])
		remaining -= int64(n)
	}
	if crc != seg.CRC32C {
		return 0, fmt.Errorf("segment %s: CRC mismatch (%08x vs %08x)", seg.File, crc, seg.CRC32C)
	}
	if tail := fi.Size() - seg.Size; tail > 0 {
		if err := f.Truncate(seg.Size); err != nil {
			return 0, fmt.Errorf("segment %s: truncating uncommitted tail: %w", seg.File, err)
		}
		if err := f.Sync(); err != nil {
			return 0, fmt.Errorf("segment %s: syncing after truncate: %w", seg.File, err)
		}
		return tail, nil
	}
	return 0, nil
}
