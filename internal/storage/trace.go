package storage

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/colseg"
	"repro/internal/core"
	"repro/internal/trace"
)

// Trace is an immutable handle to one committed trace generation. Its
// methods read the generation's files; a later re-ingest or delete of
// the same name does not invalidate an in-progress read (segments are
// unlinked, never rewritten, and an open descriptor survives unlink).
type Trace struct {
	dir string
	man *Manifest
}

// Name returns the trace's stored name.
func (t *Trace) Name() string { return t.man.Name }

// Fingerprint returns the committed content fingerprint.
func (t *Trace) Fingerprint() string { return t.man.Fingerprint }

// Meta returns the normalized trace metadata.
func (t *Trace) Meta() trace.Meta { return t.man.Meta.TraceMeta() }

// Jobs returns the committed job count.
func (t *Trace) Jobs() int { return t.man.Jobs }

// BytesMoved returns the committed Table-1 bytes-moved total.
func (t *Trace) BytesMoved() int64 { return t.man.BytesMoved }

// Segments returns the number of segment files.
func (t *Trace) Segments() int { return len(t.man.Segments) }

// SizeBytes returns the committed on-disk size of the job data.
func (t *Trace) SizeBytes() int64 {
	var n int64
	for _, seg := range t.man.Segments {
		n += seg.Size
	}
	return n
}

// Open returns a Source streaming every job in order across the
// segments — the sequential out-of-core read path. The source owns its
// file descriptors and closes them at io.EOF or on error; abandon it
// only at a stream boundary.
func (t *Trace) Open() (trace.Source, error) {
	return &chainSource{sources: segmentSources(t.dir, t.Meta(), t.man.Segments)}, nil
}

// Shards returns one Source per segment, each carrying the full
// trace's metadata — the scatter inputs for the out-of-core
// shard-parallel analysis (core.BuildShardsPartial): a trace larger
// than memory is scanned segment-at-a-time across the CPUs.
func (t *Trace) Shards() []trace.Source {
	return segmentSources(t.dir, t.Meta(), t.man.Segments)
}

// ScanShards is Shards for aggregate-and-discard consumers: columnar
// segments decode into one reused batch per shard, so a job a source
// yields is valid only until that source's next Next call. The
// disk-scan analysis path folds each job into a partial aggregate and
// moves on, which is exactly that shape; anything retaining *Job
// pointers (trace.Collect) must use Shards or Open. Strings inside the
// jobs are immutable and safe to retain either way. JSONL segments are
// unaffected — their decoder allocates per job regardless.
func (t *Trace) ScanShards() []trace.Source {
	out := segmentSources(t.dir, t.Meta(), t.man.Segments)
	for _, src := range out {
		src.(*segmentSource).volatile = true
	}
	return out
}

// Collect materializes the whole trace in memory — the reload path for
// analyses that need random access. The caller owns the result.
func (t *Trace) Collect() (*trace.Trace, error) {
	src, err := t.Open()
	if err != nil {
		return nil, err
	}
	tr, err := trace.Collect(src)
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// LoadPartial reads, verifies, and decodes the persisted aggregate
// snapshot. It returns (nil, nil) when the trace committed without one,
// and an error when the snapshot exists but fails its CRC or decode —
// callers treat that as "rebuild from the jobs", never as fatal.
func (t *Trace) LoadPartial() (*core.Partial, error) {
	if t.man.Partial == nil {
		return nil, nil
	}
	path := filepath.Join(t.dir, t.man.Partial.File)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: reading partial snapshot: %w", err)
	}
	if int64(len(b)) != t.man.Partial.Size {
		return nil, fmt.Errorf("storage: partial snapshot is %d bytes, manifest says %d", len(b), t.man.Partial.Size)
	}
	if crc := crc32.Checksum(b, castagnoli); crc != t.man.Partial.CRC32C {
		return nil, fmt.Errorf("storage: partial snapshot CRC mismatch (%08x vs %08x)", crc, t.man.Partial.CRC32C)
	}
	return core.UnmarshalPartial(b)
}

// segmentSources builds one lazily-opened Source per segment, each
// decoding with the codec its manifest entry records.
func segmentSources(dir string, meta trace.Meta, segs []SegmentInfo) []trace.Source {
	out := make([]trace.Source, len(segs))
	for i, seg := range segs {
		out[i] = &segmentSource{path: filepath.Join(dir, seg.File), meta: meta, codec: seg.Codec}
	}
	return out
}

// segmentSource streams one segment file's jobs. The file opens on the
// first Next and closes at io.EOF or on the first error. The decoder is
// chosen by the segment's recorded codec, so a trace directory mixing
// columnar and legacy JSONL segments reads seamlessly.
type segmentSource struct {
	path     string
	meta     trace.Meta
	codec    string
	volatile bool
	f        *os.File
	next     func() (*trace.Job, error)
	done     bool
}

// Meta returns the full trace's metadata.
func (s *segmentSource) Meta() trace.Meta { return s.meta }

// Next yields the next job, or io.EOF at segment end.
func (s *segmentSource) Next() (*trace.Job, error) {
	if s.done {
		return nil, io.EOF
	}
	if s.f == nil {
		f, err := os.Open(s.path)
		if err != nil {
			s.done = true
			return nil, fmt.Errorf("storage: opening segment: %w", err)
		}
		s.f = f
		switch s.codec {
		case CodecColumnar:
			var opts []colseg.Option
			if s.volatile {
				opts = append(opts, colseg.WithVolatileBatch())
			}
			s.next = colseg.NewReader(f, s.meta, opts...).Next
		default: // "" and CodecJSONL: canonical JSONL
			s.next = trace.NewJSONLBodyReader(f, s.meta).Next
		}
	}
	j, err := s.next()
	if err != nil {
		s.done = true
		s.f.Close()
		s.f = nil
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("storage: reading %s: %w", filepath.Base(s.path), err)
	}
	return j, nil
}

// chainSource concatenates segment sources into one ordered stream.
type chainSource struct {
	sources []trace.Source
	i       int
}

// Meta returns the trace metadata.
func (c *chainSource) Meta() trace.Meta {
	if len(c.sources) == 0 {
		return trace.Meta{}
	}
	return c.sources[0].Meta()
}

// Next yields the next job across segment boundaries.
func (c *chainSource) Next() (*trace.Job, error) {
	for c.i < len(c.sources) {
		j, err := c.sources[c.i].Next()
		if err == io.EOF {
			c.i++
			continue
		}
		return j, err
	}
	return nil, io.EOF
}

// verifySegment streams a committed segment against its recorded size
// and CRC.
func verifySegment(dir string, seg SegmentInfo) error {
	f, err := os.Open(filepath.Join(dir, seg.File))
	if err != nil {
		return fmt.Errorf("segment %s: %w", seg.File, err)
	}
	defer f.Close()
	var size int64
	crc := uint32(0)
	buf := make([]byte, 1<<16)
	for {
		n, err := f.Read(buf)
		if n > 0 {
			crc = crc32.Update(crc, castagnoli, buf[:n])
			size += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("segment %s: %w", seg.File, err)
		}
	}
	if size != seg.Size {
		return fmt.Errorf("segment %s: %d bytes on disk, manifest says %d", seg.File, size, seg.Size)
	}
	if crc != seg.CRC32C {
		return fmt.Errorf("segment %s: CRC mismatch (%08x vs %08x)", seg.File, crc, seg.CRC32C)
	}
	return nil
}
