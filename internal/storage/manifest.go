package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/trace"
)

// manifestName is the per-trace commit point.
const manifestName = "manifest.json"

// manifestFormat versions the manifest schema.
const manifestFormat = "swim-store-v1"

// Manifest is the committed description of one trace generation. It is
// everything the serving layer needs to register a recovered trace
// without reading a single job: identity, Table-1 totals, and the
// verified file list.
type Manifest struct {
	Format      string        `json:"format"`
	Generation  uint64        `json:"generation"`
	Name        string        `json:"name"`
	Fingerprint string        `json:"fingerprint"`
	Meta        ManifestMeta  `json:"meta"`
	Jobs        int           `json:"jobs"`
	BytesMoved  int64         `json:"bytes_moved"`
	Segments    []SegmentInfo `json:"segments"`
	// Partial describes the persisted aggregate snapshot; nil when the
	// trace stored without one (e.g. too short for hourly binning).
	Partial *FileInfo `json:"partial,omitempty"`
	// Compacted marks a generation the compactor wrote: already packed,
	// so the compaction policy never re-triggers on it. Any subsequent
	// ingest or append builds a fresh manifest without the flag.
	Compacted bool `json:"compacted,omitempty"`
}

// ManifestMeta is trace.Meta at nanosecond precision.
type ManifestMeta struct {
	Name        string `json:"name"`
	Machines    int    `json:"machines"`
	StartUnixNS int64  `json:"start_unix_ns"`
	LengthNS    int64  `json:"length_ns"`
}

// metaToManifest converts trace metadata for the manifest.
func metaToManifest(m trace.Meta) ManifestMeta {
	return ManifestMeta{
		Name:        m.Name,
		Machines:    m.Machines,
		StartUnixNS: m.Start.UnixNano(),
		LengthNS:    int64(m.Length),
	}
}

// TraceMeta converts back to trace metadata (UTC).
func (m ManifestMeta) TraceMeta() trace.Meta {
	return trace.Meta{
		Name:     m.Name,
		Machines: m.Machines,
		Start:    time.Unix(0, m.StartUnixNS).UTC(),
		Length:   time.Duration(m.LengthNS),
	}
}

// FileInfo records one committed file's verification data.
type FileInfo struct {
	File   string `json:"file"`
	Size   int64  `json:"size"`
	CRC32C uint32 `json:"crc32c"`
}

// SegmentInfo is FileInfo plus the segment's job count, so byte-range
// shards know their weight without reading, and the codec its bytes are
// encoded with. An empty codec means canonical JSONL — the only format
// v5-era manifests could describe — so legacy manifests parse unchanged
// and JSONL-codec stores keep writing byte-identical manifests.
//
// MinSubmitSec/MaxSubmitSec are the segment-level zone map: the
// earliest and latest job submit times (Unix seconds) in the segment,
// letting a windowed query skip whole segment files without opening
// them (colseg's per-block zone maps then prune within kept segments).
// HasSpan distinguishes a genuine (0,0) span — every job submitted in
// the first second of the Unix epoch — from a legacy manifest that
// recorded nothing: when HasSpan is false and both bounds are zero the
// span is unknown and never prunes.
//
// Blocks counts the colseg blocks the segment encoder flushed; zero for
// JSONL segments and legacy manifests. It feeds the compaction policy's
// average-block-fill trigger without opening any segment.
type SegmentInfo struct {
	FileInfo
	Jobs         int    `json:"jobs"`
	Codec        string `json:"codec,omitempty"`
	MinSubmitSec int64  `json:"min_submit_sec,omitempty"`
	MaxSubmitSec int64  `json:"max_submit_sec,omitempty"`
	HasSpan      bool   `json:"has_span,omitempty"`
	Blocks       int    `json:"blocks,omitempty"`
}

// spanKnown reports whether the segment's submit span is trustworthy:
// either the writer recorded it explicitly, or a legacy (pre-HasSpan)
// manifest carries a non-zero bound.
func (seg *SegmentInfo) spanKnown() bool {
	return seg.HasSpan || seg.MinSubmitSec != 0 || seg.MaxSubmitSec != 0
}

// pruneOutside reports whether the segment's recorded submit span lies
// wholly outside [fromSec, toSec]; an unknown span never prunes.
func (seg *SegmentInfo) pruneOutside(fromSec, toSec int64) bool {
	return seg.spanKnown() && (seg.MaxSubmitSec < fromSec || seg.MinSubmitSec > toSec)
}

// readManifest loads and structurally validates a manifest file.
func readManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("storage: parsing %s: %w", path, err)
	}
	if man.Format != manifestFormat {
		return nil, fmt.Errorf("storage: %s: unknown format %q", path, man.Format)
	}
	if man.Name == "" || man.Generation == 0 {
		return nil, fmt.Errorf("storage: %s: incomplete manifest", path)
	}
	segJobs := 0
	for _, seg := range man.Segments {
		if seg.File == "" || seg.File != filepath.Base(seg.File) {
			return nil, fmt.Errorf("storage: %s: bad segment file name %q", path, seg.File)
		}
		switch seg.Codec {
		case "", CodecJSONL, CodecColumnar:
		default:
			return nil, fmt.Errorf("storage: %s: unknown segment codec %q", path, seg.Codec)
		}
		segJobs += seg.Jobs
	}
	if segJobs != man.Jobs {
		return nil, fmt.Errorf("storage: %s: segment job counts sum to %d, manifest says %d", path, segJobs, man.Jobs)
	}
	if man.Partial != nil && (man.Partial.File == "" || man.Partial.File != filepath.Base(man.Partial.File)) {
		return nil, fmt.Errorf("storage: %s: bad partial file name %q", path, man.Partial.File)
	}
	return &man, nil
}

// commitManifest atomically installs man as dir's committed manifest:
// tmp write, fsync, rename over manifest.json, directory fsync. After
// this returns, a crash at any point serves exactly this generation.
func commitManifest(dir string, man *Manifest) error {
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: encoding manifest: %w", err)
	}
	b = append(b, '\n')
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: writing manifest: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: closing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("storage: committing manifest: %w", err)
	}
	return syncDir(dir)
}

// genPrefix names generation gen's files.
func genPrefix(gen uint64) string { return fmt.Sprintf("g%06d", gen) }

// segmentFile names segment idx of generation gen.
func segmentFile(gen uint64, idx int) string {
	return fmt.Sprintf("%s-%05d.seg", genPrefix(gen), idx)
}

// partialFile names generation gen's aggregate snapshot.
func partialFile(gen uint64) string { return genPrefix(gen) + ".partial" }
