package storage

import (
	"fmt"
	"io"

	"repro/internal/colseg"
	"repro/internal/trace"
)

// Background compaction. Live append (storage.Appender) optimizes for
// durability, not scan shape: every resumed session starts a new
// segment file and every batch commit flushes the codec at a block
// boundary, so a long-appended trace accumulates many small segments
// full of undersized colseg blocks — more open/decode overhead per
// scanned job, weaker zone-map pruning, bigger manifests. Compaction
// rewrites the committed generation into packed segments (full blocks,
// rebuilt zone maps, fresh per-segment submit spans) as a NEW
// generation committed through the standard atomic manifest protocol.
// Identity is canonical JSONL, so the rewrite preserves the fingerprint
// exactly — the compactor re-hashes every job it moves and aborts on
// any mismatch rather than committing a generation that lies about its
// content. Concurrent readers are safe by the store's standing rule:
// committed files are unlinked, never rewritten, and open descriptors
// survive the unlink. Concurrent appenders are the serving layer's
// concern: it either skips traces with open append sessions or
// invalidates them at commit, exactly as a re-ingest does.

// Compaction policy defaults: a generation triggers when it has
// accumulated DefaultCompactMinSegments segment files, or when its
// colseg blocks average below DefaultCompactMinFill of BlockJobs.
const (
	DefaultCompactMinSegments = 8
	DefaultCompactMinFill     = 0.5
)

// CompactPolicy decides when a committed generation is fragmented
// enough to rewrite. Zero fields take the defaults above.
type CompactPolicy struct {
	// MinSegments triggers when the generation has at least this many
	// segment files (and packing would actually reduce the count).
	MinSegments int
	// MinFill triggers when the average colseg block holds fewer than
	// MinFill×BlockJobs jobs (and packing would actually merge blocks).
	// Traces whose manifests predate per-segment block counts never
	// trigger on fill.
	MinFill float64
}

// NeedsCompaction reports whether t's committed generation would
// benefit from compaction under p. A generation the compactor itself
// wrote never re-triggers (its manifest is marked), so the background
// loop converges instead of rewriting packed traces forever.
func (s *Store) NeedsCompaction(t *Trace, p CompactPolicy) bool {
	if t.Jobs() == 0 || t.man.Compacted {
		return false
	}
	minSegs := p.MinSegments
	if minSegs <= 0 {
		minSegs = DefaultCompactMinSegments
	}
	minFill := p.MinFill
	if minFill <= 0 {
		minFill = DefaultCompactMinFill
	}
	packedSegs := (t.Jobs() + s.segJobs - 1) / s.segJobs
	if t.Segments() >= minSegs && t.Segments() > packedSegs {
		return true
	}
	if blocks, ok := t.colsegBlocks(); ok && blocks > packedBlocks(t.Jobs(), s.segJobs) {
		if float64(t.Jobs()) < minFill*float64(blocks)*float64(colseg.BlockJobs) {
			return true
		}
	}
	return false
}

// colsegBlocks sums the recorded block counts across the generation's
// columnar segments. Not ok when any non-empty columnar segment
// predates block counting (a legacy manifest) — fill is then unknown.
func (t *Trace) colsegBlocks() (int, bool) {
	total, any := 0, false
	for _, seg := range t.man.Segments {
		if seg.Codec != CodecColumnar {
			continue
		}
		if seg.Blocks <= 0 && seg.Jobs > 0 {
			return 0, false
		}
		total += seg.Blocks
		any = true
	}
	return total, any
}

// packedBlocks is how many colseg blocks a packed rewrite of jobs
// records yields under segment cap segJobs — the convergence floor the
// fill trigger compares against.
func packedBlocks(jobs, segJobs int) int {
	blocks := 0
	for jobs > 0 {
		n := jobs
		if n > segJobs {
			n = segJobs
		}
		blocks += (n + colseg.BlockJobs - 1) / colseg.BlockJobs
		jobs -= n
	}
	return blocks
}

// Compacted reports whether the committed generation was written by the
// compactor.
func (t *Trace) Compacted() bool { return t.man.Compacted }

// Blocks sums the recorded colseg block counts (0 for legacy manifests
// and pure-JSONL generations).
func (t *Trace) Blocks() int {
	n := 0
	for _, seg := range t.man.Segments {
		n += seg.Blocks
	}
	return n
}

// CompactResult reports what one compaction rewrite accomplished.
type CompactResult struct {
	Jobs           int
	SegmentsBefore int
	SegmentsAfter  int
	BlocksBefore   int
	BlocksAfter    int
}

// CompactTrace streams t's committed generation into a packed new
// generation and seals it, re-deriving the canonical fingerprint along
// the way: a mismatch with the committed manifest aborts the rewrite
// (segment corruption insurance — a compaction must be a byte-identical
// no-op or nothing). The persisted partial snapshot is carried over
// when readable; a damaged one only costs the snapshot, as on the
// recovery path. The caller commits the returned Sealed under whatever
// lock serializes writes to this name (and must invalidate or have
// excluded concurrent append sessions, whose manifests would otherwise
// regress the compacted generation), or Aborts it to discard the
// staged files.
func (s *Store) CompactTrace(t *Trace) (*Sealed, *CompactResult, error) {
	st, err := s.NewStager(t.Name())
	if err != nil {
		return nil, nil, err
	}
	// Volatile scan sources: every job is hashed and re-encoded on the
	// spot, nothing retains the batch.
	src := &chainSource{meta: t.Meta(), sources: t.ScanShards()}
	hasher := trace.NewHasher()
	if err := hasher.Begin(t.Meta()); err != nil {
		st.Abort()
		return nil, nil, err
	}
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			src.Close()
			st.Abort()
			return nil, nil, fmt.Errorf("storage: compacting %q: %w", t.Name(), err)
		}
		if err := hasher.Write(j); err != nil {
			src.Close()
			st.Abort()
			return nil, nil, fmt.Errorf("storage: compacting %q: %w", t.Name(), err)
		}
		if err := st.Write(j); err != nil {
			src.Close()
			st.Abort()
			return nil, nil, fmt.Errorf("storage: compacting %q: %w", t.Name(), err)
		}
	}
	if got := hasher.Sum(); got != t.Fingerprint() {
		st.Abort()
		return nil, nil, fmt.Errorf("storage: compacting %q: rewrite fingerprint %.12s does not match committed %.12s",
			t.Name(), got, t.Fingerprint())
	}
	// Carry the frozen aggregate snapshot into the new generation; a
	// damaged or absent one only costs the snapshot (reports rebuild
	// from the jobs), exactly as on recovery.
	partial, err := t.LoadPartial()
	if err != nil {
		partial = nil
	}
	sealed, err := st.Seal(t.Meta(), t.Fingerprint(), t.Jobs(), t.BytesMoved(), partial)
	if err != nil {
		st.Abort()
		return nil, nil, err
	}
	sealed.man.Compacted = true
	res := &CompactResult{
		Jobs:           t.Jobs(),
		SegmentsBefore: t.Segments(),
		SegmentsAfter:  len(sealed.man.Segments),
		BlocksBefore:   t.Blocks(),
		BlocksAfter:    blocksOf(sealed.man.Segments),
	}
	return sealed, res, nil
}

// blocksOf sums recorded block counts over segment infos.
func blocksOf(segs []SegmentInfo) int {
	n := 0
	for _, seg := range segs {
		n += seg.Blocks
	}
	return n
}
