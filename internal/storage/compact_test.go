package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestCompactTraceIdentity is the compaction acceptance gate: rewriting
// a fragmented generation must preserve the fingerprint and the report
// bytes exactly while actually packing — fewer segments, fewer blocks
// — and must never re-trigger on its own output.
func TestCompactTraceIdentity(t *testing.T) {
	tr := genTrace(t, "FB-2009", 1, 24*time.Hour)
	root := t.TempDir()
	s, _ := openStore(t, root, 2000)
	tt, fp := fragmentTrace(t, s, "live", tr, 8, 3)
	if want := fingerprint(t, tr); fp != want {
		t.Fatalf("fragmented fingerprint %s, want one-shot %s", fp, want)
	}
	if !s.NeedsCompaction(tt, CompactPolicy{}) {
		t.Fatal("a session-fragmented trace must trigger compaction")
	}
	ref, err := core.BuildShardsPartial(tt.Meta(), tt.ScanShards(), false)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, ref)
	segsBefore, blocksBefore := tt.Segments(), tt.Blocks()

	sealed, res, err := s.CompactTrace(tt)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sealed.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ct.Fingerprint() != fp {
		t.Fatalf("compacted fingerprint %s, want %s", ct.Fingerprint(), fp)
	}
	if ct.Jobs() != tr.Len() || ct.BytesMoved() != tt.BytesMoved() {
		t.Fatalf("compacted totals jobs=%d bytes=%d, want jobs=%d bytes=%d",
			ct.Jobs(), ct.BytesMoved(), tr.Len(), tt.BytesMoved())
	}
	if !ct.Compacted() {
		t.Fatal("compacted manifest not marked")
	}
	if ct.Segments() >= segsBefore {
		t.Fatalf("compaction kept %d segments (was %d)", ct.Segments(), segsBefore)
	}
	if ct.Blocks() >= blocksBefore {
		t.Fatalf("compaction kept %d blocks (was %d)", ct.Blocks(), blocksBefore)
	}
	if res.SegmentsBefore != segsBefore || res.SegmentsAfter != ct.Segments() ||
		res.BlocksBefore != blocksBefore || res.BlocksAfter != ct.Blocks() || res.Jobs != tr.Len() {
		t.Fatalf("result %+v inconsistent with manifests (segments %d→%d, blocks %d→%d)",
			res, segsBefore, ct.Segments(), blocksBefore, ct.Blocks())
	}
	if s.NeedsCompaction(ct, CompactPolicy{}) {
		t.Fatal("a compacted generation must not re-trigger")
	}

	// The rewrite is a byte-identical no-op for every read path: the
	// canonical readback hashes to the same fingerprint, and both scan
	// paths reproduce the reference report exactly.
	src, err := ct.Open()
	if err != nil {
		t.Fatal(err)
	}
	if gotFP, err := trace.Fingerprint(src); err != nil || gotFP != fp {
		t.Fatalf("compacted readback fingerprint %s (err %v), want %s", gotFP, err, fp)
	}
	seq, err := core.BuildShardsPartial(ct.Meta(), ct.ScanShards(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, seq), want) {
		t.Error("sequential scan of the compacted generation diverges")
	}
	par, _, err := ct.ParallelScanPartial(ParallelScanOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, par), want) {
		t.Error("parallel scan of the compacted generation diverges")
	}
	// The aggregate snapshot rode along.
	if p, err := ct.LoadPartial(); err != nil || p == nil || p.Jobs() != tr.Len() {
		t.Fatalf("carried-over partial: %v (jobs %v)", err, p != nil)
	}
	// The old generation's files are gone; only the compacted one (and
	// its manifest) remains.
	entries, err := os.ReadDir(filepath.Join(root, "traces", "live"))
	if err != nil {
		t.Fatal(err)
	}
	keep := ct.man.fileSet()
	for _, e := range entries {
		if e.Name() == manifestName || keep[e.Name()] {
			continue
		}
		t.Errorf("stale file %s survived the compaction sweep", e.Name())
	}

	// Recovery serves the compacted generation.
	s.Close()
	s2, rec := openStore(t, root, 2000)
	defer s2.Close()
	if len(rec.Traces) != 1 || len(rec.Dropped) != 0 {
		t.Fatalf("recovery after compaction: %+v", rec)
	}
	got := rec.Traces[0]
	if got.Fingerprint() != fp || got.Jobs() != tr.Len() || !got.Compacted() {
		t.Fatalf("recovered %s/%d jobs compacted=%t, want %s/%d compacted", got.Fingerprint(), got.Jobs(), got.Compacted(), fp, tr.Len())
	}
}

// TestCrashMidCompaction: a crash between staging the rewrite and
// committing its manifest must cost nothing — recovery serves the old
// generation untouched and sweeps the orphaned staged files.
func TestCrashMidCompaction(t *testing.T) {
	tr := genTrace(t, "CC-b", 2, 26*time.Hour)
	root := t.TempDir()
	s, _ := openStore(t, root, 2000)
	tt, fp := fragmentTrace(t, s, "live", tr, 8, 2)
	segsBefore := tt.Segments()

	if _, _, err := s.CompactTrace(tt); err != nil {
		t.Fatal(err)
	}
	// Crash: the sealed rewrite is neither committed nor aborted. Its
	// staged segment files sit in the trace directory as a future
	// generation.
	dir := filepath.Join(root, "traces", "live")
	staged := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep := tt.man.fileSet()
	for _, e := range entries {
		if e.Name() != manifestName && !keep[e.Name()] {
			staged++
		}
	}
	if staged == 0 {
		t.Fatal("no staged files to crash on — the test lost its premise")
	}
	s.Close()

	s2, rec := openStore(t, root, 2000)
	defer s2.Close()
	if len(rec.Traces) != 1 || len(rec.Dropped) != 0 {
		t.Fatalf("recovery after mid-compaction crash: %+v", rec)
	}
	got := rec.Traces[0]
	if got.Fingerprint() != fp || got.Jobs() != tr.Len() || got.Compacted() || got.Segments() != segsBefore {
		t.Fatalf("recovered %s/%d jobs segments=%d compacted=%t, want the old generation (%s/%d, %d segments)",
			got.Fingerprint(), got.Jobs(), got.Segments(), got.Compacted(), fp, tr.Len(), segsBefore)
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != manifestName && !keep[e.Name()] {
			t.Errorf("staged file %s survived recovery", e.Name())
		}
	}
	// The survivor still reads end to end.
	src, err := got.Open()
	if err != nil {
		t.Fatal(err)
	}
	if gotFP, err := trace.Fingerprint(src); err != nil || gotFP != fp {
		t.Fatalf("post-crash readback fingerprint %s (err %v), want %s", gotFP, err, fp)
	}
}

// TestCompactionPolicy pins the trigger edges: packed one-shot writes
// never trigger, batch-underfilled blocks do, and legacy manifests
// without block counts never trigger on fill.
func TestCompactionPolicy(t *testing.T) {
	tr := genTrace(t, "CC-b", 1, 26*time.Hour)
	s, _ := openStore(t, t.TempDir(), 0)

	packed := writeTrace(t, s, "packed", tr)
	if s.NeedsCompaction(packed, CompactPolicy{}) {
		t.Error("a one-shot packed write triggered compaction")
	}

	// One session, many batch commits: a single segment whose blocks
	// are cut at every batch boundary — fragmentation only the fill
	// trigger can see.
	frag, _ := fragmentTrace(t, s, "frag", tr, 1, 12)
	if frag.Segments() >= DefaultCompactMinSegments {
		t.Fatalf("premise broken: %d segments reach the segment trigger", frag.Segments())
	}
	if !s.NeedsCompaction(frag, CompactPolicy{}) {
		t.Error("batch-underfilled blocks did not trigger compaction")
	}

	// A legacy manifest (no per-segment block counts) leaves fill
	// unknown: the fill trigger must stay silent.
	legacyMan := *frag.man
	legacy := &Trace{dir: frag.dir, man: &legacyMan}
	legacy.man.Segments = append([]SegmentInfo(nil), frag.man.Segments...)
	for i := range legacy.man.Segments {
		legacy.man.Segments[i].Blocks = 0
	}
	if s.NeedsCompaction(legacy, CompactPolicy{}) {
		t.Error("legacy manifest without block counts triggered on fill")
	}

	// MinFill=1 would re-trigger even on packed output (the tail block
	// is almost never full): the Compacted mark must hold the line.
	sealed, _, err := s.CompactTrace(frag)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sealed.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if s.NeedsCompaction(ct, CompactPolicy{MinFill: 1}) {
		t.Error("compacted generation re-triggered under an unachievable fill target")
	}
}

// TestCompactedFlagClearedByAppend: growing a compacted trace builds a
// fresh manifest without the mark, re-arming the trigger for the new
// fragmentation the append introduces.
func TestCompactedFlagClearedByAppend(t *testing.T) {
	tr := genTrace(t, "FB-2010", 3, 26*time.Hour)
	cut := len(tr.Jobs) * 3 / 4
	head := trace.New(tr.Meta)
	head.Jobs = tr.Jobs[:cut]
	s, _ := openStore(t, t.TempDir(), 2000)
	tt, _ := fragmentTrace(t, s, "live", head, 8, 2)

	sealed, _, err := s.CompactTrace(tt)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sealed.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Compacted() {
		t.Fatal("compacted manifest not marked")
	}

	// Resume appending: replay the committed prefix through a fresh
	// hasher (as the serving layer does), then land the tail.
	hasher := trace.NewHasher()
	if err := hasher.Begin(tr.Meta); err != nil {
		t.Fatal(err)
	}
	for _, j := range head.Jobs {
		if err := hasher.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	a, committed, err := s.OpenAppend("live", tr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if committed == nil || committed.Fingerprint() != ct.Fingerprint() {
		t.Fatal("append resume did not surface the compacted generation")
	}
	for _, j := range tr.Jobs[cut:] {
		if err := a.Append(j); err != nil {
			t.Fatal(err)
		}
		if err := hasher.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	sl, err := a.Seal(hasher.Sum(), nil)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := a.Commit(sl)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if grown.Compacted() {
		t.Error("appended generation kept the compacted mark")
	}
	if want := fingerprint(t, tr); grown.Fingerprint() != want {
		t.Errorf("append after compaction landed on %s, one-shot is %s", grown.Fingerprint(), want)
	}
}

// TestCompactionVerifiesFingerprint: a rewrite that would change the
// canonical stream must abort. Simulated by lying to the compactor
// with a manifest whose recorded fingerprint cannot match.
func TestCompactionVerifiesFingerprint(t *testing.T) {
	tr := genTrace(t, "CC-b", 6, 26*time.Hour)
	root := t.TempDir()
	s, _ := openStore(t, root, 2000)
	tt, _ := fragmentTrace(t, s, "live", tr, 8, 2)

	forgedMan := *tt.man
	forgedMan.Fingerprint = strings.Repeat("0", len(tt.man.Fingerprint))
	forged := &Trace{dir: tt.dir, man: &forgedMan}
	if _, _, err := s.CompactTrace(forged); err == nil {
		t.Fatal("compaction committed a generation whose rewrite hash mismatched the manifest")
	}
	// The abort left no staged litter behind.
	entries, err := os.ReadDir(filepath.Join(root, "traces", "live"))
	if err != nil {
		t.Fatal(err)
	}
	keep := tt.man.fileSet()
	for _, e := range entries {
		if e.Name() != manifestName && !keep[e.Name()] {
			t.Errorf("aborted compaction left %s behind", e.Name())
		}
	}
}
