package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/colseg"
	"repro/internal/core"
	"repro/internal/trace"
)

// The block-parallel disk scan. The sequential out-of-core path
// (core.BuildShardsPartial over ScanShards) parallelizes at segment
// granularity, so a trace packed into one or two big segments scans on
// one or two cores. Here one IO goroutine walks the segments in
// manifest order, prunes at segment (manifest span) and block (zone
// map) granularity, and frames colseg blocks without decoding them; a
// bounded pool of workers decodes frames into per-chunk core.Partials;
// and the caller merges those partials in frame order. Because every
// aggregate is exact and mergeable (the PR-4 contract), the merged
// result is byte-identical to the sequential scan at any worker count.
// Legacy JSONL segments have no block framing and travel through the
// same pipeline as whole-segment work units.

// framePool recycles block-frame payload buffers between the IO
// goroutine and the decode workers. Entries are pointers so Put never
// allocates a slice header.
var framePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 64<<10); return &b },
}

// frameChunk is how many block frames ride in one decode task,
// amortizing the per-task Partial allocation and channel hop.
const frameChunk = 4

// errScanAborted stops the IO walk when the merge side has already
// failed; it never escapes ParallelScanPartial.
var errScanAborted = errors.New("storage: scan aborted")

// ParallelScanOptions tunes a block-parallel scan.
type ParallelScanOptions struct {
	// Workers bounds the decode pool; 0 or less means one per CPU.
	Workers int
	// Sketch selects sketched data-size sections, exactly as on the
	// sequential build path.
	Sketch bool
	// Window restricts the scan to jobs submitted in [From, To):
	// segments and blocks prune conservatively via their recorded spans
	// and the survivors filter exactly (trace.NewWindowSource's
	// predicate).
	Window   bool
	From, To time.Time
	// Meta overrides the metadata the partials aggregate under — the
	// windowed path passes the window's meta. Zero means the trace's
	// own.
	Meta trace.Meta
}

// scanTask is one unit of decode work: either a chunk of colseg frame
// payloads (pooled buffers) or, for non-columnar segments, one whole
// segment to stream.
type scanTask struct {
	seq  int
	bufs []*[]byte
	src  trace.Source
}

// recycle returns the task's pooled buffers and closes an unconsumed
// segment source (a no-op when the worker drained it).
func (tk *scanTask) recycle() {
	for _, bp := range tk.bufs {
		framePool.Put(bp)
	}
	tk.bufs = nil
	if tk.src != nil {
		if cl, ok := tk.src.(io.Closer); ok {
			cl.Close()
		}
	}
}

type scanResult struct {
	seq int
	p   *core.Partial
	err error
}

// ParallelScanPartial builds the trace's partial aggregate with the
// block-parallel pipeline. The result is byte-identical to the
// segment-parallel core.BuildShardsPartial over ScanShards (or
// WindowShards plus exact filtering, when windowed) at any worker
// count; the returned stats carry the same pruning evidence. Errors
// release every pooled buffer and descriptor before returning.
func (t *Trace) ParallelScanPartial(opts ParallelScanOptions) (*core.Partial, *ScanStats, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	meta := opts.Meta
	if meta == (trace.Meta{}) {
		meta = t.Meta()
	}
	stats := &ScanStats{Segments: len(t.man.Segments)}

	work := make(chan scanTask, 2*workers)
	results := make(chan scanResult, 2*workers)
	abort := make(chan struct{})
	var once sync.Once
	cancel := func() { once.Do(func() { close(abort) }) }
	defer cancel()

	// IO goroutine: walk segments in manifest order, prune, frame, emit.
	var ioErr error
	go func() {
		defer close(work)
		seq := 0
		emit := func(tk scanTask) bool {
			select {
			case work <- tk:
				return true
			case <-abort:
				tk.recycle()
				return false
			}
		}
		fromSec, toSec := opts.From.Unix(), opts.To.Unix()
		for _, seg := range t.man.Segments {
			if opts.Window && seg.pruneOutside(fromSec, toSec) {
				stats.SegmentsPruned++
				continue
			}
			if seg.Codec != CodecColumnar {
				src := &segmentSource{
					path:     filepath.Join(t.dir, seg.File),
					meta:     meta,
					codec:    seg.Codec,
					size:     seg.Size,
					volatile: true,
					window:   opts.Window,
					from:     opts.From,
					to:       opts.To,
					stats:    stats,
				}
				if !emit(scanTask{seq: seq, src: src}) {
					return
				}
				seq++
				continue
			}
			if err := t.emitSegmentFrames(seg, opts, stats, &seq, emit); err != nil {
				if err != errScanAborted {
					ioErr = err
				}
				return
			}
		}
	}()

	// Decode pool: frames (or whole legacy segments) into partials.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec := colseg.NewBlockDecoder(meta)
			defer dec.Close()
			for tk := range work {
				select {
				case <-abort:
					tk.recycle()
					continue
				default:
				}
				p, err := buildTaskPartial(&tk, meta, opts, dec)
				tk.recycle()
				results <- scanResult{seq: tk.seq, p: p, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Merge in task sequence order — deterministic regardless of which
	// worker finished first.
	var merged *core.Partial
	var scanErr error
	pending := make(map[int]*core.Partial)
	next := 0
	for res := range results {
		if scanErr != nil {
			continue
		}
		if res.err != nil {
			scanErr = res.err
			cancel()
			continue
		}
		pending[res.seq] = res.p
		for {
			p, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if merged == nil {
				merged = p
				continue
			}
			if err := merged.Merge(p); err != nil {
				scanErr = err
				cancel()
				break
			}
		}
	}
	if scanErr != nil {
		return nil, stats, scanErr
	}
	if ioErr != nil {
		return nil, stats, ioErr
	}
	if merged == nil {
		// Everything pruned (or an empty trace): same result as the
		// segment-parallel path with zero shards.
		p, err := core.BuildShardsPartial(meta, nil, opts.Sketch)
		if err != nil {
			return nil, stats, err
		}
		return p, stats, nil
	}
	return merged, stats, nil
}

// emitSegmentFrames frames one colseg segment's blocks and emits them
// in frameChunk batches. Block counters harvest into stats when the
// segment's stream ends, exactly as the sequential reader's do.
func (t *Trace) emitSegmentFrames(seg SegmentInfo, opts ParallelScanOptions, stats *ScanStats, seq *int, emit func(scanTask) bool) error {
	f, err := os.Open(filepath.Join(t.dir, seg.File))
	if err != nil {
		return fmt.Errorf("storage: opening segment: %w", err)
	}
	defer f.Close()
	// Readers see exactly the manifest-recorded committed prefix; a
	// live-append tail past it stays invisible (see segmentSource).
	var rd io.Reader = f
	if seg.Size > 0 {
		rd = io.LimitReader(f, seg.Size)
	}
	var copts []colseg.Option
	if opts.Window {
		copts = append(copts, colseg.WithTimeRange(opts.From, opts.To))
	}
	fs := colseg.NewFrameScanner(rd, copts...)
	defer fs.Close()
	harvest := func() {
		stats.blocksRead.Add(int64(fs.BlocksRead()))
		stats.blocksPruned.Add(int64(fs.BlocksPruned()))
	}
	var tk scanTask
	flush := func() bool {
		if len(tk.bufs) == 0 {
			return true
		}
		tk.seq = *seq
		*seq++
		ok := emit(tk)
		tk = scanTask{}
		return ok
	}
	for {
		bp := framePool.Get().(*[]byte)
		payload, err := fs.Next((*bp)[:0])
		if err != nil {
			framePool.Put(bp)
			harvest()
			if err == io.EOF {
				if !flush() {
					return errScanAborted
				}
				return nil
			}
			tk.recycle()
			return fmt.Errorf("storage: reading %s: %w", seg.File, err)
		}
		*bp = payload
		tk.bufs = append(tk.bufs, bp)
		if len(tk.bufs) >= frameChunk {
			if !flush() {
				harvest()
				return errScanAborted
			}
		}
	}
}

// buildTaskPartial folds one task into a fresh partial: decode each
// frame and observe its jobs (window-filtered exactly when asked), or
// stream a whole legacy segment through the standard build.
func buildTaskPartial(tk *scanTask, meta trace.Meta, opts ParallelScanOptions, dec *colseg.BlockDecoder) (*core.Partial, error) {
	if tk.src != nil {
		src := tk.src
		if opts.Window {
			src = trace.NewWindowSource(src, meta, opts.From, opts.To)
		}
		return core.BuildPartial(src, opts.Sketch)
	}
	p, err := core.NewPartial(meta, opts.Sketch)
	if err != nil {
		return nil, err
	}
	for _, bp := range tk.bufs {
		jobs, err := dec.Decode(*bp)
		if err != nil {
			return nil, err
		}
		for i := range jobs {
			j := &jobs[i]
			if opts.Window && !colseg.InWindow(j, opts.From, opts.To) {
				continue
			}
			p.Observe(j)
		}
	}
	return p, nil
}
