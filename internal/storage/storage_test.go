package storage

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
)

// genTrace generates a normalized calibrated trace for tests.
func genTrace(t testing.TB, workload string, seed int64, dur time.Duration) *trace.Trace {
	t.Helper()
	p, err := profile.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: seed, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	tr.Sort()
	return tr
}

func fingerprint(t testing.TB, tr *trace.Trace) string {
	t.Helper()
	fp, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func openStore(t testing.TB, root string, segJobs int) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(root, Options{SegmentJobs: segJobs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rec
}

// writeTrace writes tr through the store with its partial aggregate.
func writeTrace(t testing.TB, s *Store, name string, tr *trace.Trace) *Trace {
	t.Helper()
	p, err := core.BuildTracePartial(tr, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Write(name, tr, fingerprint(t, tr), p)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestWriteReopenRoundTrip: a committed trace survives Open with its
// identity, its jobs byte-for-byte (fingerprint over the readback), and
// a partial snapshot whose report matches the live aggregate's exactly.
func TestWriteReopenRoundTrip(t *testing.T) {
	root := t.TempDir()
	tr := genTrace(t, "CC-b", 1, 26*time.Hour)
	fp := fingerprint(t, tr)
	liveP, err := core.BuildTracePartial(tr, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	liveRep, err := liveP.Report(0)
	if err != nil {
		t.Fatal(err)
	}
	liveBytes, err := json.Marshal(liveRep.JSON())
	if err != nil {
		t.Fatal(err)
	}

	s, _ := openStore(t, root, 100) // many segments on purpose
	if _, err := s.Write("mine", tr, fp, liveP); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec := openStore(t, root, 100)
	defer s2.Close()
	if len(rec.Dropped) != 0 {
		t.Fatalf("clean reopen dropped traces: %+v", rec.Dropped)
	}
	if len(rec.Traces) != 1 {
		t.Fatalf("recovered %d traces, want 1", len(rec.Traces))
	}
	got := rec.Traces[0]
	if got.Name() != "mine" || got.Fingerprint() != fp || got.Jobs() != tr.Len() {
		t.Fatalf("recovered identity: name=%q fp=%q jobs=%d", got.Name(), got.Fingerprint(), got.Jobs())
	}
	if got.Segments() < 2 {
		t.Fatalf("trace of %d jobs at 100/segment produced %d segments", tr.Len(), got.Segments())
	}
	if got.Meta() != tr.Meta {
		t.Fatalf("meta drifted: %+v vs %+v", got.Meta(), tr.Meta)
	}

	// The on-disk jobs are canonically identical: fingerprinting the
	// readback reproduces the committed fingerprint.
	src, err := got.Open()
	if err != nil {
		t.Fatal(err)
	}
	gotFP, err := trace.Fingerprint(src)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Errorf("readback fingerprint %s != committed %s", gotFP, fp)
	}

	// The persisted partial finalizes to the same report bytes.
	p, err := got.LoadPartial()
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("no partial snapshot recovered")
	}
	rep, err := p.Report(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, liveBytes) {
		t.Error("recovered partial renders different report bytes than the live aggregate")
	}
}

// TestShardsOutOfCore: per-segment shard sources feed the parallel
// analysis and produce bytes identical to the sequential in-memory
// analysis — the out-of-core scan path.
func TestShardsOutOfCore(t *testing.T) {
	s, _ := openStore(t, t.TempDir(), 500)
	tr := genTrace(t, "CC-b", 2, 26*time.Hour)
	st := writeTrace(t, s, "ooc", tr)
	if st.Segments() < 2 {
		t.Fatalf("want multiple segments, got %d", st.Segments())
	}

	p, err := core.BuildShardsPartial(st.Meta(), st.Shards(), false)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Report(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(rep.JSON())
	if err != nil {
		t.Fatal(err)
	}

	seqRep, err := core.AnalyzeSource(trace.NewSliceSource(tr), core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(seqRep.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("out-of-core shard analysis drifted from sequential in-memory analysis")
	}
}

// TestStagerStreamingIngest: the stager path (write jobs one at a time,
// read back pre-commit, seal, commit) matches the whole-trace path.
func TestStagerStreamingIngest(t *testing.T) {
	s, _ := openStore(t, t.TempDir(), 300)
	tr := genTrace(t, "CC-e", 3, 26*time.Hour)
	fp := fingerprint(t, tr)

	st, err := s.NewStager("streamed")
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if err := st.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-commit readback sees exactly what was staged.
	shards, err := st.Shards(tr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, sh := range shards {
		for {
			_, err := sh.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if n != tr.Len() {
		t.Fatalf("staged readback saw %d jobs, wrote %d", n, tr.Len())
	}
	sum := tr.Summarize()
	sealed, err := st.Seal(tr.Meta, fp, tr.Len(), int64(sum.BytesMoved), nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sealed.Commit()
	if err != nil {
		t.Fatal(err)
	}
	src, err := h.Open()
	if err != nil {
		t.Fatal(err)
	}
	gotFP, err := trace.Fingerprint(src)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Errorf("streamed fingerprint %s != %s", gotFP, fp)
	}
	if h.man.Partial != nil {
		t.Error("nil partial produced a snapshot entry")
	}
}

// TestReplaceSweepsOldGeneration: re-writing a name commits a new
// generation and removes the old one's files; readers that opened the
// old generation keep streaming it.
func TestReplaceSweepsOldGeneration(t *testing.T) {
	s, _ := openStore(t, t.TempDir(), 0)
	v1 := genTrace(t, "CC-b", 1, 25*time.Hour)
	v2 := genTrace(t, "CC-b", 2, 26*time.Hour)
	h1 := writeTrace(t, s, "hot", v1)

	// Open a reader on generation 1, then replace.
	src, err := h1.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}

	h2 := writeTrace(t, s, "hot", v2)
	if h2.Fingerprint() == h1.Fingerprint() {
		t.Fatal("test traces should differ")
	}

	// Old generation files are swept...
	entries, err := os.ReadDir(h2.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == manifestName {
			continue
		}
		if want := genPrefix(h2.man.Generation); e.Name()[:len(want)] != want {
			t.Errorf("stale file survived replacement: %s", e.Name())
		}
	}
	// ...but the open reader still drains generation 1 in full.
	n := 1
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("reader of replaced generation failed: %v", err)
		}
		n++
	}
	if n != v1.Len() {
		t.Errorf("reader of replaced generation saw %d jobs, want %d", n, v1.Len())
	}
}

// TestDeleteRemovesDirectory: delete reclaims the trace's disk and a
// reopen recovers nothing.
func TestDeleteRemovesDirectory(t *testing.T) {
	root := t.TempDir()
	s, _ := openStore(t, root, 0)
	writeTrace(t, s, "gone", genTrace(t, "CC-e", 1, 25*time.Hour))
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("gone"); err != nil {
		t.Errorf("double delete: %v", err)
	}
	s.Close()
	_, rec := openStore(t, root, 0)
	if len(rec.Traces) != 0 || len(rec.Dropped) != 0 {
		t.Errorf("after delete, recovery found %d traces / %d dropped", len(rec.Traces), len(rec.Dropped))
	}
}

// TestNameEncoding: hostile names map to safe directories and round-trip.
func TestNameEncoding(t *testing.T) {
	for _, name := range []string{"simple", "with space", "../../etc/passwd", ".hidden", "ünïcode", "a%b", "trailing."} {
		enc, err := encodeName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if enc != filepath.Base(enc) || enc == "." || enc == ".." || enc[0] == '.' {
			t.Errorf("%q encodes to unsafe %q", name, enc)
		}
		dec, err := decodeName(enc)
		if err != nil || dec != name {
			t.Errorf("%q -> %q -> %q (%v)", name, enc, dec, err)
		}
	}
	if _, err := encodeName(""); err == nil {
		t.Error("empty name accepted")
	}
}

// TestClosedStoreRefusesWrites: Close makes stagers and deletes fail —
// the shutdown contract.
func TestClosedStoreRefusesWrites(t *testing.T) {
	s, _ := openStore(t, t.TempDir(), 0)
	s.Close()
	if _, err := s.NewStager("x"); err == nil {
		t.Error("stager after close")
	}
	if err := s.Delete("x"); err == nil {
		t.Error("delete after close")
	}
}
