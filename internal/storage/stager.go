package storage

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/colseg"
	"repro/internal/core"
	"repro/internal/trace"
)

// castagnoli is the CRC-32C table every segment and snapshot checksum
// uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segmentEncoder turns job records into one segment file's bytes. Write
// appends one job; Close flushes whatever the codec buffers. Encoders
// write through a countCRCWriter, so whatever bytes they emit, the
// manifest's size and CRC always describe the final file exactly.
type segmentEncoder interface {
	Write(j *trace.Job) error
	Close() error
}

// countCRCWriter counts and checksums every byte passing through it —
// the one place segment sizes and CRCs are computed, shared by all
// codecs.
type countCRCWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *countCRCWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += int64(n)
	return n, err
}

// jsonlEncoder writes canonical JSONL job lines — the v5-era segment
// format, byte-identical to what the pre-codec store wrote.
type jsonlEncoder struct {
	w   io.Writer
	buf []byte
}

func (e *jsonlEncoder) Write(j *trace.Job) error {
	b, err := trace.AppendJobLine(e.buf[:0], j)
	if err != nil {
		return fmt.Errorf("storage: encoding job %d: %w", j.ID, err)
	}
	e.buf = b[:0]
	if _, err := e.w.Write(b); err != nil {
		return fmt.Errorf("storage: writing segment: %w", err)
	}
	return nil
}

func (e *jsonlEncoder) Close() error { return nil }

// newSegmentEncoder builds the encoder for the store's codec.
func newSegmentEncoder(codec string, w io.Writer) segmentEncoder {
	if codec == CodecColumnar {
		return colseg.NewWriter(w)
	}
	return &jsonlEncoder{w: w, buf: make([]byte, 0, 512)}
}

// blockCounter is implemented by encoders that flush framed blocks
// (colseg.Writer); the count lands in SegmentInfo.Blocks.
type blockCounter interface {
	Blocks() int
}

// manifestCodec maps a store codec to what SegmentInfo records: JSONL
// stays the empty string so JSONL-codec manifests are byte-identical to
// v5-era ones.
func manifestCodec(codec string) string {
	if codec == CodecJSONL {
		return ""
	}
	return codec
}

// Stager writes one new generation of a trace: rotating segment files
// encoded with the store's codec, each checksummed as it is written.
// The write path is append-only and constant-memory, so a trace far
// larger than RAM streams straight to disk. Seal finishes the files and
// the aggregate snapshot; Commit (on the Sealed result) atomically
// installs the manifest. Abort removes everything staged.
type Stager struct {
	store *Store
	dir   string
	gen   uint64

	f        *os.File
	bw       *bufio.Writer
	cw       *countCRCWriter
	enc      segmentEncoder
	segJobs  int
	segSpan  submitSpan
	segments []SegmentInfo
	done     bool
}

// submitSpan accumulates a segment's min/max job submit seconds — the
// segment-level zone map recorded in the manifest.
type submitSpan struct {
	has      bool
	min, max int64
}

func (sp *submitSpan) observe(j *trace.Job) {
	sec := j.SubmitTime.Unix()
	if !sp.has {
		sp.has = true
		sp.min, sp.max = sec, sec
		return
	}
	if sec < sp.min {
		sp.min = sec
	}
	if sec > sp.max {
		sp.max = sec
	}
}

// NewStager starts staging a new generation for name, creating the
// trace directory if needed.
func (s *Store) NewStager(name string) (*Stager, error) {
	dir, err := s.traceDir(name)
	if err != nil {
		return nil, err
	}
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating trace dir: %w", err)
	}
	gen, err := s.nextGen(dir)
	if err != nil {
		return nil, err
	}
	return &Stager{store: s, dir: dir, gen: gen}, nil
}

// Write appends one job record to the current segment, rotating when
// the segment reaches the store's job cap.
func (st *Stager) Write(j *trace.Job) error {
	if st.done {
		return fmt.Errorf("storage: write after seal/abort")
	}
	if st.f == nil {
		if err := st.openSegment(); err != nil {
			return err
		}
	}
	if err := st.enc.Write(j); err != nil {
		return err
	}
	st.segJobs++
	st.segSpan.observe(j)
	if st.segJobs >= st.store.segJobs {
		return st.closeSegment()
	}
	return nil
}

func (st *Stager) openSegment() error {
	name := segmentFile(st.gen, len(st.segments))
	f, err := os.OpenFile(filepath.Join(st.dir, name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating segment: %w", err)
	}
	st.f = f
	st.bw = bufio.NewWriterSize(f, 1<<16)
	st.cw = &countCRCWriter{w: st.bw}
	st.enc = newSegmentEncoder(st.store.codec, st.cw)
	st.segJobs = 0
	return nil
}

// closeSegment finishes the codec, flushes, fsyncs, and records the
// current segment.
func (st *Stager) closeSegment() error {
	if st.f == nil {
		return nil
	}
	if err := st.enc.Close(); err != nil {
		st.f.Close()
		return fmt.Errorf("storage: finishing segment: %w", err)
	}
	if err := st.bw.Flush(); err != nil {
		st.f.Close()
		return fmt.Errorf("storage: flushing segment: %w", err)
	}
	if err := st.f.Sync(); err != nil {
		st.f.Close()
		return fmt.Errorf("storage: syncing segment: %w", err)
	}
	if err := st.f.Close(); err != nil {
		return fmt.Errorf("storage: closing segment: %w", err)
	}
	info := SegmentInfo{
		FileInfo: FileInfo{
			File:   segmentFile(st.gen, len(st.segments)),
			Size:   st.cw.n,
			CRC32C: st.cw.crc,
		},
		Jobs:  st.segJobs,
		Codec: manifestCodec(st.store.codec),
	}
	if st.segSpan.has {
		info.MinSubmitSec, info.MaxSubmitSec = st.segSpan.min, st.segSpan.max
		info.HasSpan = true
	}
	if bc, ok := st.enc.(blockCounter); ok {
		info.Blocks = bc.Blocks()
	}
	st.segments = append(st.segments, info)
	st.f = nil
	st.bw = nil
	st.cw = nil
	st.enc = nil
	st.segSpan = submitSpan{}
	return nil
}

// Shards returns one Source per staged segment under the given
// metadata, for pre-commit readback: the spill-ingest path re-scans
// what it just wrote to derive the fingerprint (and, when the upload
// header was incomplete, the aggregate) without holding jobs in
// memory. The current segment is closed first.
func (st *Stager) Shards(meta trace.Meta) ([]trace.Source, error) {
	if st.done {
		return nil, fmt.Errorf("storage: shards after seal/abort")
	}
	if err := st.closeSegment(); err != nil {
		return nil, err
	}
	return segmentSources(st.dir, meta, st.segments), nil
}

// Sealed is a staged generation whose files are durable and whose
// manifest is built but not yet committed. Commit is the cheap atomic
// step, so callers can serialize it under their own locks without
// holding them across the streaming writes.
type Sealed struct {
	store *Store
	dir   string
	man   *Manifest
}

// Seal closes the segment files, persists the aggregate snapshot
// (when non-nil), and returns the Sealed generation ready to commit.
// meta must be the final normalized metadata; fp the canonical
// fingerprint; jobs and bytesMoved the Table-1 totals.
func (st *Stager) Seal(meta trace.Meta, fp string, jobs int, bytesMoved int64, partial *core.Partial) (*Sealed, error) {
	if st.done {
		return nil, fmt.Errorf("storage: seal after seal/abort")
	}
	if err := st.closeSegment(); err != nil {
		return nil, err
	}
	st.done = true
	man := &Manifest{
		Format:      manifestFormat,
		Generation:  st.gen,
		Name:        decodeMust(st.dir),
		Fingerprint: fp,
		Meta:        metaToManifest(meta),
		Jobs:        jobs,
		BytesMoved:  bytesMoved,
		Segments:    st.segments,
	}
	if partial != nil {
		snap, err := partial.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("storage: encoding partial snapshot: %w", err)
		}
		name := partialFile(st.gen)
		path := filepath.Join(st.dir, name)
		if err := writeFileSync(path, snap); err != nil {
			return nil, err
		}
		man.Partial = &FileInfo{
			File:   name,
			Size:   int64(len(snap)),
			CRC32C: crc32.Checksum(snap, castagnoli),
		}
	}
	return &Sealed{store: st.store, dir: st.dir, man: man}, nil
}

// decodeMust recovers the trace name from a directory path created by
// traceDir; the encoding round-trips by construction.
func decodeMust(dir string) string {
	name, err := decodeName(filepath.Base(dir))
	if err != nil {
		return filepath.Base(dir)
	}
	return name
}

// Abort removes everything this stager wrote. Safe to call after Seal
// has failed; a no-op after Commit.
func (st *Stager) Abort() {
	if st.f != nil {
		// The in-progress segment is on disk but not yet recorded in
		// st.segments; its name is deterministic, so unlink it too.
		st.f.Close()
		st.f = nil
		os.Remove(filepath.Join(st.dir, segmentFile(st.gen, len(st.segments))))
	}
	st.done = true
	for _, seg := range st.segments {
		os.Remove(filepath.Join(st.dir, seg.File))
	}
	os.Remove(filepath.Join(st.dir, partialFile(st.gen)))
	// Remove the directory too if this was the only occupant (a fresh
	// name whose first upload failed); non-empty removal fails silently.
	os.Remove(st.dir)
}

// Commit atomically installs the sealed generation as the trace's
// committed state and garbage-collects files of older generations. It
// is the only step callers need to serialize per name.
func (s *Sealed) Commit() (*Trace, error) {
	if err := s.store.checkOpen(); err != nil {
		return nil, err
	}
	if err := commitManifest(s.dir, s.man); err != nil {
		return nil, err
	}
	s.sweepOldGenerations()
	return &Trace{dir: s.dir, man: s.man}, nil
}

// Abort removes the sealed generation's files instead of committing.
func (s *Sealed) Abort() {
	for _, seg := range s.man.Segments {
		os.Remove(filepath.Join(s.dir, seg.File))
	}
	if s.man.Partial != nil {
		os.Remove(filepath.Join(s.dir, s.man.Partial.File))
	}
	os.Remove(s.dir)
}

// sweepOldGenerations removes files of generations older than the
// committed one. Newer-generation files (a concurrent writer's stage in
// progress) are left untouched; crashes here are cleaned by recovery.
func (s *Sealed) sweepOldGenerations() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	keep := s.man.fileSet()
	for _, e := range entries {
		name := e.Name()
		if name == manifestName || keep[name] {
			continue
		}
		var gen uint64
		if _, err := fmt.Sscanf(name, "g%06d", &gen); err == nil && gen >= s.man.Generation {
			continue // concurrent newer stage; not ours to touch
		}
		os.Remove(filepath.Join(s.dir, name))
	}
}

// fileSet returns the manifest's committed file names.
func (m *Manifest) fileSet() map[string]bool {
	set := make(map[string]bool, len(m.Segments)+1)
	for _, seg := range m.Segments {
		set[seg.File] = true
	}
	if m.Partial != nil {
		set[m.Partial.File] = true
	}
	return set
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: writing %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: syncing %s: %w", path, err)
	}
	return f.Close()
}
