package storage

import (
	"io"
	"testing"
	"time"
)

// BenchmarkSegmentScan is the disk-scan trend datapoint: the cost of
// streaming every stored job back out of committed segments — the inner
// loop of every out-of-core analysis — under each segment codec. The
// paper's 14-day FB-2009 trace is stored once per codec; each iteration
// drains all segment shards through the codec's scan path (ScanShards,
// what the server's disk-scan report uses). benchtrend's scan suite
// gates the colseg/jsonl ratio and records the on-disk sizes.
func BenchmarkSegmentScan(b *testing.B) {
	tr := genTrace(b, "FB-2009", 1, 14*24*time.Hour)
	for _, codec := range []string{CodecJSONL, CodecColumnar} {
		b.Run(codec, func(b *testing.B) {
			root := b.TempDir()
			s, _, err := Open(root, Options{Codec: codec})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			fp, err := tr.Fingerprint()
			if err != nil {
				b.Fatal(err)
			}
			st, err := s.Write("bench", tr, fp, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(st.SizeBytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs := 0
				for _, src := range st.ScanShards() {
					for {
						_, err := src.Next()
						if err == io.EOF {
							break
						}
						if err != nil {
							b.Fatal(err)
						}
						jobs++
					}
				}
				if jobs != tr.Len() {
					b.Fatalf("scanned %d jobs, want %d", jobs, tr.Len())
				}
			}
			// After ResetTimer: it clears custom metrics.
			b.ReportMetric(float64(st.SizeBytes()), "segbytes")
			b.ReportMetric(float64(tr.Len()), "jobs/scan")
		})
	}
}
