package storage

import (
	"io"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkSegmentScan is the disk-scan trend datapoint: the cost of
// streaming every stored job back out of committed segments — the inner
// loop of every out-of-core analysis — under each segment codec. The
// paper's 14-day FB-2009 trace is stored once per codec; each iteration
// drains all segment shards through the codec's scan path (ScanShards,
// what the server's disk-scan report uses). benchtrend's scan suite
// gates the colseg/jsonl ratio and records the on-disk sizes.
func BenchmarkSegmentScan(b *testing.B) {
	tr := genTrace(b, "FB-2009", 1, 14*24*time.Hour)
	for _, codec := range []string{CodecJSONL, CodecColumnar} {
		b.Run(codec, func(b *testing.B) {
			root := b.TempDir()
			s, _, err := Open(root, Options{Codec: codec})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			fp, err := tr.Fingerprint()
			if err != nil {
				b.Fatal(err)
			}
			st, err := s.Write("bench", tr, fp, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(st.SizeBytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs := 0
				for _, src := range st.ScanShards() {
					for {
						_, err := src.Next()
						if err == io.EOF {
							break
						}
						if err != nil {
							b.Fatal(err)
						}
						jobs++
					}
				}
				if jobs != tr.Len() {
					b.Fatalf("scanned %d jobs, want %d", jobs, tr.Len())
				}
			}
			// After ResetTimer: it clears custom metrics.
			b.ReportMetric(float64(st.SizeBytes()), "segbytes")
			b.ReportMetric(float64(tr.Len()), "jobs/scan")
		})
	}
}

// BenchmarkFragmentedScan is the compaction trend datapoint: the cost
// of a full out-of-core aggregate scan over the generation 32 one-batch
// append sessions leave (32 segments, one underfilled block each — the
// shape a long-lived live trace accretes) versus the packed generation
// the compactor rewrites it into. Both arms scan single-worker so the
// ratio isolates layout, not parallelism; benchtrend's scan suite gates
// it with -min-compaction-speedup. The fragmented arm must run first:
// committing the compaction sweeps the fragmented generation's files.
func BenchmarkFragmentedScan(b *testing.B) {
	tr := genTrace(b, "FB-2009", 1, time.Hour)
	s, _ := openStore(b, b.TempDir(), 0)
	defer s.Close()
	frag, _ := fragmentTrace(b, s, "bench", tr, 32, 1)

	scanOnce := func(b *testing.B, tt *Trace) {
		p, _, err := tt.ParallelScanPartial(ParallelScanOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if p.Jobs() != tr.Len() {
			b.Fatalf("scanned %d jobs, want %d", p.Jobs(), tr.Len())
		}
	}
	b.Run("fragmented", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scanOnce(b, frag)
		}
		b.ReportMetric(float64(frag.Segments()), "segments")
		b.ReportMetric(float64(frag.Blocks()), "blocks")
	})

	sealed, _, err := s.CompactTrace(frag)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := sealed.Commit()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compacted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scanOnce(b, ct)
		}
		b.ReportMetric(float64(ct.Segments()), "segments")
		b.ReportMetric(float64(ct.Blocks()), "blocks")
	})
}

// BenchmarkParallelScan pits the two scan parallelization strategies
// against each other on a packed single-segment trace — the shape
// compaction produces, where segment-parallel degenerates to one shard
// and only block-parallel can use the other cores. benchtrend's scan
// suite gates block/segment with -min-block-parallel-speedup on
// multi-core runners (the -N benchmark suffix carries GOMAXPROCS;
// single-core machines are exempt — no parallelism exists to measure).
func BenchmarkParallelScan(b *testing.B) {
	tr := genTrace(b, "FB-2009", 1, 14*24*time.Hour)
	s, _ := openStore(b, b.TempDir(), 1<<20)
	defer s.Close()
	tt := writeTrace(b, s, "bench", tr)
	meta := tt.Meta()

	b.Run("segment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := core.BuildShardsPartial(meta, tt.ScanShards(), false)
			if err != nil {
				b.Fatal(err)
			}
			if p.Jobs() != tr.Len() {
				b.Fatalf("scanned %d jobs, want %d", p.Jobs(), tr.Len())
			}
		}
	})
	b.Run("block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, _, err := tt.ParallelScanPartial(ParallelScanOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if p.Jobs() != tr.Len() {
				b.Fatalf("scanned %d jobs, want %d", p.Jobs(), tr.Len())
			}
		}
	})
}
