package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// TestClusterMetaRoundTrip: save / load / replace / delete of the
// cluster shard-ownership documents, across a store reopen (the restart
// path that re-registers distributed traces).
func TestClusterMetaRoundTrip(t *testing.T) {
	root := t.TempDir()
	s, _, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if metas, err := s.LoadClusters(); err != nil || len(metas) != 0 {
		t.Fatalf("fresh store: %v, %v", metas, err)
	}
	if err := s.SaveCluster("fb/2009 day", []byte(`{"shards":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCluster("cc-b", []byte(`{"shards":2}`)); err != nil {
		t.Fatal(err)
	}
	// Replace wins atomically.
	if err := s.SaveCluster("cc-b", []byte(`{"shards":5}`)); err != nil {
		t.Fatal(err)
	}

	// Reopen: both documents survive, names decoded, sorted order.
	s2, _, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	metas, err := s2.LoadClusters()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 {
		t.Fatalf("got %d documents, want 2: %+v", len(metas), metas)
	}
	byName := map[string]string{}
	for _, m := range metas {
		byName[m.Name] = string(m.Doc)
	}
	if byName["fb/2009 day"] != `{"shards":3}` || byName["cc-b"] != `{"shards":5}` {
		t.Fatalf("documents: %v", byName)
	}

	if err := s2.DeleteCluster("cc-b"); err != nil {
		t.Fatal(err)
	}
	if err := s2.DeleteCluster("cc-b"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	metas, err = s2.LoadClusters()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].Name != "fb/2009 day" {
		t.Fatalf("after delete: %+v", metas)
	}
}

// TestClusterMetaRecoveryCleansLitter: a torn tmp file and an invalid
// document are removed on load, never returned.
func TestClusterMetaRecoveryCleansLitter(t *testing.T) {
	root := t.TempDir()
	s, _, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCluster("good", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "cluster")
	if err := os.WriteFile(filepath.Join(dir, "torn.json.tmp"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	metas, err := s.LoadClusters()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].Name != "good" {
		t.Fatalf("got %+v, want only the good document", metas)
	}
	for _, litter := range []string{"torn.json.tmp", "bad.json"} {
		if _, err := os.Stat(filepath.Join(dir, litter)); !os.IsNotExist(err) {
			t.Errorf("%s survived load", litter)
		}
	}
}
