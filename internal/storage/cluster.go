package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Cluster shard-ownership metadata. A clustered swimd stores, for each
// distributed trace, a small JSON document describing how the trace is
// split and owned: shard count, replication factor, fingerprint, and
// the serialized fingerprint-hasher state appends extend. The document
// is opaque to this package — the serving layer defines its schema —
// but its durability contract is storage's: one file per trace under
// <root>/cluster/, written atomically (tmp + fsync + rename + dir
// fsync), so a crash leaves either the old version or the new one and
// recovery on restart re-registers every distributed trace this node
// coordinates or replicates.
//
// The files live beside the traces/ tree, not inside any trace
// directory, because one cluster trace maps to several locally stored
// shard traces (one per owned shard) and to none at all on nodes that
// only coordinate.

// clusterDir is the directory holding one metadata file per cluster
// trace, named by the same injective encoding trace directories use.
func (s *Store) clusterDir() string { return filepath.Join(s.root, "cluster") }

// SaveCluster atomically persists the metadata document for a cluster
// trace, replacing any previous version.
func (s *Store) SaveCluster(name string, doc []byte) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	enc, err := encodeName(name)
	if err != nil {
		return err
	}
	dir := s.clusterDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: creating cluster dir: %w", err)
	}
	path := filepath.Join(dir, enc+".json")
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: staging cluster meta %q: %w", name, err)
	}
	if _, err := f.Write(doc); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: writing cluster meta %q: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: syncing cluster meta %q: %w", name, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: closing cluster meta %q: %w", name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: committing cluster meta %q: %w", name, err)
	}
	return syncDir(dir)
}

// DeleteCluster removes a cluster trace's metadata. Deleting an absent
// document is not an error.
func (s *Store) DeleteCluster(name string) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	enc, err := encodeName(name)
	if err != nil {
		return err
	}
	path := filepath.Join(s.clusterDir(), enc+".json")
	if err := os.Remove(path); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("storage: deleting cluster meta %q: %w", name, err)
	}
	return syncDir(s.clusterDir())
}

// ClusterMeta pairs a cluster trace's name with its persisted document.
type ClusterMeta struct {
	Name string
	Doc  []byte
}

// LoadClusters reads every persisted cluster metadata document (in
// encoded-filename order). Stale tmp files from a crashed save are removed; a document
// that is not valid JSON is skipped (and removed) rather than poisoning
// startup — the coordinator can refetch metadata from its peers.
func (s *Store) LoadClusters() ([]ClusterMeta, error) {
	dir := s.clusterDir()
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: reading cluster dir: %w", err)
	}
	var out []ClusterMeta
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		if strings.HasSuffix(ent.Name(), ".tmp") {
			_ = os.Remove(path)
			continue
		}
		enc, ok := strings.CutSuffix(ent.Name(), ".json")
		if !ok {
			continue
		}
		name, err := decodeName(enc)
		if err != nil {
			_ = os.Remove(path)
			continue
		}
		doc, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("storage: reading cluster meta %q: %w", name, err)
		}
		if !json.Valid(doc) {
			_ = os.Remove(path)
			continue
		}
		out = append(out, ClusterMeta{Name: name, Doc: doc})
	}
	return out, nil
}
