package storage

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/units"
)

// appendBatches splits tr into n contiguous batches (tr is sorted, so
// every batch respects the canonical append order).
func appendBatches(tr *trace.Trace, n int) [][]*trace.Job {
	batches := make([][]*trace.Job, 0, n)
	per := (len(tr.Jobs) + n - 1) / n
	for i := 0; i < len(tr.Jobs); i += per {
		end := i + per
		if end > len(tr.Jobs) {
			end = len(tr.Jobs)
		}
		batches = append(batches, tr.Jobs[i:end])
	}
	return batches
}

// appendAll drives one full live-append session: every batch is
// appended, sealed with its incremental fingerprint and aggregate, and
// committed. Returns the final committed fingerprint.
func appendAll(t *testing.T, s *Store, name string, meta trace.Meta, batches [][]*trace.Job) string {
	t.Helper()
	a, _, err := s.OpenAppend(name, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	hasher := trace.NewHasher()
	if err := hasher.Begin(meta); err != nil {
		t.Fatal(err)
	}
	live, err := core.NewPartial(meta, false)
	if err != nil {
		t.Fatal(err)
	}
	fp := ""
	for _, batch := range batches {
		for _, j := range batch {
			if err := a.Append(j); err != nil {
				t.Fatal(err)
			}
			if err := hasher.Write(j); err != nil {
				t.Fatal(err)
			}
			live.Observe(j)
		}
		fp = hasher.Sum()
		frozen, err := live.Clone()
		if err != nil {
			t.Fatal(err)
		}
		sealed, err := a.Seal(fp, frozen)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Commit(sealed); err != nil {
			t.Fatal(err)
		}
	}
	return fp
}

// TestAppenderBatchedEquivalence is the storage half of the live-ingest
// equivalence gate: K batched appends must leave on disk exactly the
// trace a one-shot write of the same jobs would have — same
// fingerprint, same recovered jobs, same aggregate snapshot semantics.
func TestAppenderBatchedEquivalence(t *testing.T) {
	tr := genTrace(t, "FB-2009", 3, 26*time.Hour)
	want := fingerprint(t, tr)
	for _, k := range []int{1, 3, 7} {
		root := t.TempDir()
		s, _ := openStore(t, root, 100)
		fp := appendAll(t, s, "live", tr.Meta, appendBatches(tr, k))
		if fp != want {
			t.Fatalf("k=%d: incremental fingerprint %s, one-shot %s", k, fp, want)
		}
		s.Close()

		s2, rec := openStore(t, root, 100)
		if len(rec.Traces) != 1 || len(rec.Dropped) != 0 || len(rec.Trimmed) != 0 {
			t.Fatalf("k=%d: recovery %+v", k, rec)
		}
		got := rec.Traces[0]
		if got.Fingerprint() != want || got.Jobs() != tr.Len() {
			t.Fatalf("k=%d: recovered %s/%d jobs, want %s/%d", k, got.Fingerprint(), got.Jobs(), want, tr.Len())
		}
		back, err := got.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if bfp := fingerprint(t, back); bfp != want {
			t.Fatalf("k=%d: collected fingerprint %s, want %s", k, bfp, want)
		}
		if p, err := got.LoadPartial(); err != nil || p == nil {
			t.Fatalf("k=%d: persisted aggregate missing: %v", k, err)
		} else if p.Jobs() != tr.Len() {
			t.Fatalf("k=%d: aggregate covers %d jobs, want %d", k, p.Jobs(), tr.Len())
		}
		// Exactly one snapshot file survives: each commit garbage-collects
		// the previous batch's.
		entries, err := os.ReadDir(filepath.Join(root, "traces", "live"))
		if err != nil {
			t.Fatal(err)
		}
		partials := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".partial") {
				partials++
			}
		}
		if partials != 1 {
			t.Fatalf("k=%d: %d snapshot files on disk, want 1", k, partials)
		}
		// Zone maps: every committed segment records its submit span.
		for _, seg := range got.man.Segments {
			if seg.MinSubmitSec == 0 && seg.MaxSubmitSec == 0 {
				t.Fatalf("k=%d: segment %s has no submit span", k, seg.File)
			}
		}
		s2.Close()
	}
}

// TestAppenderResume continues an appended trace across appender
// lifetimes (as a server restart does): the resumed appender must start
// a new segment file, keep the batch-snapshot sequence moving, and land
// on the same fingerprint as the one-shot write.
func TestAppenderResume(t *testing.T) {
	tr := genTrace(t, "CC-b", 5, 26*time.Hour)
	want := fingerprint(t, tr)
	batches := appendBatches(tr, 4)

	root := t.TempDir()
	s, _ := openStore(t, root, 60)
	appendAll(t, s, "live", tr.Meta, batches[:2])

	// Resume: replay the committed prefix through a fresh hasher and
	// aggregate exactly as the serving layer does, then continue.
	a, committed, err := s.OpenAppend("live", tr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if committed == nil {
		t.Fatal("resume did not surface the committed state")
	}
	segsBefore := committed.Segments()
	hasher := trace.NewHasher()
	if err := hasher.Begin(tr.Meta); err != nil {
		t.Fatal(err)
	}
	live, err := core.NewPartial(tr.Meta, false)
	if err != nil {
		t.Fatal(err)
	}
	src, err := committed.Open()
	if err != nil {
		t.Fatal(err)
	}
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := hasher.Write(j); err != nil {
			t.Fatal(err)
		}
		live.Observe(j)
	}
	fp := ""
	for _, batch := range batches[2:] {
		for _, j := range batch {
			if err := a.Append(j); err != nil {
				t.Fatal(err)
			}
			if err := hasher.Write(j); err != nil {
				t.Fatal(err)
			}
			live.Observe(j)
		}
		fp = hasher.Sum()
		frozen, err := live.Clone()
		if err != nil {
			t.Fatal(err)
		}
		sealed, err := a.Seal(fp, frozen)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Commit(sealed); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	if fp != want {
		t.Fatalf("resumed fingerprint %s, want one-shot %s", fp, want)
	}
	s.Close()

	s2, rec := openStore(t, root, 60)
	defer s2.Close()
	if len(rec.Traces) != 1 || rec.Traces[0].Fingerprint() != want || rec.Traces[0].Jobs() != tr.Len() {
		t.Fatalf("recovery after resume: %+v", rec)
	}
	if got := rec.Traces[0].Segments(); got <= segsBefore {
		t.Fatalf("resume did not add segments: %d before, %d after", segsBefore, got)
	}
}

// TestAppendCrashTailTrim is the live-ingest crash acceptance: a crash
// after a committed batch, with uncommitted appends sitting past the
// committed boundary of the open segment, must recover to exactly the
// last committed batch — the tail trimmed, nothing else lost.
func TestAppendCrashTailTrim(t *testing.T) {
	tr := genTrace(t, "FB-2010", 7, 26*time.Hour)
	batches := appendBatches(tr, 3)

	root := t.TempDir()
	s, _ := openStore(t, root, 10_000)
	a, _, err := s.OpenAppend("live", tr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	hasher := trace.NewHasher()
	if err := hasher.Begin(tr.Meta); err != nil {
		t.Fatal(err)
	}
	for _, j := range batches[0] {
		if err := a.Append(j); err != nil {
			t.Fatal(err)
		}
		if err := hasher.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	committedFP := hasher.Sum()
	sealed, err := a.Seal(committedFP, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(sealed); err != nil {
		t.Fatal(err)
	}
	// Batch 2 is appended but never sealed: its bytes may reach the file,
	// the manifest never hears about them. Close flushes nothing extra —
	// then force a deterministic torn tail on top.
	for _, j := range batches[1] {
		if err := a.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	s.Close()

	segs, err := filepath.Glob(filepath.Join(root, "traces", "live", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments on disk: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn garbage the crash left behind")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, rec := openStore(t, root, 10_000)
	defer s2.Close()
	if len(rec.Traces) != 1 || len(rec.Dropped) != 0 {
		t.Fatalf("recovery: %+v", rec)
	}
	if len(rec.Trimmed) == 0 {
		t.Fatal("recovery reported no trimmed tail")
	}
	got := rec.Traces[0]
	if got.Fingerprint() != committedFP || got.Jobs() != len(batches[0]) {
		t.Fatalf("recovered %s/%d jobs, want committed %s/%d", got.Fingerprint(), got.Jobs(), committedFP, len(batches[0]))
	}
	back, err := got.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if bfp := fingerprint(t, back); bfp != committedFP {
		t.Fatalf("collected fingerprint %s, want %s", bfp, committedFP)
	}
}

// syntheticTrace builds n evenly spaced jobs across length — exact
// submit spans for the pruning assertions below.
func syntheticTrace(name string, n int, length time.Duration) *trace.Trace {
	start := time.Unix(1_700_000_000, 0).UTC()
	tr := trace.New(trace.Meta{Name: name, Machines: 100, Start: start, Length: length})
	step := length / time.Duration(n)
	for i := 0; i < n; i++ {
		tr.Add(&trace.Job{
			ID:          int64(i),
			SubmitTime:  start.Add(time.Duration(i) * step),
			Duration:    time.Minute,
			InputBytes:  units.Bytes(1 << 20),
			OutputBytes: units.Bytes(1 << 18),
			MapTime:     60,
			MapTasks:    4,
		})
	}
	return tr
}

// TestWindowShardsPruning proves windowed scans skip work by decode
// counters, not timing: manifest submit spans prune whole segments, and
// colseg zone maps prune blocks inside the kept boundary segments.
func TestWindowShardsPruning(t *testing.T) {
	t.Run("segments", func(t *testing.T) {
		// 12k jobs over 24h, 1000 per segment → 12 segments of ~2h each.
		tr := syntheticTrace("prune-seg", 12_000, 24*time.Hour)
		s, _ := openStore(t, t.TempDir(), 1000)
		st := writeTrace(t, s, "w", tr)

		from := tr.Meta.Start.Add(6 * time.Hour)
		to := tr.Meta.Start.Add(8 * time.Hour)
		shards, stats := st.WindowShards(from, to)
		if stats.SegmentsPruned < 8 {
			t.Fatalf("pruned %d of %d segments, want ≥8", stats.SegmentsPruned, stats.Segments)
		}
		in := drainCount(t, shards, from, to)
		if want := 1000; in != want {
			t.Fatalf("window holds %d jobs, want %d", in, want)
		}
		// Every kept segment is one colseg block here (1000 < block size),
		// so the decode counter must equal the kept segments exactly.
		if kept := int64(stats.Segments - stats.SegmentsPruned); stats.BlocksRead() != kept {
			t.Fatalf("decoded %d blocks for %d kept segments", stats.BlocksRead(), kept)
		}
	})
	t.Run("blocks", func(t *testing.T) {
		// One big segment of 12k jobs → 3 colseg blocks of 4096; a window
		// inside the first block must leave the others undecoded.
		tr := syntheticTrace("prune-blk", 12_000, 24*time.Hour)
		s, _ := openStore(t, t.TempDir(), 100_000)
		st := writeTrace(t, s, "w", tr)

		from := tr.Meta.Start
		to := tr.Meta.Start.Add(2 * time.Hour)
		shards, stats := st.WindowShards(from, to)
		if stats.Segments != 1 || stats.SegmentsPruned != 0 {
			t.Fatalf("segment layout %d/%d, want a single kept segment", stats.Segments, stats.SegmentsPruned)
		}
		in := drainCount(t, shards, from, to)
		if want := 1000; in != want {
			t.Fatalf("window holds %d jobs, want %d", in, want)
		}
		if stats.BlocksPruned() == 0 {
			t.Fatal("no blocks pruned: the zone maps did not cut the scan")
		}
		if stats.BlocksRead() == 0 || stats.BlocksRead()+stats.BlocksPruned() != 3 {
			t.Fatalf("decode counters read=%d pruned=%d, want 3 blocks total", stats.BlocksRead(), stats.BlocksPruned())
		}
	})
}

// drainCount drains windowed shards, counting jobs inside [from, to).
func drainCount(t *testing.T, shards []trace.Source, from, to time.Time) int {
	t.Helper()
	in := 0
	for _, sh := range shards {
		for {
			j, err := sh.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if !j.SubmitTime.Before(from) && j.SubmitTime.Before(to) {
				in++
			}
		}
	}
	return in
}

// TestSegmentSourceClose covers the fd-leak fix: abandoning a scan
// mid-stream must release the reader immediately.
func TestSegmentSourceClose(t *testing.T) {
	tr := genTrace(t, "CC-b", 11, 26*time.Hour)
	s, _ := openStore(t, t.TempDir(), 100)
	st := writeTrace(t, s, "w", tr)

	src, err := st.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	cl, ok := src.(io.Closer)
	if !ok {
		t.Fatal("segment chain is not closable")
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err == nil {
		t.Fatal("Next succeeded after Close")
	}

	for _, sh := range st.Shards() {
		if _, err := sh.Next(); err != nil {
			t.Fatal(err)
		}
		if c, ok := sh.(io.Closer); !ok {
			t.Fatal("shard is not closable")
		} else if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
