// Package storage is the durable trace storage engine: a segmented,
// append-only on-disk store with crash-safe commits, persisted partial
// aggregates, and out-of-core readback — the layer that turns swimd's
// in-memory trace store into a restartable service whose analyses
// survive the process.
//
// Layout. Each stored trace owns one directory under <root>/traces/,
// named by a reversible filesystem-safe encoding of the trace name.
// Inside, job records live in generation-prefixed segment files
// (g000001-00000.seg, …) encoded with the store's segment codec — by
// default the compact columnar colseg format (package colseg), with
// canonical JSONL available as the legacy/interchange codec — and the
// trace's frozen core.Partial lives in a versioned snapshot file
// (g000001.partial). The single commit point is manifest.json: it names
// the generation's files with their sizes, CRC-32C checksums, and
// codecs, plus the trace metadata, fingerprint, and Table-1 totals.
// Fingerprints are always computed over the jobs' canonical JSONL
// serialization, never over segment bytes, so trace identity is
// independent of the on-disk representation: the same trace stored
// under either codec has the same fingerprint.
//
// Commit protocol. A writer stages a new generation's segment and
// snapshot files in the trace directory, fsyncs them, then commits by
// writing manifest.json.tmp, fsyncing it, renaming it over
// manifest.json, and fsyncing the directory. rename(2) is atomic, so a
// crash leaves either the old manifest or the new one — never a torn
// mix. Files of older generations are deleted only after the commit;
// files of newer generations (a concurrent writer mid-stage) are left
// alone.
//
// Recovery. Open scans every trace directory: a missing or unparsable
// manifest drops the directory (an uncommitted trace from a crashed
// writer); a committed manifest has every segment verified against its
// recorded size and CRC, and any mismatch drops the whole trace — data
// is authoritative and a torn segment cannot be partially trusted.
// Files not named by the manifest (stale generations, tmp files) are
// removed. A damaged partial snapshot, by contrast, only costs the
// snapshot: the jobs on disk can always rebuild it.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// DefaultSegmentJobs bounds one segment file when Options leave it
// zero: ~128k jobs ≈ 32 MB of canonical JSONL — large enough that a
// paper-length trace stays in tens of segments, small enough that
// per-segment shards parallelize and a torn tail loses bounded work.
const DefaultSegmentJobs = 1 << 17

// Segment codecs. New segments are written with the store's configured
// codec; reads always honor the codec each manifest records per
// segment, so a data directory can hold both formats side by side (an
// upgraded server reads its old JSONL segments and writes columnar
// ones).
const (
	// CodecColumnar is the compact columnar binary format (package
	// colseg): dictionary-encoded strings, delta varint times and IDs,
	// per-block CRCs and zone maps. The default for new segments.
	CodecColumnar = "colseg"
	// CodecJSONL is canonical JSONL job lines — the interchange format
	// and the v5-era on-disk format. Recorded in manifests as the empty
	// string for backward compatibility.
	CodecJSONL = "jsonl"
)

// Options tunes a Store.
type Options struct {
	// SegmentJobs caps the job records per segment file (zero:
	// DefaultSegmentJobs). Segments are the unit of out-of-core
	// sharding: one Source per segment feeds the parallel analysis.
	SegmentJobs int
	// Codec selects the format newly written segments use:
	// CodecColumnar (the default when empty) or CodecJSONL. Existing
	// segments are always read with the codec their manifest records,
	// whatever this is set to.
	Codec string
}

// Store is a handle to one storage root. It hands out immutable Trace
// handles for committed generations and Stagers for writing new ones.
// The handle is safe for concurrent use; per-trace write ordering
// (last-commit-wins on re-ingest) is the caller's concern.
type Store struct {
	root    string
	segJobs int
	codec   string

	mu     sync.Mutex
	gens   map[string]uint64 // per-directory last allocated generation
	closed bool
}

// Recovery reports what Open found: the committed traces that passed
// verification, what was dropped with the reason — so a server can log
// torn uploads it discarded rather than silently forgetting them — and
// any uncommitted live-append tails truncated back to the last
// committed batch boundary.
type Recovery struct {
	Traces  []*Trace
	Dropped []Dropped
	Trimmed []TrimmedTail
}

// Dropped names one trace directory recovery removed and why.
type Dropped struct {
	Name   string
	Reason string
}

// TrimmedTail names one segment whose uncommitted append tail recovery
// truncated: the trace keeps serving at its last committed batch.
type TrimmedTail struct {
	Name  string
	File  string
	Bytes int64
}

// Open creates (if needed) and recovers a storage root, returning the
// store and the recovery report.
func Open(root string, opts Options) (*Store, *Recovery, error) {
	segJobs := opts.SegmentJobs
	if segJobs <= 0 {
		segJobs = DefaultSegmentJobs
	}
	codec := opts.Codec
	switch codec {
	case "":
		codec = CodecColumnar
	case CodecColumnar, CodecJSONL:
	default:
		return nil, nil, fmt.Errorf("storage: unknown segment codec %q (want %q or %q)", codec, CodecColumnar, CodecJSONL)
	}
	s := &Store{root: root, segJobs: segJobs, codec: codec, gens: make(map[string]uint64)}
	if err := os.MkdirAll(s.tracesDir(), 0o755); err != nil {
		return nil, nil, fmt.Errorf("storage: creating root: %w", err)
	}
	rec, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	return s, rec, nil
}

// Root returns the storage root directory.
func (s *Store) Root() string { return s.root }

// Codec returns the codec newly written segments use.
func (s *Store) Codec() string { return s.codec }

func (s *Store) tracesDir() string { return filepath.Join(s.root, "traces") }

// Close marks the store closed; subsequent stagers and commits fail.
// Committed state needs no flushing — every commit is synced before it
// returns — so Close is about refusing work during shutdown, not about
// writing anything.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *Store) checkOpen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: store is closed")
	}
	return nil
}

// nextGen allocates the next generation number for a trace directory,
// consulting the committed manifest on first touch.
func (s *Store) nextGen(dir string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("storage: store is closed")
	}
	if _, ok := s.gens[dir]; !ok {
		man, err := readManifest(filepath.Join(dir, manifestName))
		if err == nil {
			s.gens[dir] = man.Generation
		} else {
			s.gens[dir] = 0
		}
	}
	s.gens[dir]++
	return s.gens[dir], nil
}

// Delete removes the trace's directory — segments, snapshot, manifest —
// reclaiming its disk. Removing an absent trace is not an error.
func (s *Store) Delete(name string) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	dir, err := s.traceDir(name)
	if err != nil {
		return err
	}
	// Drop the manifest first so a crash mid-RemoveAll leaves an
	// uncommitted directory that recovery cleans, never a half-deleted
	// trace that still looks committed.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: deleting %q: %w", name, err)
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("storage: deleting %q: %w", name, err)
	}
	s.mu.Lock()
	delete(s.gens, dir)
	s.mu.Unlock()
	return syncDir(s.tracesDir())
}

// traceDir maps a trace name to its directory.
func (s *Store) traceDir(name string) (string, error) {
	enc, err := encodeName(name)
	if err != nil {
		return "", err
	}
	return filepath.Join(s.tracesDir(), enc), nil
}

// encodeName maps an arbitrary trace name to a filesystem-safe,
// collision-free directory name: ASCII letters, digits, '.', '_', and
// '-' pass through (except a leading '.'), everything else becomes
// %XX. The encoding is injective, so distinct names can never share a
// directory, and decodeName inverts it.
func encodeName(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("storage: empty trace name")
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		safe := c == '_' || c == '-' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
			(c == '.' && i > 0)
		if safe {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	enc := b.String()
	if len(enc) > 200 {
		return "", fmt.Errorf("storage: trace name too long (%d encoded bytes, max 200)", len(enc))
	}
	return enc, nil
}

// decodeName inverts encodeName.
func decodeName(enc string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(enc); i++ {
		c := enc[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(enc) {
			return "", fmt.Errorf("storage: truncated escape in %q", enc)
		}
		var v int
		if _, err := fmt.Sscanf(enc[i+1:i+3], "%02X", &v); err != nil {
			return "", fmt.Errorf("storage: bad escape in %q: %w", enc, err)
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: syncing %s: %w", dir, err)
	}
	return nil
}
