package storage

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// fragmentTrace drives tr into name across `sessions` appender
// lifetimes of `batchesPer` batch commits each — the most fragmented
// shape live ingest produces: every resumed session opens a new
// segment file and every batch commit cuts a colseg block. One hasher
// and aggregate span all sessions, so the committed fingerprint is the
// canonical one. Returns the final committed trace and fingerprint.
func fragmentTrace(t testing.TB, s *Store, name string, tr *trace.Trace, sessions, batchesPer int) (*Trace, string) {
	t.Helper()
	hasher := trace.NewHasher()
	if err := hasher.Begin(tr.Meta); err != nil {
		t.Fatal(err)
	}
	live, err := core.NewPartial(tr.Meta, false)
	if err != nil {
		t.Fatal(err)
	}
	var committed *Trace
	fp := ""
	for _, chunk := range appendBatches(tr, sessions) {
		a, _, err := s.OpenAppend(name, tr.Meta)
		if err != nil {
			t.Fatal(err)
		}
		part := trace.New(tr.Meta)
		part.Jobs = chunk
		for _, batch := range appendBatches(part, batchesPer) {
			for _, j := range batch {
				if err := a.Append(j); err != nil {
					t.Fatal(err)
				}
				if err := hasher.Write(j); err != nil {
					t.Fatal(err)
				}
				live.Observe(j)
			}
			fp = hasher.Sum()
			frozen, err := live.Clone()
			if err != nil {
				t.Fatal(err)
			}
			sealed, err := a.Seal(fp, frozen)
			if err != nil {
				t.Fatal(err)
			}
			if committed, err = a.Commit(sealed); err != nil {
				t.Fatal(err)
			}
		}
		a.Close()
	}
	return committed, fp
}

// reportBytes finalizes p at the default report width — the wire bytes
// the differential gates compare.
func reportBytes(t testing.TB, p *core.Partial) []byte {
	t.Helper()
	rep, err := p.Report(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep.JSON())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelScanByteIdentity: the block-parallel scan must produce
// exactly the segment-parallel scan's partial — same snapshot bytes,
// same report bytes — at any worker count, sketched or exact, over a
// maximally fragmented trace (many small segments, underfilled blocks).
func TestParallelScanByteIdentity(t *testing.T) {
	tr := genTrace(t, "FB-2009", 3, 26*time.Hour)
	s, _ := openStore(t, t.TempDir(), 500)
	tt, _ := fragmentTrace(t, s, "live", tr, 6, 4)
	if tt.Segments() < 6 {
		t.Fatalf("fragmentation produced only %d segments", tt.Segments())
	}
	for _, sketch := range []bool{false, true} {
		ref, err := core.BuildShardsPartial(tt.Meta(), tt.ScanShards(), sketch)
		if err != nil {
			t.Fatal(err)
		}
		want := reportBytes(t, ref)
		wantSnap, err := ref.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			p, stats, err := tt.ParallelScanPartial(ParallelScanOptions{Workers: workers, Sketch: sketch})
			if err != nil {
				t.Fatalf("sketch=%t workers=%d: %v", sketch, workers, err)
			}
			if got := reportBytes(t, p); !bytes.Equal(got, want) {
				t.Errorf("sketch=%t workers=%d: report diverges from the segment-parallel scan", sketch, workers)
			}
			snap, err := p.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, wantSnap) {
				t.Errorf("sketch=%t workers=%d: partial snapshot diverges from the segment-parallel scan", sketch, workers)
			}
			if stats.Segments != tt.Segments() {
				t.Errorf("workers=%d: stats cover %d segments, trace has %d", workers, stats.Segments, tt.Segments())
			}
		}
	}
}

// TestParallelScanWindowIdentity: the windowed block-parallel scan must
// match the sequential windowed path — same bytes, same pruning
// evidence — including a window that prunes everything.
func TestParallelScanWindowIdentity(t *testing.T) {
	tr := genTrace(t, "CC-b", 2, 26*time.Hour)
	s, _ := openStore(t, t.TempDir(), 400)
	tt, _ := fragmentTrace(t, s, "live", tr, 5, 3)
	meta := tt.Meta()

	windows := []struct {
		name     string
		from, to time.Time
	}{
		{"mid", meta.Start.Add(6 * time.Hour), meta.Start.Add(12 * time.Hour)},
		{"tail", meta.Start.Add(20 * time.Hour), meta.Start.Add(meta.Length)},
		{"empty", meta.Start.Add(100 * time.Hour), meta.Start.Add(101 * time.Hour)},
	}
	for _, win := range windows {
		t.Run(win.name, func(t *testing.T) {
			wmeta := trace.Meta{
				Name:     meta.Name,
				Machines: meta.Machines,
				Start:    win.from,
				Length:   win.to.Sub(win.from),
			}
			srcs, refStats := tt.WindowShards(win.from, win.to)
			wrapped := make([]trace.Source, len(srcs))
			for i, sh := range srcs {
				wrapped[i] = trace.NewWindowSource(sh, wmeta, win.from, win.to)
			}
			ref, err := core.BuildShardsPartial(wmeta, wrapped, false)
			if err != nil {
				t.Fatal(err)
			}
			wantSnap, err := ref.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			// An all-pruned window yields a zero partial whose Report
			// errors; identity there is at the snapshot level.
			var want []byte
			if win.name != "empty" {
				want = reportBytes(t, ref)
			}

			for _, workers := range []int{1, 4} {
				p, stats, err := tt.ParallelScanPartial(ParallelScanOptions{
					Workers: workers,
					Window:  true,
					From:    win.from,
					To:      win.to,
					Meta:    wmeta,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				snap, err := p.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(snap, wantSnap) {
					t.Errorf("workers=%d: windowed partial snapshot diverges from the sequential window scan", workers)
				}
				if want != nil && !bytes.Equal(reportBytes(t, p), want) {
					t.Errorf("workers=%d: windowed report diverges from the sequential window scan", workers)
				}
				if stats.SegmentsPruned != refStats.SegmentsPruned {
					t.Errorf("workers=%d: pruned %d segments, sequential pruned %d",
						workers, stats.SegmentsPruned, refStats.SegmentsPruned)
				}
				if stats.BlocksPruned() != refStats.BlocksPruned() {
					t.Errorf("workers=%d: pruned %d blocks, sequential pruned %d",
						workers, stats.BlocksPruned(), refStats.BlocksPruned())
				}
				if stats.BlocksRead() != refStats.BlocksRead() {
					t.Errorf("workers=%d: read %d blocks, sequential read %d",
						workers, stats.BlocksRead(), refStats.BlocksRead())
				}
			}
		})
	}
}

// TestParallelScanLegacyAndMixedCodecs: JSONL segments have no block
// framing and ride the pipeline as whole-segment tasks; a generation
// mixing JSONL and colseg segments (the shape a codec migration's
// append leaves) must still merge in manifest order.
func TestParallelScanLegacyAndMixedCodecs(t *testing.T) {
	tr := genTrace(t, "CC-b", 4, 26*time.Hour)
	cut := len(tr.Jobs) / 2
	first := trace.New(tr.Meta)
	first.Jobs = tr.Jobs[:cut]
	rest := trace.New(tr.Meta)
	rest.Jobs = tr.Jobs[cut:]

	root := t.TempDir()
	sj, _, err := Open(root, Options{SegmentJobs: 400, Codec: CodecJSONL})
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := fragmentTrace(t, sj, "live", first, 2, 2)
	check := func(tag string, tt *Trace) {
		t.Helper()
		ref, err := core.BuildShardsPartial(tt.Meta(), tt.ScanShards(), false)
		if err != nil {
			t.Fatal(err)
		}
		want := reportBytes(t, ref)
		for _, workers := range []int{1, 4} {
			p, _, err := tt.ParallelScanPartial(ParallelScanOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tag, workers, err)
			}
			if got := reportBytes(t, p); !bytes.Equal(got, want) {
				t.Errorf("%s workers=%d: report diverges from the segment-parallel scan", tag, workers)
			}
		}
	}
	check("jsonl", tt)
	if err := sj.Close(); err != nil {
		t.Fatal(err)
	}

	// Continue the same trace with the columnar codec: the generation
	// now mixes JSONL segments (the committed prefix) with colseg ones.
	sc, rec, err := Open(root, Options{SegmentJobs: 400})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if len(rec.Traces) != 1 {
		t.Fatalf("recovered %d traces, want 1", len(rec.Traces))
	}
	hasher := trace.NewHasher()
	if err := hasher.Begin(tr.Meta); err != nil {
		t.Fatal(err)
	}
	for _, j := range first.Jobs {
		if err := hasher.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	a, _, err := sc.OpenAppend("live", tr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range rest.Jobs {
		if err := a.Append(j); err != nil {
			t.Fatal(err)
		}
		if err := hasher.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := a.Seal(hasher.Sum(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := a.Commit(sealed)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	codecs := map[string]bool{}
	for _, seg := range mixed.man.Segments {
		codecs[seg.Codec] = true
	}
	if len(codecs) < 2 {
		t.Fatalf("generation did not mix codecs: %v", codecs)
	}
	check("mixed", mixed)
}

// TestOpenZeroSegmentsMeta: a committed zero-segment generation (an
// empty trace) must still answer Meta() with the manifest metadata —
// the chain source cannot delegate to a first segment that isn't there.
func TestOpenZeroSegmentsMeta(t *testing.T) {
	s, _ := openStore(t, t.TempDir(), 0)
	meta := trace.Meta{Name: "empty", Machines: 3, Start: time.Unix(1_000_000_000, 0).UTC(), Length: time.Hour}
	hasher := trace.NewHasher()
	if err := hasher.Begin(meta); err != nil {
		t.Fatal(err)
	}
	st, err := s.NewStager("empty")
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := st.Seal(meta, hasher.Sum(), 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := sealed.Commit()
	if err != nil {
		t.Fatal(err)
	}
	src, err := tt.Open()
	if err != nil {
		t.Fatal(err)
	}
	if got := src.Meta(); got != meta {
		t.Fatalf("zero-segment source Meta() = %+v, want %+v", got, meta)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("zero-segment source Next() err = %v, want EOF", err)
	}
}

// TestSegmentSpanPruning: the HasSpan bit separates a genuine
// epoch-adjacent (0,0) submit span — which must prune windows that
// exclude the epoch — from a legacy manifest that recorded nothing,
// which must never prune.
func TestSegmentSpanPruning(t *testing.T) {
	epoch := SegmentInfo{HasSpan: true}
	if !epoch.spanKnown() {
		t.Error("explicit epoch span not recognized as known")
	}
	if !epoch.pruneOutside(100, 200) {
		t.Error("epoch-adjacent segment failed to prune a later window")
	}
	if epoch.pruneOutside(0, 50) {
		t.Error("epoch-adjacent segment pruned a window covering it")
	}
	legacy := SegmentInfo{}
	if legacy.spanKnown() {
		t.Error("legacy zero span treated as known")
	}
	if legacy.pruneOutside(100, 200) {
		t.Error("legacy unknown span pruned a window")
	}
	known := SegmentInfo{MinSubmitSec: 300, MaxSubmitSec: 400}
	if !known.spanKnown() || !known.pruneOutside(100, 200) {
		t.Error("legacy non-zero span lost its pruning power")
	}
}
