package storage

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The crash-safety regression suite: simulate torn writes the way a
// power cut leaves them — truncated segments, truncated or missing
// manifests, stray uncommitted generations — and assert recovery drops
// exactly the damaged trace while intact traces stay serveable.

// corruptibleStore writes two traces and returns the root plus the
// victim's directory.
func corruptibleStore(t *testing.T) (root, victimDir string) {
	t.Helper()
	root = t.TempDir()
	s, _ := openStore(t, root, 200)
	writeTrace(t, s, "victim", genTrace(t, "CC-b", 1, 25*time.Hour))
	writeTrace(t, s, "intact", genTrace(t, "CC-e", 2, 25*time.Hour))
	s.Close()
	enc, err := encodeName("victim")
	if err != nil {
		t.Fatal(err)
	}
	return root, filepath.Join(root, "traces", enc)
}

// reopenExpectingDrop reopens the store and asserts "victim" was
// dropped for the expected reason fragment while "intact" survived and
// still verifies end to end.
func reopenExpectingDrop(t *testing.T, root, reasonFragment string) {
	t.Helper()
	s, rec := openStore(t, root, 200)
	defer s.Close()
	if len(rec.Traces) != 1 || rec.Traces[0].Name() != "intact" {
		names := make([]string, 0, len(rec.Traces))
		for _, tr := range rec.Traces {
			names = append(names, tr.Name())
		}
		t.Fatalf("recovered %v, want exactly [intact]", names)
	}
	if len(rec.Dropped) != 1 || rec.Dropped[0].Name != "victim" {
		t.Fatalf("dropped %+v, want exactly victim", rec.Dropped)
	}
	if !strings.Contains(rec.Dropped[0].Reason, reasonFragment) {
		t.Errorf("drop reason %q does not mention %q", rec.Dropped[0].Reason, reasonFragment)
	}
	// The victim's directory is gone — recovery cleans, not quarantines.
	enc, _ := encodeName("victim")
	if _, err := os.Stat(filepath.Join(root, "traces", enc)); !os.IsNotExist(err) {
		t.Errorf("victim directory still present after recovery (err=%v)", err)
	}
	// The survivor still reads back in full.
	intact := rec.Traces[0]
	tr, err := intact.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != intact.Jobs() {
		t.Errorf("intact trace reads %d jobs, manifest says %d", tr.Len(), intact.Jobs())
	}
	if p, err := intact.LoadPartial(); err != nil || p == nil {
		t.Errorf("intact trace's partial did not survive: %v", err)
	}
}

// mustOneSegment returns the path of one committed segment file.
func mustOneSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "g*-*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files in %s (%v)", dir, err)
	}
	return matches[0]
}

func truncateFile(t *testing.T, path string, toFraction float64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, int64(float64(fi.Size())*toFraction)); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryDropsTornSegment: a segment truncated mid-file (the
// classic torn tail) drops the whole trace cleanly.
func TestRecoveryDropsTornSegment(t *testing.T) {
	root, victim := corruptibleStore(t)
	truncateFile(t, mustOneSegment(t, victim), 0.6)
	reopenExpectingDrop(t, root, "torn trace")
}

// TestRecoveryDropsCorruptSegment: same size, flipped bytes — the CRC
// catches silent corruption, not just truncation.
func TestRecoveryDropsCorruptSegment(t *testing.T) {
	root, victim := corruptibleStore(t)
	seg := mustOneSegment(t, victim)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	reopenExpectingDrop(t, root, "CRC mismatch")
}

// TestRecoveryDropsTornManifest: a manifest truncated mid-write (as if
// the rename protocol had been violated by a crash inside a non-atomic
// filesystem) is unparsable and drops the trace.
func TestRecoveryDropsTornManifest(t *testing.T) {
	root, victim := corruptibleStore(t)
	truncateFile(t, filepath.Join(victim, manifestName), 0.5)
	reopenExpectingDrop(t, root, "unreadable manifest")
}

// TestRecoveryDropsUncommittedTrace: segments without a manifest — a
// crash before the first commit — leave nothing serveable.
func TestRecoveryDropsUncommittedTrace(t *testing.T) {
	root, victim := corruptibleStore(t)
	if err := os.Remove(filepath.Join(victim, manifestName)); err != nil {
		t.Fatal(err)
	}
	reopenExpectingDrop(t, root, "no committed manifest")
}

// TestRecoveryKeepsTraceWhenPartialDamaged: the aggregate snapshot is
// derived data — a torn snapshot must cost the snapshot, not the trace.
func TestRecoveryKeepsTraceWhenPartialDamaged(t *testing.T) {
	root, victim := corruptibleStore(t)
	matches, err := filepath.Glob(filepath.Join(victim, "g*.partial"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want one partial snapshot, got %v (%v)", matches, err)
	}
	truncateFile(t, matches[0], 0.5)

	s, rec := openStore(t, root, 200)
	defer s.Close()
	if len(rec.Traces) != 2 || len(rec.Dropped) != 0 {
		t.Fatalf("recovered %d traces / %d dropped, want 2/0", len(rec.Traces), len(rec.Dropped))
	}
	for _, tr := range rec.Traces {
		if tr.Name() != "victim" {
			continue
		}
		if _, err := tr.LoadPartial(); err == nil {
			t.Error("damaged partial loaded without error")
		}
		// The jobs themselves still read in full.
		got, err := tr.Collect()
		if err != nil || got.Len() != tr.Jobs() {
			t.Errorf("victim's jobs unreadable after partial damage: %v", err)
		}
	}
}

// TestRecoverySweepsStrayGeneration: files of a crashed newer stage
// (no manifest pointing at them) are removed and the committed
// generation keeps serving.
func TestRecoverySweepsStrayGeneration(t *testing.T) {
	root, victim := corruptibleStore(t)
	stray := filepath.Join(victim, segmentFile(99, 0))
	if err := os.WriteFile(stray, []byte(`{"id":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	strayTmp := filepath.Join(victim, manifestName+".tmp")
	if err := os.WriteFile(strayTmp, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, rec := openStore(t, root, 200)
	defer s.Close()
	if len(rec.Traces) != 2 || len(rec.Dropped) != 0 {
		t.Fatalf("recovered %d traces / %d dropped, want 2/0", len(rec.Traces), len(rec.Dropped))
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("stray future-generation segment survived recovery")
	}
	if _, err := os.Stat(strayTmp); !os.IsNotExist(err) {
		t.Error("stray manifest tmp survived recovery")
	}
}

// readVictimManifest loads the victim's committed manifest directly.
func readVictimManifest(t *testing.T, victimDir string) *Manifest {
	t.Helper()
	man, err := readManifest(filepath.Join(victimDir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	return man
}

// TestColumnarSegmentsAreDefault: the corruptible store writes columnar
// segments — so every crash test in this file is exercising the binary
// format's torn-write behavior, not legacy JSONL's.
func TestColumnarSegmentsAreDefault(t *testing.T) {
	_, victim := corruptibleStore(t)
	man := readVictimManifest(t, victim)
	if len(man.Segments) == 0 {
		t.Fatal("no segments committed")
	}
	for _, seg := range man.Segments {
		if seg.Codec != CodecColumnar {
			t.Fatalf("segment %s has codec %q, want %q", seg.File, seg.Codec, CodecColumnar)
		}
	}
}

// TestRecoveryDropsColumnarTornHeader: a columnar segment cut inside its
// 8-byte magic — the smallest possible torn write — drops the trace.
func TestRecoveryDropsColumnarTornHeader(t *testing.T) {
	root, victim := corruptibleStore(t)
	seg := mustOneSegment(t, victim)
	if err := os.Truncate(seg, 4); err != nil {
		t.Fatal(err)
	}
	reopenExpectingDrop(t, root, "torn trace")
}

// TestRecoveryDropsColumnarBitFlips: single-bit damage anywhere in a
// columnar segment — the header, the block stats and dictionary up
// front, the last column byte at the tail — fails verification and
// drops the trace while the intact trace keeps serving.
func TestRecoveryDropsColumnarBitFlips(t *testing.T) {
	for _, tc := range []struct {
		name   string
		offset func(size int) int
	}{
		{"header", func(int) int { return 2 }},
		{"dictionary", func(int) int { return 24 }}, // frame length + CRC + stats land well before 24; this is dict/early-column territory
		{"tail", func(size int) int { return size - 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			root, victim := corruptibleStore(t)
			seg := mustOneSegment(t, victim)
			b, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			b[tc.offset(len(b))] ^= 0x01
			if err := os.WriteFile(seg, b, 0o644); err != nil {
				t.Fatal(err)
			}
			reopenExpectingDrop(t, root, "CRC mismatch")
		})
	}
}

// TestColumnarBlockCRCGuardsForgedManifest: corrupt a columnar segment
// and forge the manifest's size and CRC to match the damaged bytes —
// file-level verification then passes and recovery keeps the trace, but
// the per-block CRC still refuses to decode the damage: reads fail with
// an error (never a panic, never silently different jobs) and the
// intact trace keeps serving. The block checksum is a second,
// independent line of defense below the manifest.
func TestColumnarBlockCRCGuardsForgedManifest(t *testing.T) {
	root, victim := corruptibleStore(t)
	seg := mustOneSegment(t, victim)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	man := readVictimManifest(t, victim)
	for i := range man.Segments {
		if filepath.Join(victim, man.Segments[i].File) == seg {
			man.Segments[i].Size = int64(len(b))
			man.Segments[i].CRC32C = crc32Of(b)
		}
	}
	if err := commitManifest(victim, man); err != nil {
		t.Fatal(err)
	}

	s, rec := openStore(t, root, 200)
	defer s.Close()
	if len(rec.Traces) != 2 || len(rec.Dropped) != 0 {
		t.Fatalf("recovered %d traces / %d dropped, want 2/0 (forged manifest passes file-level verify)", len(rec.Traces), len(rec.Dropped))
	}
	for _, tr := range rec.Traces {
		got, err := tr.Collect()
		switch tr.Name() {
		case "victim":
			if err == nil {
				t.Error("reading the forged-manifest victim succeeded; block CRC should have caught the damage")
			} else if !strings.Contains(err.Error(), "CRC mismatch") {
				t.Errorf("victim read failed with %v, want a block CRC mismatch", err)
			}
		case "intact":
			if err != nil || got.Len() != tr.Jobs() {
				t.Errorf("intact trace unreadable beside damaged victim: %v", err)
			}
		}
	}
}

// crc32Of is the file-level CRC-32C recovery verifies against.
func crc32Of(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

// TestRecoveryDropsMismatchedDirectory: a directory that is not the
// canonical home of its manifest's name is dropped (no aliasing).
func TestRecoveryDropsMismatchedDirectory(t *testing.T) {
	root, victim := corruptibleStore(t)
	renamed := filepath.Join(filepath.Dir(victim), "imposter")
	if err := os.Rename(victim, renamed); err != nil {
		t.Fatal(err)
	}
	s, rec := openStore(t, root, 200)
	defer s.Close()
	if len(rec.Traces) != 1 || rec.Traces[0].Name() != "intact" {
		t.Fatalf("recovered %d traces, want only intact", len(rec.Traces))
	}
	if len(rec.Dropped) != 1 || !strings.Contains(rec.Dropped[0].Reason, "does not match manifest name") {
		t.Fatalf("dropped %+v", rec.Dropped)
	}
}
