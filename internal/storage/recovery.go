package storage

import (
	"fmt"
	"os"
	"path/filepath"
)

// recover scans the traces directory, verifies every committed
// generation, and removes everything a crash left behind: uncommitted
// trace directories, torn segments (with their whole trace — data is
// authoritative), stale-generation files, and manifest tmp files.
func (s *Store) recover() (*Recovery, error) {
	rec := &Recovery{}
	entries, err := os.ReadDir(s.tracesDir())
	if err != nil {
		return nil, fmt.Errorf("storage: scanning traces: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			// Stray file at the traces level; nothing commits here.
			os.Remove(filepath.Join(s.tracesDir(), e.Name()))
			continue
		}
		dir := filepath.Join(s.tracesDir(), e.Name())
		t, trimmed, reason := s.recoverTrace(dir, e.Name())
		rec.Trimmed = append(rec.Trimmed, trimmed...)
		if t != nil {
			rec.Traces = append(rec.Traces, t)
			continue
		}
		name := e.Name()
		if decoded, err := decodeName(name); err == nil {
			name = decoded
		}
		rec.Dropped = append(rec.Dropped, Dropped{Name: name, Reason: reason})
		if err := os.RemoveAll(dir); err != nil {
			return nil, fmt.Errorf("storage: dropping %s: %w", dir, err)
		}
	}
	return rec, nil
}

// recoverTrace verifies one trace directory. It returns the trace
// handle plus any uncommitted live-append tails it truncated, or nil
// with the reason the directory must be dropped.
func (s *Store) recoverTrace(dir, encName string) (*Trace, []TrimmedTail, string) {
	man, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, "no committed manifest (crashed before first commit)"
		}
		return nil, nil, fmt.Sprintf("unreadable manifest: %v", err)
	}
	// The directory must be the canonical home of the manifest's name,
	// or two directories could claim one trace.
	if want, err := encodeName(man.Name); err != nil || want != encName {
		return nil, nil, fmt.Sprintf("directory %q does not match manifest name %q", encName, man.Name)
	}
	var trimmed []TrimmedTail
	for _, seg := range man.Segments {
		n, err := verifySegment(dir, seg)
		if err != nil {
			return nil, nil, fmt.Sprintf("torn trace: %v", err)
		}
		if n > 0 {
			trimmed = append(trimmed, TrimmedTail{Name: man.Name, File: seg.File, Bytes: n})
		}
	}
	// Committed and verified: sweep files the manifest does not name
	// (stale generations, tmp files, crashed future stages).
	if entries, err := os.ReadDir(dir); err == nil {
		keep := man.fileSet()
		for _, e := range entries {
			if e.Name() == manifestName || keep[e.Name()] {
				continue
			}
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	s.mu.Lock()
	if man.Generation > s.gens[dir] {
		s.gens[dir] = man.Generation
	}
	s.mu.Unlock()
	return &Trace{dir: dir, man: man}, trimmed, ""
}
