package storage

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/trace"
)

// Appender writes batched live appends into an *open* trace generation.
// Unlike a Stager — which stages a whole replacement generation and
// commits once — an Appender keeps one segment file open across batch
// commits: each Seal flushes the codec at a block boundary, fsyncs the
// open segment, and builds a manifest whose SegmentInfo records the
// file's committed prefix (size, CRC, job count). The file keeps
// growing after the commit; recovery verifies the committed prefix and
// truncates any uncommitted tail, so a crash mid-batch loses exactly
// the jobs past the last committed batch boundary and nothing else.
//
// Segments rotate at the store's job cap exactly as on the one-shot
// path, so a long-lived appended trace is indistinguishable on disk
// from an uploaded one (same file names, same codecs, same manifest
// schema). Per-name write serialization — one appender per trace, no
// concurrent Stager on the same name — is the caller's concern, as it
// is for the rest of the store.
type Appender struct {
	store *Store
	dir   string
	name  string
	gen   uint64
	meta  trace.Meta

	jobs       int
	bytesMoved int64

	closed []SegmentInfo // fully rotated segments

	// Open segment state. cw's running size and CRC are exactly the
	// committed-prefix stats at each Seal: every byte the codec emitted
	// so far passed through it.
	f       *os.File
	bw      *bufio.Writer
	cw      *countCRCWriter
	enc     segmentEncoder
	segIdx  int
	segJobs int
	segSpan submitSpan

	batchSeq     int
	prevPartial  string
	sealedOpen   bool // open segment appears in the last sealed manifest
	doneOrClosed bool
}

// OpenAppend opens name for live batched appends. A fresh name creates
// the trace directory and allocates a new generation with meta as the
// trace metadata; an existing trace is continued — its committed
// generation keeps its segment files and new segments are appended
// after them — provided meta matches the committed metadata exactly
// (the fingerprint and the hourly partial bins both hash the header
// first, so appended jobs must agree on it). It returns the appender
// plus the committed state being continued (nil for a fresh name).
func (s *Store) OpenAppend(name string, meta trace.Meta) (*Appender, *Trace, error) {
	dir, err := s.traceDir(name)
	if err != nil {
		return nil, nil, err
	}
	if err := s.checkOpen(); err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("storage: creating trace dir: %w", err)
	}
	a := &Appender{store: s, dir: dir, name: name, meta: meta}
	man, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("storage: opening %q for append: %w", name, err)
		}
		gen, err := s.nextGen(dir)
		if err != nil {
			return nil, nil, err
		}
		a.gen = gen
		return a, nil, nil
	}
	if got := man.Meta.TraceMeta(); !got.Start.Equal(meta.Start) || got.Length != meta.Length ||
		got.Machines != meta.Machines || got.Name != meta.Name {
		return nil, nil, fmt.Errorf("storage: append metadata %+v does not match committed %+v", meta, got)
	}
	a.gen = man.Generation
	a.jobs = man.Jobs
	a.bytesMoved = man.BytesMoved
	a.closed = append(a.closed, man.Segments...)
	a.segIdx = len(man.Segments)
	if man.Partial != nil {
		a.prevPartial = man.Partial.File
		// Resume the batch sequence past the committed snapshot's so the
		// next Seal never rewrites it in place. A one-shot upload's
		// snapshot (g%06d.partial) doesn't parse and leaves seq at 0.
		var g uint64
		var seq int
		if _, err := fmt.Sscanf(man.Partial.File, "g%06d-b%06d.partial", &g, &seq); err == nil {
			a.batchSeq = seq
		}
	}
	// A resumed appender always starts a new segment file rather than
	// reopening the last committed one: the committed file's CRC covers
	// its closed codec stream, and a fresh file keeps "committed files
	// are never rewritten" true for concurrent readers.
	return a, &Trace{dir: dir, man: man}, nil
}

// Append writes one job into the open segment, rotating at the store's
// per-segment job cap. Jobs must arrive in canonical order (submit
// time, then ID) for the caller's incremental fingerprint to match the
// one-shot upload; the appender itself only stores them.
func (a *Appender) Append(j *trace.Job) error {
	if a.doneOrClosed {
		return fmt.Errorf("storage: append after close")
	}
	if a.f == nil {
		if err := a.openSegment(); err != nil {
			return err
		}
	}
	if err := a.enc.Write(j); err != nil {
		return err
	}
	a.segJobs++
	a.segSpan.observe(j)
	a.jobs++
	a.bytesMoved += int64(j.TotalBytes())
	if a.segJobs >= a.store.segJobs {
		return a.rotate()
	}
	return nil
}

// Jobs returns the total jobs written (committed plus pending).
func (a *Appender) Jobs() int { return a.jobs }

// BytesMoved returns the running Table-1 bytes-moved total.
func (a *Appender) BytesMoved() int64 { return a.bytesMoved }

func (a *Appender) openSegment() error {
	name := segmentFile(a.gen, a.segIdx)
	f, err := os.OpenFile(filepath.Join(a.dir, name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating segment: %w", err)
	}
	a.f = f
	a.bw = bufio.NewWriterSize(f, 1<<16)
	a.cw = &countCRCWriter{w: a.bw}
	a.enc = newSegmentEncoder(a.store.codec, a.cw)
	a.segJobs = 0
	a.segSpan = submitSpan{}
	a.sealedOpen = false
	return nil
}

// rotate finishes the open segment — codec close, flush, fsync — and
// moves it to the closed list.
func (a *Appender) rotate() error {
	if a.f == nil {
		return nil
	}
	if err := a.enc.Close(); err != nil {
		a.f.Close()
		return fmt.Errorf("storage: finishing segment: %w", err)
	}
	if err := a.bw.Flush(); err != nil {
		a.f.Close()
		return fmt.Errorf("storage: flushing segment: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		return fmt.Errorf("storage: syncing segment: %w", err)
	}
	if err := a.f.Close(); err != nil {
		return fmt.Errorf("storage: closing segment: %w", err)
	}
	a.closed = append(a.closed, a.openInfo())
	a.segIdx++
	a.f = nil
	a.bw = nil
	a.cw = nil
	a.enc = nil
	a.segJobs = 0
	a.segSpan = submitSpan{}
	return nil
}

// openInfo snapshots the open segment's committed-prefix SegmentInfo.
func (a *Appender) openInfo() SegmentInfo {
	info := SegmentInfo{
		FileInfo: FileInfo{
			File:   segmentFile(a.gen, a.segIdx),
			Size:   a.cw.n,
			CRC32C: a.cw.crc,
		},
		Jobs:  a.segJobs,
		Codec: manifestCodec(a.store.codec),
	}
	if a.segSpan.has {
		info.MinSubmitSec, info.MaxSubmitSec = a.segSpan.min, a.segSpan.max
		info.HasSpan = true
	}
	if bc, ok := a.enc.(blockCounter); ok {
		info.Blocks = bc.Blocks()
	}
	return info
}

// Seal makes everything appended so far durable and builds the batch's
// manifest, ready to commit: the open segment's codec is flushed at a
// block boundary (blocks are self-contained, so the committed prefix
// decodes without the tail), the file fsynced, and the partial snapshot
// written under a per-batch name so the previous batch's committed
// snapshot is never rewritten in place. fp must be the canonical
// fingerprint of all jobs appended so far.
func (a *Appender) Seal(fp string, partial *core.Partial) (*Sealed, error) {
	if a.doneOrClosed {
		return nil, fmt.Errorf("storage: seal after close")
	}
	segments := a.closed
	if a.f != nil {
		type flusher interface{ Flush() error }
		if fl, ok := a.enc.(flusher); ok {
			if err := fl.Flush(); err != nil {
				return nil, fmt.Errorf("storage: flushing codec: %w", err)
			}
		}
		if err := a.bw.Flush(); err != nil {
			return nil, fmt.Errorf("storage: flushing segment: %w", err)
		}
		if err := a.f.Sync(); err != nil {
			return nil, fmt.Errorf("storage: syncing segment: %w", err)
		}
		segments = append(segments[:len(segments):len(segments)], a.openInfo())
		a.sealedOpen = true
	}
	a.batchSeq++
	man := &Manifest{
		Format:      manifestFormat,
		Generation:  a.gen,
		Name:        a.name,
		Fingerprint: fp,
		Meta:        metaToManifest(a.meta),
		Jobs:        a.jobs,
		BytesMoved:  a.bytesMoved,
		Segments:    segments,
	}
	if partial != nil {
		snap, err := partial.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("storage: encoding partial snapshot: %w", err)
		}
		name := batchPartialFile(a.gen, a.batchSeq)
		if err := writeFileSync(filepath.Join(a.dir, name), snap); err != nil {
			return nil, err
		}
		man.Partial = &FileInfo{
			File:   name,
			Size:   int64(len(snap)),
			CRC32C: crc32.Checksum(snap, castagnoli),
		}
	}
	return &Sealed{store: a.store, dir: a.dir, man: man}, nil
}

// Commit atomically installs a sealed batch and garbage-collects the
// previous batch's partial snapshot (which Sealed.Commit's sweep leaves
// alone — it shares the committed generation). The appender stays open
// for more appends.
func (a *Appender) Commit(sealed *Sealed) (*Trace, error) {
	t, err := sealed.Commit()
	if err != nil {
		return nil, err
	}
	committed := ""
	if sealed.man.Partial != nil {
		committed = sealed.man.Partial.File
	}
	if a.prevPartial != "" && a.prevPartial != committed {
		os.Remove(filepath.Join(a.dir, a.prevPartial))
	}
	a.prevPartial = committed
	return t, nil
}

// Close releases the open segment's descriptor without committing.
// Appends past the last commit stay on disk as an uncommitted tail that
// recovery (or the next committed batch) supersedes; if nothing was
// ever committed and the open segment never reached a manifest, the
// file is removed outright.
func (a *Appender) Close() error {
	if a.doneOrClosed {
		return nil
	}
	a.doneOrClosed = true
	if a.f != nil {
		err := a.f.Close()
		if !a.sealedOpen {
			os.Remove(filepath.Join(a.dir, segmentFile(a.gen, a.segIdx)))
		}
		a.f = nil
		if err != nil {
			return fmt.Errorf("storage: closing segment: %w", err)
		}
	}
	// A fresh name that never committed leaves an empty directory;
	// remove it quietly (fails, ignored, when non-empty).
	os.Remove(a.dir)
	return nil
}

// batchPartialFile names the aggregate snapshot committed by batch seq
// of generation gen. Distinct from partialFile so a live-append batch
// never rewrites the previous batch's committed snapshot in place.
func batchPartialFile(gen uint64, seq int) string {
	return fmt.Sprintf("%s-b%06d.partial", genPrefix(gen), seq)
}
