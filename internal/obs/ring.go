package obs

import (
	"sync"
	"time"
)

// ScanNumbers are the scan-evidence counters a disk-backed analysis
// reports (the X-Scan-* response headers), attached to ring entries so
// the slow-query log explains *why* a request was slow.
type ScanNumbers struct {
	Segments       int   `json:"segments"`
	SegmentsPruned int   `json:"segments_pruned"`
	Blocks         int64 `json:"blocks"`
	BlocksPruned   int64 `json:"blocks_pruned"`
	Workers        int   `json:"workers,omitempty"`
}

// RequestRecord is one finished request in the debug ring.
type RequestRecord struct {
	ID       string    `json:"id"`
	Time     time.Time `json:"time"`
	Method   string    `json:"method"`
	Path     string    `json:"path"`
	Endpoint string    `json:"endpoint,omitempty"`
	Status   int       `json:"status"`
	MS       float64   `json:"ms"`
	BytesIn  int64     `json:"bytes_in,omitempty"`
	BytesOut int64     `json:"bytes_out,omitempty"`
	// Analysis is the X-Analysis path the request took (reports only).
	Analysis string `json:"analysis,omitempty"`
	// Cache is the X-Cache outcome (HIT/MISS/BYPASS) when one applies.
	Cache string       `json:"cache,omitempty"`
	Scan  *ScanNumbers `json:"scan,omitempty"`
	Spans []Span       `json:"spans,omitempty"`
}

// RequestLog is a bounded ring of recent requests: every request is
// recorded (not just slow ones), so a cluster coordinator's trace is
// inspectable right after the fact, and the HTTP surface filters by
// duration for the slow-query view.
type RequestLog struct {
	mu   sync.Mutex
	buf  []RequestRecord
	next int
	full bool
}

// DefaultRequestLogSize bounds the ring when the configuration leaves
// it zero.
const DefaultRequestLogSize = 256

// NewRequestLog returns a ring holding the last n requests (n <= 0:
// DefaultRequestLogSize).
func NewRequestLog(n int) *RequestLog {
	if n <= 0 {
		n = DefaultRequestLogSize
	}
	return &RequestLog{buf: make([]RequestRecord, n)}
}

// Add records one finished request, evicting the oldest when full.
func (l *RequestLog) Add(rec RequestRecord) {
	l.mu.Lock()
	l.buf[l.next] = rec
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// Snapshot returns the recorded requests newest-first, keeping only
// those at least minMS milliseconds long, up to limit entries
// (limit <= 0: all).
func (l *RequestLog) Snapshot(minMS float64, limit int) []RequestRecord {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	recs := make([]RequestRecord, 0, n)
	// Walk backwards from the most recent slot.
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.buf)
		}
		r := l.buf[idx]
		if r.MS < minMS {
			continue
		}
		recs = append(recs, r)
		if limit > 0 && len(recs) == limit {
			break
		}
	}
	l.mu.Unlock()
	return recs
}

// Len returns how many requests the ring currently holds.
func (l *RequestLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.buf)
	}
	return l.next
}
