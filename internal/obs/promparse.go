package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParsedMetric is one sample line of a Prometheus text exposition:
// metric name, label pairs in order of appearance, and the value.
type ParsedMetric struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (m ParsedMetric) Label(name string) string {
	for _, l := range m.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Exposition is a validated parse of a /metrics payload.
type Exposition struct {
	// Types maps family name -> declared TYPE.
	Types map[string]string
	// Samples holds every sample line in order.
	Samples []ParsedMetric
}

// Find returns every sample with the given metric name.
func (e *Exposition) Find(name string) []ParsedMetric {
	var out []ParsedMetric
	for _, s := range e.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Value returns the single sample for name whose labels include the
// given pairs, and whether exactly one matched.
func (e *Exposition) Value(name string, labelPairs ...string) (float64, bool) {
	if len(labelPairs)%2 != 0 {
		return 0, false
	}
	var match []ParsedMetric
	for _, s := range e.Find(name) {
		ok := true
		for i := 0; i < len(labelPairs); i += 2 {
			if s.Label(labelPairs[i]) != labelPairs[i+1] {
				ok = false
				break
			}
		}
		if ok {
			match = append(match, s)
		}
	}
	if len(match) != 1 {
		return 0, false
	}
	return match[0].Value, true
}

// ParsePrometheus is a strict parser for the subset of the text
// exposition format (0.0.4) the registry emits — the verification half
// of the scrape tests and the CI gate. It rejects malformed sample
// lines, samples whose family was never TYPEd, unescaped quotes, and
// histograms whose cumulative buckets decrease.
func ParsePrometheus(text string) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string)}
	// lastBucket tracks cumulative monotonicity per (name, non-le
	// labels) series.
	lastBucket := make(map[string]float64)
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if _, dup := exp.Types[fields[2]]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				exp.Types[fields[2]] = fields[3]
			}
			continue
		}
		m, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(m.Name, exp.Types)
		if fam == "" {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, m.Name)
		}
		if strings.HasSuffix(m.Name, "_bucket") && exp.Types[fam] == "histogram" {
			key := fam + "|" + nonLeLabels(m.Labels)
			if m.Value < lastBucket[key] {
				return nil, fmt.Errorf("line %d: histogram %s bucket series decreases (%g after %g)", lineNo, fam, m.Value, lastBucket[key])
			}
			lastBucket[key] = m.Value
		}
		exp.Samples = append(exp.Samples, m)
	}
	return exp, nil
}

// familyOf resolves a sample name to its declared family: the name
// itself, or for histogram series the name minus its _bucket/_sum/
// _count suffix.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return ""
}

func nonLeLabels(labels []Label) string {
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.Name != "le" {
			parts = append(parts, l.Name+"="+l.Value)
		}
	}
	return strings.Join(parts, ",")
}

func parseSampleLine(line string) (ParsedMetric, error) {
	var m ParsedMetric
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else {
		nameEnd = strings.IndexByte(rest, ' ')
		if nameEnd < 0 {
			return m, fmt.Errorf("sample %q has no value", line)
		}
	}
	m.Name = rest[:nameEnd]
	if !validMetricName(m.Name) {
		return m, fmt.Errorf("invalid metric name %q", m.Name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		labels, remainder, err := parseLabels(rest)
		if err != nil {
			return m, err
		}
		m.Labels = labels
		rest = remainder
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return m, fmt.Errorf("sample %q has a malformed value field", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return m, err
	}
	m.Value = v
	return m, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf", "NaN":
		return 0, fmt.Errorf("value %q not expected from the registry", s)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// parseLabels consumes a "{name="value",...}" block and returns the
// remainder of the line.
func parseLabels(s string) ([]Label, string, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, "", fmt.Errorf("expected label block in %q", s)
	}
	s = s[1:]
	var labels []Label
	for {
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label in %q", s)
		}
		name := s[:eq]
		if !validMetricName(name) || strings.Contains(name, ":") {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s value is not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("unterminated label value for %s", name)
			}
			c := s[0]
			if c == '\\' {
				if len(s) < 2 {
					return nil, "", fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case 'n':
					val.WriteByte('\n')
				case '"':
					val.WriteByte('"')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %s", s[1], name)
				}
				s = s[2:]
				continue
			}
			if c == '"' {
				s = s[1:]
				break
			}
			val.WriteByte(c)
			s = s[1:]
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if !strings.HasPrefix(s, "}") {
			return nil, "", fmt.Errorf("expected , or } after label %s", name)
		}
	}
}
