package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	g := r.Gauge("test_depth", "Depth.")
	c.Add(41)
	c.Inc()
	g.Set(2.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatalf("rendered output does not parse: %v\n%s", err, b.String())
	}
	if v, ok := exp.Value("test_ops_total"); !ok || v != 42 {
		t.Errorf("test_ops_total = %v, %v; want 42", v, ok)
	}
	if v, ok := exp.Value("test_depth"); !ok || v != 2.5 {
		t.Errorf("test_depth = %v, %v; want 2.5", v, ok)
	}
	if exp.Types["test_ops_total"] != "counter" || exp.Types["test_depth"] != "gauge" {
		t.Errorf("TYPE lines wrong: %v", exp.Types)
	}
}

func TestCounterVecLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_req_total", "Requests.", "endpoint", "code")
	v.With(`GET /v1/traces/{name}`, "200").Add(3)
	v.With("weird \"quoted\"\nname\\x", "500").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatalf("escaped labels do not parse back: %v\n%s", err, b.String())
	}
	if v, ok := exp.Value("test_req_total", "endpoint", "GET /v1/traces/{name}", "code", "200"); !ok || v != 3 {
		t.Errorf("labeled lookup = %v, %v; want 3", v, ok)
	}
	// The escaping must round-trip: the parsed label equals the original.
	if v, ok := exp.Value("test_req_total", "endpoint", "weird \"quoted\"\nname\\x", "code", "500"); !ok || v != 1 {
		t.Errorf("escaped label did not round-trip (%v, %v)", v, ok)
	}
}

func TestHistogramBucketsMatchLogBinning(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", 5, -5, 2)
	obs := []float64{0, 0.00001, 0.001, 0.5, 1, 50, 1e9}
	for _, v := range obs {
		h.Observe(v)
	}
	if h.Count() != uint64(len(obs)) {
		t.Fatalf("count %d, want %d", h.Count(), len(obs))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatalf("histogram does not parse: %v\n%s", err, b.String())
	}
	buckets := exp.Find("test_latency_seconds_bucket")
	if len(buckets) != 36 { // 7 decades x 5 bins + +Inf
		t.Fatalf("bucket count %d, want 36", len(buckets))
	}
	last := buckets[len(buckets)-1]
	if last.Label("le") != "+Inf" || last.Value != float64(len(obs)) {
		t.Errorf("+Inf bucket %v = %g, want %d", last.Label("le"), last.Value, len(obs))
	}
	if v, ok := exp.Value("test_latency_seconds_count"); !ok || v != float64(len(obs)) {
		t.Errorf("count sample %v, %v", v, ok)
	}
	wantSum := 0.0
	for _, v := range obs {
		wantSum += v
	}
	if v, ok := exp.Value("test_latency_seconds_sum"); !ok || math.Abs(v-wantSum) > 1e-9*wantSum {
		t.Errorf("sum sample %v, want %v", v, wantSum)
	}
}

// TestRegistryHammer is the concurrency gate: N goroutines observe
// histograms and bump counters while scrapers render the registry.
// Every render must parse, cumulative buckets must be monotone, and
// once the writers finish the totals must be exact.
func TestRegistryHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_ops_total", "Ops.")
	h := r.Histogram("hammer_latency_seconds", "Latency.", 5, -5, 2)
	vec := r.HistogramVec("hammer_path_seconds", "Per-path latency.", 5, -5, 2, "path")

	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers render concurrently with the writers; each render must
	// parse cleanly mid-flight.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Errorf("render: %v", err)
					return
				}
				if _, err := ParsePrometheus(b.String()); err != nil {
					t.Errorf("mid-flight render does not parse: %v", err)
					return
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			paths := []string{"scan", "merge", "ingest"}
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(float64(i%1000) / 1000)
				vec.With(paths[i%len(paths)]).Observe(0.001 * float64(i%17))
			}
		}(g)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatalf("final render does not parse: %v", err)
	}
	const total = writers * perG
	if v, ok := exp.Value("hammer_ops_total"); !ok || v != total {
		t.Errorf("counter %v, want %d", v, total)
	}
	if v, ok := exp.Value("hammer_latency_seconds_count"); !ok || v != total {
		t.Errorf("histogram count %v, want %d", v, total)
	}
	if v, ok := exp.Value("hammer_latency_seconds_bucket", "le", "+Inf"); !ok || v != total {
		t.Errorf("+Inf bucket %v, want %d", v, total)
	}
	var vecTotal float64
	for _, s := range exp.Find("hammer_path_seconds_count") {
		vecTotal += s.Value
	}
	if vecTotal != total {
		t.Errorf("vec counts sum to %v, want %d", vecTotal, total)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_type_line 1\n",
		"# TYPE x counter\nx{unclosed=\"v 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x counter\n9leading 1\n",
		"# TYPE x histogram\nx_bucket{le=\"1\"} 5\nx_bucket{le=\"2\"} 3\n",
	}
	for _, text := range bad {
		if _, err := ParsePrometheus(text); err == nil {
			t.Errorf("parser accepted %q", text)
		}
	}
}

func TestRequestTraceSpansAndContext(t *testing.T) {
	rt := NewRequest("abc-123")
	ctx := WithRequest(context.Background(), rt)
	if got := RequestIDFromContext(ctx); got != "abc-123" {
		t.Fatalf("id from ctx %q", got)
	}
	end := FromContext(ctx).StartSpan("scan", "segments=3")
	time.Sleep(time.Millisecond)
	end()
	spans := rt.Spans()
	if len(spans) != 1 || spans[0].Name != "scan" || spans[0].MS <= 0 {
		t.Fatalf("spans %+v", spans)
	}
	// Nil-safety: untraced contexts are no-ops, not panics.
	var nilRT *Request
	nilRT.StartSpan("x", "")()
	nilRT.SetEndpoint("y")
	if nilRT.ID() != "" || nilRT.Endpoint() != "" || nilRT.Spans() != nil {
		t.Error("nil request trace leaked state")
	}
	if got := RequestIDFromContext(context.Background()); got != "" {
		t.Errorf("empty ctx id %q", got)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	ok := []string{"a", "req-1", "A.b_c-9", strings.Repeat("x", 64)}
	for _, s := range ok {
		if SanitizeRequestID(s) != s {
			t.Errorf("rejected valid id %q", s)
		}
	}
	bad := []string{"", strings.Repeat("x", 65), "sp ace", "new\nline", "quo\"te", "semi;colon", "non-ascii-é"}
	for _, s := range bad {
		if SanitizeRequestID(s) != "" {
			t.Errorf("accepted invalid id %q", s)
		}
	}
}

func TestRequestLogRing(t *testing.T) {
	l := NewRequestLog(4)
	for i := 0; i < 6; i++ {
		l.Add(RequestRecord{ID: string(rune('a' + i)), MS: float64(i)})
	}
	if l.Len() != 4 {
		t.Fatalf("len %d, want 4", l.Len())
	}
	recs := l.Snapshot(0, 0)
	if len(recs) != 4 || recs[0].ID != "f" || recs[3].ID != "c" {
		t.Fatalf("snapshot order wrong: %+v", recs)
	}
	slow := l.Snapshot(4, 0)
	if len(slow) != 2 || slow[0].ID != "f" || slow[1].ID != "e" {
		t.Fatalf("min_ms filter wrong: %+v", slow)
	}
	limited := l.Snapshot(0, 1)
	if len(limited) != 1 || limited[0].ID != "f" {
		t.Fatalf("limit wrong: %+v", limited)
	}
}

func TestRuntimeRegistration(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r, time.Now().Add(-2*time.Second))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatalf("runtime metrics do not parse: %v\n%s", err, b.String())
	}
	if v, ok := exp.Value("go_goroutines"); !ok || v < 1 {
		t.Errorf("go_goroutines %v, %v", v, ok)
	}
	if v, ok := exp.Value("swim_uptime_seconds"); !ok || v < 1 {
		t.Errorf("swim_uptime_seconds %v, %v", v, ok)
	}
	if len(exp.Find("swim_build_info")) != 1 {
		t.Error("swim_build_info missing")
	}
}
