// Package obs is swimd's dependency-free observability layer: a
// concurrent metrics registry rendered in the Prometheus text format, a
// per-request trace carried through context.Context with lightweight
// spans, and a bounded ring of recent requests (the slow-query log).
//
// The registry's histograms reuse the binning discipline of
// stats.LogHistogram — a fixed number of bins per base-10 decade over a
// configured exponent range — but observe lock-free: bucket counts are
// atomic words and the running sum is a CAS loop over float64 bits, so
// request paths never contend on a mutex and a concurrent scrape sees a
// consistent-enough snapshot (bucket totals may trail the count by
// in-flight observations, never exceed it).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Sample is one rendered metric value: an ordered label set and the
// value. Collector functions return these for families whose children
// only exist at scrape time (per-trace storage gauges, per-peer fleet
// series).
type Sample struct {
	Labels []Label
	Value  float64
}

// Label is one name="value" pair.
type Label struct {
	Name, Value string
}

// L is shorthand for building a label list in place.
func L(pairs ...string) []Label {
	if len(pairs)%2 != 0 {
		panic("obs: L needs name/value pairs")
	}
	out := make([]Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return out
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add folds a delta into the gauge via CAS.
func (g *Gauge) Add(d float64) { addFloat(&g.bits, d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat CAS-adds d to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram is a lock-free latency/size histogram with log-spaced
// buckets: binsPerDecade bins per base-10 decade covering
// [10^minExp, 10^maxExp), the stats.LogHistogram layout. Observations
// at or below zero land in the first bucket's count (they are smaller
// than every upper edge, so cumulative rendering stays exact); values
// outside the range clamp to the edge buckets so totals always add up.
type Histogram struct {
	binsPerDecade int
	minExp        float64
	buckets       []atomic.Uint64
	count         atomic.Uint64
	sumBits       atomic.Uint64
}

func newHistogram(binsPerDecade int, minExp, maxExp float64) *Histogram {
	if binsPerDecade < 1 {
		panic("obs: binsPerDecade must be >= 1")
	}
	if maxExp <= minExp {
		panic("obs: maxExp must exceed minExp")
	}
	n := int(math.Ceil((maxExp - minExp) * float64(binsPerDecade)))
	return &Histogram{
		binsPerDecade: binsPerDecade,
		minExp:        minExp,
		buckets:       make([]atomic.Uint64, n),
	}
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	idx := 0
	if v > 0 {
		idx = int(math.Floor((math.Log10(v) - h.minExp) * float64(h.binsPerDecade)))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
	}
	h.buckets[idx].Add(1)
	addFloat(&h.sumBits, v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// upperEdge returns bucket i's inclusive upper bound (its le label).
func (h *Histogram) upperEdge(i int) float64 {
	return math.Pow(10, h.minExp+float64(i+1)/float64(h.binsPerDecade))
}

// metricKind is the Prometheus TYPE of a family.
type metricKind string

// The three family types the registry renders.
const (
	KindCounter   metricKind = "counter"
	KindGauge     metricKind = "gauge"
	KindHistogram metricKind = "histogram"
)

// vecSep joins label values into child-map keys; label values are
// arbitrary strings, so the separator is a byte they cannot contain
// after escaping is not applied — 0x00 never appears in header-derived
// or name-derived label values.
const vecSep = "\x00"

// CounterVec is a family of counters keyed by a fixed label set.
type CounterVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns (creating on first use) the child counter for the given
// label values, which must match the declared label names in count.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: CounterVec wants %d label values, got %d", len(v.labels), len(values)))
	}
	key := strings.Join(values, vecSep)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[key]; ok {
		return c
	}
	c = &Counter{}
	v.children[key] = c
	return c
}

// Snapshot returns the current child values keyed by their label
// values (joined with "|" for readability in stats payloads).
func (v *CounterVec) Snapshot() map[string]uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.children))
	for key, c := range v.children {
		out[strings.ReplaceAll(key, vecSep, "|")] = c.Value()
	}
	return out
}

// HistogramVec is a family of histograms sharing one bucket layout,
// keyed by a fixed label set.
type HistogramVec struct {
	labels        []string
	binsPerDecade int
	minExp        float64
	maxExp        float64
	mu            sync.RWMutex
	children      map[string]*Histogram
}

// With returns (creating on first use) the child histogram for the
// given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: HistogramVec wants %d label values, got %d", len(v.labels), len(values)))
	}
	key := strings.Join(values, vecSep)
	v.mu.RLock()
	h, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.children[key]; ok {
		return h
	}
	h = newHistogram(v.binsPerDecade, v.minExp, v.maxExp)
	v.children[key] = h
	return h
}

// Snapshot returns per-child (count, sum) keyed by label values.
func (v *HistogramVec) Snapshot() map[string]HistogramSummary {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]HistogramSummary, len(v.children))
	for key, h := range v.children {
		out[strings.ReplaceAll(key, vecSep, "|")] = HistogramSummary{Count: h.Count(), Sum: h.Sum()}
	}
	return out
}

// HistogramSummary is a histogram's scalar pair for JSON stats.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
}

// family is one registered metric family: a static instrument or a
// scrape-time collector.
type family struct {
	name string
	help string
	kind metricKind

	counter    *Counter
	gauge      *Gauge
	histogram  *Histogram
	counterVec *CounterVec
	histVec    *HistogramVec
	collect    func() []Sample
}

// Registry holds metric families and renders them as Prometheus text.
// Registration happens at construction time (it panics on duplicate or
// invalid names — programmer errors); observation and rendering are
// safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) add(f *family) {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.families[f.name] = f
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, kind: KindCounter, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, kind: KindGauge, gauge: g})
	return g
}

// Histogram registers and returns a new log-bucket histogram covering
// [10^minExp, 10^maxExp) at binsPerDecade resolution.
func (r *Registry) Histogram(name, help string, binsPerDecade int, minExp, maxExp float64) *Histogram {
	h := newHistogram(binsPerDecade, minExp, maxExp)
	r.add(&family{name: name, help: help, kind: KindHistogram, histogram: h})
	return h
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	v := &CounterVec{labels: labels, children: make(map[string]*Counter)}
	r.add(&family{name: name, help: help, kind: KindCounter, counterVec: v})
	return v
}

// HistogramVec registers and returns a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, binsPerDecade int, minExp, maxExp float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	v := &HistogramVec{
		labels:        labels,
		binsPerDecade: binsPerDecade,
		minExp:        minExp,
		maxExp:        maxExp,
		children:      make(map[string]*Histogram),
	}
	r.add(&family{name: name, help: help, kind: KindHistogram, histVec: v})
	return v
}

// RegisterFunc registers a scrape-time collector: fn is called on every
// render and its samples become the family's children. kind must be
// KindCounter or KindGauge (histogram collectors would need full bucket
// layouts; nothing needs them).
func (r *Registry) RegisterFunc(name, help string, kind metricKind, fn func() []Sample) {
	if kind != KindCounter && kind != KindGauge {
		panic("obs: RegisterFunc supports counter and gauge kinds only")
	}
	r.add(&family{name: name, help: help, kind: kind, collect: fn})
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4), families sorted by name and children by label set,
// so output is deterministic for tests and diffs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, k int) bool { return fams[i].name < fams[k].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		switch {
		case f.counter != nil:
			writeSample(&b, f.name, nil, float64(f.counter.Value()))
		case f.gauge != nil:
			writeSample(&b, f.name, nil, f.gauge.Value())
		case f.histogram != nil:
			writeHistogram(&b, f.name, nil, f.histogram)
		case f.counterVec != nil:
			writeVec(&b, f.name, f.counterVec)
		case f.histVec != nil:
			writeHistVec(&b, f.name, f.histVec)
		case f.collect != nil:
			samples := f.collect()
			sort.Slice(samples, func(i, k int) bool {
				return labelString(samples[i].Labels) < labelString(samples[k].Labels)
			})
			for _, s := range samples {
				writeSample(&b, f.name, s.Labels, s.Value)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeVec(b *strings.Builder, name string, v *CounterVec) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for key := range v.children {
		keys = append(keys, key)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, key := range keys {
		v.mu.RLock()
		c := v.children[key]
		v.mu.RUnlock()
		writeSample(b, name, vecLabels(v.labels, key), float64(c.Value()))
	}
}

func writeHistVec(b *strings.Builder, name string, v *HistogramVec) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for key := range v.children {
		keys = append(keys, key)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, key := range keys {
		v.mu.RLock()
		h := v.children[key]
		v.mu.RUnlock()
		writeHistogram(b, name, vecLabels(v.labels, key), h)
	}
}

// writeHistogram renders one histogram's cumulative buckets, sum, and
// count. Bucket counts are read once into a local snapshot so the
// cumulative series is monotone even under concurrent observation; the
// +Inf bucket is the snapshot total, and count/sum are read after the
// buckets so a parser's count >= +Inf invariant holds (Observe bumps
// buckets before count).
func writeHistogram(b *strings.Builder, name string, labels []Label, h *Histogram) {
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		le := append(append([]Label(nil), labels...), Label{Name: "le", Value: formatFloat(h.upperEdge(i))})
		writeSample(b, name+"_bucket", le, float64(cum))
	}
	inf := append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"})
	writeSample(b, name+"_bucket", inf, float64(total))
	writeSample(b, name+"_sum", labels, h.Sum())
	writeSample(b, name+"_count", labels, float64(total))
}

func vecLabels(names []string, key string) []Label {
	values := strings.Split(key, vecSep)
	out := make([]Label, len(names))
	for i, n := range names {
		out[i] = Label{Name: n, Value: values[i]}
	}
	return out
}

func writeSample(b *strings.Builder, name string, labels []Label, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func labelString(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// formatFloat renders a value the way Prometheus expects: integers
// without an exponent or decimal point, everything else in shortest
// round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
