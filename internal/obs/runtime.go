package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// BuildInfo is the process's identity block: module version, Go
// toolchain, and GOMAXPROCS — the /v1/stats server section and the
// swim_build_info metric.
type BuildInfo struct {
	Version    string `json:"version"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// ReadBuildInfo resolves the build identity once; the module version is
// "(devel)" for plain `go build` trees and a semantic version for
// module-built binaries.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{
		Version:    "unknown",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if info, ok := debug.ReadBuildInfo(); ok && info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	return bi
}

// RuntimeStats is a point-in-time snapshot of the Go runtime: the
// /v1/stats runtime section.
type RuntimeStats struct {
	Goroutines          int     `json:"goroutines"`
	HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes        uint64  `json:"heap_sys_bytes"`
	NumGC               uint32  `json:"num_gc"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	LastGCPauseSeconds  float64 `json:"last_gc_pause_seconds"`
}

// ReadRuntimeStats snapshots the runtime counters. ReadMemStats
// stops-the-world briefly; callers are scrape-rate, not request-rate.
func ReadRuntimeStats() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	rs := RuntimeStats{
		Goroutines:          runtime.NumGoroutine(),
		HeapAllocBytes:      m.HeapAlloc,
		HeapSysBytes:        m.HeapSys,
		NumGC:               m.NumGC,
		GCPauseTotalSeconds: float64(m.PauseTotalNs) / 1e9,
	}
	if m.NumGC > 0 {
		rs.LastGCPauseSeconds = float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
	}
	return rs
}

// RegisterRuntime wires the runtime gauges, uptime, and build-info
// series into a registry. started anchors the uptime gauge.
func RegisterRuntime(r *Registry, started time.Time) {
	bi := ReadBuildInfo()
	r.RegisterFunc("swim_build_info", "Build identity; value is always 1.", KindGauge, func() []Sample {
		return []Sample{{Labels: L("version", bi.Version, "go", bi.GoVersion), Value: 1}}
	})
	r.RegisterFunc("swim_started_at_seconds", "Unix time the process started serving.", KindGauge, func() []Sample {
		return []Sample{{Value: float64(started.Unix())}}
	})
	r.RegisterFunc("swim_uptime_seconds", "Seconds since the process started serving.", KindGauge, func() []Sample {
		return []Sample{{Value: time.Since(started).Seconds()}}
	})
	r.RegisterFunc("swim_gomaxprocs", "GOMAXPROCS at startup.", KindGauge, func() []Sample {
		return []Sample{{Value: float64(bi.GOMAXPROCS)}}
	})
	r.RegisterFunc("go_goroutines", "Current goroutine count.", KindGauge, func() []Sample {
		return []Sample{{Value: float64(runtime.NumGoroutine())}}
	})
	r.RegisterFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", KindGauge, func() []Sample {
		rs := ReadRuntimeStats()
		return []Sample{{Value: float64(rs.HeapAllocBytes)}}
	})
	r.RegisterFunc("go_gc_pauses_total_seconds", "Cumulative stop-the-world GC pause time.", KindCounter, func() []Sample {
		rs := ReadRuntimeStats()
		return []Sample{{Value: rs.GCPauseTotalSeconds}}
	})
	r.RegisterFunc("go_gc_cycles_total", "Completed GC cycles.", KindCounter, func() []Sample {
		rs := ReadRuntimeStats()
		return []Sample{{Value: float64(rs.NumGC)}}
	})
}
