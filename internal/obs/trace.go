package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Span is one timed step inside a request: ingest, decode, scan,
// merge, a per-peer shard fetch. StartMS is the offset from the
// request's start, so a ring entry reads as a waterfall.
type Span struct {
	Name    string  `json:"name"`
	Detail  string  `json:"detail,omitempty"`
	StartMS float64 `json:"start_ms"`
	MS      float64 `json:"ms"`
}

// Request is the per-request trace: the ID echoed as X-Request-Id and
// propagated to peers, the matched route, and the spans the handler
// recorded. It is carried through context.Context; every method is
// nil-safe so uninstrumented call paths (tests driving handlers
// directly, background jobs) cost nothing.
type Request struct {
	id    string
	start time.Time

	mu       sync.Mutex
	endpoint string
	spans    []Span
}

// NewRequest starts a trace with the given ID (minting one when empty).
func NewRequest(id string) *Request {
	if id == "" {
		id = NewRequestID()
	}
	return &Request{id: id, start: time.Now()}
}

// NewRequestID mints a 16-hex-character random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the process is in deep trouble; a
		// constant ID keeps requests serviceable rather than panicking
		// the middleware.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the request's trace ID ("" on a nil request).
func (rt *Request) ID() string {
	if rt == nil {
		return ""
	}
	return rt.id
}

// Start returns when the trace began.
func (rt *Request) Start() time.Time {
	if rt == nil {
		return time.Time{}
	}
	return rt.start
}

// SetEndpoint records the matched route pattern (the metrics label).
func (rt *Request) SetEndpoint(p string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.endpoint = p
	rt.mu.Unlock()
}

// Endpoint returns the matched route pattern ("" when no route
// matched or the request is untraced).
func (rt *Request) Endpoint() string {
	if rt == nil {
		return ""
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.endpoint
}

// StartSpan opens a span and returns its closer; call the closer when
// the step finishes. Nil-safe: on an untraced path the closer is a
// no-op.
func (rt *Request) StartSpan(name, detail string) func() {
	if rt == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		end := time.Now()
		rt.mu.Lock()
		rt.spans = append(rt.spans, Span{
			Name:    name,
			Detail:  detail,
			StartMS: roundMS(begin.Sub(rt.start)),
			MS:      roundMS(end.Sub(begin)),
		})
		rt.mu.Unlock()
	}
}

// Spans snapshots the recorded spans.
func (rt *Request) Spans() []Span {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]Span(nil), rt.spans...)
}

func roundMS(d time.Duration) float64 {
	ms := float64(d) / float64(time.Millisecond)
	return float64(int64(ms*1000+0.5)) / 1000
}

// ctxKey keys the request trace in a context.
type ctxKey struct{}

// WithRequest attaches a request trace to a context.
func WithRequest(ctx context.Context, rt *Request) context.Context {
	return context.WithValue(ctx, ctxKey{}, rt)
}

// FromContext returns the context's request trace, nil when untraced.
func FromContext(ctx context.Context) *Request {
	rt, _ := ctx.Value(ctxKey{}).(*Request)
	return rt
}

// RequestIDFromContext returns the trace ID carried by ctx ("" when
// untraced) — what the fleet client stamps on outbound peer requests.
func RequestIDFromContext(ctx context.Context) string {
	return FromContext(ctx).ID()
}

// SanitizeRequestID validates a client-supplied X-Request-Id: 1-64
// characters of [A-Za-z0-9._-]. Anything else returns "" and the
// middleware mints a fresh ID instead of echoing arbitrary bytes into
// logs and peer requests.
func SanitizeRequestID(s string) string {
	if len(s) == 0 || len(s) > 64 {
		return ""
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return s
}
