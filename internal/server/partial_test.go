package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// getRaw fetches a URL and returns the response plus body bytes.
func getRaw(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestIngestBuildsPartial: a JSONL upload leaves a frozen partial
// aggregate next to the stored trace, and the first cold report is
// served from it (X-Analysis: ingest-partial) with bytes identical to
// the sequential streaming analysis of the stored snapshot.
func TestIngestBuildsPartial(t *testing.T) {
	s, ts := newTestServer(t)
	tr := genTrace(t, "CC-e", 3, 30*time.Hour)
	ingestTrace(t, ts, "mine", tr)

	if st := s.Store().Stats(); st.Partials != 1 {
		t.Fatalf("store holds %d partials after ingest, want 1", st.Partials)
	}
	stored, _, partial, err := s.Store().Snapshot("mine")
	if err != nil {
		t.Fatal(err)
	}
	if partial == nil {
		t.Fatal("no partial aggregate stored")
	}
	if partial.Jobs() != stored.Len() {
		t.Fatalf("partial observed %d jobs, stored trace has %d", partial.Jobs(), stored.Len())
	}

	resp, body := getRaw(t, ts.URL+"/v1/traces/mine/report")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d %s", resp.StatusCode, clip(body))
	}
	if got := resp.Header.Get("X-Analysis"); got != "ingest-partial" {
		t.Errorf("cold report X-Analysis = %q, want ingest-partial", got)
	}

	rep, err := core.AnalyzeSource(trace.NewSliceSource(stored), core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(rep.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Error("partial-served report differs from direct sequential analysis")
	}

	// The warm path hits the bytes tier; no analysis marker.
	resp2, body2 := getRaw(t, ts.URL+"/v1/traces/mine/report")
	if resp2.Header.Get("X-Cache") != "HIT" || resp2.Header.Get("X-Analysis") != "" {
		t.Errorf("second request: X-Cache=%q X-Analysis=%q, want HIT with no analysis",
			resp2.Header.Get("X-Cache"), resp2.Header.Get("X-Analysis"))
	}
	if !bytes.Equal(body2, body) {
		t.Error("cached report differs from cold report")
	}
}

// TestReportShardsParamAgreement: shards=K changes only how a cold
// scan-path report is computed, never its bytes — and the shard count
// is deliberately absent from the cache key.
func TestReportShardsParamAgreement(t *testing.T) {
	s, ts := httptestServerNoPartials(t)
	tr := genTrace(t, "CC-e", 3, 30*time.Hour)
	ingestTrace(t, ts, "mine", tr)
	if st := s.Store().Stats(); st.Partials != 0 {
		t.Fatalf("store holds %d partials with partials disabled", st.Partials)
	}

	var want []byte
	for i, q := range []string{"?shards=1", "?shards=4", "?shards=16", ""} {
		s.Cache().Purge()
		resp, body := getRaw(t, ts.URL+"/v1/traces/mine/report"+q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report%s: %d %s", q, resp.StatusCode, clip(body))
		}
		if got := resp.Header.Get("X-Analysis"); got != "scan" {
			t.Errorf("report%s X-Analysis = %q, want scan", q, got)
		}
		if i == 0 {
			want = body
			continue
		}
		if !bytes.Equal(body, want) {
			t.Errorf("report%s differs from shards=1 bytes", q)
		}
	}

	// Out-of-range shard counts are a client error.
	resp, _ := getRaw(t, ts.URL+"/v1/traces/mine/report?shards=-1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("shards=-1: %d, want 400", resp.StatusCode)
	}
	resp, _ = getRaw(t, ts.URL+"/v1/traces/mine/report?shards=9999")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("shards=9999: %d, want 400", resp.StatusCode)
	}
}

// httptestServerNoPartials starts a server with ingest-time aggregation
// off, so reports exercise the scan + aggregate-tier path.
func httptestServerNoPartials(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	s := mustNew(t, Config{DisablePartials: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestAggregateTierSharesScans: with no stored partial, the first scan
// parks its partial in the cache's aggregate tier; report variants that
// differ only in finalization (top=N) and sketch-mode requests reuse or
// add to that tier instead of rescanning per variant.
func TestAggregateTierSharesScans(t *testing.T) {
	s, ts := httptestServerNoPartials(t)
	tr := genTrace(t, "CC-e", 3, 30*time.Hour)
	ingestTrace(t, ts, "mine", tr)

	resp, _ := getRaw(t, ts.URL+"/v1/traces/mine/report")
	if got := resp.Header.Get("X-Analysis"); got != "scan" {
		t.Fatalf("first report X-Analysis = %q, want scan", got)
	}
	if cs := s.Cache().Stats(); cs.Aggregates != 1 || cs.AggregateMisses != 1 {
		t.Fatalf("after first scan: %+v", cs)
	}

	// A different finalization of the same aggregate: cold in the bytes
	// tier, hit in the aggregate tier.
	resp, _ = getRaw(t, ts.URL+"/v1/traces/mine/report?top=3")
	if got := resp.Header.Get("X-Analysis"); got != "cached-partial" {
		t.Errorf("top=3 report X-Analysis = %q, want cached-partial", got)
	}
	cs := s.Cache().Stats()
	if cs.AggregateHits != 1 || cs.AggregateMisses != 1 {
		t.Errorf("after top=3: %+v", cs)
	}

	// Sketch mode needs its own aggregate.
	getRaw(t, ts.URL+"/v1/traces/mine/report?sketch=1")
	if cs := s.Cache().Stats(); cs.Aggregates != 2 || cs.AggregateMisses != 2 {
		t.Errorf("after sketch=1: %+v", cs)
	}
}

// TestDeleteInvalidatesCaches is the DELETE handler contract: removing
// the last trace with a fingerprint drops its memoized results and
// aggregates from both cache tiers; a second name sharing the content
// keeps them alive.
func TestDeleteInvalidatesCaches(t *testing.T) {
	s, ts := newTestServer(t)
	tr := genTrace(t, "CC-e", 3, 30*time.Hour)
	info := ingestTrace(t, ts, "mine", tr)
	ingestTrace(t, ts, "twin", tr) // same content, same fingerprint

	// Warm both tiers under the shared fingerprint: a default report
	// (bytes tier) and a sketch report (aggregate tier + bytes tier).
	getRaw(t, ts.URL+"/v1/traces/mine/report")
	getRaw(t, ts.URL+"/v1/traces/mine/report?sketch=1")
	cs := s.Cache().Stats()
	if cs.Entries != 2 || cs.Aggregates != 1 {
		t.Fatalf("warmed cache: %+v", cs)
	}

	del := func(name string) *http.Response {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/traces/"+name, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Deleting one holder keeps the shared fingerprint's entries.
	if resp := del("twin"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete twin: %d", resp.StatusCode)
	}
	if cs := s.Cache().Stats(); cs.Entries != 2 || cs.Aggregates != 1 {
		t.Errorf("cache dropped entries while a fingerprint holder remains: %+v", cs)
	}

	// Deleting the last holder purges both tiers.
	if resp := del("mine"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete mine: %d", resp.StatusCode)
	}
	if cs := s.Cache().Stats(); cs.Entries != 0 || cs.Aggregates != 0 {
		t.Errorf("cache retains deleted fingerprint's entries: %+v", cs)
	}
	if s.Store().HasFingerprint(info.Fingerprint) {
		t.Error("store still reports the deleted fingerprint")
	}

	// The trace is gone; deleting again is 404.
	if resp, _ := getRaw(t, ts.URL+"/v1/traces/mine/report"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("report after delete: %d, want 404", resp.StatusCode)
	}
	if resp := del("mine"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("second delete: %d, want 404", resp.StatusCode)
	}

	// Re-ingesting the same content after the purge recomputes cleanly.
	ingestTrace(t, ts, "mine", tr)
	if resp, body := getRaw(t, ts.URL+"/v1/traces/mine/report"); resp.StatusCode != http.StatusOK {
		t.Errorf("report after re-ingest: %d %s", resp.StatusCode, clip(body))
	}
}

// TestPartialSurvivesShortTraceFallback: a trace too short for hourly
// binning stores without a partial, and its report fails with 422
// exactly as the streaming analysis would — the fallback must not turn
// the error into a 500 or a panic.
func TestPartialSurvivesShortTraceFallback(t *testing.T) {
	s, ts := newTestServer(t)
	tr := genTrace(t, "CC-e", 3, 30*time.Hour)
	short := tr.Window(tr.Meta.Start, 45*time.Minute)
	short.Meta.Name = "short"
	if _, err := s.Store().Put("short", short); err != nil {
		t.Fatal(err)
	}
	if st := s.Store().Stats(); st.Partials != 0 {
		t.Fatalf("short trace stored with a partial: %+v", st)
	}
	resp, body := getRaw(t, ts.URL+"/v1/traces/short/report")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("short-trace report: %d %s, want 422", resp.StatusCode, clip(body))
	}
}
