package server

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/trace"
)

// The live-ingest path: batched appends into an open trace. Every
// committed batch is a full store state — fingerprint, frozen partial
// aggregate, durable segments — byte-identical to what a one-shot
// upload of the same prefix would have produced, so readers never see
// an "appending" trace as anything but a normal (shorter) trace.
//
// The machinery that makes a batch cheap is all incremental:
//   - the fingerprint extends a running trace.Hasher (the canonical
//     JSONL hash is a stream hash, so in-order appends extend it);
//   - the aggregate extends a private mutable core.Partial, and each
//     commit publishes an immutable deep copy (append-and-refreeze:
//     published partials stay frozen, as the entry contract requires);
//   - the segments extend storage's open append generation, with the
//     manifest commit per batch as the durability point.
//
// Incremental hashing and hourly binning both need the header fixed up
// front, so an appended trace must declare complete metadata (start +
// length horizon) in its first batch — the horizon is the window the
// time series bins over; jobs past it still store and count, clamped
// into the final bin exactly as a one-shot upload's stragglers are.

// ErrAppendConflict rejects an append that lost a race with a
// replacement of the trace (re-upload, delete), contradicts the
// trace's committed metadata, or breaks append order. Mapped to HTTP
// 409: the client should re-read the trace state and retry.
var ErrAppendConflict = errors.New("server: append conflicts with the trace's committed state")

// errAppendOrder is the order violation shape of ErrAppendConflict.
func errAppendOrder(j *trace.Job, lastSubmit time.Time, lastID int64) error {
	return fmt.Errorf("%w: job %d at %s precedes the committed tail (%s, job %d); appends must arrive in (submit time, id) order",
		ErrAppendConflict, j.ID, j.SubmitTime.Format(time.RFC3339), lastSubmit.Format(time.RFC3339), lastID)
}

// appendState is one trace's live append session: the running hasher,
// the private mutable aggregate, and (with backing) the open storage
// generation. Batches serialize on mu; the store's write lock is taken
// only for the commit. stale is set (under the store's write lock) when
// a Put, spill, or Delete replaces the trace out from under the
// session — the session is then abandoned and the next append reopens
// from the new committed state.
type appendState struct {
	mu   sync.Mutex
	meta trace.Meta

	hasher *trace.Hasher
	live   *core.Partial // private mutable aggregate; nil when disabled
	jobs   []*trace.Job  // memory mode: all jobs, committed snapshots alias prefixes

	appender *storage.Appender // disk mode; nil without backing

	count      int
	bytesMoved int64
	lastSubmit time.Time
	lastID     int64

	stale atomic.Bool
	// lastBatch is the unix-nano wall time of the session's open or its
	// most recent committed batch, read lock-free by the idle reaper.
	lastBatch atomic.Int64
}

// teardown closes the abandoned session's open descriptor once any
// in-flight batch has drained. Runs on its own goroutine: the
// invalidator holds the store lock, an in-flight batch holds mu and may
// need the store lock to finish — so the close must wait outside both.
func (st *appendState) teardown() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.appender != nil {
		st.appender.Close()
	}
}

// invalidateAppendLocked detaches name's live append session, if any,
// marking it stale so an in-flight batch aborts instead of committing
// over the replacement. Caller holds mu's write lock.
func (s *Store) invalidateAppendLocked(name string) {
	st, ok := s.appendStates[name]
	if !ok {
		return
	}
	delete(s.appendStates, name)
	st.stale.Store(true)
	go st.teardown()
}

// dropAppendSession abandons a session after a failure that left it
// unusable (a write error mid-batch, a lost commit race): it is
// detached from the map unless a replacement session already took the
// slot, and its descriptor closed.
func (s *Store) dropAppendSession(name string, st *appendState) {
	s.mu.Lock()
	if cur, ok := s.appendStates[name]; ok && cur == st {
		delete(s.appendStates, name)
	}
	s.mu.Unlock()
	st.stale.Store(true)
	if st.appender != nil {
		st.appender.Close()
	}
}

// Append drains src as one batch appended to name, committing the
// grown trace — fingerprint, frozen aggregate, and (with backing)
// durable segments — as a single atomic state swap. It returns the new
// identity, the number of jobs appended, and the fingerprint the trace
// had before the batch ("" when the batch created it), which the
// handler uses for cache hygiene.
//
// A fresh name requires complete metadata in the batch header (start
// and length); later batches may repeat or omit it, but contradicting
// it is a conflict. Jobs must not precede the committed tail in
// (submit time, id) order — the canonical encoding is of the sorted
// stream, and the running hash cannot reorder what it already hashed.
// Jobs within one batch are sorted here, so any single batch is
// order-free internally.
func (s *Store) Append(name string, src trace.Source) (TraceInfo, int, string, error) {
	if name == "" {
		return TraceInfo{}, 0, "", fmt.Errorf("server: empty trace name")
	}
	batch, err := collectBatch(src)
	if err != nil {
		s.countAppendRejected()
		return TraceInfo{}, 0, "", err
	}

	// A replaced-under-us session retries against the new committed
	// state; bound the retries so a pathological replace loop cannot
	// spin forever.
	for attempt := 0; ; attempt++ {
		info, prevFP, err := s.appendBatch(name, src.Meta(), batch)
		if err == nil {
			return info, len(batch), prevFP, nil
		}
		if errors.Is(err, errSessionStale) && attempt < 3 {
			continue
		}
		s.countAppendRejected()
		return TraceInfo{}, 0, "", err
	}
}

// errSessionStale is the internal retry signal: the session was
// invalidated between lookup and lock.
var errSessionStale = errors.New("server: append session went stale")

// collectBatch drains and validates one append batch, sorting it into
// canonical (submit time, id) order.
func collectBatch(src trace.Source) ([]*trace.Job, error) {
	var batch []*trace.Job
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := j.Validate(); err != nil {
			return nil, err
		}
		batch = append(batch, j)
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("server: empty append batch")
	}
	sort.SliceStable(batch, func(i, k int) bool { return jobLess(batch[i], batch[k]) })
	return batch, nil
}

// appendBatch runs one attempt: resolve (or open) the session, write
// the batch through it, and commit the new state.
func (s *Store) appendBatch(name string, batchMeta trace.Meta, batch []*trace.Job) (TraceInfo, string, error) {
	st, err := s.appendSession(name, batchMeta)
	if err != nil {
		return TraceInfo{}, "", err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.stale.Load() {
		return TraceInfo{}, "", errSessionStale
	}
	if err := checkBatchMeta(batchMeta, st.meta); err != nil {
		return TraceInfo{}, "", err
	}
	if st.count > 0 && jobLess(batch[0], &trace.Job{SubmitTime: st.lastSubmit, ID: st.lastID}) {
		return TraceInfo{}, "", errAppendOrder(batch[0], st.lastSubmit, st.lastID)
	}
	// Sample the admission bounds before the expensive work; the commit
	// re-checks authoritatively under the write lock.
	if err := s.precheckAppend(name, len(batch)); err != nil {
		return TraceInfo{}, "", err
	}

	for _, j := range batch {
		if st.appender != nil {
			if err := st.appender.Append(j); err != nil {
				s.dropAppendSession(name, st)
				return TraceInfo{}, "", fmt.Errorf("server: appending to %q: %w", name, err)
			}
		} else {
			st.jobs = append(st.jobs, j)
		}
		if err := st.hasher.Write(j); err != nil {
			s.dropAppendSession(name, st)
			return TraceInfo{}, "", err
		}
		if st.live != nil {
			st.live.Observe(j)
		}
		st.count++
		st.bytesMoved += int64(j.TotalBytes())
	}
	last := batch[len(batch)-1]
	st.lastSubmit, st.lastID = last.SubmitTime, last.ID

	fp := st.hasher.Sum()
	var frozen *core.Partial
	if st.live != nil {
		frozen, err = st.live.Clone()
		if err != nil {
			s.dropAppendSession(name, st)
			return TraceInfo{}, "", fmt.Errorf("server: refreezing aggregate for %q: %w", name, err)
		}
	}
	info := TraceInfo{
		Name:        name,
		Fingerprint: fp,
		Workload:    st.meta.Name,
		Machines:    st.meta.Machines,
		LengthMS:    st.meta.Length.Milliseconds(),
		Jobs:        st.count,
		BytesMoved:  st.bytesMoved,
	}

	// Durability outside the store lock (fsync of segment + snapshot),
	// exactly like put; only the atomic manifest commit and the entry
	// swap happen inside it.
	var sealed *storage.Sealed
	if st.appender != nil {
		sealed, err = st.appender.Seal(fp, frozen)
		if err != nil {
			s.dropAppendSession(name, st)
			return TraceInfo{}, "", fmt.Errorf("server: sealing append to %q: %w", name, err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if st.stale.Load() {
		// Lost the race with a replacement between write and commit: the
		// replacement already owns the name (and, on disk, a newer
		// generation). The batch's staged bytes are uncommitted tail;
		// nothing to undo.
		return TraceInfo{}, "", errSessionStale
	}
	if err := s.admitAppendLocked(name, len(batch)); err != nil {
		// The session's state already includes this batch (hashed,
		// observed); it cannot be unwound, so the session is abandoned.
		s.invalidateAppendLocked(name)
		return TraceInfo{}, "", err
	}
	var prevFP string
	if old, ok := s.entries[name]; ok {
		prevFP = old.info.Fingerprint
	}
	e := &entry{info: info, partial: frozen}
	if st.appender != nil {
		stored, err := st.appender.Commit(sealed)
		if err != nil {
			s.invalidateAppendLocked(name)
			return TraceInfo{}, "", fmt.Errorf("server: committing append to %q: %w", name, err)
		}
		e.stored = stored
	} else {
		t := trace.New(st.meta)
		t.Jobs = st.jobs[:len(st.jobs)]
		e.t = t
	}
	s.installLocked(name, e)
	s.appends++
	st.lastBatch.Store(time.Now().UnixNano())
	return info, prevFP, nil
}

// countAppendRejected bumps the append failure counter.
func (s *Store) countAppendRejected() {
	s.mu.Lock()
	s.appendRejected++
	s.mu.Unlock()
}

// precheckAppend samples the admission bounds for an append of n jobs
// to name (advisory; the commit re-checks under the write lock).
func (s *Store) precheckAppend(name string, n int) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.admitAppendLocked(name, n)
}

// admitAppendLocked checks the admission bounds for growing name by n
// jobs: the trace-count cap when the batch creates the name, and —
// memory-only — the job budget (appends grow the trace in place, so
// nothing is freed). Callers hold mu (either mode).
func (s *Store) admitAppendLocked(name string, n int) error {
	if _, ok := s.entries[name]; !ok && len(s.entries) >= s.maxTraces {
		return fmt.Errorf("%w: %d traces (max %d)", ErrStoreFull, len(s.entries), s.maxTraces)
	}
	if s.backing == nil {
		if newTotal := s.residentJobs + n; newTotal > s.maxTotalJobs {
			return fmt.Errorf("%w: %d total jobs would exceed max %d", ErrStoreFull, newTotal, s.maxTotalJobs)
		}
	}
	return nil
}

// appendSession resolves name's live session, opening one from the
// committed state if needed. Opening replays the committed jobs through
// a fresh hasher (and, when the frozen aggregate cannot be adopted,
// through a fresh aggregate) — O(committed jobs) once per session, so
// steady-state batches stay O(batch).
func (s *Store) appendSession(name string, batchMeta trace.Meta) (*appendState, error) {
	s.mu.RLock()
	st, ok := s.appendStates[name]
	s.mu.RUnlock()
	if ok {
		return st, nil
	}
	// Session opening is serialized store-wide: it is rare (once per
	// name per process) and the replay must not run twice for one name.
	s.appendOpenMu.Lock()
	defer s.appendOpenMu.Unlock()
	s.mu.RLock()
	st, ok = s.appendStates[name]
	s.mu.RUnlock()
	if ok {
		return st, nil
	}
	st, err := s.openAppendSession(name, batchMeta)
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		// The replay was reading a generation a background compaction
		// swept mid-open. The fresh view serves the packed replacement,
		// whose replay hashes to the same committed identity.
		st, err = s.openAppendSession(name, batchMeta)
	}
	if err != nil {
		return nil, err
	}
	st.lastBatch.Store(time.Now().UnixNano())
	s.mu.Lock()
	s.appendStates[name] = st
	s.mu.Unlock()
	return st, nil
}

// openAppendSession builds a session from the trace's committed state
// (or fresh, for a new name).
func (s *Store) openAppendSession(name string, batchMeta trace.Meta) (*appendState, error) {
	v, err := s.View(name)
	fresh := errors.Is(err, ErrNotFound)
	if err != nil && !fresh {
		return nil, err
	}

	meta := batchMeta
	if fresh {
		if meta.Name == "" {
			meta.Name = name // mirrors normalize
		}
		if meta.Start.IsZero() || meta.Length <= 0 {
			return nil, badReq("append to a new trace requires complete metadata (start and length_ms declare the window the trace will cover)")
		}
	} else {
		committed := trace.Meta{
			Name:     v.Info.Workload,
			Machines: v.Info.Machines,
			Length:   time.Duration(v.Info.LengthMS) * time.Millisecond,
		}
		if v.Trace != nil {
			committed.Start = v.Trace.Meta.Start
			committed.Length = v.Trace.Meta.Length
		} else if v.Stored != nil {
			committed = v.Stored.Meta()
		}
		if err := checkBatchMeta(batchMeta, committed); err != nil {
			return nil, err
		}
		meta = committed
	}

	st := &appendState{meta: meta, hasher: trace.NewHasher()}
	if err := st.hasher.Begin(meta); err != nil {
		return nil, err
	}
	if !s.noPartials {
		st.live, _ = core.NewPartial(meta, false) // best-effort, like put
	}

	if s.backing != nil {
		appender, _, err := s.backing.OpenAppend(name, meta)
		if err != nil {
			return nil, fmt.Errorf("server: opening %q for append: %w", name, err)
		}
		st.appender = appender
	}
	if fresh {
		return st, nil
	}

	// Adopt the committed frozen aggregate when it demonstrably covers
	// the committed jobs in the mode the session needs — the replay then
	// only hashes. Otherwise the replay rebuilds the aggregate too.
	adopted := false
	if st.live != nil && v.Partial != nil && !v.Partial.Sketch() &&
		v.Partial.Jobs() == v.Info.Jobs && v.Partial.Meta() == meta {
		clone, err := v.Partial.Clone()
		if err == nil {
			st.live = clone
			adopted = true
		}
	}

	var src trace.Source
	if v.Trace != nil {
		src = trace.NewSliceSource(v.Trace)
		if s.backing == nil {
			st.jobs = append(make([]*trace.Job, 0, v.Trace.Len()+1024), v.Trace.Jobs...)
		}
	} else {
		src, err = v.Stored.Open()
		if err != nil {
			st.close()
			return nil, err
		}
	}
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if cl, ok := src.(io.Closer); ok {
				cl.Close()
			}
			st.close()
			return nil, fmt.Errorf("server: replaying %q for append: %w", name, err)
		}
		if err := st.hasher.Write(j); err != nil {
			if cl, ok := src.(io.Closer); ok {
				cl.Close()
			}
			st.close()
			return nil, err
		}
		if st.live != nil && !adopted {
			st.live.Observe(j)
		}
		st.count++
		st.bytesMoved += int64(j.TotalBytes())
		st.lastSubmit, st.lastID = j.SubmitTime, j.ID
	}
	if st.count != v.Info.Jobs || st.hasher.Sum() != v.Info.Fingerprint {
		// The replay must reproduce the committed identity exactly or the
		// appended fingerprints would silently diverge from re-uploads.
		st.close()
		return nil, fmt.Errorf("server: replaying %q for append: state diverges from committed identity", name)
	}
	return st, nil
}

// close releases a half-open session's resources.
func (st *appendState) close() {
	if st.appender != nil {
		st.appender.Close()
		st.appender = nil
	}
}

// checkBatchMeta verifies a batch's declared header against the
// session metadata: omitted fields pass, contradicting ones conflict
// (the header is hashed first and cannot change once appends began).
func checkBatchMeta(batch, session trace.Meta) error {
	if batch.Name != "" && batch.Name != session.Name {
		return fmt.Errorf("%w: batch header name %q vs committed %q", ErrAppendConflict, batch.Name, session.Name)
	}
	if batch.Machines != 0 && batch.Machines != session.Machines {
		return fmt.Errorf("%w: batch header machines %d vs committed %d", ErrAppendConflict, batch.Machines, session.Machines)
	}
	if !batch.Start.IsZero() && !batch.Start.Equal(session.Start) {
		return fmt.Errorf("%w: batch header start %s vs committed %s", ErrAppendConflict,
			batch.Start.Format(time.RFC3339Nano), session.Start.Format(time.RFC3339Nano))
	}
	if batch.Length > 0 && batch.Length != session.Length {
		return fmt.Errorf("%w: batch header length %s vs committed %s", ErrAppendConflict, batch.Length, session.Length)
	}
	return nil
}
