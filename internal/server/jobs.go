package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Async generation: POST /v1/generate starts a trace synthesis in the
// background and returns a job handle immediately; clients poll
// GET /v1/jobs/{id} for progress (jobs written so far) and the final
// stored TraceInfo. Synthesis of paper-length traces takes seconds to
// minutes, far beyond what a request/response cycle should hold open.

// GenRequest is the POST /v1/generate body.
type GenRequest struct {
	// Name to store the trace under (default: the workload name).
	Name string `json:"name"`
	// Workload is one of the seven calibrated profiles. Required.
	Workload string `json:"workload"`
	// Seed fixes all randomness (default 1).
	Seed int64 `json:"seed"`
	// Duration truncates the trace, e.g. "48h" (default: the profile's
	// full Table-1 length).
	Duration string `json:"duration"`
	// RateScale scales the arrival rate (default 1.0).
	RateScale float64 `json:"rate_scale"`
	// Parallelism is the generation worker count (default all cores).
	Parallelism int `json:"parallelism"`
}

// JobStatus is the wire form of one generation job.
type JobStatus struct {
	ID          string     `json:"id"`
	State       string     `json:"state"` // "running", "done", "failed"
	Trace       string     `json:"trace"`
	Workload    string     `json:"workload"`
	JobsWritten int64      `json:"jobs_written"`
	Error       string     `json:"error,omitempty"`
	Result      *TraceInfo `json:"result,omitempty"`
}

// genJob is one background generation.
type genJob struct {
	id        string
	seq       int
	traceName string
	workload  string
	written   atomic.Int64
	done      chan struct{}

	mu     sync.Mutex
	err    error
	result *TraceInfo
}

// terminal reports whether the job has finished (done or failed).
func (j *genJob) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

func (j *genJob) status() JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       "running",
		Trace:       j.traceName,
		Workload:    j.workload,
		JobsWritten: j.written.Load(),
	}
	select {
	case <-j.done:
		j.mu.Lock()
		if j.err != nil {
			st.State = "failed"
			st.Error = j.err.Error()
		} else {
			st.State = "done"
			st.Result = j.result
		}
		j.mu.Unlock()
	default:
	}
	return st
}

// progressSink collects generated jobs while counting them (so pollers
// see generation advance) and enforces the store's remaining job budget
// mid-stream: generating a trace the store could never accept must not
// balloon the heap first. GenerateTo aborts its pipeline as soon as the
// sink errors.
type progressSink struct {
	collect trace.CollectSink
	written *atomic.Int64
	budget  int
}

func (p *progressSink) Begin(meta trace.Meta) error { return p.collect.Begin(meta) }

func (p *progressSink) Write(j *trace.Job) error {
	if int(p.written.Load()) >= p.budget {
		return fmt.Errorf("%w: generation exceeds the remaining %d-job budget", ErrStoreFull, p.budget)
	}
	if err := p.collect.Write(j); err != nil {
		return err
	}
	p.written.Add(1)
	return nil
}

// maxJobHistory bounds how many terminal (done/failed) jobs the
// registry retains: the server is long-running and everything else in
// it is memory-bounded, so finished job records must age out too.
// Running jobs are never evicted — they are active work.
const maxJobHistory = 64

// jobRegistry tracks generation jobs by ID.
type jobRegistry struct {
	mu  sync.Mutex
	m   map[string]*genJob
	seq int
}

func newJobRegistry() *jobRegistry {
	return &jobRegistry{m: make(map[string]*genJob)}
}

// evictLocked drops the oldest terminal jobs beyond maxJobHistory.
func (r *jobRegistry) evictLocked() {
	terminal := make([]*genJob, 0, len(r.m))
	for _, j := range r.m {
		if j.terminal() {
			terminal = append(terminal, j)
		}
	}
	if len(terminal) <= maxJobHistory {
		return
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].seq < terminal[k].seq })
	for _, j := range terminal[:len(terminal)-maxJobHistory] {
		delete(r.m, j.id)
	}
}

// start validates req and launches the generation goroutine, returning
// the job's initial status.
func (r *jobRegistry) start(store *Store, req GenRequest) (JobStatus, error) {
	p, err := profile.ByName(req.Workload)
	if err != nil {
		return JobStatus{}, err
	}
	var dur time.Duration
	if req.Duration != "" {
		dur, err = time.ParseDuration(req.Duration)
		if err != nil {
			return JobStatus{}, fmt.Errorf("server: bad duration %q: %w", req.Duration, err)
		}
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	name := req.Name
	if name == "" {
		name = req.Workload
	}
	cfg := gen.Config{
		Profile:     p,
		Seed:        seed,
		Duration:    dur,
		RateScale:   req.RateScale,
		Parallelism: req.Parallelism,
	}

	r.mu.Lock()
	r.seq++
	j := &genJob{
		id:        fmt.Sprintf("gen-%d", r.seq),
		seq:       r.seq,
		traceName: name,
		workload:  req.Workload,
		done:      make(chan struct{}),
	}
	r.m[j.id] = j
	r.evictLocked()
	r.mu.Unlock()

	budget := store.RemainingBudget(name)
	go func() {
		defer close(j.done)
		sink := &progressSink{written: &j.written, budget: budget}
		_, err := gen.GenerateTo(cfg, sink)
		if err == nil {
			var info TraceInfo
			info, err = store.Put(j.traceName, sink.collect.Trace())
			if err == nil {
				j.mu.Lock()
				j.result = &info
				j.mu.Unlock()
			}
		}
		if err != nil {
			j.mu.Lock()
			j.err = err
			j.mu.Unlock()
		}
	}()
	return j.status(), nil
}

// get returns the status of job id.
func (r *jobRegistry) get(id string) (JobStatus, bool) {
	r.mu.Lock()
	j, ok := r.m[id]
	r.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// list returns every job's status, newest first.
func (r *jobRegistry) list() []JobStatus {
	r.mu.Lock()
	jobs := make([]*genJob, 0, len(r.m))
	for _, j := range r.m {
		jobs = append(jobs, j)
	}
	r.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	// Newest first: IDs are "gen-<seq>", so longer IDs are newer and
	// equal-length IDs order lexically.
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i].ID, out[k].ID
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return a > b
	})
	return out
}
