package server

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewResultCache(4)
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("v"), nil }

	v, cached, err := c.Do("k", compute)
	if err != nil || cached || string(v) != "v" {
		t.Fatalf("first Do: v=%q cached=%v err=%v", v, cached, err)
	}
	v, cached, err = c.Do("k", compute)
	if err != nil || !cached || string(v) != "v" {
		t.Fatalf("second Do: v=%q cached=%v err=%v", v, cached, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestCacheSingleFlight: N concurrent requests for the same cold key
// run exactly one computation; everyone gets its result.
func TestCacheSingleFlight(t *testing.T) {
	c := NewResultCache(4)
	var computes atomic.Int64
	gate := make(chan struct{})
	const n = 32
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("k", func() ([]byte, error) {
				computes.Add(1)
				<-gate // hold the flight open until all goroutines have queued
				return []byte("once"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let the requests pile up, then release the one in-flight compute.
	for c.Stats().Coalesced < n-1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("%d concurrent identical requests triggered %d computations, want exactly 1", n, got)
	}
	for i, v := range results {
		if string(v) != "once" {
			t.Fatalf("result %d = %q", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 {
		t.Errorf("stats %+v", st)
	}
}

// TestCacheErrorsNotCached: a failed computation propagates its error to
// coalesced waiters but leaves no entry, so the next request retries.
func TestCacheErrorsNotCached(t *testing.T) {
	c := NewResultCache(4)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("failed entry cached: %+v", st)
	}
	v, cached, err := c.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || cached || string(v) != "ok" {
		t.Errorf("retry after failure: v=%q cached=%v err=%v", v, cached, err)
	}
}

// TestCachePanicDoesNotWedgeKey: a compute that panics must not leave
// the key permanently in-flight — concurrent waiters get an error, and
// the next request retries and succeeds.
func TestCachePanicDoesNotWedgeKey(t *testing.T) {
	c := NewResultCache(4)
	gate := make(chan struct{})
	waiterDone := make(chan error, 1)
	panicked := make(chan struct{})
	go func() {
		defer func() {
			recover() // stand-in for the HTTP middleware
			close(panicked)
		}()
		c.Do("k", func() ([]byte, error) {
			close(gate)
			panic("kaboom")
		})
	}()
	<-gate
	go func() {
		_, _, err := c.Do("k", func() ([]byte, error) { return []byte("other"), nil })
		waiterDone <- err
	}()
	<-panicked
	select {
	case err := <-waiterDone:
		// The waiter either coalesced onto the panicking flight (error)
		// or arrived after removal and computed fresh (nil) — both are
		// fine; what it must never do is hang.
		_ = err
	case <-time.After(5 * time.Second):
		t.Fatal("waiter wedged on a panicked computation")
	}
	v, _, err := c.Do("k", func() ([]byte, error) { return []byte("retry"), nil })
	if err != nil {
		t.Fatalf("key not retryable after panic: %v", err)
	}
	if s := string(v); s != "retry" && s != "other" {
		t.Errorf("unexpected value %q", s)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewResultCache(2)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(key, func() ([]byte, error) { return []byte(key), nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats %+v", st)
	}
	// k0 was the LRU victim; k2 must still be resident.
	_, cached, _ := c.Do("k2", func() ([]byte, error) { return []byte("recompute"), nil })
	if !cached {
		t.Error("most recent entry was evicted")
	}
	_, cached, _ = c.Do("k0", func() ([]byte, error) { return []byte("recompute"), nil })
	if cached {
		t.Error("evicted entry still served")
	}
}

// TestCacheConcurrentMixedKeys hammers the cache with overlapping keys
// to give -race something to chew on.
func TestCacheConcurrentMixedKeys(t *testing.T) {
	c := NewResultCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g+i)%12)
				v, _, err := c.Do(key, func() ([]byte, error) { return []byte(key), nil })
				if err != nil || string(v) != key {
					t.Errorf("key %s: v=%q err=%v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
