package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/trace"
)

// doDelete issues a DELETE and returns the response (body closed).
func doDelete(t testing.TB, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// diskServer starts a server over a durable data dir with small
// segments so every test trace spans several.
func diskServer(t testing.TB, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	if cfg.SegmentJobs == 0 {
		cfg.SegmentJobs = 200
	}
	return newTestServerCfg(t, cfg)
}

// TestRestartRoundTrip is the durability acceptance test: ingest the
// FB-2009 day-1 trace, capture the cold report, restart the store
// (fresh Server over the same dir), and require the recovered cold
// report to be byte-identical and served from the persisted partial —
// no job rescan — as the X-Analysis header proves.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := genTrace(t, "FB-2009", 1, 24*time.Hour)

	s1, ts1 := diskServer(t, dir, Config{})
	info := ingestTrace(t, ts1, "fb2009-day1", tr)

	resp, before := getRaw(t, ts1.URL+"/v1/traces/fb2009-day1/report")
	if got := resp.Header.Get("X-Analysis"); got != "ingest-partial" {
		t.Fatalf("pre-restart cold report X-Analysis = %q, want ingest-partial", got)
	}
	if st := s1.Store().Stats(); st.DiskTraces != 1 || st.ResidentJobs != tr.Len() {
		t.Fatalf("pre-restart stats: %+v", st)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// A brand-new process: nothing in memory, everything from disk.
	s2, ts2 := diskServer(t, dir, Config{})
	recovered := s2.Recovered()
	if len(recovered) != 1 || recovered[0] != info {
		t.Fatalf("recovered identity %+v, want %+v", recovered, info)
	}
	if st := s2.Store().Stats(); st.ResidentJobs != 0 || st.TotalJobs != tr.Len() || st.Partials != 1 {
		t.Fatalf("post-restart stats: %+v (trace should be disk-resident with a partial)", st)
	}

	resp, after := getRaw(t, ts2.URL+"/v1/traces/fb2009-day1/report")
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("post-restart report X-Cache = %q, want MISS (fresh cache)", got)
	}
	if got := resp.Header.Get("X-Analysis"); got != "recovered-partial" {
		t.Fatalf("post-restart cold report X-Analysis = %q, want recovered-partial", got)
	}
	if !bytes.Equal(before, after) {
		t.Error("post-restart report bytes differ from pre-restart bytes")
	}
	// Jobs stayed on disk: serving the report did not load them.
	if st := s2.Store().Stats(); st.ResidentJobs != 0 {
		t.Errorf("report from partial should not load jobs; resident=%d", st.ResidentJobs)
	}

	// An endpoint that genuinely needs the jobs reloads them from the
	// segments and produces a working result.
	resp, body := getRaw(t, ts2.URL+"/v1/traces/fb2009-day1/replay?nodes=600")
	if resp.StatusCode != 200 {
		t.Fatalf("replay after restart: %d %s", resp.StatusCode, clip(body))
	}
	if st := s2.Store().Stats(); st.ResidentJobs != tr.Len() || st.Reloads != 1 {
		t.Errorf("replay should reload the trace: %+v", st)
	}
}

// TestSpillIngestAndOutOfCoreReport is the out-of-core acceptance test:
// an upload exceeding the whole in-memory job budget is accepted (the
// memory-only store rejects it), lands disk-resident, and its report —
// scanned out-of-core from the segments when no partial applies — is
// byte-identical to what an unconstrained in-memory server computes.
func TestSpillIngestAndOutOfCoreReport(t *testing.T) {
	tr := genTrace(t, "CC-b", 1, 30*time.Hour)
	budget := tr.Len() / 3

	// Reference bytes from a plain in-memory server.
	_, tsRef := newTestServer(t)
	ingestTrace(t, tsRef, "ref", tr)
	_, want := getRaw(t, tsRef.URL+"/v1/traces/ref/report")

	// Partials disabled so the report must scan the segments.
	s, ts := diskServer(t, t.TempDir(), Config{MaxTotalJobs: budget, DisablePartials: true})
	info := ingestTrace(t, ts, "big", tr)
	if info.Jobs != tr.Len() {
		t.Fatalf("spilled ingest reports %d jobs, want %d", info.Jobs, tr.Len())
	}
	st := s.Store().Stats()
	if st.Spills != 1 || st.ResidentJobs != 0 || st.DiskTraces != 1 {
		t.Fatalf("after spill: %+v", st)
	}

	resp, got := getRaw(t, ts.URL+"/v1/traces/big/report")
	if x := resp.Header.Get("X-Analysis"); x != "disk-scan" {
		t.Fatalf("spilled report X-Analysis = %q, want disk-scan", x)
	}
	if !bytes.Equal(got, want) {
		t.Error("out-of-core report differs from in-memory reference")
	}
	// The scan's aggregate is parked: a finalization variant reuses it.
	resp, _ = getRaw(t, ts.URL+"/v1/traces/big/report?top=3")
	if x := resp.Header.Get("X-Analysis"); x != "cached-partial" {
		t.Errorf("top=3 after scan X-Analysis = %q, want cached-partial", x)
	}
	// Jobs never became resident: the analysis really ran out-of-core.
	if st := s.Store().Stats(); st.ResidentJobs != 0 {
		t.Errorf("out-of-core scan loaded %d jobs into memory", st.ResidentJobs)
	}

	// A materializing endpoint on a trace bigger than the whole budget
	// is refused with 422, not OOM'd.
	resp, body := getRaw(t, ts.URL+"/v1/traces/big/report?full=1")
	if resp.StatusCode != 422 {
		t.Errorf("full report on over-budget trace: %d %s", resp.StatusCode, clip(body))
	}
}

// TestSpillWithPartialServesWithoutScan: with partials on, the spilled
// upload builds its aggregate inline while streaming to disk, so even
// the disk-resident cold report does no per-job work — and the
// aggregate covers each job exactly once (the buffered prefix observed
// before the spill switch must not be observed again), so the report
// bytes equal the in-memory path's.
func TestSpillWithPartialServesWithoutScan(t *testing.T) {
	tr := genTrace(t, "CC-e", 2, 30*time.Hour)

	_, tsRef := newTestServer(t)
	ingestTrace(t, tsRef, "ref", tr)
	refResp, want := getRaw(t, tsRef.URL+"/v1/traces/ref/report")
	if x := refResp.Header.Get("X-Analysis"); x != "ingest-partial" {
		t.Fatalf("reference report X-Analysis = %q", x)
	}

	s, ts := diskServer(t, t.TempDir(), Config{MaxTotalJobs: tr.Len() / 2})
	ingestTrace(t, ts, "big", tr)
	if st := s.Store().Stats(); st.Spills != 1 || st.Partials != 1 {
		t.Fatalf("after spill: %+v", st)
	}
	v, err := s.Store().View("big")
	if err != nil {
		t.Fatal(err)
	}
	if v.Partial == nil || v.Partial.Jobs() != tr.Len() {
		t.Fatalf("spilled partial observed %d jobs, trace has %d (buffered prefix double-observed?)",
			v.Partial.Jobs(), tr.Len())
	}
	resp, got := getRaw(t, ts.URL+"/v1/traces/big/report")
	if x := resp.Header.Get("X-Analysis"); x != "ingest-partial" {
		t.Errorf("spilled-with-partial report X-Analysis = %q, want ingest-partial", x)
	}
	if !bytes.Equal(got, want) {
		t.Error("spilled-partial report differs from the in-memory path's bytes")
	}
}

// TestEvictionSpillsInsteadOfRejecting: with backing, filling the hot
// tier evicts the least-recently-used resident copy instead of
// rejecting the new upload; the evicted trace keeps serving from disk.
func TestEvictionSpillsInsteadOfRejecting(t *testing.T) {
	a := genTrace(t, "CC-b", 1, 26*time.Hour)
	b := genTrace(t, "CC-e", 2, 26*time.Hour)
	budget := a.Len() + b.Len()/2 // both fit on disk, not both in memory
	s, ts := diskServer(t, t.TempDir(), Config{MaxTotalJobs: budget})

	ingestTrace(t, ts, "a", a)
	ingestTrace(t, ts, "b", b)

	st := s.Store().Stats()
	if st.Traces != 2 || st.Rejected != 0 {
		t.Fatalf("both uploads must be accepted: %+v", st)
	}
	if st.Evictions == 0 && st.Spills == 0 {
		t.Fatalf("hot tier over budget with no eviction or spill: %+v", st)
	}
	if st.ResidentJobs > budget {
		t.Fatalf("resident jobs %d exceed budget %d", st.ResidentJobs, budget)
	}

	// Every trace still answers reports, resident or not.
	for _, name := range []string{"a", "b"} {
		resp, body := getRaw(t, ts.URL+"/v1/traces/"+name+"/report")
		if resp.StatusCode != 200 {
			t.Errorf("report %s after eviction: %d %s", name, resp.StatusCode, clip(body))
		}
	}
}

// TestDeleteCollectsSegments: DELETE on a disk-backed trace removes its
// on-disk generation too, so a restart does not resurrect it.
func TestDeleteCollectsSegments(t *testing.T) {
	dir := t.TempDir()
	tr := genTrace(t, "CC-e", 1, 26*time.Hour)
	s1, ts1 := diskServer(t, dir, Config{})
	ingestTrace(t, ts1, "doomed", tr)
	if st := s1.Store().Stats(); st.DiskBytes == 0 {
		t.Fatalf("no disk usage recorded: %+v", st)
	}
	resp := doDelete(t, ts1.URL+"/v1/traces/doomed")
	if resp.StatusCode != 204 {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _ := diskServer(t, dir, Config{})
	if got := len(s2.Recovered()); got != 0 {
		t.Errorf("deleted trace resurrected: %d recovered", got)
	}
}

// TestUnsortedSpillFallsBackToSort: an out-of-order upload that
// overflows the remaining budget but fits the whole tier is read back,
// sorted, and stored normally — same identity as uploading it sorted.
func TestUnsortedSpillFallsBackToSort(t *testing.T) {
	tr := genTrace(t, "CC-e", 3, 26*time.Hour)
	sortedFP, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	// Reverse the jobs: thoroughly unsorted.
	rev := trace.New(tr.Meta)
	for i := tr.Len() - 1; i >= 0; i-- {
		rev.Add(tr.Jobs[i])
	}

	s := mustNew(t, Config{MaxTotalJobs: tr.Len() + 10, DataDir: t.TempDir(), SegmentJobs: 100})
	// Eat most of the budget so the upload overflows mid-stream.
	filler := genTrace(t, "CC-b", 1, 25*time.Hour)
	if _, err := s.Store().Put("filler", filler); err != nil {
		t.Fatal(err)
	}

	info, err := s.Store().Ingest("unsorted", trace.NewSliceSource(rev))
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != sortedFP {
		t.Errorf("sorted-fallback fingerprint %s, want %s", info.Fingerprint, sortedFP)
	}
	if st := s.Store().Stats(); st.Traces != 2 {
		t.Errorf("stats after fallback: %+v", st)
	}
}

// TestSpillFingerprintMatchesMemoryPath: the fingerprint a spilled
// (sorted, complete-header) upload commits equals the in-memory path's
// fingerprint for the same bytes — the invariant that keeps
// fingerprint-keyed caches coherent across tiers.
func TestSpillFingerprintMatchesMemoryPath(t *testing.T) {
	tr := genTrace(t, "CC-b", 2, 26*time.Hour)
	wantFP, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	s, ts := diskServer(t, t.TempDir(), Config{MaxTotalJobs: tr.Len() / 4})
	info := ingestTrace(t, ts, "spilled", tr)
	if info.Fingerprint != wantFP {
		t.Errorf("spilled fingerprint %s, want %s", info.Fingerprint, wantFP)
	}
	if st := s.Store().Stats(); st.Spills != 1 {
		t.Errorf("expected a spill: %+v", st)
	}
}
