package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/trace"
)

// The scatter/gather coordinator: the protocol the serving layer runs
// on top of the fleet's placement/transport/liveness mechanics.
//
// A distributed trace never exists whole on any node. Ingest splits
// the upload into contiguous ordered shards (the same deterministic
// partition the shard-parallel analyzer uses), places each shard on R
// consistent-hash owners as an ordinary local trace under a reserved
// ".fleet/<name>/<i>" name, and registers a small metadata document —
// span, job count, fingerprint, shard count, and the serialized
// fingerprint-hasher state — on every member.
//
// A report against any node scatters to one live owner per shard; each
// owner builds its local core.Partial (reusing the single-node partial
// machinery, frozen aggregates, and the cache's aggregate tier) and
// returns the versioned binary snapshot as the wire format. The
// coordinator merges the partials in shard index order, which by the
// merge contract makes the response byte-identical to a single-node
// analysis of the whole trace. Missing shards (every replica down)
// degrade the answer instead of failing it: the merged remainder is
// served with X-Analysis: degraded and the missing shard list, and is
// never cached.
//
// The fingerprint needs care: a cluster trace's content fingerprint is
// the hash of its canonical JSONL stream, which is not a function of
// the shard fingerprints (the header line is hashed once, not per
// shard). The coordinator therefore hashes the stream itself at ingest
// and persists the hasher midstate in the metadata document; the home
// node restores it to extend the fingerprint on each append, so K
// batched cluster appends commit the exact one-shot fingerprint.

// shardPrefix namespaces locally stored shard replicas. The public
// routes match {name} as a single path segment, so these names are
// unreachable from the outside; the list handler hides them.
const shardPrefix = ".fleet/"

// fleetForwardedHeader marks a proxied append so a placement
// disagreement between nodes cannot forward in a loop.
const fleetForwardedHeader = "X-Fleet-Forwarded"

// shardTraceName is the local store name of one shard replica.
func shardTraceName(name string, i int) string {
	return shardPrefix + name + "/" + strconv.Itoa(i)
}

// shardKey is the ring placement key of one shard.
func shardKey(name string, i int) string {
	return name + "/" + strconv.Itoa(i)
}

// shardPath is the peer-protocol URL path of one shard.
func shardPath(name string, i int) string {
	return "/internal/v1/shards/" + url.PathEscape(name) + "/" + strconv.Itoa(i)
}

// clusterMeta is the shard-ownership document every member keeps (and
// persists under the storage engine's cluster/ directory) for one
// distributed trace. Times are unix nanoseconds; the JSONL wire format
// is millisecond-precision, so they round-trip exactly.
type clusterMeta struct {
	Name        string `json:"name"`
	Workload    string `json:"workload"`
	Machines    int    `json:"machines,omitempty"`
	StartNS     int64  `json:"start_ns"`
	LengthMS    int64  `json:"length_ms"`
	Jobs        int    `json:"jobs"`
	BytesMoved  int64  `json:"bytes_moved"`
	Fingerprint string `json:"fingerprint"`
	Shards      int    `json:"shards"`
	Replication int    `json:"replication"`
	// HasherState is the serialized trace.Hasher midstate after the
	// last committed job — what the home node extends on append.
	HasherState []byte `json:"hasher_state,omitempty"`
	// LastSubmitNS/LastID are the committed tail, the append-order
	// fence (the same rule the single-node append session keeps).
	LastSubmitNS int64 `json:"last_submit_ns,omitempty"`
	LastID       int64 `json:"last_id,omitempty"`
}

// traceMeta reconstructs the full trace's metadata header.
func (m clusterMeta) traceMeta() trace.Meta {
	return trace.Meta{
		Name:     m.Workload,
		Machines: m.Machines,
		Start:    time.Unix(0, m.StartNS).UTC(),
		Length:   time.Duration(m.LengthMS) * time.Millisecond,
	}
}

// info is the public identity of the distributed trace.
func (m clusterMeta) info() TraceInfo {
	return TraceInfo{
		Name:        m.Name,
		Fingerprint: m.Fingerprint,
		Workload:    m.Workload,
		Machines:    m.Machines,
		LengthMS:    m.LengthMS,
		Jobs:        m.Jobs,
		BytesMoved:  m.BytesMoved,
		Cluster:     true,
		Shards:      m.Shards,
	}
}

// clusterEntry is one registered distributed trace. appendMu
// serializes appends coordinated by this node (the home node is the
// single writer, so holding it makes order checks race-free); mu
// guards the metadata snapshot, which is replaced wholesale and whose
// byte slices are never mutated in place.
type clusterEntry struct {
	appendMu sync.Mutex
	mu       sync.Mutex
	meta     clusterMeta
}

func (e *clusterEntry) snapshot() clusterMeta {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.meta
}

func (e *clusterEntry) update(m clusterMeta) {
	e.mu.Lock()
	e.meta = m
	e.mu.Unlock()
}

// clusterCoordinator owns the distributed-trace registry and the
// scatter/gather, routing, and cache protocol.
type clusterCoordinator struct {
	srv   *Server
	fleet *fleet.Fleet

	mu     sync.RWMutex
	traces map[string]*clusterEntry
}

func newClusterCoordinator(s *Server, f *fleet.Fleet) *clusterCoordinator {
	return &clusterCoordinator{srv: s, fleet: f, traces: make(map[string]*clusterEntry)}
}

// restore re-registers every distributed trace whose metadata the
// storage engine persisted — the crash-recovery half of the registry.
func (c *clusterCoordinator) restore() error {
	if c.srv.backing == nil {
		return nil
	}
	metas, err := c.srv.backing.LoadClusters()
	if err != nil {
		return err
	}
	for _, cm := range metas {
		var m clusterMeta
		if json.Unmarshal(cm.Doc, &m) != nil || m.Name != cm.Name || m.Shards < 1 {
			continue
		}
		c.traces[m.Name] = &clusterEntry{meta: m}
	}
	return nil
}

// get looks name up in the local registry.
func (c *clusterCoordinator) get(name string) (*clusterEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.traces[name]
	return e, ok
}

// adopt registers (or replaces — last writer wins, appends are
// serialized at the home node so later always means newer) a metadata
// document and persists it.
func (c *clusterCoordinator) adopt(m clusterMeta) *clusterEntry {
	c.mu.Lock()
	e, ok := c.traces[m.Name]
	if !ok {
		e = &clusterEntry{}
		c.traces[m.Name] = e
	}
	c.mu.Unlock()
	e.update(m)
	c.persist(m)
	return e
}

// remove forgets a distributed trace locally (registry + persisted
// document).
func (c *clusterCoordinator) remove(name string) {
	c.mu.Lock()
	delete(c.traces, name)
	c.mu.Unlock()
	if c.srv.backing != nil {
		if err := c.srv.backing.DeleteCluster(name); err != nil {
			c.srv.logger.Warn("cluster: dropping metadata failed", "trace", name, "error", err)
		}
	}
}

// persist writes the metadata document through the storage engine
// (best-effort without backing; a node that restarts without it
// refetches from its peers on demand).
func (c *clusterCoordinator) persist(m clusterMeta) {
	if c.srv.backing == nil {
		return
	}
	doc, err := json.Marshal(m)
	if err == nil {
		err = c.srv.backing.SaveCluster(m.Name, doc)
	}
	if err != nil {
		c.srv.logger.Warn("cluster: persisting metadata failed", "trace", m.Name, "error", err)
	}
}

// broadcast pushes the metadata document to every live peer so any
// node can answer for the trace without a lookup round-trip. Failures
// are tolerated: a peer that missed the push fetches lazily on first
// use (resolve), and a down peer is skipped rather than waited on.
func (c *clusterCoordinator) broadcast(ctx context.Context, m clusterMeta) {
	doc, err := json.Marshal(m)
	if err != nil {
		return
	}
	for _, p := range c.fleet.Members() {
		if c.fleet.IsSelf(p.ID) || !c.fleet.Alive(p.ID) {
			continue
		}
		c.fleet.AddMetaBroadcast()
		_, _ = c.fleet.Client(p.ID).Do(ctx, http.MethodPut,
			"/internal/v1/meta/"+url.PathEscape(m.Name), nil, "application/json", doc)
	}
}

// broadcastDelete tells every live peer to forget the trace.
func (c *clusterCoordinator) broadcastDelete(ctx context.Context, name string) {
	for _, p := range c.fleet.Members() {
		if c.fleet.IsSelf(p.ID) || !c.fleet.Alive(p.ID) {
			continue
		}
		_, _ = c.fleet.Client(p.ID).Do(ctx, http.MethodDelete,
			"/internal/v1/meta/"+url.PathEscape(name), nil, "", nil)
	}
}

// resolve finds the cluster entry for name: the local registry first,
// then — unless the name is local — a lazy fetch from the peers in
// placement-preference order, adopting what they return. A name this
// node stores locally is never treated as distributed (cluster traces
// are registered, not stored, under their public name).
func (c *clusterCoordinator) resolve(ctx context.Context, name string) (*clusterEntry, bool) {
	if e, ok := c.get(name); ok {
		return e, true
	}
	if name == "" || strings.HasPrefix(name, shardPrefix) {
		return nil, false
	}
	if _, err := c.srv.store.View(name); err == nil {
		return nil, false
	}
	for _, id := range c.fleet.SortByLiveness(c.fleet.Owners(name, c.fleet.Size())) {
		if c.fleet.IsSelf(id) || !c.fleet.Alive(id) {
			continue
		}
		resp, err := c.fleet.Client(id).Get(ctx, "/internal/v1/meta/"+url.PathEscape(name), nil)
		if err != nil || resp.Status != http.StatusOK {
			continue
		}
		var m clusterMeta
		if json.Unmarshal(resp.Body, &m) != nil || m.Name != name || m.Shards < 1 {
			continue
		}
		return c.adopt(m), true
	}
	return nil, false
}

// splitRuns partitions jobs into k contiguous runs with the same
// deterministic arithmetic trace.SplitJobs uses (the first n%k runs
// are one longer). The exact partition does not matter for report
// bytes — any contiguous ordered partition merges identically — but
// determinism keeps replica placement and re-ingests stable.
func splitRuns(jobs []*trace.Job, k int) [][]*trace.Job {
	out := make([][]*trace.Job, k)
	n := len(jobs)
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + n/k
		if i < n%k {
			hi++
		}
		out[i] = jobs[lo:hi]
		lo = hi
	}
	return out
}

// ingest is the distributed upload path: collect and normalize the
// stream exactly as a single-node ingest would, fingerprint it (keeping
// the hasher midstate for future appends), split it into
// min(defaultShards, jobs) shards each carrying the full trace's
// metadata — the merge contract — and place every shard on its ring
// owners. The upload succeeds when every shard landed on at least one
// owner; fewer than R replicas is reduced redundancy, not failure.
func (c *clusterCoordinator) ingest(ctx context.Context, name string, src trace.Source) (TraceInfo, error) {
	if name == "" {
		return TraceInfo{}, fmt.Errorf("server: empty trace name")
	}
	if strings.HasPrefix(name, shardPrefix) {
		return TraceInfo{}, badReq("trace name %q is reserved for cluster shard replicas", name)
	}
	// Without a durable backing the hot tier's job budget is a hard cap,
	// as on the local path; with one, local ingest spills instead of
	// rejecting, so shard placement is allowed to as well (the transient
	// buffered copy here is bounded by the request's byte cap).
	budget := c.srv.store.RemainingBudget(name)
	t := trace.New(src.Meta())
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return TraceInfo{}, err
		}
		if c.srv.backing == nil && t.Len() >= budget {
			return TraceInfo{}, fmt.Errorf("%w: upload exceeds the remaining %d-job budget", ErrStoreFull, budget)
		}
		t.Add(j)
	}
	if err := normalize(name, t); err != nil {
		return TraceInfo{}, err
	}

	fh := trace.NewHasher()
	if err := fh.Begin(t.Meta); err != nil {
		return TraceInfo{}, err
	}
	for _, j := range t.Jobs {
		if err := fh.Write(j); err != nil {
			return TraceInfo{}, err
		}
	}
	state, err := fh.MarshalBinary()
	if err != nil {
		return TraceInfo{}, err
	}

	shards := c.fleet.Shards()
	if shards > t.Len() {
		// Empty shards would be rejected by the owners' stores; the
		// merge treats fewer shards identically anyway.
		shards = t.Len()
	}
	runs := splitRuns(t.Jobs, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			if err := trace.WriteJSONL(&buf, &trace.Trace{Meta: t.Meta, Jobs: runs[i]}); err != nil {
				errs[i] = err
				return
			}
			errs[i] = c.placeShard(ctx, name, i, buf.Bytes())
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Best-effort takeback of the shards that did land; the
			// upload as a whole did not commit.
			c.dropShards(ctx, name, shards)
			return TraceInfo{}, fmt.Errorf("%w: %v", errUpstream, err)
		}
	}

	sum := t.Summarize()
	last := t.Jobs[t.Len()-1]
	m := clusterMeta{
		Name:         name,
		Workload:     t.Meta.Name,
		Machines:     t.Meta.Machines,
		StartNS:      t.Meta.Start.UnixNano(),
		LengthMS:     t.Meta.Length.Milliseconds(),
		Jobs:         t.Len(),
		BytesMoved:   int64(sum.BytesMoved),
		Fingerprint:  fh.Sum(),
		Shards:       shards,
		Replication:  c.fleet.Replication(),
		HasherState:  state,
		LastSubmitNS: last.SubmitTime.UnixNano(),
		LastID:       last.ID,
	}

	// A replacement may shrink the shard count or change the content:
	// drop the old version's extra shard replicas and its memoized
	// results before registering the new document.
	if old, ok := c.get(name); ok {
		om := old.snapshot()
		if om.Shards > shards {
			c.dropShardRange(ctx, name, shards, om.Shards)
		}
		if om.Fingerprint != m.Fingerprint {
			c.srv.cache.InvalidatePrefix(om.Fingerprint + "|")
		}
	}
	c.adopt(m)
	c.broadcast(ctx, m)
	return m.info(), nil
}

// placeShard stores one shard's JSONL body on each of its ring owners,
// self included. At least one replica must accept it.
func (c *clusterCoordinator) placeShard(ctx context.Context, name string, i int, body []byte) error {
	placed := 0
	var lastErr error
	for _, id := range c.fleet.Owners(shardKey(name, i), c.fleet.Replication()) {
		if c.fleet.IsSelf(id) {
			src, err := trace.NewJSONLReader(bytes.NewReader(body))
			if err == nil {
				_, err = c.srv.store.Ingest(shardTraceName(name, i), src)
			}
			if err != nil {
				lastErr = err
				continue
			}
			placed++
		} else {
			resp, err := c.fleet.Client(id).Do(ctx, http.MethodPost, shardPath(name, i), nil, "application/jsonl", body)
			if err != nil {
				lastErr = err
				continue
			}
			if resp.Status != http.StatusCreated {
				lastErr = fmt.Errorf("peer %s rejected shard %d: status %d: %s", id, i, resp.Status, resp.Body)
				continue
			}
			placed++
		}
	}
	if placed == 0 {
		return fmt.Errorf("no owner accepted shard %d of %q: %v", i, name, lastErr)
	}
	return nil
}

// dropShards best-effort deletes every replica of shards [0, n).
func (c *clusterCoordinator) dropShards(ctx context.Context, name string, n int) {
	c.dropShardRange(ctx, name, 0, n)
}

// dropShardRange best-effort deletes every replica of shards [lo, hi).
func (c *clusterCoordinator) dropShardRange(ctx context.Context, name string, lo, hi int) {
	for i := lo; i < hi; i++ {
		for _, id := range c.fleet.Owners(shardKey(name, i), c.fleet.Replication()) {
			if c.fleet.IsSelf(id) {
				c.srv.store.Delete(shardTraceName(name, i))
			} else if c.fleet.Alive(id) {
				_, _ = c.fleet.Client(id).Do(ctx, http.MethodDelete, shardPath(name, i), nil, "", nil)
			}
		}
	}
}

// delete removes a distributed trace everywhere: shard replicas on
// their owners, the metadata document on every member, and the
// fingerprint's memoized results locally.
func (c *clusterCoordinator) delete(ctx context.Context, e *clusterEntry) {
	m := e.snapshot()
	c.dropShards(ctx, m.Name, m.Shards)
	c.remove(m.Name)
	c.srv.cache.InvalidatePrefix(m.Fingerprint + "|")
	c.broadcastDelete(ctx, m.Name)
}

// degradedError carries a successfully rendered but incomplete report
// through the result cache's error path: Do never caches errors, so a
// degraded answer is served to the current waiters and recomputed next
// time — when the missing owners may be back.
type degradedError struct {
	body    []byte
	missing []int
	ev      *scanEvidence
}

func (e *degradedError) Error() string {
	return fmt.Sprintf("server: degraded report (missing shards %v)", e.missing)
}

// report answers GET /v1/traces/{name}/report for a distributed trace:
// warm cluster-cache peek, then scatter to one live owner per shard,
// merge the binary partial snapshots in shard order, and finalize —
// byte-identical to a single-node analysis when every shard answers.
func (c *clusterCoordinator) report(w http.ResponseWriter, r *http.Request, e *clusterEntry) {
	m := e.snapshot()
	full, err := queryBool(r, "full")
	if err != nil {
		writeErr(w, err)
		return
	}
	sketch, err := queryBool(r, "sketch")
	if err != nil {
		writeErr(w, err)
		return
	}
	top, err := queryInt(r, "top", 8)
	if err != nil {
		writeErr(w, err)
		return
	}
	shards, err := queryInt(r, "shards", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	if shards < 0 || shards > 1024 {
		writeErr(w, badReq("shards=%d out of range [0, 1024]", shards))
		return
	}
	if full {
		writeErr(w, fmt.Errorf("%w: full=1 needs random access to the whole trace; distributed traces are served by the streaming analyses", errUnprocessable))
		return
	}
	meta := m.traceMeta()
	from, to, windowed, err := reportWindowSpan(r, meta.Start, m.LengthMS)
	if err != nil {
		writeErr(w, err)
		return
	}
	key := fmt.Sprintf("%s|report|full=false|sketch=%t|top=%d", m.Fingerprint, sketch, top)
	if windowed {
		key += fmt.Sprintf("|win=%d-%d", from.Unix(), to.Unix())
	}
	w.Header().Set("X-Cluster-Shards", strconv.Itoa(m.Shards))

	var (
		remoteHit bool
		gatherEv  *scanEvidence
	)
	body, cached, err := c.srv.cache.Do(key, func() ([]byte, error) {
		// Any member may have answered this exact query already: the
		// key's ring owner is the cluster-wide rendezvous for its
		// memoized bytes, so ask it before scattering.
		if owner := c.fleet.Home(key); !c.fleet.IsSelf(owner) && c.fleet.Alive(owner) {
			resp, err := c.fleet.Client(owner).Get(r.Context(), "/internal/v1/cache", url.Values{"key": {key}})
			if err == nil && resp.Status == http.StatusOK {
				remoteHit = true
				c.fleet.AddRemoteCacheHit()
				return resp.Body, nil
			}
		}
		parts, ev := c.gather(r.Context(), m, sketch, from, to, windowed)
		gatherEv = ev
		endMerge := obs.FromContext(r.Context()).StartSpan("merge", spanDetail("parts", len(parts)))
		defer endMerge()
		var merged *core.Partial
		var missing []int
		for i, p := range parts {
			if p == nil {
				missing = append(missing, i)
				continue
			}
			if merged == nil {
				merged = p
				continue
			}
			if err := merged.Merge(p); err != nil {
				return nil, fmt.Errorf("%w: %v", errUnprocessable, err)
			}
		}
		if merged == nil {
			return nil, fmt.Errorf("%w: no shard owner reachable for %q", errUpstream, m.Name)
		}
		c.fleet.AddMerges(len(parts) - len(missing))
		rep, err := merged.Report(top)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errUnprocessable, err)
		}
		body, err := json.Marshal(rep.JSON())
		if err != nil {
			return nil, err
		}
		// Whole-trace reports can additionally detect stale replicas (a
		// copy that missed an append) by job count; a window legitimately
		// covers fewer jobs, so only missing shards degrade it.
		if len(missing) > 0 || (!windowed && merged.Jobs() != m.Jobs) {
			return nil, &degradedError{body: body, missing: missing, ev: ev}
		}
		// Publish to the rendezvous owner so any member serves the next
		// repeat warm.
		if owner := c.fleet.Home(key); !c.fleet.IsSelf(owner) && c.fleet.Alive(owner) {
			_, _ = c.fleet.Client(owner).Do(r.Context(), http.MethodPut, "/internal/v1/cache",
				url.Values{"key": {key}}, "application/json", body)
		}
		return body, nil
	})
	var deg *degradedError
	if errors.As(err, &deg) {
		c.fleet.AddDegraded()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "MISS")
		w.Header().Set("X-Analysis", "degraded")
		w.Header().Set("X-Cluster-Missing-Shards", intsCSV(deg.missing))
		deg.ev.addTo(w.Header())
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(deg.body)
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
		if remoteHit {
			w.Header().Set("X-Cluster-Cache", "HIT")
		} else {
			w.Header().Set("X-Analysis", "scatter")
			gatherEv.addTo(w.Header())
		}
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// gather fetches one binary partial snapshot per shard concurrently.
// parts[i] is nil when every replica of shard i failed; the summed
// scan evidence covers the shards that answered.
func (c *clusterCoordinator) gather(ctx context.Context, m clusterMeta, sketch bool, from, to time.Time, windowed bool) ([]*core.Partial, *scanEvidence) {
	c.fleet.AddScatter()
	endScatter := obs.FromContext(ctx).StartSpan("scatter", spanDetail("shards", m.Shards))
	scatterStart := time.Now()
	defer func() {
		endScatter()
		if c.srv.metrics != nil {
			c.srv.metrics.scatterLatency.Observe(time.Since(scatterStart).Seconds())
		}
	}()
	parts := make([]*core.Partial, m.Shards)
	evs := make([]*scanEvidence, m.Shards)
	var wg sync.WaitGroup
	for i := 0; i < m.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], evs[i] = c.shardPartial(ctx, m, i, sketch, from, to, windowed)
		}(i)
	}
	wg.Wait()
	var ev *scanEvidence
	for _, e := range evs {
		ev = ev.merge(e)
	}
	return parts, ev
}

// shardPartial resolves one shard's partial from its replica owners in
// liveness-preference order — self short-circuits to the local store;
// remote owners answer with the versioned binary snapshot. Both paths
// go through the snapshot encoding, so the merged partials are always
// private to this request (frozen store aggregates are never aliased
// into the merge receiver).
func (c *clusterCoordinator) shardPartial(ctx context.Context, m clusterMeta, i int, sketch bool, from, to time.Time, windowed bool) (*core.Partial, *scanEvidence) {
	q := url.Values{}
	if sketch {
		q.Set("sketch", "1")
	}
	if windowed {
		q.Set("from_ns", strconv.FormatInt(from.UnixNano(), 10))
		q.Set("to_ns", strconv.FormatInt(to.UnixNano(), 10))
	}
	rt := obs.FromContext(ctx)
	for _, id := range c.fleet.SortByLiveness(c.fleet.Owners(shardKey(m.Name, i), m.Replication)) {
		var snap []byte
		var ev *scanEvidence
		if c.fleet.IsSelf(id) {
			endSpan := rt.StartSpan("shard-fetch", spanDetail("shard", i, "peer", id, "local", true))
			var err error
			snap, ev, err = c.srv.localShardPartial(m.Name, i, sketch, from, to, windowed)
			endSpan()
			if err != nil {
				continue
			}
		} else {
			c.fleet.AddShardFetch()
			endSpan := rt.StartSpan("shard-fetch", spanDetail("shard", i, "peer", id))
			fetchStart := time.Now()
			resp, err := c.fleet.Client(id).Get(ctx, shardPath(m.Name, i)+"/partial", q)
			failed := err != nil || resp.Status != http.StatusOK
			if c.srv.metrics != nil {
				c.srv.metrics.recordShardFetch(id, time.Since(fetchStart), failed)
			}
			endSpan()
			if failed {
				continue
			}
			snap, ev = resp.Body, parseScanEvidence(resp.Header)
		}
		p, err := core.UnmarshalPartial(snap)
		if err != nil {
			continue
		}
		return p, ev
	}
	c.fleet.AddShardFailure()
	return nil, nil
}

// localShardPartial builds (or reuses) the partial for a locally
// stored shard replica and returns its binary snapshot — the exact
// bytes a remote owner would have sent.
func (s *Server) localShardPartial(name string, i int, sketch bool, from, to time.Time, windowed bool) ([]byte, *scanEvidence, error) {
	v, err := s.store.View(shardTraceName(name, i))
	if err != nil {
		return nil, nil, err
	}
	var p *core.Partial
	var ev *scanEvidence
	if windowed {
		p, _, ev, err = s.windowPartial(v, from, to, 0, sketch)
	} else {
		p, _, ev, err = s.tracePartial(v, 0, sketch)
	}
	if err != nil {
		return nil, nil, err
	}
	snap, err := p.MarshalBinary()
	return snap, ev, err
}

// append extends a distributed trace. Any node accepts the batch, but
// exactly one — the trace name's home node — serializes appends: it
// validates order against the committed tail, forwards the batch to
// the tail shard's owners, extends the restored fingerprint hasher,
// and republishes the metadata. Non-home nodes proxy to the home node
// (one hop; a forwarding loop guard catches placement disagreement).
func (c *clusterCoordinator) append(w http.ResponseWriter, r *http.Request, e *clusterEntry) {
	name := e.snapshot().Name
	home := c.fleet.Home(name)
	if !c.fleet.IsSelf(home) {
		if r.Header.Get(fleetForwardedHeader) != "" {
			writeErr(w, fmt.Errorf("%w: append forwarding loop for %q (placement disagreement with %s)", errUpstream, name, home))
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.srv.maxUpload))
		if err != nil {
			writeErr(w, badReq("reading append: %v", err))
			return
		}
		hdr := http.Header{
			"Content-Type":       {"application/jsonl"},
			fleetForwardedHeader: {c.fleet.Self()},
		}
		resp, err := c.fleet.Client(home).DoHeaders(r.Context(), http.MethodPost,
			"/v1/traces/"+url.PathEscape(name)+"/append", nil, hdr, body)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: home node %s: %v", errUpstream, home, err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Fleet-Proxied", home)
		w.WriteHeader(resp.Status)
		_, _ = w.Write(resp.Body)
		return
	}

	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	m := e.snapshot()
	src, err := trace.NewJSONLReader(http.MaxBytesReader(w, r.Body, c.srv.maxUpload))
	if err != nil {
		writeErr(w, badReq("decoding append: %v", err))
		return
	}
	batchMeta := src.Meta()
	batch, err := collectBatch(src)
	if err != nil {
		writeErr(w, badReq("%v", err))
		return
	}
	if err := checkBatchMeta(batchMeta, m.traceMeta()); err != nil {
		writeErr(w, err)
		return
	}
	tail := &trace.Job{SubmitTime: time.Unix(0, m.LastSubmitNS).UTC(), ID: m.LastID}
	if jobLess(batch[0], tail) {
		writeErr(w, errAppendOrder(batch[0], tail.SubmitTime, tail.ID))
		return
	}

	// The batch extends the trace's global tail, which lives in the last
	// shard. Forward it there under the full trace's header (it matches
	// the shard's committed metadata exactly); each owner's own append
	// session replays, validates, and commits the shard replica.
	tailShard := m.Shards - 1
	var fwd bytes.Buffer
	if err := trace.WriteJSONL(&fwd, &trace.Trace{Meta: m.traceMeta(), Jobs: batch}); err != nil {
		writeErr(w, err)
		return
	}
	placed := 0
	var lastErr error
	for _, id := range c.fleet.Owners(shardKey(name, tailShard), m.Replication) {
		if c.fleet.IsSelf(id) {
			src, err := trace.NewJSONLReader(bytes.NewReader(fwd.Bytes()))
			if err == nil {
				_, _, _, err = c.srv.store.Append(shardTraceName(name, tailShard), src)
			}
			if err != nil {
				if errors.Is(err, ErrAppendConflict) || errors.Is(err, ErrStoreFull) {
					// Deterministic rejection: every healthy replica would
					// answer the same, so it is the append's answer.
					writeErr(w, err)
					return
				}
				lastErr = err
				continue
			}
			placed++
		} else {
			resp, err := c.fleet.Client(id).Do(r.Context(), http.MethodPost,
				shardPath(name, tailShard)+"/append", nil, "application/jsonl", fwd.Bytes())
			if err != nil {
				lastErr = err
				// The replica missed this batch; take its copy down (best
				// effort) so reads fall to a complete replica instead of a
				// silently shortened one.
				c.dropShardReplica(r.Context(), id, name, tailShard)
				continue
			}
			if resp.Status == http.StatusOK {
				placed++
				continue
			}
			if resp.Status >= 400 && resp.Status < 500 || resp.Status == http.StatusInsufficientStorage {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(resp.Status)
				_, _ = w.Write(resp.Body)
				return
			}
			lastErr = fmt.Errorf("peer %s: status %d: %s", id, resp.Status, resp.Body)
			c.dropShardReplica(r.Context(), id, name, tailShard)
		}
	}
	if placed == 0 {
		writeErr(w, fmt.Errorf("%w: no owner of shard %d accepted the append for %q: %v", errUpstream, tailShard, name, lastErr))
		return
	}

	fh, err := trace.UnmarshalHasher(m.HasherState)
	if err != nil {
		writeErr(w, fmt.Errorf("server: restoring fingerprint state for %q: %v", name, err))
		return
	}
	var bytesDelta int64
	for _, j := range batch {
		if err := fh.Write(j); err != nil {
			writeErr(w, err)
			return
		}
		bytesDelta += int64(j.TotalBytes())
	}
	state, err := fh.MarshalBinary()
	if err != nil {
		writeErr(w, err)
		return
	}
	prevFP := m.Fingerprint
	last := batch[len(batch)-1]
	m.Fingerprint = fh.Sum()
	m.HasherState = state
	m.Jobs += len(batch)
	m.BytesMoved += bytesDelta
	m.LastSubmitNS = last.SubmitTime.UnixNano()
	m.LastID = last.ID
	e.update(m)
	c.persist(m)
	c.broadcast(r.Context(), m)
	if prevFP != m.Fingerprint {
		c.srv.cache.InvalidatePrefix(prevFP + "|")
	}
	writeJSON(w, http.StatusOK, AppendResponse{TraceInfo: m.info(), Appended: len(batch)})
}

// dropShardReplica best-effort deletes one replica's copy of a shard
// (used when the replica missed an append and its copy went stale).
func (c *clusterCoordinator) dropShardReplica(ctx context.Context, id, name string, i int) {
	if c.fleet.IsSelf(id) {
		c.srv.store.Delete(shardTraceName(name, i))
		return
	}
	_, _ = c.fleet.Client(id).Do(ctx, http.MethodDelete, shardPath(name, i), nil, "", nil)
}

// mergeList folds the distributed traces into a local listing, hiding
// shard replicas. A name registered as distributed shadows any local
// trace of the same name, matching the read paths' precedence.
func (c *clusterCoordinator) mergeList(local []TraceInfo) []TraceInfo {
	c.mu.RLock()
	infos := make(map[string]TraceInfo, len(c.traces))
	for name, e := range c.traces {
		infos[name] = e.snapshot().info()
	}
	c.mu.RUnlock()
	out := make([]TraceInfo, 0, len(local)+len(infos))
	for _, info := range local {
		if strings.HasPrefix(info.Name, shardPrefix) {
			continue
		}
		if _, shadowed := infos[info.Name]; shadowed {
			continue
		}
		out = append(out, info)
	}
	for _, info := range infos {
		out = append(out, info)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// stats assembles the cluster section of /v1/stats.
func (c *clusterCoordinator) stats() *ClusterStats {
	st := &ClusterStats{Stats: c.fleet.Stats()}
	c.mu.RLock()
	st.Traces = len(c.traces)
	c.mu.RUnlock()
	for _, info := range c.srv.store.List() {
		if strings.HasPrefix(info.Name, shardPrefix) {
			st.LocalShards++
		}
	}
	return st
}

// rejectClusterTrace fails requests that need the whole trace resident
// on one node (synthesis, replay) when the name is distributed.
func (s *Server) rejectClusterTrace(r *http.Request) error {
	if s.cluster == nil {
		return nil
	}
	name := r.PathValue("name")
	if _, ok := s.cluster.resolve(r.Context(), name); ok {
		return fmt.Errorf("%w: %q is a distributed trace; synthesis and replay need the whole trace on one node", errUnprocessable, name)
	}
	return nil
}

// intsCSV renders shard indices for the X-Cluster-Missing-Shards
// header.
func intsCSV(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// --- peer protocol handlers (registered only in cluster mode) ---

// shardPathValues parses the {name}/{shard} route values.
func shardPathValues(r *http.Request) (string, int, error) {
	name := r.PathValue("name")
	i, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || i < 0 || name == "" {
		return "", 0, badReq("bad shard reference %q/%q", name, r.PathValue("shard"))
	}
	return name, i, nil
}

// handleShardIngest stores one shard replica (POST, JSONL body).
func (s *Server) handleShardIngest(w http.ResponseWriter, r *http.Request) {
	name, i, err := shardPathValues(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	src, err := trace.NewJSONLReader(http.MaxBytesReader(w, r.Body, s.maxUpload))
	if err != nil {
		writeErr(w, badReq("decoding shard: %v", err))
		return
	}
	info, err := s.store.Ingest(shardTraceName(name, i), src)
	if err != nil {
		if !errors.Is(err, ErrStoreFull) {
			err = badReq("%v", err)
		}
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// handleShardAppend extends one shard replica (POST, JSONL body).
func (s *Server) handleShardAppend(w http.ResponseWriter, r *http.Request) {
	name, i, err := shardPathValues(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	src, err := trace.NewJSONLReader(http.MaxBytesReader(w, r.Body, s.maxUpload))
	if err != nil {
		writeErr(w, badReq("decoding shard append: %v", err))
		return
	}
	info, appended, _, err := s.store.Append(shardTraceName(name, i), src)
	if err != nil {
		switch {
		case errors.Is(err, ErrStoreFull), errors.Is(err, ErrAppendConflict), errors.Is(err, errBadRequest):
		default:
			err = badReq("%v", err)
		}
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{TraceInfo: info, Appended: appended})
}

// handleShardPartial answers one shard's partial aggregate as the
// versioned binary snapshot — the node-to-node wire format. from_ns /
// to_ns (unix nanoseconds) select a submit-time window; the X-Scan-*
// headers carry the shard-local pruning evidence for the coordinator
// to aggregate.
func (s *Server) handleShardPartial(w http.ResponseWriter, r *http.Request) {
	name, i, err := shardPathValues(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	sketch, err := queryBool(r, "sketch")
	if err != nil {
		writeErr(w, err)
		return
	}
	fromNS, err := queryInt64(r, "from_ns", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	toNS, err := queryInt64(r, "to_ns", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	windowed := fromNS != 0 || toNS != 0
	from, to := time.Unix(0, fromNS).UTC(), time.Unix(0, toNS).UTC()
	snap, ev, err := s.localShardPartial(name, i, sketch, from, to, windowed)
	if err != nil {
		if !errors.Is(err, ErrNotFound) && !errors.Is(err, errUnprocessable) {
			err = fmt.Errorf("%w: %v", errUnprocessable, err)
		}
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-swim-partial")
	ev.addTo(w.Header())
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap)
}

// handleShardDelete removes one shard replica. Absent is fine: deletes
// are idempotent cleanup.
func (s *Server) handleShardDelete(w http.ResponseWriter, r *http.Request) {
	name, i, err := shardPathValues(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.store.Delete(shardTraceName(name, i))
	w.WriteHeader(http.StatusNoContent)
}

// handleMetaPut adopts a broadcast metadata document.
func (s *Server) handleMetaPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, badReq("reading metadata: %v", err))
		return
	}
	var m clusterMeta
	if err := json.Unmarshal(body, &m); err != nil || m.Name != name || m.Shards < 1 {
		writeErr(w, badReq("bad cluster metadata for %q", name))
		return
	}
	s.cluster.adopt(m)
	w.WriteHeader(http.StatusNoContent)
}

// handleMetaGet serves this node's metadata document for a trace (the
// lazy-resolve path for peers that missed the broadcast).
func (s *Server) handleMetaGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.cluster.get(name)
	if !ok {
		writeErr(w, fmt.Errorf("%w: %q", ErrNotFound, name))
		return
	}
	writeJSON(w, http.StatusOK, e.snapshot())
}

// handleMetaDelete forgets a trace's metadata (the delete broadcast).
func (s *Server) handleMetaDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if e, ok := s.cluster.get(name); ok {
		s.cluster.remove(name)
		s.cache.InvalidatePrefix(e.snapshot().Fingerprint + "|")
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleCachePeek answers a peer's warm-hit probe from the local
// result cache (?key=...). 404 on a miss — the peer then computes.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErr(w, badReq("missing key"))
		return
	}
	body, ok := s.cache.Peek(key)
	if !ok {
		writeErr(w, fmt.Errorf("%w: cache key", ErrNotFound))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleCachePut adopts a result a peer computed (?key=..., body =
// rendered bytes). Keys embed content fingerprints, so adopted entries
// are as trustworthy as local ones.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErr(w, badReq("missing key"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxUpload))
	if err != nil {
		writeErr(w, badReq("reading cache value: %v", err))
		return
	}
	s.cache.Put(key, body)
	w.WriteHeader(http.StatusNoContent)
}
