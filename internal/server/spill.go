package server

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/trace"
)

// The spill-ingest path: an upload that exceeds the hot tier's
// remaining job budget streams straight to disk segments instead of
// being rejected. The jobs never materialize in memory — validation,
// span tracking, fingerprinting, and the partial aggregate all run
// inline on the stream — so the only per-job heap is the aggregate's
// ~24 B. The resulting entry is disk-resident: reports finalize the
// inline-built partial or scan the segments out-of-core.
//
// Equivalence with the in-memory path is the invariant: the committed
// fingerprint, metadata, and aggregate must match what Put(normalize)
// would have produced for the same upload. Normalize sorts by
// (submit time, ID); a stream already in that order is untouched by the
// stable sort, so streaming it to disk verbatim is the normalized
// trace. An out-of-order stream small enough to sort is read back,
// sorted, and stored through the regular path; out-of-order *and* too
// big for memory is the one shape the engine rejects (no external
// sort).

// jobLess is normalize's sort order.
func jobLess(a, b *trace.Job) bool {
	if !a.SubmitTime.Equal(b.SubmitTime) {
		return a.SubmitTime.Before(b.SubmitTime)
	}
	return a.ID < b.ID
}

// spillIngest continues an Ingest whose buffered prefix (buffered, in
// arrival order) plus next job (pending) overflowed the hot budget:
// everything goes to a disk stager, the rest of src is drained behind
// it, and the trace commits as a disk-resident entry.
func (s *Store) spillIngest(name string, buffered *trace.Trace, pending *trace.Job, src trace.Source, p *core.Partial) (TraceInfo, error) {
	meta := buffered.Meta
	if meta.Name == "" {
		meta.Name = name // mirrors normalize
	}
	metaComplete := !meta.Start.IsZero() && meta.Length > 0

	stager, err := s.backing.NewStager(name)
	if err != nil {
		return TraceInfo{}, fmt.Errorf("server: spilling %q: %w", name, err)
	}
	var hasher *trace.Hasher
	if metaComplete {
		hasher = trace.NewHasher()
		if err := hasher.Begin(meta); err != nil {
			stager.Abort()
			return TraceInfo{}, err
		}
	}

	var (
		count      int
		bytesMoved int64
		sorted     = true
		prev       *trace.Job
		minSubmit  time.Time
		maxFinish  time.Time
	)
	write := func(j *trace.Job) error {
		if err := j.Validate(); err != nil {
			return err
		}
		if prev != nil && jobLess(j, prev) {
			sorted = false
			hasher = nil // the canonical encoding is of the sorted order
		}
		prev = j
		if minSubmit.IsZero() || j.SubmitTime.Before(minSubmit) {
			minSubmit = j.SubmitTime
		}
		if f := j.FinishTime(); f.After(maxFinish) {
			maxFinish = f
		}
		if err := stager.Write(j); err != nil {
			return err
		}
		if hasher != nil {
			if err := hasher.Write(j); err != nil {
				return err
			}
		}
		count++
		bytesMoved += int64(j.TotalBytes())
		return nil
	}

	// The buffered prefix was already folded into p by Ingest's loop;
	// re-observing it here would double-count those jobs in the served
	// (and persisted) aggregate. Only jobs read after the switch to the
	// spill path are observed below.
	for _, j := range buffered.Jobs {
		if err := write(j); err != nil {
			stager.Abort()
			return TraceInfo{}, err
		}
	}
	if err := write(pending); err != nil {
		stager.Abort()
		return TraceInfo{}, err
	}
	if p != nil {
		p.Observe(pending)
	}
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			stager.Abort()
			return TraceInfo{}, err
		}
		if err := write(j); err != nil {
			stager.Abort()
			return TraceInfo{}, err
		}
		if p != nil {
			p.Observe(j)
		}
	}

	// Finalize metadata exactly as normalize would.
	if meta.Start.IsZero() {
		meta.Start = minSubmit
	}
	if meta.Length <= 0 {
		meta.Length = maxFinish.Sub(meta.Start)
	}

	if !sorted {
		return s.sortSpilled(name, stager, meta)
	}

	if hasher == nil || (p == nil && !s.noPartials) {
		// The upload header was incomplete, so the canonical header (and
		// the aggregate's binning origin) only became known at EOF: one
		// sequential readback pass over the just-written segments derives
		// the fingerprint and the partial in constant memory.
		hasher, p, err = s.rescanSpilled(stager, meta)
		if err != nil {
			stager.Abort()
			return TraceInfo{}, fmt.Errorf("server: finalizing spilled %q: %w", name, err)
		}
	}

	info := TraceInfo{
		Name:        name,
		Fingerprint: hasher.Sum(),
		Workload:    meta.Name,
		Machines:    meta.Machines,
		LengthMS:    meta.Length.Milliseconds(),
		Jobs:        count,
		BytesMoved:  bytesMoved,
	}
	sealed, err := stager.Seal(meta, info.Fingerprint, count, bytesMoved, p)
	if err != nil {
		stager.Abort()
		return TraceInfo{}, fmt.Errorf("server: sealing spilled %q: %w", name, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitLocked(name, 0); err != nil {
		s.rejected++
		sealed.Abort()
		return TraceInfo{}, err
	}
	stored, err := sealed.Commit()
	if err != nil {
		sealed.Abort()
		return TraceInfo{}, fmt.Errorf("server: committing spilled %q: %w", name, err)
	}
	s.installLocked(name, &entry{info: info, partial: p, stored: stored})
	s.invalidateAppendLocked(name)
	s.ingests++
	s.spills++
	return info, nil
}

// rescanSpilled reads the staged segments back once, in order, to
// compute the canonical fingerprint and (unless disabled) the partial
// aggregate under the finalized metadata.
func (s *Store) rescanSpilled(stager *storage.Stager, meta trace.Meta) (*trace.Hasher, *core.Partial, error) {
	shards, err := stager.Shards(meta)
	if err != nil {
		return nil, nil, err
	}
	hasher := trace.NewHasher()
	if err := hasher.Begin(meta); err != nil {
		return nil, nil, err
	}
	var p *core.Partial
	if !s.noPartials {
		p, _ = core.NewPartial(meta, false) // best-effort, like put
	}
	for _, sh := range shards {
		for {
			j, err := sh.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, nil, err
			}
			if err := hasher.Write(j); err != nil {
				return nil, nil, err
			}
			if p != nil {
				p.Observe(j)
			}
		}
	}
	return hasher, p, nil
}

// sortSpilled handles the out-of-order spill: if the whole upload fits
// the hot budget after all (the budget was eaten by other residents,
// not by this trace's size), read it back, sort it, and store it
// through the regular write-through path — evicting colder residents is
// better than refusing data. Bigger than the budget, it is rejected:
// sorting needs random access the out-of-core path does not have.
func (s *Store) sortSpilled(name string, stager *storage.Stager, meta trace.Meta) (TraceInfo, error) {
	defer stager.Abort()
	shards, err := stager.Shards(meta)
	if err != nil {
		return TraceInfo{}, err
	}
	collected := trace.New(meta)
	for _, sh := range shards {
		for {
			j, err := sh.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return TraceInfo{}, err
			}
			if collected.Len() >= s.maxTotalJobs {
				return TraceInfo{}, errUnsortedSpill
			}
			collected.Add(j)
		}
	}
	return s.put(name, collected, nil)
}
