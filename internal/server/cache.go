package server

import (
	"container/list"
	"errors"
	"sync"
)

// ResultCache memoizes rendered responses under single-flight
// discipline: for any key, at most one computation runs at a time, and
// concurrent requests for the same key wait for that one result instead
// of recomputing. Keys embed the trace's content fingerprint, so a
// re-ingested trace can never be served a stale result — the old entries
// simply stop being referenced and age out of the LRU.
//
// Values are the final marshaled bytes, not intermediate objects: a hit
// costs a map lookup and a write, which is what makes a cached report
// request orders of magnitude faster than the cold analysis
// (BenchmarkServeReport measures the ratio).
//
// Failed computations are never cached — the entry is removed so a later
// request retries — but concurrent waiters of the failing flight do
// receive its error, once each.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used

	hits      uint64
	misses    uint64
	coalesced uint64
	evictions uint64
}

type cacheEntry struct {
	key   string
	ready chan struct{} // closed once val/err are final
	val   []byte
	err   error
	elem  *list.Element
}

// DefaultCacheEntries bounds the cache when the configuration leaves it
// zero.
const DefaultCacheEntries = 256

// NewResultCache creates a cache holding at most capacity ready entries
// (zero: DefaultCacheEntries).
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &ResultCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
	}
}

// Do returns the value for key, computing it with compute if absent.
// The second return reports whether the value came from the cache (a
// ready entry or a coalesced in-flight computation) rather than from
// this caller's own compute run.
func (c *ResultCache) Do(key string, compute func() ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.ready:
			c.hits++
			c.lru.MoveToFront(e.elem)
			val, err := e.val, e.err
			c.mu.Unlock()
			return val, true, err
		default:
			// Another request is computing this key right now: wait for
			// its result instead of duplicating the work.
			c.coalesced++
			c.mu.Unlock()
			<-e.ready
			return e.val, true, e.err
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	// Finalize in a defer so a panicking compute (which the HTTP
	// middleware converts to a 500) still closes the entry: waiters get
	// an error instead of blocking forever, and the key stays retryable.
	var val []byte
	err := errors.New("server: result computation panicked")
	defer func() {
		c.mu.Lock()
		e.val, e.err = val, err
		close(e.ready)
		if err != nil {
			c.removeLocked(e)
		} else {
			c.evictLocked()
		}
		c.mu.Unlock()
	}()
	val, err = compute()
	return val, false, err
}

// removeLocked drops e if it is still the entry registered for its key
// (a concurrent Invalidate+recompute may have replaced it).
func (c *ResultCache) removeLocked(e *cacheEntry) {
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
		c.lru.Remove(e.elem)
	}
}

// evictLocked trims the LRU tail down to capacity, skipping in-flight
// entries (their computation is owed to waiters).
func (c *ResultCache) evictLocked() {
	for elem := c.lru.Back(); elem != nil && c.lru.Len() > c.cap; {
		prev := elem.Prev()
		e := elem.Value.(*cacheEntry)
		select {
		case <-e.ready:
			delete(c.entries, e.key)
			c.lru.Remove(elem)
			c.evictions++
		default:
			// still computing; leave it
		}
		elem = prev
	}
}

// Purge drops every ready entry (in-flight computations are left to
// finish for their waiters). Counters are preserved.
func (c *ResultCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		select {
		case <-e.ready:
			delete(c.entries, key)
			c.lru.Remove(e.elem)
		default:
		}
	}
}

// CacheStats is the cache's occupancy and lifetime counters. Hits count
// ready-entry lookups; Coalesced counts requests that waited on another
// request's in-flight computation (both are "cache hits" from the
// client's perspective); Misses counts actual computations started.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
	}
}
