package server

import (
	"container/list"
	"errors"
	"strings"
	"sync"
)

// ResultCache memoizes rendered responses under single-flight
// discipline: for any key, at most one computation runs at a time, and
// concurrent requests for the same key wait for that one result instead
// of recomputing. Keys embed the trace's content fingerprint, so a
// re-ingested trace can never be served a stale result — the old entries
// simply stop being referenced and age out of the LRU.
//
// Values are the final marshaled bytes, not intermediate objects: a hit
// costs a map lookup and a write, which is what makes a cached report
// request orders of magnitude faster than the cold analysis
// (BenchmarkServeReport measures the ratio).
//
// Failed computations are never cached — the entry is removed so a later
// request retries — but concurrent waiters of the failing flight do
// receive its error, once each.
// In addition to the final-bytes tier, the cache carries a
// partial-aggregate tier under the same fingerprint-prefixed key
// discipline: DoAggregate memoizes intermediate values (frozen
// core.Partial aggregates) that several final results derive from, so
// report variants that differ only in finalization (top=N) share one
// scan of the jobs. Both tiers are dropped together by
// InvalidatePrefix when the last trace with a fingerprint is deleted.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used

	aggCap  int
	aggs    map[string]*aggEntry
	aggLRU  *list.List
	aggHits uint64
	aggMiss uint64

	hits      uint64
	misses    uint64
	coalesced uint64
	evictions uint64
}

// aggEntry is one partial-aggregate tier slot, same single-flight
// discipline as cacheEntry but holding an arbitrary value.
type aggEntry struct {
	key   string
	ready chan struct{}
	val   any
	err   error
	elem  *list.Element
}

type cacheEntry struct {
	key   string
	ready chan struct{} // closed once val/err are final
	val   []byte
	err   error
	elem  *list.Element
}

// DefaultCacheEntries bounds the cache when the configuration leaves it
// zero.
const DefaultCacheEntries = 256

// DefaultAggregateEntries bounds the partial-aggregate tier. Aggregates
// are few (one or two per stored trace fingerprint) but heavy — an
// exact-mode partial holds 24 B per job — so the tier is kept much
// smaller than the bytes tier.
const DefaultAggregateEntries = 32

// NewResultCache creates a cache holding at most capacity ready entries
// (zero: DefaultCacheEntries); the partial-aggregate tier holds
// capacity/8 entries, at least DefaultAggregateEntries.
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	aggCap := capacity / 8
	if aggCap < DefaultAggregateEntries {
		aggCap = DefaultAggregateEntries
	}
	return &ResultCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
		aggCap:  aggCap,
		aggs:    make(map[string]*aggEntry),
		aggLRU:  list.New(),
	}
}

// Do returns the value for key, computing it with compute if absent.
// The second return reports whether the value came from the cache (a
// ready entry or a coalesced in-flight computation) rather than from
// this caller's own compute run.
func (c *ResultCache) Do(key string, compute func() ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.ready:
			c.hits++
			c.lru.MoveToFront(e.elem)
			val, err := e.val, e.err
			c.mu.Unlock()
			return val, true, err
		default:
			// Another request is computing this key right now: wait for
			// its result instead of duplicating the work.
			c.coalesced++
			c.mu.Unlock()
			<-e.ready
			return e.val, true, e.err
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	// Finalize in a defer so a panicking compute (which the HTTP
	// middleware converts to a 500) still closes the entry: waiters get
	// an error instead of blocking forever, and the key stays retryable.
	var val []byte
	err := errors.New("server: result computation panicked")
	defer func() {
		c.mu.Lock()
		e.val, e.err = val, err
		close(e.ready)
		if err != nil {
			c.removeLocked(e)
		} else {
			c.evictLocked()
		}
		c.mu.Unlock()
	}()
	val, err = compute()
	return val, false, err
}

// DoAggregate is Do for the partial-aggregate tier: it returns the
// value for key, computing it with compute if absent, under the same
// single-flight discipline — concurrent requests for one key run one
// computation. The second return reports whether the value came from
// the tier. Values must be treated as frozen shared state by every
// caller (core.Partial finalization is read-only by contract).
func (c *ResultCache) DoAggregate(key string, compute func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if e, ok := c.aggs[key]; ok {
		select {
		case <-e.ready:
			c.aggHits++
			c.aggLRU.MoveToFront(e.elem)
			val, err := e.val, e.err
			c.mu.Unlock()
			return val, true, err
		default:
			c.aggHits++
			c.mu.Unlock()
			<-e.ready
			return e.val, true, e.err
		}
	}
	e := &aggEntry{key: key, ready: make(chan struct{})}
	e.elem = c.aggLRU.PushFront(e)
	c.aggs[key] = e
	c.aggMiss++
	c.mu.Unlock()

	var val any
	err := errors.New("server: aggregate computation panicked")
	defer func() {
		c.mu.Lock()
		e.val, e.err = val, err
		close(e.ready)
		if err != nil {
			if cur, ok := c.aggs[key]; ok && cur == e {
				delete(c.aggs, key)
				c.aggLRU.Remove(e.elem)
			}
		} else {
			for elem := c.aggLRU.Back(); elem != nil && c.aggLRU.Len() > c.aggCap; {
				prev := elem.Prev()
				old := elem.Value.(*aggEntry)
				select {
				case <-old.ready:
					delete(c.aggs, old.key)
					c.aggLRU.Remove(elem)
				default:
				}
				elem = prev
			}
		}
		c.mu.Unlock()
	}()
	val, err = compute()
	return val, false, err
}

// Peek returns the ready bytes under key without computing on a miss.
// In-flight computations are not waited for — a peek is a cheap
// opportunistic read (the cluster cache protocol uses it to answer
// peers' warm-hit probes), so it only ever returns finished results.
func (c *ResultCache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	select {
	case <-e.ready:
		if e.err != nil {
			return nil, false
		}
		c.hits++
		c.lru.MoveToFront(e.elem)
		return e.val, true
	default:
		return nil, false
	}
}

// Put installs val under key as a ready entry. An existing entry —
// ready or in flight — wins: Put is how a node adopts a result another
// cluster member computed, and the local copy is never worse than the
// pushed one (keys embed the content fingerprint, so equal keys mean
// equal bytes).
func (c *ResultCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &cacheEntry{key: key, ready: make(chan struct{}), val: val}
	close(e.ready)
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.evictLocked()
}

// InvalidatePrefix drops every ready entry, in both tiers, whose key
// starts with prefix, and returns how many were dropped. Keys embed the
// trace content fingerprint as their first segment, so results can
// never be stale — invalidation is memory hygiene: when the last trace
// holding a fingerprint is deleted, its memoized bytes and partial
// aggregates are unreachable and should not wait for LRU pressure.
// In-flight computations are left to finish for their waiters.
func (c *ResultCache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, e := range c.entries {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		select {
		case <-e.ready:
			delete(c.entries, key)
			c.lru.Remove(e.elem)
			n++
		default:
		}
	}
	for key, e := range c.aggs {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		select {
		case <-e.ready:
			delete(c.aggs, key)
			c.aggLRU.Remove(e.elem)
			n++
		default:
		}
	}
	return n
}

// removeLocked drops e if it is still the entry registered for its key
// (a concurrent Invalidate+recompute may have replaced it).
func (c *ResultCache) removeLocked(e *cacheEntry) {
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
		c.lru.Remove(e.elem)
	}
}

// evictLocked trims the LRU tail down to capacity, skipping in-flight
// entries (their computation is owed to waiters).
func (c *ResultCache) evictLocked() {
	for elem := c.lru.Back(); elem != nil && c.lru.Len() > c.cap; {
		prev := elem.Prev()
		e := elem.Value.(*cacheEntry)
		select {
		case <-e.ready:
			delete(c.entries, e.key)
			c.lru.Remove(elem)
			c.evictions++
		default:
			// still computing; leave it
		}
		elem = prev
	}
}

// Purge drops every ready entry in both tiers (in-flight computations
// are left to finish for their waiters). Counters are preserved.
func (c *ResultCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		select {
		case <-e.ready:
			delete(c.entries, key)
			c.lru.Remove(e.elem)
		default:
		}
	}
	for key, e := range c.aggs {
		select {
		case <-e.ready:
			delete(c.aggs, key)
			c.aggLRU.Remove(e.elem)
		default:
		}
	}
}

// CacheStats is the cache's occupancy and lifetime counters. Hits count
// ready-entry lookups; Coalesced counts requests that waited on another
// request's in-flight computation (both are "cache hits" from the
// client's perspective); Misses counts actual computations started. The
// Aggregate* fields are the partial-aggregate tier's counters
// (coalesced waits count as hits there).
type CacheStats struct {
	Entries         int    `json:"entries"`
	Capacity        int    `json:"capacity"`
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Coalesced       uint64 `json:"coalesced"`
	Evictions       uint64 `json:"evictions"`
	Aggregates      int    `json:"aggregates"`
	AggregateHits   uint64 `json:"aggregate_hits"`
	AggregateMisses uint64 `json:"aggregate_misses"`
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:         len(c.entries),
		Capacity:        c.cap,
		Hits:            c.hits,
		Misses:          c.misses,
		Coalesced:       c.coalesced,
		Evictions:       c.evictions,
		Aggregates:      len(c.aggs),
		AggregateHits:   c.aggHits,
		AggregateMisses: c.aggMiss,
	}
}
