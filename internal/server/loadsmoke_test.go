package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestLoadSmoke64Clients is the serving-layer load smoke: 64 concurrent
// clients fire identical report requests (plus a sprinkling of other
// endpoints) at a live server. It asserts
//
//   - every response is 2xx,
//   - the cache-hit counter is positive,
//   - single-flight held: the 64 identical report requests triggered
//     exactly one analysis (1 miss; everyone else hit or coalesced).
//
// CI runs it under -race, which also makes it the end-to-end data-race
// check over store + cache + handlers under real HTTP concurrency.
func TestLoadSmoke64Clients(t *testing.T) {
	s, ts := newTestServer(t)
	ingestTrace(t, ts, "hot", genTrace(t, "CC-b", 1, 49*time.Hour))

	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Everyone asks for the same cold report...
			resp, err := http.Get(ts.URL + "/v1/traces/hot/report")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode/100 != 2 {
				errs <- fmt.Errorf("client %d: report -> %d", i, resp.StatusCode)
				return
			}
			// ...and a second request spread across the read-only API.
			extra := []string{"/healthz", "/v1/stats", "/v1/traces", "/v1/traces/hot"}[i%4]
			resp, err = http.Get(ts.URL + extra)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode/100 != 2 {
				errs <- fmt.Errorf("client %d: %s -> %d", i, extra, resp.StatusCode)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cs := s.Cache().Stats()
	if cs.Misses != 1 {
		t.Errorf("%d identical concurrent report requests ran %d analyses, want exactly 1 (single-flight)", clients, cs.Misses)
	}
	if cs.Hits+cs.Coalesced != clients-1 {
		t.Errorf("hits=%d coalesced=%d, want them to cover the other %d requests", cs.Hits, cs.Coalesced, clients-1)
	}
	if cs.Hits+cs.Coalesced == 0 {
		t.Error("cache-hit counter is zero after a 64-client burst")
	}
	ms := s.mw.stats()
	if ms.Status4xx != 0 || ms.Status5xx != 0 {
		t.Errorf("non-2xx during load smoke: %+v", ms)
	}
}

// TestLoadSmokeMixedWorkload drives ingest, report, synth, and replay
// concurrently against separate trace names — the "many small
// latency-sensitive queries over shared data" shape of the paper —
// asserting nothing errors under -race.
func TestLoadSmokeMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed load smoke is not -short")
	}
	_, ts := newTestServer(t)
	base := genTrace(t, "CC-a", 1, 25*time.Hour)
	ingestTrace(t, ts, "shared", base)

	// Pre-encode the writer lane's uploads: t.Fatal is not legal off the
	// test goroutine, so workers post raw bytes and report over errs.
	uploads := make(map[int][]byte)
	for g := 0; g < 16; g += 4 {
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, genTrace(t, "CC-a", int64(g+2), 25*time.Hour)); err != nil {
			t.Fatal(err)
		}
		uploads[g] = buf.Bytes()
	}

	paths := []string{
		"/v1/traces/shared/report",
		"/v1/traces/shared/report?sketch=1",
		"/v1/traces/shared/replay?scheduler=fair",
		"/v1/traces/shared/synth?length=12h",
		"/v1/stats",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if g%4 == 0 && i == 4 {
					// One writer lane re-ingests mid-stream.
					resp, err := http.Post(ts.URL+"/v1/traces/shared", "application/jsonl", bytes.NewReader(uploads[g]))
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusCreated {
						errs <- fmt.Errorf("re-ingest -> %d", resp.StatusCode)
						return
					}
					continue
				}
				p := paths[(g+i)%len(paths)]
				resp, err := http.Get(ts.URL + p)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode/100 != 2 {
					errs <- fmt.Errorf("%s -> %d", p, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
