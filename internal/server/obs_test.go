package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeMetrics fetches /metrics and parses it with the strict parser —
// unparseable output is a test failure, the exposition-format gate.
func scrapeMetrics(t testing.TB, base string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d %s", resp.StatusCode, clip(body))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type %q", ct)
	}
	exp, err := obs.ParsePrometheus(string(body))
	if err != nil {
		t.Fatalf("/metrics output does not parse: %v\n%s", err, clip(body))
	}
	return exp
}

// TestMetricsEndpoint drives real traffic through the server and
// asserts the scrape carries the required series with sane values.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	tr := genTrace(t, "CC-b", 1, 25*time.Hour)
	ingestTrace(t, ts, "obs-trace", tr)
	getJSON(t, ts.URL+"/v1/traces/obs-trace/report", nil)
	getJSON(t, ts.URL+"/v1/traces/obs-trace/report", nil) // cache hit

	exp := scrapeMetrics(t, ts.URL)

	if v, ok := exp.Value("swim_http_requests_total", "endpoint", "POST /v1/traces/{name}", "code", "201"); !ok || v != 1 {
		t.Errorf("ingest request series %v, %v", v, ok)
	}
	if v, ok := exp.Value("swim_http_requests_total", "endpoint", "GET /v1/traces/{name}/report", "code", "200"); !ok || v != 2 {
		t.Errorf("report request series %v, %v", v, ok)
	}
	if v, ok := exp.Value("swim_http_request_duration_seconds_count", "endpoint", "GET /v1/traces/{name}/report"); !ok || v != 2 {
		t.Errorf("report latency count %v, %v", v, ok)
	}
	if v, ok := exp.Value("swim_http_request_bytes_total", "endpoint", "POST /v1/traces/{name}"); !ok || v <= 0 {
		t.Errorf("ingest bytes series %v, %v", v, ok)
	}
	// The first report took the ingest-partial path; the repeat was a
	// byte-cache hit and records no analysis path.
	if v, ok := exp.Value("swim_analysis_requests_total", "path", "ingest-partial"); !ok || v != 1 {
		t.Errorf("analysis path series %v, %v (want ingest-partial=1)", v, ok)
	}
	if v, ok := exp.Value("swim_store_traces"); !ok || v != 1 {
		t.Errorf("swim_store_traces %v, %v", v, ok)
	}
	if v, ok := exp.Value("swim_storage_trace_segments", "trace", "obs-trace"); ok && v < 0 {
		t.Errorf("per-trace segments negative: %v", v)
	}
	if v, ok := exp.Value("swim_cache_events_total", "event", "hits"); !ok || v != 1 {
		t.Errorf("cache hits series %v, %v", v, ok)
	}
	if v, ok := exp.Value("swim_cache_hit_ratio", "tier", "results"); !ok || v <= 0 || v > 1 {
		t.Errorf("cache hit ratio %v, %v", v, ok)
	}
	if v, ok := exp.Value("swim_uptime_seconds"); !ok || v < 0 {
		t.Errorf("swim_uptime_seconds %v, %v", v, ok)
	}
	if v, ok := exp.Value("go_goroutines"); !ok || v < 1 {
		t.Errorf("go_goroutines %v, %v", v, ok)
	}
	if len(exp.Find("swim_build_info")) != 1 {
		t.Error("swim_build_info missing")
	}
	if exp.Types["swim_http_request_duration_seconds"] != "histogram" {
		t.Errorf("latency TYPE %q", exp.Types["swim_http_request_duration_seconds"])
	}
}

// TestDebugRequestsRing: /v1/debug/requests serves the recent requests
// newest-first with spans and scan evidence, and min_ms filters.
func TestDebugRequestsRing(t *testing.T) {
	_, ts := newTestServer(t)
	tr := genTrace(t, "CC-b", 1, 25*time.Hour)
	ingestTrace(t, ts, "ring-trace", tr)
	getJSON(t, ts.URL+"/v1/traces/ring-trace/report", nil)

	var dbg struct {
		Count    int                 `json:"count"`
		Requests []obs.RequestRecord `json:"requests"`
	}
	getJSON(t, ts.URL+"/v1/debug/requests", &dbg)
	if dbg.Count < 2 || len(dbg.Requests) != dbg.Count {
		t.Fatalf("ring count %d (%d records)", dbg.Count, len(dbg.Requests))
	}
	// Newest-first: the head is the debug request itself or the report.
	var report *obs.RequestRecord
	for i := range dbg.Requests {
		if dbg.Requests[i].Endpoint == "GET /v1/traces/{name}/report" {
			report = &dbg.Requests[i]
			break
		}
	}
	if report == nil {
		t.Fatalf("no report record in ring: %+v", dbg.Requests)
	}
	if report.ID == "" || report.Status != http.StatusOK || report.MS < 0 {
		t.Errorf("report record %+v", report)
	}
	if report.Analysis != "ingest-partial" {
		t.Errorf("report record analysis %q", report.Analysis)
	}
	spanNames := make(map[string]bool)
	for _, sp := range report.Spans {
		spanNames[sp.Name] = true
	}
	if !spanNames["scan"] || !spanNames["merge"] {
		t.Errorf("report spans missing scan/merge: %+v", report.Spans)
	}

	// min_ms high enough filters everything out.
	getJSON(t, ts.URL+"/v1/debug/requests?min_ms=3600000", &dbg)
	if dbg.Count != 0 {
		t.Errorf("min_ms filter left %d records", dbg.Count)
	}
	// limit caps the answer.
	getJSON(t, ts.URL+"/v1/debug/requests?limit=1", &dbg)
	if dbg.Count != 1 {
		t.Errorf("limit=1 returned %d records", dbg.Count)
	}
}

// TestStatsServerSections: /v1/stats carries the server identity,
// runtime snapshot, and per-endpoint/per-analysis summaries.
func TestStatsServerSections(t *testing.T) {
	_, ts := newTestServer(t)
	tr := genTrace(t, "CC-b", 1, 25*time.Hour)
	ingestTrace(t, ts, "stats-trace", tr)
	getJSON(t, ts.URL+"/v1/traces/stats-trace/report", nil)

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Server.GoVersion == "" || st.Server.Version == "" || st.Server.GOMAXPROCS < 1 {
		t.Errorf("server section %+v", st.Server)
	}
	if st.Server.StartedAt.IsZero() || st.Server.UptimeSeconds < 0 {
		t.Errorf("server uptime %+v", st.Server)
	}
	if st.Runtime.Goroutines < 1 || st.Runtime.HeapAllocBytes == 0 {
		t.Errorf("runtime section %+v", st.Runtime)
	}
	ep, ok := st.Endpoints["GET /v1/traces/{name}/report"]
	if !ok || ep.Requests != 1 || ep.ResponseBytes == 0 {
		t.Errorf("report endpoint summary %+v (ok=%v)", ep, ok)
	}
	if sum, ok := st.Analysis["ingest-partial"]; !ok || sum.Count != 1 {
		t.Errorf("analysis summary %+v (ok=%v)", st.Analysis, ok)
	}
	if len(st.Storage) != 1 || st.Storage[0].Name != "stats-trace" || st.Storage[0].Jobs != tr.Len() {
		t.Errorf("storage section %+v", st.Storage)
	}
}

// TestPprofGatedByConfig: the profile endpoints exist only when enabled.
func TestPprofGatedByConfig(t *testing.T) {
	_, off := newTestServer(t)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof: %d, want 404", resp.StatusCode)
	}

	_, on := newTestServerCfg(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: %d %s", resp.StatusCode, clip(body))
	}
}
