package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/synth"
	"repro/internal/trace"
)

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// writeErr maps an error to its HTTP status and writes the payload.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrAppendConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrStoreFull):
		status = http.StatusInsufficientStorage
	case errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, errUnprocessable), errors.Is(err, ErrTooLarge):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, errUpstream):
		status = http.StatusBadGateway
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// errBadRequest / errUnprocessable are sentinel wrappers for status
// mapping: bad input syntax vs a trace the requested computation cannot
// run on (e.g. too short for hourly binning).
var (
	errBadRequest    = errors.New("bad request")
	errUnprocessable = errors.New("unprocessable")
	// errUpstream marks a cluster operation that failed because peers
	// were unreachable, not because the request was wrong: 502.
	errUpstream = errors.New("cluster upstream failure")
)

func badReq(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

// queryBool parses a boolean query parameter strictly: anything outside
// {"", "0", "1", "true", "false", "yes", "no"} is a 400, not a silent
// false — a misspelled ?ful=1 or ?sketch=ture must not quietly serve
// the wrong report variant.
func queryBool(r *http.Request, key string) (bool, error) {
	switch v := r.URL.Query().Get(key); v {
	case "1", "true", "yes":
		return true, nil
	case "", "0", "false", "no":
		return false, nil
	default:
		return false, badReq("parameter %s=%q is not a boolean (use 0/1/true/false/yes/no)", key, v)
	}
}

// queryTime parses a timestamp query parameter: integer unix seconds or
// RFC3339. The zero time means absent.
func queryTime(r *http.Request, key string) (time.Time, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return time.Time{}, nil
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(sec, 0).UTC(), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, badReq("parameter %s=%q is neither unix seconds nor RFC3339", key, s)
	}
	return t, nil
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, key string, def int) (int, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, badReq("parameter %s=%q is not an integer", key, s)
	}
	return v, nil
}

// queryInt64 parses an int64 query parameter with a default.
func queryInt64(r *http.Request, key string, def int64) (int64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, badReq("parameter %s=%q is not an integer", key, s)
	}
	return v, nil
}

// queryFloat parses a float query parameter with a default.
func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, badReq("parameter %s=%q is not a number", key, s)
	}
	return v, nil
}

// queryDuration parses a duration query parameter with a default.
func queryDuration(r *http.Request, key string, def time.Duration) (time.Duration, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return 0, badReq("parameter %s=%q is not a duration", key, s)
	}
	return v, nil
}

// handleHealthz reports liveness. A cluster node that currently marks
// any peer unreachable answers "degraded" (still 200 — the node itself
// is up and serving, possibly with replica fallback) and names the
// down peers.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.cluster != nil {
		if down := s.cluster.fleet.Down(); len(down) > 0 {
			writeJSON(w, http.StatusOK, map[string]any{"status": "degraded", "down": down})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ClusterStats is the cluster section of /v1/stats: the fleet's peer
// liveness, transport latency, and protocol counters, plus how many
// distributed traces this node knows and how many shard replicas it
// stores locally.
type ClusterStats struct {
	fleet.Stats
	Traces      int `json:"traces"`
	LocalShards int `json:"local_shards"`
}

// StatsResponse is the GET /v1/stats payload: the server's identity
// and runtime alongside the store/cache/request counters, per-endpoint
// and per-analysis-path request series, and the per-trace storage
// shape. The same instruments back GET /metrics.
type StatsResponse struct {
	Server    ServerInfo                      `json:"server"`
	Runtime   obs.RuntimeStats                `json:"runtime"`
	Store     StoreStats                      `json:"store"`
	Cache     CacheStats                      `json:"cache"`
	Requests  RequestStats                    `json:"requests"`
	Endpoints map[string]EndpointStats        `json:"endpoints,omitempty"`
	Analysis  map[string]obs.HistogramSummary `json:"analysis,omitempty"`
	Storage   []TraceStorage                  `json:"storage,omitempty"`
	Cluster   *ClusterStats                   `json:"cluster,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Server:    s.metrics.serverInfo(),
		Runtime:   obs.ReadRuntimeStats(),
		Store:     s.store.Stats(),
		Cache:     s.cache.Stats(),
		Requests:  s.mw.stats(),
		Endpoints: s.metrics.endpointStats(),
		Analysis:  s.metrics.analysisStats(),
		Storage:   s.store.StorageGauges(),
	}
	if s.cluster != nil {
		resp.Cluster = s.cluster.stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleListTraces lists what this node serves publicly: its local
// traces plus every distributed trace it knows. Shard replicas (the
// ".fleet/" names) are placement internals and are hidden.
func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	list := s.store.List()
	if s.cluster != nil {
		list = s.cluster.mergeList(list)
	}
	writeJSON(w, http.StatusOK, map[string][]TraceInfo{"traces": list})
}

// handleIngest streams a JSONL trace upload into the store: jobs are
// decoded one line at a time straight off the request body, so the only
// full-size allocation is the stored trace itself, and oversized uploads
// are rejected mid-stream.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Cap the raw bytes too: the line reader is deliberately uncapped
	// per line, so without this a newline-free body would be buffered
	// whole before the job-count budget could apply.
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	src, err := trace.NewJSONLReader(body)
	if err != nil {
		writeErr(w, badReq("decoding upload: %v", err))
		return
	}
	var info TraceInfo
	endIngest := obs.FromContext(r.Context()).StartSpan("ingest", "trace="+name)
	if s.cluster != nil {
		// Cluster mode: split the upload into shards and fan them out to
		// their ring owners instead of storing it whole here.
		info, err = s.cluster.ingest(r.Context(), name, src)
	} else {
		info, err = s.store.Ingest(name, src)
	}
	endIngest()
	if err != nil {
		var tooLarge *http.MaxBytesError
		switch {
		case errors.As(err, &tooLarge):
			err = fmt.Errorf("%w: upload exceeds the %d-byte limit", ErrStoreFull, tooLarge.Limit)
		case errors.Is(err, ErrStoreFull), errors.Is(err, errUpstream), errors.Is(err, errBadRequest):
		default:
			err = badReq("%v", err)
		}
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// AppendResponse is the POST /v1/traces/{name}/append payload: the
// trace's new identity plus how many jobs this batch added.
type AppendResponse struct {
	TraceInfo
	Appended int `json:"appended"`
}

// handleAppend streams one JSONL batch into a live trace: the first
// batch (with complete metadata) creates the trace, later batches grow
// it, and after every batch the trace is fully committed — fingerprint,
// aggregate, durable segments — exactly as if the whole prefix had been
// uploaded at once. Batches must not precede the committed tail in
// (submit time, id) order; violations (and metadata contradictions, and
// losing a race with a re-upload or delete) are 409s.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.cluster != nil {
		if e, ok := s.cluster.resolve(r.Context(), name); ok {
			// A known distributed trace: route the batch through its home
			// node, which serializes appends and extends the cluster
			// fingerprint. Unknown names fall through to the local path —
			// distributed traces are created by POST, not by append.
			s.cluster.append(w, r, e)
			return
		}
	}
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	src, err := trace.NewJSONLReader(body)
	if err != nil {
		writeErr(w, badReq("decoding append: %v", err))
		return
	}
	info, appended, prevFP, err := s.store.Append(name, src)
	if err != nil {
		var tooLarge *http.MaxBytesError
		switch {
		case errors.As(err, &tooLarge):
			err = fmt.Errorf("%w: append exceeds the %d-byte limit", ErrStoreFull, tooLarge.Limit)
		case errors.Is(err, ErrStoreFull), errors.Is(err, ErrAppendConflict), errors.Is(err, errBadRequest):
		default:
			err = badReq("%v", err)
		}
		writeErr(w, err)
		return
	}
	// The batch retired the trace's previous fingerprint; drop its
	// memoized results unless another stored trace still has that
	// content (fingerprint-keyed entries are never stale, this is
	// reclaiming memory the old version can no longer earn back).
	if prevFP != "" && prevFP != info.Fingerprint && !s.store.HasFingerprint(prevFP) {
		s.cache.InvalidatePrefix(prevFP + "|")
	}
	writeJSON(w, http.StatusOK, AppendResponse{TraceInfo: info, Appended: appended})
}

func (s *Server) handleTraceInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.cluster != nil {
		if e, ok := s.cluster.resolve(r.Context(), name); ok {
			writeJSON(w, http.StatusOK, e.snapshot().info())
			return
		}
	}
	v, err := s.store.View(name)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v.Info)
}

// handleDelete removes a trace and, when no other stored trace shares
// its content fingerprint, drops the fingerprint's memoized results and
// partial aggregates from both cache tiers — fingerprint-keyed entries
// can never be stale, so this is reclaiming memory a deleted trace can
// no longer earn back, not a correctness step.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.cluster != nil {
		if e, ok := s.cluster.resolve(r.Context(), name); ok {
			s.cluster.delete(r.Context(), e)
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
	info, ok := s.store.Delete(name)
	if !ok {
		writeErr(w, fmt.Errorf("%w: %q", ErrNotFound, name))
		return
	}
	if !s.store.HasFingerprint(info.Fingerprint) {
		s.cache.InvalidatePrefix(info.Fingerprint + "|")
	}
	w.WriteHeader(http.StatusNoContent)
}

// serveCached runs compute through the single-flight result cache and
// writes the bytes with an X-Cache marker.
func (s *Server) serveCached(w http.ResponseWriter, key string, compute func() ([]byte, error)) {
	body, cached, err := s.cache.Do(key, compute)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleReport serves the study's analytics for one stored trace:
// Table 1, Figure 1, Figures 7-9, and Figure 10 in the default
// streaming-section mode; every figure and table the trace permits
// (including the Table-2 clustering) with full=1. sketch=1 bounds
// Figure 1's memory with quantile sketches; top=N widens the Figure 10
// word list.
//
// The default mode computes nothing per job when it can avoid it: a
// cold report finalizes the trace's frozen partial aggregate — built at
// ingest ("ingest-partial") or decoded from the durable snapshot after
// a restart ("recovered-partial"). When none applies (partials
// disabled, sketch=1, or a trace the binner rejects) the jobs are
// scanned — a resident trace shard-parallel across shards=K shards
// (0 = one per CPU, 1 = sequential; "scan"), a disk-resident trace
// out-of-core with one shard per segment ("disk-scan") — and the scan's
// partial is parked in the cache's aggregate tier under the
// fingerprint, so report variants that differ only in finalization
// (top=N) share it ("cached-partial"). shards never appears in the
// result-cache key: by the merge contract the bytes are identical at
// any shard count. The X-Analysis response header reports which path a
// MISS took.
//
// full=1 needs random access (Table-2 clustering, path figures), so a
// disk-resident trace is reloaded into the hot tier first; a trace
// bigger than the whole tier cannot be, and such requests fail 422
// while the streaming modes keep working.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.cluster != nil {
		if e, ok := s.cluster.resolve(r.Context(), name); ok {
			s.cluster.report(w, r, e)
			return
		}
	}
	v, err := s.store.View(name)
	if err != nil {
		writeErr(w, err)
		return
	}
	full, err := queryBool(r, "full")
	if err != nil {
		writeErr(w, err)
		return
	}
	sketch, err := queryBool(r, "sketch")
	if err != nil {
		writeErr(w, err)
		return
	}
	top, err := queryInt(r, "top", 8)
	if err != nil {
		writeErr(w, err)
		return
	}
	shards, err := queryInt(r, "shards", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	if shards < 0 || shards > 1024 {
		writeErr(w, badReq("shards=%d out of range [0, 1024]", shards))
		return
	}
	from, to, windowed, err := reportWindow(r, v)
	if err != nil {
		writeErr(w, err)
		return
	}
	if windowed && full {
		writeErr(w, badReq("full=1 needs the whole trace and cannot combine with from/to/window"))
		return
	}
	key := fmt.Sprintf("%s|report|full=%t|sketch=%t|top=%d", v.Info.Fingerprint, full, sketch, top)
	if windowed {
		key += fmt.Sprintf("|win=%d-%d", from.Unix(), to.Unix())
	}
	rt := obs.FromContext(r.Context())
	s.serveCached(w, key, func() ([]byte, error) {
		opts := core.AnalyzeOptions{TopNames: top, SketchDataSizes: sketch, Shards: shards}
		var rep *core.Report
		var err error
		switch {
		case windowed:
			var p *core.Partial
			var analysis string
			var ev *scanEvidence
			endScan := rt.StartSpan("scan", "window")
			p, analysis, ev, err = s.windowPartial(v, from, to, shards, sketch)
			endScan()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", errUnprocessable, err)
			}
			w.Header().Set("X-Analysis", analysis)
			ev.addTo(w.Header())
			endMerge := rt.StartSpan("merge", "path="+analysis)
			rep, err = p.Report(top)
			endMerge()
		case full:
			t := v.Trace
			if t == nil {
				if t, _, err = s.store.Get(v.Info.Name); err != nil {
					return nil, err
				}
			}
			w.Header().Set("X-Analysis", "full")
			endScan := rt.StartSpan("scan", "full")
			rep, err = core.Analyze(t, opts)
			endScan()
		default:
			var p *core.Partial
			var analysis string
			var ev *scanEvidence
			endScan := rt.StartSpan("scan", "")
			p, analysis, ev, err = s.tracePartial(v, shards, sketch)
			endScan()
			if err != nil {
				return nil, err
			}
			w.Header().Set("X-Analysis", analysis)
			ev.addTo(w.Header())
			endMerge := rt.StartSpan("merge", "path="+analysis)
			rep, err = p.Report(top)
			endMerge()
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errUnprocessable, err)
		}
		return json.Marshal(rep.JSON())
	})
}

// tracePartial resolves the whole-trace partial aggregate for a view —
// the frozen ingest/recovered aggregate when one matches the requested
// mode, otherwise a scan memoized in the cache's aggregate tier — and
// names the path taken for the X-Analysis header. The returned partial
// is shared frozen state: callers must treat it as read-only. The
// scanEvidence is non-nil only when this call actually scanned disk.
func (s *Server) tracePartial(v View, shards int, sketch bool) (*core.Partial, string, *scanEvidence, error) {
	if v.Partial != nil && v.Partial.Sketch() == sketch {
		if v.Recovered {
			return v.Partial, "recovered-partial", nil, nil
		}
		return v.Partial, "ingest-partial", nil, nil
	}
	aggKey := fmt.Sprintf("%s|partial|sketch=%t", v.Info.Fingerprint, sketch)
	miss := "scan"
	var ev *scanEvidence
	av, cached, err := s.cache.DoAggregate(aggKey, func() (any, error) {
		if v.Trace != nil {
			return core.BuildTracePartial(v.Trace, shards, sketch)
		}
		// Disk-resident: scan the segments out-of-core without
		// materializing the trace — one IO goroutine frames colseg
		// blocks, shards=K decode workers (0 = one per CPU) turn them
		// into partials, merged in block order. The merge contract
		// makes the bytes identical at any worker count.
		miss = "disk-scan"
		p, stats, err := s.scanStored(v, storage.ParallelScanOptions{Workers: shards, Sketch: sketch})
		if err != nil {
			return nil, err
		}
		ev = &scanEvidence{
			segments:       stats.Segments,
			segmentsPruned: stats.SegmentsPruned,
			blocks:         stats.BlocksRead(),
			blocksPruned:   stats.BlocksPruned(),
			workers:        scanWorkers(shards),
		}
		return p, nil
	})
	if err != nil {
		return nil, "", nil, fmt.Errorf("%w: %v", errUnprocessable, err)
	}
	if cached {
		miss = "cached-partial"
	}
	return av.(*core.Partial), miss, ev, nil
}

// scanWorkers resolves the worker count a block-parallel scan actually
// ran with (shards=0 means one per CPU).
func scanWorkers(shards int) int {
	if shards <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return shards
}

// scanStored runs the block-parallel disk scan for a view, retrying
// once with a fresh view when a background compaction swept the old
// generation's segments out from under the scan (committed files are
// unlinked, never rewritten, so a scan that opened its descriptors
// early is safe — but one racing the sweep can hit a vanished path).
// The retry is sound because compaction preserves the fingerprint: a
// view with the same fingerprint scans to byte-identical results.
func (s *Server) scanStored(v View, opts storage.ParallelScanOptions) (*core.Partial, *storage.ScanStats, error) {
	p, stats, err := v.Stored.ParallelScanPartial(opts)
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		nv, verr := s.store.View(v.Info.Name)
		if verr == nil && nv.Stored != nil && nv.Info.Fingerprint == v.Info.Fingerprint {
			return nv.Stored.ParallelScanPartial(opts)
		}
	}
	return p, stats, err
}

// reportWindow resolves a report request's from/to/window parameters
// against the trace's own span. window=D means the trailing D of the
// trace ([end-D, end]) and is exclusive with explicit bounds; a lone
// from runs to the trace end, a lone to starts at the trace start.
// Returns windowed=false when no window parameter is present.
func reportWindow(r *http.Request, v View) (from, to time.Time, windowed bool, err error) {
	var start time.Time
	if v.Trace != nil {
		start = v.Trace.Meta.Start
	} else {
		start = v.Stored.Meta().Start
	}
	return reportWindowSpan(r, start, v.Info.LengthMS)
}

// reportWindowSpan is reportWindow against an explicit trace span —
// the form the cluster coordinator uses, where the trace exists only
// as shards and the span comes from the cluster metadata.
func reportWindowSpan(r *http.Request, start time.Time, lengthMS int64) (from, to time.Time, windowed bool, err error) {
	from, err = queryTime(r, "from")
	if err != nil {
		return
	}
	to, err = queryTime(r, "to")
	if err != nil {
		return
	}
	window, err := queryDuration(r, "window", 0)
	if err != nil {
		return
	}
	windowed = !from.IsZero() || !to.IsZero() || window != 0
	if !windowed {
		return
	}
	end := start.Add(time.Duration(lengthMS) * time.Millisecond)
	switch {
	case window < 0:
		err = badReq("window=%s is negative", window)
	case window > 0 && (!from.IsZero() || !to.IsZero()):
		err = badReq("window is the trailing span of the trace and cannot combine with from/to")
	case window > 0:
		to = end
		from = end.Add(-window)
	default:
		if from.IsZero() {
			from = start
		}
		if to.IsZero() {
			to = end
		}
	}
	if err == nil && !to.After(from) {
		err = badReq("empty window: from=%s is not before to=%s",
			from.Format(time.RFC3339), to.Format(time.RFC3339))
	}
	return
}

// scanEvidence carries one out-of-core scan's pruning counters and its
// decode-worker count, the X-Scan-* response headers. The cluster
// coordinator sums them across shard owners so a scatter/gather window
// report carries the same evidence a single-node report would.
type scanEvidence struct {
	segments       int
	segmentsPruned int
	blocks         int64
	blocksPruned   int64
	workers        int
}

// addTo sets the X-Scan-* headers (nil evidence sets nothing — the
// scan did not touch disk).
func (ev *scanEvidence) addTo(h http.Header) {
	if ev == nil {
		return
	}
	h.Set("X-Scan-Segments", strconv.Itoa(ev.segments))
	h.Set("X-Scan-Segments-Pruned", strconv.Itoa(ev.segmentsPruned))
	h.Set("X-Scan-Blocks", strconv.FormatInt(ev.blocks, 10))
	h.Set("X-Scan-Blocks-Pruned", strconv.FormatInt(ev.blocksPruned, 10))
	if ev.workers > 0 {
		h.Set("X-Scan-Workers", strconv.Itoa(ev.workers))
	}
}

// merge sums another scan's counters into this one; either may be nil.
func (ev *scanEvidence) merge(o *scanEvidence) *scanEvidence {
	if o == nil {
		return ev
	}
	if ev == nil {
		cp := *o
		return &cp
	}
	ev.segments += o.segments
	ev.segmentsPruned += o.segmentsPruned
	ev.blocks += o.blocks
	ev.blocksPruned += o.blocksPruned
	ev.workers += o.workers
	return ev
}

// parseScanEvidence reads X-Scan-* headers back into counters (nil
// when the response carries none) — the gather half of the evidence
// aggregation.
func parseScanEvidence(h http.Header) *scanEvidence {
	if h.Get("X-Scan-Segments") == "" {
		return nil
	}
	ev := &scanEvidence{}
	ev.segments, _ = strconv.Atoi(h.Get("X-Scan-Segments"))
	ev.segmentsPruned, _ = strconv.Atoi(h.Get("X-Scan-Segments-Pruned"))
	ev.blocks, _ = strconv.ParseInt(h.Get("X-Scan-Blocks"), 10, 64)
	ev.blocksPruned, _ = strconv.ParseInt(h.Get("X-Scan-Blocks-Pruned"), 10, 64)
	ev.workers, _ = strconv.Atoi(h.Get("X-Scan-Workers"))
	return ev
}

// windowPartial builds the partial aggregate for one submit-time
// window of a trace. The frozen whole-trace aggregate cannot answer a
// window, so this always scans — a resident trace in memory, a
// disk-resident one out-of-core with segments pruned by their manifest
// submit-time spans and columnar blocks by their zone maps (the
// returned scanEvidence reports how much the pruning skipped; nil when
// the scan stayed in memory or the partial came from the cache). The
// windowed partial is parked in the cache's aggregate tier under
// (fingerprint, window), so report variants differing only in
// finalization (top=N) share the scan. The returned partial is shared
// frozen state: callers must treat it as read-only.
func (s *Server) windowPartial(v View, from, to time.Time, shards int, sketch bool) (*core.Partial, string, *scanEvidence, error) {
	length := to.Sub(from)
	aggKey := fmt.Sprintf("%s|partial|sketch=%t|win=%d-%d", v.Info.Fingerprint, sketch, from.Unix(), to.Unix())
	miss := "window-scan"
	var ev *scanEvidence
	av, cached, err := s.cache.DoAggregate(aggKey, func() (any, error) {
		if v.Trace != nil {
			return core.BuildTracePartial(v.Trace.Window(from, length), shards, sketch)
		}
		miss = "window-disk-scan"
		wmeta := trace.Meta{
			Name:     v.Info.Workload,
			Machines: v.Info.Machines,
			Start:    from,
			Length:   length,
		}
		p, stats, err := s.scanStored(v, storage.ParallelScanOptions{
			Workers: shards,
			Sketch:  sketch,
			Window:  true,
			From:    from,
			To:      to,
			Meta:    wmeta,
		})
		if err != nil {
			return nil, err
		}
		ev = &scanEvidence{
			segments:       stats.Segments,
			segmentsPruned: stats.SegmentsPruned,
			blocks:         stats.BlocksRead(),
			blocksPruned:   stats.BlocksPruned(),
			workers:        scanWorkers(shards),
		}
		return p, nil
	})
	if err != nil {
		return nil, "", nil, err
	}
	if cached {
		miss = "cached-window-partial"
	}
	return av.(*core.Partial), miss, ev, nil
}

// FidelityJSON is the wire form of a synthesis fidelity score.
type FidelityJSON struct {
	InputKS         float64 `json:"input_ks"`
	ShuffleKS       float64 `json:"shuffle_ks"`
	OutputKS        float64 `json:"output_ks"`
	TaskTimeKS      float64 `json:"task_time_ks"`
	WorstExcess     float64 `json:"worst_excess"`
	PeakToMedianRel float64 `json:"peak_to_median_rel"`
}

// SynthResponse is the GET /v1/traces/{name}/synth payload. The
// synthetic summary reuses core's Table-1 wire row.
type SynthResponse struct {
	Source    TraceInfo        `json:"source"`
	Synthetic core.SummaryJSON `json:"synthetic"`
	Fidelity  FidelityJSON     `json:"fidelity"`
	StoredAs  *TraceInfo       `json:"stored_as,omitempty"`
}

// handleSynth wraps the SWIM synthesizer: sample the stored trace down
// to length (and optionally rescale from source_machines to
// target_machines), score fidelity against the source, and — with
// store=<newname> — keep the synthetic trace for further queries.
func (s *Server) handleSynth(w http.ResponseWriter, r *http.Request) {
	if err := s.rejectClusterTrace(r); err != nil {
		writeErr(w, err)
		return
	}
	t, info, err := s.store.Get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	length, err := queryDuration(r, "length", 24*time.Hour)
	if err != nil {
		writeErr(w, err)
		return
	}
	window, err := queryDuration(r, "window", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	srcMachines, err := queryInt(r, "source_machines", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	dstMachines, err := queryInt(r, "target_machines", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	seed, err := queryInt64(r, "seed", 1)
	if err != nil {
		writeErr(w, err)
		return
	}
	storeAs := r.URL.Query().Get("store")

	compute := func() ([]byte, error) {
		cfg := synth.Config{
			TargetLength:   length,
			WindowLength:   window,
			SourceMachines: srcMachines,
			TargetMachines: dstMachines,
			Seed:           seed,
		}
		syn, err := synth.Synthesize(t, cfg)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errUnprocessable, err)
		}
		fid, err := synth.Compare(t, syn)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errUnprocessable, err)
		}
		sum := syn.Summarize()
		resp := SynthResponse{
			Source: info,
			Synthetic: core.SummaryJSON{
				Name:       sum.Name,
				Machines:   sum.Machines,
				Jobs:       sum.Jobs,
				LengthMS:   sum.Length.Milliseconds(),
				BytesMoved: int64(sum.BytesMoved),
			},
			Fidelity: FidelityJSON{
				InputKS:         fid.Input.KS,
				ShuffleKS:       fid.Shuffle.KS,
				OutputKS:        fid.Output.KS,
				TaskTimeKS:      fid.TaskTime.KS,
				WorstExcess:     fid.WorstExcess(),
				PeakToMedianRel: fid.PeakToMedianRel,
			},
		}
		if storeAs != "" {
			stored, err := s.store.Put(storeAs, syn)
			if err != nil {
				return nil, err
			}
			resp.StoredAs = &stored
		}
		return json.Marshal(resp)
	}

	if storeAs != "" {
		// Storing is a side effect; run it uncached so a repeat request
		// re-stores (e.g. after a delete) instead of replaying a memo.
		body, err := compute()
		if err != nil {
			writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "BYPASS")
		_, _ = w.Write(body)
		return
	}
	key := fmt.Sprintf("%s|synth|len=%s|win=%s|sm=%d|tm=%d|seed=%d",
		info.Fingerprint, length, window, srcMachines, dstMachines, seed)
	s.serveCached(w, key, compute)
}

// ReplayResponse is the GET /v1/traces/{name}/replay payload.
type ReplayResponse struct {
	Source           TraceInfo `json:"source"`
	Scheduler        string    `json:"scheduler"`
	Completed        int       `json:"completed"`
	TotalSlots       int       `json:"total_slots"`
	MakespanSec      float64   `json:"makespan_sec"`
	MedianLatencySec float64   `json:"median_latency_sec"`
	MeanLatencySec   float64   `json:"mean_latency_sec"`
	P99LatencySec    float64   `json:"p99_latency_sec"`
	HourlyOccupancy  []float64 `json:"hourly_occupancy"`
}

// handleReplay wraps the discrete-event cluster simulator: replay the
// stored trace on a simulated cluster and report latency quantiles and
// the hourly slot-occupancy series.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	if err := s.rejectClusterTrace(r); err != nil {
		writeErr(w, err)
		return
	}
	t, info, err := s.store.Get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	nodes, err := queryInt(r, "nodes", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	mapSlots, err := queryInt(r, "map_slots", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	reduceSlots, err := queryInt(r, "reduce_slots", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	stragglers, err := queryFloat(r, "stragglers", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Factor defaults to the swimreplay CLI's 5x so ?stragglers= works
	// on its own (the simulator rejects prob>0 with factor<1).
	factor, err := queryFloat(r, "straggler_factor", 5)
	if err != nil {
		writeErr(w, err)
		return
	}
	seed, err := queryInt64(r, "seed", 1)
	if err != nil {
		writeErr(w, err)
		return
	}
	var sched cluster.SchedulerKind
	switch r.URL.Query().Get("scheduler") {
	case "", "fifo":
		sched = cluster.FIFO
	case "fair":
		sched = cluster.Fair
	default:
		writeErr(w, badReq("unknown scheduler %q (use fifo or fair)", r.URL.Query().Get("scheduler")))
		return
	}
	if nodes == 0 {
		nodes = t.Meta.Machines
	}

	key := fmt.Sprintf("%s|replay|n=%d|ms=%d|rs=%d|sched=%d|sp=%g|sf=%g|seed=%d",
		info.Fingerprint, nodes, mapSlots, reduceSlots, sched, stragglers, factor, seed)
	s.serveCached(w, key, func() ([]byte, error) {
		res, err := cluster.Run(t, cluster.Config{
			Nodes:              nodes,
			MapSlotsPerNode:    mapSlots,
			ReduceSlotsPerNode: reduceSlots,
			Scheduler:          sched,
			StragglerProb:      stragglers,
			StragglerFactor:    factor,
			Seed:               seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errUnprocessable, err)
		}
		return json.Marshal(ReplayResponse{
			Source:           info,
			Scheduler:        res.Scheduler.String(),
			Completed:        res.Completed,
			TotalSlots:       res.TotalSlots,
			MakespanSec:      res.MakespanSec,
			MedianLatencySec: res.MedianLatency(),
			MeanLatencySec:   res.MeanLatency(),
			P99LatencySec:    res.P99Latency(),
			HourlyOccupancy:  res.HourlyOccupancy,
		})
	})
}

// handleGenerate starts an async calibrated-workload generation job.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, badReq("decoding request: %v", err))
		return
	}
	if req.Workload == "" {
		writeErr(w, badReq("missing workload"))
		return
	}
	st, err := s.jobs.start(s.store, req)
	if err != nil {
		writeErr(w, badReq("%v", err))
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]JobStatus{"jobs": s.jobs.list()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, fmt.Errorf("%w: job %q", ErrNotFound, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}
