package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchServer returns a server preloaded with a two-week CC-b trace —
// thousands of jobs, a realistic interactive-analytics target.
func benchServer(tb testing.TB, cfg Config) (*Server, *httptest.Server) {
	tb.Helper()
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	tr := genTrace(tb, "CC-b", 1, 14*24*time.Hour)
	if _, err := s.store.Put("bench", tr); err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return s, ts
}

func get(tb testing.TB, url string) {
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("GET %s -> %d", url, resp.StatusCode)
	}
}

// BenchmarkServeReport measures the serving layer's headline numbers:
// a cold report request in the two cold regimes — "cold" finalizes the
// trace's frozen ingest-time partial aggregate (the default since
// partials landed; no per-job work), "cold-scan" re-reads every stored
// job with partials disabled (the pre-partial behavior) — versus
// "warm", a result-cache hit. cold-scan/cold is the value of
// ingest-time aggregation; cold/warm is the value of the ReStore-style
// result cache (acceptance bar >= 10x).
func BenchmarkServeReport(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		s, ts := benchServer(b, Config{})
		url := ts.URL + "/v1/traces/bench/report"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			get(b, url)
			b.StopTimer()
			s.cache.Purge() // evict between iterations
			b.StartTimer()
		}
	})
	b.Run("cold-scan", func(b *testing.B) {
		s, ts := benchServer(b, Config{DisablePartials: true})
		url := ts.URL + "/v1/traces/bench/report"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			get(b, url)
			b.StopTimer()
			s.cache.Purge() // drops the aggregate tier too
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		_, ts := benchServer(b, Config{})
		url := ts.URL + "/v1/traces/bench/report"
		get(b, url) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			get(b, url)
		}
	})
}

// BenchmarkStoreColdReport is the durability trend datapoint: a cold
// report request served from the in-memory ingest-time partial
// ("memory") versus one served by a freshly restarted server from the
// persisted partial snapshot ("disk") versus a restarted server with no
// snapshot that must scan the segments out-of-core ("disk-scan"). The
// first two should be near-identical — that gap is the cost of a
// restart under the durable store — and the third bounds the worst
// case. benchtrend -suite serve appends the numbers to BENCH_SERVE.json.
func BenchmarkStoreColdReport(b *testing.B) {
	b.Run("memory", func(b *testing.B) {
		s, ts := benchServer(b, Config{})
		url := ts.URL + "/v1/traces/bench/report"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			get(b, url)
			b.StopTimer()
			s.cache.Purge()
			b.StartTimer()
		}
	})
	restarted := func(b *testing.B, cfg Config) (*Server, *httptest.Server) {
		b.Helper()
		dir := b.TempDir()
		cfg.DataDir = dir
		s1, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr := genTrace(b, "CC-b", 1, 14*24*time.Hour)
		if _, err := s1.store.Put("bench", tr); err != nil {
			b.Fatal(err)
		}
		if err := s1.Close(); err != nil {
			b.Fatal(err)
		}
		s2, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s2.Close() })
		ts := httptest.NewServer(s2.Handler())
		b.Cleanup(ts.Close)
		return s2, ts
	}
	b.Run("disk", func(b *testing.B) {
		s, ts := restarted(b, Config{})
		url := ts.URL + "/v1/traces/bench/report"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			get(b, url)
			b.StopTimer()
			s.cache.Purge()
			b.StartTimer()
		}
	})
	b.Run("disk-scan", func(b *testing.B) {
		s, ts := restarted(b, Config{DisablePartials: true})
		url := ts.URL + "/v1/traces/bench/report"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			get(b, url)
			b.StopTimer()
			s.cache.Purge() // drops the parked aggregate too
			b.StartTimer()
		}
	})
}

// TestServeReportCacheSpeedup enforces the acceptance criterion in the
// regular test suite: a cached report request must be at least 10x
// faster than the cold request that computed it. The margin in practice
// is two to three orders of magnitude, so the 10x bar stays far from
// scheduler noise; the warm side takes the best of several probes to
// shield against GC pauses.
func TestServeReportCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test is not -short")
	}
	s, ts := benchServer(t, Config{})
	url := ts.URL + "/v1/traces/bench/report"

	start := time.Now()
	get(t, url)
	cold := time.Since(start)

	warm := time.Duration(1<<63 - 1)
	for i := 0; i < 10; i++ {
		start = time.Now()
		get(t, url)
		if d := time.Since(start); d < warm {
			warm = d
		}
	}
	if cs := s.Cache().Stats(); cs.Misses != 1 {
		t.Fatalf("expected exactly one analysis, cache ran %d", cs.Misses)
	}
	if cold < 10*warm {
		t.Errorf("cached report not >=10x faster: cold=%v warm(best)=%v (%.1fx)",
			cold, warm, float64(cold)/float64(warm))
	}
	t.Logf("cold=%v warm=%v speedup=%.0fx", cold, warm, float64(cold)/float64(warm))
}
