package server

import (
	"bufio"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// hijackRecorder is a ResponseWriter whose Hijack is observable — the
// stand-in for the TCP connection takeover a websocket-style handler
// would perform.
type hijackRecorder struct {
	*httptest.ResponseRecorder
	hijacked bool
}

var errHijacked = errors.New("hijacked")

func (h *hijackRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h.hijacked = true
	return nil, nil, errHijacked
}

// TestStatusWriterForwardsFlush: a handler streaming through the
// middleware must reach the underlying writer's Flush, not a wrapper
// that swallows it.
func TestStatusWriterForwardsFlush(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.mw.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("middleware writer lost http.Flusher")
		}
		f.Flush()
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
}

// TestStatusWriterForwardsHijack: connection takeover must pass through
// the instrumentation to the real writer.
func TestStatusWriterForwardsHijack(t *testing.T) {
	s := mustNew(t, Config{})
	under := &hijackRecorder{ResponseRecorder: httptest.NewRecorder()}
	h := s.mw.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Fatal("middleware writer lost http.Hijacker")
		}
		if _, _, err := hj.Hijack(); !errors.Is(err, errHijacked) {
			t.Errorf("Hijack error %v, want the underlying writer's", err)
		}
	}))
	h.ServeHTTP(under, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !under.hijacked {
		t.Error("Hijack did not reach the underlying writer")
	}
}

// TestMiddlewareByteCounters: request-body bytes read and response
// bytes written surface in the per-endpoint counters and the ring.
func TestMiddlewareByteCounters(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	body := strings.Repeat("x", 1024)
	rec := httptest.NewRecorder()
	// An unroutable body-carrying request still counts its bytes... but
	// ServeMux 404s before reading the body, so use a real ingest (the
	// handler drains the body even when the payload is invalid JSONL).
	req := httptest.NewRequest(http.MethodPost, "/v1/traces/bytes-test", strings.NewReader(body))
	h.ServeHTTP(rec, req)

	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec2.Code)
	}

	in := s.metrics.httpReqBytes.Snapshot()["POST /v1/traces/{name}"]
	if in == 0 {
		t.Errorf("request bytes not counted: %v", s.metrics.httpReqBytes.Snapshot())
	}
	out := s.metrics.httpRespBytes.Snapshot()["GET /v1/stats"]
	if out == 0 {
		t.Errorf("response bytes not counted: %v", s.metrics.httpRespBytes.Snapshot())
	}
	recs := s.metrics.ring.Snapshot(0, 0)
	if len(recs) == 0 {
		t.Fatal("ring empty")
	}
	var found bool
	for _, r := range recs {
		if r.Endpoint == "GET /v1/stats" && r.BytesOut > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no ring record with response bytes: %+v", recs)
	}
}

// TestRequestIDMintedAndEchoed: every response carries X-Request-Id —
// the caller's when well-formed, a minted one otherwise.
func TestRequestIDMintedAndEchoed(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	minted := rec.Header().Get("X-Request-Id")
	if len(minted) != 16 {
		t.Errorf("minted id %q, want 16 hex chars", minted)
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-id-1")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "caller-id-1" {
		t.Errorf("valid caller id not echoed: %q", got)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-Id", "bad id\nwith newline")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got == "bad id\nwith newline" || len(got) != 16 {
		t.Errorf("malformed caller id not replaced: %q", got)
	}
}

// TestPanicRecoveryCounts: a panicking handler becomes a 500 and bumps
// the panic counter without killing the server.
func TestPanicRecoveryCounts(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.mw.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", rec.Code)
	}
	if s.metrics.panics.Value() != 1 {
		t.Errorf("panic counter %d, want 1", s.metrics.panics.Value())
	}
}

// discardResponseWriter is the benchmark sink: header map without
// recording overhead.
type discardResponseWriter struct {
	h http.Header
}

func (d *discardResponseWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardResponseWriter) WriteHeader(int)             {}
func (d *discardResponseWriter) Write(b []byte) (int, error) { return len(b), nil }

// BenchmarkMiddlewareOverhead measures the per-request cost of the full
// observability middleware (trace ID, context, metrics, ring) against a
// bare handler. CI gates the difference below 5µs/request.
func BenchmarkMiddlewareOverhead(b *testing.B) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})

	b.Run("bare", func(b *testing.B) {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := &discardResponseWriter{}
			handler.ServeHTTP(w, req)
		}
	})

	b.Run("instrumented", func(b *testing.B) {
		s, err := New(Config{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		wrapped := s.mw.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if rt := obs.FromContext(r.Context()); rt != nil {
				rt.SetEndpoint("GET /healthz")
			}
			handler.ServeHTTP(w, r)
		}))
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := &discardResponseWriter{}
			wrapped.ServeHTTP(w, req)
		}
	})
}
