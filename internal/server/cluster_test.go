package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// The cluster suite drives real multi-node topologies: N servers, each
// with its own store/cache/fleet, wired over loopback HTTP. The
// headline property under test is the ISSUE's acceptance bar — a
// scatter/gather report is byte-identical to a single-node analysis of
// the same upload — plus the failure semantics around it (replica
// fallback, degraded answers, cluster cache hits).

// swapHandler gives a node a stable URL before its Server exists: the
// fleet needs every member's address at construction, so the listeners
// come up first and the handlers are plugged in after.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (sh *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sh.mu.RLock()
	h := sh.h
	sh.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not up yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (sh *swapHandler) set(h http.Handler) {
	sh.mu.Lock()
	sh.h = h
	sh.mu.Unlock()
}

// clusterNode is one member: its Server (white-box access), its HTTP
// endpoint, and the swap point used to simulate restarts.
type clusterNode struct {
	id  string
	srv *Server
	ts  *httptest.Server
	sh  *swapHandler
}

// kill makes the node unreachable (connection refused), as a crashed
// process would be.
func (n *clusterNode) kill() { n.ts.Close() }

// newTestCluster brings up an n-node cluster on loopback. mutate (if
// non-nil) adjusts each node's Config before construction; background
// liveness probing is off by default so tests control detection
// explicitly.
func newTestCluster(t testing.TB, n int, mutate func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	parts := make([]string, n)
	for i := range nodes {
		sh := &swapHandler{}
		ts := httptest.NewServer(sh)
		t.Cleanup(ts.Close)
		nodes[i] = &clusterNode{id: fmt.Sprintf("n%d", i), ts: ts, sh: sh}
		parts[i] = nodes[i].id + "=" + ts.URL
	}
	peers := strings.Join(parts, ",")
	for i, nd := range nodes {
		cfg := Config{Peers: peers, NodeID: nd.id, PeerProbeInterval: -1, PeerTimeout: 5 * time.Second}
		if mutate != nil {
			mutate(i, &cfg)
		}
		nd.srv = mustNew(t, cfg)
		nd.sh.set(nd.srv.Handler())
	}
	return nodes
}

// getRaw fetches a URL and returns status, headers, and body.
func fetchRaw(t testing.TB, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// getReport fetches a report and requires 200.
func getReport(t testing.TB, base, name, query string) (http.Header, []byte) {
	t.Helper()
	code, hdr, body := fetchRaw(t, base+"/v1/traces/"+name+"/report"+query)
	if code != http.StatusOK {
		t.Fatalf("report %s%s: %d %s", name, query, code, clip(body))
	}
	return hdr, body
}

// sortedByLess returns tr's jobs in the canonical (submit, id) order so
// tests can split them into an initial upload and an append batch.
func sortedJobs(tr *trace.Trace) []*trace.Job {
	jobs := append([]*trace.Job(nil), tr.Jobs...)
	sort.SliceStable(jobs, func(i, k int) bool { return jobLess(jobs[i], jobs[k]) })
	return jobs
}

// TestClusterReportByteIdentity is the acceptance bar: a 3-node
// scatter/gather report — whole trace and windowed, queried through
// every member — is byte-for-byte the single-node answer for the same
// upload.
func TestClusterReportByteIdentity(t *testing.T) {
	tr := genTrace(t, "FB-2009", 1, 24*time.Hour)

	_, single := newTestServer(t)
	ingestTrace(t, single, "golden", tr)
	_, wantFull := getReport(t, single.URL, "golden", "")
	_, wantWin := getReport(t, single.URL, "golden", "?window=6h")

	nodes := newTestCluster(t, 3, nil)
	info := ingestTrace(t, nodes[0].ts, "golden", tr)
	if !info.Cluster || info.Shards != 3 {
		t.Fatalf("ingest info not clustered: %+v", info)
	}
	if info.Jobs != tr.Len() {
		t.Fatalf("ingest jobs %d, want %d", info.Jobs, tr.Len())
	}

	for i, nd := range nodes {
		hdr, body := getReport(t, nd.ts.URL, "golden", "")
		if !bytes.Equal(body, wantFull) {
			t.Errorf("node %d full report differs from single-node (%d vs %d bytes)", i, len(body), len(wantFull))
		}
		if got := hdr.Get("X-Cluster-Shards"); got != "3" {
			t.Errorf("node %d X-Cluster-Shards %q", i, got)
		}
		if hdr.Get("X-Analysis") == "degraded" {
			t.Errorf("node %d degraded with all nodes up", i)
		}
		_, win := getReport(t, nd.ts.URL, "golden", "?window=6h")
		if !bytes.Equal(win, wantWin) {
			t.Errorf("node %d windowed report differs from single-node", i)
		}
	}

	// The first coordinated report must have scattered and merged all
	// three shards somewhere.
	var scatters, merges uint64
	for _, nd := range nodes {
		st := nd.srv.Fleet().Stats()
		scatters += st.Scatters
		merges += st.Merges
	}
	if scatters == 0 || merges == 0 {
		t.Errorf("no scatter/merge recorded: scatters=%d merges=%d", scatters, merges)
	}

	// Every member lists the distributed trace once and hides the shard
	// replicas it stores locally.
	for i, nd := range nodes {
		var list struct {
			Traces []TraceInfo `json:"traces"`
		}
		getJSON(t, nd.ts.URL+"/v1/traces", &list)
		if len(list.Traces) != 1 || list.Traces[0].Name != "golden" || !list.Traces[0].Cluster {
			t.Errorf("node %d list %+v", i, list.Traces)
		}
		var got TraceInfo
		getJSON(t, nd.ts.URL+"/v1/traces/golden", &got)
		if got != info {
			t.Errorf("node %d info %+v != ingest %+v", i, got, info)
		}
	}
}

// TestClusterAppendExtendsFingerprint: cluster appends — proxied
// through a non-home node — extend the trace so that both its content
// fingerprint and its reports match a single-node server that ingested
// everything in one shot.
func TestClusterAppendExtendsFingerprint(t *testing.T) {
	tr := genTrace(t, "CC-b", 2, 36*time.Hour)
	jobs := sortedJobs(tr)
	cut := len(jobs) * 2 / 3
	first := &trace.Trace{Meta: tr.Meta, Jobs: jobs[:cut]}
	batch := &trace.Trace{Meta: tr.Meta, Jobs: jobs[cut:]}
	whole := &trace.Trace{Meta: tr.Meta, Jobs: jobs}

	_, single := newTestServer(t)
	want := ingestTrace(t, single, "live", whole)
	_, wantBody := getReport(t, single.URL, "live", "")

	nodes := newTestCluster(t, 3, nil)
	ingestTrace(t, nodes[0].ts, "live", first)

	// Append through a node that is NOT the trace's home so the proxy
	// hop is exercised.
	home := nodes[0].srv.cluster.fleet.Home("live")
	var prox *clusterNode
	for _, nd := range nodes {
		if nd.id != home {
			prox = nd
			break
		}
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, batch); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(prox.ts.URL+"/v1/traces/live/append", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d %s", resp.StatusCode, clip(body))
	}
	if got := resp.Header.Get("X-Fleet-Proxied"); got != home {
		t.Errorf("X-Fleet-Proxied %q, want %q", got, home)
	}

	var got TraceInfo
	getJSON(t, nodes[2].ts.URL+"/v1/traces/live", &got)
	if got.Fingerprint != want.Fingerprint {
		t.Errorf("appended fingerprint %s != one-shot %s", got.Fingerprint, want.Fingerprint)
	}
	if got.Jobs != want.Jobs {
		t.Errorf("appended jobs %d != %d", got.Jobs, want.Jobs)
	}
	for i, nd := range nodes {
		_, rep := getReport(t, nd.ts.URL, "live", "")
		if !bytes.Equal(rep, wantBody) {
			t.Errorf("node %d post-append report differs from single-node", i)
		}
	}
}

// TestClusterKillNodeReplicaServed: with replication 2, losing one node
// mid-service leaves every shard a live owner — reports stay complete
// and byte-identical, not degraded.
func TestClusterKillNodeReplicaServed(t *testing.T) {
	tr := genTrace(t, "FB-2009", 3, 24*time.Hour)
	_, single := newTestServer(t)
	ingestTrace(t, single, "ha", tr)
	_, want := getReport(t, single.URL, "ha", "")

	nodes := newTestCluster(t, 3, func(i int, cfg *Config) { cfg.Replication = 2 })
	ingestTrace(t, nodes[0].ts, "ha", tr)

	nodes[2].kill()

	hdr, body := getReport(t, nodes[0].ts.URL, "ha", "")
	if !bytes.Equal(body, want) {
		t.Errorf("replica-served report differs from single-node")
	}
	if hdr.Get("X-Analysis") == "degraded" || hdr.Get("X-Cluster-Missing-Shards") != "" {
		t.Errorf("report degraded despite replication=2: X-Analysis=%q missing=%q",
			hdr.Get("X-Analysis"), hdr.Get("X-Cluster-Missing-Shards"))
	}
}

// TestClusterDegradedPath: with replication 1, a downed owner's shards
// are simply gone — the report still answers 200 from the remaining
// shards, marked degraded with the missing shard list, and the partial
// answer is never cached.
func TestClusterDegradedPath(t *testing.T) {
	tr := genTrace(t, "CC-b", 4, 30*time.Hour)
	nodes := newTestCluster(t, 3, func(i int, cfg *Config) { cfg.Replication = 1 })

	// Pick a name whose single-replica placement puts at least one shard
	// on a node other than n0 (the query node) — deterministic, since
	// the ring is.
	f := nodes[0].srv.cluster.fleet
	name, victim := "", ""
	for c := 0; c < 64 && victim == ""; c++ {
		cand := "deg-" + strconv.Itoa(c)
		for i := 0; i < 3; i++ {
			if owner := f.Owners(shardKey(cand, i), 1)[0]; owner != "n0" {
				name, victim = cand, owner
				break
			}
		}
	}
	if victim == "" {
		t.Fatal("no candidate name places a shard off n0")
	}
	ingestTrace(t, nodes[0].ts, name, tr)
	for _, nd := range nodes {
		if nd.id == victim {
			nd.kill()
		}
	}

	for attempt := 0; attempt < 2; attempt++ {
		code, hdr, body := fetchRaw(t, nodes[0].ts.URL+"/v1/traces/"+name+"/report")
		if code != http.StatusOK {
			t.Fatalf("degraded report attempt %d: %d %s", attempt, code, clip(body))
		}
		if hdr.Get("X-Analysis") != "degraded" {
			t.Fatalf("attempt %d: X-Analysis %q, want degraded", attempt, hdr.Get("X-Analysis"))
		}
		if hdr.Get("X-Cluster-Missing-Shards") == "" {
			t.Fatalf("attempt %d: no missing-shard list", attempt)
		}
		// Never cached: a degraded answer must be recomputed while the
		// owner is down (it may be back next time).
		if hdr.Get("X-Cache") != "MISS" {
			t.Fatalf("attempt %d: degraded answer served from cache (X-Cache %q)", attempt, hdr.Get("X-Cache"))
		}
	}
	if st := nodes[0].srv.Fleet().Stats(); st.Degraded == 0 {
		t.Errorf("degraded counter not incremented: %+v", st)
	}
}

// TestClusterCacheServesWarmFromAnyNode: once any member has computed a
// report, every other member answers the identical query from the
// cluster cache — no second scatter.
func TestClusterCacheServesWarmFromAnyNode(t *testing.T) {
	tr := genTrace(t, "CC-b", 5, 30*time.Hour)
	nodes := newTestCluster(t, 3, nil)
	ingestTrace(t, nodes[0].ts, "warm", tr)

	_, first := getReport(t, nodes[0].ts.URL, "warm", "?top=5")
	for i := 1; i < 3; i++ {
		hdr, body := getReport(t, nodes[i].ts.URL, "warm", "?top=5")
		if !bytes.Equal(body, first) {
			t.Errorf("node %d warm body differs", i)
		}
		local, remote := hdr.Get("X-Cache"), hdr.Get("X-Cluster-Cache")
		if local != "HIT" && remote != "HIT" {
			t.Errorf("node %d not served warm: X-Cache=%q X-Cluster-Cache=%q", i, local, remote)
		}
		if st := nodes[i].srv.Fleet().Stats(); st.Scatters != 0 {
			t.Errorf("node %d scattered %d time(s) for a warm result", i, st.Scatters)
		}
	}
}

// TestClusterWindowedScanAggregation: when shard owners serve a window
// out-of-core, the coordinator sums their X-Scan-* pruning evidence
// into the scatter response — and the out-of-core windowed answer is
// still byte-identical to the in-memory single-node one.
func TestClusterWindowedScanAggregation(t *testing.T) {
	tr := genTrace(t, "FB-2009", 6, 24*time.Hour)
	_, single := newTestServer(t)
	ingestTrace(t, single, "cold", tr)
	_, want := getReport(t, single.URL, "cold", "?window=4h")

	// A tiny hot tier plus a durable backing forces every shard replica
	// to disk, so windows are served by the pruned segment scan.
	nodes := newTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.MaxTotalJobs = 16
		cfg.DataDir = t.TempDir()
	})
	ingestTrace(t, nodes[0].ts, "cold", tr)

	hdr, body := getReport(t, nodes[0].ts.URL, "cold", "?window=4h")
	if !bytes.Equal(body, want) {
		t.Errorf("out-of-core windowed scatter differs from single-node in-memory window")
	}
	if hdr.Get("X-Analysis") != "scatter" {
		t.Fatalf("X-Analysis %q, want scatter", hdr.Get("X-Analysis"))
	}
	segs, err := strconv.Atoi(hdr.Get("X-Scan-Segments"))
	if err != nil || segs < 3 {
		t.Errorf("X-Scan-Segments %q: want >= one per shard", hdr.Get("X-Scan-Segments"))
	}
	if hdr.Get("X-Scan-Blocks") == "" {
		t.Errorf("no aggregated X-Scan-Blocks header")
	}
}

// TestClusterStatsAndHealth: /v1/stats grows a cluster section with
// placement and scatter counters, shard replicas land replication×shards
// strong across the fleet, and /healthz flips to degraded once the
// prober notices a dead peer.
func TestClusterStatsAndHealth(t *testing.T) {
	tr := genTrace(t, "CC-b", 7, 30*time.Hour)
	nodes := newTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.Replication = 2
		cfg.PeerProbeInterval = 25 * time.Millisecond
	})
	ingestTrace(t, nodes[0].ts, "obs", tr)
	getReport(t, nodes[0].ts.URL, "obs", "")

	totalShards := 0
	for i, nd := range nodes {
		var st StatsResponse
		getJSON(t, nd.ts.URL+"/v1/stats", &st)
		if st.Cluster == nil {
			t.Fatalf("node %d: no cluster stats section", i)
		}
		if st.Cluster.NodeID != nd.id || st.Cluster.Size != 3 || st.Cluster.Traces != 1 {
			t.Errorf("node %d cluster stats %+v", i, st.Cluster)
		}
		totalShards += st.Cluster.LocalShards
	}
	if totalShards != 3*2 {
		t.Errorf("total shard replicas %d, want shards*replication = 6", totalShards)
	}
	var st StatsResponse
	getJSON(t, nodes[0].ts.URL+"/v1/stats", &st)
	if st.Cluster.Scatters == 0 {
		t.Errorf("coordinator recorded no scatter")
	}

	var health map[string]any
	getJSON(t, nodes[0].ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz %v with all peers up", health)
	}
	nodes[2].kill()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, body := fetchRaw(t, nodes[0].ts.URL+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("healthz: %d %s", code, body)
		}
		if strings.Contains(string(body), "degraded") && strings.Contains(string(body), "n2") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported n2 down: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterDeleteEverywhere: deleting through any node removes the
// metadata on every member and the shard replicas from every store.
func TestClusterDeleteEverywhere(t *testing.T) {
	tr := genTrace(t, "CC-b", 8, 30*time.Hour)
	nodes := newTestCluster(t, 3, nil)
	ingestTrace(t, nodes[0].ts, "gone", tr)

	req, _ := http.NewRequest(http.MethodDelete, nodes[1].ts.URL+"/v1/traces/gone", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	for i, nd := range nodes {
		code, _, _ := fetchRaw(t, nd.ts.URL+"/v1/traces/gone")
		if code != http.StatusNotFound {
			t.Errorf("node %d still serves deleted trace (%d)", i, code)
		}
		for _, info := range nd.srv.Store().List() {
			if strings.HasPrefix(info.Name, shardPrefix) {
				t.Errorf("node %d kept shard replica %s", i, info.Name)
			}
		}
	}
}

// TestClusterWholeTraceModesRejected: synthesis, replay, and full=1
// need the whole trace resident on one node, so a distributed trace
// answers 422 rather than a wrong or partial result.
func TestClusterWholeTraceModesRejected(t *testing.T) {
	tr := genTrace(t, "CC-b", 9, 30*time.Hour)
	nodes := newTestCluster(t, 3, nil)
	ingestTrace(t, nodes[0].ts, "modes", tr)

	for _, path := range []string{
		"/v1/traces/modes/report?full=1",
		"/v1/traces/modes/synth",
		"/v1/traces/modes/replay",
	} {
		code, _, body := fetchRaw(t, nodes[1].ts.URL+path)
		if code != http.StatusUnprocessableEntity {
			t.Errorf("GET %s: %d %s, want 422", path, code, clip(body))
		}
	}
	if _, err := nodes[0].srv.cluster.ingest(t.Context(), shardPrefix+"x/0", emptySource{}); err == nil {
		t.Error("reserved shard name accepted for ingest")
	}
}

// emptySource is a Source with no jobs and no metadata.
type emptySource struct{}

func (emptySource) Meta() trace.Meta          { return trace.Meta{} }
func (emptySource) Next() (*trace.Job, error) { return nil, io.EOF }

// TestClusterRestartRestoresMetadata: a node with a durable backing
// re-registers its distributed traces at startup from the persisted
// metadata documents — no peer round-trip needed.
func TestClusterRestartRestoresMetadata(t *testing.T) {
	tr := genTrace(t, "CC-b", 10, 30*time.Hour)
	dirs := make([]string, 3)
	nodes := newTestCluster(t, 3, func(i int, cfg *Config) {
		dirs[i] = t.TempDir()
		cfg.DataDir = dirs[i]
	})
	ingestTrace(t, nodes[0].ts, "durable", tr)
	_, want := getReport(t, nodes[0].ts.URL, "durable", "")

	// Restart node 0: close it, bring a fresh Server up on the same data
	// directory and the same address (the swap handler keeps the URL).
	peers := make([]string, 3)
	for i, nd := range nodes {
		peers[i] = nd.id + "=" + nd.ts.URL
	}
	if err := nodes[0].srv.Close(); err != nil {
		t.Fatal(err)
	}
	reborn := mustNew(t, Config{
		Peers: strings.Join(peers, ","), NodeID: "n0",
		PeerProbeInterval: -1, DataDir: dirs[0],
	})
	nodes[0].sh.set(reborn.Handler())

	if _, ok := reborn.cluster.get("durable"); !ok {
		t.Fatal("restarted node did not restore cluster metadata from disk")
	}
	_, body := getReport(t, nodes[0].ts.URL, "durable", "")
	if !bytes.Equal(body, want) {
		t.Errorf("post-restart report differs")
	}
}

// BenchmarkClusterReport compares a cold single-node report against a
// cold 3-node scatter/gather of the same trace — the scatter-overhead
// ratio the cluster bench suite gates on.
func BenchmarkClusterReport(b *testing.B) {
	tr := genTrace(b, "CC-b", 1, 7*24*time.Hour)

	b.Run("single", func(b *testing.B) {
		srv, ts := newTestServer(b)
		info := ingestTrace(b, ts, "bench", tr)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.Cache().InvalidatePrefix(info.Fingerprint + "|")
			_, _ = getReport(b, ts.URL, "bench", "")
		}
	})

	b.Run("scatter", func(b *testing.B) {
		nodes := newTestCluster(b, 3, nil)
		info := ingestTrace(b, nodes[0].ts, "bench", tr)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Drop the rendered report everywhere (the per-shard aggregates
			// stay warm, as they would on a long-lived cluster) so every
			// iteration pays the scatter, transport, and merge.
			for _, nd := range nodes {
				nd.srv.Cache().InvalidatePrefix(info.Fingerprint + "|")
			}
			_, _ = getReport(b, nodes[0].ts.URL, "bench", "")
		}
	})
}

// TestClusterRequestTracing is the distributed-tracing acceptance bar:
// one X-Request-Id rides a scatter/gather report end to end — echoed to
// the caller, recorded in the coordinator's request ring with
// scatter/shard-fetch/merge spans, and carried across the wire so the
// peers' rings hold their shard-partial requests under the same ID.
// Then, with the peers dead, the failed fetch attempts must land in the
// per-peer error series on /metrics.
func TestClusterRequestTracing(t *testing.T) {
	tr := genTrace(t, "CC-b", 7, 24*time.Hour)
	// Replication 1: every shard has exactly one owner, so the
	// coordinator must fetch non-local shards remotely — which makes the
	// cross-wire ID propagation and, after the kill, the dead-peer
	// failure attempts deterministic instead of replica-placement luck.
	nodes := newTestCluster(t, 3, func(i int, cfg *Config) { cfg.Replication = 1 })
	ingestTrace(t, nodes[0].ts, "traced", tr)

	req, err := http.NewRequest(http.MethodGet, nodes[0].ts.URL+"/v1/traces/traced/report", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-e2e-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "trace-e2e-1" {
		t.Fatalf("request id not echoed: %q", got)
	}
	if got := resp.Header.Get("X-Analysis"); got != "scatter" {
		t.Fatalf("X-Analysis %q, want scatter", got)
	}

	// The coordinator's ring entry links the whole scatter under the ID.
	var coord *obs.RequestRecord
	for _, rec := range nodes[0].srv.metrics.ring.Snapshot(0, 0) {
		if rec.ID == "trace-e2e-1" {
			r := rec
			coord = &r
			break
		}
	}
	if coord == nil {
		t.Fatal("coordinator ring has no record for trace-e2e-1")
	}
	if coord.Endpoint != "GET /v1/traces/{name}/report" {
		t.Errorf("coordinator record endpoint %q", coord.Endpoint)
	}
	spans := make(map[string]int)
	for _, sp := range coord.Spans {
		spans[sp.Name]++
	}
	if spans["scatter"] != 1 || spans["merge"] == 0 {
		t.Errorf("coordinator spans %v, want one scatter and a merge", spans)
	}
	if spans["shard-fetch"] != 3 {
		t.Errorf("coordinator shard-fetch spans %d, want one per shard", spans["shard-fetch"])
	}

	// The ID crossed the fleet client: peers recorded their shard-partial
	// requests under it.
	remote := 0
	for _, nd := range nodes[1:] {
		for _, rec := range nd.srv.metrics.ring.Snapshot(0, 0) {
			if rec.ID == "trace-e2e-1" && rec.Endpoint == "GET /internal/v1/shards/{name}/{shard}/partial" {
				remote++
			}
		}
	}
	if remote == 0 {
		t.Error("no peer ring entry carries the coordinator's request id")
	}

	// Dead peers: a fresh (uncached) scatter's failed attempts must show
	// up in the per-peer failure series. The answer may be degraded or
	// 502 depending on which shards the coordinator holds locally.
	nodes[1].kill()
	nodes[2].kill()
	// top=7 misses the result cache, forcing a fresh scatter; the shards
	// owned by the dead peers go missing and the answer degrades.
	code, hdr, _ := fetchRaw(t, nodes[0].ts.URL+"/v1/traces/traced/report?top=7")
	if code != http.StatusOK && code != http.StatusBadGateway {
		t.Fatalf("post-kill report: %d", code)
	}
	if code == http.StatusOK {
		if a := hdr.Get("X-Analysis"); a != "degraded" {
			t.Errorf("post-kill X-Analysis %q, want degraded", a)
		}
		if hdr.Get("X-Cluster-Missing-Shards") == "" {
			t.Error("degraded answer lists no missing shards")
		}
	}
	exp := scrapeMetrics(t, nodes[0].ts.URL)
	var failures float64
	for _, s := range exp.Find("swim_cluster_shard_fetch_failures_total") {
		if s.Label("peer") == "" {
			t.Errorf("failure sample missing peer label: %+v", s)
		}
		failures += s.Value
	}
	if failures == 0 {
		t.Error("dead-peer fetch attempts not in swim_cluster_shard_fetch_failures_total")
	}
}
