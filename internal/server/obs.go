package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// serverMetrics is the server's observability bundle: the metric
// registry every layer records into, the bounded ring of recent
// requests, and the instruments the middleware and cluster coordinator
// touch on hot paths. Store/cache/fleet series are registered as
// scrape-time collectors over the existing Stats snapshots, so the
// request path pays only for its own counters.
type serverMetrics struct {
	reg     *obs.Registry
	ring    *obs.RequestLog
	started time.Time
	build   obs.BuildInfo

	// Per-endpoint HTTP series, labeled by route pattern + status code.
	httpRequests  *obs.CounterVec   // swim_http_requests_total{endpoint,code}
	httpLatency   *obs.HistogramVec // swim_http_request_duration_seconds{endpoint}
	httpReqBytes  *obs.CounterVec   // swim_http_request_bytes_total{endpoint}
	httpRespBytes *obs.CounterVec   // swim_http_response_bytes_total{endpoint}
	httpErrors    *obs.CounterVec   // swim_http_request_errors_total{endpoint,code}
	panics        *obs.Counter
	slowRequests  *obs.Counter

	// Per-analysis-path series: which X-Analysis route a report took
	// (ingest-partial, disk-scan, scatter, degraded, ...).
	analysisRequests *obs.CounterVec   // swim_analysis_requests_total{path}
	analysisLatency  *obs.HistogramVec // swim_analysis_duration_seconds{path}

	// Cluster series the coordinator records directly.
	scatterLatency    *obs.Histogram    // swim_cluster_scatter_duration_seconds
	shardFetchLatency *obs.HistogramVec // swim_cluster_shard_fetch_duration_seconds{peer}
	shardFetchErrors  *obs.CounterVec   // swim_cluster_shard_fetch_failures_total{peer}

	// Background-maintenance series.
	compactionLatency *obs.Histogram // swim_compaction_sweep_duration_seconds
}

// latency histograms cover 10µs..100s at 5 bins/decade — the
// stats.LogHistogram discipline over the spans swimd requests occupy.
const (
	latBins   = 5
	latMinExp = -5
	latMaxExp = 2
)

// newServerMetrics builds the registry and registers the scrape-time
// collectors over the server's stats sources.
func newServerMetrics(s *Server, ringSize int) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg:     r,
		ring:    obs.NewRequestLog(ringSize),
		started: time.Now(),
		build:   obs.ReadBuildInfo(),

		httpRequests:  r.CounterVec("swim_http_requests_total", "HTTP requests served, by route pattern and status code.", "endpoint", "code"),
		httpLatency:   r.HistogramVec("swim_http_request_duration_seconds", "HTTP request latency by route pattern.", latBins, latMinExp, latMaxExp, "endpoint"),
		httpReqBytes:  r.CounterVec("swim_http_request_bytes_total", "Request body bytes read, by route pattern.", "endpoint"),
		httpRespBytes: r.CounterVec("swim_http_response_bytes_total", "Response body bytes written, by route pattern.", "endpoint"),
		httpErrors:    r.CounterVec("swim_http_request_errors_total", "HTTP requests answered with a 4xx/5xx status, by route pattern and status code.", "endpoint", "code"),
		panics:        r.Counter("swim_http_panics_total", "Handler panics recovered into 500s."),
		slowRequests:  r.Counter("swim_http_slow_requests_total", "Requests slower than the configured slow-request threshold."),

		analysisRequests: r.CounterVec("swim_analysis_requests_total", "Report computations by X-Analysis path.", "path"),
		analysisLatency:  r.HistogramVec("swim_analysis_duration_seconds", "Report latency by X-Analysis path.", latBins, latMinExp, latMaxExp, "path"),

		scatterLatency:    r.Histogram("swim_cluster_scatter_duration_seconds", "Scatter/gather latency for coordinated cluster reports.", latBins, latMinExp, latMaxExp),
		shardFetchLatency: r.HistogramVec("swim_cluster_shard_fetch_duration_seconds", "Per-peer shard-partial fetch latency.", latBins, latMinExp, latMaxExp, "peer"),
		shardFetchErrors:  r.CounterVec("swim_cluster_shard_fetch_failures_total", "Failed shard-partial fetch attempts by peer.", "peer"),

		compactionLatency: r.Histogram("swim_compaction_sweep_duration_seconds", "Background compaction sweep latency.", latBins, latMinExp, latMaxExp),
	}

	obs.RegisterRuntime(r, m.started)

	// Store gauges and lifetime counters over the existing snapshot.
	r.RegisterFunc("swim_store_traces", "Stored traces.", obs.KindGauge, func() []obs.Sample {
		st := s.store.Stats()
		return []obs.Sample{{Value: float64(st.Traces)}}
	})
	r.RegisterFunc("swim_store_jobs", "Total and hot-tier job counts.", obs.KindGauge, func() []obs.Sample {
		st := s.store.Stats()
		return []obs.Sample{
			{Labels: obs.L("tier", "total"), Value: float64(st.TotalJobs)},
			{Labels: obs.L("tier", "resident"), Value: float64(st.ResidentJobs)},
		}
	})
	r.RegisterFunc("swim_store_disk_bytes", "Committed on-disk segment bytes.", obs.KindGauge, func() []obs.Sample {
		st := s.store.Stats()
		return []obs.Sample{{Value: float64(st.DiskBytes)}}
	})
	r.RegisterFunc("swim_store_events_total", "Store lifecycle counters by event.", obs.KindCounter, func() []obs.Sample {
		st := s.store.Stats()
		return []obs.Sample{
			{Labels: obs.L("event", "ingests"), Value: float64(st.Ingests)},
			{Labels: obs.L("event", "rejected"), Value: float64(st.Rejected)},
			{Labels: obs.L("event", "appends"), Value: float64(st.Appends)},
			{Labels: obs.L("event", "append_rejected"), Value: float64(st.AppendRejected)},
			{Labels: obs.L("event", "spills"), Value: float64(st.Spills)},
			{Labels: obs.L("event", "evictions"), Value: float64(st.Evictions)},
			{Labels: obs.L("event", "reloads"), Value: float64(st.Reloads)},
			{Labels: obs.L("event", "compactions"), Value: float64(st.Compactions)},
			{Labels: obs.L("event", "segments_merged"), Value: float64(st.SegmentsMerged)},
			{Labels: obs.L("event", "blocks_refilled"), Value: float64(st.BlocksRefilled)},
		}
	})
	r.RegisterFunc("swim_append_sessions_open", "Live append sessions.", obs.KindGauge, func() []obs.Sample {
		return []obs.Sample{{Value: float64(s.store.OpenAppendSessions())}}
	})
	// Per-trace storage shape: segments, colseg blocks, bytes,
	// residency. Cardinality is bounded by the store's max-traces knob.
	r.RegisterFunc("swim_storage_trace_segments", "Segment files per stored trace.", obs.KindGauge, func() []obs.Sample {
		return traceStorageSamples(s, func(ts TraceStorage) float64 { return float64(ts.Segments) })
	})
	r.RegisterFunc("swim_storage_trace_blocks", "Columnar blocks per stored trace.", obs.KindGauge, func() []obs.Sample {
		return traceStorageSamples(s, func(ts TraceStorage) float64 { return float64(ts.Blocks) })
	})
	r.RegisterFunc("swim_storage_trace_bytes", "On-disk bytes per stored trace.", obs.KindGauge, func() []obs.Sample {
		return traceStorageSamples(s, func(ts TraceStorage) float64 { return float64(ts.Bytes) })
	})

	// Cache series: counters plus the derived hit ratios.
	r.RegisterFunc("swim_cache_entries", "Result-cache occupancy.", obs.KindGauge, func() []obs.Sample {
		st := s.cache.Stats()
		return []obs.Sample{
			{Labels: obs.L("tier", "results"), Value: float64(st.Entries)},
			{Labels: obs.L("tier", "aggregates"), Value: float64(st.Aggregates)},
		}
	})
	r.RegisterFunc("swim_cache_events_total", "Result-cache lifetime counters by event.", obs.KindCounter, func() []obs.Sample {
		st := s.cache.Stats()
		return []obs.Sample{
			{Labels: obs.L("event", "hits"), Value: float64(st.Hits)},
			{Labels: obs.L("event", "misses"), Value: float64(st.Misses)},
			{Labels: obs.L("event", "coalesced"), Value: float64(st.Coalesced)},
			{Labels: obs.L("event", "evictions"), Value: float64(st.Evictions)},
			{Labels: obs.L("event", "aggregate_hits"), Value: float64(st.AggregateHits)},
			{Labels: obs.L("event", "aggregate_misses"), Value: float64(st.AggregateMisses)},
		}
	})
	r.RegisterFunc("swim_cache_hit_ratio", "Result-cache hit ratio per tier (hits+coalesced over lookups).", obs.KindGauge, func() []obs.Sample {
		st := s.cache.Stats()
		return []obs.Sample{
			{Labels: obs.L("tier", "results"), Value: ratio(st.Hits+st.Coalesced, st.Hits+st.Coalesced+st.Misses)},
			{Labels: obs.L("tier", "aggregates"), Value: ratio(st.AggregateHits, st.AggregateHits+st.AggregateMisses)},
		}
	})

	// Fleet series only exist in cluster mode.
	if s.cluster != nil {
		f := s.cluster.fleet
		r.RegisterFunc("swim_fleet_peer_alive", "Per-peer last-known liveness (1 = reachable).", obs.KindGauge, func() []obs.Sample {
			st := f.Stats()
			out := make([]obs.Sample, 0, len(st.Peers))
			for _, p := range st.Peers {
				v := 0.0
				if p.Alive {
					v = 1
				}
				out = append(out, obs.Sample{Labels: obs.L("peer", p.ID), Value: v})
			}
			return out
		})
		r.RegisterFunc("swim_fleet_peer_requests_total", "Per-peer transport attempts by outcome.", obs.KindCounter, func() []obs.Sample {
			st := f.Stats()
			out := make([]obs.Sample, 0, 3*len(st.Peers))
			for _, p := range st.Peers {
				if p.Self {
					continue
				}
				out = append(out,
					obs.Sample{Labels: obs.L("peer", p.ID, "outcome", "requests"), Value: float64(p.Requests)},
					obs.Sample{Labels: obs.L("peer", p.ID, "outcome", "retries"), Value: float64(p.Retries)},
					obs.Sample{Labels: obs.L("peer", p.ID, "outcome", "failures"), Value: float64(p.Failures)},
				)
			}
			return out
		})
		r.RegisterFunc("swim_fleet_peer_latency_ms", "Per-peer EWMA of successful request latency.", obs.KindGauge, func() []obs.Sample {
			st := f.Stats()
			out := make([]obs.Sample, 0, len(st.Peers))
			for _, p := range st.Peers {
				if p.Self {
					continue
				}
				out = append(out, obs.Sample{Labels: obs.L("peer", p.ID), Value: p.LatencyMS})
			}
			return out
		})
		r.RegisterFunc("swim_fleet_events_total", "Cluster protocol counters by event.", obs.KindCounter, func() []obs.Sample {
			st := f.Stats()
			return []obs.Sample{
				{Labels: obs.L("event", "scatters"), Value: float64(st.Scatters)},
				{Labels: obs.L("event", "shard_fetches"), Value: float64(st.ShardFetches)},
				{Labels: obs.L("event", "shard_failures"), Value: float64(st.ShardFailures)},
				{Labels: obs.L("event", "merges"), Value: float64(st.Merges)},
				{Labels: obs.L("event", "degraded"), Value: float64(st.Degraded)},
				{Labels: obs.L("event", "remote_cache_hits"), Value: float64(st.RemoteCacheHits)},
				{Labels: obs.L("event", "meta_broadcasts"), Value: float64(st.MetaBroadcasts)},
			}
		})
	}
	return m
}

func traceStorageSamples(s *Server, pick func(TraceStorage) float64) []obs.Sample {
	gauges := s.store.StorageGauges()
	out := make([]obs.Sample, 0, len(gauges))
	for _, ts := range gauges {
		out = append(out, obs.Sample{Labels: obs.L("trace", ts.Name), Value: pick(ts)})
	}
	return out
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}

// handleDebugRequests serves GET /v1/debug/requests: the recent-request
// ring newest-first. min_ms=D keeps only requests at least that slow
// (the slow-query view); limit=N caps the count.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	minMS, err := queryFloat(r, "min_ms", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	limit, err := queryInt(r, "limit", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	recs := s.metrics.ring.Snapshot(minMS, limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"count":    len(recs),
		"requests": recs,
	})
}

// ServerInfo is the /v1/stats server section: when the process came
// up, how long it has been serving, and what build it runs.
type ServerInfo struct {
	StartedAt     time.Time `json:"started_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	obs.BuildInfo
}

// EndpointStats is one route pattern's aggregate request series in
// /v1/stats, derived from the same instruments /metrics renders.
type EndpointStats struct {
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors,omitempty"`
	AvgMS         float64 `json:"avg_ms"`
	RequestBytes  uint64  `json:"request_bytes,omitempty"`
	ResponseBytes uint64  `json:"response_bytes,omitempty"`
}

// serverInfo assembles the stats server section.
func (m *serverMetrics) serverInfo() ServerInfo {
	return ServerInfo{
		StartedAt:     m.started.UTC().Truncate(time.Second),
		UptimeSeconds: float64(int64(time.Since(m.started).Seconds()*1000)) / 1000,
		BuildInfo:     m.build,
	}
}

// endpointStats folds the per-(endpoint, code) counters into a
// per-endpoint summary for the JSON stats payload.
func (m *serverMetrics) endpointStats() map[string]EndpointStats {
	out := make(map[string]EndpointStats)
	for key, n := range m.httpRequests.Snapshot() {
		endpoint, _, ok := cutLast(key, "|")
		if !ok {
			continue
		}
		st := out[endpoint]
		st.Requests += n
		out[endpoint] = st
	}
	for key, n := range m.httpErrors.Snapshot() {
		endpoint, _, ok := cutLast(key, "|")
		if !ok {
			continue
		}
		st := out[endpoint]
		st.Errors += n
		out[endpoint] = st
	}
	for endpoint, h := range m.httpLatency.Snapshot() {
		st := out[endpoint]
		if h.Count > 0 {
			st.AvgMS = float64(int64(h.Sum/float64(h.Count)*1e6)) / 1000
		}
		out[endpoint] = st
	}
	for endpoint, n := range m.httpReqBytes.Snapshot() {
		st := out[endpoint]
		st.RequestBytes = n
		out[endpoint] = st
	}
	for endpoint, n := range m.httpRespBytes.Snapshot() {
		st := out[endpoint]
		st.ResponseBytes = n
		out[endpoint] = st
	}
	return out
}

// analysisStats folds the per-X-Analysis-path counters for /v1/stats.
func (m *serverMetrics) analysisStats() map[string]obs.HistogramSummary {
	sum := m.analysisLatency.Snapshot()
	// Paths counted but never timed (shouldn't happen — both are
	// recorded together) still appear with a zero summary.
	for path := range m.analysisRequests.Snapshot() {
		if _, ok := sum[path]; !ok {
			sum[path] = obs.HistogramSummary{}
		}
	}
	return sum
}

// cutLast splits s at the final occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	for i := len(s) - len(sep); i >= 0; i-- {
		if s[i:i+len(sep)] == sep {
			return s[:i], s[i+len(sep):], true
		}
	}
	return s, "", false
}

// recordShardFetch is the cluster coordinator's per-peer hook: one
// remote shard-partial attempt chain, its latency, and whether it
// failed.
func (m *serverMetrics) recordShardFetch(peer string, d time.Duration, failed bool) {
	m.shardFetchLatency.With(peer).Observe(d.Seconds())
	if failed {
		m.shardFetchErrors.With(peer).Inc()
	}
}

// scanNumbers converts response-header scan evidence into the ring's
// record form (nil when the request scanned nothing).
func scanNumbers(h http.Header) *obs.ScanNumbers {
	ev := parseScanEvidence(h)
	if ev == nil {
		return nil
	}
	return &obs.ScanNumbers{
		Segments:       ev.segments,
		SegmentsPruned: ev.segmentsPruned,
		Blocks:         ev.blocks,
		BlocksPruned:   ev.blocksPruned,
		Workers:        ev.workers,
	}
}

// spanDetail formats a span's key=value detail tail.
func spanDetail(pairs ...any) string {
	out := ""
	for i := 0; i+1 < len(pairs); i += 2 {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%v=%v", pairs[i], pairs[i+1])
	}
	return out
}

// statusLabel renders a status code as a metrics label.
func statusLabel(code int) string { return strconv.Itoa(code) }
