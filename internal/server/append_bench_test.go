package server

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/trace"
)

// BenchmarkAppendIngest prices the live-ingest path: the same two-week
// trace committed through the durable store as one upload ("oneshot")
// versus eight appended batches ("batched" — eight manifest commits,
// aggregate refreezes, and fingerprint extensions on one open
// generation). The batched/oneshot ratio is the overhead of incremental
// durability; benchtrend -suite append records it in BENCH_APPEND.json
// and gates it with -max-append-overhead.
func BenchmarkAppendIngest(b *testing.B) {
	tr := genTrace(b, "CC-b", 1, 14*24*time.Hour)
	tr.Sort()
	newDisk := func(b *testing.B) *Server {
		b.Helper()
		s, err := New(Config{DataDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		return s
	}
	b.Run("oneshot", func(b *testing.B) {
		s := newDisk(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("bench-%d", i)
			if _, err := s.store.Put(name, cloneTrace(tr)); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			s.store.Delete(name) // keep the store at one live trace
			b.StartTimer()
		}
	})
	b.Run("batched", func(b *testing.B) {
		s := newDisk(b)
		batches := splitBatches(tr, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("bench-%d", i)
			for _, batch := range batches {
				src := trace.NewSliceSource(trSlice(tr, batch))
				if _, _, _, err := s.store.Append(name, src); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s.store.Delete(name)
			b.StartTimer()
		}
	})
}

// BenchmarkWindowedReport is the rolling-window companion datapoint: a
// cold out-of-core report over the whole 14-day trace ("full") versus a
// cold report over a narrow 6-hour slice ("window"), where segment
// submit spans and colseg zone maps prune most of the disk before a job
// is decoded. The trace is spilled (hot tier of one job) so both arms
// scan segments rather than finalize a resident aggregate; the cache is
// purged between iterations so every request pays the scan its window
// actually requires.
func BenchmarkWindowedReport(b *testing.B) {
	cfg := Config{DataDir: b.TempDir(), MaxTotalJobs: 1, SegmentJobs: 2000}
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	tr := genTrace(b, "CC-b", 1, 14*24*time.Hour)
	tr.Sort()
	ingestTrace(b, ts, "bench", tr)

	start := tr.Meta.Start.UTC()
	run := func(b *testing.B, url string) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			get(b, url)
			b.StopTimer()
			s.cache.Purge() // drops the parked window aggregates too
			b.StartTimer()
		}
	}
	b.Run("full", func(b *testing.B) {
		run(b, ts.URL+"/v1/traces/bench/report")
	})
	b.Run("window", func(b *testing.B) {
		from, to := start.Add(7*24*time.Hour), start.Add(7*24*time.Hour+6*time.Hour)
		run(b, fmt.Sprintf("%s/v1/traces/bench/report?from=%d&to=%d", ts.URL, from.Unix(), to.Unix()))
	})
}
