package server

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/storage"
)

// Background compaction, the serving half. storage.CompactTrace does
// the rewrite (and proves it preserved the fingerprint); this file
// decides which traces to rewrite and serializes the commit against
// everything else that swaps a trace's state — re-ingests, spills, and
// live append sessions — using the same entry-swap protocol Put uses.

// Compact rewrites every eligible fragmented trace into a packed
// generation and returns how many committed. A trace is eligible when
// it is disk-resident, has no open append session, and the policy's
// fragmentation triggers fire. The expensive rewrite runs outside the
// store lock; the commit (a manifest rename plus an entry swap) runs
// under it, re-checking that the trace is still the one that was
// scanned and invalidating any append session that opened mid-rewrite.
// Per-trace failures are collected, not fatal: one corrupt trace must
// not stop the others from compacting.
func (s *Store) Compact(policy storage.CompactPolicy) (int, error) {
	if s.backing == nil {
		return 0, nil
	}
	type candidate struct {
		name   string
		fp     string
		stored *storage.Trace
	}
	var cands []candidate
	s.mu.RLock()
	for name, e := range s.entries {
		if e.stored == nil {
			continue
		}
		if _, open := s.appendStates[name]; open {
			// An open session is mid-growth: compacting now would only
			// invalidate it (costing the client a session replay) to pack
			// a generation the next batch immediately supersedes.
			continue
		}
		cands = append(cands, candidate{name, e.info.Fingerprint, e.stored})
	}
	s.mu.RUnlock()
	sort.Slice(cands, func(i, k int) bool { return cands[i].name < cands[k].name })

	n := 0
	var errs []error
	for _, c := range cands {
		if !s.backing.NeedsCompaction(c.stored, policy) {
			continue
		}
		committed, err := s.compactOne(c.name, c.fp, c.stored)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if committed {
			n++
		}
	}
	return n, errors.Join(errs...)
}

// ReapIdleAppendSessions closes append sessions that have not
// committed a batch for at least olderThan, returning how many were
// closed. Sessions are cached per name for the life of the process (the
// O(committed jobs) open replay should run once, not per batch), but an
// open session also pins its trace uncompactable — Compact skips
// mid-growth traces — so without a reaper a single append would exempt
// a trace from background compaction forever. The sweep loop calls this
// with its own interval before each sweep: a feed that pauses for one
// full interval frees its trace to compact, and the next append
// transparently reopens against the packed generation (whose replay
// hashes to the same committed identity).
func (s *Store) ReapIdleAppendSessions(olderThan time.Duration) int {
	cutoff := time.Now().Add(-olderThan).UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for name, st := range s.appendStates {
		if st.lastBatch.Load() <= cutoff {
			s.invalidateAppendLocked(name)
			n++
		}
	}
	return n
}

// compactOne rewrites one trace and commits the packed generation,
// unless the trace was replaced while the rewrite ran (not an error —
// the replacement is a fresh generation with its own fragmentation
// history, picked up on a later sweep).
func (s *Store) compactOne(name, fp string, stored *storage.Trace) (bool, error) {
	sealed, res, err := s.backing.CompactTrace(stored)
	if err != nil {
		return false, fmt.Errorf("server: compacting %q: %w", name, err)
	}

	s.mu.Lock()
	cur, ok := s.entries[name]
	if !ok || cur.stored == nil || cur.info.Fingerprint != fp {
		// Lost the race with a re-ingest, append, or delete: the staged
		// generation describes content the store no longer serves.
		s.mu.Unlock()
		sealed.Abort()
		return false, nil
	}
	newStored, err := sealed.Commit()
	if err != nil {
		s.mu.Unlock()
		sealed.Abort()
		return false, fmt.Errorf("server: committing compaction of %q: %w", name, err)
	}
	// A session that opened after the candidate snapshot holds the OLD
	// generation's appender; left alone, its next batch would commit a
	// manifest regressing this one. Invalidate it exactly as Put does —
	// the in-flight batch sees the stale flag under this same lock and
	// retries against the compacted state.
	s.invalidateAppendLocked(name)
	e := &entry{
		t:         cur.t,
		info:      cur.info,
		partial:   cur.partial,
		recovered: cur.recovered,
		stored:    newStored,
	}
	s.installLocked(name, e)
	s.compactions++
	if d := res.SegmentsBefore - res.SegmentsAfter; d > 0 {
		s.segmentsMerged += uint64(d)
	}
	if d := res.BlocksBefore - res.BlocksAfter; d > 0 {
		s.blocksRefilled += uint64(d)
	}
	s.mu.Unlock()
	return true, nil
}
