package server

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// middleware wraps every handler with panic recovery, request tracing,
// and metrics accounting. A panic in a handler must not take down a
// server holding other clients' traces: it becomes a 500 on that
// request and a logged stack.
//
// Every request gets a trace ID — the caller's X-Request-Id when it is
// well-formed, a minted one otherwise — echoed on the response, carried
// through the handler's context (the fleet client forwards it to peers),
// and attached to every log line. Requests are recorded into the
// recent-request ring; only slow or failing ones are logged, so steady
// traffic costs no log volume.
type middleware struct {
	logger  *slog.Logger
	metrics *serverMetrics
	// slowAfter is the slow-request threshold: requests at least this
	// slow are logged and counted even when they succeed.
	slowAfter time.Duration

	requests  atomic.Uint64
	status2xx atomic.Uint64
	status4xx atomic.Uint64
	status5xx atomic.Uint64
}

// statusWriter records the status code and body bytes written by the
// handler. It forwards Flush and Hijack to the underlying writer (via
// ResponseController, which unwraps) so streaming and upgrade handlers
// keep working behind the instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Flush forwards to the underlying writer when it supports flushing
// (directly or through further wrappers); otherwise it is a no-op.
func (w *statusWriter) Flush() {
	_ = http.NewResponseController(w.ResponseWriter).Flush()
}

// Hijack forwards connection takeover to the underlying writer.
func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	return http.NewResponseController(w.ResponseWriter).Hijack()
}

// countingReader counts the request-body bytes a handler actually read.
type countingReader struct {
	rc io.ReadCloser
	n  int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) Close() error { return c.rc.Close() }

func (m *middleware) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.requests.Add(1)
		rt := obs.NewRequest(obs.SanitizeRequestID(r.Header.Get("X-Request-Id")))
		w.Header().Set("X-Request-Id", rt.ID())
		r = r.WithContext(obs.WithRequest(r.Context(), rt))
		body := &countingReader{rc: r.Body}
		r.Body = body
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			rec := recover()
			if rec != nil {
				if m.metrics != nil {
					m.metrics.panics.Inc()
				}
				if m.logger != nil {
					m.logger.Error("panic serving request",
						"request_id", rt.ID(),
						"method", r.Method,
						"path", r.URL.Path,
						"panic", fmt.Sprint(rec),
						"stack", string(debug.Stack()))
				}
				if sw.status == 0 {
					writeJSON(sw, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("internal: %v", rec)})
				}
			}
			switch {
			case sw.status >= 500:
				m.status5xx.Add(1)
			case sw.status >= 400:
				m.status4xx.Add(1)
			default:
				m.status2xx.Add(1)
			}
			m.observe(r, rt, sw, body.n, time.Since(start))
		}()
		next.ServeHTTP(sw, r)
	})
}

// observe records one finished request into the metrics registry, the
// recent-request ring, and — when slow or failing — the log.
func (m *middleware) observe(r *http.Request, rt *obs.Request, sw *statusWriter, bytesIn int64, d time.Duration) {
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	endpoint := rt.Endpoint()
	if endpoint == "" {
		endpoint = "unmatched"
	}
	analysis := sw.Header().Get("X-Analysis")
	cache := sw.Header().Get("X-Cache")
	slow := m.slowAfter > 0 && d >= m.slowAfter

	if m.metrics != nil {
		code := statusLabel(status)
		m.metrics.httpRequests.With(endpoint, code).Inc()
		m.metrics.httpLatency.With(endpoint).Observe(d.Seconds())
		if bytesIn > 0 {
			m.metrics.httpReqBytes.With(endpoint).Add(uint64(bytesIn))
		}
		if sw.bytes > 0 {
			m.metrics.httpRespBytes.With(endpoint).Add(uint64(sw.bytes))
		}
		if status >= 400 {
			m.metrics.httpErrors.With(endpoint, code).Inc()
		}
		if analysis != "" {
			m.metrics.analysisRequests.With(analysis).Inc()
			m.metrics.analysisLatency.With(analysis).Observe(d.Seconds())
		}
		if slow {
			m.metrics.slowRequests.Inc()
		}
		m.metrics.ring.Add(obs.RequestRecord{
			ID:       rt.ID(),
			Time:     time.Now().UTC(),
			Method:   r.Method,
			Path:     r.URL.Path,
			Endpoint: endpoint,
			Status:   status,
			MS:       float64(d.Microseconds()) / 1000,
			BytesIn:  bytesIn,
			BytesOut: sw.bytes,
			Analysis: analysis,
			Cache:    cache,
			Scan:     scanNumbers(sw.Header()),
			Spans:    rt.Spans(),
		})
	}

	if m.logger == nil || (!slow && status < 500) {
		return
	}
	attrs := []any{
		"request_id", rt.ID(),
		"method", r.Method,
		"path", r.URL.Path,
		"endpoint", endpoint,
		"status", status,
		"duration", d.Round(time.Microsecond),
		"bytes_in", bytesIn,
		"bytes_out", sw.bytes,
	}
	if analysis != "" {
		attrs = append(attrs, "analysis", analysis)
	}
	switch {
	case status >= 500:
		m.logger.Error("request failed", attrs...)
	default:
		m.logger.Warn("slow request", attrs...)
	}
}

// RequestStats is the middleware's lifetime counters.
type RequestStats struct {
	Requests  uint64 `json:"requests"`
	Status2xx uint64 `json:"status_2xx"`
	Status4xx uint64 `json:"status_4xx"`
	Status5xx uint64 `json:"status_5xx"`
}

func (m *middleware) stats() RequestStats {
	return RequestStats{
		Requests:  m.requests.Load(),
		Status2xx: m.status2xx.Load(),
		Status4xx: m.status4xx.Load(),
		Status5xx: m.status5xx.Load(),
	}
}
