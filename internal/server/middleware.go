package server

import (
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// middleware wraps every handler with panic recovery, status accounting,
// and optional request logging. A panic in a handler must not take down
// a server holding other clients' traces: it becomes a 500 on that
// request and a logged stack.
type middleware struct {
	logger    *log.Logger
	requests  atomic.Uint64
	status2xx atomic.Uint64
	status4xx atomic.Uint64
	status5xx atomic.Uint64
}

// statusWriter records the status code written by the handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (m *middleware) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				if m.logger != nil {
					m.logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				}
				if sw.status == 0 {
					writeJSON(sw, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("internal: %v", rec)})
				}
			}
			switch {
			case sw.status >= 500:
				m.status5xx.Add(1)
			case sw.status >= 400:
				m.status4xx.Add(1)
			default:
				m.status2xx.Add(1)
			}
			if m.logger != nil {
				m.logger.Printf("%s %s -> %d (%v)", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// RequestStats is the middleware's lifetime counters.
type RequestStats struct {
	Requests  uint64 `json:"requests"`
	Status2xx uint64 `json:"status_2xx"`
	Status4xx uint64 `json:"status_4xx"`
	Status5xx uint64 `json:"status_5xx"`
}

func (m *middleware) stats() RequestStats {
	return RequestStats{
		Requests:  m.requests.Load(),
		Status2xx: m.status2xx.Load(),
		Status4xx: m.status4xx.Load(),
		Status5xx: m.status5xx.Load(),
	}
}
