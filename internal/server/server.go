package server

import (
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/storage"
)

// Config sizes a Server.
type Config struct {
	// MaxTraces / MaxTotalJobs bound the trace store (zero: defaults).
	// With DataDir set, MaxTotalJobs bounds only the in-memory hot tier:
	// bigger uploads spill to disk instead of being rejected.
	MaxTraces    int
	MaxTotalJobs int
	// CacheEntries bounds the result cache (zero: default).
	CacheEntries int
	// MaxUploadBytes caps one ingest request's body (zero: default
	// 1 GiB). The job-count budget bounds decoded jobs; this bounds the
	// raw bytes a single newline-free request could make the line
	// reader buffer.
	MaxUploadBytes int64
	// DisablePartials turns off ingest-time partial aggregation: stored
	// traces then carry no precomputed aggregate (saving ~24 B/job of
	// heap) and cold reports scan the stored jobs, shard-parallel when
	// the request sets shards=K.
	DisablePartials bool
	// DataDir enables the durable storage engine rooted there: traces
	// are written through to checksummed on-disk segments with partial
	// aggregates persisted alongside, recovered (and verified) at
	// startup, and served out-of-core when they exceed the hot tier.
	// Empty keeps the pre-durability behavior: memory only, nothing
	// survives a restart.
	DataDir string
	// SegmentJobs caps jobs per on-disk segment file (zero: the storage
	// engine's default). Segments are the out-of-core sharding unit.
	SegmentJobs int
	// SegmentCodec selects the on-disk segment format for newly written
	// traces: storage.CodecColumnar (the default when empty) or
	// storage.CodecJSONL. Existing segments always decode with the codec
	// their manifest records, so changing this never strands old data.
	SegmentCodec string
	// CompactInterval spaces the background compaction sweeps that
	// rewrite fragmented many-segment generations (a long-appended
	// trace's usual shape) into packed ones. Zero disables compaction;
	// it needs DataDir. Rewrites preserve fingerprints exactly, so
	// compaction is invisible to every read path.
	CompactInterval time.Duration
	// CompactMinSegments / CompactMinFill tune the fragmentation
	// triggers (zero: the storage engine's defaults). See
	// storage.CompactPolicy.
	CompactMinSegments int
	CompactMinFill     float64
	// Logger receives one line per request; nil disables request logging.
	Logger *log.Logger

	// Peers enables cluster mode: the full membership as the -peers flag
	// syntax (id=url,...), including this node. Empty keeps the server
	// single-node; every field below is then ignored.
	Peers string
	// NodeID is this process's identity in Peers.
	NodeID string
	// Replication is how many owners each trace shard is placed on
	// (zero: fleet.DefaultReplication; clamped to the cluster size).
	Replication int
	// ClusterShards is the default shard count for newly ingested
	// cluster traces (zero: one per member).
	ClusterShards int
	// PeerTimeout bounds one peer request attempt (zero:
	// fleet.DefaultTimeout).
	PeerTimeout time.Duration
	// PeerProbeInterval spaces the background liveness probes (zero:
	// fleet.DefaultProbeInterval; negative: probing disabled).
	PeerProbeInterval time.Duration
}

// DefaultMaxUploadBytes bounds ingest bodies when the configuration
// leaves it zero: comfortably above a full-budget trace (~250 B/job at
// the default 2M-job budget) while capping what one request can buffer.
const DefaultMaxUploadBytes = 1 << 30

// Server owns the trace store, the result cache, and the generation job
// registry, and exposes them over HTTP/JSON:
//
//	GET    /healthz                     liveness
//	GET    /v1/stats                    store + cache + request counters
//	GET    /v1/traces                   list stored traces
//	POST   /v1/traces/{name}            streaming JSONL ingest
//	POST   /v1/traces/{name}/append     live batched JSONL append
//	GET    /v1/traces/{name}            one trace's identity
//	DELETE /v1/traces/{name}            drop a trace (and its segments)
//	GET    /v1/traces/{name}/report     the study's figures/tables (cached;
//	                                    from/to/window select a submit-time slice)
//	GET    /v1/traces/{name}/synth      SWIM synthesis + fidelity (cached)
//	GET    /v1/traces/{name}/replay     simulated replay metrics (cached)
//	POST   /v1/generate                 async calibrated-workload generation
//	GET    /v1/jobs                     list generation jobs
//	GET    /v1/jobs/{id}                one generation job's progress
type Server struct {
	store     *Store
	cache     *ResultCache
	jobs      *jobRegistry
	mux       *http.ServeMux
	mw        *middleware
	maxUpload int64
	backing   *storage.Store
	recovered []TraceInfo
	// cluster is the scatter/gather coordinator (nil single-node). With
	// it set the server also exposes the /internal/v1 peer protocol.
	cluster *clusterCoordinator
	logger  *log.Logger

	// compactStop/compactWG manage the background compaction loop; nil
	// channel means the loop never started.
	compactStop chan struct{}
	compactWG   sync.WaitGroup
}

// New assembles a server. With cfg.DataDir set it opens (creating if
// needed) and recovers the durable store first; recovery results are
// logged through cfg.Logger and available via Recovered.
func New(cfg Config) (*Server, error) {
	maxUpload := cfg.MaxUploadBytes
	if maxUpload <= 0 {
		maxUpload = DefaultMaxUploadBytes
	}
	s := &Server{
		store:     NewStore(cfg.MaxTraces, cfg.MaxTotalJobs),
		cache:     NewResultCache(cfg.CacheEntries),
		jobs:      newJobRegistry(),
		mux:       http.NewServeMux(),
		mw:        &middleware{logger: cfg.Logger},
		maxUpload: maxUpload,
		logger:    cfg.Logger,
	}
	if cfg.DisablePartials {
		s.store.DisablePartials()
	}
	if cfg.DataDir != "" {
		backing, rec, err := storage.Open(cfg.DataDir, storage.Options{SegmentJobs: cfg.SegmentJobs, Codec: cfg.SegmentCodec})
		if err != nil {
			return nil, fmt.Errorf("server: opening data dir: %w", err)
		}
		s.backing = backing
		s.store.AttachBacking(backing, rec.Traces)
		s.recovered = s.store.List()
		if cfg.Logger != nil {
			for _, d := range rec.Dropped {
				cfg.Logger.Printf("recovery dropped trace %q: %s", d.Name, d.Reason)
			}
			for _, tr := range rec.Trimmed {
				cfg.Logger.Printf("recovery trimmed %d uncommitted byte(s) from trace %q (%s)", tr.Bytes, tr.Name, tr.File)
			}
			cfg.Logger.Printf("recovered %d traces from %s", len(rec.Traces), cfg.DataDir)
		}
		if cfg.CompactInterval > 0 {
			s.compactStop = make(chan struct{})
			s.compactWG.Add(1)
			go s.compactLoop(cfg.CompactInterval, storage.CompactPolicy{
				MinSegments: cfg.CompactMinSegments,
				MinFill:     cfg.CompactMinFill,
			})
		}
	}
	if cfg.Peers != "" {
		peers, err := fleet.ParsePeers(cfg.Peers)
		if err != nil {
			return nil, err
		}
		f, err := fleet.New(fleet.Config{
			NodeID:        cfg.NodeID,
			Peers:         peers,
			Replication:   cfg.Replication,
			Shards:        cfg.ClusterShards,
			Timeout:       cfg.PeerTimeout,
			ProbeInterval: cfg.PeerProbeInterval,
		})
		if err != nil {
			return nil, err
		}
		s.cluster = newClusterCoordinator(s, f)
		if err := s.cluster.restore(); err != nil {
			return nil, err
		}
		// The peer protocol: shard replica writes, binary shard-partial
		// reads, metadata gossip, and cluster cache peeks. Registered only
		// in cluster mode, so a single-node swimd's surface is unchanged.
		s.mux.HandleFunc("POST /internal/v1/shards/{name}/{shard}", s.handleShardIngest)
		s.mux.HandleFunc("POST /internal/v1/shards/{name}/{shard}/append", s.handleShardAppend)
		s.mux.HandleFunc("GET /internal/v1/shards/{name}/{shard}/partial", s.handleShardPartial)
		s.mux.HandleFunc("DELETE /internal/v1/shards/{name}/{shard}", s.handleShardDelete)
		s.mux.HandleFunc("PUT /internal/v1/meta/{name}", s.handleMetaPut)
		s.mux.HandleFunc("GET /internal/v1/meta/{name}", s.handleMetaGet)
		s.mux.HandleFunc("DELETE /internal/v1/meta/{name}", s.handleMetaDelete)
		s.mux.HandleFunc("GET /internal/v1/cache", s.handleCachePeek)
		s.mux.HandleFunc("PUT /internal/v1/cache", s.handleCachePut)
		f.Start()
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/traces", s.handleListTraces)
	s.mux.HandleFunc("POST /v1/traces/{name}", s.handleIngest)
	s.mux.HandleFunc("POST /v1/traces/{name}/append", s.handleAppend)
	s.mux.HandleFunc("GET /v1/traces/{name}", s.handleTraceInfo)
	s.mux.HandleFunc("DELETE /v1/traces/{name}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/traces/{name}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/traces/{name}/synth", s.handleSynth)
	s.mux.HandleFunc("GET /v1/traces/{name}/replay", s.handleReplay)
	s.mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	return s, nil
}

// Handler returns the server's HTTP handler with middleware applied.
func (s *Server) Handler() http.Handler {
	return s.mw.wrap(s.mux)
}

// Close flushes nothing — every durable commit syncs before it returns
// — but closes the storage engine so late writers fail fast instead of
// racing a shutdown. Call after the HTTP server has drained (its
// Shutdown waits for in-flight uploads, whose manifests therefore
// commit before this runs).
func (s *Server) Close() error {
	if s.cluster != nil {
		s.cluster.fleet.Close()
	}
	if s.compactStop != nil {
		close(s.compactStop)
		s.compactWG.Wait()
	}
	if s.backing != nil {
		return s.backing.Close()
	}
	return nil
}

// compactLoop sweeps the store on a fixed cadence, rewriting whatever
// the policy deems fragmented. Runs until Close; a sweep in flight
// finishes before Close returns, so no rewrite races the storage
// engine's shutdown.
func (s *Server) compactLoop(interval time.Duration, policy storage.CompactPolicy) {
	defer s.compactWG.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.compactStop:
			return
		case <-ticker.C:
			// Sessions idle for a full interval release their traces to
			// this sweep; active feeds keep refreshing lastBatch and stay
			// exempt.
			s.store.ReapIdleAppendSessions(interval)
			n, err := s.store.Compact(policy)
			if err != nil && s.logger != nil {
				s.logger.Printf("compaction sweep: %v", err)
			}
			if n > 0 && s.logger != nil {
				s.logger.Printf("compacted %d trace(s)", n)
			}
		}
	}
}

// Recovered lists the traces the durable store restored at startup.
func (s *Server) Recovered() []TraceInfo { return s.recovered }

// Store exposes the trace store (for preloading at startup and tests).
func (s *Server) Store() *Store { return s.store }

// Cache exposes the result cache (for stats and tests).
func (s *Server) Cache() *ResultCache { return s.cache }

// Fleet exposes the cluster layer, nil when single-node (for tests).
func (s *Server) Fleet() *fleet.Fleet {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.fleet
}
