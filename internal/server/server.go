package server

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Config sizes a Server.
type Config struct {
	// MaxTraces / MaxTotalJobs bound the trace store (zero: defaults).
	// With DataDir set, MaxTotalJobs bounds only the in-memory hot tier:
	// bigger uploads spill to disk instead of being rejected.
	MaxTraces    int
	MaxTotalJobs int
	// CacheEntries bounds the result cache (zero: default).
	CacheEntries int
	// MaxUploadBytes caps one ingest request's body (zero: default
	// 1 GiB). The job-count budget bounds decoded jobs; this bounds the
	// raw bytes a single newline-free request could make the line
	// reader buffer.
	MaxUploadBytes int64
	// DisablePartials turns off ingest-time partial aggregation: stored
	// traces then carry no precomputed aggregate (saving ~24 B/job of
	// heap) and cold reports scan the stored jobs, shard-parallel when
	// the request sets shards=K.
	DisablePartials bool
	// DataDir enables the durable storage engine rooted there: traces
	// are written through to checksummed on-disk segments with partial
	// aggregates persisted alongside, recovered (and verified) at
	// startup, and served out-of-core when they exceed the hot tier.
	// Empty keeps the pre-durability behavior: memory only, nothing
	// survives a restart.
	DataDir string
	// SegmentJobs caps jobs per on-disk segment file (zero: the storage
	// engine's default). Segments are the out-of-core sharding unit.
	SegmentJobs int
	// SegmentCodec selects the on-disk segment format for newly written
	// traces: storage.CodecColumnar (the default when empty) or
	// storage.CodecJSONL. Existing segments always decode with the codec
	// their manifest records, so changing this never strands old data.
	SegmentCodec string
	// CompactInterval spaces the background compaction sweeps that
	// rewrite fragmented many-segment generations (a long-appended
	// trace's usual shape) into packed ones. Zero disables compaction;
	// it needs DataDir. Rewrites preserve fingerprints exactly, so
	// compaction is invisible to every read path.
	CompactInterval time.Duration
	// CompactMinSegments / CompactMinFill tune the fragmentation
	// triggers (zero: the storage engine's defaults). See
	// storage.CompactPolicy.
	CompactMinSegments int
	CompactMinFill     float64
	// Logger receives structured server logs (recovery, compaction,
	// cluster housekeeping, and slow or failing requests — each with its
	// request_id). Nil disables logging.
	Logger *slog.Logger
	// SlowRequestThreshold is the latency at which a request is logged
	// and counted as slow (zero: DefaultSlowRequestThreshold; negative:
	// slow-request logging disabled).
	SlowRequestThreshold time.Duration
	// DebugRequests sizes the in-memory ring of recent requests served
	// by GET /v1/debug/requests (zero: obs.DefaultRequestLogSize).
	DebugRequests int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profile endpoints expose internals and cost work, so
	// they are opt-in (the -pprof flag).
	EnablePprof bool

	// Peers enables cluster mode: the full membership as the -peers flag
	// syntax (id=url,...), including this node. Empty keeps the server
	// single-node; every field below is then ignored.
	Peers string
	// NodeID is this process's identity in Peers.
	NodeID string
	// Replication is how many owners each trace shard is placed on
	// (zero: fleet.DefaultReplication; clamped to the cluster size).
	Replication int
	// ClusterShards is the default shard count for newly ingested
	// cluster traces (zero: one per member).
	ClusterShards int
	// PeerTimeout bounds one peer request attempt (zero:
	// fleet.DefaultTimeout).
	PeerTimeout time.Duration
	// PeerProbeInterval spaces the background liveness probes (zero:
	// fleet.DefaultProbeInterval; negative: probing disabled).
	PeerProbeInterval time.Duration
}

// DefaultMaxUploadBytes bounds ingest bodies when the configuration
// leaves it zero: comfortably above a full-budget trace (~250 B/job at
// the default 2M-job budget) while capping what one request can buffer.
const DefaultMaxUploadBytes = 1 << 30

// DefaultSlowRequestThreshold is the slow-request log threshold when
// the configuration leaves it zero: well above a warm cache hit or an
// in-memory scan, low enough to surface out-of-core scans that miss
// their pruning.
const DefaultSlowRequestThreshold = 500 * time.Millisecond

// Server owns the trace store, the result cache, and the generation job
// registry, and exposes them over HTTP/JSON:
//
//	GET    /healthz                     liveness
//	GET    /metrics                     Prometheus text exposition
//	GET    /v1/stats                    store + cache + request counters
//	GET    /v1/debug/requests           recent requests with spans (slow-query log)
//	GET    /v1/traces                   list stored traces
//	POST   /v1/traces/{name}            streaming JSONL ingest
//	POST   /v1/traces/{name}/append     live batched JSONL append
//	GET    /v1/traces/{name}            one trace's identity
//	DELETE /v1/traces/{name}            drop a trace (and its segments)
//	GET    /v1/traces/{name}/report     the study's figures/tables (cached;
//	                                    from/to/window select a submit-time slice)
//	GET    /v1/traces/{name}/synth      SWIM synthesis + fidelity (cached)
//	GET    /v1/traces/{name}/replay     simulated replay metrics (cached)
//	POST   /v1/generate                 async calibrated-workload generation
//	GET    /v1/jobs                     list generation jobs
//	GET    /v1/jobs/{id}                one generation job's progress
//	GET    /debug/pprof/                profiling (only with EnablePprof)
type Server struct {
	store     *Store
	cache     *ResultCache
	jobs      *jobRegistry
	mux       *http.ServeMux
	mw        *middleware
	metrics   *serverMetrics
	maxUpload int64
	backing   *storage.Store
	recovered []TraceInfo
	// cluster is the scatter/gather coordinator (nil single-node). With
	// it set the server also exposes the /internal/v1 peer protocol.
	cluster *clusterCoordinator
	logger  *slog.Logger

	// compactStop/compactWG manage the background compaction loop; nil
	// channel means the loop never started.
	compactStop chan struct{}
	compactWG   sync.WaitGroup
}

// New assembles a server. With cfg.DataDir set it opens (creating if
// needed) and recovers the durable store first; recovery results are
// logged through cfg.Logger and available via Recovered.
func New(cfg Config) (*Server, error) {
	maxUpload := cfg.MaxUploadBytes
	if maxUpload <= 0 {
		maxUpload = DefaultMaxUploadBytes
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		store:     NewStore(cfg.MaxTraces, cfg.MaxTotalJobs),
		cache:     NewResultCache(cfg.CacheEntries),
		jobs:      newJobRegistry(),
		mux:       http.NewServeMux(),
		maxUpload: maxUpload,
		logger:    logger,
	}
	if cfg.DisablePartials {
		s.store.DisablePartials()
	}
	if cfg.DataDir != "" {
		backing, rec, err := storage.Open(cfg.DataDir, storage.Options{SegmentJobs: cfg.SegmentJobs, Codec: cfg.SegmentCodec})
		if err != nil {
			return nil, fmt.Errorf("server: opening data dir: %w", err)
		}
		s.backing = backing
		s.store.AttachBacking(backing, rec.Traces)
		s.recovered = s.store.List()
		for _, d := range rec.Dropped {
			s.logger.Warn("recovery dropped trace", "trace", d.Name, "reason", d.Reason)
		}
		for _, tr := range rec.Trimmed {
			s.logger.Warn("recovery trimmed uncommitted bytes", "trace", tr.Name, "bytes", tr.Bytes, "file", tr.File)
		}
		s.logger.Info("recovered traces", "count", len(rec.Traces), "dir", cfg.DataDir)
		if cfg.CompactInterval > 0 {
			s.compactStop = make(chan struct{})
			s.compactWG.Add(1)
			go s.compactLoop(cfg.CompactInterval, storage.CompactPolicy{
				MinSegments: cfg.CompactMinSegments,
				MinFill:     cfg.CompactMinFill,
			})
		}
	}
	if cfg.Peers != "" {
		peers, err := fleet.ParsePeers(cfg.Peers)
		if err != nil {
			return nil, err
		}
		f, err := fleet.New(fleet.Config{
			NodeID:        cfg.NodeID,
			Peers:         peers,
			Replication:   cfg.Replication,
			Shards:        cfg.ClusterShards,
			Timeout:       cfg.PeerTimeout,
			ProbeInterval: cfg.PeerProbeInterval,
		})
		if err != nil {
			return nil, err
		}
		s.cluster = newClusterCoordinator(s, f)
		if err := s.cluster.restore(); err != nil {
			return nil, err
		}
		// The peer protocol: shard replica writes, binary shard-partial
		// reads, metadata gossip, and cluster cache peeks. Registered only
		// in cluster mode, so a single-node swimd's surface is unchanged.
		s.handle("POST /internal/v1/shards/{name}/{shard}", s.handleShardIngest)
		s.handle("POST /internal/v1/shards/{name}/{shard}/append", s.handleShardAppend)
		s.handle("GET /internal/v1/shards/{name}/{shard}/partial", s.handleShardPartial)
		s.handle("DELETE /internal/v1/shards/{name}/{shard}", s.handleShardDelete)
		s.handle("PUT /internal/v1/meta/{name}", s.handleMetaPut)
		s.handle("GET /internal/v1/meta/{name}", s.handleMetaGet)
		s.handle("DELETE /internal/v1/meta/{name}", s.handleMetaDelete)
		s.handle("GET /internal/v1/cache", s.handleCachePeek)
		s.handle("PUT /internal/v1/cache", s.handleCachePut)
		f.Start()
	}

	// The metrics bundle registers collectors over the store, cache, and
	// (when present) the fleet, so it is built after cluster setup.
	ringSize := cfg.DebugRequests
	if ringSize <= 0 {
		ringSize = obs.DefaultRequestLogSize
	}
	s.metrics = newServerMetrics(s, ringSize)
	slowAfter := cfg.SlowRequestThreshold
	if slowAfter == 0 {
		slowAfter = DefaultSlowRequestThreshold
	} else if slowAfter < 0 {
		slowAfter = 0
	}
	s.mw = &middleware{logger: cfg.Logger, metrics: s.metrics, slowAfter: slowAfter}

	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /v1/debug/requests", s.handleDebugRequests)
	s.handle("GET /v1/traces", s.handleListTraces)
	s.handle("POST /v1/traces/{name}", s.handleIngest)
	s.handle("POST /v1/traces/{name}/append", s.handleAppend)
	s.handle("GET /v1/traces/{name}", s.handleTraceInfo)
	s.handle("DELETE /v1/traces/{name}", s.handleDelete)
	s.handle("GET /v1/traces/{name}/report", s.handleReport)
	s.handle("GET /v1/traces/{name}/synth", s.handleSynth)
	s.handle("GET /v1/traces/{name}/replay", s.handleReplay)
	s.handle("POST /v1/generate", s.handleGenerate)
	s.handle("GET /v1/jobs", s.handleListJobs)
	s.handle("GET /v1/jobs/{id}", s.handleJob)
	if cfg.EnablePprof {
		s.handle("GET /debug/pprof/", pprof.Index)
		s.handle("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.handle("GET /debug/pprof/profile", pprof.Profile)
		s.handle("GET /debug/pprof/symbol", pprof.Symbol)
		s.handle("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// handle registers a route and stamps each matched request's trace with
// the route pattern. The ServeMux sets r.Pattern on its own copy of the
// request, which the outer middleware never sees; stamping inside the
// route wrapper is what lets the middleware label metrics by endpoint.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if rt := obs.FromContext(r.Context()); rt != nil {
			rt.SetEndpoint(pattern)
		}
		h(w, r)
	})
}

// Handler returns the server's HTTP handler with middleware applied.
func (s *Server) Handler() http.Handler {
	return s.mw.wrap(s.mux)
}

// Metrics exposes the observability registry (for tests and embedding).
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// Close flushes nothing — every durable commit syncs before it returns
// — but closes the storage engine so late writers fail fast instead of
// racing a shutdown. Call after the HTTP server has drained (its
// Shutdown waits for in-flight uploads, whose manifests therefore
// commit before this runs).
func (s *Server) Close() error {
	if s.cluster != nil {
		s.cluster.fleet.Close()
	}
	if s.compactStop != nil {
		close(s.compactStop)
		s.compactWG.Wait()
	}
	if s.backing != nil {
		return s.backing.Close()
	}
	return nil
}

// compactLoop sweeps the store on a fixed cadence, rewriting whatever
// the policy deems fragmented. Runs until Close; a sweep in flight
// finishes before Close returns, so no rewrite races the storage
// engine's shutdown.
func (s *Server) compactLoop(interval time.Duration, policy storage.CompactPolicy) {
	defer s.compactWG.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.compactStop:
			return
		case <-ticker.C:
			// Sessions idle for a full interval release their traces to
			// this sweep; active feeds keep refreshing lastBatch and stay
			// exempt.
			s.store.ReapIdleAppendSessions(interval)
			sweepStart := time.Now()
			n, err := s.store.Compact(policy)
			if s.metrics != nil {
				s.metrics.compactionLatency.Observe(time.Since(sweepStart).Seconds())
			}
			if err != nil {
				s.logger.Warn("compaction sweep failed", "error", err)
			}
			if n > 0 {
				s.logger.Info("compacted traces", "count", n, "duration", time.Since(sweepStart).Round(time.Millisecond))
			}
		}
	}
}

// Recovered lists the traces the durable store restored at startup.
func (s *Server) Recovered() []TraceInfo { return s.recovered }

// Store exposes the trace store (for preloading at startup and tests).
func (s *Server) Store() *Store { return s.store }

// Cache exposes the result cache (for stats and tests).
func (s *Server) Cache() *ResultCache { return s.cache }

// Fleet exposes the cluster layer, nil when single-node (for tests).
func (s *Server) Fleet() *fleet.Fleet {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.fleet
}
