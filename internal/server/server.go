package server

import (
	"log"
	"net/http"
)

// Config sizes a Server.
type Config struct {
	// MaxTraces / MaxTotalJobs bound the trace store (zero: defaults).
	MaxTraces    int
	MaxTotalJobs int
	// CacheEntries bounds the result cache (zero: default).
	CacheEntries int
	// MaxUploadBytes caps one ingest request's body (zero: default
	// 1 GiB). The job-count budget bounds decoded jobs; this bounds the
	// raw bytes a single newline-free request could make the line
	// reader buffer.
	MaxUploadBytes int64
	// DisablePartials turns off ingest-time partial aggregation: stored
	// traces then carry no precomputed aggregate (saving ~24 B/job of
	// heap) and cold reports scan the jobs, shard-parallel when the
	// request sets shards=K.
	DisablePartials bool
	// Logger receives one line per request; nil disables request logging.
	Logger *log.Logger
}

// DefaultMaxUploadBytes bounds ingest bodies when the configuration
// leaves it zero: comfortably above a full-budget trace (~250 B/job at
// the default 2M-job budget) while capping what one request can buffer.
const DefaultMaxUploadBytes = 1 << 30

// Server owns the trace store, the result cache, and the generation job
// registry, and exposes them over HTTP/JSON:
//
//	GET    /healthz                     liveness
//	GET    /v1/stats                    store + cache + request counters
//	GET    /v1/traces                   list stored traces
//	POST   /v1/traces/{name}            streaming JSONL ingest
//	GET    /v1/traces/{name}            one trace's identity
//	DELETE /v1/traces/{name}            drop a trace
//	GET    /v1/traces/{name}/report     the study's figures/tables (cached)
//	GET    /v1/traces/{name}/synth      SWIM synthesis + fidelity (cached)
//	GET    /v1/traces/{name}/replay     simulated replay metrics (cached)
//	POST   /v1/generate                 async calibrated-workload generation
//	GET    /v1/jobs                     list generation jobs
//	GET    /v1/jobs/{id}                one generation job's progress
type Server struct {
	store     *Store
	cache     *ResultCache
	jobs      *jobRegistry
	mux       *http.ServeMux
	mw        *middleware
	maxUpload int64
}

// New assembles a server.
func New(cfg Config) *Server {
	maxUpload := cfg.MaxUploadBytes
	if maxUpload <= 0 {
		maxUpload = DefaultMaxUploadBytes
	}
	s := &Server{
		store:     NewStore(cfg.MaxTraces, cfg.MaxTotalJobs),
		cache:     NewResultCache(cfg.CacheEntries),
		jobs:      newJobRegistry(),
		mux:       http.NewServeMux(),
		mw:        &middleware{logger: cfg.Logger},
		maxUpload: maxUpload,
	}
	if cfg.DisablePartials {
		s.store.DisablePartials()
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/traces", s.handleListTraces)
	s.mux.HandleFunc("POST /v1/traces/{name}", s.handleIngest)
	s.mux.HandleFunc("GET /v1/traces/{name}", s.handleTraceInfo)
	s.mux.HandleFunc("DELETE /v1/traces/{name}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/traces/{name}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/traces/{name}/synth", s.handleSynth)
	s.mux.HandleFunc("GET /v1/traces/{name}/replay", s.handleReplay)
	s.mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	return s
}

// Handler returns the server's HTTP handler with middleware applied.
func (s *Server) Handler() http.Handler {
	return s.mw.wrap(s.mux)
}

// Store exposes the trace store (for preloading at startup and tests).
func (s *Server) Store() *Store { return s.store }

// Cache exposes the result cache (for stats and tests).
func (s *Server) Cache() *ResultCache { return s.cache }
