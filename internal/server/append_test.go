package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/units"
)

// splitBatches cuts a sorted trace into n contiguous batches.
func splitBatches(tr *trace.Trace, n int) [][]*trace.Job {
	batches := make([][]*trace.Job, 0, n)
	per := (len(tr.Jobs) + n - 1) / n
	for i := 0; i < len(tr.Jobs); i += per {
		end := i + per
		if end > len(tr.Jobs) {
			end = len(tr.Jobs)
		}
		batches = append(batches, tr.Jobs[i:end])
	}
	return batches
}

// postAppend sends one JSONL batch to the append endpoint and returns
// the raw response.
func postAppend(t testing.TB, ts *httptest.Server, name string, meta trace.Meta, jobs []*trace.Job) (*http.Response, []byte) {
	t.Helper()
	batch := trace.New(meta)
	batch.Jobs = jobs
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, batch); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/traces/"+name+"/append", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

// appendTrace drives tr into name as k batches, requiring every batch
// to commit, and returns the final response.
func appendTrace(t testing.TB, ts *httptest.Server, name string, tr *trace.Trace, k int) AppendResponse {
	t.Helper()
	var last AppendResponse
	for i, batch := range splitBatches(tr, k) {
		resp, body := postAppend(t, ts, name, tr.Meta, batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append batch %d: %d %s", i, resp.StatusCode, clip(body))
		}
		if err := json.Unmarshal(body, &last); err != nil {
			t.Fatal(err)
		}
		if last.Appended != len(batch) {
			t.Fatalf("batch %d: appended %d, sent %d", i, last.Appended, len(batch))
		}
	}
	return last
}

// TestAppendEquivalence is the live-ingest acceptance gate: K batched
// appends must be indistinguishable from a one-shot upload of the same
// jobs — same fingerprint, same identity, and byte-identical report
// from each trace's own frozen aggregate — in both store modes.
func TestAppendEquivalence(t *testing.T) {
	for _, mode := range []string{"memory", "disk"} {
		t.Run(mode, func(t *testing.T) {
			tr := genTrace(t, "FB-2009", 2, 26*time.Hour)
			for _, k := range []int{1, 3, 7} {
				t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
					var s *Server
					var ts *httptest.Server
					if mode == "disk" {
						s, ts = diskServer(t, t.TempDir(), Config{})
					} else {
						s, ts = newTestServer(t)
					}
					ref := ingestTrace(t, ts, "ref", tr)
					live := appendTrace(t, ts, "live", tr, k)
					if live.Fingerprint != ref.Fingerprint {
						t.Fatalf("appended fingerprint %s, one-shot %s", live.Fingerprint, ref.Fingerprint)
					}
					want := ref
					want.Name = "live"
					if live.TraceInfo != want {
						t.Fatalf("appended identity %+v, want %+v", live.TraceInfo, want)
					}

					// The frozen aggregates must agree independently of the
					// shared result cache: finalize each entry's own partial.
					vLive, err := s.Store().View("live")
					if err != nil {
						t.Fatal(err)
					}
					vRef, err := s.Store().View("ref")
					if err != nil {
						t.Fatal(err)
					}
					if vLive.Partial == nil || vRef.Partial == nil {
						t.Fatal("missing frozen aggregate")
					}
					repLive, err := vLive.Partial.Report(8)
					if err != nil {
						t.Fatal(err)
					}
					repRef, err := vRef.Partial.Report(8)
					if err != nil {
						t.Fatal(err)
					}
					a, _ := json.Marshal(repLive.JSON())
					b, _ := json.Marshal(repRef.JSON())
					if !bytes.Equal(a, b) {
						t.Fatal("append-built aggregate report diverges from one-shot")
					}

					resp, _ := getRaw(t, ts.URL+"/v1/traces/live/report")
					if got := resp.Header.Get("X-Analysis"); got != "ingest-partial" {
						t.Fatalf("live report X-Analysis = %q, want ingest-partial", got)
					}
				})
			}
		})
	}
}

// TestAppendDurability restarts the server after batched appends (and a
// torn uncommitted tail) and requires recovery at the last committed
// batch boundary.
func TestAppendDurability(t *testing.T) {
	dir := t.TempDir()
	tr := genTrace(t, "CC-b", 9, 26*time.Hour)

	s1, ts1 := diskServer(t, dir, Config{})
	live := appendTrace(t, ts1, "live", tr, 3)
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// A torn tail past the committed boundary, as a crash mid-append
	// leaves behind.
	segs, err := filepath.Glob(filepath.Join(dir, "traces", "live", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half a batch, never committed")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, ts2 := diskServer(t, dir, Config{})
	rec := s2.Recovered()
	if len(rec) != 1 || rec[0] != live.TraceInfo {
		t.Fatalf("recovered %+v, want %+v", rec, live.TraceInfo)
	}
	var got TraceInfo
	getJSON(t, ts2.URL+"/v1/traces/live", &got)
	if got != live.TraceInfo {
		t.Fatalf("served identity %+v, want %+v", got, live.TraceInfo)
	}
	resp, body := getRaw(t, ts2.URL+"/v1/traces/live/report")
	if resp.Header.Get("X-Analysis") != "recovered-partial" {
		t.Fatalf("post-restart report X-Analysis = %q, want recovered-partial", resp.Header.Get("X-Analysis"))
	}
	if len(body) == 0 {
		t.Fatal("empty report")
	}
}

// TestAppendConflicts covers the 409/400 surface: out-of-order batches,
// contradicted metadata, fresh appends without metadata, empty batches,
// and sessions invalidated by a replacement upload.
func TestAppendConflicts(t *testing.T) {
	_, ts := newTestServer(t)
	tr := genTrace(t, "FB-2010", 4, 26*time.Hour)
	batches := splitBatches(tr, 4)

	// Fresh append without complete metadata: 400.
	noMeta := trace.Meta{Name: tr.Meta.Name, Machines: tr.Meta.Machines}
	if resp, _ := postAppend(t, ts, "bare", noMeta, batches[0]); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("metadata-free create: %d, want 400", resp.StatusCode)
	}

	// Empty batch: 400.
	if resp, _ := postAppend(t, ts, "live", tr.Meta, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", resp.StatusCode)
	}

	appendTrace(t, ts, "live", trSlice(tr, batches[1]), 1)

	// A batch preceding the committed tail: 409.
	if resp, _ := postAppend(t, ts, "live", tr.Meta, batches[0]); resp.StatusCode != http.StatusConflict {
		t.Fatalf("out-of-order batch: %d, want 409", resp.StatusCode)
	}

	// A batch contradicting the committed header: 409.
	badMeta := tr.Meta
	badMeta.Start = tr.Meta.Start.Add(time.Hour)
	if resp, _ := postAppend(t, ts, "live", badMeta, batches[2]); resp.StatusCode != http.StatusConflict {
		t.Fatalf("contradicted metadata: %d, want 409", resp.StatusCode)
	}

	// In-order continuation still works after the rejections.
	if resp, body := postAppend(t, ts, "live", tr.Meta, batches[2]); resp.StatusCode != http.StatusOK {
		t.Fatalf("continuation: %d %s", resp.StatusCode, clip(body))
	}

	// Replacing the trace invalidates the session; the next append must
	// reopen against the replacement's tail, not the old session's.
	replacement := trSlice(tr, batches[0])
	ingestTrace(t, ts, "live", cloneTrace(replacement))
	if resp, body := postAppend(t, ts, "live", tr.Meta, batches[1]); resp.StatusCode != http.StatusOK {
		t.Fatalf("append after replacement: %d %s", resp.StatusCode, clip(body))
	}
	var info TraceInfo
	getJSON(t, ts.URL+"/v1/traces/live", &info)
	if info.Jobs != len(batches[0])+len(batches[1]) {
		t.Fatalf("post-replacement trace holds %d jobs, want %d", info.Jobs, len(batches[0])+len(batches[1]))
	}
}

// trSlice builds a trace with tr's metadata over the given jobs.
func trSlice(tr *trace.Trace, jobs []*trace.Job) *trace.Trace {
	out := trace.New(tr.Meta)
	out.Jobs = jobs
	return out
}

// cloneTrace deep-copies jobs so Put's normalize cannot touch shared
// slices.
func cloneTrace(tr *trace.Trace) *trace.Trace {
	out := trace.New(tr.Meta)
	for _, j := range tr.Jobs {
		cp := *j
		out.Add(&cp)
	}
	return out
}

// TestAppendWhileQuery hammers a growing trace with concurrent reports
// (plain, scanning, and windowed) while batches commit — the
// append-and-refreeze contract under the race detector. Every read must
// see some committed version, never an error.
func TestAppendWhileQuery(t *testing.T) {
	for _, mode := range []string{"memory", "disk"} {
		t.Run(mode, func(t *testing.T) {
			var ts *httptest.Server
			if mode == "disk" {
				_, ts = diskServer(t, t.TempDir(), Config{})
			} else {
				_, ts = newTestServer(t)
			}
			tr := genTrace(t, "FB-2009", 6, 26*time.Hour)
			batches := splitBatches(tr, 8)
			appendTrace(t, ts, "live", trSlice(tr, batches[0]), 1)

			done := make(chan struct{})
			var wg sync.WaitGroup
			endSec := tr.Meta.Start.Add(tr.Meta.Length).Unix()
			urls := []string{
				ts.URL + "/v1/traces/live/report",
				ts.URL + "/v1/traces/live/report?sketch=1", // forces a scan of the snapshot
				fmt.Sprintf("%s/v1/traces/live/report?from=%d&to=%d", ts.URL, tr.Meta.Start.Unix(), endSec),
				// The first half of the declared span always holds committed
				// jobs once batch 0 lands.
				fmt.Sprintf("%s/v1/traces/live/report?from=%d&to=%d", ts.URL,
					tr.Meta.Start.Unix(), tr.Meta.Start.Add(13*time.Hour).Unix()),
			}
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-done:
							return
						default:
						}
						resp, err := http.Get(urls[(r+i)%len(urls)])
						if err != nil {
							t.Error(err)
							return
						}
						body, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							t.Errorf("reader: %d %s", resp.StatusCode, clip(body))
							return
						}
					}
				}(r)
			}
			for i, batch := range batches[1:] {
				resp, body := postAppend(t, ts, "live", tr.Meta, batch)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("append batch %d under load: %d %s", i+1, resp.StatusCode, clip(body))
				}
			}
			close(done)
			wg.Wait()

			var info TraceInfo
			getJSON(t, ts.URL+"/v1/traces/live", &info)
			if info.Jobs != tr.Len() {
				t.Fatalf("final trace holds %d jobs, want %d", info.Jobs, tr.Len())
			}
			wantFP, err := tr.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			if info.Fingerprint != wantFP {
				t.Fatal("final fingerprint diverges from one-shot")
			}
		})
	}
}

// TestWindowedReportHTTP exercises the read side over HTTP: a full-span
// window reproduces the default report byte-for-byte, a narrow window
// prunes segments (decode counters in the X-Scan headers prove it), and
// malformed window parameters are 400s.
func TestWindowedReportHTTP(t *testing.T) {
	_, ts := diskServer(t, t.TempDir(), Config{SegmentJobs: 500})
	start := time.Unix(1_700_000_000, 0).UTC()
	tr := trace.New(trace.Meta{Name: "synthetic", Machines: 100, Start: start, Length: 24 * time.Hour})
	step := 24 * time.Hour / 6000
	for i := 0; i < 6000; i++ {
		tr.Add(&trace.Job{
			ID:          int64(i),
			SubmitTime:  start.Add(time.Duration(i) * step),
			Duration:    time.Minute,
			InputBytes:  units.Bytes(1 << 20),
			OutputBytes: units.Bytes(1 << 18),
			MapTime:     60,
			MapTasks:    4,
		})
	}
	ingestTrace(t, ts, "syn", cloneTrace(tr))

	// Resident trace: a full-span window must reproduce the default
	// report exactly (it scans the same jobs under the same metadata).
	base := ts.URL + "/v1/traces/syn/report"
	_, def := getRaw(t, base)
	end := start.Add(24 * time.Hour)
	resp, full := getRaw(t, fmt.Sprintf("%s?from=%d&to=%d", base, start.Unix(), end.Unix()))
	if !bytes.Equal(def, full) {
		t.Fatal("full-span window report diverges from the default report")
	}
	if got := resp.Header.Get("X-Analysis"); got != "window-scan" {
		t.Fatalf("resident window X-Analysis = %q, want window-scan", got)
	}

	// Disk-resident trace (the 1-job hot budget forces the spill path):
	// a narrow window must prune segments, proven by the decode counters
	// in the X-Scan headers, and a repeat must hit the cache.
	_, ts2 := diskServer(t, t.TempDir(), Config{SegmentJobs: 500, MaxTotalJobs: 1})
	ingestTrace(t, ts2, "syn", cloneTrace(tr))
	narrow := fmt.Sprintf("%s/v1/traces/syn/report?from=%d&to=%d", ts2.URL,
		start.Add(6*time.Hour).Unix(), start.Add(12*time.Hour).Unix())
	resp2, _ := getRaw(t, narrow)
	if got := resp2.Header.Get("X-Analysis"); got != "window-disk-scan" {
		t.Fatalf("narrow window X-Analysis = %q, want window-disk-scan", got)
	}
	if p := resp2.Header.Get("X-Scan-Segments-Pruned"); p == "" || p == "0" {
		t.Fatalf("no segments pruned: X-Scan-Segments=%s pruned=%s",
			resp2.Header.Get("X-Scan-Segments"), p)
	}
	resp3, _ := getRaw(t, narrow)
	if resp3.Header.Get("X-Cache") != "HIT" {
		t.Fatal("repeat windowed report missed the cache")
	}

	// Parameter validation.
	for _, q := range []string{
		"?window=6h&from=1700000000",     // window excludes explicit bounds
		"?from=1700000100&to=1700000100", // empty window
		"?from=notatime",                 // unparseable
		"?full=1&window=6h",              // full needs the whole trace
		"?window=-2h",                    // negative
	} {
		resp, err := http.Get(base + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestQueryBoolStrict covers the silent-false fix: a malformed boolean
// is a 400, not a quiet default.
func TestQueryBoolStrict(t *testing.T) {
	_, ts := newTestServer(t)
	ingestTrace(t, ts, "mine", genTrace(t, "CC-b", 1, 25*time.Hour))
	for _, q := range []string{"?full=bogus", "?sketch=ture", "?full=TRUE"} {
		resp, err := http.Get(ts.URL + "/v1/traces/mine/report" + q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d %s, want 400", q, resp.StatusCode, clip(body))
		}
	}
	// The accepted spellings still work.
	for _, q := range []string{"", "?sketch=0", "?sketch=false", "?sketch=no", "?sketch=1"} {
		resp, err := http.Get(ts.URL + "/v1/traces/mine/report" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d, want 200", q, resp.StatusCode)
		}
	}
}
