package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// mustNew builds a Server, failing the test on configuration errors.
func mustNew(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// newTestServer returns a started httptest server plus the Server for
// white-box assertions.
func newTestServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServerCfg(t, Config{})
}

// newTestServerCfg is newTestServer with a custom configuration.
func newTestServerCfg(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// ingestTrace uploads tr under name via the HTTP API and returns the
// ingest response.
func ingestTrace(t testing.TB, ts *httptest.Server, name string, tr *trace.Trace) TraceInfo {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/traces/"+name, "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	var info TraceInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

func getJSON(t testing.TB, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, clip(body), err)
		}
	}
	return resp
}

func clip(b []byte) string {
	if len(b) > 200 {
		return string(b[:200]) + "…"
	}
	return string(b)
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t)
	var health map[string]string
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Errorf("healthz %+v", health)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Store.MaxTraces != DefaultMaxTraces || stats.Cache.Capacity != DefaultCacheEntries {
		t.Errorf("stats %+v", stats)
	}
	if stats.Requests.Requests == 0 {
		t.Error("request counter not wired")
	}
}

func TestIngestInfoListDelete(t *testing.T) {
	_, ts := newTestServer(t)
	tr := genTrace(t, "CC-b", 1, 25*time.Hour)
	info := ingestTrace(t, ts, "mine", tr)
	if info.Jobs != tr.Len() || info.Workload != "CC-b" || len(info.Fingerprint) != 64 {
		t.Errorf("ingest info %+v", info)
	}

	var got TraceInfo
	getJSON(t, ts.URL+"/v1/traces/mine", &got)
	if got != info {
		t.Errorf("info mismatch: %+v vs %+v", got, info)
	}

	var list map[string][]TraceInfo
	getJSON(t, ts.URL+"/v1/traces", &list)
	if len(list["traces"]) != 1 {
		t.Errorf("list %+v", list)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/traces/mine", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/traces/mine"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("get after delete: %d", resp.StatusCode)
	}
}

func TestIngestBadBody(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/traces/x", "application/jsonl", strings.NewReader("not json\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad upload: %d", resp.StatusCode)
	}
}

func TestReportEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	tr := genTrace(t, "CC-b", 1, 49*time.Hour)
	info := ingestTrace(t, ts, "mine", tr)

	var rep core.ReportJSON
	resp := getJSON(t, ts.URL+"/v1/traces/mine/report", &rep)
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Errorf("first request X-Cache=%q", resp.Header.Get("X-Cache"))
	}
	if rep.Summary.Jobs != info.Jobs || rep.DataSizes == nil || rep.Series == nil || rep.Names == nil {
		t.Errorf("report sections missing: %+v", rep.Summary)
	}
	if rep.Clusters != nil {
		t.Error("streaming report should not cluster")
	}

	resp = getJSON(t, ts.URL+"/v1/traces/mine/report", nil)
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Errorf("second request X-Cache=%q", resp.Header.Get("X-Cache"))
	}
	if st := s.Cache().Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats %+v", st)
	}

	// full=1 is a different key and carries Table 2.
	var full core.ReportJSON
	resp = getJSON(t, ts.URL+"/v1/traces/mine/report?full=1", &full)
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Error("full report should be a distinct cache key")
	}
	if full.Clusters == nil {
		t.Error("full report missing clusters")
	}

	// sketch=1 uses fixed-memory distributions; summary must agree.
	var sk core.ReportJSON
	getJSON(t, ts.URL+"/v1/traces/mine/report?sketch=1", &sk)
	if sk.Summary.Jobs != rep.Summary.Jobs {
		t.Error("sketch summary drifted")
	}

	if resp, _ := http.Get(ts.URL + "/v1/traces/none/report"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace report: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/traces/mine/report?top=zz"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad top param: %d", resp.StatusCode)
	}
}

// TestReportCacheInvalidatedByReingest: replacing a trace under the same
// name changes its fingerprint, so the next report recomputes instead of
// serving the old version's memo.
func TestReportCacheInvalidatedByReingest(t *testing.T) {
	_, ts := newTestServer(t)
	ingestTrace(t, ts, "mine", genTrace(t, "CC-b", 1, 25*time.Hour))
	var rep1 core.ReportJSON
	getJSON(t, ts.URL+"/v1/traces/mine/report", &rep1)

	ingestTrace(t, ts, "mine", genTrace(t, "CC-b", 2, 49*time.Hour))
	var rep2 core.ReportJSON
	resp := getJSON(t, ts.URL+"/v1/traces/mine/report", &rep2)
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Error("re-ingested trace served a stale cached report")
	}
	if rep2.Summary.Jobs == rep1.Summary.Jobs {
		t.Error("report did not reflect the new trace")
	}
}

func TestSynthEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	ingestTrace(t, ts, "mine", genTrace(t, "CC-b", 1, 73*time.Hour))

	var syn SynthResponse
	resp := getJSON(t, ts.URL+"/v1/traces/mine/synth?length=24h&seed=7", &syn)
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Error("first synth should miss")
	}
	if syn.Synthetic.Jobs == 0 || syn.Synthetic.LengthMS != (24*time.Hour).Milliseconds() {
		t.Errorf("synthetic %+v", syn.Synthetic)
	}
	resp = getJSON(t, ts.URL+"/v1/traces/mine/synth?length=24h&seed=7", nil)
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Error("repeat synth should hit")
	}

	// store= persists the synthetic trace and bypasses the cache.
	var stored SynthResponse
	resp = getJSON(t, ts.URL+"/v1/traces/mine/synth?length=24h&seed=7&store=syn24", &stored)
	if resp.Header.Get("X-Cache") != "BYPASS" || stored.StoredAs == nil {
		t.Fatalf("store= not honored: X-Cache=%q stored=%+v", resp.Header.Get("X-Cache"), stored.StoredAs)
	}
	var info TraceInfo
	getJSON(t, ts.URL+"/v1/traces/syn24", &info)
	if info.Jobs != stored.StoredAs.Jobs {
		t.Error("stored synthetic trace not queryable")
	}
}

func TestReplayEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	ingestTrace(t, ts, "mine", genTrace(t, "CC-a", 1, 25*time.Hour))

	var rep ReplayResponse
	resp := getJSON(t, ts.URL+"/v1/traces/mine/replay?scheduler=fair", &rep)
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Error("first replay should miss")
	}
	if rep.Completed == 0 || rep.TotalSlots == 0 || len(rep.HourlyOccupancy) == 0 {
		t.Errorf("replay %+v", rep)
	}
	if rep.Scheduler != "fair" {
		t.Errorf("scheduler %q", rep.Scheduler)
	}
	resp = getJSON(t, ts.URL+"/v1/traces/mine/replay?scheduler=fair", nil)
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Error("repeat replay should hit")
	}
	if resp, _ := http.Get(ts.URL + "/v1/traces/mine/replay?scheduler=lifo"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad scheduler: %d", resp.StatusCode)
	}
}

func TestGenerateJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"workload":"CC-b","name":"gen-cc-b","duration":"25h","seed":3}`
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("generate: %d %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Trace != "gen-cc-b" {
		t.Fatalf("job %+v", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &st)
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("generation did not finish: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != "done" || st.Result == nil {
		t.Fatalf("job %+v", st)
	}
	if st.JobsWritten != int64(st.Result.Jobs) {
		t.Errorf("progress %d != stored jobs %d", st.JobsWritten, st.Result.Jobs)
	}
	// The generated trace equals the directly generated one.
	want := genTrace(t, "CC-b", 3, 25*time.Hour)
	wantFP, err := want.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Result.Fingerprint != wantFP {
		t.Error("generated-via-API trace drifted from direct generation")
	}

	var jobs map[string][]JobStatus
	getJSON(t, ts.URL+"/v1/jobs", &jobs)
	if len(jobs["jobs"]) != 1 {
		t.Errorf("jobs list %+v", jobs)
	}

	// Bad requests.
	for _, bad := range []string{`{}`, `{"workload":"nope"}`, `{"workload":"CC-b","duration":"xx"}`, `not json`} {
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("generate %q: %d", bad, resp.StatusCode)
		}
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/gen-999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d", resp.StatusCode)
	}
}

// TestGenerateBoundedByStoreBudget: an async generation that could
// never fit the store fails mid-stream (bounded heap) instead of
// materializing the whole trace first.
func TestGenerateBoundedByStoreBudget(t *testing.T) {
	s := mustNew(t, Config{MaxTotalJobs: 50})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"workload":"CC-b","name":"big","duration":"25h"}`))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for st.State == "running" && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &st)
	}
	if st.State != "failed" || !strings.Contains(st.Error, "budget") {
		t.Errorf("oversized generation should fail on the job budget, got %+v", st)
	}
	if st.JobsWritten > 50 {
		t.Errorf("generation buffered %d jobs past the 50-job budget", st.JobsWritten)
	}
}

// TestIngestByteLimit: a body over MaxUploadBytes is rejected even if
// it never contains a newline.
func TestIngestByteLimit(t *testing.T) {
	s := mustNew(t, Config{MaxUploadBytes: 1024})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/traces/x", "application/jsonl",
		bytes.NewReader(bytes.Repeat([]byte("a"), 4096)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// The reader fails while parsing the (truncated, non-JSON) header —
	// either mapping is acceptable, but the request must be refused.
	if resp.StatusCode != http.StatusInsufficientStorage && resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: %d %s", resp.StatusCode, body)
	}
}

// TestReplayStragglersAlone: ?stragglers= must work without an explicit
// straggler_factor (the factor defaults to the CLI's 5x).
func TestReplayStragglersAlone(t *testing.T) {
	_, ts := newTestServer(t)
	ingestTrace(t, ts, "mine", genTrace(t, "CC-a", 1, 25*time.Hour))
	var rep ReplayResponse
	getJSON(t, ts.URL+"/v1/traces/mine/replay?stragglers=0.05", &rep)
	if rep.Completed == 0 {
		t.Errorf("straggler replay %+v", rep)
	}
}

// TestPanicRecovery: a handler panic becomes a 500, not a dead server.
func TestPanicRecovery(t *testing.T) {
	s := mustNew(t, Config{})
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panic -> %d", resp.StatusCode)
	}
	// Server still alive.
	getJSON(t, ts.URL+"/healthz", nil)
	if st := s.mw.stats(); st.Status5xx == 0 {
		t.Error("5xx not counted")
	}
}

func TestStoreFullOverHTTP(t *testing.T) {
	s := mustNew(t, Config{MaxTotalJobs: 10})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	tr := genTrace(t, "CC-b", 1, 25*time.Hour)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/traces/big", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Errorf("store full: %d %s", resp.StatusCode, body)
	}
}
