package server

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

// genTrace generates a small calibrated trace for tests.
func genTrace(t testing.TB, workload string, seed int64, dur time.Duration) *trace.Trace {
	t.Helper()
	p, err := profile.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: seed, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStorePutGetDeleteList(t *testing.T) {
	s := NewStore(0, 0)
	tr := genTrace(t, "CC-b", 1, 25*time.Hour)
	wantFP, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Put("mine", tr)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "mine" || info.Workload != "CC-b" || info.Jobs != tr.Len() {
		t.Errorf("info %+v", info)
	}
	if info.Fingerprint != wantFP {
		t.Errorf("fingerprint %s != %s", info.Fingerprint, wantFP)
	}
	got, gotInfo, err := s.Get("mine")
	if err != nil {
		t.Fatal(err)
	}
	if got != tr || gotInfo != info {
		t.Error("Get did not return the stored snapshot")
	}
	if _, _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
	if l := s.List(); len(l) != 1 || l[0].Name != "mine" {
		t.Errorf("list %+v", l)
	}
	delInfo, ok := s.Delete("mine")
	if !ok || delInfo.Fingerprint != info.Fingerprint {
		t.Errorf("delete returned (%+v, %v), want the stored identity", delInfo, ok)
	}
	if _, ok := s.Delete("mine"); ok {
		t.Error("second delete reported existence")
	}
	if st := s.Stats(); st.Traces != 0 || st.TotalJobs != 0 {
		t.Errorf("stats after delete: %+v", st)
	}
}

func TestStoreBounds(t *testing.T) {
	tr := genTrace(t, "CC-b", 1, 25*time.Hour)

	s := NewStore(1, 0)
	if _, err := s.Put("a", tr); err != nil {
		t.Fatal(err)
	}
	// Replacing the existing name is allowed at the trace cap...
	if _, err := s.Put("a", genTrace(t, "CC-b", 2, 25*time.Hour)); err != nil {
		t.Fatalf("replace at cap: %v", err)
	}
	// ...a second name is not.
	if _, err := s.Put("b", genTrace(t, "CC-b", 3, 25*time.Hour)); !errors.Is(err, ErrStoreFull) {
		t.Errorf("want ErrStoreFull, got %v", err)
	}

	small := NewStore(0, tr.Len()/2)
	if _, err := small.Put("a", tr); !errors.Is(err, ErrStoreFull) {
		t.Errorf("want ErrStoreFull on job budget, got %v", err)
	}
	if small.Stats().Rejected == 0 {
		t.Error("rejection not counted")
	}
}

// TestStoreIngestRejectsMidStream: an upload that exceeds the job budget
// is cut off while streaming, not after materializing everything.
func TestStoreIngestRejectsMidStream(t *testing.T) {
	tr := genTrace(t, "CC-b", 1, 25*time.Hour)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewJSONLReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(0, 10)
	if _, err := s.Ingest("big", src); !errors.Is(err, ErrStoreFull) {
		t.Errorf("want ErrStoreFull, got %v", err)
	}
}

// TestStoreIngestHonorsRemainingBudget: a near-full store cuts an
// upload off at the *remaining* budget, not the full cap — the heap
// never transiently holds more than the store could accept. Replacing
// an existing name counts that name's jobs as freed.
func TestStoreIngestHonorsRemainingBudget(t *testing.T) {
	tr := genTrace(t, "CC-b", 1, 25*time.Hour)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}

	s := NewStore(0, tr.Len()+10)
	first := trace.New(tr.Meta)
	first.Jobs = append([]*trace.Job(nil), tr.Jobs...)
	if _, err := s.Put("first", first); err != nil {
		t.Fatal(err)
	}
	// Remaining budget is ~10 jobs: the same upload must now be rejected
	// after buffering at most that remainder.
	src, err := trace.NewJSONLReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("second", src); !errors.Is(err, ErrStoreFull) {
		t.Errorf("want ErrStoreFull on remaining budget, got %v", err)
	}
	// Replacing "first" frees its jobs, so the same upload fits.
	src2, err := trace.NewJSONLReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("first", src2); err != nil {
		t.Errorf("replacement within budget rejected: %v", err)
	}
}

// TestStoreNormalizesUpload: a trace with no header metadata gets its
// span derived and its jobs sorted, so analyses can run on it.
func TestStoreNormalizesUpload(t *testing.T) {
	start := time.Date(2012, 3, 1, 0, 0, 0, 0, time.UTC)
	tr := trace.New(trace.Meta{})
	// Out of order on purpose.
	for i, off := range []time.Duration{3 * time.Hour, 0, 90 * time.Minute} {
		tr.Add(&trace.Job{
			ID: int64(i), SubmitTime: start.Add(off), Duration: time.Minute,
			InputBytes: units.Bytes(100), MapTime: 10, MapTasks: 1,
		})
	}
	s := NewStore(0, 0)
	info, err := s.Put("raw", tr)
	if err != nil {
		t.Fatal(err)
	}
	if info.Workload != "raw" {
		t.Errorf("workload defaulted to %q", info.Workload)
	}
	got, _, err := s.Get("raw")
	if err != nil {
		t.Fatal(err)
	}
	// Length runs to the last job's finish: 3h submit + 1m duration.
	if !got.Meta.Start.Equal(start) || got.Meta.Length != 3*time.Hour+time.Minute {
		t.Errorf("span not derived: start=%v length=%v", got.Meta.Start, got.Meta.Length)
	}
	if got.Jobs[0].ID != 1 || got.Jobs[2].ID != 0 {
		t.Error("jobs not sorted by submit time")
	}
	// And the streaming report runs on it.
	if _, err := core.AnalyzeSource(trace.NewSliceSource(got), core.AnalyzeOptions{}); err != nil {
		t.Errorf("normalized upload should analyze: %v", err)
	}
}

func TestStoreRejectsEmptyAndInvalid(t *testing.T) {
	s := NewStore(0, 0)
	if _, err := s.Put("empty", trace.New(trace.Meta{Name: "empty"})); err == nil {
		t.Error("empty trace accepted")
	}
	bad := trace.New(trace.Meta{Name: "bad"})
	bad.Add(&trace.Job{ID: 1, SubmitTime: time.Now(), InputBytes: -5})
	if _, err := s.Put("bad", bad); err == nil {
		t.Error("invalid job accepted")
	}
	if _, err := s.Put("", genTrace(t, "CC-b", 1, 25*time.Hour)); err == nil {
		t.Error("empty name accepted")
	}
}

// TestStoreSnapshotIsolation is the ingest-while-analyzing race proof:
// writers continuously replace a trace name while readers resolve the
// name and run the full streaming analysis on whatever snapshot they
// got. Under -race this fails on any unsynchronized access; the
// assertions fail if a reader ever observes a torn mix of two versions
// (every snapshot's job count and fingerprint must match exactly one of
// the two versions being written).
func TestStoreSnapshotIsolation(t *testing.T) {
	s := NewStore(0, 0)
	v1 := genTrace(t, "CC-b", 1, 25*time.Hour)
	v2 := genTrace(t, "CC-b", 2, 49*time.Hour)
	fp1, err := v1.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := v2.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]int{fp1: v1.Len(), fp2: v2.Len()}
	if _, err := s.Put("hot", v1); err != nil {
		t.Fatal(err)
	}

	const writers, readers, rounds = 2, 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Each Put hands over a fresh copy: the store owns what
				// it is given, and these writers alternate versions.
				src := v1
				if (i+wi)%2 == 0 {
					src = v2
				}
				cp := trace.New(src.Meta)
				cp.Jobs = append([]*trace.Job(nil), src.Jobs...)
				if _, err := s.Put("hot", cp); err != nil {
					errs <- err
					return
				}
			}
		}(wi)
	}
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				snap, info, err := s.Get("hot")
				if err != nil {
					errs <- err
					return
				}
				wantJobs, ok := valid[info.Fingerprint]
				if !ok {
					errs <- fmt.Errorf("unknown fingerprint %s", info.Fingerprint)
					return
				}
				if snap.Len() != wantJobs || info.Jobs != wantJobs {
					errs <- fmt.Errorf("torn read: snapshot has %d jobs, info says %d, version has %d",
						snap.Len(), info.Jobs, wantJobs)
					return
				}
				rep, err := core.AnalyzeSource(trace.NewSliceSource(snap), core.AnalyzeOptions{})
				if err != nil {
					errs <- err
					return
				}
				if rep.Summary.Jobs != wantJobs {
					errs <- fmt.Errorf("analysis saw %d jobs, snapshot version has %d", rep.Summary.Jobs, wantJobs)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
