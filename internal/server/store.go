// Package server is the serving layer: a long-running HTTP/JSON service
// that owns named workload traces in a hybrid memory/disk store and
// answers the study's analytics interactively — the "interactive
// analytical processing" usage mode the paper argues MapReduce clusters
// evolved into, applied to the analysis pipeline itself. Reports,
// synthesis, and replay results are memoized in a single-flight result
// cache keyed by content fingerprint, the ReStore-style discipline of
// persisting prior results instead of recomputing per request.
package server

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/trace"
)

// ErrStoreFull is returned when an ingest would exceed the store's
// configured memory bounds (trace count, or total job count in a store
// with no disk backing to spill to).
var ErrStoreFull = errors.New("server: trace store full")

// ErrNotFound is returned for operations on unknown trace names.
var ErrNotFound = errors.New("server: no such trace")

// ErrTooLarge is returned when a request needs a disk-resident trace
// materialized in memory (full reports, synthesis, replay) but the
// trace alone exceeds the in-memory job budget; such traces are served
// by the out-of-core streaming analyses only.
var ErrTooLarge = errors.New("server: trace exceeds the in-memory budget")

// errUnsortedSpill rejects the one upload shape the spill path cannot
// take: jobs out of submit order in a stream too large to sort in
// memory (the engine has no external sort).
var errUnsortedSpill = errors.New("server: upload is not in submit order and exceeds the in-memory budget (sort the stream before uploading)")

// TraceInfo is the stored identity of one trace: the name it is served
// under, its content fingerprint, and its Table-1 summary.
type TraceInfo struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Workload    string `json:"workload"`
	Machines    int    `json:"machines,omitempty"`
	LengthMS    int64  `json:"length_ms"`
	Jobs        int    `json:"jobs"`
	BytesMoved  int64  `json:"bytes_moved"`
	// Cluster marks a distributed trace served by scatter/gather;
	// Shards is its shard count (both zero-valued for local traces).
	Cluster bool `json:"cluster,omitempty"`
	Shards  int  `json:"shards,omitempty"`
}

// entry pairs an immutable trace snapshot with its identity. The *Trace
// (and every Job it points to) is never mutated after insertion, which
// is what makes lock-free reads of a snapshot safe: writers swap whole
// entries under the write lock, so a reader holding a snapshot keeps
// analyzing exactly the version it resolved, untouched by concurrent
// re-ingests of the same name.
//
// In a disk-backed store an entry has two tiers: stored is the durable
// generation on disk (always present), t is the in-memory hot copy
// (nil when the entry has been spilled or evicted — reads then stream
// from the segments). In a memory-only store t is always present and
// stored is nil.
type entry struct {
	t    *trace.Trace
	info TraceInfo
	// partial is the frozen aggregate: an exact-mode core.Partial
	// observed at ingest (or decoded from the on-disk snapshot at
	// recovery), so a cold report finalizes precomputed section
	// aggregates instead of re-reading every job. Never mutated after
	// insertion — Partial.Report is read-only — and nil when partials
	// are disabled or the trace cannot be binned (shorter than two
	// hours). Costs ~24 B per job of heap.
	partial *core.Partial
	// recovered marks a partial decoded from a persisted snapshot
	// rather than built by this process — surfaced in the X-Analysis
	// header so restart round-trips are observable.
	recovered bool
	// stored is the committed on-disk generation (nil without backing).
	stored *storage.Trace
	// elem is the entry's position in the residency LRU while t != nil.
	elem *list.Element
}

// Store is the concurrent trace store. Without disk backing it is
// memory-only and memory is bounded by two knobs — the number of named
// traces and the total job count across them — with ingests beyond the
// bounds rejected (ErrStoreFull) rather than silently evicting data a
// client may be querying.
//
// With backing attached the job-count knob bounds only the in-memory
// hot tier: every trace is written through to disk, uploads that
// exceed the remaining hot budget spill to disk instead of being
// rejected, and hot-tier overflow evicts the least-recently-used
// resident copy (the segments remain, so eviction costs a reload, not
// data). DELETE garbage-collects the on-disk segments.
type Store struct {
	mu sync.RWMutex
	// lruMu serializes recency touches from concurrent readers. Reads
	// resolve entries under mu.RLock for concurrency; the only mutation
	// they perform is a MoveToFront, guarded here. Structural list
	// changes (push, remove, evict) happen under mu's write lock, which
	// excludes all readers, and take lruMu too so the two never
	// interleave. Lock order: mu before lruMu.
	lruMu        sync.Mutex
	entries      map[string]*entry
	lru          *list.List // resident entries; front = most recently used
	residentJobs int
	maxTraces    int
	maxTotalJobs int
	noPartials   bool
	backing      *storage.Store

	// appendStates holds the live append session per trace name (see
	// append.go). Map membership changes under mu; each session's write
	// path serializes on its own mutex. appendOpenMu serializes session
	// *opening* store-wide — opening replays the committed jobs, and that
	// replay must not run twice for one name.
	appendStates map[string]*appendState
	appendOpenMu sync.Mutex

	ingests        uint64
	rejected       uint64
	appends        uint64
	appendRejected uint64
	spills         uint64
	evictions      uint64
	reloads        uint64
	compactions    uint64
	segmentsMerged uint64
	blocksRefilled uint64
}

// DefaultMaxTraces and DefaultMaxTotalJobs bound the store when the
// configuration leaves them zero. 2M jobs ≈ the two Facebook traces
// together; at ~200 B/job that is a few hundred MB of heap.
const (
	DefaultMaxTraces    = 64
	DefaultMaxTotalJobs = 2_000_000
)

// NewStore creates a memory-only store with the given bounds (zero:
// defaults). Attach disk backing with AttachBacking before serving.
func NewStore(maxTraces, maxTotalJobs int) *Store {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxTotalJobs <= 0 {
		maxTotalJobs = DefaultMaxTotalJobs
	}
	return &Store{
		entries:      make(map[string]*entry),
		lru:          list.New(),
		appendStates: make(map[string]*appendState),
		maxTraces:    maxTraces,
		maxTotalJobs: maxTotalJobs,
	}
}

// AttachBacking wires a durable storage engine under the store and
// registers its recovered traces as disk-resident entries, loading each
// one's persisted partial aggregate (unless partials are disabled) so
// the first cold report after a restart finalizes on-disk state instead
// of rescanning jobs. Call before the store starts serving.
func (s *Store) AttachBacking(b *storage.Store, recovered []*storage.Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.backing = b
	for _, st := range recovered {
		e := &entry{
			stored: st,
			info: TraceInfo{
				Name:        st.Name(),
				Fingerprint: st.Fingerprint(),
				Workload:    st.Meta().Name,
				Machines:    st.Meta().Machines,
				LengthMS:    st.Meta().Length.Milliseconds(),
				Jobs:        st.Jobs(),
				BytesMoved:  st.BytesMoved(),
			},
		}
		if !s.noPartials {
			if p, err := st.LoadPartial(); err == nil && p != nil {
				e.partial = p
				e.recovered = true
			}
		}
		s.entries[st.Name()] = e
	}
}

// normalize sorts the trace, derives missing metadata from the job span
// (uploads may carry a zero Start/Length header), and validates every
// record. The trace must not be shared with any other writer.
func normalize(name string, t *trace.Trace) error {
	if t.Len() == 0 {
		return fmt.Errorf("server: trace %q is empty", name)
	}
	t.Sort()
	if t.Meta.Name == "" {
		t.Meta.Name = name
	}
	start, end := t.Span()
	if t.Meta.Start.IsZero() {
		t.Meta.Start = start
	}
	if t.Meta.Length <= 0 {
		t.Meta.Length = end.Sub(t.Meta.Start)
	}
	return t.Validate()
}

// DisablePartials turns off ingest-time partial aggregation (for
// memory-constrained deployments; cold reports then scan the stored
// jobs, shard-parallel when the request asks for it). Call before the
// store starts serving.
func (s *Store) DisablePartials() { s.noPartials = true }

// Put inserts (or replaces) the trace under name. The caller hands over
// ownership: the store normalizes the trace in place, fingerprints it,
// and from then on treats it as immutable. Returns the stored identity.
func (s *Store) Put(name string, t *trace.Trace) (TraceInfo, error) {
	return s.put(name, t, nil)
}

// put is Put with an optional partial aggregate observed during a
// streaming ingest. The partial is adopted only if it demonstrably
// covers this exact trace (same metadata, same job count); otherwise —
// and for every non-ingest Put, e.g. preloads and stored syntheses — a
// fresh aggregate is built here, shard-parallel across the CPUs, so
// every stored trace carries one. Partial construction is best-effort:
// a trace too short for hourly binning stores with a nil partial and
// reports fall back to scanning.
//
// With backing, the trace is written through: segments and snapshot
// are staged and fsynced outside the store lock (the expensive part),
// and only the atomic manifest commit happens inside it, ordered with
// the map insert so the disk and memory views can never disagree about
// which upload won a race on one name.
func (s *Store) put(name string, t *trace.Trace, p *core.Partial) (TraceInfo, error) {
	if name == "" {
		return TraceInfo{}, fmt.Errorf("server: empty trace name")
	}
	if err := normalize(name, t); err != nil {
		return TraceInfo{}, err
	}
	// Cheap non-authoritative admission check before the expensive work
	// (partial aggregation + fingerprint): a store that is already full
	// must not burn a multi-core analysis scan per rejected upload. The
	// bounds are re-checked authoritatively under the write lock below.
	if err := s.precheck(name, t.Len()); err != nil {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return TraceInfo{}, err
	}
	if p != nil && (p.Sketch() || p.Jobs() != t.Len() || p.Meta() != t.Meta) {
		p = nil
	}
	if p == nil && !s.noPartials {
		p, _ = core.BuildTracePartial(t, 0, false)
	}
	fp, err := t.Fingerprint()
	if err != nil {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return TraceInfo{}, err
	}
	sum := t.Summarize()
	info := TraceInfo{
		Name:        name,
		Fingerprint: fp,
		Workload:    t.Meta.Name,
		Machines:    t.Meta.Machines,
		LengthMS:    t.Meta.Length.Milliseconds(),
		Jobs:        sum.Jobs,
		BytesMoved:  int64(sum.BytesMoved),
	}

	var sealed *storage.Sealed
	if s.backing != nil {
		sealed, err = s.backing.Stage(name, t, fp, p)
		if err != nil {
			// Every non-committed ingest outcome counts as a rejection,
			// not just admission failures — /v1/stats must not undercount
			// failed uploads.
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			return TraceInfo{}, fmt.Errorf("server: persisting %q: %w", name, err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitLocked(name, t.Len()); err != nil {
		s.rejected++
		if sealed != nil {
			sealed.Abort()
		}
		return TraceInfo{}, err
	}
	var stored *storage.Trace
	if sealed != nil {
		stored, err = sealed.Commit()
		if err != nil {
			s.rejected++
			sealed.Abort()
			return TraceInfo{}, fmt.Errorf("server: committing %q: %w", name, err)
		}
	}
	e := &entry{t: t, info: info, partial: p, stored: stored}
	s.installLocked(name, e)
	s.invalidateAppendLocked(name)
	s.ingests++
	return info, nil
}

// admitLocked re-checks the admission bounds under the write lock for a
// resident insert of jobs under name. With backing, only the trace
// count can reject — job overflow evicts instead.
func (s *Store) admitLocked(name string, jobs int) error {
	old, replacing := s.entries[name]
	if !replacing && len(s.entries) >= s.maxTraces {
		return fmt.Errorf("%w: %d traces (max %d)", ErrStoreFull, len(s.entries), s.maxTraces)
	}
	if s.backing == nil {
		oldJobs := 0
		if replacing {
			oldJobs = old.info.Jobs
		}
		if newTotal := s.residentJobs - oldJobs + jobs; newTotal > s.maxTotalJobs {
			return fmt.Errorf("%w: %d total jobs would exceed max %d", ErrStoreFull, newTotal, s.maxTotalJobs)
		}
	}
	return nil
}

// installLocked replaces name's entry with e, maintaining the residency
// accounting and LRU, and (with backing) evicting least-recently-used
// resident copies until the hot tier fits its budget again.
func (s *Store) installLocked(name string, e *entry) {
	if old, ok := s.entries[name]; ok {
		s.dropResidencyLocked(old)
	}
	s.entries[name] = e
	if e.t != nil {
		s.residentJobs += e.info.Jobs
		s.lruMu.Lock()
		e.elem = s.lru.PushFront(e)
		s.lruMu.Unlock()
	}
	if s.backing != nil {
		s.evictToFitLocked()
	}
}

// dropResidencyLocked removes an entry's hot copy from the accounting
// (the entry itself stays wherever it is referenced).
func (s *Store) dropResidencyLocked(e *entry) {
	if e.t == nil {
		return
	}
	s.residentJobs -= e.info.Jobs
	s.lruMu.Lock()
	if e.elem != nil {
		s.lru.Remove(e.elem)
		e.elem = nil
	}
	s.lruMu.Unlock()
	e.t = nil
}

// evictToFitLocked sheds least-recently-used hot copies until the
// resident tier fits the job budget. Eviction spills nothing — every
// entry with a hot copy already has its segments on disk — it only
// drops the in-memory jobs.
func (s *Store) evictToFitLocked() {
	for s.residentJobs > s.maxTotalJobs {
		s.lruMu.Lock()
		back := s.lru.Back()
		s.lruMu.Unlock()
		if back == nil {
			return
		}
		s.dropResidencyLocked(back.Value.(*entry))
		s.evictions++
	}
}

// touch marks a resident entry recently used. Callers hold mu (either
// mode); lruMu serializes the list move against concurrent readers.
func (s *Store) touch(e *entry) {
	s.lruMu.Lock()
	if e.elem != nil {
		s.lru.MoveToFront(e.elem)
	}
	s.lruMu.Unlock()
}

// Ingest drains a job stream into the store under name. The stream is
// bounded as it is read: an upload that would not fit the *remaining*
// hot-tier job budget (counting the trace it would replace as freed)
// is, without backing, rejected mid-stream before it can balloon the
// heap — and, with backing, switched to the spill path: the buffered
// jobs and the rest of the stream go straight to disk segments, the
// aggregate keeps building inline, and the trace is served out-of-core.
//
// When the upload header carries complete metadata, the partial
// aggregate is built inline as the jobs decode — the analysis work of a
// first cold report happens during the upload itself. The builders are
// order-independent, so observing the pre-sort upload order produces
// exactly the aggregate of the normalized trace.
func (s *Store) Ingest(name string, src trace.Source) (TraceInfo, error) {
	if name == "" {
		return TraceInfo{}, fmt.Errorf("server: empty trace name")
	}
	budget := s.RemainingBudget(name)
	meta := src.Meta()
	var p *core.Partial
	if !s.noPartials && !meta.Start.IsZero() && meta.Length > 0 {
		if meta.Name == "" {
			meta.Name = name // mirrors what normalize will decide
		}
		p, _ = core.NewPartial(meta, false)
	}
	t := trace.New(src.Meta())
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return TraceInfo{}, err
		}
		if t.Len() >= budget {
			if s.backing != nil {
				return s.spillIngest(name, t, j, src, p)
			}
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			return TraceInfo{}, fmt.Errorf("%w: upload exceeds the remaining %d-job budget", ErrStoreFull, budget)
		}
		t.Add(j)
		if p != nil {
			p.Observe(j)
		}
	}
	return s.put(name, t, p)
}

// precheck samples the store bounds for a prospective insert of jobs
// under name. It is advisory — concurrent writers can invalidate it —
// so put re-checks under the write lock; its job is to fail clearly
// doomed inserts before the expensive aggregation and hashing.
func (s *Store) precheck(name string, jobs int) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.admitLocked(name, jobs)
}

// RemainingBudget reports how many more jobs the hot tier could accept
// under name right now, counting the resident copy that name currently
// holds as freed (a Put replaces it). It is a point-in-time sample:
// writers that buffer against it must still expect the authoritative
// re-check at install time.
func (s *Store) RemainingBudget(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	budget := s.maxTotalJobs - s.residentJobs
	if e, ok := s.entries[name]; ok && e.t != nil {
		budget += e.info.Jobs
	}
	return budget
}

// View is one consistent read of an entry: identity, the hot copy (nil
// when the trace lives only on disk), the frozen partial aggregate, and
// the durable handle. Trace and partial come from one entry: a
// concurrent re-ingest of the name cannot pair this trace with another
// upload's aggregate.
type View struct {
	Trace *trace.Trace
	Info  TraceInfo
	// Partial is the frozen aggregate (nil when unavailable).
	Partial *core.Partial
	// Recovered marks a partial decoded from the on-disk snapshot at
	// startup rather than built by this process.
	Recovered bool
	// Stored is the durable generation (nil in memory-only stores).
	Stored *storage.Trace
}

// View resolves name. Resident entries of a disk-backed store are
// marked recently used; reads stay on the shared lock so concurrent
// report traffic never serializes on the store.
func (s *Store) View(name string) (View, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[name]
	if !ok {
		return View{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if e.t != nil && s.backing != nil {
		s.touch(e)
	}
	return View{Trace: e.t, Info: e.info, Partial: e.partial, Recovered: e.recovered, Stored: e.stored}, nil
}

// Snapshot resolves name to its current immutable snapshot together
// with the frozen partial aggregate (nil when unavailable). The trace
// is nil when the entry is disk-resident; use Get to materialize it.
func (s *Store) Snapshot(name string) (*trace.Trace, TraceInfo, *core.Partial, error) {
	v, err := s.View(name)
	return v.Trace, v.Info, v.Partial, err
}

// Get resolves name to an immutable in-memory snapshot, reloading a
// disk-resident trace into the hot tier if needed (evicting colder
// residents to make room). It fails with ErrTooLarge when the trace
// alone exceeds the hot tier's job budget — such traces are served by
// the out-of-core paths only. The returned trace must not be mutated.
func (s *Store) Get(name string) (*trace.Trace, TraceInfo, error) {
	v, err := s.View(name)
	if err != nil {
		return nil, TraceInfo{}, err
	}
	if v.Trace != nil {
		return v.Trace, v.Info, nil
	}
	if v.Info.Jobs > s.maxTotalJobs {
		return nil, TraceInfo{}, fmt.Errorf("%w: %q holds %d jobs, budget is %d",
			ErrTooLarge, name, v.Info.Jobs, s.maxTotalJobs)
	}
	// Load outside the lock; admit under it. A concurrent re-ingest may
	// have replaced the entry meanwhile — then the load is discarded.
	tr, err := v.Stored.Collect()
	if err != nil {
		return nil, TraceInfo{}, fmt.Errorf("server: reloading %q: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return nil, TraceInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if e.info.Fingerprint != v.Info.Fingerprint {
		// Replaced while loading; serve the loaded snapshot we have (it
		// is a consistent version) without installing it.
		return tr, v.Info, nil
	}
	if e.t == nil {
		e.t = tr
		s.residentJobs += e.info.Jobs
		// Structural list change: documented lock protocol is mu's write
		// lock AND lruMu (mirroring installLocked), so a reader-side
		// MoveToFront under RLock can never interleave with the push.
		s.lruMu.Lock()
		e.elem = s.lru.PushFront(e)
		s.lruMu.Unlock()
		s.reloads++
		s.evictToFitLocked()
	}
	return e.t, e.info, nil
}

// Delete removes name, reporting the deleted identity and whether the
// trace existed — the identity is what lets the caller invalidate
// fingerprint-keyed caches. With backing, the on-disk segments are
// garbage-collected under the same lock that orders commits, so a
// concurrent re-ingest of the name either commits before the delete
// (and is deleted with it) or after it (and survives) — the directory
// can never be removed out from under an entry the store still serves.
// The removal itself is best-effort: the in-memory removal wins even if
// the directory removal fails (a restart would then resurrect the
// trace, which is the safe direction).
func (s *Store) Delete(name string) (TraceInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return TraceInfo{}, false
	}
	s.dropResidencyLocked(e)
	delete(s.entries, name)
	s.invalidateAppendLocked(name)
	if s.backing != nil && e.stored != nil {
		_ = s.backing.Delete(name)
	}
	return e.info, true
}

// HasFingerprint reports whether any stored trace currently has the
// given content fingerprint (two names may hold identical content; the
// caller must not invalidate shared fingerprint-keyed results while one
// holder remains).
func (s *Store) HasFingerprint(fp string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.entries {
		if e.info.Fingerprint == fp {
			return true
		}
	}
	return false
}

// List returns the identities of every stored trace, sorted by name.
func (s *Store) List() []TraceInfo {
	s.mu.RLock()
	out := make([]TraceInfo, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.info)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// OpenAppendSessions counts the live append sessions — the gauge the
// observability layer exposes so a dashboard can see how many traces
// are mid-feed.
func (s *Store) OpenAppendSessions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.appendStates)
}

// TraceStorage is one stored trace's on-disk shape for the per-trace
// storage gauges: segment and colseg block counts, committed bytes,
// and whether a hot in-memory copy is resident.
type TraceStorage struct {
	Name     string
	Jobs     int
	Segments int
	Blocks   int
	Bytes    int64
	Resident bool
}

// StorageGauges snapshots every stored trace's storage shape, sorted
// by name. Traces without disk backing report zero segments/bytes but
// still appear (their job count and residency are real).
func (s *Store) StorageGauges() []TraceStorage {
	s.mu.RLock()
	out := make([]TraceStorage, 0, len(s.entries))
	for name, e := range s.entries {
		ts := TraceStorage{Name: name, Jobs: e.info.Jobs, Resident: e.t != nil}
		if e.stored != nil {
			ts.Segments = e.stored.Segments()
			ts.Blocks = e.stored.Blocks()
			ts.Bytes = e.stored.SizeBytes()
		}
		out = append(out, ts)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// StoreStats is the store's occupancy and lifetime counters. TotalJobs
// counts jobs across every stored trace; ResidentJobs counts the hot
// tier only (they differ once traces spill or evict to disk). Partials
// counts traces carrying a frozen aggregate; DiskTraces and DiskBytes
// describe the durable tier.
type StoreStats struct {
	Traces       int    `json:"traces"`
	TotalJobs    int    `json:"total_jobs"`
	ResidentJobs int    `json:"resident_jobs"`
	Partials     int    `json:"partials"`
	MaxTraces    int    `json:"max_traces"`
	MaxTotalJobs int    `json:"max_total_jobs"`
	Ingests      uint64 `json:"ingests"`
	Rejected     uint64 `json:"rejected"`
	// Appends counts committed append batches; AppendRejected every
	// append batch that did not commit (bad input, conflicts, budget).
	Appends        uint64 `json:"appends,omitempty"`
	AppendRejected uint64 `json:"append_rejected,omitempty"`
	DiskTraces     int    `json:"disk_traces,omitempty"`
	DiskBytes      int64  `json:"disk_bytes,omitempty"`
	Spills         uint64 `json:"spills,omitempty"`
	Evictions      uint64 `json:"evictions,omitempty"`
	Reloads        uint64 `json:"reloads,omitempty"`
	// Compactions counts committed background rewrites; SegmentsMerged
	// and BlocksRefilled how many segment files and undersized colseg
	// blocks those rewrites eliminated.
	Compactions    uint64 `json:"compactions,omitempty"`
	SegmentsMerged uint64 `json:"segments_merged,omitempty"`
	BlocksRefilled uint64 `json:"blocks_refilled,omitempty"`
}

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := StoreStats{
		Traces:         len(s.entries),
		ResidentJobs:   s.residentJobs,
		MaxTraces:      s.maxTraces,
		MaxTotalJobs:   s.maxTotalJobs,
		Ingests:        s.ingests,
		Rejected:       s.rejected,
		Appends:        s.appends,
		AppendRejected: s.appendRejected,
		Spills:         s.spills,
		Evictions:      s.evictions,
		Reloads:        s.reloads,
		Compactions:    s.compactions,
		SegmentsMerged: s.segmentsMerged,
		BlocksRefilled: s.blocksRefilled,
	}
	for _, e := range s.entries {
		st.TotalJobs += e.info.Jobs
		if e.partial != nil {
			st.Partials++
		}
		if e.stored != nil {
			st.DiskTraces++
			st.DiskBytes += e.stored.SizeBytes()
		}
	}
	return st
}
