// Package server is the serving layer: a long-running HTTP/JSON service
// that owns named workload traces in a concurrent in-memory store and
// answers the study's analytics interactively — the "interactive
// analytical processing" usage mode the paper argues MapReduce clusters
// evolved into, applied to the analysis pipeline itself. Reports,
// synthesis, and replay results are memoized in a single-flight result
// cache keyed by content fingerprint, the ReStore-style discipline of
// persisting prior results instead of recomputing per request.
package server

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/trace"
)

// ErrStoreFull is returned when an ingest would exceed the store's
// configured memory bounds (trace count or total job count).
var ErrStoreFull = errors.New("server: trace store full")

// ErrNotFound is returned for operations on unknown trace names.
var ErrNotFound = errors.New("server: no such trace")

// TraceInfo is the stored identity of one trace: the name it is served
// under, its content fingerprint, and its Table-1 summary.
type TraceInfo struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Workload    string `json:"workload"`
	Machines    int    `json:"machines,omitempty"`
	LengthMS    int64  `json:"length_ms"`
	Jobs        int    `json:"jobs"`
	BytesMoved  int64  `json:"bytes_moved"`
}

// entry pairs an immutable trace snapshot with its identity. The *Trace
// (and every Job it points to) is never mutated after insertion, which
// is what makes lock-free reads of a snapshot safe: Put swaps whole
// entries under the write lock, so a reader holding a snapshot keeps
// analyzing exactly the version it resolved, untouched by concurrent
// re-ingests of the same name.
type entry struct {
	t    *trace.Trace
	info TraceInfo
	// partial is the frozen ingest-time aggregate: an exact-mode
	// core.Partial observed while (or right after) the trace was
	// ingested, so a first cold report finalizes precomputed section
	// aggregates instead of re-reading every job. Never mutated after
	// insertion — Partial.Report is read-only — and nil when partials
	// are disabled or the trace cannot be binned (shorter than two
	// hours). Costs ~24 B per job on top of the stored trace.
	partial *core.Partial
}

// Store is the concurrent in-memory trace store. Memory is bounded by
// two knobs: the number of named traces and the total job count across
// them; ingests that would exceed either are rejected with ErrStoreFull
// rather than silently evicting data a client may be querying.
type Store struct {
	mu           sync.RWMutex
	entries      map[string]*entry
	totalJobs    int
	maxTraces    int
	maxTotalJobs int
	noPartials   bool

	ingests  uint64
	rejected uint64
}

// DefaultMaxTraces and DefaultMaxTotalJobs bound the store when the
// configuration leaves them zero. 2M jobs ≈ the two Facebook traces
// together; at ~200 B/job that is a few hundred MB of heap.
const (
	DefaultMaxTraces    = 64
	DefaultMaxTotalJobs = 2_000_000
)

// NewStore creates a store with the given bounds (zero: defaults).
func NewStore(maxTraces, maxTotalJobs int) *Store {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxTotalJobs <= 0 {
		maxTotalJobs = DefaultMaxTotalJobs
	}
	return &Store{
		entries:      make(map[string]*entry),
		maxTraces:    maxTraces,
		maxTotalJobs: maxTotalJobs,
	}
}

// normalize sorts the trace, derives missing metadata from the job span
// (uploads may carry a zero Start/Length header), and validates every
// record. The trace must not be shared with any other writer.
func normalize(name string, t *trace.Trace) error {
	if t.Len() == 0 {
		return fmt.Errorf("server: trace %q is empty", name)
	}
	t.Sort()
	if t.Meta.Name == "" {
		t.Meta.Name = name
	}
	start, end := t.Span()
	if t.Meta.Start.IsZero() {
		t.Meta.Start = start
	}
	if t.Meta.Length <= 0 {
		t.Meta.Length = end.Sub(t.Meta.Start)
	}
	return t.Validate()
}

// DisablePartials turns off ingest-time partial aggregation (for
// memory-constrained deployments; cold reports then scan the stored
// jobs, shard-parallel when the request asks for it). Call before the
// store starts serving.
func (s *Store) DisablePartials() { s.noPartials = true }

// Put inserts (or replaces) the trace under name. The caller hands over
// ownership: the store normalizes the trace in place, fingerprints it,
// and from then on treats it as immutable. Returns the stored identity.
func (s *Store) Put(name string, t *trace.Trace) (TraceInfo, error) {
	return s.put(name, t, nil)
}

// put is Put with an optional partial aggregate observed during a
// streaming ingest. The partial is adopted only if it demonstrably
// covers this exact trace (same metadata, same job count); otherwise —
// and for every non-ingest Put, e.g. preloads and stored syntheses — a
// fresh aggregate is built here, shard-parallel across the CPUs, so
// every stored trace carries one. Partial construction is best-effort:
// a trace too short for hourly binning stores with a nil partial and
// reports fall back to scanning.
func (s *Store) put(name string, t *trace.Trace, p *core.Partial) (TraceInfo, error) {
	if name == "" {
		return TraceInfo{}, fmt.Errorf("server: empty trace name")
	}
	if err := normalize(name, t); err != nil {
		return TraceInfo{}, err
	}
	// Cheap non-authoritative admission check before the expensive work
	// (partial aggregation + fingerprint): a store that is already full
	// must not burn a multi-core analysis scan per rejected upload. The
	// bounds are re-checked authoritatively under the write lock below.
	if err := s.precheck(name, t.Len()); err != nil {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return TraceInfo{}, err
	}
	if p != nil && (p.Sketch() || p.Jobs() != t.Len() || p.Meta() != t.Meta) {
		p = nil
	}
	if p == nil && !s.noPartials {
		p, _ = core.BuildTracePartial(t, 0, false)
	}
	fp, err := t.Fingerprint()
	if err != nil {
		return TraceInfo{}, err
	}
	sum := t.Summarize()
	info := TraceInfo{
		Name:        name,
		Fingerprint: fp,
		Workload:    t.Meta.Name,
		Machines:    t.Meta.Machines,
		LengthMS:    t.Meta.Length.Milliseconds(),
		Jobs:        sum.Jobs,
		BytesMoved:  int64(sum.BytesMoved),
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	oldJobs := 0
	old, replacing := s.entries[name]
	if replacing {
		oldJobs = old.info.Jobs
	}
	if !replacing && len(s.entries) >= s.maxTraces {
		s.rejected++
		return TraceInfo{}, fmt.Errorf("%w: %d traces (max %d)", ErrStoreFull, len(s.entries), s.maxTraces)
	}
	if newTotal := s.totalJobs - oldJobs + t.Len(); newTotal > s.maxTotalJobs {
		s.rejected++
		return TraceInfo{}, fmt.Errorf("%w: %d total jobs would exceed max %d", ErrStoreFull, newTotal, s.maxTotalJobs)
	}
	s.entries[name] = &entry{t: t, info: info, partial: p}
	s.totalJobs += t.Len() - oldJobs
	s.ingests++
	return info, nil
}

// Ingest drains a job stream into the store under name. The stream is
// bounded as it is read: an upload that would not fit the *remaining*
// job budget (counting the trace it would replace as freed) is rejected
// mid-stream, before it can balloon the heap. The budget is sampled at
// ingest start, so concurrent uploads may each buffer up to the same
// remainder; Put re-checks the bound authoritatively under the lock.
//
// When the upload header carries complete metadata, the partial
// aggregate is built inline as the jobs decode — the analysis work of a
// first cold report happens during the upload itself. The builders are
// order-independent, so observing the pre-sort upload order produces
// exactly the aggregate of the normalized trace.
func (s *Store) Ingest(name string, src trace.Source) (TraceInfo, error) {
	budget := s.RemainingBudget(name)
	meta := src.Meta()
	var p *core.Partial
	if !s.noPartials && !meta.Start.IsZero() && meta.Length > 0 {
		if meta.Name == "" {
			meta.Name = name // mirrors what normalize will decide
		}
		p, _ = core.NewPartial(meta, false)
	}
	t := trace.New(src.Meta())
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return TraceInfo{}, err
		}
		if t.Len() >= budget {
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			return TraceInfo{}, fmt.Errorf("%w: upload exceeds the remaining %d-job budget", ErrStoreFull, budget)
		}
		t.Add(j)
		if p != nil {
			p.Observe(j)
		}
	}
	return s.put(name, t, p)
}

// precheck samples the store bounds for a prospective insert of jobs
// under name. It is advisory — concurrent writers can invalidate it —
// so put re-checks under the write lock; its job is to fail clearly
// doomed inserts before the expensive aggregation and hashing.
func (s *Store) precheck(name string, jobs int) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	oldJobs := 0
	_, replacing := s.entries[name]
	if replacing {
		oldJobs = s.entries[name].info.Jobs
	}
	if !replacing && len(s.entries) >= s.maxTraces {
		return fmt.Errorf("%w: %d traces (max %d)", ErrStoreFull, len(s.entries), s.maxTraces)
	}
	if newTotal := s.totalJobs - oldJobs + jobs; newTotal > s.maxTotalJobs {
		return fmt.Errorf("%w: %d total jobs would exceed max %d", ErrStoreFull, newTotal, s.maxTotalJobs)
	}
	return nil
}

// RemainingBudget reports how many more jobs the store could accept
// under name right now, counting the trace that name currently holds as
// freed (a Put replaces it). It is a point-in-time sample: writers that
// buffer against it must still expect Put's authoritative re-check.
func (s *Store) RemainingBudget(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	budget := s.maxTotalJobs - s.totalJobs
	if e, ok := s.entries[name]; ok {
		budget += e.info.Jobs
	}
	return budget
}

// Get resolves name to its current immutable snapshot. The returned
// trace must not be mutated.
func (s *Store) Get(name string) (*trace.Trace, TraceInfo, error) {
	t, info, _, err := s.Snapshot(name)
	return t, info, err
}

// Snapshot resolves name to its current immutable snapshot together
// with the frozen ingest-time partial aggregate (nil when unavailable).
// Trace and partial come from one consistent entry: a concurrent
// re-ingest of the name cannot pair this trace with another upload's
// aggregate.
func (s *Store) Snapshot(name string) (*trace.Trace, TraceInfo, *core.Partial, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[name]
	if !ok {
		return nil, TraceInfo{}, nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e.t, e.info, e.partial, nil
}

// Delete removes name, reporting the deleted identity and whether the
// trace existed — the identity is what lets the caller invalidate
// fingerprint-keyed caches.
func (s *Store) Delete(name string) (TraceInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return TraceInfo{}, false
	}
	s.totalJobs -= e.info.Jobs
	delete(s.entries, name)
	return e.info, true
}

// HasFingerprint reports whether any stored trace currently has the
// given content fingerprint (two names may hold identical content; the
// caller must not invalidate shared fingerprint-keyed results while one
// holder remains).
func (s *Store) HasFingerprint(fp string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.entries {
		if e.info.Fingerprint == fp {
			return true
		}
	}
	return false
}

// List returns the identities of every stored trace, sorted by name.
func (s *Store) List() []TraceInfo {
	s.mu.RLock()
	out := make([]TraceInfo, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.info)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// StoreStats is the store's occupancy and lifetime counters. Partials
// counts stored traces carrying a frozen ingest-time aggregate.
type StoreStats struct {
	Traces       int    `json:"traces"`
	TotalJobs    int    `json:"total_jobs"`
	Partials     int    `json:"partials"`
	MaxTraces    int    `json:"max_traces"`
	MaxTotalJobs int    `json:"max_total_jobs"`
	Ingests      uint64 `json:"ingests"`
	Rejected     uint64 `json:"rejected"`
}

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	partials := 0
	for _, e := range s.entries {
		if e.partial != nil {
			partials++
		}
	}
	return StoreStats{
		Traces:       len(s.entries),
		TotalJobs:    s.totalJobs,
		Partials:     partials,
		MaxTraces:    s.maxTraces,
		MaxTotalJobs: s.maxTotalJobs,
		Ingests:      s.ingests,
		Rejected:     s.rejected,
	}
}
