package server

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/storage"
)

// TestDifferentialScanFormats is the representation-independence
// acceptance test for the columnar segment format: the golden FB-2009
// day-1 trace analyzed three ways — the in-memory path, a JSONL spill
// scanned out-of-core, and a columnar spill scanned out-of-core — must
// produce byte-identical report bodies, and every path must commit the
// pinned golden fingerprint (fingerprints hash canonical JSONL, so the
// segment codec must never show through). CI runs this under -race,
// which also exercises the columnar reader's pooled volatile batches
// across the scan's parallel shards.
func TestDifferentialScanFormats(t *testing.T) {
	tr := genTrace(t, "FB-2009", 1, 24*time.Hour)

	// The identity pin: the same golden file internal/core locks the
	// generator and canonical codec against.
	raw, err := os.ReadFile(filepath.Join("..", "core", "testdata", "fb2009_day1.fingerprint"))
	if err != nil {
		t.Fatal(err)
	}
	wantFP := string(bytes.TrimSpace(raw))

	// Reference bytes from a plain in-memory server.
	_, tsRef := newTestServer(t)
	refInfo := ingestTrace(t, tsRef, "ref", tr)
	if refInfo.Fingerprint != wantFP {
		t.Fatalf("in-memory fingerprint %s, want golden %s", refInfo.Fingerprint, wantFP)
	}
	_, want := getRaw(t, tsRef.URL+"/v1/traces/ref/report")

	for _, codec := range []string{storage.CodecJSONL, storage.CodecColumnar} {
		t.Run(codec, func(t *testing.T) {
			// Budget a third of the trace and disable partials: the
			// report has no choice but to scan the segments.
			s, ts := diskServer(t, t.TempDir(), Config{
				MaxTotalJobs:    tr.Len() / 3,
				DisablePartials: true,
				SegmentCodec:    codec,
			})
			info := ingestTrace(t, ts, "spilled", tr)
			if info.Fingerprint != wantFP {
				t.Errorf("%s spill fingerprint %s, want golden %s", codec, info.Fingerprint, wantFP)
			}
			resp, got := getRaw(t, ts.URL+"/v1/traces/spilled/report")
			if x := resp.Header.Get("X-Analysis"); x != "disk-scan" {
				t.Fatalf("spilled report X-Analysis = %q, want disk-scan", x)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s disk-scan report differs from the in-memory reference (got %d bytes, want %d)",
					codec, len(got), len(want))
			}
			// The scan really ran out-of-core: no jobs became resident.
			if st := s.Store().Stats(); st.ResidentJobs != 0 {
				t.Errorf("%s scan loaded %d jobs into memory", codec, st.ResidentJobs)
			}
		})
	}
}
