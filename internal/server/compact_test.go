package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/trace"
)

// dropAllSessions abandons every open append session, as a restart
// would — the white-box shortcut that lets compaction tests fragment a
// trace with live appends and then make it eligible without cycling
// the whole server.
func dropAllSessions(s *Server) {
	st := s.Store()
	st.mu.Lock()
	for name := range st.appendStates {
		st.invalidateAppendLocked(name)
	}
	st.mu.Unlock()
}

// decodeAppend unmarshals one append response body.
func decodeAppend(t testing.TB, body []byte) AppendResponse {
	t.Helper()
	var ar AppendResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decoding append response %s: %v", clip(body), err)
	}
	return ar
}

// TestCompactionDifferential is the compaction acceptance gate at the
// serving layer: a trace fragmented across two append sessions (a
// restart between them) must report byte-identically before and after
// Compact — whole and windowed, freshly scanned each time — the stats
// counters must record the rewrite, a later append must grow the
// compacted generation onto the golden full-trace fingerprint, and a
// restart must recover the compacted generation.
func TestCompactionDifferential(t *testing.T) {
	tr := genTrace(t, "FB-2009", 1, 24*time.Hour)
	raw, err := os.ReadFile(filepath.Join("..", "core", "testdata", "fb2009_day1.fingerprint"))
	if err != nil {
		t.Fatal(err)
	}
	wantFP := string(bytes.TrimSpace(raw))
	batches := splitBatches(tr, 10)
	n9 := tr.Len() - len(batches[9])
	win := fmt.Sprintf("from=%d&to=%d", tr.Meta.Start.Add(6*time.Hour).Unix(), tr.Meta.Start.Add(18*time.Hour).Unix())

	// Reference bytes for the nine-batch prefix from a plain in-memory
	// server.
	pre9 := trace.New(tr.Meta)
	pre9.Jobs = tr.Jobs[:n9]
	_, tsRef := newTestServer(t)
	refInfo := ingestTrace(t, tsRef, "ref9", pre9)
	_, wantWhole := getRaw(t, tsRef.URL+"/v1/traces/ref9/report")
	_, wantWin := getRaw(t, tsRef.URL+"/v1/traces/ref9/report?"+win)

	// Fragment across a restart: two append sessions over one data dir.
	// Partials stay disabled throughout so every report must scan.
	dir := t.TempDir()
	cfg := Config{DisablePartials: true, SegmentJobs: 5000}
	sA, tsA := diskServer(t, dir, cfg)
	for i := 0; i < 5; i++ {
		if resp, body := postAppend(t, tsA, "live", tr.Meta, batches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("session A batch %d: %d %s", i, resp.StatusCode, clip(body))
		}
	}
	tsA.Close()
	if err := sA.Close(); err != nil {
		t.Fatal(err)
	}
	sB, tsB := diskServer(t, dir, cfg)
	for i := 5; i < 9; i++ {
		if resp, body := postAppend(t, tsB, "live", tr.Meta, batches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("session B batch %d: %d %s", i, resp.StatusCode, clip(body))
		}
	}
	tsB.Close()
	if err := sB.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh server over the fragmented dir: capture both scan paths.
	s, ts := diskServer(t, dir, cfg)
	resp, gotWhole := getRaw(t, ts.URL+"/v1/traces/live/report")
	if x := resp.Header.Get("X-Analysis"); x != "disk-scan" {
		t.Fatalf("fragmented report X-Analysis = %q, want disk-scan", x)
	}
	if got, want := resp.Header.Get("X-Scan-Workers"), strconv.Itoa(runtime.GOMAXPROCS(0)); got != want {
		t.Errorf("X-Scan-Workers = %q, want %q (default worker count)", got, want)
	}
	if !bytes.Equal(gotWhole, wantWhole) {
		t.Error("fragmented disk-scan report differs from the in-memory reference")
	}
	resp, gotWin := getRaw(t, ts.URL+"/v1/traces/live/report?"+win)
	if x := resp.Header.Get("X-Analysis"); x != "window-disk-scan" {
		t.Fatalf("fragmented windowed X-Analysis = %q, want window-disk-scan", x)
	}
	if !bytes.Equal(gotWin, wantWin) {
		t.Error("fragmented windowed report differs from the in-memory reference")
	}
	// An explicit shard count propagates into the worker evidence (a
	// distinct window: shards never enters the cache key, so the same
	// window would replay the cached bytes without scan headers).
	otherWin := fmt.Sprintf("from=%d&to=%d", tr.Meta.Start.Add(7*time.Hour).Unix(), tr.Meta.Start.Add(17*time.Hour).Unix())
	resp, _ = getRaw(t, ts.URL+"/v1/traces/live/report?shards=3&"+otherWin)
	if got := resp.Header.Get("X-Scan-Workers"); got != "3" {
		t.Errorf("shards=3 X-Scan-Workers = %q, want 3", got)
	}

	fp := refInfo.Fingerprint
	n, err := s.Store().Compact(storage.CompactPolicy{MinSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Compact rewrote %d traces, want 1", n)
	}
	st := s.Store().Stats()
	if st.Compactions != 1 || st.SegmentsMerged < 1 || st.BlocksRefilled < 1 {
		t.Fatalf("post-compaction stats: compactions=%d merged=%d refilled=%d",
			st.Compactions, st.SegmentsMerged, st.BlocksRefilled)
	}
	// Identity preserved: same fingerprint, so the cache would mask a
	// divergence — drop it and force fresh scans of the packed layout.
	s.Cache().InvalidatePrefix(fp + "|")
	resp, again := getRaw(t, ts.URL+"/v1/traces/live/report")
	if x := resp.Header.Get("X-Analysis"); x != "disk-scan" {
		t.Fatalf("compacted report X-Analysis = %q, want disk-scan", x)
	}
	if !bytes.Equal(again, wantWhole) {
		t.Error("compacted disk-scan report diverges: the rewrite was not a byte-identical no-op")
	}
	resp, againWin := getRaw(t, ts.URL+"/v1/traces/live/report?"+win)
	if x := resp.Header.Get("X-Analysis"); x != "window-disk-scan" {
		t.Fatalf("compacted windowed X-Analysis = %q, want window-disk-scan", x)
	}
	if !bytes.Equal(againWin, wantWin) {
		t.Error("compacted windowed report diverges: the rewrite was not a byte-identical no-op")
	}
	// A second sweep finds nothing: the compacted mark holds.
	if n, err := s.Store().Compact(storage.CompactPolicy{MinSegments: 2}); err != nil || n != 0 {
		t.Fatalf("second sweep: n=%d err=%v, want a no-op", n, err)
	}

	// The compacted generation still grows: the tail batch lands on the
	// golden full-trace fingerprint, proving the append session replays
	// the packed stream exactly.
	resp2, body := postAppend(t, ts, "live", tr.Meta, batches[9])
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("append after compaction: %d %s", resp2.StatusCode, clip(body))
	}
	last := decodeAppend(t, body)
	if last.Fingerprint != wantFP || last.Jobs != tr.Len() {
		t.Fatalf("after tail append: %s/%d jobs, want golden %s/%d", last.Fingerprint, last.Jobs, wantFP, tr.Len())
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the compacted-then-grown trace recovers intact.
	sD, tsD := diskServer(t, dir, cfg)
	defer sD.Close()
	rec := sD.Recovered()
	if len(rec) != 1 || rec[0].Fingerprint != wantFP || rec[0].Jobs != tr.Len() {
		t.Fatalf("recovered %+v, want golden %s/%d", rec, wantFP, tr.Len())
	}
	_ = tsD
}

// TestCompactSkipsOpenSession: a trace mid-append is not a compaction
// candidate; once its session is gone it is.
func TestCompactSkipsOpenSession(t *testing.T) {
	tr := genTrace(t, "CC-b", 7, 26*time.Hour)
	batches := splitBatches(tr, 6)
	s, ts := diskServer(t, t.TempDir(), Config{SegmentJobs: 5000})
	for i := 0; i < 3; i++ {
		if resp, body := postAppend(t, ts, "live", tr.Meta, batches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: %d %s", i, resp.StatusCode, clip(body))
		}
	}
	// The session is open: even an eager policy must leave it alone.
	if n, err := s.Store().Compact(storage.CompactPolicy{MinSegments: 1, MinFill: 1}); err != nil || n != 0 {
		t.Fatalf("compacting under an open session: n=%d err=%v, want skip", n, err)
	}
	dropAllSessions(s)
	if n, err := s.Store().Compact(storage.CompactPolicy{MinSegments: 1, MinFill: 1}); err != nil || n != 1 {
		t.Fatalf("compacting after session drop: n=%d err=%v, want 1", n, err)
	}
	// The dropped-then-compacted trace still accepts the rest.
	for i := 3; i < 6; i++ {
		if resp, body := postAppend(t, ts, "live", tr.Meta, batches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d after compaction: %d %s", i, resp.StatusCode, clip(body))
		}
	}
	var got TraceInfo
	getJSON(t, ts.URL+"/v1/traces/live", &got)
	_, tsRef := newTestServer(t)
	want := ingestTrace(t, tsRef, "ref", tr)
	if got.Fingerprint != want.Fingerprint || got.Jobs != want.Jobs {
		t.Fatalf("final identity %s/%d, one-shot is %s/%d", got.Fingerprint, got.Jobs, want.Fingerprint, want.Jobs)
	}
}

// TestCompactReapsIdleSessions: an append session is cached for the
// life of the process and pins its trace uncompactable, so the sweep
// loop reaps sessions that have gone a full interval without a batch.
// A reaped trace compacts; its next append transparently reopens a
// session against the packed generation and the identity still matches
// the one-shot upload.
func TestCompactReapsIdleSessions(t *testing.T) {
	tr := genTrace(t, "CC-b", 7, 26*time.Hour)
	batches := splitBatches(tr, 6)
	s, ts := diskServer(t, t.TempDir(), Config{SegmentJobs: 5000})
	for i := 0; i < 3; i++ {
		if resp, body := postAppend(t, ts, "live", tr.Meta, batches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: %d %s", i, resp.StatusCode, clip(body))
		}
	}
	// A generous idle bar leaves the just-used session alone.
	if n := s.Store().ReapIdleAppendSessions(time.Hour); n != 0 {
		t.Fatalf("reaped %d fresh session(s), want 0", n)
	}
	if n, err := s.Store().Compact(storage.CompactPolicy{MinSegments: 1, MinFill: 1}); err != nil || n != 0 {
		t.Fatalf("compacting under a fresh session: n=%d err=%v, want skip", n, err)
	}
	// Zero idle bar: the session has necessarily been idle that long.
	if n := s.Store().ReapIdleAppendSessions(0); n != 1 {
		t.Fatalf("reaped %d session(s), want 1", n)
	}
	if n, err := s.Store().Compact(storage.CompactPolicy{MinSegments: 1, MinFill: 1}); err != nil || n != 1 {
		t.Fatalf("compacting after reap: n=%d err=%v, want 1", n, err)
	}
	for i := 3; i < 6; i++ {
		if resp, body := postAppend(t, ts, "live", tr.Meta, batches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d after reap+compaction: %d %s", i, resp.StatusCode, clip(body))
		}
	}
	var got TraceInfo
	getJSON(t, ts.URL+"/v1/traces/live", &got)
	_, tsRef := newTestServer(t)
	want := ingestTrace(t, tsRef, "ref", tr)
	if got.Fingerprint != want.Fingerprint || got.Jobs != want.Jobs {
		t.Fatalf("final identity %s/%d, one-shot is %s/%d", got.Fingerprint, got.Jobs, want.Fingerprint, want.Jobs)
	}
}

// TestCompactMemoryModeNoop: without a durable store there is nothing
// to compact and the sweep is a quiet no-op.
func TestCompactMemoryModeNoop(t *testing.T) {
	s, ts := newTestServer(t)
	tr := genTrace(t, "FB-2010", 1, 26*time.Hour)
	ingestTrace(t, ts, "mem", tr)
	if n, err := s.Store().Compact(storage.CompactPolicy{MinSegments: 1}); err != nil || n != 0 {
		t.Fatalf("memory-mode compact: n=%d err=%v, want a no-op", n, err)
	}
	if st := s.Store().Stats(); st.Compactions != 0 {
		t.Fatalf("memory-mode compact counted: %+v", st)
	}
}

// TestCompactWhileQuerying races background compaction against
// concurrent windowed disk scans (distinct windows defeat the cache,
// so every request really reads segments while the generation swaps
// under it). Run under -race; afterwards a fresh scan must match the
// pre-compaction reference bytes.
func TestCompactWhileQuerying(t *testing.T) {
	tr := genTrace(t, "CC-b", 7, 26*time.Hour)
	batches := splitBatches(tr, 12)
	s, ts := diskServer(t, t.TempDir(), Config{DisablePartials: true, SegmentJobs: 5000})
	for i := range batches {
		if resp, body := postAppend(t, ts, "live", tr.Meta, batches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: %d %s", i, resp.StatusCode, clip(body))
		}
	}
	dropAllSessions(s)
	ref := fmt.Sprintf("from=%d&to=%d", tr.Meta.Start.Add(2*time.Hour).Unix(), tr.Meta.Start.Add(20*time.Hour).Unix())
	_, want := getRaw(t, ts.URL+"/v1/traces/live/report?"+ref)

	var wg sync.WaitGroup
	committed := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		n, err := s.Store().Compact(storage.CompactPolicy{})
		if err != nil {
			t.Errorf("concurrent compact: %v", err)
		}
		committed <- n
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				from := tr.Meta.Start.Add(time.Duration(g*8+i) * 10 * time.Minute)
				to := from.Add(12 * time.Hour)
				url := fmt.Sprintf("%s/v1/traces/live/report?from=%d&to=%d", ts.URL, from.Unix(), to.Unix())
				resp, body := getRaw(t, url)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query %d/%d during compaction: %d %s", g, i, resp.StatusCode, clip(body))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := <-committed; n != 1 {
		t.Fatalf("concurrent compact committed %d traces, want 1", n)
	}
	var got TraceInfo
	getJSON(t, ts.URL+"/v1/traces/live", &got)
	s.Cache().InvalidatePrefix(got.Fingerprint + "|")
	_, after := getRaw(t, ts.URL+"/v1/traces/live/report?"+ref)
	if !bytes.Equal(after, want) {
		t.Error("report after racing compaction diverges from the pre-compaction bytes")
	}
}

// TestCompactDuringAppend races the sweep against live append batches.
// Whatever interleaving the scheduler picks — the open session makes
// the trace ineligible, or a session opened mid-rewrite gets
// invalidated at commit and its batch transparently retries — every
// append must succeed and the final identity must equal the one-shot
// upload's. Run under -race.
func TestCompactDuringAppend(t *testing.T) {
	tr := genTrace(t, "FB-2010", 2, 26*time.Hour)
	batches := splitBatches(tr, 10)
	s, ts := diskServer(t, t.TempDir(), Config{SegmentJobs: 5000})
	// Seed fragmentation, then drop the session so the sweep sees an
	// eligible trace just as new appends race in.
	for i := 0; i < 4; i++ {
		if resp, body := postAppend(t, ts, "live", tr.Meta, batches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: %d %s", i, resp.StatusCode, clip(body))
		}
	}
	dropAllSessions(s)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := s.Store().Compact(storage.CompactPolicy{MinSegments: 1, MinFill: 1}); err != nil {
				t.Errorf("compact sweep %d: %v", i, err)
			}
		}
	}()
	for i := 4; i < 10; i++ {
		if resp, body := postAppend(t, ts, "live", tr.Meta, batches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("racing batch %d: %d %s", i, resp.StatusCode, clip(body))
		}
	}
	wg.Wait()

	var got TraceInfo
	getJSON(t, ts.URL+"/v1/traces/live", &got)
	_, tsRef := newTestServer(t)
	want := ingestTrace(t, tsRef, "ref", tr)
	if got.Fingerprint != want.Fingerprint || got.Jobs != want.Jobs {
		t.Fatalf("after racing appends: %s/%d, one-shot is %s/%d", got.Fingerprint, got.Jobs, want.Fingerprint, want.Jobs)
	}
}

// TestClusterCompactionDifferential: appends fragment every shard
// replica; compacting each node must leave a re-scattered cluster
// report byte-identical to the single-node in-memory reference.
func TestClusterCompactionDifferential(t *testing.T) {
	tr := genTrace(t, "CC-b", 5, 26*time.Hour)
	base := t.TempDir()
	nodes := newTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.DataDir = filepath.Join(base, fmt.Sprintf("n%d", i))
		cfg.DisablePartials = true
		cfg.SegmentJobs = 5000
	})
	// Seed with a sharded ingest (appends to a fresh name would land
	// the trace whole on one owner), then fragment every shard replica
	// with batched appends.
	batches := splitBatches(tr, 9)
	seed := trace.New(tr.Meta)
	for _, b := range batches[:3] {
		seed.Jobs = append(seed.Jobs, b...)
	}
	ingestTrace(t, nodes[0].ts, "jobs", seed)
	for i := 3; i < 9; i++ {
		if resp, body := postAppend(t, nodes[0].ts, "jobs", tr.Meta, batches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster append %d: %d %s", i, resp.StatusCode, clip(body))
		}
	}

	_, tsRef := newTestServer(t)
	ingestTrace(t, tsRef, "ref", tr)
	_, want := getRaw(t, tsRef.URL+"/v1/traces/ref/report")
	_, before := getReport(t, nodes[0].ts.URL, "jobs", "")
	if !bytes.Equal(before, want) {
		t.Fatal("fragmented cluster report differs from the single-node reference")
	}

	total := 0
	for _, nd := range nodes {
		dropAllSessions(nd.srv)
		n, err := nd.srv.Store().Compact(storage.CompactPolicy{})
		if err != nil {
			t.Fatalf("compacting node %s: %v", nd.id, err)
		}
		total += n
	}
	if total < 2 {
		t.Fatalf("cluster compaction rewrote %d shard replicas, want at least one per shard", total)
	}
	// Same fingerprints, so caches would mask a divergence: clear every
	// node and force a fresh scatter/gather over the packed shards.
	for _, nd := range nodes {
		nd.srv.Cache().InvalidatePrefix("")
	}
	_, after := getReport(t, nodes[0].ts.URL, "jobs", "")
	if !bytes.Equal(after, want) {
		t.Error("cluster report after compaction diverges from the single-node reference")
	}
}
