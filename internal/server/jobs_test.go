package server

import (
	"fmt"
	"testing"
)

// TestJobRegistryEvictsTerminalHistory: finished jobs age out beyond
// maxJobHistory so a long-running server's registry stays bounded.
func TestJobRegistryEvictsTerminalHistory(t *testing.T) {
	r := newJobRegistry()
	// Insert 2x the history cap of already-terminal jobs directly.
	for i := 0; i < 2*maxJobHistory; i++ {
		r.mu.Lock()
		r.seq++
		j := &genJob{id: fmt.Sprintf("gen-%d", r.seq), seq: r.seq, done: make(chan struct{})}
		close(j.done)
		r.m[j.id] = j
		r.evictLocked()
		r.mu.Unlock()
	}
	r.mu.Lock()
	n := len(r.m)
	r.mu.Unlock()
	if n != maxJobHistory {
		t.Errorf("registry holds %d terminal jobs, want %d", n, maxJobHistory)
	}
	// The survivors are the newest; the oldest are gone.
	if _, ok := r.get("gen-1"); ok {
		t.Error("oldest job not evicted")
	}
	if _, ok := r.get(fmt.Sprintf("gen-%d", 2*maxJobHistory)); !ok {
		t.Error("newest job evicted")
	}
	// Running jobs are never evicted, even over the cap.
	r.mu.Lock()
	for i := 0; i < maxJobHistory+8; i++ {
		r.seq++
		j := &genJob{id: fmt.Sprintf("gen-%d", r.seq), seq: r.seq, done: make(chan struct{})}
		r.m[j.id] = j
	}
	r.evictLocked()
	running := 0
	for _, j := range r.m {
		if !j.terminal() {
			running++
		}
	}
	r.mu.Unlock()
	if running != maxJobHistory+8 {
		t.Errorf("running jobs evicted: %d left of %d", running, maxJobHistory+8)
	}
}

// TestJobStatusTransitions covers the status view directly.
func TestJobStatusTransitions(t *testing.T) {
	j := &genJob{id: "gen-1", traceName: "t", workload: "CC-a", done: make(chan struct{})}
	if st := j.status(); st.State != "running" {
		t.Errorf("state %q", st.State)
	}
	j.written.Add(7)
	j.mu.Lock()
	j.err = fmt.Errorf("boom")
	j.mu.Unlock()
	close(j.done)
	st := j.status()
	if st.State != "failed" || st.Error == "" || st.JobsWritten != 7 {
		t.Errorf("status %+v", st)
	}
}
