package synth

import (
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

func genWorkload(t *testing.T, name string, dur time.Duration, seed int64) *trace.Trace {
	t.Helper()
	p, err := profile.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: seed, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSynthesizeBasics(t *testing.T) {
	src := genWorkload(t, "CC-b", 7*24*time.Hour, 1)
	syn, err := Synthesize(src, Config{TargetLength: 24 * time.Hour, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := syn.Validate(); err != nil {
		t.Fatalf("synthetic trace invalid: %v", err)
	}
	if syn.Meta.Length != 24*time.Hour {
		t.Errorf("length = %v", syn.Meta.Length)
	}
	if syn.Meta.Name != "CC-b-synth" {
		t.Errorf("name = %q", syn.Meta.Name)
	}
	// Roughly 1/7 of the source jobs (window sampling preserves rates).
	ratio := float64(syn.Len()) / float64(src.Len())
	if ratio < 0.07 || ratio > 0.25 {
		t.Errorf("job ratio = %v, want ~1/7", ratio)
	}
	// All jobs inside the target window.
	end := syn.Meta.Start.Add(syn.Meta.Length)
	for _, j := range syn.Jobs {
		if j.SubmitTime.Before(syn.Meta.Start) || j.SubmitTime.After(end) {
			t.Fatalf("job %d at %v outside window", j.ID, j.SubmitTime)
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	src := genWorkload(t, "CC-b", 24*time.Hour, 1)
	if _, err := Synthesize(src, Config{TargetLength: time.Minute}); err == nil {
		t.Error("sub-window target should error")
	}
	empty := trace.New(trace.Meta{Name: "e", Start: src.Meta.Start, Length: time.Hour})
	if _, err := Synthesize(empty, Config{TargetLength: time.Hour}); err == nil {
		t.Error("empty source should error")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	src := genWorkload(t, "CC-e", 72*time.Hour, 3)
	a, err := Synthesize(src, Config{TargetLength: 24 * time.Hour, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(src, Config{TargetLength: 24 * time.Hour, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("same seed, different job counts")
	}
	for i := range a.Jobs {
		if a.Jobs[i].InputBytes != b.Jobs[i].InputBytes ||
			!a.Jobs[i].SubmitTime.Equal(b.Jobs[i].SubmitTime) {
			t.Fatal("same seed, different jobs")
		}
	}
}

func TestScaleDown(t *testing.T) {
	src := genWorkload(t, "CC-b", 48*time.Hour, 5)
	syn, err := Synthesize(src, Config{
		TargetLength:   24 * time.Hour,
		SourceMachines: 300,
		TargetMachines: 30,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Meta.Machines != 30 {
		t.Errorf("machines = %d, want 30", syn.Meta.Machines)
	}
	// Aggregate bytes per hour should be roughly 10x smaller than source
	// (same arrival process, 10x smaller jobs).
	srcSum := src.Summarize().BytesMoved.Float() / src.Meta.Length.Hours()
	synSum := syn.Summarize().BytesMoved.Float() / syn.Meta.Length.Hours()
	ratio := synSum / srcSum
	if ratio < 0.03 || ratio > 0.4 {
		t.Errorf("hourly byte ratio = %v, want ~0.1", ratio)
	}
	// Task counts never scale below 1.
	for _, j := range syn.Jobs {
		if j.MapTasks < 1 {
			t.Fatal("map tasks scaled below 1")
		}
	}
}

func TestScaleJobPreservesZeros(t *testing.T) {
	j := &trace.Job{
		SubmitTime:   time.Now(),
		InputBytes:   1000,
		ShuffleBytes: 0,
		OutputBytes:  10,
		MapTime:      100,
		ReduceTime:   0,
		MapTasks:     4,
		ReduceTasks:  0,
	}
	nj := scaleJob(j, 0.1)
	if nj.ShuffleBytes != 0 || nj.ReduceTime != 0 || nj.ReduceTasks != 0 {
		t.Error("zeros must stay zero (map-only jobs stay map-only)")
	}
	if nj.InputBytes != 100 {
		t.Errorf("input = %v, want 100", nj.InputBytes)
	}
	if nj.OutputBytes != 1 {
		t.Errorf("output = %v, want 1", nj.OutputBytes)
	}
	if nj.MapTasks != 1 {
		t.Errorf("map tasks = %d, want 1 (floor)", nj.MapTasks)
	}
	// Tiny bytes floor at 1, not 0.
	small := &trace.Job{InputBytes: 3, SubmitTime: time.Now()}
	if got := scaleJob(small, 0.1).InputBytes; got != 1 {
		t.Errorf("scaled tiny input = %v, want 1", got)
	}
}

func TestFidelitySelfComparison(t *testing.T) {
	src := genWorkload(t, "CC-e", 72*time.Hour, 9)
	fid, err := Compare(src, src)
	if err != nil {
		t.Fatal(err)
	}
	if fid.MaxKS() != 0 {
		t.Errorf("self KS = %v, want 0", fid.MaxKS())
	}
	if fid.PeakToMedianRel != 0 {
		t.Errorf("self p2m rel = %v, want 0", fid.PeakToMedianRel)
	}
}

func TestFidelityOfSynthesis(t *testing.T) {
	// The headline SWIM property: a sampled, scaled-down workload keeps
	// the distribution shapes. Paper §7 / DESIGN.md target: KS <= ~0.1.
	src := genWorkload(t, "FB-2009", 14*24*time.Hour, 11)
	syn, err := Synthesize(src, Config{
		TargetLength:   2 * 24 * time.Hour,
		SourceMachines: 600,
		TargetMachines: 60,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	fid, err := Compare(src, syn)
	if err != nil {
		t.Fatal(err)
	}
	// Every dimension must be within (a small margin of) the two-sample
	// K-S noise floor: the synthetic workload is statistically
	// indistinguishable from a resample of the source.
	if fid.WorstExcess() > 0.03 {
		t.Errorf("worst KS excess over noise floor = %v (%v), want <= 0.03", fid.WorstExcess(), fid)
	}
	// The densely-sampled input dimension should be tight in absolute terms.
	if fid.Input.KS > 0.05 {
		t.Errorf("input KS = %v, want <= 0.05", fid.Input.KS)
	}
	if fid.PeakToMedianRel > 2.0 {
		t.Errorf("peak-to-median drift = %v, want bounded", fid.PeakToMedianRel)
	}
}

func TestFidelityDetectsDistortion(t *testing.T) {
	src := genWorkload(t, "CC-b", 72*time.Hour, 13)
	// Distort the *shape*: collapse every input size to a constant. The
	// comparison normalizes by median, so only shape changes can (and
	// must) be detected.
	distorted := trace.New(src.Meta)
	for _, j := range src.Jobs {
		cp := *j
		cp.InputBytes = units.GB
		distorted.Add(&cp)
	}
	fid, err := Compare(src, distorted)
	if err != nil {
		t.Fatal(err)
	}
	if fid.Input.KS < 0.3 {
		t.Errorf("input KS = %v, want large for constant-size distortion", fid.Input.KS)
	}
	if fid.WorstExcess() <= 0 {
		t.Errorf("worst excess = %v, want positive for a real distortion", fid.WorstExcess())
	}
	// Untouched dimensions stay perfect.
	if fid.Output.KS != 0 {
		t.Errorf("output KS = %v, want 0", fid.Output.KS)
	}
}

func TestCompareErrors(t *testing.T) {
	src := genWorkload(t, "CC-b", 24*time.Hour, 15)
	empty := trace.New(trace.Meta{Name: "e", Start: src.Meta.Start, Length: time.Hour})
	if _, err := Compare(src, empty); err == nil {
		t.Error("empty comparison should error")
	}
	if _, err := Compare(empty, src); err == nil {
		t.Error("empty comparison should error")
	}
}

func TestFidelityString(t *testing.T) {
	f := Fidelity{
		Input:           DimFidelity{KS: 0.01, SrcN: 1000, SynN: 100},
		Shuffle:         DimFidelity{KS: 0.02, SrcN: 1000, SynN: 100},
		Output:          DimFidelity{KS: 0.03, SrcN: 1000, SynN: 100},
		TaskTime:        DimFidelity{KS: 0.04, SrcN: 1000, SynN: 100},
		PeakToMedianRel: 0.5,
	}
	if f.String() == "" {
		t.Error("String should render")
	}
	if f.MaxKS() != 0.04 {
		t.Errorf("MaxKS = %v, want 0.04", f.MaxKS())
	}
}

func TestSynthesizedReplayable(t *testing.T) {
	// End-to-end: synthesized workloads must be consumable by the other
	// subsystems (analysis bins, byte totals sane).
	src := genWorkload(t, "CC-e", 72*time.Hour, 17)
	syn, err := Synthesize(src, Config{TargetLength: 24 * time.Hour, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	sum := syn.Summarize()
	if sum.Jobs != syn.Len() || sum.BytesMoved <= 0 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.BytesMoved > 100*units.PB {
		t.Errorf("implausible synthetic volume %v", sum.BytesMoved)
	}
}
