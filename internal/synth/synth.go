// Package synth is the SWIM-style workload synthesizer of §7: the paper's
// "stopgap tool" (Statistical Workload Injector for MapReduce) samples a
// long production trace into a shorter synthetic workload, scaled down to
// a smaller cluster, that preserves the distributions that matter — per-job
// data sizes, arrival burstiness, and the job-type mixture. This package
// reimplements that methodology and adds a fidelity scorer so scale-down
// quality is measured, not assumed ("the lack of understanding about how
// to scale down a production workload" is one of the benchmark challenges
// §7 lists).
//
// The synthesis procedure follows the window-sampling design of the
// authors' MASCOTS'11 methodology [18]: partition the source trace into
// fixed windows, sample windows uniformly with replacement, and concatenate
// them to the target length. Within-window job ordering, inter-arrival
// spacing, and burstiness are preserved verbatim; across windows the
// sampling reproduces the source's hourly-rate distribution.
package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/analysis"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config controls synthesis.
type Config struct {
	// TargetLength is the synthetic trace duration (e.g. 1 day sampled
	// from a 6-month trace). Required, at least one window.
	TargetLength time.Duration
	// WindowLength is the sampling granule (default 1 hour, the paper's
	// analysis bin).
	WindowLength time.Duration
	// SourceMachines / TargetMachines scale data and compute: §7 suggests
	// scaling workloads "proportional to cluster size". If either is zero
	// the scale is 1 (pure time-sampling).
	SourceMachines int
	TargetMachines int
	// Seed drives window sampling.
	Seed int64
}

func (c Config) withDefaults() (Config, float64, error) {
	if c.WindowLength <= 0 {
		c.WindowLength = time.Hour
	}
	if c.TargetLength < c.WindowLength {
		return c, 0, errors.New("synth: target length below one window")
	}
	scale := 1.0
	if c.SourceMachines > 0 && c.TargetMachines > 0 {
		scale = float64(c.TargetMachines) / float64(c.SourceMachines)
	}
	if scale <= 0 {
		return c, 0, errors.New("synth: non-positive scale")
	}
	return c, scale, nil
}

// Synthesize produces a scaled synthetic workload from a source trace.
func Synthesize(src *trace.Trace, cfg Config) (*trace.Trace, error) {
	cfg, scale, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if src.Len() == 0 {
		return nil, errors.New("synth: empty source trace")
	}
	srcLen := src.Meta.Length
	if srcLen <= 0 {
		start, end := src.Span()
		srcLen = end.Sub(start)
	}
	nSrcWindows := int(srcLen / cfg.WindowLength)
	if nSrcWindows < 1 {
		return nil, errors.New("synth: source shorter than one window")
	}
	// Pre-bucket jobs by window.
	windows := make([][]*trace.Job, nSrcWindows)
	for _, j := range src.Jobs {
		w := int(j.SubmitTime.Sub(src.Meta.Start) / cfg.WindowLength)
		if w < 0 {
			continue
		}
		if w >= nSrcWindows {
			w = nSrcWindows - 1
		}
		windows[w] = append(windows[w], j)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	nTarget := int(cfg.TargetLength / cfg.WindowLength)
	out := trace.New(trace.Meta{
		Name:     src.Meta.Name + "-synth",
		Machines: pick(cfg.TargetMachines, src.Meta.Machines),
		Start:    src.Meta.Start,
		Length:   cfg.TargetLength,
	})
	var id int64
	for w := 0; w < nTarget; w++ {
		srcW := rng.Intn(nSrcWindows)
		windowStart := out.Meta.Start.Add(time.Duration(w) * cfg.WindowLength)
		srcWindowStart := src.Meta.Start.Add(time.Duration(srcW) * cfg.WindowLength)
		for _, j := range windows[srcW] {
			id++
			nj := scaleJob(j, scale)
			nj.ID = id
			nj.SubmitTime = windowStart.Add(j.SubmitTime.Sub(srcWindowStart))
			out.Add(nj)
		}
	}
	out.Sort()
	for i, j := range out.Jobs {
		j.ID = int64(i + 1)
	}
	return out, nil
}

func pick(a, b int) int {
	if a > 0 {
		return a
	}
	return b
}

// scaleJob copies a job with data and compute scaled by the cluster-size
// ratio. Durations are preserved: on a proportionally smaller cluster with
// proportionally smaller data, per-job latency stays comparable — the
// property SWIM's replay relies on.
func scaleJob(j *trace.Job, scale float64) *trace.Job {
	scaleBytes := func(b units.Bytes) units.Bytes {
		if b <= 0 {
			return b
		}
		v := units.Bytes(math.Round(float64(b) * scale))
		if v < 1 {
			v = 1
		}
		return v
	}
	scaleTasks := func(n int) int {
		if n <= 0 {
			return n
		}
		v := int(math.Round(float64(n) * scale))
		if v < 1 {
			v = 1
		}
		return v
	}
	nj := &trace.Job{
		Name:         j.Name,
		SubmitTime:   j.SubmitTime,
		Duration:     j.Duration,
		InputBytes:   scaleBytes(j.InputBytes),
		ShuffleBytes: scaleBytes(j.ShuffleBytes),
		OutputBytes:  scaleBytes(j.OutputBytes),
		MapTime:      units.TaskSeconds(float64(j.MapTime) * scale),
		ReduceTime:   units.TaskSeconds(float64(j.ReduceTime) * scale),
		MapTasks:     scaleTasks(j.MapTasks),
		ReduceTasks:  scaleTasks(j.ReduceTasks),
		InputPath:    j.InputPath,
		OutputPath:   j.OutputPath,
	}
	return nj
}

// DimFidelity scores one job dimension: the two-sample Kolmogorov–Smirnov
// distance between source and synthetic distributions, with the sample
// sizes that determine how much distance pure sampling noise explains.
type DimFidelity struct {
	// KS distance in [0,1]; 0 is a perfect match.
	KS float64
	// SrcN and SynN are the positive-sample counts compared.
	SrcN, SynN int
}

// NoiseFloor is the approximate 5%-level two-sample K-S critical value
// c(α)·sqrt((n+m)/(n·m)) with c(0.05)=1.36: distances below it are
// indistinguishable from resampling the source itself. Small
// subpopulations (e.g. the <1% of FB-2009 jobs with shuffle data) have
// high floors by nature.
func (d DimFidelity) NoiseFloor() float64 {
	if d.SrcN == 0 || d.SynN == 0 {
		return 1
	}
	return 1.36 * math.Sqrt(float64(d.SrcN+d.SynN)/float64(d.SrcN*d.SynN))
}

// Excess is KS minus the noise floor; values <= 0 mean the synthetic
// distribution is statistically indistinguishable from the source.
func (d DimFidelity) Excess() float64 { return d.KS - d.NoiseFloor() }

// Fidelity quantifies how well a synthetic trace preserves the source
// distributions: per-dimension Kolmogorov–Smirnov distances over the
// log-scaled per-job values (intentional cluster-size scaling is divided
// out first) and the relative drift of the burstiness peak-to-median
// ratio.
type Fidelity struct {
	Input    DimFidelity
	Shuffle  DimFidelity
	Output   DimFidelity
	TaskTime DimFidelity
	// PeakToMedianRel is |synthP2M - srcP2M| / srcP2M of hourly task-time.
	PeakToMedianRel float64
}

// dims lists the four dimension scores.
func (f Fidelity) dims() []DimFidelity {
	return []DimFidelity{f.Input, f.Shuffle, f.Output, f.TaskTime}
}

// MaxKS returns the worst of the four distribution distances.
func (f Fidelity) MaxKS() float64 {
	var m float64
	for _, d := range f.dims() {
		if d.KS > m {
			m = d.KS
		}
	}
	return m
}

// WorstExcess returns the worst KS-minus-noise-floor across dimensions;
// values <= 0 mean every dimension is within sampling noise of the source.
func (f Fidelity) WorstExcess() float64 {
	worst := math.Inf(-1)
	for _, d := range f.dims() {
		if e := d.Excess(); e > worst {
			worst = e
		}
	}
	return worst
}

// String renders a compact summary.
func (f Fidelity) String() string {
	return fmt.Sprintf("KS{in=%.3f sh=%.3f out=%.3f task=%.3f} worst-excess=%.3f p2m-rel=%.3f",
		f.Input.KS, f.Shuffle.KS, f.Output.KS, f.TaskTime.KS, f.WorstExcess(), f.PeakToMedianRel)
}

// Compare measures synthesis fidelity between a source trace and a
// synthetic one. When both traces record machine counts, the synthetic
// dimensions are divided by the machines ratio before comparison so the
// intentional cluster-size scaling does not count as error; the K-S
// distances then measure pure shape preservation.
func Compare(src, syn *trace.Trace) (Fidelity, error) {
	if src.Len() == 0 || syn.Len() == 0 {
		return Fidelity{}, errors.New("synth: empty trace in comparison")
	}
	scale := 1.0
	if src.Meta.Machines > 0 && syn.Meta.Machines > 0 {
		scale = float64(syn.Meta.Machines) / float64(src.Meta.Machines)
	}
	dim := func(t *trace.Trace, unscale float64, f func(*trace.Job) float64) *stats.CDF {
		xs := make([]float64, 0, t.Len())
		for _, j := range t.Jobs {
			v := f(j) / unscale
			if v > 0 {
				xs = append(xs, math.Log10(v))
			}
		}
		return stats.NewCDF(xs)
	}
	ks := func(f func(*trace.Job) float64) DimFidelity {
		a := dim(src, 1, f)
		b := dim(syn, scale, f)
		return DimFidelity{KS: stats.KSDistance(a, b), SrcN: a.Len(), SynN: b.Len()}
	}
	var fid Fidelity
	fid.Input = ks(func(j *trace.Job) float64 { return float64(j.InputBytes) })
	fid.Shuffle = ks(func(j *trace.Job) float64 { return float64(j.ShuffleBytes) })
	fid.Output = ks(func(j *trace.Job) float64 { return float64(j.OutputBytes) })
	fid.TaskTime = ks(func(j *trace.Job) float64 { return float64(j.TotalTaskTime()) })

	srcP2M, err := peakToMedian(src)
	if err != nil {
		return fid, err
	}
	synP2M, err := peakToMedian(syn)
	if err != nil {
		return fid, err
	}
	fid.PeakToMedianRel = math.Abs(synP2M-srcP2M) / srcP2M
	return fid, nil
}

// peakToMedian computes the hourly task-time burstiness headline number,
// delegating to the Figure 8 analysis so the attribution convention
// (task-time spread over execution) matches.
func peakToMedian(t *trace.Trace) (float64, error) {
	ts, err := analysis.BinHourly(t)
	if err != nil {
		return 0, err
	}
	b, err := ts.BurstinessOf()
	if err != nil {
		return 0, err
	}
	return b.PeakToMedian, nil
}
