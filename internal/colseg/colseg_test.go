package colseg

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

// genJobs generates a calibrated workload's jobs for round-trip tests.
func genJobs(t testing.TB, workload string, seed int64, dur time.Duration) []*trace.Job {
	t.Helper()
	p, err := profile.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: seed, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	tr.Sort()
	return tr.Jobs
}

// encode runs jobs through a Writer and returns the segment bytes.
func encode(t testing.TB, jobs []*trace.Job, opts ...WriterOption) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, opts...)
	for _, j := range jobs {
		if err := w.Write(j); err != nil {
			t.Fatalf("encoding job %d: %v", j.ID, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeAll drains a Reader, returning the jobs and the reader (for its
// block counters).
func decodeAll(b []byte, meta trace.Meta, opts ...Option) ([]*trace.Job, *Reader, error) {
	r := NewReader(bytes.NewReader(b), meta, opts...)
	var jobs []*trace.Job
	for {
		j, err := r.Next()
		if err == io.EOF {
			return jobs, r, nil
		}
		if err != nil {
			return jobs, r, err
		}
		jobs = append(jobs, j)
	}
}

// canonical returns the canonical JSONL line of j.
func canonical(t testing.TB, j *trace.Job) []byte {
	t.Helper()
	b, err := trace.AppendJobLine(nil, j)
	if err != nil {
		t.Fatalf("job %d has no canonical encoding: %v", j.ID, err)
	}
	return b
}

// assertJSONLEqual requires got and want to re-serialize to identical
// canonical JSONL, job by job.
func assertJSONLEqual(t *testing.T, got, want []*trace.Job) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := canonical(t, got[i]), canonical(t, want[i])
		if !bytes.Equal(g, w) {
			t.Fatalf("job %d drifted through the codec:\n got %s\nwant %s", i, g, w)
		}
	}
}

// TestRoundTripGenerated: a realistic generated workload (names and
// paths present) survives encode→decode with every job's canonical
// JSONL — the fingerprint bytes — intact, across block boundaries.
func TestRoundTripGenerated(t *testing.T) {
	jobs := genJobs(t, "CC-b", 1, 26*time.Hour)
	seg := encode(t, jobs, WithBlockJobs(100)) // force many blocks
	got, r, err := decodeAll(seg, trace.Meta{Name: "CC-b"})
	if err != nil {
		t.Fatal(err)
	}
	if r.BlocksRead() < 2 {
		t.Fatalf("want multiple blocks, read %d", r.BlocksRead())
	}
	assertJSONLEqual(t, got, jobs)
}

// TestRoundTripEdgeJobs: hand-built corner cases — empty and shared
// strings, zone offsets, nanosecond times, the year bounds that
// overflow UnixNano, extreme floats, and a string large enough to
// trip the block byte cap.
func TestRoundTripEdgeJobs(t *testing.T) {
	est := time.FixedZone("", -5*3600)
	jobs := []*trace.Job{
		{ID: 0, SubmitTime: time.Time{}}, // zero time: year 1, UTC=false zone offset 0
		{ID: 1, Name: "ingest", SubmitTime: time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC)},
		{ID: 2, Name: "ingest", SubmitTime: time.Date(2010, 5, 1, 0, 0, 1, 999999999, time.UTC),
			InputPath: "/shared/path", OutputPath: "/shared/path"},
		{ID: 3, SubmitTime: time.Date(2010, 5, 1, 3, 0, 0, 500, est),
			Duration: 93 * time.Minute, InputBytes: units.TB, ShuffleBytes: 1, OutputBytes: units.GB},
		{ID: 4, SubmitTime: time.Date(0, 1, 1, 0, 0, 0, 0, time.UTC)},         // min RFC3339 year
		{ID: 5, SubmitTime: time.Date(9999, 12, 31, 23, 59, 59, 1, time.UTC)}, // max year; UnixNano overflows
		{ID: 6, SubmitTime: time.Date(2010, 5, 2, 0, 0, 0, 0, time.UTC),
			MapTime: 0.1, ReduceTime: 1e300, MapTasks: 1 << 30, ReduceTasks: 7},
		{ID: 7, SubmitTime: time.Date(2010, 5, 2, 1, 0, 0, 0, time.UTC),
			Name: strings.Repeat("n", 2<<20)}, // outgrows maxBlockBytes
		{ID: 8, SubmitTime: time.Date(2010, 5, 2, 2, 0, 0, 0, time.UTC), Name: "after-big"},
	}
	seg := encode(t, jobs)
	got, _, err := decodeAll(seg, trace.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	assertJSONLEqual(t, got, jobs)
}

// TestEncodeDeterministic: the same jobs encode to the same bytes, and
// decoded jobs re-encode to the original bytes — the byte-stability the
// storage engine's per-segment CRCs rely on.
func TestEncodeDeterministic(t *testing.T) {
	jobs := genJobs(t, "CC-e", 2, 25*time.Hour)
	seg1 := encode(t, jobs, WithBlockJobs(64))
	seg2 := encode(t, jobs, WithBlockJobs(64))
	if !bytes.Equal(seg1, seg2) {
		t.Fatal("two encodings of the same jobs differ")
	}
	decoded, _, err := decodeAll(seg1, trace.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	seg3 := encode(t, decoded, WithBlockJobs(64))
	if !bytes.Equal(seg1, seg3) {
		t.Fatal("re-encoding decoded jobs changed the bytes")
	}
}

// TestEmptySegment: zero jobs still form a valid segment (header only)
// that reads back as an empty stream.
func TestEmptySegment(t *testing.T) {
	seg := encode(t, nil)
	got, r, err := decodeAll(seg, trace.Meta{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty segment: %d jobs, err %v", len(got), err)
	}
	if r.BlocksRead() != 0 {
		t.Fatalf("empty segment read %d blocks", r.BlocksRead())
	}
}

// TestHeaderValidation: wrong magic, wrong version, and empty input are
// errors, not EOF.
func TestHeaderValidation(t *testing.T) {
	seg := encode(t, genJobs(t, "CC-b", 3, 12*time.Hour))
	for name, mutate := range map[string]func([]byte) []byte{
		"empty":         func(b []byte) []byte { return nil },
		"torn magic":    func(b []byte) []byte { return b[:4] },
		"bad magic":     func(b []byte) []byte { b[0] ^= 0xff; return b },
		"wrong version": func(b []byte) []byte { b[len(Magic)] = 0x7f; return b },
	} {
		b := mutate(append([]byte(nil), seg...))
		if _, _, err := decodeAll(b, trace.Meta{}); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestTruncationMidBlock: cutting a segment inside a block is an error
// (never a silent short read); cutting exactly at a block boundary is
// indistinguishable from end-of-segment by design — the storage
// engine's file-level size+CRC check owns whole-file torn-tail
// detection.
func TestTruncationMidBlock(t *testing.T) {
	jobs := genJobs(t, "CC-b", 4, 12*time.Hour)
	seg := encode(t, jobs, WithBlockJobs(50))
	for _, frac := range []float64{0.3, 0.5, 0.9} {
		cut := int(float64(len(seg)) * frac)
		_, _, err := decodeAll(seg[:cut], trace.Meta{})
		if err == nil {
			t.Errorf("truncation at %d/%d bytes decoded cleanly", cut, len(seg))
		}
	}
}

// TestBitFlipsDetected: flipping any sampled byte of a segment —
// header, frame lengths, checksums, dictionaries, columns — must fail
// decoding with an error, never a panic and never silently different
// jobs. This is the per-block CRC doing its job.
func TestBitFlipsDetected(t *testing.T) {
	jobs := genJobs(t, "CC-b", 5, 8*time.Hour)
	seg := encode(t, jobs, WithBlockJobs(32))
	for off := 0; off < len(seg); off += 37 {
		b := append([]byte(nil), seg...)
		b[off] ^= 0xff
		if _, _, err := decodeAll(b, trace.Meta{}); err == nil {
			t.Errorf("flip at offset %d decoded without error", off)
		}
	}
}

// TestZoneMapPruning: a time-ranged read skips blocks outside the range
// without decoding them — proven both by the block counters and by
// corrupting a block outside the range: the ranged scan still succeeds
// (the corruption is never even checksummed), while a full scan fails.
func TestZoneMapPruning(t *testing.T) {
	start := time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC)
	var jobs []*trace.Job
	for i := 0; i < 400; i++ {
		jobs = append(jobs, &trace.Job{
			ID:         int64(i),
			Name:       "periodic",
			SubmitTime: start.Add(time.Duration(i) * time.Minute),
		})
	}
	seg := encode(t, jobs, WithBlockJobs(16)) // 25 blocks of 16 minutes each

	from, to := start.Add(2*time.Hour), start.Add(3*time.Hour)
	got, r, err := decodeAll(seg, trace.Meta{}, WithTimeRange(from, to))
	if err != nil {
		t.Fatal(err)
	}
	if r.BlocksPruned() == 0 || r.BlocksRead() == 0 {
		t.Fatalf("pruning did not engage: read %d, pruned %d", r.BlocksRead(), r.BlocksPruned())
	}
	if r.BlocksRead()+r.BlocksPruned() != 25 {
		t.Fatalf("read %d + pruned %d blocks, want 25 total", r.BlocksRead(), r.BlocksPruned())
	}
	// Every job in the range came back (pruning is conservative: it may
	// keep edge blocks, never drop in-range jobs).
	want := 0
	for _, j := range jobs {
		if !j.SubmitTime.Before(from) && !j.SubmitTime.After(to) {
			want++
		}
	}
	in := 0
	for _, j := range got {
		if !j.SubmitTime.Before(from) && !j.SubmitTime.After(to) {
			in++
		}
	}
	if in != want {
		t.Fatalf("ranged scan yielded %d in-range jobs, want %d", in, want)
	}

	// Corrupt the tail of the segment — inside the last block, which
	// covers minutes far outside [from, to].
	seg[len(seg)-3] ^= 0xff
	if _, _, err := decodeAll(seg, trace.Meta{}); err == nil {
		t.Fatal("full scan of corrupted segment decoded without error")
	}
	gotPruned, r2, err := decodeAll(seg, trace.Meta{}, WithTimeRange(from, to))
	if err != nil {
		t.Fatalf("ranged scan decoded the corrupt pruned block: %v", err)
	}
	if len(gotPruned) != len(got) {
		t.Fatalf("ranged scan over corrupt segment yielded %d jobs, want %d", len(gotPruned), len(got))
	}
	if r2.BlocksPruned() == 0 {
		t.Fatal("second ranged scan pruned nothing")
	}
}
