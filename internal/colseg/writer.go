package colseg

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/binenc"
	"repro/internal/trace"
)

// Writer encodes a stream of job records into colseg blocks. Jobs are
// buffered column-at-a-time and flushed as one framed block when the
// block fills (BlockJobs jobs or the block byte cap); Close flushes the
// final short block. The writer never seeks — output is append-only —
// so it composes with the storage engine's streaming, constant-memory
// ingest path.
type Writer struct {
	w     io.Writer
	err   error
	began bool

	blockJobs int
	blocks    int

	n              int
	prevID         int64
	prevSec        int64
	minSec, maxSec int64
	dict           map[string]uint64
	dictN          int
	dictBuf        []byte
	cols           [numCols][]byte
	frame          []byte
}

// WriterOption tunes a Writer.
type WriterOption func(*Writer)

// WithBlockJobs overrides the jobs-per-block cap (tests use tiny blocks
// to exercise framing and pruning; zero or negative keeps the default).
func WithBlockJobs(n int) WriterOption {
	return func(w *Writer) {
		if n > 0 {
			w.blockJobs = n
		}
	}
}

// NewWriter returns a Writer emitting to w. The caller owns w's
// buffering and close; Writer issues a few writes per block, so w
// should be buffered.
func NewWriter(w io.Writer, opts ...WriterOption) *Writer {
	cw := &Writer{
		w:         w,
		blockJobs: BlockJobs,
		dict:      make(map[string]uint64),
	}
	for _, o := range opts {
		o(cw)
	}
	return cw
}

// Write appends one job record to the current block, flushing the
// block when it fills.
func (w *Writer) Write(j *trace.Job) error {
	if w.err != nil {
		return w.err
	}
	if !w.began {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	sec := j.SubmitTime.Unix()
	if w.n == 0 {
		w.minSec, w.maxSec = sec, sec
	} else {
		if sec < w.minSec {
			w.minSec = sec
		}
		if sec > w.maxSec {
			w.maxSec = sec
		}
	}
	_, zoneOff := j.SubmitTime.Zone()

	w.cols[colID] = binenc.AppendVarint(w.cols[colID], j.ID-w.prevID)
	w.prevID = j.ID
	w.cols[colNameRef] = binenc.AppendUvarint(w.cols[colNameRef], w.ref(j.Name))
	w.cols[colSubmitSec] = binenc.AppendVarint(w.cols[colSubmitSec], sec-w.prevSec)
	w.prevSec = sec
	w.cols[colSubmitNanos] = binenc.AppendUint32(w.cols[colSubmitNanos], uint32(j.SubmitTime.Nanosecond()))
	w.cols[colZoneOffset] = binenc.AppendVarint(w.cols[colZoneOffset], int64(zoneOff))
	w.cols[colDuration] = binenc.AppendUint64(w.cols[colDuration], uint64(j.Duration))
	w.cols[colInputBytes] = binenc.AppendUint64(w.cols[colInputBytes], uint64(j.InputBytes))
	w.cols[colShuffleBytes] = binenc.AppendUint64(w.cols[colShuffleBytes], uint64(j.ShuffleBytes))
	w.cols[colOutputBytes] = binenc.AppendUint64(w.cols[colOutputBytes], uint64(j.OutputBytes))
	w.cols[colMapTime] = binenc.AppendFloat64(w.cols[colMapTime], float64(j.MapTime))
	w.cols[colReduceTime] = binenc.AppendFloat64(w.cols[colReduceTime], float64(j.ReduceTime))
	w.cols[colMapTasks] = binenc.AppendVarint(w.cols[colMapTasks], int64(j.MapTasks))
	w.cols[colReduceTasks] = binenc.AppendVarint(w.cols[colReduceTasks], int64(j.ReduceTasks))
	w.cols[colInputPathRef] = binenc.AppendUvarint(w.cols[colInputPathRef], w.ref(j.InputPath))
	w.cols[colOutputPathRef] = binenc.AppendUvarint(w.cols[colOutputPathRef], w.ref(j.OutputPath))

	w.n++
	if w.n >= w.blockJobs || w.blockBytes() >= maxBlockBytes {
		return w.flushBlock()
	}
	return nil
}

// Close flushes the final block. It does not close the underlying
// writer. An empty stream still emits the segment header, so a
// zero-job segment is a valid (empty) colseg file.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if !w.began {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.flushBlock()
}

// Flush emits the buffered jobs as one (possibly short) block and
// leaves the stream open for more writes. Blocks are self-contained —
// each resets the delta and dictionary state — so a flushed prefix of
// the stream is a valid colseg segment on its own. The live-ingest
// path flushes at every batch commit boundary: everything up to the
// manifest's recorded size then decodes without the uncommitted tail.
// Flushing an empty buffer writes nothing (but still emits the header
// on a fresh stream, so even a zero-job flush leaves a valid segment).
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if !w.began {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.flushBlock()
}

// Blocks returns how many blocks the writer has flushed so far. The
// storage manifest records it per segment, so the compaction policy can
// judge average block fill without opening any segment.
func (w *Writer) Blocks() int { return w.blocks }

// ref interns s in the block dictionary and returns its wire reference:
// 0 for the empty string, index+1 otherwise.
func (w *Writer) ref(s string) uint64 {
	if s == "" {
		return 0
	}
	if idx, ok := w.dict[s]; ok {
		return idx + 1
	}
	idx := uint64(w.dictN)
	w.dict[s] = idx
	w.dictN++
	w.dictBuf = binenc.AppendString(w.dictBuf, s)
	return idx + 1
}

// blockBytes returns the current block's encoded payload size so far.
func (w *Writer) blockBytes() int {
	n := len(w.dictBuf)
	for i := range w.cols {
		n += len(w.cols[i])
	}
	return n
}

// writeHeader emits the segment magic and version once, before the
// first block (or at Close for an empty segment).
func (w *Writer) writeHeader() error {
	w.began = true
	var hdr [len(Magic) + binary.MaxVarintLen64]byte
	copy(hdr[:], Magic)
	k := len(Magic) + binary.PutUvarint(hdr[len(Magic):], Version)
	if _, err := w.w.Write(hdr[:k]); err != nil {
		w.err = fmt.Errorf("colseg: writing header: %w", err)
		return w.err
	}
	return nil
}

// flushBlock frames and writes the buffered block, then resets the
// per-block state. A zero-job block writes nothing.
func (w *Writer) flushBlock() error {
	if w.n == 0 {
		return nil
	}
	body := w.frame[:0]
	body = binenc.AppendUvarint(body, uint64(w.n))
	body = binenc.AppendVarint(body, w.minSec)
	body = binenc.AppendVarint(body, w.maxSec)
	body = binenc.AppendUvarint(body, uint64(w.dictN))
	body = append(body, w.dictBuf...)
	for i := range w.cols {
		body = append(body, w.cols[i]...)
	}

	var hdr [binary.MaxVarintLen64 + 4]byte
	k := binary.PutUvarint(hdr[:], uint64(4+len(body)))
	binary.LittleEndian.PutUint32(hdr[k:], crc32.Checksum(body, castagnoli))
	if _, err := w.w.Write(hdr[:k+4]); err != nil {
		w.err = fmt.Errorf("colseg: writing block frame: %w", err)
		return w.err
	}
	if _, err := w.w.Write(body); err != nil {
		w.err = fmt.Errorf("colseg: writing block: %w", err)
		return w.err
	}
	w.blocks++

	w.frame = body[:0]
	w.n = 0
	w.prevID = 0
	w.prevSec = 0
	clear(w.dict)
	w.dictN = 0
	w.dictBuf = w.dictBuf[:0]
	for i := range w.cols {
		w.cols[i] = w.cols[i][:0]
	}
	return nil
}
