// Package colseg is the compact columnar segment codec of the durable
// storage engine: the binary on-disk representation of a run of job
// records, built for raw scan speed. Canonical JSONL (package trace)
// stays the interchange format and the bytes trace identity is hashed
// over; colseg is only how committed segments are laid out on disk, so
// decoding a colseg segment yields jobs whose canonical JSONL
// re-serialization — and therefore whose fingerprint — is byte-for-byte
// identical to what a JSONL segment yields.
//
// # Layout
//
// A segment is a fixed header followed by self-contained blocks:
//
//	segment := magic[8] uvarint(version) block*
//	block   := uvarint(frameLen) payload[frameLen]
//	payload := crc32c[4, LE] body          // CRC over body
//	body    := uvarint(jobs)
//	           varint(minSubmitSec) varint(maxSubmitSec)
//	           uvarint(dictLen) dictString*
//	           column*                      // 15 columns, in order
//
// Each block holds up to BlockJobs jobs (fewer when large strings hit
// the block byte cap, or at end of segment). Blocks are the unit of
// everything: checksumming (CRC-32C over the body), corruption
// isolation, time-range pruning, and decode batching. A block is fully
// self-contained — per-block string dictionary, per-block delta bases —
// so a pruned block is skipped without decoding a single column and a
// corrupt block cannot poison its neighbors.
//
// # Columns
//
// Within a block, each field of trace.Job is one column: the values for
// all jobs, concatenated, in job order. Small integers are zigzag
// varints; job IDs and submit seconds are delta-encoded against the
// previous job in the block (first job: delta from zero), so a
// chronological trace with counting IDs costs ~1 byte per job for each.
// Submit times are split into unix seconds (delta varint) +
// nanosecond-of-second (fixed 4-byte little-endian; always below 1e9,
// and uniform enough in real traces that varints average wider) + zone
// offset seconds (varint, 0 for UTC), which round-trips every
// time.Time the JSONL codec can represent, including the full year
// range 0–9999 that overflows UnixNano. Name and path strings are uvarint references into the block
// dictionary (0 = empty string, k = dictionary entry k-1), so repeated
// job names and hashed HDFS paths are stored once per block. The wide
// columns — duration nanoseconds and the three byte counts — are fixed
// 8-byte little-endian, as are the task-time floats (IEEE-754 bits):
// their values cost 5–10 varint bytes anyway, and fixed width turns the
// scan's hottest loops into single loads with no data-dependent
// continuation logic.
//
// # Zone maps
//
// The min/max submit-second stats sit at the front of the body, before
// the dictionary. A reader given a time range peeks just those stats,
// and when the block lies wholly outside the range it discards the
// frame without verifying or decoding it. The stats are second-floored,
// so pruning is conservative: a block is only skipped when every job in
// it is strictly outside the requested range.
package colseg

import (
	"hash/crc32"
)

// Magic is the 8-byte segment header; the trailing 1 is the format
// version generation (bumped with Version on incompatible change).
const Magic = "swimcsg1"

// Version is the format version written after the magic.
const Version = 1

// BlockJobs is the default number of jobs per block: large enough that
// per-block framing and dictionaries amortize to noise, small enough
// that one block's decode batch stays cache-friendly and a time-range
// scan prunes at useful granularity.
const BlockJobs = 4096

// maxBlockBytes soft-caps a block's encoded size: a block also rotates
// when its columns outgrow this, so jobs with multi-megabyte strings
// cannot make one block (the corruption/retry unit) arbitrarily large.
// A single oversized job still always fits — the cap is checked between
// jobs, never splitting one.
const maxBlockBytes = 1 << 20

// castagnoli is the CRC-32C polynomial table, the same checksum the
// storage engine uses at file granularity.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Column order within a block. Every column is present for every block;
// a field the trace does not carry (e.g. paths in FB-2009) costs one
// zero byte per job.
const (
	colID = iota
	colNameRef
	colSubmitSec
	colSubmitNanos
	colZoneOffset
	colDuration
	colInputBytes
	colShuffleBytes
	colOutputBytes
	colMapTime
	colReduceTime
	colMapTasks
	colReduceTasks
	colInputPathRef
	colOutputPathRef
	numCols
)
