package colseg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/trace"
)

// The block-parallel scan splits the sequential Reader into its two
// halves. A FrameScanner does the stream work — one goroutine walks the
// segment, validates the header, frames blocks, and prunes via zone
// maps without decoding a byte — while BlockDecoders do the CPU work:
// each framed payload is self-contained (own CRC, own dictionary, own
// delta bases), so any number of decoders can turn frames into job
// batches concurrently. The storage layer owns the pipeline; this file
// only provides the two halves.

// FrameScanner iterates a colseg segment's framed blocks without
// decoding them. Next copies one surviving frame into the caller's
// buffer; with WithTimeRange, blocks whose zone map lies wholly outside
// the range are skipped (counted, never copied). Errors latch exactly
// like the Reader's, and the pooled stream buffer is released at EOF,
// on error, or at Close.
type FrameScanner struct {
	br  *bufio.Reader
	err error

	began          bool
	prune          bool
	fromSec, toSec int64

	read, pruned int
}

// NewFrameScanner returns a FrameScanner over rd. It accepts the same
// options as NewReader; only WithTimeRange is meaningful (the scanner
// never decodes, so WithVolatileBatch is a no-op).
func NewFrameScanner(rd io.Reader, opts ...Option) *FrameScanner {
	var cfg Reader
	for _, o := range opts {
		o(&cfg)
	}
	br := brPool.Get().(*bufio.Reader)
	br.Reset(rd)
	return &FrameScanner{br: br, prune: cfg.prune, fromSec: cfg.fromSec, toSec: cfg.toSec}
}

// Next returns the next surviving block frame's payload (CRC word plus
// body, exactly what BlockDecoder.Decode takes), reusing buf's capacity
// when it suffices. io.EOF means a clean end of segment. The returned
// slice is the caller's; the scanner holds no reference to it.
func (s *FrameScanner) Next(buf []byte) ([]byte, error) {
	if s.err != nil {
		return nil, s.err
	}
	if !s.began {
		if err := readSegmentHeader(s.br); err != nil {
			return nil, s.fail(err)
		}
		s.began = true
	}
	for {
		frameLen, err := binary.ReadUvarint(s.br)
		if err == io.EOF {
			s.err = io.EOF
			s.release()
			return nil, io.EOF
		}
		if err != nil {
			return nil, s.fail(fmt.Errorf("colseg: reading block frame length: %w", err))
		}
		if frameLen < 5 {
			return nil, s.fail(fmt.Errorf("colseg: block frame of %d bytes is shorter than its checksum", frameLen))
		}
		if s.prune && shouldPruneFrame(s.br, frameLen, s.fromSec, s.toSec) {
			if err := discard(s.br, frameLen); err != nil {
				return nil, s.fail(fmt.Errorf("colseg: skipping pruned block: %w", err))
			}
			s.pruned++
			continue
		}
		payload, err := readFull(s.br, frameLen, buf)
		if err != nil {
			return nil, s.fail(fmt.Errorf("colseg: reading block: %w", err))
		}
		s.read++
		return payload, nil
	}
}

// BlocksRead returns how many frames Next has handed out.
func (s *FrameScanner) BlocksRead() int { return s.read }

// BlocksPruned returns how many frames the zone maps skipped.
func (s *FrameScanner) BlocksPruned() int { return s.pruned }

// Close releases the pooled stream buffer without draining; a scanner
// already at EOF or failed has released it and Close is a no-op.
func (s *FrameScanner) Close() error {
	if s.err == nil {
		s.err = errClosed
		s.release()
	}
	return nil
}

// fail latches err and releases the stream buffer.
func (s *FrameScanner) fail(err error) error {
	s.err = err
	s.release()
	return err
}

func (s *FrameScanner) release() {
	if s.br != nil {
		s.br.Reset(nil)
		brPool.Put(s.br)
		s.br = nil
	}
}

// BlockDecoder decodes framed block payloads independently of any
// stream — the concurrent half of a block-parallel scan; each worker
// owns one. It decodes into a pooled batch reused across Decode calls
// (the Reader's volatile discipline), so the returned jobs are valid
// only until the next Decode or Close. Strings inside them are
// immutable and safe to retain.
type BlockDecoder struct {
	r Reader
}

// NewBlockDecoder returns a decoder stamping meta's zone-independent
// fields into decoded jobs (the metadata itself travels with the
// partials, not the jobs; meta only seeds the reader state).
func NewBlockDecoder(meta trace.Meta) *BlockDecoder {
	d := &BlockDecoder{}
	d.r.meta = meta
	d.r.volatile = true
	return d
}

// Decode verifies payload's CRC and decodes its columns, returning the
// block's jobs in order. payload must be one frame as handed out by
// FrameScanner.Next (CRC word plus body).
func (d *BlockDecoder) Decode(payload []byte) ([]trace.Job, error) {
	if len(payload) < 5 {
		return nil, fmt.Errorf("colseg: block frame of %d bytes is shorter than its checksum", len(payload))
	}
	if err := d.r.decodeBlock(payload); err != nil {
		return nil, err
	}
	return d.r.jobs, nil
}

// Close returns the pooled decode scratch. The decoder uses none of
// Reader's stream state, so there is nothing else to release.
func (d *BlockDecoder) Close() error {
	d.r.release()
	return nil
}

// InWindow reports whether j was submitted in [from, to) — the exact
// filter trace.NewWindowSource applies, for callers filtering a decoded
// batch in place of wrapping a source.
func InWindow(j *trace.Job, from, to time.Time) bool {
	ns := j.SubmitTime.UnixNano()
	return ns >= from.UnixNano() && ns < to.UnixNano()
}
