package colseg

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/trace"
)

// FuzzColumnarRoundTrip drives the codec from both ends. The input is
// interpreted two ways:
//
//  1. As canonical JSONL job lines (the interchange format): every job
//     that parses is pushed through encode→decode, and the decoded jobs
//     must re-serialize to canonical JSONL byte-identical to the
//     originals — the representation-independence contract trace
//     fingerprints rest on. The jobs are then re-encoded and must
//     reproduce the first segment byte-for-byte (encode is a pure
//     function of the job stream).
//
//  2. As a raw colseg segment: arbitrary — truncated, bit-flipped,
//     adversarial — bytes fed straight to the Reader must produce jobs
//     or an error, never a panic and never an unbounded allocation.
func FuzzColumnarRoundTrip(f *testing.F) {
	var seedJobs bytes.Buffer
	for _, j := range []*trace.Job{
		{ID: 1, Name: "ingest", SubmitTime: time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC)},
		{ID: 2, Name: "ingest", SubmitTime: time.Date(2010, 5, 1, 0, 0, 1, 999999999, time.UTC),
			InputBytes: 1 << 40, MapTime: 0.25, MapTasks: 12, InputPath: "/p", OutputPath: "/p"},
		{ID: 3, SubmitTime: time.Date(2010, 5, 1, 1, 0, 0, 0, time.FixedZone("", 3600)), ReduceTime: 1e300},
	} {
		b, err := trace.AppendJobLine(nil, j)
		if err != nil {
			f.Fatal(err)
		}
		seedJobs.Write(b)
	}
	f.Add(seedJobs.Bytes(), uint8(4))
	f.Add(encodeFuzz(f, seedJobs.Bytes()), uint8(1))
	f.Add([]byte(Magic), uint8(2))
	f.Add([]byte{}, uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, blockHint uint8) {
		blockJobs := int(blockHint)%64 + 1

		// Leg 1: canonical JSONL in, canonical JSONL out.
		jobs := parseJobs(data)
		if len(jobs) > 0 {
			var seg bytes.Buffer
			w := NewWriter(&seg, WithBlockJobs(blockJobs))
			for _, j := range jobs {
				if err := w.Write(j); err != nil {
					t.Fatalf("encoding parsed job: %v", err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			decoded, _, err := decodeAll(seg.Bytes(), trace.Meta{})
			if err != nil {
				t.Fatalf("decoding our own encoding: %v", err)
			}
			if len(decoded) != len(jobs) {
				t.Fatalf("decoded %d jobs, encoded %d", len(decoded), len(jobs))
			}
			for i := range jobs {
				want, err := trace.AppendJobLine(nil, jobs[i])
				if err != nil {
					continue // job has no canonical form (e.g. year 10000 via fallback parse)
				}
				got, err := trace.AppendJobLine(nil, decoded[i])
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("job %d canonical JSONL drifted (%v):\n got %s\nwant %s", i, err, got, want)
				}
			}
			var seg2 bytes.Buffer
			w2 := NewWriter(&seg2, WithBlockJobs(blockJobs))
			for _, j := range decoded {
				if err := w2.Write(j); err != nil {
					t.Fatalf("re-encoding decoded job: %v", err)
				}
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seg.Bytes(), seg2.Bytes()) {
				t.Fatal("re-encoding decoded jobs changed the segment bytes")
			}
		}

		// Leg 2: arbitrary bytes into the Reader — no panics, errors OK.
		r := NewReader(bytes.NewReader(data), trace.Meta{Name: "fuzz"})
		for n := 0; ; n++ {
			_, err := r.Next()
			if err != nil {
				break
			}
			if n > 1<<20 {
				t.Fatal("reader yielded over a million jobs from fuzz input")
			}
		}
	})
}

// parseJobs decodes data as canonical JSONL body lines, stopping at the
// first malformed line, and bounds the job count to keep iterations
// fast.
func parseJobs(data []byte) []*trace.Job {
	r := trace.NewJSONLBodyReader(bytes.NewReader(data), trace.Meta{})
	var jobs []*trace.Job
	for len(jobs) < 4096 {
		j, err := r.Next()
		if err != nil {
			break
		}
		// Only keep jobs with a canonical form: encode must be able to
		// re-serialize them (the fallback JSON parser can construct e.g.
		// out-of-range years that AppendJobLine refuses).
		if _, err := trace.AppendJobLine(nil, j); err != nil {
			break
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// encodeFuzz builds a colseg segment from JSONL body bytes, for seeding
// the raw-decode leg with well-formed segments.
func encodeFuzz(f *testing.F, jsonl []byte) []byte {
	f.Helper()
	jobs := parseJobs(jsonl)
	var seg bytes.Buffer
	w := NewWriter(&seg, WithBlockJobs(2))
	for _, j := range jobs {
		if err := w.Write(j); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	return seg.Bytes()
}
